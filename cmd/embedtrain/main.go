// Command embedtrain runs the embedding training pipeline of Fig 3 end to
// end: generate (or reuse) a KG, materialize a filtered training view,
// train a shallow model, evaluate link prediction, and optionally
// precompute the entity-vector cache into a key-value store directory.
//
// Usage:
//
//	embedtrain [-model distmult|transe|complex] [-dim 32] [-epochs 30]
//	           [-partitions 1] [-workers 0] [-cache DIR] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"saga/internal/embedding"
	"saga/internal/embedserve"
	"saga/internal/graphengine"
	"saga/internal/storage"
	"saga/internal/workload"
)

func main() {
	model := flag.String("model", "distmult", "model kind: transe, distmult, complex")
	dim := flag.Int("dim", 32, "embedding dimensionality")
	epochs := flag.Int("epochs", 30, "training epochs")
	partitions := flag.Int("partitions", 1, "random edge buckets per epoch")
	workers := flag.Int("workers", 0, "Hogwild workers (0 = GOMAXPROCS)")
	people := flag.Int("people", 200, "number of person entities")
	clusters := flag.Int("clusters", 10, "number of communities")
	minFreq := flag.Int("minpredfreq", 2, "drop predicates rarer than this")
	cacheDir := flag.String("cache", "", "directory for the entity-vector KV cache (empty = skip)")
	registryDir := flag.String("registry", "", "model-registry directory to register the trained model in (empty = skip)")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: *people, NumClusters: *clusters, Seed: *seed})
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	eng := graphengine.New(w.Graph)
	view := eng.Materialize(graphengine.ViewDef{
		Name: "train", DropLiteralFacts: true, MinPredicateFreq: *minFreq,
	})
	fmt.Printf("graph: %d entities, %d triples; view: %d triples after filtering\n",
		w.Graph.NumEntities(), w.Graph.NumTriples(), view.Len())

	d := embedding.NewDataset(view.Triples())
	train, test, err := d.Split(0.1, *seed)
	if err != nil {
		log.Fatalf("split: %v", err)
	}
	cfg := embedding.TrainConfig{
		Model: embedding.ModelKind(*model), Dim: *dim, Epochs: *epochs,
		Workers: *workers, Partitions: *partitions, Seed: *seed,
		LearningRate: 0.08, Negatives: 4,
	}
	start := time.Now()
	m, err := embedding.Train(train, cfg)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	elapsed := time.Since(start)
	edges := len(train.Triples) * *epochs
	fmt.Printf("trained %s in %v (%.0f edges/s)\n", *model, elapsed.Round(time.Millisecond),
		float64(edges)/elapsed.Seconds())

	res := embedding.Evaluate(m, d, test.Triples)
	fmt.Printf("link prediction (filtered): MRR=%.3f Hits@1=%.3f Hits@3=%.3f Hits@10=%.3f (n=%d)\n",
		res.MRR, res.Hits1, res.Hits3, res.Hits10, res.N)

	if *registryDir != "" {
		reg, err := embedding.NewRegistry(*registryDir)
		if err != nil {
			log.Fatalf("open registry: %v", err)
		}
		info, err := reg.Register("general-kg", m, map[string]float64{
			"mrr": res.MRR, "hits10": res.Hits10,
		})
		if err != nil {
			log.Fatalf("register model: %v", err)
		}
		fmt.Printf("registered %s v%d in %s\n", info.Name, info.Version, *registryDir)
	}

	if *cacheDir != "" {
		store, err := storage.Open(*cacheDir, storage.Options{})
		if err != nil {
			log.Fatalf("open cache: %v", err)
		}
		defer store.Close()
		svc, err := embedserve.New(w.Graph, m, d)
		if err != nil {
			log.Fatalf("build service: %v", err)
		}
		n, err := svc.PrecomputeCache(store)
		if err != nil {
			log.Fatalf("precompute cache: %v", err)
		}
		fmt.Printf("cached %d entity vectors in %s\n", n, *cacheDir)
	}
}
