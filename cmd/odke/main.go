// Command odke runs the Open Domain Knowledge Extraction pipeline of
// Fig 5 end to end on a synthetic world with planted gaps: delete facts,
// profile the KG (plus a query log) to rediscover them, synthesize search
// queries, retrieve documents, extract candidates with the infobox and
// text extractors, fuse with the chosen corroboration model, write the
// winners back, and report coverage before/after plus precision vs the
// known gold.
//
// Usage:
//
//	odke [-fuser majority|best|logistic] [-gaps 40] [-docs 600] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"

	"saga/internal/annotate"
	"saga/internal/kg"
	"saga/internal/odke"
	"saga/internal/webcorpus"
	"saga/internal/websearch"
	"saga/internal/workload"
)

func main() {
	fuserName := flag.String("fuser", "logistic", "fusion model: majority, best, logistic")
	maxGaps := flag.Int("gaps", 40, "max gaps to process")
	docs := flag.Int("docs", 600, "corpus size")
	people := flag.Int("people", 120, "number of person entities")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: *people, NumClusters: 8, Seed: *seed})
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	corpus := webcorpus.Generate(w, webcorpus.Config{
		NumDocs: *docs, InfoboxFraction: 0.6, WrongInfoboxFraction: 0.2, Seed: *seed,
	})
	index := websearch.NewIndex(corpus)
	a, err := annotate.New(w.Graph, annotate.Config{Mode: annotate.ModeContextual, Seed: *seed})
	if err != nil {
		log.Fatalf("build annotator: %v", err)
	}

	// Plant gaps: delete memberOf/bornIn/dateOfBirth for every 4th person.
	gold := make(map[[2]uint64]kg.Value)
	var slots [][2]uint64
	for i := 0; i < len(w.People); i += 4 {
		p := w.People[i]
		for _, predName := range []string{"memberOf", "bornIn", "dateOfBirth"} {
			pred := w.Preds[predName]
			facts := w.Graph.Facts(p, pred)
			if len(facts) == 0 {
				continue
			}
			w.Graph.Retract(facts[0])
			key := [2]uint64{uint64(p), uint64(pred)}
			gold[key] = facts[0].Object
			slots = append(slots, key)
		}
	}
	fmt.Printf("planted %d gaps; coverage before: %.3f\n", len(slots), odke.Coverage(w.Graph, slots))

	// Profile: query log (reactive) + graph profiling (proactive).
	qlog := workload.GenerateQueryLog(w, workload.QueryLogConfig{NumQueries: 800, Seed: *seed})
	gaps := odke.FindGaps(w.Graph, qlog, odke.ProfilerConfig{CoverageThreshold: 0.5, MaxGaps: *maxGaps})
	fmt.Printf("profiler found %d gaps (capped at %d)\n", len(gaps), *maxGaps)

	resolver := odke.NewEntityResolver(w.Graph)
	extractors := []odke.Extractor{odke.NewInfoboxExtractor(w.Graph, resolver), odke.NewTextExtractor(w.Graph)}

	var fuser odke.Fuser
	switch *fuserName {
	case "majority":
		fuser = odke.MajorityVoteFuser{}
	case "best":
		fuser = odke.BestExtractorFuser{}
	case "logistic":
		fuser = trainFuser(w, index, a, extractors, gaps, gold)
	default:
		log.Fatalf("unknown fuser %q", *fuserName)
	}

	pipe, err := odke.NewPipeline(w.Graph, index, a, extractors, fuser)
	if err != nil {
		log.Fatalf("build pipeline: %v", err)
	}
	rep, err := pipe.Run(gaps)
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	var correct int
	for _, out := range rep.Outcomes {
		if !out.Filled {
			continue
		}
		if g, ok := gold[[2]uint64{uint64(out.Gap.Subject), uint64(out.Gap.Predicate)}]; ok && out.Fused.Value.Equal(g) {
			correct++
		}
	}
	fmt.Printf("fuser=%s: filled %d/%d gaps, %d facts added\n", fuser.Name(), rep.Filled, rep.Gaps, rep.FactsAdded)
	if rep.Filled > 0 {
		fmt.Printf("precision vs gold (planted gaps only): %.3f\n", float64(correct)/float64(rep.Filled))
	}
	fmt.Printf("coverage after: %.3f\n", odke.Coverage(w.Graph, slots))
}

// trainFuser bootstraps logistic-fusion training data from the planted
// gaps (labels come from the known gold values).
func trainFuser(w *workload.World, index *websearch.Index, a *annotate.Annotator,
	extractors []odke.Extractor, gaps []odke.Gap, gold map[[2]uint64]kg.Value) odke.Fuser {
	boot, err := odke.NewPipeline(w.Graph, index, a, extractors, odke.MajorityVoteFuser{})
	if err != nil {
		log.Fatalf("bootstrap pipeline: %v", err)
	}
	var examples []odke.TrainingExample
	for _, gap := range gaps {
		g, ok := gold[[2]uint64{uint64(gap.Subject), uint64(gap.Predicate)}]
		if !ok {
			continue
		}
		cands, _, _ := boot.CollectCandidates(gap)
		for _, grp := range odke.GroupCandidates(cands) {
			examples = append(examples, odke.TrainingExample{
				Features: grp.Features(len(cands)),
				Correct:  grp.Value.Equal(g),
			})
		}
	}
	fuser, err := odke.TrainLogisticFuser(examples, 300, 0.5)
	if err != nil {
		log.Fatalf("train fuser: %v (examples=%d)", err, len(examples))
	}
	fmt.Printf("trained logistic fuser on %d labelled value groups\n", len(examples))
	return fuser
}
