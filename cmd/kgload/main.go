// Command kgload is the open-loop load and fault harness for the
// serving tier. It fires requests at a constant arrival rate — arrivals
// are scheduled from a monotonic anchor at run start, so a slowing
// server cannot slow the offered load down the way a closed-loop
// (request/response/request) driver would — and reports goodput, shed
// rate, and p50/p99/p999 latency of admitted requests. That open-loop
// property is what makes saturation visible: at 2x capacity a healthy
// admission tier sheds the excess as fast 429s while goodput holds near
// capacity.
//
// The standard mix is sustained ingest (assert/retract over a bounded
// pair set), paginated /query, /entity lookups, /subscribe churn, and
// /derive analytics. Op parameters derive from each arrival's sequence
// number, so a given (-people, -clusters, -seed, -rate, -duration) run
// is deterministic.
//
// Two ways to point it at a server:
//
//	kgload -url http://host:8080 -rate 500 -duration 10s
//	kgload -smoke
//
// -url drives an external kgserve; the world flags (-people, -clusters,
// -seed) must match the server's so generated entity keys resolve.
// -smoke stands up an in-process server over a fresh world, runs a
// short mixed load, and exits nonzero on any 5xx, transport error, or
// p99 above the read route's deadline — the CI gate scripts/ci.sh runs.
//
// -fault switches from load to misbehaving-client scenarios:
//
//	-fault slow-subscriber  open a /subscribe stream with max_pending 1,
//	                        read the snapshot, stall while driving
//	                        mutations through /ingest; expects the server
//	                        to evict the subscriber and deliver a final
//	                        {"error": ...} line
//	-fault disconnect       sever /query and /subscribe streams
//	                        mid-response repeatedly; expects /health to
//	                        keep answering afterward
//	-fault oversize         POST bodies past the 1 MiB cap; expects 413
//
// Usage:
//
//	kgload [-url URL | -smoke] [-rate 300] [-duration 5s] [-people 200] [-clusters 10] [-seed 1]
//	       [-timeout 10s] [-json] [-no-prime-rules] [-fault none|slow-subscriber|disconnect|oversize]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"saga/internal/admission"
	"saga/internal/server"
	"saga/internal/workload"
	"saga/saga"
)

func main() {
	url := flag.String("url", "", "base URL of a running kgserve (mutually exclusive with -smoke)")
	smoke := flag.Bool("smoke", false, "stand up an in-process server and run a short gating load")
	rate := flag.Float64("rate", 300, "arrival rate, requests per second")
	duration := flag.Duration("duration", 5*time.Second, "load duration")
	people := flag.Int("people", 200, "world size; must match the target server's -people")
	clusters := flag.Int("clusters", 10, "world communities; must match the target server's -clusters")
	seed := flag.Int64("seed", 1, "world seed; must match the target server's -seed")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request client timeout")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	noPrime := flag.Bool("no-prime-rules", false, "skip installing an empty rule program (the mix's /derive op needs one)")
	fault := flag.String("fault", "none", "fault scenario instead of load: none, slow-subscriber, disconnect, oversize")
	flag.Parse()

	if (*url == "") == !*smoke {
		log.Fatal("exactly one of -url or -smoke is required")
	}
	if *smoke {
		*duration = min(*duration, 3*time.Second)
	}

	w, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: *people, NumClusters: *clusters, Seed: *seed})
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}

	base := *url
	if *smoke {
		srv, shutdown, err := inProcessServer(w)
		if err != nil {
			log.Fatalf("in-process server: %v", err)
		}
		defer shutdown()
		base = srv
		log.Printf("in-process server on %s", base)
	}

	client := workload.NewLoadClient(*timeout)
	defer client.CloseIdleConnections()
	ctx := context.Background()

	if !*noPrime {
		// An empty rule program stands up the analytics engine so the
		// mix's /derive op answers 200 instead of 400.
		if err := primeRules(ctx, client, base); err != nil {
			log.Printf("warning: priming rules failed (%v); /derive ops may 400", err)
		}
	}

	switch *fault {
	case "none":
	case "slow-subscriber":
		os.Exit(runSlowSubscriber(ctx, client, base, w))
	case "disconnect":
		os.Exit(runDisconnect(ctx, client, base, w))
	case "oversize":
		os.Exit(runOversize(ctx, client, base))
	default:
		log.Fatalf("unknown -fault %q", *fault)
	}

	rep, err := workload.RunOpenLoop(ctx, workload.LoadConfig{
		BaseURL:  base,
		Client:   client,
		Rate:     *rate,
		Duration: *duration,
		Ops:      workload.StandardLoadOps(w),
		Seed:     *seed,
	})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	} else {
		fmt.Println(rep)
	}

	if *smoke {
		read, _, _ := admission.DefaultLimits()
		bound := read.Budget + read.QueueWait
		switch {
		case rep.ServerErrors > 0:
			log.Fatalf("smoke FAIL: %d server errors (5xx)", rep.ServerErrors)
		case rep.TransportErrors > 0:
			log.Fatalf("smoke FAIL: %d transport errors", rep.TransportErrors)
		case rep.Completed == 0:
			log.Fatal("smoke FAIL: no completed requests")
		case rep.P99 > bound:
			log.Fatalf("smoke FAIL: p99 %v above read deadline %v", rep.P99, bound)
		}
		log.Printf("smoke OK: %d completed, %d shed, p99 %v", rep.Completed, rep.Shed, rep.P99)
	}
}

// inProcessServer builds an untrained platform over w and serves it on
// a loopback listener; the returned shutdown closes the listener.
func inProcessServer(w *saga.World) (string, func(), error) {
	p := saga.New(w.Graph)
	if err := p.DefineRulesText(""); err != nil {
		return "", nil, err
	}
	srv, err := server.New(p, nil)
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 2 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() { _ = httpSrv.Close() }, nil
}

// primeRules installs an empty rule program over HTTP.
func primeRules(ctx context.Context, client *http.Client, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/rules", strings.NewReader(`{"text":""}`))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /rules = %d", resp.StatusCode)
	}
	return nil
}

// runSlowSubscriber opens a stalled subscription while driving distinct
// collaborator asserts through /ingest, and expects the server to evict
// it and deliver the final error line.
func runSlowSubscriber(ctx context.Context, client *http.Client, base string, w *saga.World) int {
	clauses := `[{"subject":{"var":"a"},"predicate":"collaborator","object":{"var":"b"}}]`
	type outcome struct {
		res *workload.SlowSubscribeResult
		err error
	}
	done := make(chan outcome, 1)
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	// The stream must outlive the stall plus however long the socket
	// takes to jam; the shared client's per-request timeout (default
	// 10s) is tuned for load ops, not a deliberately-stalled stream.
	slowClient := workload.NewLoadClient(45 * time.Second)
	defer slowClient.CloseIdleConnections()
	go func() {
		res, err := workload.SlowSubscribe(ctx, slowClient, base, clauses, 1, 2*time.Second)
		done <- outcome{res, err}
	}()

	keys := make([]string, len(w.People))
	for i, id := range w.People {
		keys[i] = w.Graph.Entity(id).Key
	}
	n := len(keys)
	churn := 0
	var out outcome
churnLoop:
	for {
		select {
		case out = <-done:
			break churnLoop
		default:
		}
		// Batched distinct bindings: each /ingest ships a few hundred
		// never-seen (person, int) facts, so every coalescing window's
		// delta event is fat enough to fill the stalled connection's
		// socket buffers quickly. Distinctness matters twice over — an
		// assert/retract of the same binding cancels in the server's
		// pending set, and a world's entity-pair pool is finite while
		// integer objects never run out (the object position is an
		// unconstrained variable, so any value matches the clause).
		var sb strings.Builder
		sb.WriteString(`{"asserts":[`)
		for i := 0; i < 256; i++ {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, `{"subject":%q,"predicate":"collaborator","object":{"int":%d}}`, keys[churn%n], churn)
			churn++
		}
		sb.WriteString(`]}`)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/ingest", strings.NewReader(sb.String()))
		req.Header.Set("Content-Type", "application/json")
		if resp, err := client.Do(req); err == nil {
			if resp.StatusCode != http.StatusOK {
				log.Printf("slow-subscriber: ingest churn status %d", resp.StatusCode)
			}
			resp.Body.Close()
		} else if ctx.Err() == nil {
			log.Printf("slow-subscriber: ingest churn: %v", err)
		}
	}
	if out.err != nil {
		log.Printf("slow-subscriber FAIL: %v", out.err)
		return 1
	}
	if out.res.Status != http.StatusOK || !strings.Contains(out.res.ErrorLine, "evicted") {
		log.Printf("slow-subscriber FAIL: status %d, error line %q (want eviction)", out.res.Status, out.res.ErrorLine)
		return 1
	}
	log.Printf("slow-subscriber OK: evicted after %d events (%q)", out.res.Lines, out.res.ErrorLine)
	return 0
}

// runDisconnect severs streams mid-response and checks the server still
// answers afterward.
func runDisconnect(ctx context.Context, client *http.Client, base string, w *saga.World) int {
	team := w.Graph.Entity(w.Teams[0]).Key
	qbody := fmt.Sprintf(`{"clauses":[{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":%q}}]}`, team)
	sbody := `{"clauses":[{"subject":{"var":"a"},"predicate":"collaborator","object":{"var":"b"}}],"coalesce_ms":1}`
	for i := 0; i < 16; i++ {
		if _, err := workload.MidStreamDisconnect(ctx, client, base, "/query", qbody, 200*time.Millisecond); err != nil {
			log.Printf("disconnect FAIL: /query: %v", err)
			return 1
		}
		if _, err := workload.MidStreamDisconnect(ctx, client, base, "/subscribe", sbody, 200*time.Millisecond); err != nil {
			log.Printf("disconnect FAIL: /subscribe: %v", err)
			return 1
		}
	}
	resp, err := client.Get(base + "/health")
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Printf("disconnect FAIL: /health after churn: %v (status %v)", err, resp)
		return 1
	}
	resp.Body.Close()
	log.Print("disconnect OK: 32 mid-stream severs, server healthy")
	return 0
}

// runOversize posts over-limit bodies and expects 413s.
func runOversize(ctx context.Context, client *http.Client, base string) int {
	for _, path := range []string{"/query", "/ingest"} {
		status, err := workload.OversizedBody(ctx, client, base, path, 1<<20)
		if err != nil {
			log.Printf("oversize FAIL: %s: %v", path, err)
			return 1
		}
		if status != http.StatusRequestEntityTooLarge {
			log.Printf("oversize FAIL: %s = %d, want 413", path, status)
			return 1
		}
	}
	log.Print("oversize OK: 413 on /query and /ingest")
	return 0
}
