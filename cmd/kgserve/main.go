// Command kgserve stands up the knowledge-serving HTTP API (Fig 1's
// serving layer) over a synthetic world: it generates a KG, trains
// embeddings, builds the annotation service and a web-search index, and
// serves /health, /entity, /annotate, /rank, /verify, /related, /search,
// the conjunctive-query endpoint POST /query, and the live-subscription
// endpoint POST /subscribe.
//
// /query streams: the body is {"clauses": [...], "limit": N,
// "cursor": "..."} (limit defaults to 1000 and is capped; bodies over
// 1 MiB or 32 clauses are rejected), the solve stops as soon as the page
// is full or the client disconnects, and the response's "next_cursor"
// token fetches the next page:
//
//	curl -s localhost:8080/query -d '{
//	  "clauses": [{"subject": {"var": "p"}, "predicate": "memberOf",
//	               "object": {"key": "team0"}}],
//	  "limit": 10}'
//
// Adding "explain": true to the body returns the execution plan —
// clause order, access paths, cardinality estimates — instead of
// running the query:
//
//	curl -s localhost:8080/query -d '{
//	  "clauses": [...], "explain": true}'
//
// -query-workers N (default 1) solves each /query with N parallel
// workers over the first clause's candidates. Responses, pages, and
// cursors are byte-identical at any worker count; the flag only trades
// CPU for latency on large solves. /health reports the plan cache's
// hit/miss/invalidation/eviction counters under "plan_cache" and the
// changefeed's watermark, durable LSN, checkpoint retention, and
// subscriber health under "changefeed".
//
// POST /subscribe streams a standing query's answer set as NDJSON: a
// full snapshot first, then coalesced add/retract deltas as the graph
// mutates (see internal/server's subscribe.go). Subscription streams
// outlive the server's WriteTimeout — the handler sets a per-write
// deadline on each event instead.
//
// -rules FILE installs a Datalog-style rule program (internal/rules) at
// startup; its head predicates answer through /query, /subscribe, and
// cursors exactly like base predicates and stay fresh as the graph
// mutates. The same program can be (re)installed at runtime with
// POST /rules {"text": "..."}; GET /rules returns the installed source
// and maintenance counters, and POST /derive materializes in-graph
// analytics (connected components, sameAs closure, k-hop) as derived
// predicates:
//
//	curl -s localhost:8080/derive -d '{"kind": "components", "out": "component"}'
//
// /health reports the rules engine's fact count and maintenance
// counters under "rules" once a program is installed.
//
// The serving tier is overload-safe: every route passes an admission
// gate (internal/admission) with per-class concurrency limits, bounded
// FIFO wait queues, and per-request deadlines. Reads (/query, /entity,
// /search, ...), writes (/ingest, /derive, POST /rules), and
// subscriptions are limited independently — health and metrics are
// exempt, and writes shed first under pressure so reads keep serving.
// Overflow is shed with 429 + Retry-After; a request whose class budget
// expires mid-solve gets 503 + Retry-After. /health reports per-class
// in-flight, queue depth, admitted and shed counters under "admission".
// The knobs:
//
//	-read-limit N        max in-flight read requests (default 256)
//	-read-queue N        bounded read wait queue (default 512)
//	-read-queue-wait D   max time a read may queue (default 250ms)
//	-read-budget D       read request deadline (default 5s)
//	-write-limit N       max in-flight writes (default 64)
//	-write-queue N       bounded write wait queue (default 128)
//	-write-queue-wait D  max time a write may queue (default 100ms)
//	-write-budget D      write request deadline (default 5s)
//	-max-subscriptions N concurrent /subscribe streams (default 1024);
//	                     excess subscribers get 429 immediately
//
// On SIGINT/SIGTERM the server enters drain: new requests are shed
// with 503 + Retry-After while in-flight ones finish, then the listener
// closes. cmd/kgload drives this tier with an open-loop
// constant-arrival-rate workload and misbehaving-client fault modes.
//
// With -data-dir the graph is durable: a fresh directory is seeded from
// the generated world (checkpointed on startup), an existing one is
// recovered — checkpoint load plus write-ahead-log replay — and served
// in place of a fresh generation. Durable platforms additionally serve
// point-in-time reads: "as_of": <watermark> in a /query body evaluates
// against the graph as of that mutation watermark, reconstructed from
// retained checkpoints plus the log. SIGINT/SIGTERM drain in-flight
// requests, then flush and close the log.
//
// Usage:
//
//	kgserve [-addr :8080] [-people 200] [-clusters 10] [-docs 400] [-seed 1] [-data-dir DIR] [-query-workers 1] [-rules FILE]
//	        [-read-limit 256] [-read-queue 512] [-read-queue-wait 250ms] [-read-budget 5s]
//	        [-write-limit 64] [-write-queue 128] [-write-queue-wait 100ms] [-write-budget 5s] [-max-subscriptions 1024]
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"saga/internal/admission"
	"saga/internal/server"
	"saga/saga"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	people := flag.Int("people", 200, "number of person entities")
	clusters := flag.Int("clusters", 10, "number of communities")
	docs := flag.Int("docs", 400, "web corpus size")
	seed := flag.Int64("seed", 1, "generation seed")
	dim := flag.Int("dim", 32, "embedding dimensionality")
	epochs := flag.Int("epochs", 25, "training epochs")
	dataDir := flag.String("data-dir", "", "durable data directory (WAL + checkpoints); empty serves from memory only. World flags (-people, -clusters, -seed) must match across restarts of the same directory")
	queryWorkers := flag.Int("query-workers", 1, "parallel workers per /query solve (1 = sequential; results are identical at any count)")
	rulesFile := flag.String("rules", "", "Datalog-style rule program to install at startup (see internal/rules for the syntax)")
	defRead, defWrite, defSub := admission.DefaultLimits()
	readLimit := flag.Int("read-limit", defRead.MaxInFlight, "max in-flight read requests (0 = unlimited)")
	readQueue := flag.Int("read-queue", defRead.MaxQueue, "bounded read wait queue (0 = shed immediately at capacity)")
	readQueueWait := flag.Duration("read-queue-wait", defRead.QueueWait, "max time a read may wait in queue before 429")
	readBudget := flag.Duration("read-budget", defRead.Budget, "read request deadline; expiry mid-solve answers 503 (0 = none)")
	writeLimit := flag.Int("write-limit", defWrite.MaxInFlight, "max in-flight write requests (0 = unlimited)")
	writeQueue := flag.Int("write-queue", defWrite.MaxQueue, "bounded write wait queue (0 = shed immediately at capacity)")
	writeQueueWait := flag.Duration("write-queue-wait", defWrite.QueueWait, "max time a write may wait in queue before 429")
	writeBudget := flag.Duration("write-budget", defWrite.Budget, "write request deadline (0 = none)")
	maxSubscriptions := flag.Int("max-subscriptions", defSub.MaxInFlight, "concurrent /subscribe streams; excess get 429 (0 = unlimited)")
	flag.Parse()

	log.Printf("generating world: %d people, %d clusters (seed %d)", *people, *clusters, *seed)
	w, err := saga.GenerateWorld(saga.WorldConfig{
		NumPeople: *people, NumClusters: *clusters, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}

	var p *saga.Platform
	if *dataDir != "" {
		var info *saga.RecoveryInfo
		p, info, err = saga.OpenDurablePlatform(*dataDir, saga.DurableOptions{Sync: saga.SyncEachCommit})
		if err != nil {
			log.Fatalf("open data dir %s: %v", *dataDir, err)
		}
		for _, d := range info.Diagnostics {
			log.Printf("recovery: %s", d)
		}
		if info.RecoveredLSN == 0 {
			log.Printf("seeding fresh data dir %s from generated world", *dataDir)
			if err := saga.ImportGraph(p.Graph(), w.Graph); err != nil {
				log.Fatalf("seed data dir: %v", err)
			}
			if _, err := p.CheckpointDurable(); err != nil {
				log.Fatalf("checkpoint seed: %v", err)
			}
		} else {
			log.Printf("recovered %s: LSN %d, %d mutations replayed past checkpoint %d",
				*dataDir, info.RecoveredLSN, info.MutationsReplayed, info.CheckpointLSN)
			if got, want := p.Graph().NumEntities(), w.Graph.NumEntities(); got < want {
				log.Printf("warning: recovered graph has %d entities, generated world %d — were the world flags changed?", got, want)
			}
		}
	} else {
		p = saga.New(w.Graph)
	}

	log.Printf("training %s embeddings (dim %d, %d epochs)", saga.DistMult, *dim, *epochs)
	if err := p.TrainEmbeddings(saga.EmbeddingOptions{
		Train: saga.TrainConfig{Model: saga.DistMult, Dim: *dim, Epochs: *epochs, Seed: *seed},
	}); err != nil {
		log.Fatalf("train embeddings: %v", err)
	}

	// Calibrate the verifier on observed facts vs corrupted ones. The
	// serving graph's IDs agree with the generated world's because the
	// generator is deterministic and recovery reproduces IDs exactly.
	g := p.Graph()
	occ := w.Preds["occupation"]
	var pos, neg [][3]uint32
	for _, person := range w.People {
		for f := range g.FactsSeq(person, occ) {
			pos = append(pos, [3]uint32{uint32(person), uint32(occ), uint32(f.Object.Entity)})
		}
		other := w.People[(int(person)+7)%len(w.People)]
		neg = append(neg, [3]uint32{uint32(person), uint32(occ), uint32(other)})
	}
	if err := p.CalibrateVerifier(pos, neg); err != nil {
		log.Fatalf("calibrate verifier: %v", err)
	}

	if err := p.BuildAnnotator(saga.AnnotateConfig{Mode: saga.ModeContextual, Seed: *seed}); err != nil {
		log.Fatalf("build annotator: %v", err)
	}

	if *rulesFile != "" {
		text, err := os.ReadFile(*rulesFile)
		if err != nil {
			log.Fatalf("read rules %s: %v", *rulesFile, err)
		}
		if err := p.DefineRulesText(string(text)); err != nil {
			log.Fatalf("install rules %s: %v", *rulesFile, err)
		}
		st := p.RuleStats()
		log.Printf("installed %d rules from %s: %d derived facts, %d strata", st.Rules, *rulesFile, st.Facts, st.Strata)
	}

	log.Printf("generating %d-document corpus and search index", *docs)
	corpus := saga.GenerateCorpus(w, saga.CorpusConfig{NumDocs: *docs, Seed: *seed})
	index := saga.NewSearchIndex(corpus)

	srv, err := server.New(p, index)
	if err != nil {
		log.Fatalf("build server: %v", err)
	}
	srv.QueryWorkers = *queryWorkers
	srv.Admission = admission.NewController(
		admission.Limits{MaxInFlight: *readLimit, MaxQueue: *readQueue, QueueWait: *readQueueWait, Budget: *readBudget},
		admission.Limits{MaxInFlight: *writeLimit, MaxQueue: *writeQueue, QueueWait: *writeQueueWait, Budget: *writeBudget},
		admission.Limits{MaxInFlight: *maxSubscriptions},
	)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 2 * time.Second,
		ReadTimeout:       5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	log.Printf("serving %d entities / %d triples on %s", g.NumEntities(), g.NumTriples(), *addr)
	log.Printf("try: curl 'localhost%s/entity?key=person0'", *addr)
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		stop()
		log.Printf("shutdown signal received; draining requests")
		// Admission-level drain first: new arrivals shed with 503 +
		// Retry-After while Shutdown waits out the in-flight ones.
		srv.StartDrain()
		drainCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			log.Printf("drain: %v", err)
		}
		if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			log.Printf("serve: %v", serveErr)
		}
	}
	if p.Durability() != nil {
		if _, err := p.CheckpointDurable(); err != nil {
			log.Printf("final checkpoint: %v", err)
		}
		if err := p.CloseDurable(); err != nil {
			log.Printf("close data dir: %v", err)
		}
		log.Printf("durable state closed")
	}
}
