// Command kgserve stands up the knowledge-serving HTTP API (Fig 1's
// serving layer) over a synthetic world: it generates a KG, trains
// embeddings, builds the annotation service and a web-search index, and
// serves /health, /entity, /annotate, /rank, /verify, /related, /search,
// and the conjunctive-query endpoint POST /query.
//
// /query streams: the body is {"clauses": [...], "limit": N,
// "cursor": "..."} (limit defaults to 1000 and is capped; bodies over
// 1 MiB or 32 clauses are rejected), the solve stops as soon as the page
// is full or the client disconnects, and the response's "next_cursor"
// token fetches the next page:
//
//	curl -s localhost:8080/query -d '{
//	  "clauses": [{"subject": {"var": "p"}, "predicate": "memberOf",
//	               "object": {"key": "team0"}}],
//	  "limit": 10}'
//
// Usage:
//
//	kgserve [-addr :8080] [-people 200] [-clusters 10] [-docs 400] [-seed 1]
package main

import (
	"flag"
	"log"
	"net/http"

	"saga/internal/server"
	"saga/saga"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	people := flag.Int("people", 200, "number of person entities")
	clusters := flag.Int("clusters", 10, "number of communities")
	docs := flag.Int("docs", 400, "web corpus size")
	seed := flag.Int64("seed", 1, "generation seed")
	dim := flag.Int("dim", 32, "embedding dimensionality")
	epochs := flag.Int("epochs", 25, "training epochs")
	flag.Parse()

	log.Printf("generating world: %d people, %d clusters (seed %d)", *people, *clusters, *seed)
	w, err := saga.GenerateWorld(saga.WorldConfig{
		NumPeople: *people, NumClusters: *clusters, Seed: *seed,
	})
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	p := saga.New(w.Graph)

	log.Printf("training %s embeddings (dim %d, %d epochs)", saga.DistMult, *dim, *epochs)
	if err := p.TrainEmbeddings(saga.EmbeddingOptions{
		Train: saga.TrainConfig{Model: saga.DistMult, Dim: *dim, Epochs: *epochs, Seed: *seed},
	}); err != nil {
		log.Fatalf("train embeddings: %v", err)
	}

	// Calibrate the verifier on observed facts vs corrupted ones.
	occ := w.Preds["occupation"]
	var pos, neg [][3]uint32
	for _, person := range w.People {
		for f := range w.Graph.FactsSeq(person, occ) {
			pos = append(pos, [3]uint32{uint32(person), uint32(occ), uint32(f.Object.Entity)})
		}
		other := w.People[(int(person)+7)%len(w.People)]
		neg = append(neg, [3]uint32{uint32(person), uint32(occ), uint32(other)})
	}
	if err := p.CalibrateVerifier(pos, neg); err != nil {
		log.Fatalf("calibrate verifier: %v", err)
	}

	if err := p.BuildAnnotator(saga.AnnotateConfig{Mode: saga.ModeContextual, Seed: *seed}); err != nil {
		log.Fatalf("build annotator: %v", err)
	}

	log.Printf("generating %d-document corpus and search index", *docs)
	corpus := saga.GenerateCorpus(w, saga.CorpusConfig{NumDocs: *docs, Seed: *seed})
	index := saga.NewSearchIndex(corpus)

	srv, err := server.New(p, index)
	if err != nil {
		log.Fatalf("build server: %v", err)
	}
	g := w.Graph
	log.Printf("serving %d entities / %d triples on %s", g.NumEntities(), g.NumTriples(), *addr)
	log.Printf("try: curl 'localhost%s/entity?key=person0'", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
