// Command weblink runs Web-scale semantic annotation (Fig 4): generate a
// corpus over a synthetic KG, annotate every document, link annotations
// into the graph as entity→document edges, report throughput and linking
// quality against the generator's gold mentions, then demonstrate
// incremental re-annotation after a simulated crawl update.
//
// Usage:
//
//	weblink [-docs 500] [-workers 4] [-mode contextual] [-changerate 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	"saga/internal/annotate"
	"saga/internal/webcorpus"
	"saga/internal/workload"
)

func main() {
	docs := flag.Int("docs", 500, "corpus size")
	workers := flag.Int("workers", 4, "annotation workers")
	mode := flag.String("mode", "contextual", "ranking mode: lexical, popularity, contextual")
	changeRate := flag.Float64("changerate", 0.1, "fraction of docs changed before the incremental pass")
	people := flag.Int("people", 200, "number of person entities")
	seed := flag.Int64("seed", 1, "seed")
	flag.Parse()

	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: *people, NumClusters: 10, AmbiguousNamePairs: 8, Seed: *seed})
	if err != nil {
		log.Fatalf("generate world: %v", err)
	}
	corpus := webcorpus.Generate(w, webcorpus.Config{NumDocs: *docs, Seed: *seed})
	a, err := annotate.New(w.Graph, annotate.Config{Mode: annotate.Mode(*mode), Seed: *seed})
	if err != nil {
		log.Fatalf("build annotator: %v", err)
	}
	pipe := annotate.NewPipeline(a, *workers)

	start := time.Now()
	stats := pipe.Run(corpus)
	elapsed := time.Since(start)
	fmt.Printf("full pass: %d docs, %d mentions in %v (%.0f docs/s)\n",
		stats.Processed, stats.Mentions, elapsed.Round(time.Millisecond),
		float64(stats.Processed)/elapsed.Seconds())

	// Linking quality against gold.
	var correct, total int
	for _, d := range corpus {
		res, ok := pipe.Result(d.ID)
		if !ok {
			continue
		}
		byStart := make(map[int]annotate.Annotation)
		for _, ann := range res.Items {
			byStart[ann.Start] = ann
		}
		for _, gm := range d.Gold {
			total++
			if ann, ok := byStart[gm.Start]; ok && ann.Entity == gm.Entity {
				correct++
			}
		}
	}
	if total > 0 {
		fmt.Printf("linking accuracy vs gold: %.3f (%d/%d mentions)\n",
			float64(correct)/float64(total), correct, total)
	}

	added, err := pipe.LinkToGraph(w.Graph)
	if err != nil {
		log.Fatalf("link to graph: %v", err)
	}
	fmt.Printf("graph extended with %d entity→document edges (now %d triples)\n",
		added, w.Graph.NumTriples())

	// Incremental pass after simulated crawl update.
	rng := rand.New(rand.NewSource(*seed))
	changed := webcorpus.Mutate(corpus, *changeRate, rng)
	start = time.Now()
	inc := pipe.Run(corpus)
	fmt.Printf("incremental pass after %d changed docs: processed %d, skipped %d in %v\n",
		len(changed), inc.Processed, inc.Skipped, time.Since(start).Round(time.Millisecond))
}
