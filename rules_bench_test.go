package repro_test

import (
	"fmt"
	"testing"

	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/rules"
	"saga/internal/workload"
)

// BenchmarkE19Rules measures the rule layer (experiment E19, report-only
// — excluded from the benchcmp gate; the numbers price algorithm
// choices against each other, not a regression surface).
//
// The workload is the canonical recursive program — transitive closure
// of management chains — over an org forest: 200 reporting chains of
// depth 10 (1,800 base edges, 9,000 closure facts). "full" pays a
// from-scratch fixpoint per iteration (rules.New seeds the store by
// stratum); the "delta" cases cut a fixed fraction of the base edges,
// Sync (cascade + repair of the damaged region), re-assert them, and
// Sync again (semi-naive propagation refills the holes). The point of
// the comparison: maintenance cost scales with the damage a mutation
// does — bounded by chain depth squared per cut — not with the size of
// the derived store, so delta must come in under full at small churn,
// which is the whole argument for incremental maintenance. (A single
// maximally deep chain is the adversarial shape: every cut splits the
// whole closure and full re-derivation wins. Org hierarchies are
// shallow; the forest is the representative case.)
//
// "cc" prices one connected-components materialization (CSR snapshot
// build + BFS + diff against the previous labelling) over a synthetic
// open-domain world, the analytics path's steady-state cost.
func BenchmarkE19Rules(b *testing.B) {
	b.Run("closure/full", benchRulesFull)
	for _, churn := range []int{1, 5} {
		b.Run(fmt.Sprintf("closure/delta-churn=%d%%", churn), func(b *testing.B) {
			benchRulesDelta(b, churn)
		})
	}
	b.Run("cc", benchRulesComponents)
}

const (
	benchOrgChains = 200
	benchOrgDepth  = 10
)

// benchOrgWorld builds the org forest — benchOrgChains reporting chains
// of benchOrgDepth entities each — and its two-rule closure program.
// Returns the base edges and the closure's expected fact count.
func benchOrgWorld(b *testing.B) (*kg.Graph, *graphengine.Engine, *rules.RuleSet, []kg.Triple, int) {
	b.Helper()
	g := kg.NewGraphWithShards(16)
	pred, err := g.AddPredicate(kg.Predicate{Name: "reportsTo"})
	if err != nil {
		b.Fatal(err)
	}
	var edges []kg.Triple
	for c := 0; c < benchOrgChains; c++ {
		prev := kg.NoEntity
		for d := 0; d < benchOrgDepth; d++ {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("c%dd%d", c, d)})
			if err != nil {
				b.Fatal(err)
			}
			if prev != kg.NoEntity {
				tr := kg.Triple{Subject: prev, Predicate: pred, Object: kg.EntityValue(id)}
				if err := g.Assert(tr); err != nil {
					b.Fatal(err)
				}
				edges = append(edges, tr)
			}
			prev = id
		}
	}
	rs, err := rules.ParseRules(g, `
		chain(X, Y) :- reportsTo(X, Y).
		chain(X, Z) :- chain(X, Y), reportsTo(Y, Z).
	`)
	if err != nil {
		b.Fatal(err)
	}
	wantFacts := benchOrgChains * benchOrgDepth * (benchOrgDepth - 1) / 2
	return g, graphengine.New(g), rs, edges, wantFacts
}

func benchRulesFull(b *testing.B) {
	_, geng, rs, _, wantFacts := benchOrgWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := rules.New(geng, rs, rules.Options{NoMaintainer: true})
		if err != nil {
			b.Fatal(err)
		}
		if got := e.Stats().Facts; got != wantFacts {
			b.Fatalf("derived %d facts, want %d", got, wantFacts)
		}
		e.Close()
	}
	b.ReportMetric(float64(wantFacts), "facts")
}

func benchRulesDelta(b *testing.B, churnPct int) {
	g, geng, rs, edges, wantFacts := benchOrgWorld(b)
	e, err := rules.New(geng, rs, rules.Options{NoMaintainer: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	churn := len(edges) * churnPct / 100
	if churn < 1 {
		churn = 1
	}
	// Spread the churned edges across the forest; rotating by iteration
	// mixes cut positions (and so repair costs) across the run.
	step := len(edges) / churn
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < churn; j++ {
			if !g.Retract(edges[(j*step+i)%len(edges)]) {
				b.Fatal("retract failed")
			}
		}
		e.Sync() // cascade the damage, repair what survives
		for j := 0; j < churn; j++ {
			if err := g.Assert(edges[(j*step+i)%len(edges)]); err != nil {
				b.Fatal(err)
			}
		}
		e.Sync() // semi-naive propagation refills the holes
		if got := e.Stats().Facts; got != wantFacts {
			b.Fatalf("iteration %d: %d facts, want %d", i, got, wantFacts)
		}
	}
	b.StopTimer()
	if e.Stats().FullRuns != 1 {
		b.Fatalf("maintenance fell back to full re-derivation %d times", e.Stats().FullRuns-1)
	}
	b.ReportMetric(float64(churn), "edges/op")
}

func benchRulesComponents(b *testing.B) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 2000, NumClusters: 40, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	g := w.Graph
	geng := graphengine.New(g)
	rs, err := rules.ParseRules(g, "")
	if err != nil {
		b.Fatal(err)
	}
	e, err := rules.New(geng, rs, rules.Options{NoMaintainer: true})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	out, err := g.AddPredicate(kg.Predicate{Name: "component"})
	if err != nil {
		b.Fatal(err)
	}
	var facts int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.DeriveComponents(out)
		if err != nil {
			b.Fatal(err)
		}
		facts = rep.Facts
	}
	b.StopTimer()
	b.ReportMetric(float64(facts), "facts")
}
