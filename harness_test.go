// Package repro_test is the benchmark and experiment harness at the root
// of the repository. It reproduces, for each figure of the paper, a
// quantified experiment (experiments_test.go, TestE1–TestE12) and a
// performance benchmark (bench_test.go, BenchmarkE1–BenchmarkE12). See
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// results.
package repro_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"saga/internal/annotate"
	"saga/internal/embedding"
	"saga/internal/embedserve"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/webcorpus"
	"saga/internal/websearch"
	"saga/internal/workload"
)

// fixture is the shared experimental setup: one synthetic world, a
// filtered training view, a trained DistMult model + service, walk
// embeddings, annotators in all three modes, and an annotated corpus.
// Building it is expensive, so it is created once per test binary.
type fixture struct {
	w      *workload.World
	engine *graphengine.Engine

	dataset *embedding.Dataset
	train   *embedding.Dataset
	test    *embedding.Dataset
	model   embedding.Model
	svc     *embedserve.Service

	walkSvc *embedserve.Service // same model, walk embeddings installed

	annotators map[annotate.Mode]*annotate.Annotator

	corpus []*webcorpus.Document
	index  *websearch.Index
}

var (
	fixOnce sync.Once
	fixVal  *fixture
	fixErr  error
)

// getFixture builds (once) and returns the shared fixture.
func getFixture(tb testing.TB) *fixture {
	tb.Helper()
	fixOnce.Do(func() { fixVal, fixErr = buildFixture() })
	if fixErr != nil {
		tb.Fatalf("build fixture: %v", fixErr)
	}
	return fixVal
}

func buildFixture() (*fixture, error) {
	w, err := workload.GenerateKG(workload.KGConfig{
		NumPeople: 120, NumClusters: 10, OccupationsPerPerson: 3,
		AmbiguousNamePairs: 8, LiteralNoiseFacts: 2, Seed: 2023,
	})
	if err != nil {
		return nil, err
	}
	f := &fixture{w: w, engine: graphengine.New(w.Graph)}

	view := f.engine.Materialize(graphengine.ViewDef{Name: "harness", DropLiteralFacts: true})
	f.dataset = embedding.NewDataset(view.Triples())
	f.train, f.test, err = f.dataset.Split(0.1, 2023)
	if err != nil {
		return nil, err
	}
	f.model, err = embedding.Train(f.train, embedding.TrainConfig{
		Model: embedding.DistMult, Dim: 32, Epochs: 30, LearningRate: 0.08,
		Negatives: 4, Workers: 4, Seed: 2023,
	})
	if err != nil {
		return nil, err
	}
	f.svc, err = embedserve.New(w.Graph, f.model, f.dataset)
	if err != nil {
		return nil, err
	}

	f.walkSvc, err = embedserve.New(w.Graph, f.model, f.dataset)
	if err != nil {
		return nil, err
	}
	walkVecs := embedding.TrainWalkEmbeddings(f.engine, w.People, embedding.WalkEmbedConfig{
		Dim: 64, WalksPerNode: 25, WalkLength: 3, Seed: 2023,
	})
	if err := f.walkSvc.SetWalkEmbeddings(walkVecs); err != nil {
		return nil, err
	}

	f.annotators = make(map[annotate.Mode]*annotate.Annotator)
	for _, mode := range []annotate.Mode{annotate.ModeLexical, annotate.ModePopularity, annotate.ModeContextual} {
		a, err := annotate.New(w.Graph, annotate.Config{Mode: mode, Seed: 2023})
		if err != nil {
			return nil, err
		}
		f.annotators[mode] = a
	}

	f.corpus = webcorpus.Generate(w, webcorpus.Config{
		NumDocs: 400, InfoboxFraction: 0.5, WrongInfoboxFraction: 0.15, Seed: 2023,
	})
	f.index = websearch.NewIndex(f.corpus)
	return f, nil
}

// row prints an experiment result row in a uniform, grep-able format that
// EXPERIMENTS.md quotes.
func row(tb testing.TB, exp, label string, kv ...any) {
	tb.Helper()
	s := fmt.Sprintf("[%s] %-32s", exp, label)
	for i := 0; i+1 < len(kv); i += 2 {
		switch v := kv[i+1].(type) {
		case float64:
			s += fmt.Sprintf(" %s=%.4f", kv[i], v)
		default:
			s += fmt.Sprintf(" %s=%v", kv[i], v)
		}
	}
	tb.Log(s)
}

// linkingAccuracy measures mention-linking accuracy of an annotator over
// the fixture corpus: overall and over ambiguous gold mentions only.
func linkingAccuracy(f *fixture, a *annotate.Annotator) (overall, ambiguous float64) {
	var correct, total, ambCorrect, ambTotal int
	for _, d := range f.corpus {
		anns := a.Annotate(d.Text)
		byStart := make(map[int]annotate.Annotation)
		for _, ann := range anns {
			byStart[ann.Start] = ann
		}
		for _, gm := range d.Gold {
			total++
			ann, ok := byStart[gm.Start]
			hit := ok && ann.Entity == gm.Entity
			if hit {
				correct++
			}
			if gm.Ambiguous {
				ambTotal++
				if hit {
					ambCorrect++
				}
			}
		}
	}
	if total > 0 {
		overall = float64(correct) / float64(total)
	}
	if ambTotal > 0 {
		ambiguous = float64(ambCorrect) / float64(ambTotal)
	}
	return overall, ambiguous
}

// goldRank returns the 1-based rank of want in ranked entity IDs (0 if
// absent).
func goldRank(ranked []kg.EntityID, want kg.EntityID) int {
	for i, id := range ranked {
		if id == want {
			return i + 1
		}
	}
	return 0
}

// shuffledPeople returns a deterministic shuffled copy of the fixture's
// people for sampling.
func shuffledPeople(f *fixture, seed int64) []kg.EntityID {
	out := append([]kg.EntityID(nil), f.w.People...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}
