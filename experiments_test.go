package repro_test

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"saga/internal/annotate"
	"saga/internal/embedding"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/metrics"
	"saga/internal/odke"
	"saga/internal/ondevice"
	"saga/internal/vecindex"
	"saga/internal/webcorpus"
	"saga/internal/websearch"
	"saga/internal/workload"
)

// ---------------------------------------------------------------- E1
// Fig 2 "Fact Ranking": embedding-based ranking of multi-valued facts
// must beat the popularity baseline, which must beat random.
func TestE1FactRankingQuality(t *testing.T) {
	f := getFixture(t)
	occ := f.w.Preds["occupation"]
	rng := rand.New(rand.NewSource(1))

	var embRanks, popRanks, randRanks []int
	for _, p := range f.w.People {
		gold := f.w.OccupationGold[p][0]
		ranked, err := f.svc.RankFacts(p, occ)
		if err != nil || len(ranked) < 2 {
			continue
		}
		// Embedding order.
		var embOrder []kg.EntityID
		for _, rf := range ranked {
			embOrder = append(embOrder, rf.Triple.Object.Entity)
		}
		embRanks = append(embRanks, goldRank(embOrder, gold))
		// Popularity baseline: same facts ordered by object popularity.
		popOrder := append([]kg.EntityID(nil), embOrder...)
		sort.Slice(popOrder, func(i, j int) bool {
			return f.w.Graph.Entity(popOrder[i]).Popularity > f.w.Graph.Entity(popOrder[j]).Popularity
		})
		popRanks = append(popRanks, goldRank(popOrder, gold))
		// Random baseline.
		randOrder := append([]kg.EntityID(nil), embOrder...)
		rng.Shuffle(len(randOrder), func(i, j int) { randOrder[i], randOrder[j] = randOrder[j], randOrder[i] })
		randRanks = append(randRanks, goldRank(randOrder, gold))
	}
	embMRR := metrics.MRR(embRanks)
	popMRR := metrics.MRR(popRanks)
	randMRR := metrics.MRR(randRanks)
	row(t, "E1", "fact-ranking MRR", "embedding", embMRR, "popularity", popMRR, "random", randMRR, "n", len(embRanks))
	if embMRR <= popMRR {
		t.Errorf("embedding MRR %.3f must beat popularity %.3f", embMRR, popMRR)
	}
	if embMRR <= randMRR {
		t.Errorf("embedding MRR %.3f must beat random %.3f", embMRR, randMRR)
	}
}

// ---------------------------------------------------------------- E2
// Fig 2 "Fact Verification": scoring held-out true triples vs corrupted
// triples must separate well (AUC) for every model family.
func TestE2FactVerificationQuality(t *testing.T) {
	f := getFixture(t)
	kinds := []embedding.ModelKind{embedding.TransE, embedding.DistMult, embedding.ComplEx}
	for _, kind := range kinds {
		var m embedding.Model
		var err error
		if kind == embedding.DistMult {
			m = f.model // fixture-trained
		} else {
			m, err = embedding.Train(f.train, embedding.TrainConfig{
				Model: kind, Dim: 32, Epochs: 30, LearningRate: 0.08,
				Negatives: 4, Workers: 4, Seed: 2023,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		var pos, neg []float64
		rng := rand.New(rand.NewSource(7))
		for _, tr := range f.test.Triples {
			pos = append(pos, m.Score(tr[0], tr[1], tr[2]))
			for {
				cand := int32(rng.Intn(f.dataset.NumEntities()))
				if !f.dataset.Known(tr[0], tr[1], cand) {
					neg = append(neg, m.Score(tr[0], tr[1], cand))
					break
				}
			}
		}
		auc := metrics.AUC(pos, neg)
		row(t, "E2", "fact-verification AUC", "model", string(kind), "auc", auc, "n", len(pos))
		if auc < 0.75 {
			t.Errorf("%s AUC = %.3f, want > 0.75", kind, auc)
		}
	}
}

// ---------------------------------------------------------------- E3
// Fig 2 "Related Entities": precision@10 against cluster co-membership,
// walk-embedding kNN vs PPR traversal vs global-degree baseline.
func TestE3RelatedEntitiesQuality(t *testing.T) {
	f := getFixture(t)
	people := shuffledPeople(f, 3)[:30]
	isPerson := make(map[kg.EntityID]bool, len(f.w.People))
	for _, p := range f.w.People {
		isPerson[p] = true
	}
	// Global degree baseline: people by undirected degree.
	type deg struct {
		id kg.EntityID
		d  int
	}
	var degs []deg
	for _, p := range f.w.People {
		degs = append(degs, deg{p, len(f.engine.Neighbors(p))})
	}
	sort.Slice(degs, func(i, j int) bool {
		if degs[i].d != degs[j].d {
			return degs[i].d > degs[j].d
		}
		return degs[i].id < degs[j].id
	})

	precAt := func(list []kg.EntityID, src kg.EntityID, k int) float64 {
		if len(list) > k {
			list = list[:k]
		}
		if len(list) == 0 {
			return 0
		}
		var hit int
		for _, id := range list {
			if f.w.Cluster[id] == f.w.Cluster[src] {
				hit++
			}
		}
		return float64(hit) / float64(len(list))
	}

	var walkP, pprP, degP []float64
	for _, src := range people {
		// Walk-embedding kNN (restricted to people).
		rel, err := f.walkSvc.RelatedEntities(src, 30)
		if err != nil {
			t.Fatal(err)
		}
		var walkList []kg.EntityID
		for _, se := range rel {
			if isPerson[se.ID] {
				walkList = append(walkList, se.ID)
			}
		}
		walkP = append(walkP, precAt(walkList, src, 10))
		// PPR.
		var pprList []kg.EntityID
		for _, se := range f.engine.TopRelatedByPPR(src, 60) {
			if isPerson[se.ID] {
				pprList = append(pprList, se.ID)
			}
		}
		pprP = append(pprP, precAt(pprList, src, 10))
		// Degree baseline (same list for everyone, minus self).
		var degList []kg.EntityID
		for _, d := range degs {
			if d.id != src {
				degList = append(degList, d.id)
			}
		}
		degP = append(degP, precAt(degList, src, 10))
	}
	walkMean, pprMean, degMean := metrics.Mean(walkP), metrics.Mean(pprP), metrics.Mean(degP)
	row(t, "E3", "related-entities P@10", "walk-knn", walkMean, "ppr", pprMean, "degree", degMean)
	if walkMean <= degMean {
		t.Errorf("walk kNN P@10 %.3f must beat degree baseline %.3f", walkMean, degMean)
	}
	if pprMean <= degMean {
		t.Errorf("PPR P@10 %.3f must beat degree baseline %.3f", pprMean, degMean)
	}
}

// ---------------------------------------------------------------- E4
// Fig 2 "Entity Linking" / §3: contextual reranking must dominate on
// ambiguous mentions; the mode ladder must not invert overall.
func TestE4DisambiguationQuality(t *testing.T) {
	f := getFixture(t)
	type res struct {
		mode     annotate.Mode
		overall  float64
		ambigous float64
	}
	var results []res
	for _, mode := range []annotate.Mode{annotate.ModeLexical, annotate.ModePopularity, annotate.ModeContextual} {
		o, a := linkingAccuracy(f, f.annotators[mode])
		results = append(results, res{mode, o, a})
		row(t, "E4", "entity-linking accuracy", "mode", string(mode), "overall", o, "ambiguous", a)
	}
	lex, ctx := results[0], results[2]
	if ctx.ambigous <= lex.ambigous {
		t.Errorf("contextual ambiguous accuracy %.3f must beat lexical %.3f", ctx.ambigous, lex.ambigous)
	}
	if ctx.overall < 0.75 {
		t.Errorf("contextual overall accuracy = %.3f, too low", ctx.overall)
	}
}

// ---------------------------------------------------------------- E5
// Fig 3 / §2: training on a filtered view (rare predicates removed) must
// not lose to training on the noisy unfiltered view, at equal budgets.
func TestE5FilteringAblation(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 100, NumClusters: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Inject noise: 60 rare predicates used on random entity pairs.
	rng := rand.New(rand.NewSource(5))
	prov := kg.Provenance{Source: "noise", Confidence: 0.3}
	for i := 0; i < 60; i++ {
		pred, err := w.Graph.AddPredicate(kg.Predicate{Name: "noisePred" + string(rune('A'+i%26)) + string(rune('0'+i/26))})
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < 10; j++ {
			a := w.People[rng.Intn(len(w.People))]
			b := w.People[rng.Intn(len(w.People))]
			if a == b {
				continue
			}
			if err := w.Graph.Assert(kg.Triple{Subject: a, Predicate: pred, Object: kg.EntityValue(b), Prov: prov}); err != nil {
				t.Fatal(err)
			}
		}
	}
	eng := graphengine.New(w.Graph)
	filteredView := eng.Materialize(graphengine.ViewDef{Name: "filtered", DropLiteralFacts: true, MinPredicateFreq: 20})
	noisyView := eng.Materialize(graphengine.ViewDef{Name: "noisy", DropLiteralFacts: true})
	row(t, "E5", "view sizes", "filtered", filteredView.Len(), "noisy", noisyView.Len())
	if noisyView.Len() <= filteredView.Len() {
		t.Fatal("noise injection failed")
	}

	// Clean dataset defines the test split.
	dClean := embedding.NewDataset(filteredView.Triples())
	trainClean, testClean, err := dClean.Split(0.12, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := embedding.TrainConfig{Model: embedding.DistMult, Dim: 32, Epochs: 30,
		LearningRate: 0.08, Negatives: 4, Workers: 4, Seed: 5}
	mClean, err := embedding.Train(trainClean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cleanRes := embedding.Evaluate(mClean, dClean, testClean.Triples)

	// Noisy dataset: full vocab, but exclude the clean test facts from
	// training so the comparison is fair.
	dNoisy := embedding.NewDataset(noisyView.Triples())
	testSPO := make(map[[3]int32]bool)
	var testNoisy [][3]int32
	for _, tr := range testClean.Triples {
		// Map clean indexes -> graph IDs -> noisy indexes.
		h, _ := dNoisy.EntityIndex(dClean.Ents[tr[0]])
		r, _ := dNoisy.RelationIndex(dClean.Rels[tr[1]])
		tt, _ := dNoisy.EntityIndex(dClean.Ents[tr[2]])
		rec := [3]int32{h, r, tt}
		testSPO[rec] = true
		testNoisy = append(testNoisy, rec)
	}
	trainNoisy := dNoisy.WithTriples(func(tr [3]int32) bool { return !testSPO[tr] })
	mNoisy, err := embedding.Train(trainNoisy, cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisyRes := embedding.Evaluate(mNoisy, dNoisy, testNoisy)

	row(t, "E5", "filtering ablation MRR", "filtered", cleanRes.MRR, "unfiltered", noisyRes.MRR,
		"filteredH10", cleanRes.Hits10, "unfilteredH10", noisyRes.Hits10)
	if cleanRes.MRR < noisyRes.MRR-0.03 {
		t.Errorf("filtered-view MRR %.3f materially below unfiltered %.3f; filtering claim fails", cleanRes.MRR, noisyRes.MRR)
	}
}

// ---------------------------------------------------------------- E6
// Fig 4 / §3.2: incremental annotation cost must be proportional to the
// change rate, with quality unchanged.
func TestE6IncrementalAnnotation(t *testing.T) {
	f := getFixture(t)
	a := f.annotators[annotate.ModeContextual]
	for _, rate := range []float64{0.05, 0.1, 0.2} {
		// Fresh doc copies so the shared fixture corpus stays pristine.
		docs := webcorpus.Generate(f.w, webcorpus.Config{NumDocs: 300, Seed: 99})
		pipe := annotate.NewPipeline(a, 4)
		first := pipe.Run(docs)
		if first.Processed != len(docs) {
			t.Fatalf("first pass processed %d", first.Processed)
		}
		rng := rand.New(rand.NewSource(int64(rate * 1000)))
		changed := webcorpus.Mutate(docs, rate, rng)
		inc := pipe.Run(docs)
		frac := float64(inc.Processed) / float64(len(docs))
		row(t, "E6", "incremental annotation", "rate", rate, "processed", inc.Processed,
			"skipped", inc.Skipped, "workFraction", frac)
		if inc.Processed != len(changed) {
			t.Errorf("rate %.2f: processed %d != changed %d", rate, inc.Processed, len(changed))
		}
	}
}

// ---------------------------------------------------------------- E7
// Figs 5–6 / §4: ODKE must raise coverage, and corroboration-based fusers
// must not lose to the best-single-extractor baseline under corrupted
// sources.
func TestE7ODKEQuality(t *testing.T) {
	type fuserRun struct {
		name      string
		precision float64
		filled    int
		covAfter  float64
	}
	runWith := func(mkFuser func(h *e7Harness) odke.Fuser) fuserRun {
		h := newE7Harness(t, 0.4)
		fuser := mkFuser(h)
		rep, err := h.pipeline(t, fuser).Run(h.gaps)
		if err != nil {
			t.Fatal(err)
		}
		var correct int
		for _, out := range rep.Outcomes {
			if !out.Filled {
				continue
			}
			if g, ok := h.gold[[2]uint64{uint64(out.Gap.Subject), uint64(out.Gap.Predicate)}]; ok && out.Fused.Value.Equal(g) {
				correct++
			}
		}
		prec := 0.0
		if rep.Filled > 0 {
			prec = float64(correct) / float64(rep.Filled)
		}
		return fuserRun{fuser.Name(), prec, rep.Filled, odke.Coverage(h.w.Graph, h.slots())}
	}

	best := runWith(func(h *e7Harness) odke.Fuser { return odke.BestExtractorFuser{} })
	majority := runWith(func(h *e7Harness) odke.Fuser { return odke.MajorityVoteFuser{} })
	logistic := runWith(func(h *e7Harness) odke.Fuser { return h.trainFuser(t) })

	for _, r := range []fuserRun{best, majority, logistic} {
		row(t, "E7", "ODKE fusion", "fuser", r.name, "precision", r.precision,
			"filled", r.filled, "coverageAfter", r.covAfter)
	}
	if majority.covAfter == 0 {
		t.Error("ODKE did not raise coverage")
	}
	if logistic.precision < best.precision-0.05 {
		t.Errorf("trained fuser precision %.3f below best-extractor %.3f", logistic.precision, best.precision)
	}
	if majority.precision < best.precision-0.05 {
		t.Errorf("majority precision %.3f below best-extractor %.3f under corruption", majority.precision, best.precision)
	}
}

// e7Harness plants gaps in a fresh world (mirrors internal/odke tests at
// experiment scale).
type e7Harness struct {
	w     *workload.World
	index *websearch.Index
	ann   *annotate.Annotator
	gold  map[[2]uint64]kg.Value
	gaps  []odke.Gap
}

func newE7Harness(t *testing.T, wrongInfobox float64) *e7Harness {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 80, NumClusters: 8, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	docs := webcorpus.Generate(w, webcorpus.Config{
		NumDocs: 500, InfoboxFraction: 0.6, WrongInfoboxFraction: wrongInfobox, NoiseFraction: 0.1, Seed: 77,
	})
	ann, err := annotate.New(w.Graph, annotate.Config{Mode: annotate.ModeContextual, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	h := &e7Harness{w: w, index: websearch.NewIndex(docs), ann: ann, gold: make(map[[2]uint64]kg.Value)}
	for i := 0; i < len(w.People); i += 4 {
		p := w.People[i]
		for _, predName := range []string{"memberOf", "bornIn", "dateOfBirth"} {
			pred := w.Preds[predName]
			facts := w.Graph.Facts(p, pred)
			if len(facts) == 0 {
				continue
			}
			w.Graph.Retract(facts[0])
			h.gold[[2]uint64{uint64(p), uint64(pred)}] = facts[0].Object
			h.gaps = append(h.gaps, odke.Gap{Subject: p, Predicate: pred, Kind: odke.GapMissing, Priority: 1})
		}
	}
	return h
}

func (h *e7Harness) slots() [][2]uint64 {
	out := make([][2]uint64, 0, len(h.gold))
	for k := range h.gold {
		out = append(out, k)
	}
	return out
}

func (h *e7Harness) pipeline(t *testing.T, fuser odke.Fuser) *odke.Pipeline {
	t.Helper()
	resolver := odke.NewEntityResolver(h.w.Graph)
	pl, err := odke.NewPipeline(h.w.Graph, h.index, h.ann,
		[]odke.Extractor{odke.NewInfoboxExtractor(h.w.Graph, resolver), odke.NewTextExtractor(h.w.Graph)}, fuser)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func (h *e7Harness) trainFuser(t *testing.T) odke.Fuser {
	t.Helper()
	boot := h.pipeline(t, odke.MajorityVoteFuser{})
	var examples []odke.TrainingExample
	for _, gap := range h.gaps {
		cands, _, _ := boot.CollectCandidates(gap)
		gold := h.gold[[2]uint64{uint64(gap.Subject), uint64(gap.Predicate)}]
		for _, grp := range odke.GroupCandidates(cands) {
			examples = append(examples, odke.TrainingExample{
				Features: grp.Features(len(cands)), Correct: grp.Value.Equal(gold),
			})
		}
	}
	fuser, err := odke.TrainLogisticFuser(examples, 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	return fuser
}

// ---------------------------------------------------------------- E8
// Fig 7 / §5: personal-KG construction quality, pause/resume equivalence,
// and memory-budget spill behaviour.
func TestE8PersonalKG(t *testing.T) {
	records, truth := ondevice.GenerateDeviceData(ondevice.DeviceDataConfig{NumPersons: 30, RecordsPerPerson: 4, Seed: 88})

	b, err := ondevice.NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	ents, err := b.Entities()
	if err != nil {
		t.Fatal(err)
	}
	cluster := make(map[string]int)
	for _, e := range ents {
		for _, rk := range e.RecordKeys {
			cluster[rk] = e.ID
		}
	}
	var conf metrics.Confusion
	keys := make([]string, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			conf.Add(cluster[keys[i]] == cluster[keys[j]], truth[keys[i]] == truth[keys[j]])
		}
	}
	row(t, "E8", "entity matching", "precision", conf.Precision(), "recall", conf.Recall(), "f1", conf.F1())
	if conf.Precision() < 0.95 || conf.Recall() < 0.8 {
		t.Errorf("matching quality too low: %+v", conf)
	}

	// Spill behaviour under budgets.
	for _, budget := range []int{512, 4096, 1 << 20} {
		bb, err := ondevice.NewBuilder(t.TempDir(), budget)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bb.ProcessBatch(records, 0); err != nil {
			t.Fatal(err)
		}
		row(t, "E8", "memory budget", "bytes", budget, "spills", bb.SpillCount())
		bb.Close()
	}
}

// ---------------------------------------------------------------- E9
// §5 sync: devices converge on commonly-synced sources; withheld sources
// never leave their device.
func TestE9SyncConvergence(t *testing.T) {
	records, _ := ondevice.GenerateDeviceData(ondevice.DeviceDataConfig{NumPersons: 20, RecordsPerPerson: 4, Seed: 99})
	base := t.TempDir()
	phonePrefs := map[ondevice.SourceKind]bool{
		ondevice.SourceContacts: true, ondevice.SourceMessages: true, ondevice.SourceCalendar: false,
	}
	otherPrefs := map[ondevice.SourceKind]bool{
		ondevice.SourceContacts: true, ondevice.SourceMessages: true, ondevice.SourceCalendar: true,
	}
	phone, err := ondevice.NewDevice(base, "phone", 3, phonePrefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	laptop, err := ondevice.NewDevice(base, "laptop", 10, otherPrefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer laptop.Close()
	watch, err := ondevice.NewDevice(base, "watch", 1, otherPrefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()
	phone.AddLocalRecords(records)

	sg := &ondevice.SyncGroup{Devices: []*ondevice.Device{phone, laptop, watch}}
	if err := sg.SyncRound(); err != nil {
		t.Fatal(err)
	}
	converged, err := sg.Converged()
	if err != nil {
		t.Fatal(err)
	}
	leaked := 0
	for _, d := range []*ondevice.Device{laptop, watch} {
		for _, r := range d.Feed() {
			if r.Source == ondevice.SourceCalendar {
				leaked++
			}
		}
	}
	row(t, "E9", "sync", "devices", 3, "converged", converged, "calendarLeaks", leaked)
	if !converged {
		t.Error("devices did not converge")
	}
	if leaked != 0 {
		t.Errorf("%d calendar records leaked despite per-source pref", leaked)
	}
}

// ---------------------------------------------------------------- E10
// §5 enrichment: static-asset hit rate grows with asset size; PIR cost
// scales with corpus; DP error shrinks with epsilon.
func TestE10Enrichment(t *testing.T) {
	f := getFixture(t)
	// Zipf-biased query stream over people.
	rng := rand.New(rand.NewSource(10))
	var queries []string
	for i := 0; i < 500; i++ {
		idx := 0
		// Inverse-CDF Zipf over people indexes.
		r := rng.Float64()
		var total float64
		for j := range f.w.People {
			total += 1 / float64(j+1)
		}
		acc := 0.0
		for j := range f.w.People {
			acc += 1 / float64(j+1) / total
			if acc >= r {
				idx = j
				break
			}
		}
		queries = append(queries, f.w.Graph.Entity(f.w.People[idx]).Key)
	}

	prevHit := -1.0
	for _, k := range []int{10, 30, 60, 120} {
		asset, err := ondevice.BuildStaticAsset(f.w.Graph, k)
		if err != nil {
			t.Fatal(err)
		}
		var hits int
		for _, q := range queries {
			if _, ok := asset.Lookup(q); ok {
				hits++
			}
		}
		hitRate := float64(hits) / float64(len(queries))
		row(t, "E10", "static asset", "size", k, "hitRate", hitRate)
		if hitRate < prevHit {
			t.Errorf("hit rate decreased when asset grew: %.3f < %.3f", hitRate, prevHit)
		}
		prevHit = hitRate
	}

	// Piggyback coverage grows with interactions.
	cache := ondevice.NewPiggybackCache()
	for i, q := range queries[:100] {
		cache.ServerInteraction(f.w.Graph, q)
		if i == 9 || i == 99 {
			row(t, "E10", "piggyback", "interactions", i+1, "cachedEntities", cache.Size())
		}
	}

	// PIR cost per query equals corpus size.
	pir := ondevice.NewPIRServer(f.w.Graph)
	pir.Fetch(queries[0])
	row(t, "E10", "PIR", "corpusRows", pir.NumRows(), "costPerQuery", pir.CostUnits)
	if pir.CostUnits != pir.NumRows() {
		t.Errorf("PIR cost %d != corpus %d", pir.CostUnits, pir.NumRows())
	}

	// DP error vs epsilon.
	dpRng := rand.New(rand.NewSource(10))
	for _, eps := range []float64{0.1, 1, 10} {
		var absErr float64
		const n = 1000
		for i := 0; i < n; i++ {
			v, err := ondevice.DPNoisyCount(100, 1, eps, dpRng)
			if err != nil {
				t.Fatal(err)
			}
			if v > 100 {
				absErr += v - 100
			} else {
				absErr += 100 - v
			}
		}
		row(t, "E10", "DP noise", "epsilon", eps, "meanAbsError", absErr/n)
	}
}

// ---------------------------------------------------------------- E11
// §3.2 price/performance: IVF recall@10 climbs toward the flat index's
// 1.0 as nprobe grows.
func TestE11ANNRecall(t *testing.T) {
	f := getFixture(t)
	ids := make([]uint64, 0, f.dataset.NumEntities())
	vecs := make([]vecindex.Vector, 0, f.dataset.NumEntities())
	for i := 0; i < f.dataset.NumEntities(); i++ {
		ids = append(ids, uint64(f.dataset.Ents[i]))
		vecs = append(vecs, vecindex.Normalize(f.model.EntityVector(int32(i))))
	}
	flat := vecindex.NewFlat()
	for i := range ids {
		if err := flat.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	ivf, err := vecindex.BuildIVF(ids, vecs, vecindex.IVFOptions{NList: 16, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(nprobe int) float64 {
		var hit, total int
		for q := 0; q < 60; q++ {
			query := vecs[(q*17)%len(vecs)]
			want := flat.Search(query, 10)
			got := ivf.SearchNProbe(query, 10, nprobe)
			gotSet := make(map[uint64]bool, len(got))
			for _, r := range got {
				gotSet[r.ID] = true
			}
			for _, r := range want {
				total++
				if gotSet[r.ID] {
					hit++
				}
			}
		}
		return float64(hit) / float64(total)
	}
	probes := []int{1, 2, 4, 8, 16}
	recalls := make([]float64, len(probes))
	for i, np := range probes {
		recalls[i] = recallAt(np)
		row(t, "E11", "IVF price/performance", "nprobe", np, "recall@10", recalls[i])
	}
	if recalls[len(recalls)-1] < 0.999 {
		t.Errorf("full-probe recall = %.4f, want 1.0", recalls[len(recalls)-1])
	}
	if recalls[0] >= recalls[len(recalls)-1] {
		t.Error("recall does not improve with nprobe; no price/performance curve")
	}
}

// ---------------------------------------------------------------- E12
// §2 disk-based training: bounded resident memory with quality parity.
func TestE12DiskParity(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	paths, err := embedding.WritePartitions(f.train, dir, 4, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg := embedding.TrainConfig{Model: embedding.DistMult, Dim: 32, Epochs: 30,
		LearningRate: 0.08, Negatives: 4, Workers: 4, Seed: 2023}
	diskModel, stats, err := embedding.TrainFromDisk(f.train, paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	diskRes := embedding.Evaluate(diskModel, f.dataset, f.test.Triples)
	memRes := embedding.Evaluate(f.model, f.dataset, f.test.Triples)
	residentFrac := float64(stats.MaxResidentTriples) / float64(len(f.train.Triples))
	row(t, "E12", "disk-based training", "diskMRR", diskRes.MRR, "memMRR", memRes.MRR,
		"residentFraction", residentFrac, "bucketsStreamed", stats.BucketsStreamed)
	if residentFrac > 0.5 {
		t.Errorf("resident fraction %.3f; disk training not bounding memory", residentFrac)
	}
	if diskRes.MRR < memRes.MRR*0.6 {
		t.Errorf("disk MRR %.3f far below in-memory %.3f", diskRes.MRR, memRes.MRR)
	}
}

// ------------------------------------------------------------ sanity
// The fixture itself is worth one direct check: training time and view
// filtering both behaved.
func TestFixtureSanity(t *testing.T) {
	f := getFixture(t)
	stats := kg.ComputeStats(f.w.Graph)
	if stats.LiteralTriples == 0 {
		t.Fatal("fixture world has no literal noise")
	}
	if len(f.dataset.Triples) >= stats.Triples {
		t.Fatal("view filtering removed nothing")
	}
	res := embedding.Evaluate(f.model, f.dataset, f.test.Triples)
	row(t, "FIX", "fixture link prediction", "MRR", res.MRR, "Hits@10", res.Hits10, "n", res.N)
	if res.MRR < 0.1 {
		t.Fatalf("fixture model underfit: MRR %.3f", res.MRR)
	}
	_ = time.Now // keep time imported for future extensions
}
