package repro_test

import (
	"fmt"
	"testing"
	"time"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// BenchmarkE18Subscribe measures the live-subscription hub (experiment
// E18, report-only — excluded from the benchcmp gate; every number
// below includes a real coalescing wait, so wall-clock jitter swamps
// the 20% threshold).
//
// Each case registers a population of standing conjunctive queries,
// then times the end-to-end delivery latency of a single mutation: the
// writer asserts (or retracts) a membership triple matching exactly one
// "probe" subscription and blocks until that subscriber's event
// arrives. The hub delta-joins every mutation batch against every
// registered query, so the subs=1000 vs subs=10000 pair prices the
// fan-out sweep itself — the non-matching queries each pay a constant
// unify-and-reject — on top of a latency floor of roughly 1.5x the
// probe's coalescing window (tick interval is half the window).
//
// The coalesce sweep holds the population at 1000 and widens the
// probe's window: latency should track the window near-linearly, which
// is the knob's whole trade — batching and add/retract cancellation
// bought with staleness.
func BenchmarkE18Subscribe(b *testing.B) {
	for _, subs := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			benchSubscribeFanout(b, subs, time.Millisecond)
		})
	}
	for _, window := range []time.Duration{time.Millisecond, 4 * time.Millisecond, 16 * time.Millisecond} {
		b.Run(fmt.Sprintf("coalesce=%v/sweep", window), func(b *testing.B) {
			benchSubscribeFanout(b, 1000, window)
		})
	}
}

func benchSubscribeFanout(b *testing.B, subs int, window time.Duration) {
	g := kg.NewGraphWithShards(16)
	member, err := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	if err != nil {
		b.Fatal(err)
	}
	teams := make([]kg.EntityID, subs)
	for i := range teams {
		if teams[i], err = g.AddEntity(kg.Entity{Key: fmt.Sprintf("team%d", i)}); err != nil {
			b.Fatal(err)
		}
	}
	person, err := g.AddEntity(kg.Entity{Key: "probe-person"})
	if err != nil {
		b.Fatal(err)
	}
	eng := graphengine.New(g)

	// The idle population: each query is bound to its own team entity, so
	// the probe triple never matches any of them — they cost exactly one
	// failed unify per mutation. Wide windows keep their (empty) flush
	// checks off the hot path.
	handles := make([]*graphengine.Subscription, 0, subs)
	b.Cleanup(func() {
		for _, s := range handles {
			s.Close()
		}
	})
	for i := 1; i < subs; i++ {
		sub, err := eng.Subscribe(
			[]graphengine.Clause{{Subject: graphengine.V("p"), Predicate: member, Object: graphengine.CE(teams[i])}},
			graphengine.SubscribeOptions{Coalesce: 250 * time.Millisecond},
		)
		if err != nil {
			b.Fatal(err)
		}
		handles = append(handles, sub)
		<-sub.C // drain the snapshot so the buffer stays empty
	}
	probe, err := eng.Subscribe(
		[]graphengine.Clause{{Subject: graphengine.V("p"), Predicate: member, Object: graphengine.CE(teams[0])}},
		graphengine.SubscribeOptions{Coalesce: window},
	)
	if err != nil {
		b.Fatal(err)
	}
	handles = append(handles, probe)
	if ev := <-probe.C; !ev.Reset || len(ev.Adds) != 0 {
		b.Fatalf("probe snapshot: %+v", ev)
	}

	tr := kg.Triple{Subject: person, Predicate: member, Object: kg.EntityValue(teams[0])}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			if err := g.Assert(tr); err != nil {
				b.Fatal(err)
			}
		} else if !g.Retract(tr) {
			b.Fatal("retract failed")
		}
		ev, ok := <-probe.C
		if !ok {
			b.Fatalf("probe closed mid-run: %v", probe.Err())
		}
		if len(ev.Adds)+len(ev.Retracts) != 1 {
			b.Fatalf("iteration %d: event %+v", i, ev)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "notifs/s")
}
