package repro_test

import (
	"fmt"
	"testing"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// BenchmarkE17Parallel measures the parallel query executor's
// worker-count scaling curve (experiment E17, report-only — excluded
// from the benchcmp gate; the curve depends on the machine's core
// count, which bench.sh records per row as gomaxprocs/numcpu).
//
// The solve is the wide §1 conjunction from E14 — "people in the hot
// team who hold the award", ~4096 answers — run to exhaustion so every
// candidate is probed: workers=1 is the sequential executor (the
// gate-relevant point: parallel plumbing must not tax it), workers=2/4/8
// partition the first clause's posting across the pool and merge back
// into the exact sequential order. On a single-core container the curve
// is flat (merge overhead only); on multicore hardware the has_fact
// probe fan-out dominates and the curve should bend toward the core
// count.
//
// The plancache pair prices the planning seam the executor sits on:
// "miss" builds a plan from scratch through a cold cache every
// iteration (estimate probes included), "hit" reuses one hot shape and
// pays only the counter revalidation — the cost every serving-path
// query pays after the first of its shape.
func BenchmarkE17Parallel(b *testing.B) {
	g := kg.NewGraphWithShards(64)
	add := func(key string) kg.EntityID {
		id, err := g.AddEntity(kg.Entity{Key: key})
		if err != nil {
			b.Fatal(err)
		}
		return id
	}
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	awardP, _ := g.AddPredicate(kg.Predicate{Name: "award"})
	follows, _ := g.AddPredicate(kg.Predicate{Name: "follows"})
	const nPeople = 8192
	const nTeams = 64
	teams := make([]kg.EntityID, nTeams)
	for i := range teams {
		teams[i] = add(fmt.Sprintf("team%d", i))
	}
	prize := add("prize")
	people := make([]kg.EntityID, nPeople)
	for i := range people {
		people[i] = add(fmt.Sprintf("p%d", i))
	}
	batch := make([]kg.Triple, 0, nPeople*7)
	for i, p := range people {
		ti := 0
		if i%2 == 1 {
			ti = 1 + (i/2)%(nTeams-1)
		}
		batch = append(batch, kg.Triple{Subject: p, Predicate: member, Object: kg.EntityValue(teams[ti])})
		if ti == 0 || i%7 == 0 {
			batch = append(batch, kg.Triple{Subject: p, Predicate: awardP, Object: kg.EntityValue(prize)})
		}
		for j := 1; j <= 4; j++ {
			batch = append(batch, kg.Triple{Subject: p, Predicate: follows, Object: kg.EntityValue(people[(i+j*131)%nPeople])})
		}
	}
	if _, err := g.AssertBatch(batch); err != nil {
		b.Fatal(err)
	}
	eng := graphengine.New(g)
	clauses := []graphengine.Clause{
		{Subject: graphengine.V("p"), Predicate: member, Object: graphengine.CE(teams[0])},
		{Subject: graphengine.V("p"), Predicate: awardP, Object: graphengine.CE(prize)},
	}
	const wantRows = nPeople / 2

	solve := func(b *testing.B, workers int) {
		b.Helper()
		n := 0
		for _, err := range eng.StreamConjunctive(clauses, graphengine.QueryOptions{Parallelism: workers}) {
			if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != wantRows {
			b.Fatalf("solve at %d workers = %d rows, want %d", workers, n, wantRows)
		}
	}

	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			solve(b, workers) // warm the plan cache and pin correctness
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				solve(b, workers)
			}
			b.ReportMetric(float64(wantRows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}

	b.Run("plancache=hit", func(b *testing.B) {
		if _, err := eng.PlanConjunctive(clauses); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.PlanConjunctive(clauses); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("plancache=miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := graphengine.New(g).PlanConjunctive(clauses); err != nil {
				b.Fatal(err)
			}
		}
	})
}
