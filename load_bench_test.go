package repro_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"saga/internal/admission"
	"saga/internal/server"
	"saga/internal/workload"
	"saga/saga"
)

// BenchmarkE20Load measures the serving tier under open-loop overload
// (experiment E20, report-only — excluded from the benchcmp gate; every
// number is dominated by a wall-clock capacity probe plus a saturated
// run, so scheduler jitter swamps the 20% threshold).
//
// Setup pins tight per-route admission limits (4 read slots, queue of
// 8) over a world whose saturating query — a two-clause collaborator
// self-join — costs milliseconds, so a single-process driver can
// overrun the server. Each iteration first measures closed-loop
// capacity with more workers than admission slots (so the probe
// saturates the server, not the client), then offers 2x that rate
// open-loop for a second and reports:
//
//	goodput/s  completed 2xx per second under 2x overload — a healthy
//	           admission tier holds this near the probed capacity
//	p99-ms     p99 latency of admitted requests — bounded by the read
//	           route's queue-wait + budget, not by the overload
//	shed-frac  fraction of offered arrivals shed (429/503) — the
//	           excess, roughly 0.5 at 2x when goodput holds
//
// Any 5xx or transport error fails the benchmark: overload must
// degrade to fast sheds, never to errors.
func BenchmarkE20Load(b *testing.B) {
	w, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: 600, NumClusters: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	p := saga.New(w.Graph)
	if err := p.DefineRulesText(""); err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(p, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv.Admission = admission.NewController(
		admission.Limits{MaxInFlight: 4, MaxQueue: 8, QueueWait: 40 * time.Millisecond, Budget: 2 * time.Second},
		admission.Limits{MaxInFlight: 4, MaxQueue: 8, QueueWait: 40 * time.Millisecond, Budget: 2 * time.Second},
		admission.Limits{MaxInFlight: 64},
	)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := workload.NewLoadClient(10 * time.Second)
	defer client.CloseIdleConnections()
	ctx := context.Background()
	op := workload.SaturationQueryOp()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		capacity := workload.MeasureClosedLoop(ctx, client, ts.URL, op, 16, 800*time.Millisecond)
		if capacity <= 0 {
			b.Fatal("closed-loop probe completed nothing")
		}
		rep, err := workload.RunOpenLoop(ctx, workload.LoadConfig{
			BaseURL:     ts.URL,
			Client:      client,
			Rate:        2 * capacity,
			Duration:    time.Second,
			Ops:         []workload.LoadOp{op},
			Seed:        int64(i + 1),
			MaxInFlight: 8192,
		})
		if err != nil {
			b.Fatal(err)
		}
		if rep.ServerErrors > 0 || rep.TransportErrors > 0 {
			b.Fatalf("overload produced errors: %d server, %d transport", rep.ServerErrors, rep.TransportErrors)
		}
		b.ReportMetric(rep.GoodputPerSec, "goodput/s")
		b.ReportMetric(float64(rep.P99)/float64(time.Millisecond), "p99-ms")
		b.ReportMetric(rep.ShedRate, "shed-frac")
	}
}
