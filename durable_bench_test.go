package repro_test

import (
	"testing"

	"saga/internal/kg"
	"saga/internal/wal"
)

// BenchmarkE16Durable measures what durability costs (experiment E16,
// report-only — excluded from the benchcmp gate): bulk ingest of a
// 64K-triple graph with the WAL off, with fsync-per-commit, and with
// fsync deferred (SyncNever), plus the restart axis — recovering the
// checkpointed graph versus re-ingesting it from scratch.
const (
	e16Triples  = 1 << 16
	e16Entities = 4096
	e16Preds    = 4
	e16Batch    = 4096
)

// e16Seed populates an empty graph's dictionaries and returns the triple
// load in identity order (the merge-append bulk path).
func e16Seed(tb testing.TB, g *kg.Graph) []kg.Triple {
	tb.Helper()
	ents := make([]kg.EntityID, e16Entities)
	for i := range ents {
		id, err := g.AddEntity(kg.Entity{Key: "e16-" + itoa(i)})
		if err != nil {
			tb.Fatal(err)
		}
		ents[i] = id
	}
	preds := make([]kg.PredicateID, e16Preds)
	for i := range preds {
		id, err := g.AddPredicate(kg.Predicate{Name: "p16-" + itoa(i)})
		if err != nil {
			tb.Fatal(err)
		}
		preds[i] = id
	}
	perSubject := e16Triples / e16Entities
	triples := make([]kg.Triple, 0, e16Triples)
	for _, s := range ents {
		for j := 0; j < perSubject; j++ {
			triples = append(triples, kg.Triple{
				Subject:   s,
				Predicate: preds[j%e16Preds],
				Object:    kg.IntValue(int64(j)),
			})
		}
	}
	return triples
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// e16Ingest loads the triples batch-wise, committing each batch through
// the manager when one is attached.
func e16Ingest(tb testing.TB, g *kg.Graph, m *wal.Manager, triples []kg.Triple) {
	tb.Helper()
	for off := 0; off < len(triples); off += e16Batch {
		end := off + e16Batch
		if end > len(triples) {
			end = len(triples)
		}
		if _, err := g.AssertBatch(triples[off:end]); err != nil {
			tb.Fatal(err)
		}
		if m != nil {
			if _, err := m.Commit(); err != nil {
				tb.Fatal(err)
			}
		}
	}
}

func BenchmarkE16Durable(b *testing.B) {
	modes := []struct {
		name string
		opts *wal.Options // nil = no WAL
	}{
		{"ingest/wal=off", nil},
		{"ingest/wal=sync-each-commit", &wal.Options{Sync: wal.SyncEachCommit}},
		{"ingest/wal=sync-never", &wal.Options{Sync: wal.SyncNever}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g := kg.NewGraph()
				var m *wal.Manager
				if mode.opts != nil {
					var err error
					m, _, err = wal.Open(b.TempDir(), g, *mode.opts)
					if err != nil {
						b.Fatal(err)
					}
				}
				triples := e16Seed(b, g)
				e16Ingest(b, g, m, triples)
				if m != nil {
					if err := m.Close(); err != nil {
						b.Fatal(err)
					}
				}
				if g.NumTriples() != e16Triples {
					b.Fatalf("ingested %d triples", g.NumTriples())
				}
			}
			b.ReportMetric(float64(e16Triples), "triples/op")
		})
	}

	// Restart axis: a checkpointed data dir prepared once, recovered per
	// iteration, against re-ingesting the same load into a fresh graph.
	b.Run("restart/recover-checkpoint", func(b *testing.B) {
		dir := b.TempDir()
		g := kg.NewGraph()
		m, _, err := wal.Open(dir, g, wal.Options{Sync: wal.SyncNever})
		if err != nil {
			b.Fatal(err)
		}
		e16Ingest(b, g, m, e16Seed(b, g))
		if _, err := m.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g2 := kg.NewGraph()
			m2, info, err := wal.Open(dir, g2, wal.Options{Sync: wal.SyncNever})
			if err != nil {
				b.Fatal(err)
			}
			if g2.NumTriples() != e16Triples {
				b.Fatalf("recovered %d triples (info %+v)", g2.NumTriples(), info)
			}
			b.StopTimer()
			if err := m2.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		b.ReportMetric(float64(e16Triples), "triples/op")
	})
	b.Run("restart/reingest", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g := kg.NewGraph()
			e16Ingest(b, g, nil, e16Seed(b, g))
			if g.NumTriples() != e16Triples {
				b.Fatalf("ingested %d triples", g.NumTriples())
			}
		}
		b.ReportMetric(float64(e16Triples), "triples/op")
	})
}
