#!/usr/bin/env bash
# bench.sh — run the benchmark suite (E1–E15 plus the micro-benchmarks,
# across all packages) with -benchmem and emit a machine-readable
# BENCH_<date>.json at the repo root, so successive PRs have a perf
# trajectory to regress against.
#
# Usage:
#   scripts/bench.sh                 # full suite, benchtime 1s
#   scripts/bench.sh --check         # run, then gate against the latest
#                                    # committed BENCH_*.json: >20% ns/op
#                                    # regression in E1–E15 fails (exit 1;
#                                    # baseline-foil sub-benchmarks like
#                                    # E13's /sweep are excluded, and
#                                    # >20% allocs/op growth is reported
#                                    # without failing — see benchcmp)
#   BENCHTIME=100ms scripts/bench.sh # quicker pass
#   BENCH_COUNT=3 scripts/bench.sh   # repeat each benchmark; the JSON
#                                    # records every run and benchcmp
#                                    # scores each name by its fastest,
#                                    # damping machine noise (use ≥3 for
#                                    # gating: IO-heavy benchmarks like
#                                    # E8/E9 swing >20% run to run)
#   BENCH_FILTER='BenchmarkE3' scripts/bench.sh
#
# Benchmark names must stay unique across packages: the JSON keys on the
# bare benchmark name, not the package path.
set -euo pipefail

cd "$(dirname "$0")/.."

CHECK=0
if [[ "${1:-}" == "--check" ]]; then
    CHECK=1
fi

BENCHTIME="${BENCHTIME:-1s}"
BENCH_COUNT="${BENCH_COUNT:-1}"
BENCH_FILTER="${BENCH_FILTER:-.}"
DATE="$(date +%Y-%m-%d)"
OUT="BENCH_${DATE}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (filter=${BENCH_FILTER}, benchtime=${BENCHTIME}, count=${BENCH_COUNT})..." >&2
go test -bench "$BENCH_FILTER" -benchmem -benchtime "$BENCHTIME" -count "$BENCH_COUNT" -run '^$' ./... | tee "$RAW" >&2

# Convert `go test -bench` output lines into a JSON array. A benchmark
# line looks like:
#   BenchmarkName/sub-8  1234  567 ns/op  89 B/op  1 allocs/op  [extra metrics]
NUMCPU="$(nproc 2>/dev/null || echo 0)"

awk -v date="$DATE" -v numcpu="$NUMCPU" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    # go test appends -GOMAXPROCS to benchmark names ("BenchmarkFoo-8").
    # Record it (parallel benchmarks like E17 are meaningless without
    # it), then strip it so snapshots from machines with different core
    # counts still key on the same names (else the --check gate compares
    # nothing and passes vacuously).
    gomaxprocs = 0
    if (match(name, /-[0-9]+$/)) gomaxprocs = substr(name, RSTART + 1)
    sub(/-[0-9]+$/, "", name)
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")        ns = $i
        else if ($(i+1) == "B/op")    bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
        else if ($(i+1) ~ /\//) {
            gsub(/"/, "", $(i+1))
            extra = extra sprintf("%s\"%s\": %s", (extra == "" ? "" : ", "), $(i+1), $i)
        }
    }
    if (ns == "") next
    if (!first) printf(",\n"); first = 0
    printf("  {\"date\": \"%s\", \"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", date, name, iters, ns)
    if (gomaxprocs + 0 > 0) printf(", \"gomaxprocs\": %s", gomaxprocs)
    if (numcpu + 0 > 0)     printf(", \"numcpu\": %s", numcpu)
    if (bytes != "")  printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    if (extra != "")  printf(", \"metrics\": {%s}", extra)
    printf("}")
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2

if [[ "$CHECK" == "1" ]]; then
    # Gate against the most recent snapshot as committed at HEAD (not the
    # working tree: bench.sh may have just overwritten today's file, and
    # comparing a file against itself proves nothing).
    BASE_NAME="$(git ls-files 'BENCH_*.json' | sort | tail -n 1 || true)"
    if [[ -z "$BASE_NAME" ]]; then
        echo "bench.sh --check: no committed baseline BENCH_*.json found; skipping gate" >&2
        exit 0
    fi
    BASE="$(mktemp)"
    trap 'rm -f "$RAW" "$BASE"' EXIT
    if ! git show "HEAD:${BASE_NAME}" > "$BASE" 2>/dev/null; then
        echo "bench.sh --check: cannot read HEAD:${BASE_NAME}; skipping gate" >&2
        exit 0
    fi
    echo "comparing against baseline ${BASE_NAME} (as of HEAD)..." >&2
    go run ./scripts/benchcmp -threshold 1.20 "$BASE" "$OUT"
fi
