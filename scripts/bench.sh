#!/usr/bin/env bash
# bench.sh — run the E1–E12 benchmark suite (plus the micro-benchmarks)
# with -benchmem and emit a machine-readable BENCH_<date>.json at the repo
# root, so successive PRs have a perf trajectory to regress against.
#
# Usage:
#   scripts/bench.sh                 # full suite, benchtime 1s
#   BENCHTIME=100ms scripts/bench.sh # quicker pass
#   BENCH_FILTER='BenchmarkE3' scripts/bench.sh
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
BENCH_FILTER="${BENCH_FILTER:-.}"
DATE="$(date +%Y-%m-%d)"
OUT="BENCH_${DATE}.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running benchmarks (filter=${BENCH_FILTER}, benchtime=${BENCHTIME})..." >&2
go test -bench "$BENCH_FILTER" -benchmem -benchtime "$BENCHTIME" -run '^$' . | tee "$RAW" >&2

# Convert `go test -bench` output lines into a JSON array. A benchmark
# line looks like:
#   BenchmarkName/sub-8  1234  567 ns/op  89 B/op  1 allocs/op  [extra metrics]
awk -v date="$DATE" '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1; iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op")        ns = $i
        else if ($(i+1) == "B/op")    bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
        else if ($(i+1) ~ /\//) {
            gsub(/"/, "", $(i+1))
            extra = extra sprintf("%s\"%s\": %s", (extra == "" ? "" : ", "), $(i+1), $i)
        }
    }
    if (ns == "") next
    if (!first) printf(",\n"); first = 0
    printf("  {\"date\": \"%s\", \"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", date, name, iters, ns)
    if (bytes != "")  printf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") printf(", \"allocs_per_op\": %s", allocs)
    if (extra != "")  printf(", \"metrics\": {%s}", extra)
    printf("}")
}
END { print "\n]" }
' "$RAW" > "$OUT"

echo "wrote $OUT ($(grep -c '"name"' "$OUT") benchmarks)" >&2
