#!/usr/bin/env bash
# crashtest.sh — run the WAL crash matrix wide: several seeds, a denser
# kill-point grid than the in-tree default, under the race detector. Each
# (seed, kill-point) cell kills the writer at an arbitrary byte offset or
# fsync count, collapses the filesystem to a crash-consistent image
# (torn tails, lost directory entries), recovers, and checks watermark
# consistency, no loss of fsync-acknowledged mutations, and continued
# writability. See internal/wal/crash_test.go for the invariants.
#
# Usage:
#   scripts/crashtest.sh                       # seeds 1..8, 60 kill points
#   WAL_CRASH_SEEDS=11,12 scripts/crashtest.sh # explicit seeds
#   WAL_CRASH_POINTS=200 scripts/crashtest.sh  # denser kill grid
set -euo pipefail

cd "$(dirname "$0")/.."

SEEDS="${WAL_CRASH_SEEDS:-1,2,3,4,5,6,7,8}"
POINTS="${WAL_CRASH_POINTS:-60}"

echo "crash matrix: seeds=${SEEDS} points=${POINTS} (-race)"
WAL_CRASH_SEEDS="$SEEDS" WAL_CRASH_POINTS="$POINTS" \
	go test -race -count=1 -timeout 20m \
	-run 'TestCrashMatrix' -v ./internal/wal/ 2>&1 | grep -E '^(=== RUN|--- (PASS|FAIL)|PASS|FAIL|ok )'
