#!/usr/bin/env bash
# ci.sh — the local CI gate: formatting, vet, build, the full test
# suite under the race detector, and a short open-loop load smoke
# against an in-process server (kgload -smoke: zero 5xx, zero transport
# errors, p99 of admitted requests under the read route's deadline).
# Run it before every push; it is exactly what a hosted CI job would
# run, so a clean exit here means a clean check there.
#
# Usage:
#   scripts/ci.sh            # full gate
#   SKIP_RACE=1 scripts/ci.sh  # tests without -race (quick mode)
#   SKIP_LOAD=1 scripts/ci.sh  # skip the load smoke
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [[ "${SKIP_RACE:-}" == "1" ]]; then
    echo "== go test =="
    go test ./...
else
    echo "== go test -race =="
    go test -race ./...
fi

if [[ "${SKIP_LOAD:-}" != "1" ]]; then
    echo "== load smoke (kgload) =="
    go run ./cmd/kgload -smoke -rate 300 -duration 2s
fi

echo "CI gate passed."
