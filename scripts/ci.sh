#!/usr/bin/env bash
# ci.sh — the local CI gate: formatting, vet, build, and the full test
# suite under the race detector. Run it before every push; it is exactly
# what a hosted CI job would run, so a clean exit here means a clean
# check there.
#
# Usage:
#   scripts/ci.sh            # full gate
#   SKIP_RACE=1 scripts/ci.sh  # tests without -race (quick mode)
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [[ -n "$unformatted" ]]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

if [[ "${SKIP_RACE:-}" == "1" ]]; then
    echo "== go test =="
    go test ./...
else
    echo "== go test -race =="
    go test -race ./...
fi

echo "CI gate passed."
