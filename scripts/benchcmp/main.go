// Command benchcmp compares two BENCH_<date>.json snapshots produced by
// scripts/bench.sh and fails (exit 1) when any benchmark matching the
// filter regressed in ns/op beyond the threshold. It is the regression
// gate behind `scripts/bench.sh --check`: the E1–E15 experiment suite is
// the paper's price/performance surface, so a >20% slowdown in any of
// them should stop a PR, while new or removed benchmarks are reported but
// never fail the check.
//
// Sub-benchmarks that exist as deliberately-degraded baseline foils
// (E13's "/sweep" replays a graph with no merged reverse index) are
// excluded from the gate by the -exclude regexp: their cost model is
// allowed to get worse when the serving path sheds a structure the foil
// was defined against, and gating them would punish exactly that trade.
// Excluded names are still reported.
//
// E16 (durability cost), E17 (parallel query scaling), E18
// (subscription fan-out), E19 (rule derivation), and E20 (open-loop
// overload) are report-only for now: the default -filter stops at E15,
// so their numbers land in every snapshot and show up in --check output
// without failing it. E17's worker-scaling curve in particular depends
// on the machine's core count (the JSON records gomaxprocs/numcpu per
// row), every E18 number includes a real coalescing-window wait, and
// E20 wraps a wall-clock capacity probe plus a saturated open-loop run,
// so wall-clock jitter swamps the threshold; gate them only once
// snapshots come from fixed hardware.
//
// Allocation regressions are reported but never fail the gate: any
// compared benchmark whose allocs/op grew beyond the threshold gets an
// "allocs" line, so writer-side alloc creep is visible in --check output
// without making the gate flaky on allocation-count noise.
//
// Usage:
//
//	go run ./scripts/benchcmp [-threshold 1.20] [-filter regex] [-exclude regex] old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// entry mirrors one element of the bench.sh JSON array.
type entry struct {
	Date       string             `json:"date"`
	Name       string             `json:"name"`
	Iters      int64              `json:"iters"`
	NsPerOp    float64            `json:"ns_per_op"`
	BytesPerOp float64            `json:"bytes_per_op"`
	AllocsOp   float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics"`
}

// load indexes a snapshot by benchmark name. A name appearing more than
// once (bench.sh with BENCH_COUNT > 1) keeps its fastest run: the
// minimum is the standard noise-damping statistic for same-machine
// comparisons — a benchmark can run slower than its best for a hundred
// environmental reasons but faster for none.
func load(path string) (map[string]entry, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var list []entry
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]entry, len(list))
	for _, e := range list {
		if prev, ok := out[e.Name]; ok && prev.NsPerOp <= e.NsPerOp {
			continue
		}
		out[e.Name] = e
	}
	return out, nil
}

func main() {
	threshold := flag.Float64("threshold", 1.20, "fail when new/old ns/op exceeds this ratio")
	filter := flag.String("filter", `^BenchmarkE([1-9]|1[0-5])([^0-9]|$)`, "regexp of benchmark names the gate applies to")
	exclude := flag.String("exclude", `/sweep$`, "regexp of benchmark names excluded from the gate (baseline foils); still reported")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold r] [-filter re] [-exclude re] old.json new.json")
		os.Exit(2)
	}
	re, err := regexp.Compile(*filter)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	exRe, err := regexp.Compile(*exclude)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)

	var regressions []string
	gatedCompared := 0
	for _, name := range names {
		n := cur[name]
		o, ok := old[name]
		if !ok {
			fmt.Printf("NEW      %-55s %12.0f ns/op\n", name, n.NsPerOp)
			continue
		}
		if o.NsPerOp <= 0 {
			continue
		}
		ratio := n.NsPerOp / o.NsPerOp
		status := "ok"
		gated := re.MatchString(name) && !exRe.MatchString(name)
		if gated {
			gatedCompared++
		}
		switch {
		case gated && ratio > *threshold:
			status = "REGRESS"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx)", name, o.NsPerOp, n.NsPerOp, ratio))
		case ratio > *threshold:
			status = "slower" // informational: outside the gated set
		case ratio < 1/(*threshold):
			status = "faster"
		}
		fmt.Printf("%-8s %-55s %12.0f -> %10.0f ns/op  %5.2fx\n", status, name, o.NsPerOp, n.NsPerOp, ratio)
		// Allocation creep is report-only: flag any compared benchmark
		// whose allocs/op grew past the threshold, gated or not.
		if o.AllocsOp > 0 && n.AllocsOp/o.AllocsOp > *threshold {
			fmt.Printf("allocs   %-55s %12.0f -> %10.0f allocs/op  %5.2fx (report-only)\n",
				name, o.AllocsOp, n.AllocsOp, n.AllocsOp/o.AllocsOp)
		}
	}
	for name := range old {
		if _, ok := cur[name]; !ok {
			fmt.Printf("GONE     %-55s\n", name)
		}
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcmp: %d gated regression(s) beyond %.2fx:\n", len(regressions), *threshold)
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	if gatedCompared == 0 {
		// A gate that compared nothing proves nothing — most likely the
		// two snapshots' names do not line up (or the filter is wrong).
		fmt.Fprintf(os.Stderr, "\nbenchcmp: no benchmark matching %q was present in BOTH snapshots; the gate is vacuous\n", *filter)
		os.Exit(1)
	}
	fmt.Printf("\nbenchcmp: no gated regressions beyond %.2fx (%d benchmarks compared, %d gated)\n", *threshold, len(names), gatedCompared)
}
