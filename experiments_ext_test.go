package repro_test

import (
	"testing"

	"saga/internal/embedding"
	"saga/internal/kg"
	"saga/internal/metrics"
	"saga/internal/vecindex"
)

// ---------------------------------------------------------------- E13
// §3.2 / §5 model compression: int8-quantized entity vectors must retain
// related-entity quality at ~4x less memory ("compressing learned models
// (e.g., by floating point precision reduction)").
func TestE13CompressionAblation(t *testing.T) {
	f := getFixture(t)
	flat := vecindex.NewFlat()
	quant := vecindex.NewQuantized()
	n := f.dataset.NumEntities()
	for i := 0; i < n; i++ {
		v := vecindex.Normalize(f.model.EntityVector(int32(i)))
		id := uint64(f.dataset.Ents[i])
		if err := flat.Add(id, v); err != nil {
			t.Fatal(err)
		}
		if err := quant.Add(id, v); err != nil {
			t.Fatal(err)
		}
	}
	// Recall of quantized vs exact top-10.
	var hit, total int
	for q := 0; q < 60; q++ {
		idx := int32((q * 13) % n)
		query := vecindex.Normalize(f.model.EntityVector(idx))
		want := flat.Search(query, 10)
		got := quant.Search(query, 10)
		gotSet := make(map[uint64]bool, len(got))
		for _, r := range got {
			gotSet[r.ID] = true
		}
		for _, r := range want {
			total++
			if gotSet[r.ID] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	floatBytes := n * flat.Dim() * 4
	ratio := float64(floatBytes) / float64(quant.MemoryBytes())
	row(t, "E13", "int8 compression", "recall@10", recall, "memFloatBytes", floatBytes,
		"memInt8Bytes", quant.MemoryBytes(), "compressionRatio", ratio)
	if recall < 0.9 {
		t.Errorf("quantized recall = %.3f, compression destroys quality", recall)
	}
	if ratio < 3 {
		t.Errorf("compression ratio = %.2f, want ~4x", ratio)
	}

	// Downstream check: related-entity cluster precision with quantized
	// vectors stays close to full precision.
	precision := func(ix interface {
		Search(vecindex.Vector, int) []vecindex.Result
	}) float64 {
		var ps []float64
		for _, src := range f.w.People[:30] {
			sIdx, ok := f.dataset.EntityIndex(src)
			if !ok {
				continue
			}
			query := vecindex.Normalize(f.model.EntityVector(sIdx))
			res := ix.Search(query, 25)
			var hits, cnt int
			for _, r := range res {
				id := kg.EntityID(r.ID)
				if id == src {
					continue
				}
				if _, isPerson := f.w.Cluster[id]; !isPerson {
					continue
				}
				cnt++
				if cnt > 10 {
					break
				}
				if f.w.Cluster[id] == f.w.Cluster[src] {
					hits++
				}
			}
			if cnt > 0 {
				ps = append(ps, float64(hits)/float64(min(cnt, 10)))
			}
		}
		return metrics.Mean(ps)
	}
	full := precision(flat)
	compressed := precision(quant)
	row(t, "E13", "related-entities P@10", "float32", full, "int8", compressed)
	if compressed < full-0.1 {
		t.Errorf("quantized related precision %.3f far below full %.3f", compressed, full)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------- E14
// §2 reasoning-based path: multi-hop queries answered by relation
// composition in embedding space, against traversal ground truth.
func TestE14MultiHopReasoning(t *testing.T) {
	f := getFixture(t)
	collab, ok := f.dataset.RelationIndex(f.w.Preds["collaborator"])
	if !ok {
		t.Fatal("collaborator relation missing")
	}
	member, ok := f.dataset.RelationIndex(f.w.Preds["memberOf"])
	if !ok {
		t.Fatal("memberOf relation missing")
	}
	var teamIdx []int32
	for _, team := range f.w.Teams {
		if ti, ok := f.dataset.EntityIndex(team); ok {
			teamIdx = append(teamIdx, ti)
		}
	}
	var hits, total int
	for _, p := range f.w.People {
		pIdx, ok := f.dataset.EntityIndex(p)
		if !ok {
			continue
		}
		q := embedding.PathQuery{Start: pIdx, Relations: []int32{collab, member}}
		gt := embedding.PathGroundTruth(f.dataset, q)
		if len(gt) == 0 {
			continue
		}
		ranked, err := embedding.AnswerPathQuery(f.model, q, teamIdx)
		if err != nil {
			t.Fatal(err)
		}
		total++
		for _, st := range ranked[:min(3, len(ranked))] {
			if gt[st.Tail] {
				hits++
				break
			}
		}
	}
	if total == 0 {
		t.Fatal("no evaluable 2-hop queries")
	}
	rate := float64(hits) / float64(total)
	// Random top-3 over the team candidates.
	random := 3.0 / float64(len(teamIdx))
	row(t, "E14", "2-hop path queries", "hits@3", rate, "n", total, "randomBaseline", random)
	if rate < random+0.2 {
		t.Errorf("composition Hits@3 %.3f barely above random %.3f", rate, random)
	}
}

// ------------------------------------------------------------ ablations
// Design-choice ablations called out in DESIGN.md: negative-sample count
// and embedding dimensionality, at a fixed epoch budget.
func TestAblationNegativesAndDim(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep skipped in -short")
	}
	f := getFixture(t)
	for _, negs := range []int{1, 4, 8} {
		m, err := embedding.Train(f.train, embedding.TrainConfig{
			Model: embedding.DistMult, Dim: 32, Epochs: 20, LearningRate: 0.08,
			Negatives: negs, Workers: 4, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := embedding.Evaluate(m, f.dataset, f.test.Triples)
		row(t, "ABL", "negative-sample ablation", "negatives", negs, "MRR", res.MRR, "Hits@10", res.Hits10)
	}
	for _, dim := range []int{8, 32, 64} {
		m, err := embedding.Train(f.train, embedding.TrainConfig{
			Model: embedding.DistMult, Dim: dim, Epochs: 20, LearningRate: 0.08,
			Negatives: 4, Workers: 4, Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := embedding.Evaluate(m, f.dataset, f.test.Triples)
		row(t, "ABL", "dimension ablation", "dim", dim, "MRR", res.MRR, "Hits@10", res.Hits10)
	}
}

// BenchmarkE13Quantized compares float32 vs int8 kNN latency.
func BenchmarkE13Quantized(b *testing.B) {
	f := getFixture(b)
	flat := vecindex.NewFlat()
	quant := vecindex.NewQuantized()
	n := f.dataset.NumEntities()
	for i := 0; i < n; i++ {
		v := vecindex.Normalize(f.model.EntityVector(int32(i)))
		id := uint64(f.dataset.Ents[i])
		if err := flat.Add(id, v); err != nil {
			b.Fatal(err)
		}
		if err := quant.Add(id, v); err != nil {
			b.Fatal(err)
		}
	}
	query := vecindex.Normalize(f.model.EntityVector(0))
	b.Run("float32", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = flat.Search(query, 10)
		}
	})
	b.Run("int8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = quant.Search(query, 10)
		}
	})
}

// BenchmarkE14PathQuery measures 2-hop composed query latency vs the
// traversal baseline.
func BenchmarkE14PathQuery(b *testing.B) {
	f := getFixture(b)
	collab, _ := f.dataset.RelationIndex(f.w.Preds["collaborator"])
	member, _ := f.dataset.RelationIndex(f.w.Preds["memberOf"])
	var teamIdx []int32
	for _, team := range f.w.Teams {
		if ti, ok := f.dataset.EntityIndex(team); ok {
			teamIdx = append(teamIdx, ti)
		}
	}
	pIdx, _ := f.dataset.EntityIndex(f.w.People[0])
	q := embedding.PathQuery{Start: pIdx, Relations: []int32{collab, member}}
	b.Run("embedding-composition", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := embedding.AnswerPathQuery(f.model, q, teamIdx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("graph-traversal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = embedding.PathGroundTruth(f.dataset, q)
		}
	})
}
