// Package webcorpus generates the synthetic Web document corpus that
// substitutes for the paper's billion-scale crawl (Fig 4). Documents are
// generated from knowledge-graph entities with gold mention annotations
// (including planted ambiguous mentions whose resolution requires
// context), page-quality priors, optional schema.org-style infobox
// key-value payloads for the ODKE rule-based extractor, and a change
// model for incremental re-annotation experiments.
package webcorpus

import (
	"fmt"
	"math/rand"
	"strings"

	"saga/internal/kg"
	"saga/internal/workload"
)

// GoldMention is a ground-truth entity mention in a document.
type GoldMention struct {
	// Start/End are byte offsets into Document.Text.
	Start, End int
	// Entity is the correct KG entity for this mention.
	Entity kg.EntityID
	// Surface is the mention text.
	Surface string
	// Ambiguous marks mentions whose surface form names multiple KG
	// entities (the hard disambiguation cases of Fig 2 / §3).
	Ambiguous bool
}

// Document is a synthetic web page.
type Document struct {
	ID    string
	URL   string
	Title string
	Text  string
	// Quality in [0,1] is the page-quality prior (a fusion feature, §4).
	Quality float64
	// Version increments on every mutation; the annotation pipeline uses
	// it to detect changed pages.
	Version int
	// Gold lists the true mentions, for evaluation only.
	Gold []GoldMention
	// Infobox holds schema.org-style key/value pairs when the page embeds
	// structured data ("simple rule-based models can be used to extract
	// key-value pairs from webpages embedded with structured data", §4).
	Infobox map[string]string
	// InfoboxSubject is the entity the infobox describes (NoEntity when
	// absent).
	InfoboxSubject kg.EntityID
	// Cluster is the world cluster the document is about (-1 for noise
	// pages); used only by generators and tests.
	Cluster int
}

// Config sizes the corpus generator.
type Config struct {
	// NumDocs defaults to 300.
	NumDocs int
	// NoiseFraction of documents mention no KG entity. The zero value
	// selects the default 0.2; pass a tiny positive value (e.g. 1e-9) to
	// effectively disable noise pages.
	NoiseFraction float64
	// InfoboxFraction of entity documents carry structured data. The zero
	// value selects the default 0.3.
	InfoboxFraction float64
	// WrongInfoboxFraction of infoboxes contain one corrupted value (the
	// §4 veracity challenge). Defaults to 0: corruption is opt-in.
	WrongInfoboxFraction float64
	// Seed drives all randomness.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.NumDocs <= 0 {
		c.NumDocs = 300
	}
	if c.NoiseFraction <= 0 || c.NoiseFraction >= 1 {
		c.NoiseFraction = 0.2
	}
	if c.InfoboxFraction <= 0 || c.InfoboxFraction > 1 {
		c.InfoboxFraction = 0.3
	}
	if c.WrongInfoboxFraction < 0 || c.WrongInfoboxFraction > 1 {
		c.WrongInfoboxFraction = 0
	}
}

var noiseSentences = []string{
	"The weather today is expected to remain mild with scattered clouds.",
	"Local markets saw a modest uptick in produce prices this week.",
	"A new recipe for sourdough bread has been trending among home bakers.",
	"Traffic on the ring road was slower than usual this morning.",
	"The library extended its opening hours for the exam season.",
	"Gardeners recommend planting bulbs before the first frost arrives.",
}

// Generate builds a corpus over the world's entities.
func Generate(w *workload.World, cfg Config) []*Document {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	docs := make([]*Document, 0, cfg.NumDocs)
	for i := 0; i < cfg.NumDocs; i++ {
		if rng.Float64() < cfg.NoiseFraction {
			docs = append(docs, noiseDoc(i, rng))
			continue
		}
		docs = append(docs, entityDoc(w, i, rng, cfg))
	}
	return docs
}

func noiseDoc(i int, rng *rand.Rand) *Document {
	n := 2 + rng.Intn(3)
	var b strings.Builder
	for s := 0; s < n; s++ {
		b.WriteString(noiseSentences[rng.Intn(len(noiseSentences))])
		b.WriteString(" ")
	}
	return &Document{
		ID:      fmt.Sprintf("doc%05d", i),
		URL:     fmt.Sprintf("https://example.org/news/%05d", i),
		Title:   "Community notes",
		Text:    strings.TrimSpace(b.String()),
		Quality: 0.3 + rng.Float64()*0.4,
		Version: 1,
		Cluster: -1,
	}
}

// entityDoc writes a page about 2-3 people from one cluster, weaving in
// the cluster's team/city/award names as disambiguating context, and
// records gold mention offsets as it writes.
func entityDoc(w *workload.World, i int, rng *rand.Rand, cfg Config) *Document {
	cluster := rng.Intn(len(w.ClusterMembers))
	members := w.ClusterMembers[cluster]
	if len(members) == 0 {
		return noiseDoc(i, rng)
	}
	g := w.Graph
	team := g.Entity(w.Teams[cluster]).Name
	city := g.Entity(w.Cities[cluster%len(w.Cities)]).Name
	award := g.Entity(w.Awards[cluster]).Name
	occ := g.Entity(w.ThemeOccs[cluster]).Name

	nPeople := 2
	if len(members) > 2 && rng.Intn(2) == 0 {
		nPeople = 3
	}
	chosen := make([]kg.EntityID, 0, nPeople)
	seen := make(map[kg.EntityID]bool)
	for len(chosen) < nPeople && len(chosen) < len(members) {
		p := members[rng.Intn(len(members))]
		if !seen[p] {
			seen[p] = true
			chosen = append(chosen, p)
		}
	}

	doc := &Document{
		ID:      fmt.Sprintf("doc%05d", i),
		URL:     fmt.Sprintf("https://example.org/sports/%05d", i),
		Title:   fmt.Sprintf("%s update from %s", team, city),
		Quality: 0.5 + rng.Float64()*0.5,
		Version: 1,
		Cluster: cluster,
	}

	var b strings.Builder
	writeMention := func(p kg.EntityID) {
		name := g.Entity(p).Name
		start := b.Len()
		b.WriteString(name)
		doc.Gold = append(doc.Gold, GoldMention{
			Start:     start,
			End:       start + len(name),
			Entity:    p,
			Surface:   name,
			Ambiguous: len(w.AmbiguousNames[name]) > 1,
		})
	}

	// Sentence templates referencing cluster context.
	writeMention(chosen[0])
	b.WriteString(fmt.Sprintf(" impressed again for the %s in %s. ", team, city))
	if len(chosen) > 1 {
		b.WriteString("Teammate ")
		writeMention(chosen[1])
		b.WriteString(fmt.Sprintf(" also featured, confirming the strength of %s this season. ", team))
	}
	if len(chosen) > 2 {
		writeMention(chosen[2])
		b.WriteString(fmt.Sprintf(" received the %s after the match. ", award))
	}
	b.WriteString(fmt.Sprintf("Every %s in %s dreams of such a run. ", occ, city))
	if rng.Intn(2) == 0 {
		b.WriteString(noiseSentences[rng.Intn(len(noiseSentences))])
	}
	doc.Text = strings.TrimSpace(b.String())

	// Optional infobox about the first person.
	if rng.Float64() < cfg.InfoboxFraction {
		subject := chosen[0]
		doc.InfoboxSubject = subject
		doc.Infobox = buildInfobox(w, subject, rng, cfg.WrongInfoboxFraction)
	}
	return doc
}

// buildInfobox renders KG facts about subject as string key/values,
// optionally corrupting one value to exercise the veracity machinery.
func buildInfobox(w *workload.World, subject kg.EntityID, rng *rand.Rand, wrongFrac float64) map[string]string {
	g := w.Graph
	box := make(map[string]string)
	// Each field wants only the first asserted fact; pull it with an
	// early-stopped posting iteration instead of copying the whole slice.
	first := func(pred kg.PredicateID) (kg.Value, bool) {
		for t := range g.FactsSeq(subject, pred) {
			return t.Object, true
		}
		return kg.Value{}, false
	}
	if obj, ok := first(w.Preds["dateOfBirth"]); ok {
		box["dateOfBirth"] = obj.TS.Format("2006-01-02")
	}
	if obj, ok := first(w.Preds["memberOf"]); ok {
		box["memberOf"] = g.Entity(obj.Entity).Name
	}
	if obj, ok := first(w.Preds["bornIn"]); ok {
		box["bornIn"] = g.Entity(obj.Entity).Name
	}
	if obj, ok := first(w.Preds["occupation"]); ok {
		box["occupation"] = g.Entity(obj.Entity).Name
	}
	if rng.Float64() < wrongFrac && len(box) > 0 {
		// Corrupt the date of birth if present, else a name field.
		if _, ok := box["dateOfBirth"]; ok {
			box["dateOfBirth"] = fmt.Sprintf("19%02d-%02d-%02d", 50+rng.Intn(50), 1+rng.Intn(12), 1+rng.Intn(28))
		} else {
			box["bornIn"] = "Atlantis"
		}
	}
	return box
}

// Mutate applies the corpus change model: each document independently
// changes with probability rate. A changed document gets one extra noise
// sentence appended and its Version bumped. Returns the changed IDs.
// Gold mention offsets are unaffected because text is only appended.
func Mutate(docs []*Document, rate float64, rng *rand.Rand) []string {
	var changed []string
	for _, d := range docs {
		if rng.Float64() >= rate {
			continue
		}
		d.Text = d.Text + " " + noiseSentences[rng.Intn(len(noiseSentences))]
		d.Version++
		changed = append(changed, d.ID)
	}
	return changed
}
