package webcorpus

import (
	"math/rand"
	"strings"
	"testing"

	"saga/internal/workload"
)

func corpusWorld(t *testing.T) *workload.World {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 60, NumClusters: 6, AmbiguousNamePairs: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestGenerateShape(t *testing.T) {
	w := corpusWorld(t)
	docs := Generate(w, Config{NumDocs: 200, Seed: 23})
	if len(docs) != 200 {
		t.Fatalf("docs = %d", len(docs))
	}
	ids := make(map[string]bool)
	var noise, entity, withBox int
	for _, d := range docs {
		if ids[d.ID] {
			t.Fatalf("duplicate doc ID %s", d.ID)
		}
		ids[d.ID] = true
		if d.Text == "" || d.URL == "" {
			t.Fatal("empty doc fields")
		}
		if d.Version != 1 {
			t.Fatalf("initial version = %d", d.Version)
		}
		if d.Cluster == -1 {
			noise++
			if len(d.Gold) != 0 {
				t.Fatal("noise doc has gold mentions")
			}
		} else {
			entity++
			if len(d.Gold) == 0 {
				t.Fatal("entity doc without gold mentions")
			}
		}
		if d.Infobox != nil {
			withBox++
			if d.InfoboxSubject == 0 {
				t.Fatal("infobox without subject")
			}
		}
	}
	if noise == 0 || entity == 0 {
		t.Fatalf("noise=%d entity=%d; need both", noise, entity)
	}
	if withBox == 0 {
		t.Fatal("no infoboxes generated")
	}
}

func TestGoldMentionOffsets(t *testing.T) {
	w := corpusWorld(t)
	docs := Generate(w, Config{NumDocs: 150, Seed: 7})
	var checked int
	for _, d := range docs {
		for _, gm := range d.Gold {
			if gm.Start < 0 || gm.End > len(d.Text) || gm.Start >= gm.End {
				t.Fatalf("bad offsets %d:%d in doc %s", gm.Start, gm.End, d.ID)
			}
			if got := d.Text[gm.Start:gm.End]; got != gm.Surface {
				t.Fatalf("offset text %q != surface %q", got, gm.Surface)
			}
			if w.Graph.Entity(gm.Entity) == nil {
				t.Fatalf("gold mention references unknown entity %v", gm.Entity)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no gold mentions generated")
	}
}

func TestAmbiguousMentionsPresent(t *testing.T) {
	w := corpusWorld(t)
	docs := Generate(w, Config{NumDocs: 400, Seed: 9})
	var ambiguous int
	for _, d := range docs {
		for _, gm := range d.Gold {
			if gm.Ambiguous {
				ambiguous++
				// The correct bearer must be in the doc's cluster.
				if w.Cluster[gm.Entity] != d.Cluster {
					t.Fatalf("ambiguous gold entity outside doc cluster")
				}
			}
		}
	}
	if ambiguous == 0 {
		t.Fatal("no ambiguous mentions in 400 docs; disambiguation experiment would be vacuous")
	}
}

func TestInfoboxValuesMatchKG(t *testing.T) {
	w := corpusWorld(t)
	docs := Generate(w, Config{NumDocs: 300, WrongInfoboxFraction: 0, Seed: 11})
	var boxes int
	for _, d := range docs {
		if d.Infobox == nil {
			continue
		}
		boxes++
		if dob, ok := d.Infobox["dateOfBirth"]; ok {
			facts := w.Graph.Facts(d.InfoboxSubject, w.Preds["dateOfBirth"])
			if len(facts) == 0 {
				t.Fatal("infobox dob for person without dob fact")
			}
			if want := facts[0].Object.TS.Format("2006-01-02"); dob != want {
				t.Fatalf("uncorrupted infobox dob %q != KG %q", dob, want)
			}
		}
		if team, ok := d.Infobox["memberOf"]; ok {
			facts := w.Graph.Facts(d.InfoboxSubject, w.Preds["memberOf"])
			if len(facts) == 0 || w.Graph.Entity(facts[0].Object.Entity).Name != team {
				t.Fatalf("infobox memberOf %q mismatches KG", team)
			}
		}
	}
	if boxes == 0 {
		t.Fatal("no infoboxes")
	}
}

func TestWrongInfoboxFraction(t *testing.T) {
	w := corpusWorld(t)
	docs := Generate(w, Config{NumDocs: 400, InfoboxFraction: 1, NoiseFraction: 0.0001, WrongInfoboxFraction: 1, Seed: 13})
	var wrong, total int
	for _, d := range docs {
		if d.Infobox == nil {
			continue
		}
		dob, ok := d.Infobox["dateOfBirth"]
		if !ok {
			continue
		}
		total++
		facts := w.Graph.Facts(d.InfoboxSubject, w.Preds["dateOfBirth"])
		if len(facts) > 0 && dob != facts[0].Object.TS.Format("2006-01-02") {
			wrong++
		}
	}
	if total == 0 {
		t.Fatal("no dob infoboxes")
	}
	// With WrongInfoboxFraction=1 nearly all should differ (a random date
	// can coincide with the true one only rarely).
	if float64(wrong)/float64(total) < 0.9 {
		t.Fatalf("wrong fraction = %d/%d, corruption not applied", wrong, total)
	}
}

func TestMutate(t *testing.T) {
	w := corpusWorld(t)
	docs := Generate(w, Config{NumDocs: 200, Seed: 15})
	orig := make(map[string]string)
	for _, d := range docs {
		orig[d.ID] = d.Text
	}
	rng := rand.New(rand.NewSource(15))
	changed := Mutate(docs, 0.25, rng)
	if len(changed) == 0 {
		t.Fatal("nothing changed at rate 0.25")
	}
	if len(changed) > 200/2 {
		t.Fatalf("changed %d docs at rate 0.25; change model broken", len(changed))
	}
	changedSet := make(map[string]bool)
	for _, id := range changed {
		changedSet[id] = true
	}
	for _, d := range docs {
		if changedSet[d.ID] {
			if d.Version != 2 {
				t.Fatalf("changed doc version = %d", d.Version)
			}
			if !strings.HasPrefix(d.Text, orig[d.ID]) {
				t.Fatal("mutation must only append (gold offsets depend on it)")
			}
			// Gold offsets still valid.
			for _, gm := range d.Gold {
				if d.Text[gm.Start:gm.End] != gm.Surface {
					t.Fatal("gold offsets broken by mutation")
				}
			}
		} else {
			if d.Version != 1 || d.Text != orig[d.ID] {
				t.Fatal("unchanged doc was modified")
			}
		}
	}
	// Rate 0 changes nothing.
	if got := Mutate(docs, 0, rng); len(got) != 0 {
		t.Fatalf("rate 0 changed %d docs", len(got))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w := corpusWorld(t)
	a := Generate(w, Config{NumDocs: 50, Seed: 99})
	b := Generate(w, Config{NumDocs: 50, Seed: 99})
	for i := range a {
		if a[i].Text != b[i].Text || a[i].ID != b[i].ID {
			t.Fatalf("doc %d not deterministic", i)
		}
	}
}
