// Package admission is the serving tier's overload-protection layer:
// per-class concurrency limits, bounded FIFO wait queues with a queue
// deadline, request-budget deadlines for propagation into handler
// contexts, and a drain switch for graceful shutdown.
//
// The contract is bounded queueing: a request is either admitted within
// its class's queue deadline or shed early and cheaply (ErrQueueFull,
// ErrQueueTimeout, ErrDraining), never parked unboundedly. The HTTP
// layer maps sheds to 429 + Retry-After (503 while draining) so a
// saturated server keeps answering every request — most of them with a
// cheap rejection — instead of missing every deadline at once.
//
// # Priority classes
//
// Traffic is partitioned into four classes with independent limits:
// Exempt (health/metrics — always admitted, only counted), Read (lookup
// and query traffic), Write (ingest and rule installation), and
// Subscribe (long-lived streams, whose slot is held for the stream's
// whole life, making the in-flight limit a concurrent-subscriber cap).
// Degradation is ordered: when readers are already queueing, new writes
// are shed immediately (ErrDegraded) rather than competing for CPU —
// reads keep serving while ingest sheds first. Exempt traffic is never
// shed, even while draining, so orchestrators can still probe /health
// during shutdown.
//
// # Deadlines
//
// Admission bounds time-to-start; the per-class Budget bounds
// time-to-finish. WithBudget derives a handler context that expires
// ErrBudget after the class budget, letting streaming solves
// distinguish "client went away" (write nothing) from "budget spent"
// (write 503 + Retry-After) via context.Cause.
package admission

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"saga/internal/metrics"
)

// Class is a request priority class.
type Class int

// Classes, in strictly descending admission priority.
const (
	// Exempt is never queued or shed (health, metrics).
	Exempt Class = iota
	// Read is lookup/query/search traffic.
	Read
	// Write is mutation traffic (ingest, rule installs, derives).
	Write
	// Subscribe is long-lived streaming traffic; its slot is held for
	// the stream's lifetime.
	Subscribe

	numClasses
)

// String returns the class's stats key.
func (c Class) String() string {
	switch c {
	case Exempt:
		return "exempt"
	case Read:
		return "read"
	case Write:
		return "write"
	case Subscribe:
		return "subscribe"
	}
	return "unknown"
}

// Shed sentinels. The HTTP layer maps ErrDraining to 503 and the rest
// to 429, both with Retry-After.
var (
	// ErrQueueFull reports a wait queue at capacity: the request was
	// shed without waiting.
	ErrQueueFull = errors.New("admission: wait queue full")
	// ErrQueueTimeout reports a request that queued for the full queue
	// deadline without a slot freeing up.
	ErrQueueTimeout = errors.New("admission: queue deadline exceeded")
	// ErrDraining reports a shed because the controller is draining for
	// shutdown.
	ErrDraining = errors.New("admission: server draining")
	// ErrDegraded reports a write shed immediately because readers were
	// already queueing (reads keep serving; ingest sheds first).
	ErrDegraded = errors.New("admission: writes shed while reads queue")
	// ErrBudget is the cancellation cause installed by WithBudget when a
	// request's class budget expires.
	ErrBudget = errors.New("admission: request budget exceeded")
)

// Limits bound one class's concurrency, queueing, and per-request
// budget. The zero value means unlimited concurrency, no queue, and no
// budget.
type Limits struct {
	// MaxInFlight is the concurrent-admission cap; <= 0 is unlimited.
	MaxInFlight int
	// MaxQueue bounds how many requests may wait for a slot beyond
	// MaxInFlight; <= 0 sheds immediately at capacity.
	MaxQueue int
	// QueueWait is the longest a request may wait for a slot; <= 0
	// waits only on the request context.
	QueueWait time.Duration
	// Budget is the end-to-end deadline WithBudget installs on the
	// handler context; 0 means none (long-lived streams).
	Budget time.Duration
}

// limiter is one class's admission state: a channel semaphore (blocked
// senders queue approximately FIFO in the runtime) plus counters.
type limiter struct {
	limits Limits
	// slots is the semaphore; nil when MaxInFlight is unlimited.
	slots chan struct{}

	inFlight atomic.Int64
	queued   atomic.Int64

	admitted     metrics.Counter
	shedFull     metrics.Counter
	shedTimeout  metrics.Counter
	shedDrain    metrics.Counter
	shedDegraded metrics.Counter
	// Queue-wait accounting over admitted requests, for drain-latency
	// visibility: cumulative nanoseconds and the high-water mark.
	waitTotalNS metrics.Counter
	waitMaxNS   atomic.Int64
}

func newLimiter(l Limits) *limiter {
	lim := &limiter{limits: l}
	if l.MaxInFlight > 0 {
		lim.slots = make(chan struct{}, l.MaxInFlight)
	}
	return lim
}

// Controller multiplexes the per-class limiters and the drain switch.
type Controller struct {
	classes [numClasses]*limiter

	draining   atomic.Bool
	drainStart atomic.Int64 // UnixNano of StartDrain
	drainedIn  atomic.Int64 // ns from StartDrain to first quiesced Stats observation
}

// NewController builds a controller with the given class limits. The
// Exempt class never limits; it only counts.
func NewController(read, write, subscribe Limits) *Controller {
	ctl := &Controller{}
	ctl.classes[Exempt] = newLimiter(Limits{})
	ctl.classes[Read] = newLimiter(read)
	ctl.classes[Write] = newLimiter(write)
	ctl.classes[Subscribe] = newLimiter(subscribe)
	return ctl
}

// DefaultLimits returns the stock serving-tier limits used when the
// operator sets nothing: generous enough that functional traffic never
// queues, tight enough that a saturating burst sheds instead of
// accumulating.
func DefaultLimits() (read, write, subscribe Limits) {
	read = Limits{MaxInFlight: 256, MaxQueue: 512, QueueWait: 250 * time.Millisecond, Budget: 5 * time.Second}
	write = Limits{MaxInFlight: 64, MaxQueue: 128, QueueWait: 100 * time.Millisecond, Budget: 5 * time.Second}
	subscribe = Limits{MaxInFlight: 1024, MaxQueue: 0, QueueWait: 0, Budget: 0}
	return read, write, subscribe
}

// Acquire admits one request of class c, waiting in the class's bounded
// FIFO queue when at capacity. On success the returned release must be
// called exactly once when the request finishes (for Subscribe, when
// the stream ends — the slot is the subscriber's concurrency token).
// On shed it returns one of the sentinel errors, or the context's
// cancellation cause if ctx ended while queued.
func (ctl *Controller) Acquire(ctx context.Context, c Class) (release func(), err error) {
	lim := ctl.classes[c]
	if c == Exempt {
		return lim.admit(0), nil
	}
	if ctl.draining.Load() {
		lim.shedDrain.Inc()
		return nil, ErrDraining
	}
	// Reads keep serving while ingest sheds first: a write arriving when
	// readers are already queueing is shed before it takes a slot.
	if c == Write && ctl.classes[Read].queued.Load() > 0 {
		lim.shedDegraded.Inc()
		return nil, ErrDegraded
	}
	if lim.slots == nil {
		return lim.admit(0), nil
	}
	select {
	case lim.slots <- struct{}{}:
		return lim.admit(0), nil
	default:
	}
	// At capacity: join the bounded wait queue or shed on the spot.
	if lim.limits.MaxQueue <= 0 {
		lim.shedFull.Inc()
		return nil, ErrQueueFull
	}
	if q := lim.queued.Add(1); q > int64(lim.limits.MaxQueue) {
		lim.queued.Add(-1)
		lim.shedFull.Inc()
		return nil, ErrQueueFull
	}
	var deadline <-chan time.Time
	if lim.limits.QueueWait > 0 {
		t := time.NewTimer(lim.limits.QueueWait)
		defer t.Stop()
		deadline = t.C
	}
	start := time.Now()
	select {
	case lim.slots <- struct{}{}:
		lim.queued.Add(-1)
		return lim.admit(time.Since(start)), nil
	case <-deadline:
		lim.queued.Add(-1)
		lim.shedTimeout.Inc()
		return nil, ErrQueueTimeout
	case <-ctx.Done():
		lim.queued.Add(-1)
		return nil, context.Cause(ctx)
	}
}

// admit records the admission and returns its idempotent release.
func (lim *limiter) admit(waited time.Duration) func() {
	lim.inFlight.Add(1)
	lim.admitted.Inc()
	if waited > 0 {
		lim.waitTotalNS.Add(int64(waited))
		for {
			cur := lim.waitMaxNS.Load()
			if int64(waited) <= cur || lim.waitMaxNS.CompareAndSwap(cur, int64(waited)) {
				break
			}
		}
	}
	var done atomic.Bool
	return func() {
		if !done.CompareAndSwap(false, true) {
			return
		}
		lim.inFlight.Add(-1)
		if lim.slots != nil {
			<-lim.slots
		}
	}
}

// WithBudget derives the handler context for class c: the class budget
// becomes a deadline whose cancellation cause is ErrBudget, so handlers
// can tell budget expiry (client still listening — answer 503) from a
// client disconnect (write nothing). A zero budget returns ctx as-is.
func (ctl *Controller) WithBudget(ctx context.Context, c Class) (context.Context, context.CancelFunc) {
	b := ctl.classes[c].limits.Budget
	if b <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeoutCause(ctx, b, ErrBudget)
}

// Budget returns class c's configured request budget (0 = none).
func (ctl *Controller) Budget(c Class) time.Duration { return ctl.classes[c].limits.Budget }

// StartDrain flips the controller into drain mode: every non-exempt
// Acquire sheds with ErrDraining from now on, while requests already
// admitted run to completion. Exempt traffic keeps flowing so health
// probes can watch the drain. Idempotent.
func (ctl *Controller) StartDrain() {
	if ctl.draining.CompareAndSwap(false, true) {
		ctl.drainStart.Store(time.Now().UnixNano())
	}
}

// Draining reports whether StartDrain has been called.
func (ctl *Controller) Draining() bool { return ctl.draining.Load() }

// ClassStats is one class's admission snapshot, shaped for /health.
type ClassStats struct {
	// InFlight and QueueDepth are instantaneous gauges.
	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`
	// Admitted and the shed counters are lifetime totals.
	Admitted         int64 `json:"admitted"`
	ShedQueueFull    int64 `json:"shed_queue_full"`
	ShedQueueTimeout int64 `json:"shed_queue_timeout"`
	ShedDraining     int64 `json:"shed_draining"`
	ShedDegraded     int64 `json:"shed_degraded"`
	// Queue-wait accounting over admitted requests.
	QueueWaitTotalMS float64 `json:"queue_wait_total_ms"`
	QueueWaitMaxMS   float64 `json:"queue_wait_max_ms"`
	// Configured limits, echoed for operability.
	MaxInFlight int     `json:"max_in_flight"`
	MaxQueue    int     `json:"max_queue"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	BudgetMS    float64 `json:"budget_ms"`
}

// Stats is the controller snapshot surfaced under /health "admission".
type Stats struct {
	Draining bool `json:"draining"`
	// DrainedInMS is how long after StartDrain the non-exempt in-flight
	// count was first observed at zero (0 until then).
	DrainedInMS float64               `json:"drained_in_ms,omitempty"`
	Classes     map[string]ClassStats `json:"classes"`
}

// TotalShed sums every shed counter across classes.
func (s Stats) TotalShed() int64 {
	var n int64
	for _, c := range s.Classes {
		n += c.ShedQueueFull + c.ShedQueueTimeout + c.ShedDraining + c.ShedDegraded
	}
	return n
}

// Stats snapshots the controller. While draining, the first snapshot
// that observes zero non-exempt in-flight requests latches the drain
// latency.
func (ctl *Controller) Stats() Stats {
	st := Stats{Draining: ctl.draining.Load(), Classes: make(map[string]ClassStats, int(numClasses))}
	var busy int64
	for c := Exempt; c < numClasses; c++ {
		lim := ctl.classes[c]
		if c != Exempt {
			busy += lim.inFlight.Load()
		}
		st.Classes[c.String()] = ClassStats{
			InFlight:         lim.inFlight.Load(),
			QueueDepth:       lim.queued.Load(),
			Admitted:         lim.admitted.Value(),
			ShedQueueFull:    lim.shedFull.Value(),
			ShedQueueTimeout: lim.shedTimeout.Value(),
			ShedDraining:     lim.shedDrain.Value(),
			ShedDegraded:     lim.shedDegraded.Value(),
			QueueWaitTotalMS: float64(lim.waitTotalNS.Value()) / 1e6,
			QueueWaitMaxMS:   float64(lim.waitMaxNS.Load()) / 1e6,
			MaxInFlight:      lim.limits.MaxInFlight,
			MaxQueue:         lim.limits.MaxQueue,
			QueueWaitMS:      float64(lim.limits.QueueWait) / 1e6,
			BudgetMS:         float64(lim.limits.Budget) / 1e6,
		}
	}
	if st.Draining && busy == 0 && ctl.drainedIn.Load() == 0 {
		ctl.drainedIn.CompareAndSwap(0, time.Now().UnixNano()-ctl.drainStart.Load())
	}
	if ns := ctl.drainedIn.Load(); ns > 0 {
		st.DrainedInMS = float64(ns) / 1e6
	}
	return st
}
