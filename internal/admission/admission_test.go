package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAcquireFastPath(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 2, MaxQueue: 2, QueueWait: time.Second}, Limits{}, Limits{})
	rel1, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	st := ctl.Stats().Classes["read"]
	if st.InFlight != 2 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if got := ctl.Stats().Classes["read"].InFlight; got != 0 {
		t.Fatalf("in_flight after release = %d", got)
	}
}

func TestQueueFullSheds(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 1, MaxQueue: 0}, Limits{}, Limits{})
	rel, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := ctl.Acquire(context.Background(), Read); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if got := ctl.Stats().Classes["read"].ShedQueueFull; got != 1 {
		t.Fatalf("shed_queue_full = %d", got)
	}
}

func TestQueueTimeoutSheds(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 1, MaxQueue: 4, QueueWait: 20 * time.Millisecond}, Limits{}, Limits{})
	rel, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := ctl.Acquire(context.Background(), Read); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if waited := time.Since(start); waited < 15*time.Millisecond {
		t.Fatalf("shed after %v, want >= queue deadline", waited)
	}
	if got := ctl.Stats().Classes["read"].ShedQueueTimeout; got != 1 {
		t.Fatalf("shed_queue_timeout = %d", got)
	}
}

func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 1, MaxQueue: 4, QueueWait: 2 * time.Second}, Limits{}, Limits{})
	rel, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		rel2, err := ctl.Acquire(context.Background(), Read)
		if err == nil {
			rel2()
		}
		done <- err
	}()
	// Let the waiter queue, then free the slot.
	for ctl.Stats().Classes["read"].QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-done; err != nil {
		t.Fatalf("queued acquire failed: %v", err)
	}
	st := ctl.Stats().Classes["read"]
	if st.QueueDepth != 0 || st.Admitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QueueWaitMaxMS <= 0 {
		t.Fatalf("queue wait not recorded: %+v", st)
	}
}

func TestContextCancelWhileQueued(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 1, MaxQueue: 4, QueueWait: 2 * time.Second}, Limits{}, Limits{})
	rel, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := ctl.Acquire(ctx, Read)
		done <- err
	}()
	for ctl.Stats().Classes["read"].QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestWriteShedsWhileReadsQueue(t *testing.T) {
	ctl := NewController(
		Limits{MaxInFlight: 1, MaxQueue: 4, QueueWait: 2 * time.Second},
		Limits{MaxInFlight: 8, MaxQueue: 8, QueueWait: time.Second},
		Limits{})
	// Writes sail through while reads are healthy.
	relW, err := ctl.Acquire(context.Background(), Write)
	if err != nil {
		t.Fatal(err)
	}
	relW()
	// Saturate reads and park one in the queue.
	relR, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer relR()
	queued := make(chan error, 1)
	go func() {
		rel, err := ctl.Acquire(context.Background(), Read)
		if err == nil {
			rel()
		}
		queued <- err
	}()
	for ctl.Stats().Classes["read"].QueueDepth == 0 {
		time.Sleep(time.Millisecond)
	}
	// Now a write must shed immediately, leaving its slots untouched.
	if _, err := ctl.Acquire(context.Background(), Write); !errors.Is(err, ErrDegraded) {
		t.Fatalf("err = %v, want ErrDegraded", err)
	}
	if got := ctl.Stats().Classes["write"].ShedDegraded; got != 1 {
		t.Fatalf("shed_degraded = %d", got)
	}
	relR()
	if err := <-queued; err != nil {
		t.Fatalf("queued read: %v", err)
	}
}

func TestDrain(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 4}, Limits{MaxInFlight: 4}, Limits{MaxInFlight: 4})
	rel, err := ctl.Acquire(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	ctl.StartDrain()
	ctl.StartDrain() // idempotent
	for _, c := range []Class{Read, Write, Subscribe} {
		if _, err := ctl.Acquire(context.Background(), c); !errors.Is(err, ErrDraining) {
			t.Fatalf("class %v err = %v, want ErrDraining", c, err)
		}
	}
	// Exempt traffic still flows during drain.
	relH, err := ctl.Acquire(context.Background(), Exempt)
	if err != nil {
		t.Fatalf("exempt during drain: %v", err)
	}
	relH()
	if st := ctl.Stats(); !st.Draining || st.DrainedInMS != 0 {
		t.Fatalf("mid-drain stats = %+v", st)
	}
	rel()
	// The first quiesced snapshot latches the drain latency.
	if st := ctl.Stats(); st.DrainedInMS <= 0 {
		t.Fatalf("drained_in_ms not latched: %+v", st)
	}
	first := ctl.Stats().DrainedInMS
	time.Sleep(5 * time.Millisecond)
	if again := ctl.Stats().DrainedInMS; again != first {
		t.Fatalf("drain latency moved after latching: %v -> %v", first, again)
	}
}

func TestWithBudget(t *testing.T) {
	ctl := NewController(Limits{Budget: 10 * time.Millisecond}, Limits{}, Limits{})
	ctx, cancel := ctl.WithBudget(context.Background(), Read)
	defer cancel()
	<-ctx.Done()
	if cause := context.Cause(ctx); !errors.Is(cause, ErrBudget) {
		t.Fatalf("cause = %v, want ErrBudget", cause)
	}
	// Zero budget: context passes through untouched.
	base := context.Background()
	ctx2, cancel2 := ctl.WithBudget(base, Subscribe)
	defer cancel2()
	if ctx2 != base {
		t.Fatal("zero budget should not wrap the context")
	}
	if ctl.Budget(Read) != 10*time.Millisecond || ctl.Budget(Subscribe) != 0 {
		t.Fatal("Budget accessor mismatch")
	}
}

// TestConcurrentChurn hammers one class from many goroutines under
// -race: every admit is released, gauges return to zero, and
// admitted + sheds accounts for every attempt.
func TestConcurrentChurn(t *testing.T) {
	ctl := NewController(Limits{MaxInFlight: 4, MaxQueue: 8, QueueWait: 5 * time.Millisecond}, Limits{}, Limits{})
	const workers, perWorker = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				rel, err := ctl.Acquire(context.Background(), Read)
				if err != nil {
					continue
				}
				rel()
			}
		}()
	}
	wg.Wait()
	st := ctl.Stats().Classes["read"]
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("gauges not drained: %+v", st)
	}
	if total := st.Admitted + st.ShedQueueFull + st.ShedQueueTimeout; total != workers*perWorker {
		t.Fatalf("admitted+shed = %d, want %d", total, workers*perWorker)
	}
}
