// Package vecindex implements the vector index behind the embedding
// service (Fig 1 "Vector Index"): exact (flat) k-nearest-neighbour search
// and an IVF (inverted-file) approximate index built with k-means
// clustering. The IVF nprobe parameter is the price/performance knob the
// paper's semantic-annotation section calls out: fewer probes are cheaper
// but recall drops (experiment E11 measures the curve).
package vecindex

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Vector is a dense float32 embedding.
type Vector []float32

// Dot returns the inner product of two equal-length vectors.
func Dot(a, b Vector) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the L2 norm.
func Norm(a Vector) float32 {
	return float32(math.Sqrt(float64(Dot(a, a))))
}

// Normalize scales a to unit length in place and returns it. Zero vectors
// are returned unchanged.
func Normalize(a Vector) Vector {
	n := Norm(a)
	if n == 0 {
		return a
	}
	inv := 1 / n
	for i := range a {
		a[i] *= inv
	}
	return a
}

// Cosine returns the cosine similarity of two vectors (0 when either is a
// zero vector).
func Cosine(a, b Vector) float32 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// L2Distance returns the Euclidean distance.
func L2Distance(a, b Vector) float32 {
	var s float32
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return float32(math.Sqrt(float64(s)))
}

// Result is one kNN hit; higher Score = more similar (inner product).
type Result struct {
	ID    uint64
	Score float32
}

// Index is the interface shared by the flat and IVF implementations.
type Index interface {
	// Add inserts a vector under id. Duplicate IDs replace the old vector.
	Add(id uint64, v Vector) error
	// Search returns the k most similar vectors by inner product, highest
	// first.
	Search(q Vector, k int) []Result
	// Len returns the number of stored vectors.
	Len() int
	// Dim returns the vector dimensionality (0 while empty).
	Dim() int
}

// FlatIndex is an exact brute-force index. Safe for concurrent use.
// Vectors are stored in one contiguous float32 slab (row i occupies
// data[i*dim:(i+1)*dim]) so a full scan is sequential memory traversal
// with an unrolled dot-product kernel, not a pointer chase through
// per-vector allocations.
type FlatIndex struct {
	mu      sync.RWMutex
	dim     int
	ids     []uint64
	data    []float32 // len(ids)*dim, row-major
	norms   []float32 // L2 norm per row, maintained on Add for cosine scans
	pos     map[uint64]int
	version uint64 // bumped on every Add; result caches key on it
}

// NewFlat returns an empty exact index.
func NewFlat() *FlatIndex {
	return &FlatIndex{pos: make(map[uint64]int)}
}

// Add implements Index.
func (f *FlatIndex) Add(id uint64, v Vector) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dim == 0 {
		f.dim = len(v)
	}
	if len(v) != f.dim {
		return fmt.Errorf("vecindex: dim mismatch: got %d want %d", len(v), f.dim)
	}
	f.version++
	if i, ok := f.pos[id]; ok {
		copy(f.data[i*f.dim:(i+1)*f.dim], v)
		f.norms[i] = Norm(v)
		return nil
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
	f.data = append(f.data, v...)
	f.norms = append(f.norms, Norm(v))
	return nil
}

// Version returns a counter that changes whenever the index contents
// change. Two calls returning the same value bracket a window in which
// every Search result was reproducible, so derived result caches can use
// it as their staleness watermark (the same contract kg.Graph.LastSeq
// provides for graph-derived snapshots).
func (f *FlatIndex) Version() uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.version
}

// Get returns the stored vector for id.
func (f *FlatIndex) Get(id uint64) (Vector, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	i, ok := f.pos[id]
	if !ok {
		return nil, false
	}
	return append(Vector(nil), f.data[i*f.dim:(i+1)*f.dim]...), true
}

// Search implements Index.
func (f *FlatIndex) Search(q Vector, k int) []Result {
	return f.SearchFiltered(q, k, nil)
}

// SearchFiltered is Search restricted to IDs accepted by keep (nil = all).
func (f *FlatIndex) SearchFiltered(q Vector, k int, keep func(uint64) bool) []Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(q) != f.dim || f.dim == 0 {
		return nil
	}
	dim := f.dim
	return topKRows(len(f.ids), k,
		func(i int) uint64 { return f.ids[i] },
		func(i int) float32 { return dotContig(q, f.data[i*dim:(i+1)*dim]) },
		func(i int) bool { return keep == nil || keep(f.ids[i]) })
}

// SearchCosineFiltered ranks by cosine similarity instead of raw inner
// product, restricted to IDs accepted by keep (nil = all). Stored vectors
// need not be normalized: each row's score is its inner product with q
// scaled by the row's cached L2 norm and q's norm, so the ranking agrees
// with Cosine() regardless of how the vectors were scaled at Add time.
// Zero-norm rows (and a zero-norm query) score 0, matching Cosine.
func (f *FlatIndex) SearchCosineFiltered(q Vector, k int, keep func(uint64) bool) []Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(q) != f.dim || f.dim == 0 {
		return nil
	}
	qn := Norm(q)
	if qn == 0 {
		return nil
	}
	dim := f.dim
	return topKRows(len(f.ids), k,
		func(i int) uint64 { return f.ids[i] },
		func(i int) float32 {
			n := f.norms[i]
			if n == 0 {
				return 0
			}
			return dotContig(q, f.data[i*dim:(i+1)*dim]) / (qn * n)
		},
		func(i int) bool { return keep == nil || keep(f.ids[i]) })
}

// dotContig is the scan kernel: an inner product unrolled into four
// independent accumulators so the compiler can keep them in registers and
// the loop is not serialized on one addition chain. b must have len(a).
func dotContig(a, b []float32) float32 {
	var s0, s1, s2, s3 float32
	i := 0
	b = b[:len(a)] // hoist the bounds check out of the loop
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Len implements Index.
func (f *FlatIndex) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.ids)
}

// Dim implements Index.
func (f *FlatIndex) Dim() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.dim
}

// topK selects the k best rows of a slice-of-vectors layout (the IVF
// candidate path). Rows whose dimensionality does not match q are skipped.
func topK(q Vector, ids []uint64, vecs []Vector, k int, keep func(uint64) bool) []Result {
	return topKRows(len(ids), k,
		func(i int) uint64 { return ids[i] },
		func(i int) float32 { return Dot(q, vecs[i]) },
		func(i int) bool {
			return (keep == nil || keep(ids[i])) && len(vecs[i]) == len(q)
		})
}

// topKRows is the shared top-k selection kernel: it scans n rows through
// the idAt/scoreAt accessors (keepRow gates each row), maintaining the
// best k with an insertion pass, and returns them sorted by descending
// score with ascending-ID tie-break. Both index layouts (flat slab and
// IVF candidate lists) rank through this one loop so their tie-break and
// selection semantics cannot diverge.
func topKRows(n, k int, idAt func(int) uint64, scoreAt func(int) float32, keepRow func(int) bool) []Result {
	if k <= 0 {
		return nil
	}
	out := make([]Result, 0, k+1)
	for i := 0; i < n; i++ {
		if !keepRow(i) {
			continue
		}
		s := scoreAt(i)
		if len(out) < k {
			out = append(out, Result{ID: idAt(i), Score: s})
			if len(out) == k {
				sort.Slice(out, func(a, b int) bool { return out[a].Score > out[b].Score })
			}
			continue
		}
		if s > out[k-1].Score {
			out[k-1] = Result{ID: idAt(i), Score: s}
			// Restore order with an insertion pass (k is small).
			for j := k - 1; j > 0 && out[j].Score > out[j-1].Score; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// IVFIndex is an inverted-file approximate index: vectors are assigned to
// the nearest of nlist centroids at build time; queries scan only the
// nprobe nearest lists. Build it once with BuildIVF; Search is safe for
// concurrent use afterwards.
type IVFIndex struct {
	dim       int
	centroids []Vector
	lists     [][]int // centroid -> indexes into ids/vecs
	ids       []uint64
	vecs      []Vector
	nprobe    int
}

// IVFOptions configure BuildIVF.
type IVFOptions struct {
	// NList is the number of clusters; default sqrt(n) clamped to [1,256].
	NList int
	// NProbe is the default number of lists scanned per query; default 4.
	NProbe int
	// KMeansIters bounds Lloyd iterations; default 10.
	KMeansIters int
	// Seed makes clustering reproducible.
	Seed int64
}

// BuildIVF clusters the given vectors and returns the immutable index.
func BuildIVF(ids []uint64, vecs []Vector, opts IVFOptions) (*IVFIndex, error) {
	if len(ids) != len(vecs) {
		return nil, errors.New("vecindex: ids/vecs length mismatch")
	}
	if len(vecs) == 0 {
		return nil, errors.New("vecindex: empty build set")
	}
	dim := len(vecs[0])
	for _, v := range vecs {
		if len(v) != dim {
			return nil, errors.New("vecindex: inconsistent dimensions")
		}
	}
	nlist := opts.NList
	if nlist <= 0 {
		nlist = int(math.Sqrt(float64(len(vecs))))
	}
	if nlist < 1 {
		nlist = 1
	}
	if nlist > 256 {
		nlist = 256
	}
	if nlist > len(vecs) {
		nlist = len(vecs)
	}
	iters := opts.KMeansIters
	if iters <= 0 {
		iters = 10
	}
	nprobe := opts.NProbe
	if nprobe <= 0 {
		nprobe = 4
	}
	if nprobe > nlist {
		nprobe = nlist
	}

	centroids := kmeans(vecs, nlist, iters, rand.New(rand.NewSource(opts.Seed)))
	lists := make([][]int, len(centroids))
	for i, v := range vecs {
		c := nearestCentroid(v, centroids)
		lists[c] = append(lists[c], i)
	}
	idsCp := append([]uint64(nil), ids...)
	vecsCp := make([]Vector, len(vecs))
	for i, v := range vecs {
		vecsCp[i] = append(Vector(nil), v...)
	}
	return &IVFIndex{dim: dim, centroids: centroids, lists: lists, ids: idsCp, vecs: vecsCp, nprobe: nprobe}, nil
}

// Add is unsupported on the immutable IVF index.
func (ix *IVFIndex) Add(id uint64, v Vector) error {
	return errors.New("vecindex: IVF index is immutable; rebuild to add vectors")
}

// Len implements Index.
func (ix *IVFIndex) Len() int { return len(ix.ids) }

// Dim implements Index.
func (ix *IVFIndex) Dim() int { return ix.dim }

// NList returns the number of clusters.
func (ix *IVFIndex) NList() int { return len(ix.centroids) }

// Search implements Index with the index's default nprobe.
func (ix *IVFIndex) Search(q Vector, k int) []Result {
	return ix.SearchNProbe(q, k, ix.nprobe)
}

// SearchNProbe searches scanning the given number of nearest lists.
func (ix *IVFIndex) SearchNProbe(q Vector, k, nprobe int) []Result {
	if k <= 0 || len(ix.ids) == 0 {
		return nil
	}
	if nprobe <= 0 {
		nprobe = 1
	}
	if nprobe > len(ix.centroids) {
		nprobe = len(ix.centroids)
	}
	// Rank centroids by distance to q.
	type cd struct {
		c int
		d float32
	}
	order := make([]cd, len(ix.centroids))
	for i, c := range ix.centroids {
		order[i] = cd{i, L2Distance(q, c)}
	}
	sort.Slice(order, func(a, b int) bool { return order[a].d < order[b].d })

	var candIDs []uint64
	var candVecs []Vector
	for _, o := range order[:nprobe] {
		for _, idx := range ix.lists[o.c] {
			candIDs = append(candIDs, ix.ids[idx])
			candVecs = append(candVecs, ix.vecs[idx])
		}
	}
	return topK(q, candIDs, candVecs, k, nil)
}

// kmeans runs Lloyd's algorithm with k-means++ style seeding.
func kmeans(vecs []Vector, k, iters int, rng *rand.Rand) []Vector {
	dim := len(vecs[0])
	centroids := make([]Vector, 0, k)
	// Seed: first centroid uniformly, rest weighted by squared distance.
	first := rng.Intn(len(vecs))
	centroids = append(centroids, append(Vector(nil), vecs[first]...))
	d2 := make([]float64, len(vecs))
	for len(centroids) < k {
		var sum float64
		for i, v := range vecs {
			d := L2Distance(v, centroids[nearestCentroid(v, centroids)])
			d2[i] = float64(d) * float64(d)
			sum += d2[i]
		}
		if sum == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append(Vector(nil), vecs[rng.Intn(len(vecs))]...))
			continue
		}
		r := rng.Float64() * sum
		var acc float64
		pick := len(vecs) - 1
		for i := range vecs {
			acc += d2[i]
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, append(Vector(nil), vecs[pick]...))
	}
	assign := make([]int, len(vecs))
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range vecs {
			c := nearestCentroid(v, centroids)
			if assign[i] != c {
				assign[i] = c
				changed = true
			}
		}
		// Recompute centroids.
		sums := make([]Vector, k)
		counts := make([]int, k)
		for i := range sums {
			sums[i] = make(Vector, dim)
		}
		for i, v := range vecs {
			c := assign[i]
			counts[c]++
			for j := range v {
				sums[c][j] += v[j]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue // keep old centroid for empty cluster
			}
			inv := 1 / float32(counts[c])
			for j := range sums[c] {
				sums[c][j] *= inv
			}
			centroids[c] = sums[c]
		}
		if !changed && it > 0 {
			break
		}
	}
	return centroids
}

func nearestCentroid(v Vector, centroids []Vector) int {
	best := 0
	bestD := float32(math.MaxFloat32)
	for i, c := range centroids {
		d := L2Distance(v, c)
		if d < bestD {
			bestD = d
			best = i
		}
	}
	return best
}
