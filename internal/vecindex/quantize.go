package vecindex

import (
	"errors"
	"math"
	"sort"
	"sync"
)

// Int8 scalar quantization: the reproduction of the paper's model
// compression claims (§3.2 "model distillation and compression techniques
// that can target different hardware ... to meet different
// price/performance SLAs"; §5 "compressing learned models (e.g., by
// floating point precision reduction)"). Each vector is stored as int8
// codes with one float32 scale, cutting memory ~4x; similarity search
// runs directly on the codes.

// QuantizedVector is an int8-coded vector with its dequantization scale:
// original[i] ≈ float32(Codes[i]) * Scale.
type QuantizedVector struct {
	Codes []int8
	Scale float32
}

// Quantize encodes v symmetrically around zero into int8.
func Quantize(v Vector) QuantizedVector {
	var maxAbs float32
	for _, x := range v {
		a := x
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	q := QuantizedVector{Codes: make([]int8, len(v))}
	if maxAbs == 0 {
		q.Scale = 1
		return q
	}
	q.Scale = maxAbs / 127
	inv := 1 / q.Scale
	for i, x := range v {
		c := math.Round(float64(x * inv))
		if c > 127 {
			c = 127
		}
		if c < -127 {
			c = -127
		}
		q.Codes[i] = int8(c)
	}
	return q
}

// Dequantize reconstructs the approximate float vector.
func (q QuantizedVector) Dequantize() Vector {
	v := make(Vector, len(q.Codes))
	for i, c := range q.Codes {
		v[i] = float32(c) * q.Scale
	}
	return v
}

// DotQuantized computes the inner product of a float query against a
// quantized vector without materializing the dequantized form.
func DotQuantized(q Vector, v QuantizedVector) float32 {
	var s float32
	for i := range v.Codes {
		s += q[i] * float32(v.Codes[i])
	}
	return s * v.Scale
}

// MemoryBytes returns the storage footprint of the quantized vector
// (codes + scale), for compression-ratio reporting.
func (q QuantizedVector) MemoryBytes() int { return len(q.Codes) + 4 }

// QuantizedIndex is a brute-force kNN index over int8-quantized vectors:
// the on-device deployment shape — ~4x smaller than FlatIndex with a
// small recall penalty (experiment E13 quantifies it). Safe for
// concurrent use.
type QuantizedIndex struct {
	mu   sync.RWMutex
	dim  int
	ids  []uint64
	vecs []QuantizedVector
	pos  map[uint64]int
}

// NewQuantized returns an empty quantized index.
func NewQuantized() *QuantizedIndex {
	return &QuantizedIndex{pos: make(map[uint64]int)}
}

// Add quantizes and inserts a vector. Duplicate IDs replace.
func (f *QuantizedIndex) Add(id uint64, v Vector) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.dim == 0 {
		f.dim = len(v)
	}
	if len(v) != f.dim {
		return errors.New("vecindex: quantized index dim mismatch")
	}
	q := Quantize(v)
	if i, ok := f.pos[id]; ok {
		f.vecs[i] = q
		return nil
	}
	f.pos[id] = len(f.ids)
	f.ids = append(f.ids, id)
	f.vecs = append(f.vecs, q)
	return nil
}

// Search returns the k most similar vectors by (approximate) inner
// product, highest first.
func (f *QuantizedIndex) Search(q Vector, k int) []Result {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if k <= 0 || len(q) != f.dim {
		return nil
	}
	out := make([]Result, 0, len(f.ids))
	for i, id := range f.ids {
		out = append(out, Result{ID: id, Score: DotQuantized(q, f.vecs[i])})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].ID < out[b].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Len returns the number of stored vectors.
func (f *QuantizedIndex) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.ids)
}

// Dim returns the vector dimensionality.
func (f *QuantizedIndex) Dim() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.dim
}

// MemoryBytes reports the total code storage.
func (f *QuantizedIndex) MemoryBytes() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	var n int
	for _, v := range f.vecs {
		n += v.MemoryBytes()
	}
	return n
}
