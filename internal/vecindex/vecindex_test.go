package vecindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomVectors(n, dim int, seed int64) ([]uint64, []Vector) {
	rng := rand.New(rand.NewSource(seed))
	ids := make([]uint64, n)
	vecs := make([]Vector, n)
	for i := 0; i < n; i++ {
		ids[i] = uint64(i + 1)
		v := make(Vector, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		vecs[i] = Normalize(v)
	}
	return ids, vecs
}

func TestVectorOps(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if Dot(a, b) != 0 {
		t.Fatal("orthogonal dot != 0")
	}
	if Dot(a, a) != 1 {
		t.Fatal("unit dot != 1")
	}
	if Cosine(a, b) != 0 || Cosine(a, a) != 1 {
		t.Fatal("cosine wrong")
	}
	if Cosine(a, Vector{0, 0, 0}) != 0 {
		t.Fatal("zero-vector cosine must be 0")
	}
	v := Normalize(Vector{3, 4, 0})
	if math.Abs(float64(Norm(v))-1) > 1e-6 {
		t.Fatalf("normalized norm = %v", Norm(v))
	}
	z := Normalize(Vector{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero vector normalize must be identity")
	}
	if got := L2Distance(a, b); math.Abs(float64(got)-math.Sqrt2) > 1e-6 {
		t.Fatalf("L2 = %v", got)
	}
}

func TestFlatAddSearch(t *testing.T) {
	f := NewFlat()
	if err := f.Add(1, Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(2, Vector{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(3, Vector{0.9, 0.1}); err != nil {
		t.Fatal(err)
	}
	res := f.Search(Vector{1, 0}, 2)
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 3 {
		t.Fatalf("Search = %v", res)
	}
	if res[0].Score < res[1].Score {
		t.Fatal("results not sorted by score")
	}
	if f.Len() != 3 || f.Dim() != 2 {
		t.Fatalf("Len/Dim = %d/%d", f.Len(), f.Dim())
	}
}

func TestFlatDimMismatch(t *testing.T) {
	f := NewFlat()
	if err := f.Add(1, Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(2, Vector{1, 0, 0}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
}

func TestFlatReplace(t *testing.T) {
	f := NewFlat()
	if err := f.Add(1, Vector{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(1, Vector{0, 1}); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1 {
		t.Fatalf("Len after replace = %d", f.Len())
	}
	v, ok := f.Get(1)
	if !ok || v[0] != 0 || v[1] != 1 {
		t.Fatalf("Get after replace = %v,%v", v, ok)
	}
	if _, ok := f.Get(999); ok {
		t.Fatal("Get unknown id")
	}
}

func TestFlatSearchFiltered(t *testing.T) {
	f := NewFlat()
	for i := uint64(1); i <= 10; i++ {
		if err := f.Add(i, Vector{float32(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	res := f.SearchFiltered(Vector{1, 0}, 3, func(id uint64) bool { return id%2 == 0 })
	if len(res) != 3 {
		t.Fatalf("filtered results = %v", res)
	}
	for _, r := range res {
		if r.ID%2 != 0 {
			t.Fatalf("filter violated: %v", res)
		}
	}
}

func TestSearchKEdgeCases(t *testing.T) {
	f := NewFlat()
	for i := uint64(1); i <= 3; i++ {
		if err := f.Add(i, Vector{float32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Search(Vector{1}, 0); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
	if got := f.Search(Vector{1}, 10); len(got) != 3 {
		t.Fatalf("k>n = %v", got)
	}
	empty := NewFlat()
	if got := empty.Search(Vector{1}, 5); len(got) != 0 {
		t.Fatalf("empty index search = %v", got)
	}
}

func TestIVFBuildAndSearch(t *testing.T) {
	ids, vecs := randomVectors(500, 16, 1)
	ix, err := BuildIVF(ids, vecs, IVFOptions{NList: 16, NProbe: 16, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 500 || ix.Dim() != 16 || ix.NList() != 16 {
		t.Fatalf("ix = len %d dim %d nlist %d", ix.Len(), ix.Dim(), ix.NList())
	}
	// With nprobe == nlist the IVF search is exact: compare to flat.
	flat := NewFlat()
	for i := range ids {
		if err := flat.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for q := 0; q < 20; q++ {
		query := vecs[q*7%len(vecs)]
		got := ix.SearchNProbe(query, 10, 16)
		want := flat.Search(query, 10)
		if len(got) != len(want) {
			t.Fatalf("result sizes: %d vs %d", len(got), len(want))
		}
		gotSet := map[uint64]bool{}
		for _, r := range got {
			gotSet[r.ID] = true
		}
		for _, r := range want {
			if !gotSet[r.ID] {
				t.Fatalf("full-probe IVF missed exact neighbor %d", r.ID)
			}
		}
	}
}

func TestIVFRecallImprovesWithNProbe(t *testing.T) {
	ids, vecs := randomVectors(1000, 24, 3)
	ix, err := BuildIVF(ids, vecs, IVFOptions{NList: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat()
	for i := range ids {
		if err := flat.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	recall := func(nprobe int) float64 {
		var hit, total int
		for q := 0; q < 50; q++ {
			query := vecs[q*13%len(vecs)]
			want := flat.Search(query, 10)
			got := ix.SearchNProbe(query, 10, nprobe)
			gotSet := map[uint64]bool{}
			for _, r := range got {
				gotSet[r.ID] = true
			}
			for _, r := range want {
				total++
				if gotSet[r.ID] {
					hit++
				}
			}
		}
		return float64(hit) / float64(total)
	}
	r1 := recall(1)
	r32 := recall(32)
	if r32 < 0.999 {
		t.Fatalf("full-probe recall = %v, want 1.0", r32)
	}
	if r1 >= r32 {
		t.Fatalf("recall(1)=%v not below recall(32)=%v: nprobe knob has no effect", r1, r32)
	}
	if r1 < 0.05 {
		t.Fatalf("recall(1)=%v implausibly low; clustering broken", r1)
	}
}

func TestIVFErrors(t *testing.T) {
	if _, err := BuildIVF(nil, nil, IVFOptions{}); err == nil {
		t.Fatal("empty build accepted")
	}
	if _, err := BuildIVF([]uint64{1}, []Vector{{1}, {2}}, IVFOptions{}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := BuildIVF([]uint64{1, 2}, []Vector{{1, 2}, {1}}, IVFOptions{}); err == nil {
		t.Fatal("inconsistent dims accepted")
	}
	ids, vecs := randomVectors(10, 4, 5)
	ix, err := BuildIVF(ids, vecs, IVFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(99, vecs[0]); err == nil {
		t.Fatal("IVF Add must be rejected")
	}
}

func TestIVFDuplicatePoints(t *testing.T) {
	// All points identical: k-means++ must not loop forever.
	n := 20
	ids := make([]uint64, n)
	vecs := make([]Vector, n)
	for i := range ids {
		ids[i] = uint64(i + 1)
		vecs[i] = Vector{1, 1}
	}
	ix, err := BuildIVF(ids, vecs, IVFOptions{NList: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	res := ix.SearchNProbe(Vector{1, 1}, 5, 4)
	if len(res) != 5 {
		t.Fatalf("search on duplicates = %v", res)
	}
}

// Property: flat Search(k) returns results sorted descending, with scores
// equal to the true top-k inner products computed naively.
func TestFlatTopKMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(50)
		dim := 4
		flat := NewFlat()
		vecs := make([]Vector, n)
		for i := 0; i < n; i++ {
			v := make(Vector, dim)
			for j := range v {
				v[j] = float32(rng.NormFloat64())
			}
			vecs[i] = v
			if err := flat.Add(uint64(i+1), v); err != nil {
				return false
			}
		}
		q := make(Vector, dim)
		for j := range q {
			q[j] = float32(rng.NormFloat64())
		}
		k := 1 + rng.Intn(10)
		got := flat.Search(q, k)
		// Naive: compute all scores, sort.
		scores := make([]float32, n)
		for i := range vecs {
			scores[i] = Dot(q, vecs[i])
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				return false
			}
		}
		// kth best score from naive must equal got's last score.
		sorted := append([]float32(nil), scores...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] > sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		want := k
		if want > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		return math.Abs(float64(got[len(got)-1].Score-sorted[want-1])) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
