package vecindex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantizeRoundTrip(t *testing.T) {
	v := Vector{1.0, -0.5, 0.25, 0}
	q := Quantize(v)
	back := q.Dequantize()
	for i := range v {
		if math.Abs(float64(back[i]-v[i])) > float64(q.Scale) {
			t.Fatalf("element %d: %v -> %v (scale %v)", i, v[i], back[i], q.Scale)
		}
	}
	if q.MemoryBytes() != len(v)+4 {
		t.Fatalf("MemoryBytes = %d", q.MemoryBytes())
	}
}

func TestQuantizeZeroVector(t *testing.T) {
	q := Quantize(Vector{0, 0, 0})
	for _, c := range q.Codes {
		if c != 0 {
			t.Fatal("zero vector must quantize to zero codes")
		}
	}
	back := q.Dequantize()
	for _, x := range back {
		if x != 0 {
			t.Fatal("zero vector dequantize")
		}
	}
}

func TestDotQuantizedApproximatesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		dim := 16
		a := make(Vector, dim)
		b := make(Vector, dim)
		for i := 0; i < dim; i++ {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		exact := Dot(a, b)
		approx := DotQuantized(a, Quantize(b))
		// Quantization error per element <= scale/2; dot error bounded by
		// |a|_1 * scale / 2.
		var l1 float32
		for _, x := range a {
			if x < 0 {
				l1 -= x
			} else {
				l1 += x
			}
		}
		bound := l1 * Quantize(b).Scale
		if math.Abs(float64(exact-approx)) > float64(bound)+1e-4 {
			t.Fatalf("trial %d: exact %v approx %v bound %v", trial, exact, approx, bound)
		}
	}
}

func TestQuantizedIndexSearchAgreesWithFlat(t *testing.T) {
	ids, vecs := randomVectors(400, 24, 9)
	flat := NewFlat()
	quant := NewQuantized()
	for i := range ids {
		if err := flat.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
		if err := quant.Add(ids[i], vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if quant.Len() != 400 || quant.Dim() != 24 {
		t.Fatalf("len/dim = %d/%d", quant.Len(), quant.Dim())
	}
	// Recall@10 of quantized vs exact must be high.
	var hit, total int
	for q := 0; q < 40; q++ {
		query := vecs[(q*11)%len(vecs)]
		want := flat.Search(query, 10)
		got := quant.Search(query, 10)
		gotSet := map[uint64]bool{}
		for _, r := range got {
			gotSet[r.ID] = true
		}
		for _, r := range want {
			total++
			if gotSet[r.ID] {
				hit++
			}
		}
	}
	recall := float64(hit) / float64(total)
	if recall < 0.9 {
		t.Fatalf("int8 recall@10 = %v, want > 0.9", recall)
	}
	// Memory is ~4x smaller than float32 storage.
	floatBytes := 400 * 24 * 4
	if quant.MemoryBytes() >= floatBytes/3 {
		t.Fatalf("quantized memory %d not <1/3 of float %d", quant.MemoryBytes(), floatBytes)
	}
}

func TestQuantizedIndexEdgeCases(t *testing.T) {
	q := NewQuantized()
	if err := q.Add(1, Vector{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := q.Add(2, Vector{1, 2, 3}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if got := q.Search(Vector{1}, 5); got != nil {
		t.Fatal("query dim mismatch must return nil")
	}
	if got := q.Search(Vector{1, 0}, 0); got != nil {
		t.Fatal("k=0 must return nil")
	}
	// Replace.
	if err := q.Add(1, Vector{5, 5}); err != nil {
		t.Fatal(err)
	}
	if q.Len() != 1 {
		t.Fatalf("len after replace = %d", q.Len())
	}
}

// Property: quantization error per element never exceeds the scale, and
// codes stay within int8 bounds.
func TestQuantizePropertyBounds(t *testing.T) {
	f := func(raw []float32) bool {
		v := make(Vector, 0, len(raw))
		for _, x := range raw {
			if math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
				return true
			}
			v = append(v, x)
		}
		if len(v) == 0 {
			return true
		}
		q := Quantize(v)
		back := q.Dequantize()
		for i := range v {
			if math.Abs(float64(back[i]-v[i])) > float64(q.Scale)*0.51 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
