// Package metrics implements the evaluation metrics used across the
// benchmark harness: ranking metrics (MRR, Hits@K, NDCG, precision@k),
// classification metrics (precision/recall/F1, accuracy, ROC AUC), and
// small summary-statistics helpers.
package metrics

import (
	"math"
	"sort"
)

// MRR computes the mean reciprocal rank given the 1-based rank of the true
// item in each query. A rank of 0 means the item was not retrieved and
// contributes 0.
func MRR(ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var sum float64
	for _, r := range ranks {
		if r > 0 {
			sum += 1.0 / float64(r)
		}
	}
	return sum / float64(len(ranks))
}

// HitsAt computes the fraction of queries whose true item ranked within the
// top k (1-based ranks; rank 0 = miss).
func HitsAt(k int, ranks []int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	var hits int
	for _, r := range ranks {
		if r > 0 && r <= k {
			hits++
		}
	}
	return float64(hits) / float64(len(ranks))
}

// PrecisionAtK computes |retrieved[:k] ∩ relevant| / k.
func PrecisionAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > len(retrieved) {
		k = len(retrieved)
	}
	if k == 0 {
		return 0
	}
	var hit int
	for _, r := range retrieved[:k] {
		if relevant[r] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// RecallAtK computes |retrieved[:k] ∩ relevant| / |relevant|.
func RecallAtK(retrieved []string, relevant map[string]bool, k int) float64 {
	if len(relevant) == 0 {
		return 0
	}
	if k > len(retrieved) {
		k = len(retrieved)
	}
	var hit int
	for _, r := range retrieved[:k] {
		if relevant[r] {
			hit++
		}
	}
	return float64(hit) / float64(len(relevant))
}

// NDCGAtK computes normalized discounted cumulative gain at k for a ranked
// list with graded relevance gains.
func NDCGAtK(gains []float64, k int) float64 {
	if k > len(gains) {
		k = len(gains)
	}
	var dcg float64
	for i := 0; i < k; i++ {
		dcg += gains[i] / math.Log2(float64(i)+2)
	}
	ideal := append([]float64(nil), gains...)
	sort.Sort(sort.Reverse(sort.Float64Slice(ideal)))
	var idcg float64
	for i := 0; i < k; i++ {
		idcg += ideal[i] / math.Log2(float64(i)+2)
	}
	if idcg == 0 {
		return 0
	}
	return dcg / idcg
}

// Confusion is a binary-classification confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add records one prediction against its gold label.
func (c *Confusion) Add(predicted, actual bool) {
	switch {
	case predicted && actual:
		c.TP++
	case predicted && !actual:
		c.FP++
	case !predicted && !actual:
		c.TN++
	default:
		c.FN++
	}
}

// Precision returns TP / (TP+FP), or 0 when undefined.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP / (TP+FN), or 0 when undefined.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Accuracy returns (TP+TN) / total, or 0 when empty.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// AUC computes the ROC area under the curve from scores of positive and
// negative examples using the rank-sum (Mann-Whitney U) formulation.
// Ties contribute 0.5.
func AUC(posScores, negScores []float64) float64 {
	if len(posScores) == 0 || len(negScores) == 0 {
		return 0
	}
	var wins float64
	for _, p := range posScores {
		for _, n := range negScores {
			switch {
			case p > n:
				wins += 1
			case p == n:
				wins += 0.5
			}
		}
	}
	return wins / float64(len(posScores)*len(negScores))
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the population standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Percentile returns the p-th percentile (0..100) using nearest-rank on a
// copy of xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	return cp[rank]
}
