package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMRR(t *testing.T) {
	if got := MRR([]int{1, 2, 4}); !almost(got, (1+0.5+0.25)/3) {
		t.Fatalf("MRR = %v", got)
	}
	if got := MRR([]int{0, 0}); got != 0 {
		t.Fatalf("MRR of misses = %v", got)
	}
	if got := MRR(nil); got != 0 {
		t.Fatalf("MRR(nil) = %v", got)
	}
}

func TestHitsAt(t *testing.T) {
	ranks := []int{1, 3, 11, 0}
	if got := HitsAt(1, ranks); !almost(got, 0.25) {
		t.Fatalf("Hits@1 = %v", got)
	}
	if got := HitsAt(10, ranks); !almost(got, 0.5) {
		t.Fatalf("Hits@10 = %v", got)
	}
	if got := HitsAt(100, ranks); !almost(got, 0.75) {
		t.Fatalf("Hits@100 = %v (rank 0 is a miss)", got)
	}
}

func TestPrecisionRecallAtK(t *testing.T) {
	rel := map[string]bool{"a": true, "b": true, "c": true}
	ret := []string{"a", "x", "b", "y"}
	if got := PrecisionAtK(ret, rel, 2); !almost(got, 0.5) {
		t.Fatalf("P@2 = %v", got)
	}
	if got := RecallAtK(ret, rel, 4); !almost(got, 2.0/3.0) {
		t.Fatalf("R@4 = %v", got)
	}
	if got := PrecisionAtK(ret, rel, 0); got != 0 {
		t.Fatalf("P@0 = %v", got)
	}
	if got := PrecisionAtK(ret, rel, 100); !almost(got, 0.5) {
		t.Fatalf("P@100 clamps to len: %v", got)
	}
	if got := RecallAtK(ret, map[string]bool{}, 4); got != 0 {
		t.Fatalf("recall with empty relevant = %v", got)
	}
}

func TestNDCG(t *testing.T) {
	// Perfect ordering yields 1.
	if got := NDCGAtK([]float64{3, 2, 1}, 3); !almost(got, 1) {
		t.Fatalf("NDCG perfect = %v", got)
	}
	// Reversed ordering yields < 1.
	if got := NDCGAtK([]float64{1, 2, 3}, 3); got >= 1 || got <= 0 {
		t.Fatalf("NDCG reversed = %v", got)
	}
	if got := NDCGAtK([]float64{0, 0}, 2); got != 0 {
		t.Fatalf("NDCG all-zero = %v", got)
	}
}

func TestConfusion(t *testing.T) {
	var c Confusion
	c.Add(true, true)
	c.Add(true, false)
	c.Add(false, false)
	c.Add(false, true)
	if !almost(c.Precision(), 0.5) || !almost(c.Recall(), 0.5) || !almost(c.F1(), 0.5) || !almost(c.Accuracy(), 0.5) {
		t.Fatalf("confusion = %+v p=%v r=%v f1=%v acc=%v", c, c.Precision(), c.Recall(), c.F1(), c.Accuracy())
	}
	var empty Confusion
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 || empty.Accuracy() != 0 {
		t.Fatal("empty confusion must be all zeros")
	}
}

func TestAUC(t *testing.T) {
	if got := AUC([]float64{0.9, 0.8}, []float64{0.1, 0.2}); !almost(got, 1) {
		t.Fatalf("separable AUC = %v", got)
	}
	if got := AUC([]float64{0.1}, []float64{0.9}); !almost(got, 0) {
		t.Fatalf("inverted AUC = %v", got)
	}
	if got := AUC([]float64{0.5}, []float64{0.5}); !almost(got, 0.5) {
		t.Fatalf("tied AUC = %v", got)
	}
	if got := AUC(nil, []float64{1}); got != 0 {
		t.Fatalf("empty AUC = %v", got)
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Fatalf("Mean = %v", Mean(xs))
	}
	if !almost(Stddev(xs), math.Sqrt(1.25)) {
		t.Fatalf("Stddev = %v", Stddev(xs))
	}
	if got := Percentile(xs, 50); got != 2 {
		t.Fatalf("P50 = %v", got)
	}
	if got := Percentile(xs, 100); got != 4 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("P0 = %v", got)
	}
	if Percentile(nil, 50) != 0 || Mean(nil) != 0 || Stddev(nil) != 0 {
		t.Fatal("empty-input stats must be 0")
	}
}

// Property: AUC is invariant under any order-preserving transformation of
// scores, and always within [0,1].
func TestAUCProperties(t *testing.T) {
	f := func(pos, neg []float64) bool {
		if len(pos) == 0 || len(neg) == 0 {
			return true
		}
		for _, x := range append(append([]float64{}, pos...), neg...) {
			// Skip values where 3*x+1 would overflow or lose ordering.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e300 {
				return true
			}
		}
		a := AUC(pos, neg)
		if a < 0 || a > 1 {
			return false
		}
		mono := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = 3*x + 1 // strictly increasing
			}
			return out
		}
		return almost(a, AUC(mono(pos), mono(neg)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: HitsAt is monotone in k and MRR <= Hits@∞.
func TestRankingProperties(t *testing.T) {
	f := func(raw []uint16) bool {
		ranks := make([]int, 0, len(raw))
		for _, r := range raw {
			ranks = append(ranks, int(r%200))
		}
		if len(ranks) == 0 {
			return true
		}
		prev := 0.0
		for k := 1; k <= 64; k *= 2 {
			h := HitsAt(k, ranks)
			if h < prev {
				return false
			}
			prev = h
		}
		return MRR(ranks) <= HitsAt(1<<30, ranks)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
