package metrics

import "sync/atomic"

// Counter is a monotonically increasing operational counter, safe for
// concurrent use. Where the rest of this package scores offline
// evaluation runs, Counter is the serving-tier observability primitive:
// subsystems (e.g. the graph engine's plan cache) embed counters and
// expose snapshots of them through their stats accessors, and the HTTP
// layer surfaces those snapshots on its health endpoint. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauge-style corrections, though
// counters are conventionally monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }
