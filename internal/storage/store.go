// Package storage implements a disk-oriented key-value store with a
// tunable in-memory buffer, in the spirit of the paper's on-device
// requirement (§5): "we optimize our construction pipeline to be disk
// oriented with tunable memory buffer sizes. At any given point ... the
// amount of memory used is bounded and expensive computations spill to
// disk as necessary."
//
// The store is a small LSM: writes land in a memtable; when the memtable
// exceeds its budget it is sorted and spilled to an immutable on-disk
// segment; reads consult the memtable then segments newest-first; Compact
// merges all runs into one, dropping tombstones and shadowed versions.
// Checkpoint persists a manifest so a store can be reopened with identical
// contents, which is what makes the on-device construction pipeline
// pausable and resumable without losing state.
package storage

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrNotFound is returned by Get when the key does not exist (or was
// deleted).
var ErrNotFound = errors.New("storage: key not found")

const (
	manifestName = "MANIFEST.json"
	// tombstoneLen marks deleted keys in the segment record header.
	tombstoneLen = ^uint32(0)
	// sparseEvery controls the per-segment sparse index granularity.
	sparseEvery = 16
)

// Options configure a Store.
type Options struct {
	// MemBudgetBytes caps the memtable size; once exceeded, the memtable
	// spills to a new segment. Zero means a 1 MiB default.
	MemBudgetBytes int
}

// Store is a disk-oriented KV store. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	dir  string
	opts Options

	mem      map[string]memEntry
	memBytes int

	segments []*segment // oldest first
	nextSeg  int

	spills int // number of memtable spills, exposed for the E8 benchmark
}

type memEntry struct {
	value     []byte
	tombstone bool
}

type manifest struct {
	Segments []string `json:"segments"`
	NextSeg  int      `json:"next_seg"`
}

// Open opens (or creates) a store in dir. If a manifest exists, the
// previous segment set is recovered.
func Open(dir string, opts Options) (*Store, error) {
	if opts.MemBudgetBytes <= 0 {
		opts.MemBudgetBytes = 1 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: create dir: %w", err)
	}
	s := &Store{dir: dir, opts: opts, mem: make(map[string]memEntry)}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return s, nil
		}
		return nil, fmt.Errorf("storage: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("storage: decode manifest: %w", err)
	}
	s.nextSeg = m.NextSeg
	for _, name := range m.Segments {
		seg, err := openSegment(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("storage: open segment %s: %w", name, err)
		}
		s.segments = append(s.segments, seg)
	}
	return s, nil
}

// Put stores value under key. The value is copied.
func (s *Store) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("storage: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := append([]byte(nil), value...)
	if old, ok := s.mem[key]; ok {
		s.memBytes -= len(key) + len(old.value)
	}
	s.mem[key] = memEntry{value: v}
	s.memBytes += len(key) + len(v)
	if s.memBytes > s.opts.MemBudgetBytes {
		return s.spillLocked()
	}
	return nil
}

// Delete removes key. Deletes are recorded as tombstones so they survive
// spills and shadow older segment versions.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.mem[key]; ok {
		s.memBytes -= len(key) + len(old.value)
	}
	s.mem[key] = memEntry{tombstone: true}
	s.memBytes += len(key)
	if s.memBytes > s.opts.MemBudgetBytes {
		return s.spillLocked()
	}
	return nil
}

// Get returns the current value of key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if e, ok := s.mem[key]; ok {
		if e.tombstone {
			return nil, ErrNotFound
		}
		return append([]byte(nil), e.value...), nil
	}
	for i := len(s.segments) - 1; i >= 0; i-- {
		v, tomb, ok, err := s.segments[i].get(key)
		if err != nil {
			return nil, err
		}
		if ok {
			if tomb {
				return nil, ErrNotFound
			}
			return v, nil
		}
	}
	return nil, ErrNotFound
}

// Has reports whether key currently exists.
func (s *Store) Has(key string) bool {
	_, err := s.Get(key)
	return err == nil
}

// Scan calls fn for every live key with the given prefix, in ascending key
// order, stopping early if fn returns false.
func (s *Store) Scan(prefix string, fn func(key string, value []byte) bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	merged, err := s.mergedLocked(prefix)
	if err != nil {
		return err
	}
	for _, kv := range merged {
		if !fn(kv.key, kv.value) {
			return nil
		}
	}
	return nil
}

type kvPair struct {
	key   string
	value []byte
}

// mergedLocked materializes the live view with newest-wins semantics.
func (s *Store) mergedLocked(prefix string) ([]kvPair, error) {
	// newest wins: walk oldest -> newest overwriting.
	acc := make(map[string]memEntry)
	for _, seg := range s.segments {
		if err := seg.scan(func(k string, v []byte, tomb bool) bool {
			if strings.HasPrefix(k, prefix) {
				acc[k] = memEntry{value: v, tombstone: tomb}
			}
			return true
		}); err != nil {
			return nil, err
		}
	}
	for k, e := range s.mem {
		if strings.HasPrefix(k, prefix) {
			acc[k] = e
		}
	}
	out := make([]kvPair, 0, len(acc))
	for k, e := range acc {
		if e.tombstone {
			continue
		}
		out = append(out, kvPair{key: k, value: e.value})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out, nil
}

// Flush spills the memtable to disk (if non-empty) and writes the
// manifest. After Flush, reopening the directory observes all writes.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.mem) > 0 {
		if err := s.spillLocked(); err != nil {
			return err
		}
	}
	return s.writeManifestLocked()
}

// Checkpoint is Flush; the name reflects its role in the pausable
// construction pipeline.
func (s *Store) Checkpoint() error { return s.Flush() }

// Compact merges the memtable and all segments into a single segment,
// dropping tombstones and shadowed versions.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	merged, err := s.mergedLocked("")
	if err != nil {
		return err
	}
	name := fmt.Sprintf("seg-%06d.dat", s.nextSeg)
	s.nextSeg++
	path := filepath.Join(s.dir, name)
	w, err := newSegmentWriter(path)
	if err != nil {
		return err
	}
	for _, kv := range merged {
		if err := w.add(kv.key, kv.value, false); err != nil {
			return err
		}
	}
	seg, err := w.finish()
	if err != nil {
		return err
	}
	old := s.segments
	s.segments = []*segment{seg}
	s.mem = make(map[string]memEntry)
	s.memBytes = 0
	if err := s.writeManifestLocked(); err != nil {
		return err
	}
	for _, o := range old {
		o.close()
		os.Remove(o.path)
	}
	return nil
}

// SpillCount returns how many times the memtable exceeded its budget and
// spilled to disk.
func (s *Store) SpillCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.spills
}

// MemBytes returns the current memtable footprint estimate.
func (s *Store) MemBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.memBytes
}

// NumSegments returns the number of on-disk segments.
func (s *Store) NumSegments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.segments)
}

// Len returns the number of live keys (scans everything; intended for
// tests and small stores).
func (s *Store) Len() (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	merged, err := s.mergedLocked("")
	if err != nil {
		return 0, err
	}
	return len(merged), nil
}

// Close flushes and releases file handles.
func (s *Store) Close() error {
	if err := s.Flush(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, seg := range s.segments {
		seg.close()
	}
	s.segments = nil
	return nil
}

func (s *Store) spillLocked() error {
	if len(s.mem) == 0 {
		return nil
	}
	keys := make([]string, 0, len(s.mem))
	for k := range s.mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	name := fmt.Sprintf("seg-%06d.dat", s.nextSeg)
	s.nextSeg++
	w, err := newSegmentWriter(filepath.Join(s.dir, name))
	if err != nil {
		return err
	}
	for _, k := range keys {
		e := s.mem[k]
		if err := w.add(k, e.value, e.tombstone); err != nil {
			return err
		}
	}
	seg, err := w.finish()
	if err != nil {
		return err
	}
	s.segments = append(s.segments, seg)
	s.mem = make(map[string]memEntry)
	s.memBytes = 0
	s.spills++
	return s.writeManifestLocked()
}

func (s *Store) writeManifestLocked() error {
	m := manifest{NextSeg: s.nextSeg}
	for _, seg := range s.segments {
		m.Segments = append(m.Segments, filepath.Base(seg.path))
	}
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, manifestName+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, manifestName)); err != nil {
		return err
	}
	// The rename is durable only once the directory entry is: without the
	// parent fsync a crash can resurrect the previous manifest (or leave
	// none), silently rolling the segment set back.
	return syncDir(s.dir)
}

// syncDir fsyncs a directory so entry mutations (create, rename, remove)
// in it survive a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// segment is an immutable sorted run on disk with a sparse in-memory index.
type segment struct {
	path string
	f    *os.File
	// sparse index: every sparseEvery-th record's key and byte offset.
	idxKeys    []string
	idxOffsets []int64
	size       int64
}

type segmentWriter struct {
	path string
	f    *os.File
	off  int64
	n    int
	idxK []string
	idxO []int64
	buf  []byte
}

func newSegmentWriter(path string) (*segmentWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &segmentWriter{path: path, f: f}, nil
}

// add appends a record; keys must arrive in ascending order.
func (w *segmentWriter) add(key string, value []byte, tomb bool) error {
	if w.n%sparseEvery == 0 {
		w.idxK = append(w.idxK, key)
		w.idxO = append(w.idxO, w.off)
	}
	w.n++
	vlen := uint32(len(value))
	if tomb {
		vlen = tombstoneLen
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[4:8], vlen)
	w.buf = w.buf[:0]
	w.buf = append(w.buf, hdr[:]...)
	w.buf = append(w.buf, key...)
	if !tomb {
		w.buf = append(w.buf, value...)
	}
	n, err := w.f.Write(w.buf)
	if err != nil {
		return err
	}
	w.off += int64(n)
	return nil
}

func (w *segmentWriter) finish() (*segment, error) {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return nil, err
	}
	if err := w.f.Close(); err != nil {
		return nil, err
	}
	// Make the segment's directory entry durable before anything (the
	// manifest) references it; a synced file whose entry was never
	// dir-synced can vanish wholesale on crash.
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return nil, err
	}
	f, err := os.Open(w.path)
	if err != nil {
		return nil, err
	}
	return &segment{path: w.path, f: f, idxKeys: w.idxK, idxOffsets: w.idxO, size: w.off}, nil
}

func openSegment(path string) (*segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	seg := &segment{path: path, f: f, size: st.Size()}
	// Rebuild the sparse index with one sequential pass.
	var off int64
	var n int
	for off < seg.size {
		key, _, _, next, err := seg.readRecord(off)
		if err != nil {
			f.Close()
			return nil, err
		}
		if n%sparseEvery == 0 {
			seg.idxKeys = append(seg.idxKeys, key)
			seg.idxOffsets = append(seg.idxOffsets, off)
		}
		n++
		off = next
	}
	return seg, nil
}

// readRecord decodes the record at off, returning key, value, tombstone
// flag and the offset of the next record. Every length is validated
// against the segment size before any allocation or read, so a torn tail
// or corrupt header surfaces as a bounded error — never a panic, a
// multi-gigabyte allocation from a garbage length, or a silent short
// read.
func (seg *segment) readRecord(off int64) (string, []byte, bool, int64, error) {
	corrupt := func(reason string) error {
		return fmt.Errorf("storage: segment %s corrupt at %d: %s (size %d)", seg.path, off, reason, seg.size)
	}
	if off+8 > seg.size {
		return "", nil, false, 0, corrupt("truncated record header")
	}
	var hdr [8]byte
	if _, err := seg.f.ReadAt(hdr[:], off); err != nil {
		return "", nil, false, 0, fmt.Errorf("storage: segment %s corrupt at %d: %w", seg.path, off, err)
	}
	klen := binary.LittleEndian.Uint32(hdr[0:4])
	vlen := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(klen) > seg.size-off-8 {
		return "", nil, false, 0, corrupt(fmt.Sprintf("key length %d overruns segment", klen))
	}
	keyBuf := make([]byte, klen)
	if _, err := seg.f.ReadAt(keyBuf, off+8); err != nil {
		return "", nil, false, 0, err
	}
	if vlen == tombstoneLen {
		return string(keyBuf), nil, true, off + 8 + int64(klen), nil
	}
	if int64(vlen) > seg.size-off-8-int64(klen) {
		return "", nil, false, 0, corrupt(fmt.Sprintf("value length %d overruns segment", vlen))
	}
	val := make([]byte, vlen)
	if _, err := seg.f.ReadAt(val, off+8+int64(klen)); err != nil {
		return "", nil, false, 0, err
	}
	return string(keyBuf), val, false, off + 8 + int64(klen) + int64(vlen), nil
}

// get performs a sparse-index binary search then a short forward scan.
func (seg *segment) get(key string) (value []byte, tombstone, found bool, err error) {
	if len(seg.idxKeys) == 0 {
		return nil, false, false, nil
	}
	// Find the last sparse entry whose key <= key.
	i := sort.Search(len(seg.idxKeys), func(i int) bool { return seg.idxKeys[i] > key })
	if i == 0 {
		return nil, false, false, nil
	}
	off := seg.idxOffsets[i-1]
	for off < seg.size {
		k, v, tomb, next, rerr := seg.readRecord(off)
		if rerr != nil {
			return nil, false, false, rerr
		}
		if k == key {
			return v, tomb, true, nil
		}
		if k > key {
			return nil, false, false, nil
		}
		off = next
	}
	return nil, false, false, nil
}

// scan streams all records in key order.
func (seg *segment) scan(fn func(key string, value []byte, tomb bool) bool) error {
	var off int64
	for off < seg.size {
		k, v, tomb, next, err := seg.readRecord(off)
		if err != nil {
			return err
		}
		if !fn(k, v, tomb) {
			return nil
		}
		off = next
	}
	return nil
}

func (seg *segment) close() {
	if seg.f != nil {
		seg.f.Close()
		seg.f = nil
	}
}
