package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T, budget int) *Store {
	t.Helper()
	s, err := Open(t.TempDir(), Options{MemBudgetBytes: budget})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGet(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q,%v", v, err)
	}
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) err = %v", err)
	}
	if err := s.Put("", nil); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestOverwrite(t *testing.T) {
	s := openTemp(t, 0)
	for i := 0; i < 3; i++ {
		if err := s.Put("k", []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.Get("k")
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get = %q,%v", v, err)
	}
	n, err := s.Len()
	if err != nil || n != 1 {
		t.Fatalf("Len = %d,%v", n, err)
	}
}

func TestDelete(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key err = %v", err)
	}
	if s.Has("k") {
		t.Fatal("Has after delete")
	}
}

func TestDeleteShadowsSegment(t *testing.T) {
	s := openTemp(t, 0)
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // k is now in a segment
		t.Fatal(err)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil { // tombstone in newer segment
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tombstone not shadowing segment: %v", err)
	}
}

func TestSpillOnBudget(t *testing.T) {
	s := openTemp(t, 64) // tiny budget forces spills
	for i := 0; i < 50; i++ {
		if err := s.Put(fmt.Sprintf("key-%03d", i), []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpillCount() == 0 {
		t.Fatal("no spills under tiny budget")
	}
	if s.MemBytes() > 64+32 {
		t.Fatalf("memtable footprint %d exceeds budget after spill", s.MemBytes())
	}
	for i := 0; i < 50; i++ {
		v, err := s.Get(fmt.Sprintf("key-%03d", i))
		if err != nil || string(v) != "0123456789" {
			t.Fatalf("Get after spill key-%03d = %q,%v", i, v, err)
		}
	}
}

func TestSmallerBudgetMeansMoreSpills(t *testing.T) {
	write := func(budget int) int {
		s, err := Open(t.TempDir(), Options{MemBudgetBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		for i := 0; i < 200; i++ {
			if err := s.Put(fmt.Sprintf("key-%04d", i), []byte("valuevaluevalue")); err != nil {
				t.Fatal(err)
			}
		}
		return s.SpillCount()
	}
	small := write(128)
	large := write(4096)
	if small <= large {
		t.Fatalf("spills(budget=128)=%d must exceed spills(budget=4096)=%d", small, large)
	}
}

func TestScanOrderAndPrefix(t *testing.T) {
	s := openTemp(t, 128) // force some segments
	keys := []string{"b/2", "a/1", "b/1", "c/1", "a/2"}
	for _, k := range keys {
		if err := s.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := s.Scan("", func(k string, v []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a/1", "a/2", "b/1", "b/2", "c/1"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Scan order = %v, want %v", got, want)
	}
	var bOnly []string
	if err := s.Scan("b/", func(k string, v []byte) bool {
		bOnly = append(bOnly, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(bOnly) != fmt.Sprint([]string{"b/1", "b/2"}) {
		t.Fatalf("prefix scan = %v", bOnly)
	}
	// Early stop.
	var count int
	if err := s.Scan("", func(k string, v []byte) bool {
		count++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("early-stop scan visited %d", count)
	}
}

func TestReopenRecoversState(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MemBudgetBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Delete("k05"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%02d", i)
		v, err := s2.Get(k)
		if i == 5 {
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key survived reopen: %q,%v", v, err)
			}
			continue
		}
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) after reopen = %q,%v", k, v, err)
		}
	}
	n, err := s2.Len()
	if err != nil || n != 29 {
		t.Fatalf("Len after reopen = %d,%v", n, err)
	}
}

func TestCompact(t *testing.T) {
	s := openTemp(t, 64)
	for i := 0; i < 60; i++ {
		if err := s.Put(fmt.Sprintf("k%02d", i%20), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		if err := s.Delete(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.NumSegments() != 1 {
		t.Fatalf("segments after compact = %d", s.NumSegments())
	}
	n, err := s.Len()
	if err != nil || n != 15 {
		t.Fatalf("Len after compact = %d,%v", n, err)
	}
	for i := 5; i < 20; i++ {
		if _, err := s.Get(fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("key k%02d lost in compaction: %v", i, err)
		}
	}
	for i := 0; i < 5; i++ {
		if _, err := s.Get(fmt.Sprintf("k%02d", i)); !errors.Is(err, ErrNotFound) {
			t.Fatalf("tombstoned key k%02d resurrected by compaction", i)
		}
	}
}

func TestBinaryValues(t *testing.T) {
	s := openTemp(t, 32) // force segment round-trip
	val := make([]byte, 300)
	for i := range val {
		val[i] = byte(i)
	}
	if err := s.Put("bin", val); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("bin")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(val) {
		t.Fatalf("len = %d, want %d", len(got), len(val))
	}
	for i := range val {
		if got[i] != val[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], val[i])
		}
	}
}

func TestEmptyValue(t *testing.T) {
	s := openTemp(t, 16)
	if err := s.Put("empty", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("empty")
	if err != nil || len(v) != 0 {
		t.Fatalf("empty value round-trip = %q,%v", v, err)
	}
}

// Property: a store with an adversarially tiny budget behaves identically
// to an in-memory map under a random op sequence, including across a
// close/reopen cycle.
func TestStoreMatchesMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		dir := t.TempDir()
		s, err := Open(dir, Options{MemBudgetBytes: 48})
		if err != nil {
			return false
		}
		model := make(map[string]string)
		rng := rand.New(rand.NewSource(42))
		for _, op := range ops {
			key := fmt.Sprintf("k%d", op%23)
			switch op % 3 {
			case 0, 1:
				val := fmt.Sprintf("v%d-%d", op, rng.Intn(100))
				if err := s.Put(key, []byte(val)); err != nil {
					return false
				}
				model[key] = val
			case 2:
				if err := s.Delete(key); err != nil {
					return false
				}
				delete(model, key)
			}
		}
		check := func(st *Store) bool {
			for k, want := range model {
				got, err := st.Get(k)
				if err != nil || string(got) != want {
					return false
				}
			}
			n, err := st.Len()
			return err == nil && n == len(model)
		}
		if !check(s) {
			return false
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(dir, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		return check(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
