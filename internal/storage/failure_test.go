package storage

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Failure injection: corrupted or missing on-disk state must surface as
// errors (or clean degradation), never as silent data loss or panics.

func TestOpenWithCorruptManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt manifest accepted")
	}
}

func TestOpenWithMissingSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Delete the segment the manifest references.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("missing segment accepted")
	}
}

func TestOpenWithTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := s.Put(strings.Repeat("k", i+1), []byte("some value payload")); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Truncate the segment mid-record.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			path := filepath.Join(dir, e.Name())
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, st.Size()-7); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("truncated segment accepted")
	}
}

func TestUnflushedWritesLostButSegmentsSurvive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MemBudgetBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("durable", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("volatile", []byte("2")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Flush, no Close — just reopen the directory.
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Get("durable"); err != nil {
		t.Fatalf("flushed key lost after crash: %v", err)
	}
	if _, err := s2.Get("volatile"); err == nil {
		t.Fatal("unflushed key survived crash — impossible without a WAL; memtable semantics broken")
	}
}

func BenchmarkPut(b *testing.B) {
	s, err := Open(b.TempDir(), Options{MemBudgetBytes: 1 << 22})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := []byte(strings.Repeat("v", 64))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(strings.Repeat("k", i%24+1), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetFromSegments(b *testing.B) {
	s, err := Open(b.TempDir(), Options{MemBudgetBytes: 1 << 12})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	keys := make([]string, 512)
	for i := range keys {
		keys[i] = strings.Repeat("x", i%16+1) + string(rune('a'+i%26))
		if err := s.Put(keys[i], []byte("payload-payload")); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(keys[i%len(keys)]); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTornSegmentTailMatrix truncates the newest segment at every byte
// offset strictly inside its final record and reopens the store each
// time. Every such tear must surface as a clean Open error — never a
// panic, a garbage-length allocation, or a silently shortened segment.
func TestTornSegmentTailMatrix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if err := s.Put(strings.Repeat("k", i+1), []byte(strings.Repeat("v", 3*i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var segPath string
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "seg-") {
			segPath = filepath.Join(dir, e.Name())
		}
	}
	if segPath == "" {
		t.Fatal("no segment written")
	}
	// Walk the record headers to find where the final record begins.
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(data))
	var recStart, off int64
	for off < size {
		recStart = off
		klen := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		vlen := binary.LittleEndian.Uint32(data[off+4 : off+8])
		off += 8 + klen
		if vlen != tombstoneLen {
			off += int64(vlen)
		}
	}
	if off != size {
		t.Fatalf("segment walk ended at %d, size %d", off, size)
	}
	// Tear monotonically downward so one directory serves the whole matrix.
	for cut := size - 1; cut > recStart; cut-- {
		if err := os.Truncate(segPath, cut); err != nil {
			t.Fatal(err)
		}
		if s, err := Open(dir, Options{}); err == nil {
			s.Close()
			t.Fatalf("segment torn at byte %d/%d accepted", cut, size)
		}
	}
}

// TestCorruptLengthHeaderBoundedError plants garbage record lengths and
// requires Open to fail with a bounded decode error rather than
// attempting a multi-gigabyte allocation (or panicking).
func TestCorruptLengthHeaderBoundedError(t *testing.T) {
	for _, field := range []int{0, 4} { // klen header, vlen header
		dir := t.TempDir()
		s, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Put("key", []byte("value")); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if !strings.HasPrefix(e.Name(), "seg-") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			binary.LittleEndian.PutUint32(data[field:field+4], 0xfffffff0)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if s, err := Open(dir, Options{}); err == nil {
			s.Close()
			t.Fatalf("garbage length in header field %d accepted", field)
		}
	}
}
