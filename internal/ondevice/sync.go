package ondevice

import (
	"fmt"
	"path/filepath"
	"sort"
)

// Cross-device sync (§5): "a user may decide to sync or not to sync on a
// per source basis ... the sync'd sources still need to be consistently
// represented across devices." Devices exchange raw source records for
// the sources they agreed to sync; each device then re-runs its own
// incremental construction, which — because matching is a deterministic
// transitive closure over strong keys — converges to identical clusters
// for the synced projection on every device. Unsynced sources never leave
// their device.

// Device simulates one of the user's devices.
type Device struct {
	// Name identifies the device ("phone", "laptop", "watch").
	Name string
	// Capability is a relative compute score; sync offloads expensive
	// computations to the most capable device (§5: "offloading expensive
	// computation to more powerful devices ... and syncing the result").
	Capability int
	// SyncPrefs marks which sources this device shares and accepts.
	SyncPrefs map[SourceKind]bool

	b *Builder
	// local holds the records originating on this device.
	local []Record
	// received holds records accepted from peers.
	received []Record
}

// NewDevice creates a device whose construction state lives under
// baseDir/<name>, with the given memory budget.
func NewDevice(baseDir, name string, capability int, prefs map[SourceKind]bool, memBudget int) (*Device, error) {
	b, err := NewBuilder(filepath.Join(baseDir, name), memBudget)
	if err != nil {
		return nil, err
	}
	return &Device{Name: name, Capability: capability, SyncPrefs: prefs, b: b}, nil
}

// Close releases the device's store.
func (d *Device) Close() error { return d.b.Close() }

// Builder exposes the device's construction pipeline.
func (d *Device) Builder() *Builder { return d.b }

// AddLocalRecords registers records originating on this device.
func (d *Device) AddLocalRecords(recs []Record) {
	d.local = append(d.local, recs...)
}

// Feed returns every record the device should construct from: local
// records plus accepted foreign records.
func (d *Device) Feed() []Record {
	out := make([]Record, 0, len(d.local)+len(d.received))
	out = append(out, d.local...)
	out = append(out, d.received...)
	return out
}

// Construct ingests the device's full feed.
func (d *Device) Construct() error {
	_, err := d.b.ProcessBatch(d.Feed(), 0)
	if err != nil {
		return err
	}
	return d.b.Checkpoint()
}

// Export returns the device's local records belonging to sources it has
// agreed to sync. Records from unsynced sources are withheld.
func (d *Device) Export() []Record {
	var out []Record
	for _, r := range d.local {
		if d.SyncPrefs[r.Source] {
			out = append(out, r)
		}
	}
	return out
}

// Accept ingests foreign records, keeping only sources this device syncs.
// Duplicate record keys are dropped.
func (d *Device) Accept(recs []Record) {
	have := make(map[string]bool, len(d.local)+len(d.received))
	for _, r := range d.local {
		have[r.Key()] = true
	}
	for _, r := range d.received {
		have[r.Key()] = true
	}
	for _, r := range recs {
		if !d.SyncPrefs[r.Source] || have[r.Key()] {
			continue
		}
		have[r.Key()] = true
		d.received = append(d.received, r)
	}
}

// SyncGroup is the set of a user's linked devices.
type SyncGroup struct {
	Devices []*Device
}

// SyncRound performs one all-to-all exchange: every device offers its
// exportable records, every other device accepts what its own prefs
// allow, then every device re-runs construction. Construction is
// incremental, so already-processed records cost only a lookup.
func (sg *SyncGroup) SyncRound() error {
	exports := make([][]Record, len(sg.Devices))
	for i, d := range sg.Devices {
		exports[i] = d.Export()
	}
	for i, d := range sg.Devices {
		for j, recs := range exports {
			if i == j {
				continue
			}
			d.Accept(recs)
		}
	}
	for _, d := range sg.Devices {
		if err := d.Construct(); err != nil {
			return fmt.Errorf("ondevice: construct on %s: %w", d.Name, err)
		}
	}
	return nil
}

// SyncedProjection returns the device's canonical clusters restricted to
// records of sources the whole group syncs on this device.
func (d *Device) SyncedProjection() ([]string, error) {
	return d.b.CanonicalClusters(func(recordKey string) bool {
		for kind := range d.SyncPrefs {
			if d.SyncPrefs[kind] && hasSourcePrefix(recordKey, kind) {
				return true
			}
		}
		return false
	})
}

func hasSourcePrefix(recordKey string, kind SourceKind) bool {
	prefix := string(kind) + "/"
	return len(recordKey) >= len(prefix) && recordKey[:len(prefix)] == prefix
}

// Converged reports whether all devices agree on the projection of
// commonly-synced sources. Only sources synced by every device are
// compared (a device that keeps its calendar local will legitimately
// have extra calendar entities).
func (sg *SyncGroup) Converged() (bool, error) {
	if len(sg.Devices) < 2 {
		return true, nil
	}
	common := make(map[SourceKind]bool)
	for _, k := range AllSources {
		common[k] = true
		for _, d := range sg.Devices {
			if !d.SyncPrefs[k] {
				common[k] = false
			}
		}
	}
	keep := func(recordKey string) bool {
		for k, ok := range common {
			if ok && hasSourcePrefix(recordKey, k) {
				return true
			}
		}
		return false
	}
	var ref []string
	for i, d := range sg.Devices {
		proj, err := d.b.CanonicalClusters(keep)
		if err != nil {
			return false, err
		}
		if i == 0 {
			ref = proj
			continue
		}
		if !equalStrings(ref, proj) {
			return false, nil
		}
	}
	return true, nil
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// OffloadResult is the outcome of capability-based offload.
type OffloadResult struct {
	// Executor is the device that ran the computation.
	Executor string
	// Result is the computed artifact, shipped to all devices.
	Result []string
}

// OffloadExpensiveComputation picks the most capable device, runs compute
// on its builder there, and distributes the result — the §5 pattern of
// running "expensive views or inference on larger models" on powerful
// devices and syncing the output.
func (sg *SyncGroup) OffloadExpensiveComputation(compute func(*Builder) ([]string, error)) (OffloadResult, error) {
	if len(sg.Devices) == 0 {
		return OffloadResult{}, fmt.Errorf("ondevice: empty sync group")
	}
	best := sg.Devices[0]
	for _, d := range sg.Devices[1:] {
		if d.Capability > best.Capability {
			best = d
		}
	}
	res, err := compute(best.b)
	if err != nil {
		return OffloadResult{}, err
	}
	sort.Strings(res)
	return OffloadResult{Executor: best.Name, Result: res}, nil
}
