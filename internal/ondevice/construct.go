package ondevice

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"saga/internal/storage"
	"saga/internal/textutil"
)

// Builder is the incremental personal-KG construction pipeline of §5:
// source records stream in, are blocked and matched against existing
// person clusters by strong keys (normalized phone, normalized email),
// and fused into unified person entities. All state — processed-record
// markers, clusters, match indexes — lives in the disk-oriented store, so
// the pipeline "can be paused and resumed at any point without losing
// state" and runs under a tunable memory budget.
//
// Matching policy (Fig 7): records merge when they share a phone number
// or an email address; name similarity alone never merges, so two
// distinct "Tims" remain distinct entities.
type Builder struct {
	store *storage.Store
}

// PersonEntity is a fused person: the consolidated representation in the
// unified ontology that utterance understanding resolves "Tim" against.
type PersonEntity struct {
	ID int `json:"id"`
	// Names are the distinct source name spellings (sorted).
	Names []string `json:"names"`
	// Phones are normalized phone numbers (sorted).
	Phones []string `json:"phones"`
	// Emails are normalized emails (sorted).
	Emails []string `json:"emails"`
	// RecordKeys are the member records' keys (sorted).
	RecordKeys []string `json:"record_keys"`
	// Notes accumulates free-text context from member records.
	Notes []string `json:"notes"`
}

// Store key layout.
const (
	keyRecPrefix  = "rec/"  // rec/<recordKey> -> 1 (processed marker)
	keyClPrefix   = "cl/"   // cl/<clusterID> -> PersonEntity JSON
	keyIdxPhone   = "ix/p/" // ix/p/<phone> -> clusterID
	keyIdxEmail   = "ix/e/" // ix/e/<email> -> clusterID
	keyRedirect   = "rd/"   // rd/<old> -> new clusterID
	keyMetaNextID = "meta/next"
)

// NewBuilder opens (or resumes) a construction pipeline whose state lives
// in dir, with the given memtable budget in bytes (0 = default).
func NewBuilder(dir string, memBudgetBytes int) (*Builder, error) {
	st, err := storage.Open(dir, storage.Options{MemBudgetBytes: memBudgetBytes})
	if err != nil {
		return nil, fmt.Errorf("ondevice: open builder store: %w", err)
	}
	return &Builder{store: st}, nil
}

// Close checkpoints and closes the underlying store.
func (b *Builder) Close() error { return b.store.Close() }

// Checkpoint persists all pending state; after Checkpoint the directory
// can be reopened by a new Builder with no loss.
func (b *Builder) Checkpoint() error { return b.store.Checkpoint() }

// SpillCount reports how many times the memory budget forced a spill.
func (b *Builder) SpillCount() int { return b.store.SpillCount() }

// Processed reports whether a record has already been ingested, making
// ProcessRecord idempotent and resume-after-pause trivial: replay the
// feed and processed records are skipped.
func (b *Builder) Processed(r Record) bool {
	return b.store.Has(keyRecPrefix + r.Key())
}

// ProcessRecord ingests one record: block, match, fuse. Idempotent.
func (b *Builder) ProcessRecord(r Record) error {
	if r.LocalID == "" || r.Source == "" {
		return errors.New("ondevice: record needs Source and LocalID")
	}
	recKey := keyRecPrefix + r.Key()
	if b.store.Has(recKey) {
		return nil
	}

	// Blocking + matching: strong keys only.
	var matched []int
	if p := r.NormPhone(); p != "" {
		if cid, ok := b.lookupIndex(keyIdxPhone + p); ok {
			matched = append(matched, cid)
		}
	}
	if e := r.NormEmail(); e != "" {
		if cid, ok := b.lookupIndex(keyIdxEmail + e); ok {
			matched = append(matched, cid)
		}
	}
	matched = dedupInts(matched)

	var target int
	var ent *PersonEntity
	switch len(matched) {
	case 0:
		id, err := b.nextClusterID()
		if err != nil {
			return err
		}
		target = id
		ent = &PersonEntity{ID: id}
	default:
		sort.Ints(matched)
		target = matched[0]
		var err error
		ent, err = b.loadEntity(target)
		if err != nil {
			return err
		}
		// Fuse any additional matched clusters into the target.
		for _, other := range matched[1:] {
			otherEnt, err := b.loadEntity(other)
			if err != nil {
				return err
			}
			mergeEntity(ent, otherEnt)
			if err := b.store.Delete(keyClPrefix + fmt.Sprint(other)); err != nil {
				return err
			}
			if err := b.store.Put(keyRedirect+fmt.Sprint(other), []byte(fmt.Sprint(target))); err != nil {
				return err
			}
		}
	}

	// Fuse the record into the entity.
	addUnique(&ent.Names, strings.TrimSpace(r.Name))
	addUnique(&ent.Phones, r.NormPhone())
	addUnique(&ent.Emails, r.NormEmail())
	addUnique(&ent.RecordKeys, r.Key())
	if r.Note != "" {
		ent.Notes = append(ent.Notes, r.Note)
		sort.Strings(ent.Notes)
	}

	if err := b.saveEntity(ent); err != nil {
		return err
	}
	// Update strong-key indexes to the (possibly merged) target.
	if p := r.NormPhone(); p != "" {
		if err := b.store.Put(keyIdxPhone+p, []byte(fmt.Sprint(target))); err != nil {
			return err
		}
	}
	if e := r.NormEmail(); e != "" {
		if err := b.store.Put(keyIdxEmail+e, []byte(fmt.Sprint(target))); err != nil {
			return err
		}
	}
	return b.store.Put(recKey, []byte{1})
}

// ProcessBatch ingests up to max unprocessed records from the feed,
// returning how many it processed. max <= 0 means no limit. This is the
// pausability primitive: a caller can process a few records, yield to a
// higher-priority task (§5), checkpoint, and resume later with the same
// feed.
func (b *Builder) ProcessBatch(feed []Record, max int) (int, error) {
	processed := 0
	for _, r := range feed {
		if max > 0 && processed >= max {
			break
		}
		if b.Processed(r) {
			continue
		}
		if err := b.ProcessRecord(r); err != nil {
			return processed, err
		}
		processed++
	}
	return processed, nil
}

// Entities returns all fused person entities, sorted by cluster ID.
func (b *Builder) Entities() ([]PersonEntity, error) {
	var out []PersonEntity
	var scanErr error
	err := b.store.Scan(keyClPrefix, func(key string, value []byte) bool {
		var e PersonEntity
		if err := json.Unmarshal(value, &e); err != nil {
			scanErr = fmt.Errorf("ondevice: decode entity %s: %w", key, err)
			return false
		}
		out = append(out, e)
		return true
	})
	if err != nil {
		return nil, err
	}
	if scanErr != nil {
		return nil, scanErr
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// CanonicalClusters returns an order-independent serialization of the
// clustering restricted to records accepted by keep (nil = all): one
// string per cluster, each the sorted "|"-join of record keys, the whole
// list sorted. Two devices converged iff their canonical clusters are
// equal.
func (b *Builder) CanonicalClusters(keep func(recordKey string) bool) ([]string, error) {
	ents, err := b.Entities()
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range ents {
		var keys []string
		for _, rk := range e.RecordKeys {
			if keep == nil || keep(rk) {
				keys = append(keys, rk)
			}
		}
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)
		out = append(out, strings.Join(keys, "|"))
	}
	sort.Strings(out)
	return out, nil
}

// RankContactsByContext scores person entities against a query context by
// token overlap with their accumulated notes — the §5 on-device
// contextual-relevance example ("message Tim that I've added comments to
// the SIGMOD draft" should pick the coworker Tim). Entities whose names
// do not contain the mention are filtered out. Results sort by descending
// score, ties by ID.
func RankContactsByContext(ents []PersonEntity, mention, queryContext string) []PersonEntity {
	mentionNorm := textutil.NormalizePhrase(mention)
	qTokens := tokenSet(queryContext)
	type scored struct {
		e PersonEntity
		s float64
	}
	var cands []scored
	for _, e := range ents {
		nameHit := false
		for _, n := range e.Names {
			if strings.Contains(textutil.NormalizePhrase(n), mentionNorm) {
				nameHit = true
				break
			}
		}
		if !nameHit {
			continue
		}
		var overlap float64
		for _, note := range e.Notes {
			for tok := range tokenSet(note) {
				if qTokens[tok] {
					overlap++
				}
			}
		}
		cands = append(cands, scored{e, overlap})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].s != cands[j].s {
			return cands[i].s > cands[j].s
		}
		return cands[i].e.ID < cands[j].e.ID
	})
	out := make([]PersonEntity, len(cands))
	for i, c := range cands {
		out[i] = c.e
	}
	return out
}

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, t := range textutil.Tokenize(s) {
		out[t.Text] = true
	}
	return out
}

// --- internal helpers ----------------------------------------------------

func (b *Builder) lookupIndex(key string) (int, bool) {
	data, err := b.store.Get(key)
	if err != nil {
		return 0, false
	}
	var cid int
	if _, err := fmt.Sscan(string(data), &cid); err != nil {
		return 0, false
	}
	return b.resolve(cid), true
}

// resolve follows merge redirects to the live cluster ID.
func (b *Builder) resolve(cid int) int {
	for depth := 0; depth < 64; depth++ {
		data, err := b.store.Get(keyRedirect + fmt.Sprint(cid))
		if err != nil {
			return cid
		}
		var next int
		if _, err := fmt.Sscan(string(data), &next); err != nil {
			return cid
		}
		cid = next
	}
	return cid
}

func (b *Builder) nextClusterID() (int, error) {
	id := 1
	if data, err := b.store.Get(keyMetaNextID); err == nil {
		fmt.Sscan(string(data), &id)
	}
	if err := b.store.Put(keyMetaNextID, []byte(fmt.Sprint(id+1))); err != nil {
		return 0, err
	}
	return id, nil
}

func (b *Builder) loadEntity(cid int) (*PersonEntity, error) {
	data, err := b.store.Get(keyClPrefix + fmt.Sprint(cid))
	if err != nil {
		return nil, fmt.Errorf("ondevice: load cluster %d: %w", cid, err)
	}
	var e PersonEntity
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("ondevice: decode cluster %d: %w", cid, err)
	}
	return &e, nil
}

func (b *Builder) saveEntity(e *PersonEntity) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	return b.store.Put(keyClPrefix+fmt.Sprint(e.ID), data)
}

func mergeEntity(dst, src *PersonEntity) {
	for _, n := range src.Names {
		addUnique(&dst.Names, n)
	}
	for _, p := range src.Phones {
		addUnique(&dst.Phones, p)
	}
	for _, e := range src.Emails {
		addUnique(&dst.Emails, e)
	}
	for _, rk := range src.RecordKeys {
		addUnique(&dst.RecordKeys, rk)
	}
	dst.Notes = append(dst.Notes, src.Notes...)
	sort.Strings(dst.Notes)
}

// addUnique inserts s into the sorted slice if non-empty and absent.
func addUnique(slice *[]string, s string) {
	if s == "" {
		return
	}
	i := sort.SearchStrings(*slice, s)
	if i < len(*slice) && (*slice)[i] == s {
		return
	}
	*slice = append(*slice, "")
	copy((*slice)[i+1:], (*slice)[i:])
	(*slice)[i] = s
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
