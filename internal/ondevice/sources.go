// Package ondevice implements the paper's §5: private on-device personal
// knowledge. It provides device data sources (contacts, messages,
// calendar), an incremental pausable personal-KG construction pipeline
// with bounded memory (built on the disk-oriented storage package),
// per-source cross-device sync with deterministic merge, and the three
// global knowledge enrichment paths (static asset, dynamic piggyback,
// private retrieval with differential-privacy and PIR cost simulation).
package ondevice

import (
	"fmt"
	"math/rand"
	"strings"

	"saga/internal/textutil"
)

// SourceKind identifies an on-device data source.
type SourceKind string

const (
	// SourceContacts is the address book.
	SourceContacts SourceKind = "contacts"
	// SourceMessages is the messaging app (senders).
	SourceMessages SourceKind = "messages"
	// SourceCalendar is the calendar (event attendees).
	SourceCalendar SourceKind = "calendar"
)

// AllSources lists every source kind in canonical order.
var AllSources = []SourceKind{SourceContacts, SourceMessages, SourceCalendar}

// Record is one raw person observation from a device source — a contact
// card, a message sender, or a calendar attendee (Fig 7). Different
// sources carry different subsets of attributes in different formats.
type Record struct {
	// Source is the producing data source.
	Source SourceKind
	// LocalID is unique within (Source); e.g. "contact-12".
	LocalID string
	// Name as the source renders it ("Tim Smith", "Smith, Tim").
	Name string
	// Phone in any format; empty when the source lacks it.
	Phone string
	// Email in any casing; empty when the source lacks it.
	Email string
	// Note carries free-text context (message snippets, event titles)
	// used by on-device contextual ranking.
	Note string
}

// Key returns the record's globally unique identity.
func (r Record) Key() string {
	return string(r.Source) + "/" + r.LocalID
}

// NormPhone canonicalizes the phone number to its last 10 digits so that
// "+1 (123) 555 1234" and "123-555-1234" match (Fig 7's phone join).
func (r Record) NormPhone() string {
	d := textutil.DigitsOnly(r.Phone)
	if len(d) > 10 {
		d = d[len(d)-10:]
	}
	return d
}

// NormEmail canonicalizes the email for matching.
func (r Record) NormEmail() string {
	return strings.ToLower(strings.TrimSpace(r.Email))
}

// NormName canonicalizes the display name: lowercased tokens in sorted
// order so "Smith, Tim" equals "Tim Smith".
func (r Record) NormName() string {
	toks := textutil.Tokenize(r.Name)
	words := make([]string, len(toks))
	for i, t := range toks {
		words[i] = t.Text
	}
	// Sort tokens for order independence.
	for i := 1; i < len(words); i++ {
		for j := i; j > 0 && words[j] < words[j-1]; j-- {
			words[j], words[j-1] = words[j-1], words[j]
		}
	}
	return strings.Join(words, " ")
}

// DeviceDataConfig sizes GenerateDeviceData.
type DeviceDataConfig struct {
	// NumPersons is the number of underlying real people; default 20.
	NumPersons int
	// RecordsPerPerson is the approximate number of records each person
	// generates across sources; default 4.
	RecordsPerPerson int
	// Seed drives generation.
	Seed int64
}

// GroundTruth maps each record key to its underlying person index, for
// evaluating entity matching.
type GroundTruth map[string]int

// GenerateDeviceData synthesizes overlapping person records across the
// three sources with realistic format variation: contacts carry
// name+phone+email; messages carry name+phone; calendar carries
// name+email — exactly the Fig 7 integration scenario. Some records use
// reversed name order or a bare first name.
func GenerateDeviceData(cfg DeviceDataConfig) ([]Record, GroundTruth) {
	if cfg.NumPersons <= 0 {
		cfg.NumPersons = 20
	}
	if cfg.RecordsPerPerson <= 0 {
		cfg.RecordsPerPerson = 4
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	firsts := []string{"Tim", "Ana", "Raj", "Mei", "Leo", "Zoe", "Sam", "Ivy", "Max", "Nia"}
	lasts := []string{"Smith", "Lopez", "Patel", "Wong", "Kim", "Brown", "Silva", "Khan", "Berg", "Cruz"}

	var records []Record
	truth := make(GroundTruth)
	recNum := 0
	for p := 0; p < cfg.NumPersons; p++ {
		first := firsts[p%len(firsts)]
		last := lasts[(p/len(firsts))%len(lasts)]
		full := first + " " + last
		phone := fmt.Sprintf("+1 (555) %03d-%04d", p%1000, 1000+p)
		email := strings.ToLower(first) + "." + strings.ToLower(last) + fmt.Sprintf("%d@example.com", p)

		add := func(rec Record) {
			rec.LocalID = fmt.Sprintf("%s-%d", rec.Source, recNum)
			recNum++
			records = append(records, rec)
			truth[rec.Key()] = p
		}
		// Contact card: full attributes.
		add(Record{Source: SourceContacts, Name: full, Phone: phone, Email: email})
		for i := 1; i < cfg.RecordsPerPerson; i++ {
			switch i % 3 {
			case 1:
				// Message sender: name variant + phone only.
				name := full
				if rng.Intn(2) == 0 {
					name = last + ", " + first
				}
				add(Record{
					Source: SourceMessages, Name: name,
					Phone: fmt.Sprintf("555%03d%04d", p%1000, 1000+p), // bare digits
					Note:  "message thread " + fmt.Sprint(rng.Intn(100)),
				})
			case 2:
				// Calendar attendee: name + email only.
				add(Record{
					Source: SourceCalendar, Name: full,
					Email: strings.ToUpper(email), // casing variation
					Note:  "meeting " + fmt.Sprint(rng.Intn(100)),
				})
			default:
				// Second contact entry (e.g. work card): email only.
				add(Record{Source: SourceContacts, Name: full, Email: email, Note: "work"})
			}
		}
	}
	rng.Shuffle(len(records), func(i, j int) { records[i], records[j] = records[j], records[i] })
	return records, truth
}
