package ondevice

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// Global knowledge enrichment (§5): the personal graph is enriched with
// global knowledge through three paths with different privacy/cost
// trade-offs:
//
//  1. Static knowledge asset — a popularity-ranked subgraph shipped to
//     every device; zero request leakage, bounded size, maintained as a
//     graph-engine view.
//  2. Dynamic piggyback — global facts ride along on responses to server
//     interactions the user already makes; no extra leakage.
//  3. Private retrieval — PIR-style lookups whose simulated cost is a
//     full scan of the server corpus, plus differentially-private noisy
//     counting for aggregate queries; provable privacy at high cost,
//     reserved for high-value lookups.

// AssetEntry is one entity's payload inside the static knowledge asset.
type AssetEntry struct {
	Key        string
	Name       string
	Popularity float64
	// Facts are rendered (predicate, object) strings about the entity.
	Facts []string
}

// StaticAsset is the on-device popular-entity artifact.
type StaticAsset struct {
	Entries map[string]AssetEntry // by entity key
	// SourceSeq is the graph mutation sequence the asset was built at —
	// the changefeed cursor's position, exported so sync tooling can
	// compare asset versions across devices.
	SourceSeq uint64
	size      int
	view      *graphengine.View
	graph     *kg.Graph
	feed      *kg.Changefeed
	topK      int
}

// BuildStaticAsset materializes the top-k most popular global entities
// (with their facts) into a shippable asset. The view is maintained
// incrementally: call Refresh after the global graph changes.
func BuildStaticAsset(g *kg.Graph, topK int) (*StaticAsset, error) {
	if topK <= 0 {
		return nil, errors.New("ondevice: topK must be positive")
	}
	eng := graphengine.New(g)
	view := eng.Materialize(graphengine.ViewDef{Name: "static-asset"})
	a := &StaticAsset{graph: g, view: view, feed: g.Feed(0), topK: topK}
	a.rebuild()
	return a, nil
}

func (a *StaticAsset) rebuild() {
	// Reset the feed to the watermark BEFORE scanning: a mutation that
	// lands mid-scan may or may not be reflected in the entries, so the
	// conservative cursor makes the next Refresh re-pull it rather than
	// silently skip it (resetting after the scan could mark unseen
	// mutations as consumed).
	seq := a.graph.LastSeq()
	var all []*kg.Entity
	a.graph.Entities(func(e *kg.Entity) bool {
		all = append(all, e)
		return true
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Popularity != all[j].Popularity {
			return all[i].Popularity > all[j].Popularity
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > a.topK {
		all = all[:a.topK]
	}
	entries := make(map[string]AssetEntry, len(all))
	var pvs []predValue
	for _, e := range all {
		entry := AssetEntry{Key: e.Key, Name: e.Name, Popularity: e.Popularity}
		pvs = collectOutgoing(a.graph, e.ID, pvs[:0])
		for _, pv := range pvs {
			p := a.graph.Predicate(pv.pred)
			if p == nil {
				continue
			}
			entry.Facts = append(entry.Facts, p.Name+"="+pv.obj.String())
		}
		sort.Strings(entry.Facts)
		entries[e.Key] = entry
	}
	a.Entries = entries
	a.feed.Reset(seq)
	a.SourceSeq = seq
	a.size = len(entries)
}

// Refresh incrementally applies graph changes since the asset was built
// ("as the set of popular entities changes over time, the view is
// automatically maintained and can be shipped to devices"). Returns the
// number of view mutations applied.
//
// Staleness is decided by the asset's changefeed: a non-empty (or
// incomplete, when compaction passed the cursor) pull means the graph
// moved past the asset's watermark and the entries are recomputed. The
// pulled batch itself is not replayed — rebuild re-ranks from the live
// dictionary anyway, which also picks up popularity changes that carry
// no mutation sequence.
func (a *StaticAsset) Refresh() int {
	applied := a.view.Refresh()
	muts, complete := a.feed.Pull()
	if applied > 0 || len(muts) > 0 || !complete {
		a.rebuild()
	}
	return applied
}

// Lookup serves a device query from the asset; no network request, no
// privacy leakage.
func (a *StaticAsset) Lookup(entityKey string) (AssetEntry, bool) {
	e, ok := a.Entries[entityKey]
	return e, ok
}

// Size returns the number of entities in the asset.
func (a *StaticAsset) Size() int { return a.size }

// --- Dynamic piggyback ---------------------------------------------------

// PiggybackCache accumulates global facts that rode along on the user's
// own server interactions.
type PiggybackCache struct {
	facts map[string][]string
}

// NewPiggybackCache returns an empty cache.
func NewPiggybackCache() *PiggybackCache {
	return &PiggybackCache{facts: make(map[string][]string)}
}

// ServerInteraction simulates the user asking the server about an entity
// (e.g. "what is the score in the Blue Jays game?"). The response
// piggybacks the entity's global facts, which the device caches. The
// request would have been made anyway, so no additional information
// about the user leaks.
func (c *PiggybackCache) ServerInteraction(g *kg.Graph, entityKey string) ([]string, bool) {
	e, ok := g.EntityByKey(entityKey)
	if !ok {
		return nil, false
	}
	var facts []string
	for _, pv := range collectOutgoing(g, e.ID, nil) {
		p := g.Predicate(pv.pred)
		if p == nil {
			continue
		}
		facts = append(facts, p.Name+"="+pv.obj.String())
	}
	sort.Strings(facts)
	c.facts[entityKey] = facts
	return facts, true
}

// predValue is the (predicate, object) projection of an outgoing fact —
// what the enrichment renderers actually consume. Collecting these via
// the graph's visitor path avoids copying full Triples (with provenance)
// per entity, and resolving predicate names after the visitor returns
// keeps predicate lookups off the held read lock.
type predValue struct {
	pred kg.PredicateID
	obj  kg.Value
}

// collectOutgoing appends entity id's outgoing (predicate, object) pairs
// to buf using the copy-free visitor read path, and returns it.
func collectOutgoing(g *kg.Graph, id kg.EntityID, buf []predValue) []predValue {
	g.OutgoingFunc(id, func(tr kg.Triple) bool {
		buf = append(buf, predValue{pred: tr.Predicate, obj: tr.Object})
		return true
	})
	return buf
}

// Lookup serves a cached entity.
func (c *PiggybackCache) Lookup(entityKey string) ([]string, bool) {
	f, ok := c.facts[entityKey]
	return f, ok
}

// Size returns the number of cached entities.
func (c *PiggybackCache) Size() int { return len(c.facts) }

// --- Private retrieval ---------------------------------------------------

// PIRServer simulates private information retrieval over a keyed corpus:
// answering one query costs a scan of the whole database (the defining
// cost of information-theoretic PIR — the server must touch every row or
// it learns which row was asked for). CostUnits accumulates rows scanned.
type PIRServer struct {
	rows      map[string][]string
	CostUnits int
}

// NewPIRServer indexes the global graph for PIR lookups.
func NewPIRServer(g *kg.Graph) *PIRServer {
	s := &PIRServer{rows: make(map[string][]string)}
	g.Entities(func(e *kg.Entity) bool {
		var facts []string
		for _, tr := range g.Outgoing(e.ID) {
			p := g.Predicate(tr.Predicate)
			if p != nil {
				facts = append(facts, p.Name+"="+tr.Object.String())
			}
		}
		sort.Strings(facts)
		s.rows[e.Key] = facts
		return true
	})
	return s
}

// Fetch privately retrieves one entity's facts. The simulated cost is
// |corpus| rows regardless of the key, which is what makes the paper
// reserve this path for "high-value use cases".
func (s *PIRServer) Fetch(entityKey string) ([]string, bool) {
	s.CostUnits += len(s.rows) // every row is touched
	f, ok := s.rows[entityKey]
	return f, ok
}

// NumRows returns the corpus size.
func (s *PIRServer) NumRows() int { return len(s.rows) }

// --- Differential privacy -------------------------------------------------

// DPNoisyCount returns count + Laplace(sensitivity/epsilon) noise: the
// standard ε-differentially-private release of a counting query, used for
// aggregate "knowledge queries" (§5's reference [7]).
func DPNoisyCount(count float64, sensitivity, epsilon float64, rng *rand.Rand) (float64, error) {
	if epsilon <= 0 {
		return 0, errors.New("ondevice: epsilon must be positive")
	}
	if sensitivity <= 0 {
		sensitivity = 1
	}
	scale := sensitivity / epsilon
	// Inverse-CDF Laplace sampling.
	u := rng.Float64() - 0.5
	noise := -scale * sign(u) * math.Log(1-2*math.Abs(u))
	return count + noise, nil
}

func sign(x float64) float64 {
	if x < 0 {
		return -1
	}
	return 1
}
