package ondevice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"saga/internal/kg"
	"saga/internal/metrics"
	"saga/internal/workload"
)

func TestRecordNormalization(t *testing.T) {
	r := Record{Source: SourceContacts, LocalID: "1", Name: "Smith, Tim",
		Phone: "+1 (123) 555-1234", Email: " Tim@Example.COM "}
	if got := r.NormPhone(); got != "1235551234" {
		t.Fatalf("NormPhone = %q", got)
	}
	if got := r.NormEmail(); got != "tim@example.com" {
		t.Fatalf("NormEmail = %q", got)
	}
	if got := r.NormName(); got != "smith tim" {
		t.Fatalf("NormName = %q", got)
	}
	r2 := Record{Name: "Tim Smith", Phone: "123-555-1234"}
	if r.NormPhone() != r2.NormPhone() {
		t.Fatal("formatted and bare phones must normalize equal")
	}
	if r.NormName() != r2.NormName() {
		t.Fatal("reordered names must normalize equal")
	}
}

// TestFig7Scenario is the paper's worked example: a contact card, a
// message sender sharing the phone number, and a calendar invitee sharing
// the email must fuse into a single "Tim Smith" entity.
func TestFig7Scenario(t *testing.T) {
	b, err := NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	records := []Record{
		{Source: SourceContacts, LocalID: "c1", Name: "Tim Smith",
			Phone: "+1 (123) 555 1234", Email: "Tim@example.com"},
		{Source: SourceMessages, LocalID: "m1", Name: "Tim Smith",
			Phone: "123-555-1234", Note: "re: SIGMOD draft"},
		{Source: SourceCalendar, LocalID: "e1", Name: "Tim Smith",
			Email: "tim@example.com", Note: "SIGMOD planning meeting"},
		// A different Tim with no shared keys must stay separate.
		{Source: SourceContacts, LocalID: "c2", Name: "Tim Jones",
			Phone: "999-888-7777", Email: "tim.jones@other.org"},
	}
	if _, err := b.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	ents, err := b.Entities()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("entities = %d, want 2 (one fused Tim Smith, one Tim Jones)", len(ents))
	}
	var smith *PersonEntity
	for i := range ents {
		if len(ents[i].RecordKeys) == 3 {
			smith = &ents[i]
		}
	}
	if smith == nil {
		t.Fatalf("no 3-record fused entity: %+v", ents)
	}
	if len(smith.Phones) != 1 || smith.Phones[0] != "1235551234" {
		t.Fatalf("fused phones = %v", smith.Phones)
	}
	if len(smith.Emails) != 1 || smith.Emails[0] != "tim@example.com" {
		t.Fatalf("fused emails = %v", smith.Emails)
	}
}

func TestMergeAcrossChains(t *testing.T) {
	// A record sharing phone with cluster A and email with cluster B must
	// merge A and B.
	b, err := NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	records := []Record{
		{Source: SourceMessages, LocalID: "m1", Name: "Ana", Phone: "111-222-3333"},
		{Source: SourceCalendar, LocalID: "e1", Name: "Ana Lopez", Email: "ana@x.com"},
		{Source: SourceContacts, LocalID: "c1", Name: "Ana Lopez",
			Phone: "1112223333", Email: "ANA@X.COM"},
	}
	if _, err := b.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	ents, err := b.Entities()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("entities = %d, want 1 after bridge merge", len(ents))
	}
	if len(ents[0].RecordKeys) != 3 {
		t.Fatalf("record keys = %v", ents[0].RecordKeys)
	}
}

func TestNameAloneDoesNotMerge(t *testing.T) {
	b, err := NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	records := []Record{
		{Source: SourceContacts, LocalID: "c1", Name: "Tim Smith", Phone: "111"},
		{Source: SourceContacts, LocalID: "c2", Name: "Tim Smith", Phone: "222"},
	}
	if _, err := b.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	ents, err := b.Entities()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("two distinct Tims merged by name alone: %+v", ents)
	}
}

func TestMatchingQualityOnGeneratedData(t *testing.T) {
	records, truth := GenerateDeviceData(DeviceDataConfig{NumPersons: 25, RecordsPerPerson: 4, Seed: 5})
	b, err := NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if _, err := b.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	ents, err := b.Entities()
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise precision/recall against ground truth.
	cluster := make(map[string]int) // record key -> entity id
	for _, e := range ents {
		for _, rk := range e.RecordKeys {
			cluster[rk] = e.ID
		}
	}
	var conf metrics.Confusion
	keys := make([]string, 0, len(truth))
	for k := range truth {
		keys = append(keys, k)
	}
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			samePred := cluster[keys[i]] == cluster[keys[j]]
			sameTruth := truth[keys[i]] == truth[keys[j]]
			conf.Add(samePred, sameTruth)
		}
	}
	if p := conf.Precision(); p < 0.95 {
		t.Fatalf("pairwise precision = %v", p)
	}
	if r := conf.Recall(); r < 0.8 {
		t.Fatalf("pairwise recall = %v", r)
	}
}

func TestPauseResumeEquivalence(t *testing.T) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 15, RecordsPerPerson: 4, Seed: 9})

	// Continuous run.
	bCont, err := NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bCont.Close()
	if _, err := bCont.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	wantClusters, err := bCont.CanonicalClusters(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Paused run: process in chunks of 7, checkpoint + reopen between
	// chunks (simulating deferral to higher-priority tasks, §5).
	dir := t.TempDir()
	var processedTotal int
	for {
		b, err := NewBuilder(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		n, err := b.ProcessBatch(records, 7)
		if err != nil {
			t.Fatal(err)
		}
		processedTotal += n
		if err := b.Close(); err != nil { // Close checkpoints
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if processedTotal != len(records) {
		t.Fatalf("paused run processed %d, want %d", processedTotal, len(records))
	}
	bRes, err := NewBuilder(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bRes.Close()
	gotClusters, err := bRes.CanonicalClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalStrings(wantClusters, gotClusters) {
		t.Fatalf("pause/resume clustering differs:\ncontinuous: %v\npaused:     %v", wantClusters, gotClusters)
	}
}

func TestMemoryBudgetSpills(t *testing.T) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 30, RecordsPerPerson: 4, Seed: 13})

	run := func(budget int) (int, []string) {
		b, err := NewBuilder(t.TempDir(), budget)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if _, err := b.ProcessBatch(records, 0); err != nil {
			t.Fatal(err)
		}
		clusters, err := b.CanonicalClusters(nil)
		if err != nil {
			t.Fatal(err)
		}
		return b.SpillCount(), clusters
	}
	tinySpills, tinyClusters := run(512)
	bigSpills, bigClusters := run(1 << 20)
	if tinySpills <= bigSpills {
		t.Fatalf("tiny budget spills (%d) must exceed big budget spills (%d)", tinySpills, bigSpills)
	}
	if !equalStrings(tinyClusters, bigClusters) {
		t.Fatal("memory budget changed the clustering output")
	}
}

func TestOrderIndependence(t *testing.T) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 12, RecordsPerPerson: 4, Seed: 17})
	run := func(rs []Record) []string {
		b, err := NewBuilder(t.TempDir(), 0)
		if err != nil {
			t.Fatal(err)
		}
		defer b.Close()
		if _, err := b.ProcessBatch(rs, 0); err != nil {
			t.Fatal(err)
		}
		clusters, err := b.CanonicalClusters(nil)
		if err != nil {
			t.Fatal(err)
		}
		return clusters
	}
	forward := run(records)
	reversed := make([]Record, len(records))
	for i, r := range records {
		reversed[len(records)-1-i] = r
	}
	backward := run(reversed)
	if !equalStrings(forward, backward) {
		t.Fatal("clustering depends on record order")
	}
}

func TestRankContactsByContext(t *testing.T) {
	ents := []PersonEntity{
		{ID: 1, Names: []string{"Tim Smith"}, Notes: []string{"SIGMOD planning meeting", "paper review"}},
		{ID: 2, Names: []string{"Tim Jones"}, Notes: []string{"soccer practice"}},
		{ID: 3, Names: []string{"Ana Lopez"}, Notes: []string{"SIGMOD dinner"}},
	}
	ranked := RankContactsByContext(ents, "Tim", "I've added comments to the SIGMOD draft")
	if len(ranked) != 2 {
		t.Fatalf("ranked = %d Tims, want 2 (Ana filtered)", len(ranked))
	}
	if ranked[0].ID != 1 {
		t.Fatalf("top contact = %d, want the SIGMOD coworker", ranked[0].ID)
	}
	// No name hit: empty.
	if got := RankContactsByContext(ents, "Zoe", "anything"); len(got) != 0 {
		t.Fatalf("unmatched mention = %v", got)
	}
}

func TestSyncConvergenceAllSources(t *testing.T) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 15, RecordsPerPerson: 4, Seed: 21})
	base := t.TempDir()
	allPrefs := func() map[SourceKind]bool {
		return map[SourceKind]bool{SourceContacts: true, SourceMessages: true, SourceCalendar: true}
	}
	phone, err := NewDevice(base, "phone", 3, allPrefs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	laptop, err := NewDevice(base, "laptop", 10, allPrefs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer laptop.Close()
	watch, err := NewDevice(base, "watch", 1, allPrefs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()

	// Partition records across devices by source.
	for _, r := range records {
		switch r.Source {
		case SourceContacts:
			phone.AddLocalRecords([]Record{r})
		case SourceMessages:
			laptop.AddLocalRecords([]Record{r})
		default:
			watch.AddLocalRecords([]Record{r})
		}
	}
	sg := &SyncGroup{Devices: []*Device{phone, laptop, watch}}
	if err := sg.SyncRound(); err != nil {
		t.Fatal(err)
	}
	ok, err := sg.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("devices did not converge after full sync")
	}
}

func TestSyncPerSourcePrefsRespected(t *testing.T) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 10, RecordsPerPerson: 4, Seed: 23})
	base := t.TempDir()
	// Phone owns calendar but refuses to sync it.
	phonePrefs := map[SourceKind]bool{SourceContacts: true, SourceMessages: true, SourceCalendar: false}
	laptopPrefs := map[SourceKind]bool{SourceContacts: true, SourceMessages: true, SourceCalendar: true}
	phone, err := NewDevice(base, "phone", 3, phonePrefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer phone.Close()
	laptop, err := NewDevice(base, "laptop", 10, laptopPrefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer laptop.Close()
	phone.AddLocalRecords(records) // all data originates on the phone
	sg := &SyncGroup{Devices: []*Device{phone, laptop}}
	if err := sg.SyncRound(); err != nil {
		t.Fatal(err)
	}
	// Laptop must have no calendar records.
	for _, r := range laptop.Feed() {
		if r.Source == SourceCalendar {
			t.Fatalf("calendar record %s leaked to laptop despite phone's pref", r.Key())
		}
	}
	// Common sources still converge.
	ok, err := sg.Converged()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("common-source projection did not converge")
	}
	// Phone retains its own calendar entities locally.
	hasCalendar := false
	phoneClusters, err := phone.Builder().CanonicalClusters(func(rk string) bool {
		return hasSourcePrefix(rk, SourceCalendar)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(phoneClusters) > 0 {
		hasCalendar = true
	}
	if !hasCalendar {
		t.Fatal("phone lost its unsynced calendar data")
	}
}

func TestOffloadPicksMostCapable(t *testing.T) {
	base := t.TempDir()
	prefs := map[SourceKind]bool{SourceContacts: true}
	watch, err := NewDevice(base, "watch", 1, prefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer watch.Close()
	laptop, err := NewDevice(base, "laptop", 10, prefs, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer laptop.Close()
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 5, RecordsPerPerson: 2, Seed: 29})
	for _, d := range []*Device{watch, laptop} {
		d.AddLocalRecords(records)
		if err := d.Construct(); err != nil {
			t.Fatal(err)
		}
	}
	sg := &SyncGroup{Devices: []*Device{watch, laptop}}
	res, err := sg.OffloadExpensiveComputation(func(b *Builder) ([]string, error) {
		ents, err := b.Entities()
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range ents {
			names = append(names, e.Names...)
		}
		return names, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Executor != "laptop" {
		t.Fatalf("executor = %s, want the most capable device", res.Executor)
	}
	if len(res.Result) == 0 {
		t.Fatal("empty offload result")
	}
}

func TestStaticAsset(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 40, NumClusters: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	asset, err := BuildStaticAsset(w.Graph, 10)
	if err != nil {
		t.Fatal(err)
	}
	if asset.Size() != 10 {
		t.Fatalf("asset size = %d", asset.Size())
	}
	// The most popular person must be in the asset with facts.
	top := w.Graph.Entity(w.People[0])
	entry, ok := asset.Lookup(top.Key)
	if !ok {
		t.Fatalf("most popular entity %s not in asset", top.Key)
	}
	if len(entry.Facts) == 0 {
		t.Fatal("asset entry has no facts")
	}
	// Unpopular tail entity is absent.
	tail := w.Graph.Entity(w.People[len(w.People)-1])
	if _, ok := asset.Lookup(tail.Key); ok {
		t.Fatal("tail entity unexpectedly in top-10 asset")
	}
	if _, err := BuildStaticAsset(w.Graph, 0); err == nil {
		t.Fatal("topK=0 accepted")
	}
}

func TestStaticAssetRefresh(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 20, NumClusters: 2, Seed: 37})
	if err != nil {
		t.Fatal(err)
	}
	asset, err := BuildStaticAsset(w.Graph, 5)
	if err != nil {
		t.Fatal(err)
	}
	top := w.Graph.Entity(w.People[0])
	before := len(asset.Entries[top.Key].Facts)
	// Add a new fact about the top entity and refresh.
	pred := w.Preds["award"]
	newFact := w.Awards[1]
	facts := w.Graph.Facts(w.People[0], pred)
	alreadyHas := false
	for _, f := range facts {
		if f.Object.Entity == newFact {
			alreadyHas = true
		}
	}
	if alreadyHas {
		newFact = w.Awards[0]
	}
	if err := w.Graph.Assert(kgTriple(w, w.People[0], pred, newFact)); err != nil {
		t.Fatal(err)
	}
	asset.Refresh()
	after := len(asset.Entries[top.Key].Facts)
	if after != before+1 {
		t.Fatalf("facts after refresh = %d, want %d", after, before+1)
	}
}

func TestPiggybackCache(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 20, NumClusters: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	c := NewPiggybackCache()
	// People have outgoing facts; teams are only fact objects.
	key := w.Graph.Entity(w.People[0]).Key
	if _, ok := c.Lookup(key); ok {
		t.Fatal("cold cache hit")
	}
	facts, ok := c.ServerInteraction(w.Graph, key)
	if !ok || len(facts) == 0 {
		t.Fatal("interaction returned no facts")
	}
	cached, ok := c.Lookup(key)
	if !ok || len(cached) != len(facts) {
		t.Fatal("cache miss or truncation after interaction")
	}
	if c.Size() != 1 {
		t.Fatalf("cache size = %d", c.Size())
	}
	if _, ok := c.ServerInteraction(w.Graph, "no-such-key"); ok {
		t.Fatal("unknown entity interaction succeeded")
	}
}

func TestPIRCostScalesWithCorpus(t *testing.T) {
	small, err := workload.GenerateKG(workload.KGConfig{NumPeople: 10, NumClusters: 2, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	big, err := workload.GenerateKG(workload.KGConfig{NumPeople: 100, NumClusters: 5, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	sSmall := NewPIRServer(small.Graph)
	sBig := NewPIRServer(big.Graph)
	keySmall := small.Graph.Entity(small.People[0]).Key
	keyBig := big.Graph.Entity(big.People[0]).Key
	if _, ok := sSmall.Fetch(keySmall); !ok {
		t.Fatal("PIR fetch failed")
	}
	if _, ok := sBig.Fetch(keyBig); !ok {
		t.Fatal("PIR fetch failed")
	}
	if sBig.CostUnits <= sSmall.CostUnits {
		t.Fatalf("PIR cost must scale with corpus: small=%d big=%d", sSmall.CostUnits, sBig.CostUnits)
	}
	if sSmall.CostUnits != sSmall.NumRows() {
		t.Fatalf("one fetch must scan all rows: %d != %d", sSmall.CostUnits, sSmall.NumRows())
	}
}

func TestDPNoisyCount(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := DPNoisyCount(10, 1, 0, rng); err == nil {
		t.Fatal("epsilon=0 accepted")
	}
	// Noise magnitude decreases as epsilon grows.
	meanAbsNoise := func(eps float64) float64 {
		var sum float64
		const n = 2000
		for i := 0; i < n; i++ {
			v, err := DPNoisyCount(100, 1, eps, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum += math.Abs(v - 100)
		}
		return sum / n
	}
	loose := meanAbsNoise(0.1) // scale 10
	tight := meanAbsNoise(10)  // scale 0.1
	if tight >= loose {
		t.Fatalf("noise at eps=10 (%v) must be below eps=0.1 (%v)", tight, loose)
	}
	// Expected |Laplace(b)| = b.
	if math.Abs(loose-10) > 2.5 {
		t.Fatalf("mean |noise| at eps=0.1 = %v, want ~10", loose)
	}
}

// kgTriple is a test helper building an entity-valued triple.
func kgTriple(w *workload.World, s kg.EntityID, p kg.PredicateID, o kg.EntityID) kg.Triple {
	return kg.Triple{Subject: s, Predicate: p, Object: kg.EntityValue(o)}
}

// Property: pausing the construction pipeline at arbitrary chunk
// boundaries (with checkpoint + reopen between chunks) always produces
// the same clustering as an uninterrupted run.
func TestPauseResumeProperty(t *testing.T) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 12, RecordsPerPerson: 4, Seed: 55})
	// Reference run.
	ref, err := NewBuilder(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if _, err := ref.ProcessBatch(records, 0); err != nil {
		t.Fatal(err)
	}
	want, err := ref.CanonicalClusters(nil)
	if err != nil {
		t.Fatal(err)
	}
	f := func(chunksRaw []uint8) bool {
		dir := t.TempDir()
		remaining := len(records)
		i := 0
		for remaining > 0 {
			chunk := 1
			if i < len(chunksRaw) {
				chunk = int(chunksRaw[i])%9 + 1
			}
			i++
			b, err := NewBuilder(dir, 256) // tiny budget: spills mid-chunk too
			if err != nil {
				return false
			}
			n, err := b.ProcessBatch(records, chunk)
			if err != nil {
				b.Close()
				return false
			}
			if err := b.Close(); err != nil {
				return false
			}
			remaining -= n
			if n == 0 {
				break
			}
		}
		final, err := NewBuilder(dir, 0)
		if err != nil {
			return false
		}
		defer final.Close()
		got, err := final.CanonicalClusters(nil)
		if err != nil {
			return false
		}
		return equalStrings(want, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProcessRecord(b *testing.B) {
	records, _ := GenerateDeviceData(DeviceDataConfig{NumPersons: 1000, RecordsPerPerson: 4, Seed: 66})
	builder, err := NewBuilder(b.TempDir(), 1<<22)
	if err != nil {
		b.Fatal(err)
	}
	defer builder.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := builder.ProcessRecord(records[i%len(records)]); err != nil {
			b.Fatal(err)
		}
	}
}
