package odke

import (
	"errors"
	"testing"
	"time"

	"saga/internal/annotate"
	"saga/internal/kg"
	"saga/internal/webcorpus"
	"saga/internal/websearch"
	"saga/internal/workload"
)

// odkeHarness plants known gaps: it generates a world, builds a corpus
// reflecting the complete KG, then deletes chosen facts from the graph.
// The deleted facts are the gold answers ODKE should recover.
type odkeHarness struct {
	w         *workload.World
	index     *websearch.Index
	annotator *annotate.Annotator
	pipeline  *Pipeline
	// gold maps slot -> deleted gold value.
	gold map[[2]uint64]kg.Value
	gaps []Gap
}

func newODKEHarness(t *testing.T, fuser Fuser, wrongInfobox float64) *odkeHarness {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 60, NumClusters: 6, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	docs := webcorpus.Generate(w, webcorpus.Config{
		NumDocs: 500, InfoboxFraction: 0.6, WrongInfoboxFraction: wrongInfobox,
		NoiseFraction: 0.1, Seed: 61,
	})
	index := websearch.NewIndex(docs)
	a, err := annotate.New(w.Graph, annotate.Config{Mode: annotate.ModeContextual, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}

	h := &odkeHarness{w: w, index: index, annotator: a, gold: make(map[[2]uint64]kg.Value)}

	// Delete memberOf, bornIn and dateOfBirth facts for every 4th person.
	for i := 0; i < len(w.People); i += 4 {
		p := w.People[i]
		for _, predName := range []string{"memberOf", "bornIn", "dateOfBirth"} {
			pred := w.Preds[predName]
			facts := w.Graph.Facts(p, pred)
			if len(facts) == 0 {
				continue
			}
			w.Graph.Retract(facts[0])
			h.gold[[2]uint64{uint64(p), uint64(pred)}] = facts[0].Object
			h.gaps = append(h.gaps, Gap{Subject: p, Predicate: pred, Kind: GapMissing, Priority: 1, Source: "test"})
		}
	}
	if len(h.gaps) == 0 {
		t.Fatal("no gaps planted")
	}

	resolver := NewEntityResolver(w.Graph)
	extractors := []Extractor{NewInfoboxExtractor(w.Graph, resolver), NewTextExtractor(w.Graph)}
	pl, err := NewPipeline(w.Graph, index, a, extractors, fuser)
	if err != nil {
		t.Fatal(err)
	}
	h.pipeline = pl
	return h
}

func (h *odkeHarness) slots() [][2]uint64 {
	out := make([][2]uint64, 0, len(h.gold))
	for k := range h.gold {
		out = append(out, k)
	}
	return out
}

func TestFindGapsFromQueryLog(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 40, NumClusters: 4, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	// Delete a spouse fact... spouse is sparse; instead delete dateOfBirth
	// for a person and synthesize an unanswered query for it.
	p := w.People[0]
	pred := w.Preds["dateOfBirth"]
	for _, f := range w.Graph.Facts(p, pred) {
		w.Graph.Retract(f)
	}
	log := []workload.QueryLogEntry{
		{Subject: p, Predicate: pred, Answered: false, Text: "when was x born"},
		{Subject: p, Predicate: pred, Answered: false, Text: "x birthday"},
		{Subject: w.People[1], Predicate: pred, Answered: true, Text: "y birthday"},
	}
	gaps := FindGaps(w.Graph, log, ProfilerConfig{CoverageThreshold: 0.99})
	var found bool
	for _, g := range gaps {
		if g.Subject == p && g.Predicate == pred {
			found = true
			if g.Source != "querylog" && g.Source != "profile" {
				t.Fatalf("gap source = %q", g.Source)
			}
		}
		if g.Subject == w.People[1] && g.Predicate == pred {
			t.Fatal("answered slot flagged as gap")
		}
	}
	if !found {
		t.Fatalf("unanswered slot not flagged; gaps = %v", gaps)
	}
}

func TestFindGapsFromProfiling(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 40, NumClusters: 4, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	// Everyone has memberOf; delete it for one person. Profiling should
	// notice without any query log.
	p := w.People[5]
	pred := w.Preds["memberOf"]
	for _, f := range w.Graph.Facts(p, pred) {
		w.Graph.Retract(f)
	}
	gaps := FindGaps(w.Graph, nil, ProfilerConfig{CoverageThreshold: 0.5})
	var found bool
	for _, g := range gaps {
		if g.Subject == p && g.Predicate == pred && g.Kind == GapMissing {
			found = true
		}
	}
	if !found {
		t.Fatalf("profiling missed deleted memberOf; gaps = %v", gaps)
	}
}

func TestFindGapsStaleness(t *testing.T) {
	g := kg.NewGraph()
	e, _ := g.AddEntity(kg.Entity{Key: "p", Name: "P", Popularity: 0.9})
	e2, _ := g.AddEntity(kg.Entity{Key: "q", Name: "Q"})
	pred, _ := g.AddPredicate(kg.Predicate{Name: "netWorth", ValueKind: kg.KindInt, Functional: true})
	now := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	old := kg.Triple{Subject: e, Predicate: pred, Object: kg.IntValue(100),
		Prov: kg.Provenance{ObservedAt: now.Add(-400 * 24 * time.Hour)}}
	fresh := kg.Triple{Subject: e2, Predicate: pred, Object: kg.IntValue(200),
		Prov: kg.Provenance{ObservedAt: now.Add(-10 * 24 * time.Hour)}}
	if err := g.Assert(old); err != nil {
		t.Fatal(err)
	}
	if err := g.Assert(fresh); err != nil {
		t.Fatal(err)
	}
	gaps := FindGaps(g, nil, ProfilerConfig{StaleAfter: 365 * 24 * time.Hour, Now: now, CoverageThreshold: 0.99})
	var staleFound bool
	for _, gp := range gaps {
		if gp.Subject == e && gp.Kind == GapStale {
			staleFound = true
		}
		if gp.Subject == e2 && gp.Kind == GapStale {
			t.Fatal("fresh fact flagged stale")
		}
	}
	if !staleFound {
		t.Fatalf("old functional fact not flagged; gaps = %v", gaps)
	}
}

func TestFindGapsMaxAndOrder(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 40, NumClusters: 4, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	pred := w.Preds["memberOf"]
	for _, p := range w.People[:10] {
		for _, f := range w.Graph.Facts(p, pred) {
			w.Graph.Retract(f)
		}
	}
	gaps := FindGaps(w.Graph, nil, ProfilerConfig{MaxGaps: 5})
	if len(gaps) != 5 {
		t.Fatalf("MaxGaps ignored: %d", len(gaps))
	}
	for i := 1; i < len(gaps); i++ {
		if gaps[i].Priority > gaps[i-1].Priority {
			t.Fatal("gaps not sorted by priority")
		}
	}
}

func TestSynthesizeQueries(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 10, NumClusters: 2, Seed: 79})
	if err != nil {
		t.Fatal(err)
	}
	p := w.People[0]
	name := w.Graph.Entity(p).Name
	qs := SynthesizeQueries(w.Graph, Gap{Subject: p, Predicate: w.Preds["dateOfBirth"]})
	if len(qs) < 3 {
		t.Fatalf("dob queries = %v", qs)
	}
	for _, q := range qs {
		if !containsFold(q, name) {
			t.Fatalf("query %q does not mention entity name %q", q, name)
		}
	}
	// Unknown gap components return nil.
	if qs := SynthesizeQueries(w.Graph, Gap{Subject: 1 << 30, Predicate: w.Preds["dateOfBirth"]}); qs != nil {
		t.Fatalf("unknown subject queries = %v", qs)
	}
}

func containsFold(haystack, needle string) bool {
	h := []byte(haystack)
	n := []byte(needle)
	lower := func(b byte) byte {
		if 'A' <= b && b <= 'Z' {
			return b + 32
		}
		return b
	}
outer:
	for i := 0; i+len(n) <= len(h); i++ {
		for j := range n {
			if lower(h[i+j]) != lower(n[j]) {
				continue outer
			}
		}
		return true
	}
	return false
}

func TestEntityResolver(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 20, NumClusters: 2, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	r := NewEntityResolver(w.Graph)
	teamName := w.Graph.Entity(w.Teams[0]).Name
	teamType, _ := w.Graph.Ontology().TypeID("Team")
	id, ok := r.Resolve(teamName, teamType)
	if !ok || id != w.Teams[0] {
		t.Fatalf("Resolve(%q) = %v,%v", teamName, id, ok)
	}
	// Wrong type fails.
	cityType, _ := w.Graph.Ontology().TypeID("City")
	if _, ok := r.Resolve(teamName, cityType); ok {
		t.Fatal("team resolved as city")
	}
	if _, ok := r.Resolve("no such entity name", kg.NoType); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestODKEPipelineFillsGaps(t *testing.T) {
	h := newODKEHarness(t, MajorityVoteFuser{}, 0)
	before := Coverage(h.w.Graph, h.slots())
	if before != 0 {
		t.Fatalf("pre-run coverage = %v, want 0 (facts deleted)", before)
	}
	rep, err := h.pipeline.Run(h.gaps)
	if err != nil {
		t.Fatal(err)
	}
	after := Coverage(h.w.Graph, h.slots())
	if after <= before {
		t.Fatalf("coverage did not improve: %v -> %v", before, after)
	}
	if rep.Filled == 0 || rep.FactsAdded == 0 {
		t.Fatalf("report = %+v", rep)
	}
	// Measure correctness of filled slots against gold.
	var correct, filled int
	for _, out := range rep.Outcomes {
		if !out.Filled {
			continue
		}
		filled++
		gold := h.gold[[2]uint64{uint64(out.Gap.Subject), uint64(out.Gap.Predicate)}]
		if out.Fused.Value.Equal(gold) {
			correct++
		}
	}
	if filled == 0 {
		t.Fatal("nothing filled")
	}
	prec := float64(correct) / float64(filled)
	if prec < 0.7 {
		t.Fatalf("extraction precision = %v, want > 0.7", prec)
	}
}

// fuserPrecision runs the pipeline with the given fuser on corrupted
// infoboxes and returns (precision, filled).
func fuserPrecision(t *testing.T, fuser Fuser) (float64, int) {
	t.Helper()
	h := newODKEHarness(t, fuser, 0.5) // heavy corruption stresses veracity
	rep, err := h.pipeline.Run(h.gaps)
	if err != nil {
		t.Fatal(err)
	}
	var correct, filled int
	for _, out := range rep.Outcomes {
		if !out.Filled {
			continue
		}
		filled++
		gold := h.gold[[2]uint64{uint64(out.Gap.Subject), uint64(out.Gap.Predicate)}]
		if out.Fused.Value.Equal(gold) {
			correct++
		}
	}
	if filled == 0 {
		return 0, 0
	}
	return float64(correct) / float64(filled), filled
}

func TestFusionCorroborationBeatsBestExtractor(t *testing.T) {
	majority, nm := fuserPrecision(t, MajorityVoteFuser{})
	best, nb := fuserPrecision(t, BestExtractorFuser{})
	if nm == 0 || nb == 0 {
		t.Fatal("fusers filled nothing")
	}
	// Under corrupted high-confidence infoboxes, trusting the single most
	// confident extractor must not beat corroboration.
	if best > majority+0.05 {
		t.Fatalf("best-extractor (%v) beats majority corroboration (%v); veracity machinery broken", best, majority)
	}
}

func TestTrainedFuserQuality(t *testing.T) {
	// Train on one harness's candidates, evaluate on a fresh run.
	h := newODKEHarness(t, MajorityVoteFuser{}, 0.5)
	var examples []TrainingExample
	for _, gap := range h.gaps {
		cands, _, _ := h.pipeline.CollectCandidates(gap)
		gold := h.gold[[2]uint64{uint64(gap.Subject), uint64(gap.Predicate)}]
		for _, grp := range GroupCandidates(cands) {
			examples = append(examples, TrainingExample{
				Features: grp.Features(len(cands)),
				Correct:  grp.Value.Equal(gold),
			})
		}
	}
	if len(examples) < 10 {
		t.Fatalf("too few training examples: %d", len(examples))
	}
	fuser, err := TrainLogisticFuser(examples, 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	prec, filled := fuserPrecision(t, fuser)
	if filled == 0 {
		t.Fatal("trained fuser filled nothing")
	}
	if prec < 0.7 {
		t.Fatalf("trained fuser precision = %v", prec)
	}
	bestPrec, _ := fuserPrecision(t, BestExtractorFuser{})
	if prec < bestPrec-0.05 {
		t.Fatalf("trained fuser (%v) worse than best-extractor baseline (%v)", prec, bestPrec)
	}
}

func TestTrainLogisticFuserErrors(t *testing.T) {
	if _, err := TrainLogisticFuser(nil, 10, 0.1); err == nil {
		t.Fatal("empty training set accepted")
	}
}

// TestFig6Scenario reproduces the paper's worked example: the missing
// date of birth of one "Michelle Williams" (the singer) must be resolved
// to 1979-07-23 even though a high-confidence source carries the actress's
// 1980-09-09 — corroboration across sources wins.
func TestFig6Scenario(t *testing.T) {
	g := kg.NewGraph()
	o := g.Ontology()
	thing, _ := o.AddType("Thing", kg.NoType)
	person, _ := o.AddType("Person", thing)
	singer, _ := g.AddEntity(kg.Entity{
		Key: "mw-singer", Name: "Michelle Williams",
		Aliases:     []string{"Michelle Williams"},
		Description: "Michelle Williams, American singer, member of Destiny's Child",
		Types:       []kg.TypeID{person}, Popularity: 0.6,
	})
	_, _ = g.AddEntity(kg.Entity{
		Key: "mw-actress", Name: "Michelle Williams",
		Aliases:     []string{"Michelle Williams"},
		Description: "Michelle Williams, American actress, Dawson's Creek",
		Types:       []kg.TypeID{person}, Popularity: 0.8,
	})
	dobPred, _ := g.AddPredicate(kg.Predicate{Name: "dateOfBirth", ValueKind: kg.KindTime, Functional: true})

	docs := []*webcorpus.Document{
		{
			ID: "d1", URL: "u1", Title: "Michelle Williams singer biography",
			Text:    "Michelle Williams the singer of Destiny's Child was born on July 23, 1979.",
			Quality: 0.8, Version: 1,
			Infobox:        map[string]string{"dateOfBirth": "1979-07-23"},
			InfoboxSubject: singer,
		},
		{
			ID: "d2", URL: "u2", Title: "Michelle Williams discography",
			Text:    "Singer Michelle Williams, born 1979, released several gospel albums.",
			Quality: 0.7, Version: 1,
			Infobox:        map[string]string{"dateOfBirth": "1979-07-23"},
			InfoboxSubject: singer,
		},
		{
			// A confused fan page attributing the actress's birthday to
			// the singer — the Fig 6 conflict.
			ID: "d3", URL: "u3", Title: "Michelle Williams facts",
			Text:    "Michelle Williams was born on September 9, 1980 in Kalispell.",
			Quality: 0.4, Version: 1,
			Infobox:        map[string]string{"dateOfBirth": "1980-09-09"},
			InfoboxSubject: singer,
		},
	}
	index := websearch.NewIndex(docs)
	a, err := annotate.New(g, annotate.Config{Mode: annotate.ModeContextual, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	resolver := NewEntityResolver(g)
	pl, err := NewPipeline(g, index, a, []Extractor{NewInfoboxExtractor(g, resolver), NewTextExtractor(g)}, MajorityVoteFuser{})
	if err != nil {
		t.Fatal(err)
	}
	gap := Gap{Subject: singer, Predicate: dobPred, Kind: GapMissing, Priority: 1}
	rep, err := pl.Run([]Gap{gap})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filled != 1 {
		t.Fatalf("report = %+v", rep)
	}
	facts := g.Facts(singer, dobPred)
	if len(facts) != 1 {
		t.Fatalf("dob facts = %v", facts)
	}
	want := time.Date(1979, 7, 23, 0, 0, 0, 0, time.UTC)
	if !facts[0].Object.TS.Equal(want) {
		t.Fatalf("fused dob = %v, want %v (the singer's, not the actress's)", facts[0].Object.TS, want)
	}
}

func TestStaleGapReplacesOldValue(t *testing.T) {
	h := newODKEHarness(t, MajorityVoteFuser{}, 0)
	// Pick a person whose memberOf is intact and mark it stale with a
	// deliberately wrong old value.
	p := h.w.People[1]
	pred := h.w.Preds["memberOf"]
	old := h.w.Graph.Facts(p, pred)
	if len(old) == 0 {
		t.Skip("person has no memberOf")
	}
	wrongTeam := h.w.Teams[(h.w.Cluster[p]+1)%len(h.w.Teams)]
	h.w.Graph.Retract(old[0])
	stale := kg.Triple{Subject: p, Predicate: pred, Object: kg.EntityValue(wrongTeam),
		Prov: kg.Provenance{ObservedAt: time.Now().Add(-1000 * time.Hour)}}
	if err := h.w.Graph.Assert(stale); err != nil {
		t.Fatal(err)
	}
	rep, err := h.pipeline.Run([]Gap{{Subject: p, Predicate: pred, Kind: GapStale, Priority: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Filled != 1 {
		t.Skipf("stale gap not filled (no evidence in corpus): %+v", rep)
	}
	facts := h.w.Graph.Facts(p, pred)
	if len(facts) != 1 {
		t.Fatalf("facts after stale replacement = %v", facts)
	}
	if facts[0].Object.Entity == wrongTeam {
		t.Fatal("stale value survived")
	}
	if facts[0].Object.Entity != h.w.Teams[h.w.Cluster[p]] {
		t.Fatalf("replaced with %v, want cluster team", facts[0].Object.Entity)
	}
}

func TestGroupCandidatesAndFeatures(t *testing.T) {
	team := kg.EntityValue(7)
	other := kg.EntityValue(9)
	cands := []CandidateFact{
		{Value: team, Extractor: "infobox", Confidence: 0.9, DocID: "a", DocQuality: 0.8},
		{Value: team, Extractor: "text", Confidence: 0.5, DocID: "b", DocQuality: 0.6},
		{Value: other, Extractor: "text", Confidence: 0.4, DocID: "c", DocQuality: 0.2},
	}
	groups := GroupCandidates(cands)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	if !groups[0].Value.Equal(team) {
		t.Fatal("groups not sorted by support")
	}
	f := groups[0].Features(3)
	if f.Support != 2 || f.MaxConfidence != 0.9 || f.HasInfobox != 1 || f.HasText != 1 {
		t.Fatalf("features = %+v", f)
	}
	if f.AgreementRatio < 0.66 || f.AgreementRatio > 0.67 {
		t.Fatalf("agreement = %v", f.AgreementRatio)
	}
	// Empty input.
	if _, ok := Fuse(MajorityVoteFuser{}, nil); ok {
		t.Fatal("Fuse on empty candidates succeeded")
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := NewPipeline(nil, nil, nil, nil, nil); err == nil {
		t.Fatal("nil components accepted")
	}
}

func TestRunDurabilityBarrier(t *testing.T) {
	h := newODKEHarness(t, MajorityVoteFuser{}, 0)
	var barrierWM uint64
	var calls int
	h.pipeline.DurabilityBarrier = func(wm uint64) error {
		calls++
		barrierWM = wm
		return nil
	}
	if _, err := h.pipeline.Run(h.gaps); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("barrier invoked %d times, want 1", calls)
	}
	// The barrier fires after the final flush: the watermark it sees is
	// the graph's watermark at Run's return.
	if got := h.w.Graph.LastSeq(); barrierWM != got {
		t.Fatalf("barrier saw watermark %d, graph is at %d", barrierWM, got)
	}

	// A failing barrier fails the run.
	h.pipeline.DurabilityBarrier = func(uint64) error {
		return errBarrier
	}
	if _, err := h.pipeline.Run(h.gaps); err == nil {
		t.Fatal("barrier error did not fail the run")
	}
}

var errBarrier = errors.New("sync failed")
