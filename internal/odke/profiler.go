// Package odke implements Open Domain Knowledge Extraction (§4, Figs 5–6
// of the paper): profiling the KG for important missing and stale facts,
// synthesizing Web-search queries for each gap, extracting candidate
// facts from retrieved documents with heterogeneous extractors (rule-based
// over structured infoboxes, pattern-based over annotated text), and
// corroborating candidates with a trained fusion model before writing the
// winners back into the graph.
package odke

import (
	"sort"
	"time"

	"saga/internal/kg"
	"saga/internal/workload"
)

// GapKind classifies a knowledge gap.
type GapKind uint8

const (
	// GapMissing marks a fact slot with no value in the KG.
	GapMissing GapKind = iota + 1
	// GapStale marks a functional slot whose value is old or conflicted.
	GapStale
)

func (k GapKind) String() string {
	switch k {
	case GapMissing:
		return "missing"
	case GapStale:
		return "stale"
	default:
		return "unknown"
	}
}

// Gap is one identified coverage or freshness issue: the (subject,
// predicate) slot ODKE should fill, with a priority reflecting how much
// it matters (popular entities and frequently queried slots first).
type Gap struct {
	Subject   kg.EntityID
	Predicate kg.PredicateID
	Kind      GapKind
	// Priority orders gaps; higher = more important.
	Priority float64
	// Source records which detection path found the gap: "querylog",
	// "profile", or "trend".
	Source string
}

// ProfilerConfig configures FindGaps.
type ProfilerConfig struct {
	// CoverageThreshold: a predicate is "expected" for a type when at
	// least this fraction of same-typed entities carry it; entities
	// lacking an expected predicate are gaps. Default 0.5.
	CoverageThreshold float64
	// StaleAfter marks functional facts older than this as stale.
	// Zero disables staleness detection.
	StaleAfter time.Duration
	// Now anchors staleness checks; zero means time.Now().
	Now time.Time
	// MaxGaps caps the output (highest priority first). Zero = no cap.
	MaxGaps int
}

// FindGaps runs the paper's three detection paths: reactive query-log
// analysis (unanswered queries), proactive KG profiling (type-level
// coverage), and staleness checks on functional predicates.
func FindGaps(g *kg.Graph, queryLog []workload.QueryLogEntry, cfg ProfilerConfig) []Gap {
	if cfg.CoverageThreshold <= 0 || cfg.CoverageThreshold > 1 {
		cfg.CoverageThreshold = 0.5
	}
	now := cfg.Now
	if now.IsZero() {
		now = time.Now()
	}
	seen := make(map[[2]uint64]bool)
	var gaps []Gap
	addGap := func(gp Gap) {
		key := [2]uint64{uint64(gp.Subject), uint64(gp.Predicate)}
		if seen[key] {
			return
		}
		seen[key] = true
		gaps = append(gaps, gp)
	}

	// Path 1 — reactive: unanswered queries are direct evidence of
	// missing facts, weighted by how often they were asked.
	unansweredCount := make(map[[2]uint64]int)
	for _, q := range queryLog {
		if q.Answered {
			continue
		}
		unansweredCount[[2]uint64{uint64(q.Subject), uint64(q.Predicate)}]++
	}
	for key, n := range unansweredCount {
		subj := kg.EntityID(key[0])
		ent := g.Entity(subj)
		pop := 0.0
		if ent != nil {
			pop = ent.Popularity
		}
		addGap(Gap{
			Subject:   subj,
			Predicate: kg.PredicateID(key[1]),
			Kind:      GapMissing,
			Priority:  float64(n) + pop,
			Source:    "querylog",
		})
	}

	// Path 2 — proactive profiling: per exact entity type, compute
	// predicate coverage; flag entities missing expected predicates.
	type typeStats struct {
		entities []kg.EntityID
		predHas  map[kg.PredicateID]int
	}
	byType := make(map[kg.TypeID]*typeStats)
	g.Entities(func(e *kg.Entity) bool {
		for _, t := range e.Types {
			ts := byType[t]
			if ts == nil {
				ts = &typeStats{predHas: make(map[kg.PredicateID]int)}
				byType[t] = ts
			}
			ts.entities = append(ts.entities, e.ID)
		}
		return true
	})
	predsSeen := make(map[kg.PredicateID]bool)
	for _, ts := range byType {
		for _, id := range ts.entities {
			clear(predsSeen)
			g.OutgoingFunc(id, func(tr kg.Triple) bool {
				if !predsSeen[tr.Predicate] {
					predsSeen[tr.Predicate] = true
					ts.predHas[tr.Predicate]++
				}
				return true
			})
		}
	}
	for _, ts := range byType {
		n := len(ts.entities)
		if n < 2 {
			continue
		}
		for pred, have := range ts.predHas {
			if float64(have)/float64(n) < cfg.CoverageThreshold {
				continue // not an expected predicate for this type
			}
			for _, id := range ts.entities {
				if g.HasFacts(id, pred) {
					continue
				}
				ent := g.Entity(id)
				pop := 0.0
				if ent != nil {
					pop = ent.Popularity
				}
				addGap(Gap{
					Subject:   id,
					Predicate: pred,
					Kind:      GapMissing,
					Priority:  pop,
					Source:    "profile",
				})
			}
		}
	}

	// Path 3 — staleness: functional predicates whose newest observation
	// is too old (someone's marital status or net worth "may change over
	// time", §4).
	if cfg.StaleAfter > 0 {
		g.Entities(func(e *kg.Entity) bool {
			// Stream the outgoing facts instead of materializing the full
			// per-entity slice: the profiler only inspects each triple's
			// predicate record and provenance timestamp.
			for tr := range g.OutgoingSeq(e.ID) {
				p := g.Predicate(tr.Predicate)
				if p == nil || !p.Functional {
					continue
				}
				if !tr.Prov.ObservedAt.IsZero() && now.Sub(tr.Prov.ObservedAt) > cfg.StaleAfter {
					addGap(Gap{
						Subject:   e.ID,
						Predicate: tr.Predicate,
						Kind:      GapStale,
						Priority:  e.Popularity,
						Source:    "profile",
					})
				}
			}
			return true
		})
	}

	sort.Slice(gaps, func(i, j int) bool {
		if gaps[i].Priority != gaps[j].Priority {
			return gaps[i].Priority > gaps[j].Priority
		}
		if gaps[i].Subject != gaps[j].Subject {
			return gaps[i].Subject < gaps[j].Subject
		}
		return gaps[i].Predicate < gaps[j].Predicate
	})
	if cfg.MaxGaps > 0 && len(gaps) > cfg.MaxGaps {
		gaps = gaps[:cfg.MaxGaps]
	}
	return gaps
}
