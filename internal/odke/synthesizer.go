package odke

import (
	"fmt"

	"saga/internal/kg"
)

// SynthesizeQueries turns a knowledge gap into multiple Web-search query
// strings, following Fig 6 ②: the missing fact ⟨Michelle Williams,
// date_of_birth, ?⟩ becomes "michelle williams date of birth", "michelle
// williams born", etc. Multiple phrasings raise the chance of retrieving
// a page that states the fact.
func SynthesizeQueries(g *kg.Graph, gap Gap) []string {
	ent := g.Entity(gap.Subject)
	pred := g.Predicate(gap.Predicate)
	if ent == nil || pred == nil {
		return nil
	}
	name := ent.Name
	var out []string
	add := func(q string) { out = append(out, q) }

	switch pred.Name {
	case "dateOfBirth":
		add(fmt.Sprintf("%s date of birth", name))
		add(fmt.Sprintf("%s born", name))
		add(fmt.Sprintf("when was %s born", name))
	case "memberOf":
		add(fmt.Sprintf("%s team", name))
		add(fmt.Sprintf("%s plays for", name))
		add(fmt.Sprintf("%s member of", name))
	case "bornIn":
		add(fmt.Sprintf("%s birthplace", name))
		add(fmt.Sprintf("%s born in", name))
		add(fmt.Sprintf("%s from", name))
	case "occupation":
		add(fmt.Sprintf("%s occupation", name))
		add(fmt.Sprintf("%s profession", name))
		add(fmt.Sprintf("what does %s do", name))
	case "award":
		add(fmt.Sprintf("%s award", name))
		add(fmt.Sprintf("%s prize won", name))
	case "spouse":
		add(fmt.Sprintf("%s spouse", name))
		add(fmt.Sprintf("%s married to", name))
	default:
		add(fmt.Sprintf("%s %s", name, pred.Name))
		add(name)
	}
	// A bare-name query is always a useful fallback: profile pages often
	// state many facts at once.
	if len(out) > 0 && out[len(out)-1] != name {
		add(name)
	}
	return out
}
