package odke

import (
	"errors"
	"math"
	"sort"

	"saga/internal/kg"
)

// Fusion (Fig 6 ⑤): candidates for one fact slot are grouped by value and
// each distinct value is scored from corroboration features — "a
// combination of evidences such as the number of support, extractor type
// and confidence, and quality of the source page" (§4). A trained
// logistic-regression fuser is the primary model; majority vote and
// best-single-extractor are the baselines experiment E7 compares against.

// ValueGroup aggregates all candidates proposing the same value for one
// (subject, predicate) slot.
type ValueGroup struct {
	Value      kg.Value
	Candidates []CandidateFact
}

// FusionFeatures are the per-value corroboration features.
type FusionFeatures struct {
	// Support is the number of distinct documents proposing the value.
	Support float64
	// MaxConfidence is the highest extractor confidence among supporters.
	MaxConfidence float64
	// MeanQuality is the mean source-page quality.
	MeanQuality float64
	// HasInfobox / HasText flag extractor families among supporters.
	HasInfobox float64
	HasText    float64
	// AgreementRatio is this value's support over the slot's total
	// candidate count.
	AgreementRatio float64
}

func (f FusionFeatures) vector() []float64 {
	return []float64{f.Support, f.MaxConfidence, f.MeanQuality, f.HasInfobox, f.HasText, f.AgreementRatio}
}

const numFusionFeatures = 6

// GroupCandidates buckets candidates by value identity (the comparable
// kg.ValueKey, so grouping allocates no per-candidate key strings) and
// computes each group's features. Groups are returned sorted by
// descending support for determinism.
func GroupCandidates(cands []CandidateFact) []ValueGroup {
	byKey := make(map[kg.ValueKey]*ValueGroup)
	var order []kg.ValueKey
	for _, c := range cands {
		k := c.Value.MapKey()
		g := byKey[k]
		if g == nil {
			g = &ValueGroup{Value: c.Value}
			byKey[k] = g
			order = append(order, k)
		}
		g.Candidates = append(g.Candidates, c)
	}
	out := make([]ValueGroup, 0, len(byKey))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	// Tie-break on the comparable ValueKey, not the rendered Key() string:
	// the string render is ambiguous for floats (every NaN payload prints
	// "NaN", ±0.0 print alike) and allocates twice per comparison.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Candidates) != len(out[j].Candidates) {
			return len(out[i].Candidates) > len(out[j].Candidates)
		}
		return out[i].Value.MapKey().Compare(out[j].Value.MapKey()) < 0
	})
	return out
}

// Features computes the corroboration features of a group given the
// slot's total candidate count.
func (g ValueGroup) Features(totalCandidates int) FusionFeatures {
	var f FusionFeatures
	docs := make(map[string]bool)
	var qualSum float64
	for _, c := range g.Candidates {
		docs[c.DocID] = true
		if c.Confidence > f.MaxConfidence {
			f.MaxConfidence = c.Confidence
		}
		qualSum += c.DocQuality
		switch c.Extractor {
		case "infobox":
			f.HasInfobox = 1
		case "text":
			f.HasText = 1
		}
	}
	f.Support = float64(len(docs))
	if len(g.Candidates) > 0 {
		f.MeanQuality = qualSum / float64(len(g.Candidates))
	}
	if totalCandidates > 0 {
		f.AgreementRatio = float64(len(g.Candidates)) / float64(totalCandidates)
	}
	return f
}

// Fuser scores value groups. Implementations: *LogisticFuser (trained),
// MajorityVoteFuser and BestExtractorFuser (baselines).
type Fuser interface {
	Name() string
	// Score returns the plausibility of the group being the correct value.
	Score(g ValueGroup, totalCandidates int) float64
}

// FuseResult is the chosen value for one slot.
type FuseResult struct {
	Value kg.Value
	Score float64
	Group ValueGroup
}

// Fuse picks the best-scoring value group, or false when there are no
// candidates.
func Fuse(f Fuser, cands []CandidateFact) (FuseResult, bool) {
	groups := GroupCandidates(cands)
	if len(groups) == 0 {
		return FuseResult{}, false
	}
	best := FuseResult{Score: math.Inf(-1)}
	for _, g := range groups {
		s := f.Score(g, len(cands))
		if s > best.Score {
			best = FuseResult{Value: g.Value, Score: s, Group: g}
		}
	}
	return best, true
}

// LogisticFuser is a logistic-regression corroboration model over
// FusionFeatures, trained with gradient descent on labelled value groups.
type LogisticFuser struct {
	weights []float64
	bias    float64
}

// Name implements Fuser.
func (l *LogisticFuser) Name() string { return "logistic" }

// Score implements Fuser.
func (l *LogisticFuser) Score(g ValueGroup, total int) float64 {
	return l.prob(g.Features(total).vector())
}

func (l *LogisticFuser) prob(x []float64) float64 {
	z := l.bias
	for i, w := range l.weights {
		z += w * x[i]
	}
	return 1 / (1 + math.Exp(-z))
}

// TrainingExample is one labelled value group for fuser training.
type TrainingExample struct {
	Features FusionFeatures
	// Correct marks whether the group's value matched the gold fact.
	Correct bool
}

// TrainLogisticFuser fits the model with full-batch gradient descent.
func TrainLogisticFuser(examples []TrainingExample, epochs int, lr float64) (*LogisticFuser, error) {
	if len(examples) == 0 {
		return nil, errors.New("odke: no fusion training examples")
	}
	if epochs <= 0 {
		epochs = 200
	}
	if lr <= 0 {
		lr = 0.5
	}
	l := &LogisticFuser{weights: make([]float64, numFusionFeatures)}
	n := float64(len(examples))
	for e := 0; e < epochs; e++ {
		grad := make([]float64, numFusionFeatures)
		var gradB float64
		for _, ex := range examples {
			x := ex.Features.vector()
			p := l.prob(x)
			y := 0.0
			if ex.Correct {
				y = 1
			}
			d := p - y
			for i := range grad {
				grad[i] += d * x[i]
			}
			gradB += d
		}
		for i := range l.weights {
			l.weights[i] -= lr * grad[i] / n
		}
		l.bias -= lr * gradB / n
	}
	return l, nil
}

// MajorityVoteFuser scores a group purely by its share of the vote.
type MajorityVoteFuser struct{}

// Name implements Fuser.
func (MajorityVoteFuser) Name() string { return "majority" }

// Score implements Fuser.
func (MajorityVoteFuser) Score(g ValueGroup, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(len(g.Candidates)) / float64(total)
}

// BestExtractorFuser trusts the single highest-confidence candidate,
// ignoring corroboration — the "one good extractor is enough" strawman.
type BestExtractorFuser struct{}

// Name implements Fuser.
func (BestExtractorFuser) Name() string { return "best-extractor" }

// Score implements Fuser.
func (BestExtractorFuser) Score(g ValueGroup, total int) float64 {
	var best float64
	for _, c := range g.Candidates {
		if c.Confidence > best {
			best = c.Confidence
		}
	}
	return best
}
