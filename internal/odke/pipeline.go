package odke

import (
	"errors"
	"fmt"
	"time"

	"saga/internal/annotate"
	"saga/internal/kg"
	"saga/internal/websearch"
)

// Pipeline wires the full ODKE loop of Fig 5: gap → query synthesis →
// Web search → per-document extraction (over semantic annotations) →
// corroborative fusion → KG write-back.
type Pipeline struct {
	graph      *kg.Graph
	search     *websearch.Index
	annotator  *annotate.Annotator
	extractors []Extractor
	fuser      Fuser

	// TopKDocs is how many search hits each query contributes; default 5.
	TopKDocs int
	// MinScore gates write-back; fused values scoring below it are
	// dropped. Default 0.5.
	MinScore float64
	// DurabilityBarrier, when set, is invoked once per Run after the
	// final batch has been flushed and indexes synced, with the graph's
	// mutation watermark at that point. The durability layer wires it to
	// wal.Manager.SyncToWatermark so a completed extraction run is
	// fsync-acknowledged before Run returns; a barrier error fails the
	// run (the facts are in memory but not yet durable).
	DurabilityBarrier func(watermark uint64) error
}

// NewPipeline constructs the ODKE pipeline.
func NewPipeline(g *kg.Graph, search *websearch.Index, annotator *annotate.Annotator, extractors []Extractor, fuser Fuser) (*Pipeline, error) {
	if g == nil || search == nil || annotator == nil || fuser == nil {
		return nil, errors.New("odke: nil pipeline component")
	}
	if len(extractors) == 0 {
		return nil, errors.New("odke: no extractors")
	}
	return &Pipeline{
		graph:      g,
		search:     search,
		annotator:  annotator,
		extractors: extractors,
		fuser:      fuser,
		TopKDocs:   5,
		MinScore:   0.5,
	}, nil
}

// GapOutcome records what happened to one gap.
type GapOutcome struct {
	Gap Gap
	// Queries issued for the gap.
	Queries []string
	// DocsRetrieved is the number of distinct documents examined.
	DocsRetrieved int
	// Candidates collected across extractors and documents.
	Candidates []CandidateFact
	// Fused is the winning value (valid when Filled).
	Fused FuseResult
	// Filled reports whether a fact was written to the KG.
	Filled bool
}

// Report summarizes a pipeline run.
type Report struct {
	Gaps     int
	Filled   int
	Outcomes []GapOutcome
	// FactsAdded is the number of triples asserted (≤ Filled only when
	// dedup drops repeats).
	FactsAdded int
}

// CollectCandidates runs retrieval and extraction for one gap without
// fusing or writing — exposed for fusion-training harnesses.
func (p *Pipeline) CollectCandidates(gap Gap) ([]CandidateFact, []string, int) {
	queries := SynthesizeQueries(p.graph, gap)
	seenDocs := make(map[string]bool)
	var cands []CandidateFact
	for _, q := range queries {
		for _, hit := range p.search.Search(q, p.TopKDocs) {
			if seenDocs[hit.Doc.ID] {
				continue
			}
			seenDocs[hit.Doc.ID] = true
			anns := p.annotator.Annotate(hit.Doc.Text)
			for _, x := range p.extractors {
				cands = append(cands, x.Extract(hit.Doc, anns, gap)...)
			}
		}
	}
	return cands, queries, len(seenDocs)
}

// Run executes the pipeline over the gaps, asserting fused facts into the
// graph. Stale gaps get their old value retracted before the new value is
// asserted.
//
// Fused write-backs are accumulated and flushed through the graph's batch
// ingestion path instead of asserted one lock round-trip at a time.
// Retrieval and extraction never read the gap slot's current facts, so
// deferring the asserts is observationally equivalent within a run — with
// one exception: a stale gap reads (and retracts) the slot's facts, so
// any pending writes are flushed first to preserve read-your-writes
// ordering when a run both fills and refreshes the same slot. (That read
// is a subject-bound spo lookup, which the graph maintains synchronously;
// the batch path may still owe deferred predicate-major index deltas
// after AssertBatch returns.)
//
// Flush ordering: after the final batch lands, Run drains the graph's
// buffered index deltas (Graph.SyncIndexes) so a finished run leaves no
// deferred maintenance behind — the profiler's stats pass and the
// planner's selectivity counters that typically follow a run read the
// predicate-major index on its lock-free fast path instead of paying the
// first-reader flush.
func (p *Pipeline) Run(gaps []Gap) (Report, error) {
	rep := Report{Gaps: len(gaps)}
	var pending []kg.Triple
	flush := func() error {
		added, err := p.graph.AssertBatch(pending)
		rep.FactsAdded += added
		pending = pending[:0]
		return err
	}
	for _, gap := range gaps {
		cands, queries, nDocs := p.CollectCandidates(gap)
		out := GapOutcome{Gap: gap, Queries: queries, DocsRetrieved: nDocs, Candidates: cands}
		fused, ok := Fuse(p.fuser, cands)
		if ok && fused.Score >= p.MinScore {
			out.Fused = fused
			out.Filled = true
			if gap.Kind == GapStale {
				if err := flush(); err != nil {
					return rep, fmt.Errorf("odke: assert fused facts: %w", err)
				}
				for _, old := range p.graph.Facts(gap.Subject, gap.Predicate) {
					p.graph.Retract(old)
				}
			}
			pending = append(pending, kg.Triple{
				Subject:   gap.Subject,
				Predicate: gap.Predicate,
				Object:    fused.Value,
				Prov: kg.Provenance{
					Source:        "odke:" + p.fuser.Name(),
					Confidence:    fused.Score,
					ObservedAt:    time.Now(),
					SourceQuality: fused.Group.Features(len(cands)).MeanQuality,
				},
			})
			rep.Filled++
		}
		rep.Outcomes = append(rep.Outcomes, out)
	}
	if err := flush(); err != nil {
		return rep, fmt.Errorf("odke: assert fused facts: %w", err)
	}
	p.graph.SyncIndexes()
	if p.DurabilityBarrier != nil {
		if err := p.DurabilityBarrier(p.graph.LastSeq()); err != nil {
			return rep, fmt.Errorf("odke: durability barrier: %w", err)
		}
	}
	return rep, nil
}

// Coverage computes, over a set of (subject, predicate) slots, the
// fraction that currently have at least one fact — the before/after
// metric of experiment E7.
func Coverage(g *kg.Graph, slots [][2]uint64) float64 {
	if len(slots) == 0 {
		return 0
	}
	var have int
	for _, s := range slots {
		if g.HasFacts(kg.EntityID(s[0]), kg.PredicateID(s[1])) {
			have++
		}
	}
	return float64(have) / float64(len(slots))
}
