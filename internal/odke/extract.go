package odke

import (
	"time"

	"saga/internal/annotate"
	"saga/internal/kg"
	"saga/internal/textutil"
	"saga/internal/webcorpus"
)

// CandidateFact is one extracted fact hypothesis with the evidence
// features the corroboration model consumes (Fig 6 ④: "candidate facts
// extracted from the documents").
type CandidateFact struct {
	Subject   kg.EntityID
	Predicate kg.PredicateID
	Value     kg.Value
	// Extractor names the producing extractor ("infobox" or "text").
	Extractor string
	// Confidence is the extractor's self-reported confidence.
	Confidence float64
	// DocID and DocQuality identify and rate the evidence page.
	DocID      string
	DocQuality float64
	// ObservedAt is the extraction time.
	ObservedAt time.Time
}

// Extractor pulls candidate facts for a gap out of one document. The
// paper's design point is heterogeneity: "different extractors to handle
// different types of data sources with different types of models" (§4).
type Extractor interface {
	Name() string
	Extract(doc *webcorpus.Document, anns []annotate.Annotation, gap Gap) []CandidateFact
}

// EntityResolver resolves a surface name to a KG entity of a given type.
// Extractors need it to turn extracted strings ("Toronto Raptors") into
// entity references.
type EntityResolver struct {
	g      *kg.Graph
	byName map[string][]kg.EntityID
}

// NewEntityResolver indexes the graph's entity names and aliases.
func NewEntityResolver(g *kg.Graph) *EntityResolver {
	r := &EntityResolver{g: g, byName: make(map[string][]kg.EntityID)}
	g.Entities(func(e *kg.Entity) bool {
		names := append([]string{e.Name}, e.Aliases...)
		seen := make(map[string]bool)
		for _, n := range names {
			norm := textutil.NormalizePhrase(n)
			if norm == "" || seen[norm] {
				continue
			}
			seen[norm] = true
			r.byName[norm] = append(r.byName[norm], e.ID)
		}
		return true
	})
	return r
}

// Resolve returns the unique entity of (or inheriting) wantType bearing
// the name, or false when absent or ambiguous within the type.
func (r *EntityResolver) Resolve(name string, wantType kg.TypeID) (kg.EntityID, bool) {
	cands := r.byName[textutil.NormalizePhrase(name)]
	var match kg.EntityID
	var n int
	for _, id := range cands {
		e := r.g.Entity(id)
		if e == nil {
			continue
		}
		if wantType != kg.NoType {
			ok := false
			for _, t := range e.Types {
				if r.g.Ontology().IsA(t, wantType) {
					ok = true
					break
				}
			}
			if !ok {
				continue
			}
		}
		match = id
		n++
	}
	if n != 1 {
		return kg.NoEntity, false
	}
	return match, true
}

// InfoboxExtractor is the rule-based extractor over schema.org-style
// structured payloads: high precision when the page's infobox subject
// matches the gap subject, but blind to free text.
type InfoboxExtractor struct {
	resolver *EntityResolver
	// typeFor maps predicate name -> required object entity type name.
	g *kg.Graph
}

// NewInfoboxExtractor builds the rule-based extractor.
func NewInfoboxExtractor(g *kg.Graph, resolver *EntityResolver) *InfoboxExtractor {
	return &InfoboxExtractor{resolver: resolver, g: g}
}

// Name implements Extractor.
func (x *InfoboxExtractor) Name() string { return "infobox" }

// Extract implements Extractor.
func (x *InfoboxExtractor) Extract(doc *webcorpus.Document, _ []annotate.Annotation, gap Gap) []CandidateFact {
	if doc.Infobox == nil || doc.InfoboxSubject != gap.Subject {
		return nil
	}
	pred := x.g.Predicate(gap.Predicate)
	if pred == nil {
		return nil
	}
	raw, ok := doc.Infobox[pred.Name]
	if !ok {
		return nil
	}
	val, ok := x.parseValue(pred, raw)
	if !ok {
		return nil
	}
	return []CandidateFact{{
		Subject:    gap.Subject,
		Predicate:  gap.Predicate,
		Value:      val,
		Extractor:  x.Name(),
		Confidence: 0.9,
		DocID:      doc.ID,
		DocQuality: doc.Quality,
		ObservedAt: time.Now(),
	}}
}

// parseValue converts an infobox string into a typed Value per the
// predicate's declared kind.
func (x *InfoboxExtractor) parseValue(pred *kg.Predicate, raw string) (kg.Value, bool) {
	switch pred.ValueKind {
	case kg.KindTime:
		ts, err := time.Parse("2006-01-02", raw)
		if err != nil {
			return kg.Value{}, false
		}
		return kg.TimeValue(ts), true
	case kg.KindEntity:
		wantType := objectTypeFor(x.g, pred.Name)
		id, ok := x.resolver.Resolve(raw, wantType)
		if !ok {
			return kg.Value{}, false
		}
		return kg.EntityValue(id), true
	case kg.KindString:
		return kg.StringValue(raw), true
	default:
		return kg.StringValue(raw), true
	}
}

// TextExtractor is the pattern-based extractor over annotated free text:
// it uses semantic annotations as weak labels ("leveraging annotations
// produced by web-scale semantic annotation service as weak labels", §4).
// When the gap's subject is annotated in a sentence, co-annotated entities
// of the right target type become candidates. Broader recall than the
// infobox extractor, lower precision — a document can mention several
// teams.
type TextExtractor struct {
	g *kg.Graph
}

// NewTextExtractor builds the annotation-driven text extractor.
func NewTextExtractor(g *kg.Graph) *TextExtractor {
	return &TextExtractor{g: g}
}

// Name implements Extractor.
func (x *TextExtractor) Name() string { return "text" }

// Extract implements Extractor.
func (x *TextExtractor) Extract(doc *webcorpus.Document, anns []annotate.Annotation, gap Gap) []CandidateFact {
	pred := x.g.Predicate(gap.Predicate)
	if pred == nil || pred.ValueKind != kg.KindEntity {
		return nil // the text extractor only proposes entity-valued facts
	}
	wantType := objectTypeFor(x.g, pred.Name)
	if wantType == kg.NoType {
		return nil
	}
	// Locate subject mentions.
	var subjSpans []annotate.Annotation
	for _, a := range anns {
		if a.Entity == gap.Subject {
			subjSpans = append(subjSpans, a)
		}
	}
	if len(subjSpans) == 0 {
		return nil
	}
	sentences := textutil.SplitSentences(doc.Text)
	sentenceOf := func(pos int) int {
		for i, s := range sentences {
			if pos >= s.Start && pos < s.End {
				return i
			}
		}
		return -1
	}
	subjSentences := make(map[int]bool)
	for _, s := range subjSpans {
		subjSentences[sentenceOf(s.Start)] = true
	}
	var out []CandidateFact
	seen := make(map[kg.ValueKey]bool)
	for _, a := range anns {
		if a.Entity == gap.Subject {
			continue
		}
		if !subjSentences[sentenceOf(a.Start)] {
			continue
		}
		e := x.g.Entity(a.Entity)
		if e == nil {
			continue
		}
		typeOK := false
		for _, t := range e.Types {
			if x.g.Ontology().IsA(t, wantType) {
				typeOK = true
				break
			}
		}
		if !typeOK {
			continue
		}
		val := kg.EntityValue(a.Entity)
		if seen[val.MapKey()] {
			continue
		}
		seen[val.MapKey()] = true
		out = append(out, CandidateFact{
			Subject:    gap.Subject,
			Predicate:  gap.Predicate,
			Value:      val,
			Extractor:  x.Name(),
			Confidence: 0.55 * a.Score,
			DocID:      doc.ID,
			DocQuality: doc.Quality,
			ObservedAt: time.Now(),
		})
	}
	return out
}

// objectTypeFor maps a predicate name to the ontology type its objects
// must carry. Returns NoType for unmapped predicates.
func objectTypeFor(g *kg.Graph, predName string) kg.TypeID {
	var typeName string
	switch predName {
	case "memberOf":
		typeName = "Team"
	case "bornIn":
		typeName = "City"
	case "occupation":
		typeName = "Occupation"
	case "award":
		typeName = "Award"
	case "spouse":
		typeName = "Person"
	default:
		return kg.NoType
	}
	id, ok := g.Ontology().TypeID(typeName)
	if !ok {
		return kg.NoType
	}
	return id
}
