package odke

import (
	"fmt"
	"testing"
	"testing/quick"

	"saga/internal/kg"
)

// Property: MajorityVoteFuser always selects a value with the largest
// candidate count, and Fuse is deterministic.
func TestMajorityFuserPicksPlurality(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cands := make([]CandidateFact, 0, len(raw))
		counts := make(map[string]int)
		for i, b := range raw {
			val := kg.IntValue(int64(b % 5))
			cands = append(cands, CandidateFact{
				Value:      val,
				Extractor:  "text",
				Confidence: 0.5,
				DocID:      fmt.Sprintf("d%d", i),
				DocQuality: 0.5,
			})
			counts[val.Key()]++
		}
		res, ok := Fuse(MajorityVoteFuser{}, cands)
		if !ok {
			return false
		}
		maxCount := 0
		for _, c := range counts {
			if c > maxCount {
				maxCount = c
			}
		}
		if counts[res.Value.Key()] != maxCount {
			return false
		}
		// Deterministic under repetition.
		res2, _ := Fuse(MajorityVoteFuser{}, cands)
		return res.Value.Equal(res2.Value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: BestExtractorFuser picks a group containing the globally
// most confident candidate.
func TestBestExtractorPicksMaxConfidence(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cands := make([]CandidateFact, 0, len(raw))
		var maxConf float64
		for i, b := range raw {
			conf := float64(b%100) / 100
			if conf > maxConf {
				maxConf = conf
			}
			cands = append(cands, CandidateFact{
				Value:      kg.IntValue(int64(b % 4)),
				Extractor:  "infobox",
				Confidence: conf,
				DocID:      fmt.Sprintf("d%d", i),
			})
		}
		res, ok := Fuse(BestExtractorFuser{}, cands)
		if !ok {
			return false
		}
		var groupMax float64
		for _, c := range res.Group.Candidates {
			if c.Confidence > groupMax {
				groupMax = c.Confidence
			}
		}
		return groupMax == maxConf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: group features are well-formed — support counts distinct
// docs, agreement ratios over a slot sum to 1, flags are 0/1.
func TestGroupFeatureInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		cands := make([]CandidateFact, 0, len(raw))
		for i, b := range raw {
			ext := "text"
			if b%2 == 0 {
				ext = "infobox"
			}
			cands = append(cands, CandidateFact{
				Value:      kg.IntValue(int64(b % 3)),
				Extractor:  ext,
				Confidence: float64(b) / 255,
				DocID:      fmt.Sprintf("d%d", i%7), // collisions on purpose
				DocQuality: 0.5,
			})
		}
		groups := GroupCandidates(cands)
		var agreeSum float64
		var members int
		for _, g := range groups {
			feat := g.Features(len(cands))
			agreeSum += feat.AgreementRatio
			members += len(g.Candidates)
			docs := make(map[string]bool)
			for _, c := range g.Candidates {
				docs[c.DocID] = true
			}
			if int(feat.Support) != len(docs) {
				return false
			}
			if feat.HasInfobox != 0 && feat.HasInfobox != 1 {
				return false
			}
			if feat.HasText != 0 && feat.HasText != 1 {
				return false
			}
			if feat.MaxConfidence < 0 || feat.MaxConfidence > 1 {
				return false
			}
		}
		if members != len(cands) {
			return false
		}
		return agreeSum > 0.999 && agreeSum < 1.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
