package embedding

import (
	"sort"
)

// EvalResult holds link-prediction quality metrics.
type EvalResult struct {
	MRR    float64
	Hits1  float64
	Hits3  float64
	Hits10 float64
	N      int
}

// Evaluate computes filtered link-prediction metrics over the test
// triples: for each (h, r, t) the true tail is ranked against every
// entity as candidate tail, skipping candidates that form other known
// true triples (the standard "filtered" protocol). maxCandidates 0 means
// all entities.
func Evaluate(m Model, d *Dataset, test [][3]int32) EvalResult {
	var res EvalResult
	if len(test) == 0 {
		return res
	}
	nEnt := int32(d.NumEntities())
	var ranks []int
	for _, tr := range test {
		h, r, t := tr[0], tr[1], tr[2]
		trueScore := m.Score(h, r, t)
		rank := 1
		for c := int32(0); c < nEnt; c++ {
			if c == t {
				continue
			}
			// Filtered protocol: other true tails don't count against us.
			if d.Known(h, r, c) {
				continue
			}
			if m.Score(h, r, c) > trueScore {
				rank++
			}
		}
		ranks = append(ranks, rank)
	}
	res.N = len(ranks)
	for _, rk := range ranks {
		res.MRR += 1 / float64(rk)
		if rk <= 1 {
			res.Hits1++
		}
		if rk <= 3 {
			res.Hits3++
		}
		if rk <= 10 {
			res.Hits10++
		}
	}
	n := float64(len(ranks))
	res.MRR /= n
	res.Hits1 /= n
	res.Hits3 /= n
	res.Hits10 /= n
	return res
}

// ScoredTail pairs a candidate tail entity index with its model score.
type ScoredTail struct {
	Tail  int32
	Score float64
}

// RankTails scores each candidate tail for (h, r, ?) and returns them
// sorted by descending score. This is the batch-inference primitive of
// Fig 3: the graph engine materializes candidates and the model scores
// them.
func RankTails(m Model, h, r int32, candidates []int32) []ScoredTail {
	out := make([]ScoredTail, len(candidates))
	for i, c := range candidates {
		out[i] = ScoredTail{Tail: c, Score: m.Score(h, r, c)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tail < out[j].Tail
	})
	return out
}

// VerifyThreshold classifies a triple as correct when its score clears
// the given threshold. Calibrate the threshold on held-out data with
// CalibrateThreshold.
func VerifyThreshold(m Model, h, r, t int32, threshold float64) bool {
	return m.Score(h, r, t) >= threshold
}

// CalibrateThreshold picks the score threshold that maximizes accuracy on
// labelled positive and negative triples (simple sweep over midpoints).
func CalibrateThreshold(m Model, pos, neg [][3]int32) float64 {
	var scores []float64
	var labels []bool
	for _, tr := range pos {
		scores = append(scores, m.Score(tr[0], tr[1], tr[2]))
		labels = append(labels, true)
	}
	for _, tr := range neg {
		scores = append(scores, m.Score(tr[0], tr[1], tr[2]))
		labels = append(labels, false)
	}
	if len(scores) == 0 {
		return 0
	}
	type sl struct {
		s float64
		l bool
	}
	all := make([]sl, len(scores))
	for i := range scores {
		all[i] = sl{scores[i], labels[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].s < all[j].s })
	// Count of positives below/at each cut vs negatives above.
	totalPos := len(pos)
	bestAcc := -1.0
	bestThr := all[0].s
	negBelow := 0
	posBelow := 0
	// Threshold before the first element: everything classified positive.
	if acc := float64(totalPos) / float64(len(all)); acc > bestAcc {
		bestAcc = acc
		bestThr = all[0].s - 1e-9
	}
	for i := 0; i < len(all); i++ {
		if all[i].l {
			posBelow++
		} else {
			negBelow++
		}
		// Threshold just above all[i].s: below => negative prediction.
		correct := negBelow + (totalPos - posBelow)
		if acc := float64(correct) / float64(len(all)); acc > bestAcc {
			bestAcc = acc
			bestThr = all[i].s + 1e-9
		}
	}
	return bestThr
}
