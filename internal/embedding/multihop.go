package embedding

import (
	"fmt"
	"sort"
)

// Multi-hop reasoning in embedding space (§2's second model family:
// "reasoning-based embedding models are used for more complex tasks that
// involve multi-hop reasoning"). We implement the path-query primitive —
// answer ?t for h →r1→ x →r2→ ... →rk→ t without materializing the
// intermediate entities — by composing relation embeddings:
//
//   - TransE composes by vector addition:  q = h + r1 + ... + rk,
//     candidates ranked by -||q - t||².
//   - DistMult composes by element-wise product of relation vectors.
//   - ComplEx composes by complex element-wise (Hadamard) product.
//
// This is the classic path-query formulation (Guu et al. 2015) that
// box/query embeddings generalize; experiment E14 checks composition
// against graph-traversal ground truth.

// PathQuery is a multi-hop query: start entity plus a relation chain.
type PathQuery struct {
	Start     int32
	Relations []int32
}

// AnswerPathQuery scores every candidate tail for the path query and
// returns them sorted best-first. It returns an error for model kinds
// without a composition rule or for empty relation chains.
func AnswerPathQuery(m Model, q PathQuery, candidates []int32) ([]ScoredTail, error) {
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("embedding: path query needs at least one relation")
	}
	scorer, err := pathScorer(m, q)
	if err != nil {
		return nil, err
	}
	out := make([]ScoredTail, len(candidates))
	for i, c := range candidates {
		out[i] = ScoredTail{Tail: c, Score: scorer(c)}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Tail < out[j].Tail
	})
	return out, nil
}

// pathScorer builds the per-candidate scoring closure for the model kind.
func pathScorer(m Model, q PathQuery) (func(int32) float64, error) {
	switch mm := m.(type) {
	case *transEModel:
		// q = h + Σ r; score = -||q - t||².
		acc := append([]float32(nil), mm.ent[q.Start]...)
		for _, r := range q.Relations {
			rv := mm.rel[r]
			for i := range acc {
				acc[i] += rv[i]
			}
		}
		return func(t int32) float64 {
			tv := mm.ent[t]
			var s float64
			for i := range acc {
				d := float64(acc[i] - tv[i])
				s += d * d
			}
			return -s
		}, nil
	case *distMultModel:
		// q = h ⊙ r1 ⊙ ... ⊙ rk; score = Σ q·t.
		acc := append([]float32(nil), mm.ent[q.Start]...)
		for _, r := range q.Relations {
			rv := mm.rel[r]
			for i := range acc {
				acc[i] *= rv[i]
			}
		}
		return func(t int32) float64 {
			tv := mm.ent[t]
			var s float64
			for i := range acc {
				s += float64(acc[i]) * float64(tv[i])
			}
			return s
		}, nil
	case *complExModel:
		// Complex Hadamard product of (h, r1..rk), then Re(<q, conj(t)>).
		d := mm.half
		re := make([]float64, d)
		im := make([]float64, d)
		hv := mm.ent[q.Start]
		for i := 0; i < d; i++ {
			re[i] = float64(hv[i])
			im[i] = float64(hv[d+i])
		}
		for _, r := range q.Relations {
			rv := mm.rel[r]
			for i := 0; i < d; i++ {
				rr, ri := float64(rv[i]), float64(rv[d+i])
				nre := re[i]*rr - im[i]*ri
				nim := re[i]*ri + im[i]*rr
				re[i], im[i] = nre, nim
			}
		}
		return func(t int32) float64 {
			tv := mm.ent[t]
			var s float64
			for i := 0; i < d; i++ {
				tr, ti := float64(tv[i]), float64(tv[d+i])
				// Re(q * conj(t)) = re*tr + im*ti.
				s += re[i]*tr + im[i]*ti
			}
			return s
		}, nil
	default:
		return nil, fmt.Errorf("embedding: path queries unsupported for model kind %q", m.Kind())
	}
}

// PathGroundTruth computes the exact answer set of a path query by
// traversal over the dataset's triples (the baseline E14 evaluates
// composition against). Returns the tails reachable from start via the
// relation chain.
func PathGroundTruth(d *Dataset, q PathQuery) map[int32]bool {
	frontier := map[int32]bool{q.Start: true}
	// Index triples by (head, rel) once per call; datasets are small
	// enough that a scan per hop is acceptable for the harness.
	for _, r := range q.Relations {
		next := make(map[int32]bool)
		for _, tr := range d.Triples {
			if tr[1] == r && frontier[tr[0]] {
				next[tr[2]] = true
			}
		}
		frontier = next
		if len(frontier) == 0 {
			break
		}
	}
	return frontier
}
