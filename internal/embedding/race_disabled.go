//go:build !race

package embedding

// raceDetectorEnabled reports whether this binary was built with the Go
// race detector; see race_enabled.go.
const raceDetectorEnabled = false
