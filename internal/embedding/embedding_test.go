package embedding

import (
	"math"
	"testing"

	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/workload"
)

func testWorld(t *testing.T) *workload.World {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{
		NumPeople: 80, NumClusters: 8, OccupationsPerPerson: 2, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func entityView(t *testing.T, w *workload.World) []kg.Triple {
	t.Helper()
	eng := graphengine.New(w.Graph)
	return eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true}).Triples()
}

func TestNewDatasetFiltersLiterals(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(w.Graph.AllTriples())
	for _, tr := range d.Triples {
		if tr[0] < 0 || int(tr[0]) >= d.NumEntities() || tr[2] < 0 || int(tr[2]) >= d.NumEntities() {
			t.Fatalf("triple index out of range: %v", tr)
		}
	}
	stats := kg.ComputeStats(w.Graph)
	if len(d.Triples) != stats.EntityTriples {
		t.Fatalf("dataset triples = %d, want %d entity facts", len(d.Triples), stats.EntityTriples)
	}
}

func TestDatasetKnownAndIndexes(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	if d.NumEntities() == 0 || d.NumRelations() == 0 {
		t.Fatal("empty vocab")
	}
	tr := d.Triples[0]
	if !d.Known(tr[0], tr[1], tr[2]) {
		t.Fatal("first triple not known")
	}
	if d.Known(tr[0], tr[1], int32(d.NumEntities())) {
		t.Fatal("out-of-range triple reported known")
	}
	// Round trip entity index.
	gid := d.Ents[tr[0]]
	idx, ok := d.EntityIndex(gid)
	if !ok || idx != tr[0] {
		t.Fatalf("EntityIndex round trip: %v %v", idx, ok)
	}
	rid := d.Rels[tr[1]]
	ridx, ok := d.RelationIndex(rid)
	if !ok || ridx != tr[1] {
		t.Fatalf("RelationIndex round trip: %v %v", ridx, ok)
	}
	if _, ok := d.EntityIndex(kg.EntityID(1 << 30)); ok {
		t.Fatal("unknown entity resolved")
	}
}

func TestSplit(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	train, test, err := d.Split(0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(train.Triples)+len(test.Triples) != len(d.Triples) {
		t.Fatal("split loses triples")
	}
	if len(test.Triples) == 0 || len(train.Triples) == 0 {
		t.Fatal("degenerate split")
	}
	// Deterministic under seed.
	_, test2, err := d.Split(0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(test.Triples) != len(test2.Triples) || test.Triples[0] != test2.Triples[0] {
		t.Fatal("split not deterministic")
	}
	if _, _, err := d.Split(0, 1); err == nil {
		t.Fatal("testFrac=0 accepted")
	}
	if _, _, err := d.Split(1, 1); err == nil {
		t.Fatal("testFrac=1 accepted")
	}
}

func TestModelShapesAndErrors(t *testing.T) {
	for _, kind := range []ModelKind{TransE, DistMult, ComplEx} {
		m, err := NewModel(kind, 10, 3, 8, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if m.Kind() != kind {
			t.Fatalf("kind = %v", m.Kind())
		}
		if m.NumEntities() != 10 || m.NumRelations() != 3 {
			t.Fatalf("%s shape wrong", kind)
		}
		v := m.EntityVector(0)
		wantLen := 8
		if kind == ComplEx {
			wantLen = 16 // re|im concatenation
		}
		if len(v) != wantLen {
			t.Fatalf("%s vector len = %d, want %d", kind, len(v), wantLen)
		}
		// Score must be finite.
		s := m.Score(0, 0, 1)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			t.Fatalf("%s initial score = %v", kind, s)
		}
	}
	if _, err := NewModel("bogus", 10, 3, 8, 1); err == nil {
		t.Fatal("unknown model kind accepted")
	}
	if _, err := NewModel(TransE, 0, 3, 8, 1); err == nil {
		t.Fatal("zero entities accepted")
	}
}

func TestModelDeterministicInit(t *testing.T) {
	a, _ := NewModel(DistMult, 5, 2, 4, 42)
	b, _ := NewModel(DistMult, 5, 2, 4, 42)
	for e := int32(0); e < 5; e++ {
		va, vb := a.EntityVector(e), b.EntityVector(e)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatal("same-seed models differ")
			}
		}
	}
	c, _ := NewModel(DistMult, 5, 2, 4, 43)
	diff := false
	va, vc := a.EntityVector(0), c.EntityVector(0)
	for i := range va {
		if va[i] != vc[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical init")
	}
}

// trainAndEval trains a model on the synthetic world and returns filtered
// link-prediction metrics.
func trainAndEval(t *testing.T, kind ModelKind, workers int) EvalResult {
	t.Helper()
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	train, test, err := d.Split(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(train, TrainConfig{
		Model: kind, Dim: 24, Epochs: 30, LearningRate: 0.08,
		Negatives: 4, Workers: workers, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Evaluate(m, d, test.Triples)
}

func TestTrainingBeatsRandomTransE(t *testing.T) {
	res := trainAndEval(t, TransE, 2)
	// Random ranking over ~100 entities would give MRR ~0.05.
	if res.MRR < 0.15 {
		t.Fatalf("TransE MRR = %v, no better than random", res.MRR)
	}
	if res.Hits10 < 0.3 {
		t.Fatalf("TransE Hits@10 = %v", res.Hits10)
	}
}

func TestTrainingBeatsRandomDistMult(t *testing.T) {
	res := trainAndEval(t, DistMult, 2)
	if res.MRR < 0.15 {
		t.Fatalf("DistMult MRR = %v", res.MRR)
	}
}

func TestTrainingBeatsRandomComplEx(t *testing.T) {
	res := trainAndEval(t, ComplEx, 2)
	if res.MRR < 0.15 {
		t.Fatalf("ComplEx MRR = %v", res.MRR)
	}
}

func TestTrainEmptyDataset(t *testing.T) {
	d := NewDataset(nil)
	if _, err := Train(d, TrainConfig{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestHogwildParallelismPreservesQuality(t *testing.T) {
	seq := trainAndEval(t, DistMult, 1)
	par := trainAndEval(t, DistMult, 4)
	// Hogwild introduces nondeterminism but quality should be comparable.
	if par.MRR < seq.MRR*0.5 {
		t.Fatalf("parallel MRR %v collapsed vs sequential %v", par.MRR, seq.MRR)
	}
}

func TestPartitionedTrainingQuality(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	train, test, err := d.Split(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(train, TrainConfig{
		Model: DistMult, Dim: 24, Epochs: 30, LearningRate: 0.08,
		Negatives: 4, Workers: 2, Seed: 7, Partitions: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := Evaluate(m, d, test.Triples)
	if res.MRR < 0.15 {
		t.Fatalf("partitioned training MRR = %v", res.MRR)
	}
}

func TestDiskPartitionRoundTrip(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	dir := t.TempDir()
	paths, err := WritePartitions(d, dir, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	var total int
	seen := make(map[[3]int32]int)
	for _, p := range paths {
		triples, err := ReadPartition(p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(triples)
		for _, tr := range triples {
			seen[tr]++
		}
	}
	if total != len(d.Triples) {
		t.Fatalf("partition total = %d, want %d", total, len(d.Triples))
	}
	for _, tr := range d.Triples {
		if seen[tr] != 1 {
			t.Fatalf("triple %v appears %d times across partitions", tr, seen[tr])
		}
	}
}

func TestWritePartitionsErrors(t *testing.T) {
	d := NewDataset(nil)
	if _, err := WritePartitions(d, t.TempDir(), 0, 1); err == nil {
		t.Fatal("nParts=0 accepted")
	}
	if _, err := ReadPartition("/nonexistent/path.bin"); err == nil {
		t.Fatal("missing partition accepted")
	}
}

func TestTrainFromDiskParity(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	train, test, err := d.Split(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	paths, err := WritePartitions(train, dir, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{Model: DistMult, Dim: 24, Epochs: 30, LearningRate: 0.08, Negatives: 4, Workers: 2, Seed: 7}
	diskModel, stats, err := TrainFromDisk(train, paths, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.BucketsStreamed != 4*cfg.Epochs {
		t.Fatalf("buckets streamed = %d, want %d", stats.BucketsStreamed, 4*cfg.Epochs)
	}
	if stats.MaxResidentTriples >= len(train.Triples) {
		t.Fatalf("disk training held %d triples resident (full set is %d)", stats.MaxResidentTriples, len(train.Triples))
	}
	diskRes := Evaluate(diskModel, d, test.Triples)
	memModel, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	memRes := Evaluate(memModel, d, test.Triples)
	if diskRes.MRR < memRes.MRR*0.6 {
		t.Fatalf("disk MRR %v far below in-memory %v", diskRes.MRR, memRes.MRR)
	}
}

func TestRankTails(t *testing.T) {
	m, _ := NewModel(DistMult, 6, 2, 8, 1)
	cands := []int32{0, 1, 2, 3, 4, 5}
	ranked := RankTails(m, 0, 0, cands)
	if len(ranked) != 6 {
		t.Fatalf("ranked = %v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Score > ranked[i-1].Score {
			t.Fatal("RankTails not sorted")
		}
	}
	if got := RankTails(m, 0, 0, nil); len(got) != 0 {
		t.Fatal("empty candidates")
	}
}

func TestCalibrateThresholdSeparable(t *testing.T) {
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	train, test, err := d.Split(0.15, 5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(train, TrainConfig{Model: DistMult, Dim: 24, Epochs: 30, LearningRate: 0.08, Negatives: 4, Workers: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Build negatives by corrupting test tails.
	var neg [][3]int32
	for i, tr := range test.Triples {
		cand := int32((int(tr[2]) + i + 1) % d.NumEntities())
		if !d.Known(tr[0], tr[1], cand) {
			neg = append(neg, [3]int32{tr[0], tr[1], cand})
		}
	}
	thr := CalibrateThreshold(m, test.Triples, neg)
	var correct, total int
	for _, tr := range test.Triples {
		total++
		if VerifyThreshold(m, tr[0], tr[1], tr[2], thr) {
			correct++
		}
	}
	for _, tr := range neg {
		total++
		if !VerifyThreshold(m, tr[0], tr[1], tr[2], thr) {
			correct++
		}
	}
	acc := float64(correct) / float64(total)
	if acc < 0.65 {
		t.Fatalf("verification accuracy = %v, want > 0.65", acc)
	}
}

func TestCalibrateThresholdEmpty(t *testing.T) {
	m, _ := NewModel(DistMult, 3, 1, 4, 1)
	if thr := CalibrateThreshold(m, nil, nil); thr != 0 {
		t.Fatalf("empty calibration = %v", thr)
	}
}

func TestEvaluateEmpty(t *testing.T) {
	m, _ := NewModel(DistMult, 3, 1, 4, 1)
	d := NewDataset(nil)
	res := Evaluate(m, d, nil)
	if res.N != 0 || res.MRR != 0 {
		t.Fatalf("empty eval = %+v", res)
	}
}

func TestWalkEmbeddingsClusterStructure(t *testing.T) {
	w := testWorld(t)
	eng := graphengine.New(w.Graph)
	vecs := TrainWalkEmbeddings(eng, w.People, WalkEmbedConfig{Dim: 48, WalksPerNode: 30, WalkLength: 3, Seed: 13})
	if len(vecs) != len(w.People) {
		t.Fatalf("vectors = %d", len(vecs))
	}
	// Same-cluster people should on average be more similar than
	// cross-cluster people.
	var same, cross float64
	var nSame, nCross int
	for i, a := range w.People {
		for j := i + 1; j < len(w.People) && j < i+20; j++ {
			b := w.People[j]
			var dot float64
			va, vb := vecs[a], vecs[b]
			for k := range va {
				dot += float64(va[k]) * float64(vb[k])
			}
			if w.Cluster[a] == w.Cluster[b] {
				same += dot
				nSame++
			} else {
				cross += dot
				nCross++
			}
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Fatal("degenerate pair sampling")
	}
	same /= float64(nSame)
	cross /= float64(nCross)
	if same <= cross {
		t.Fatalf("walk embeddings do not separate clusters: same=%v cross=%v", same, cross)
	}
}

func TestWalkEmbeddingsDeterministic(t *testing.T) {
	w := testWorld(t)
	eng := graphengine.New(w.Graph)
	cfg := WalkEmbedConfig{Dim: 16, WalksPerNode: 5, WalkLength: 3, Seed: 21}
	v1 := TrainWalkEmbeddings(eng, w.People[:10], cfg)
	v2 := TrainWalkEmbeddings(eng, w.People[:10], cfg)
	for _, p := range w.People[:10] {
		a, b := v1[p], v2[p]
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("walk embeddings not deterministic")
			}
		}
	}
}

func TestTrainIntoShapeCheck(t *testing.T) {
	small, _ := NewModel(DistMult, 2, 1, 4, 1)
	w := testWorld(t)
	d := NewDataset(entityView(t, w))
	if err := TrainInto(small, d, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("undersized model accepted")
	}
}
