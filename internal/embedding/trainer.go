package embedding

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
)

// TrainConfig configures Train.
type TrainConfig struct {
	// Model selects the model family; default DistMult.
	Model ModelKind
	// Dim is the embedding dimensionality; default 32.
	Dim int
	// Epochs over the training triples; default 10.
	Epochs int
	// LearningRate for SGD; default 0.05.
	LearningRate float64
	// Negatives per positive triple; default 2.
	Negatives int
	// Workers is the Hogwild parallelism; default GOMAXPROCS.
	Workers int
	// Seed makes initialization and sampling reproducible (per worker the
	// seed is derived deterministically).
	Seed int64
	// Partitions splits each epoch's triples into random edge-based
	// buckets trained one bucket at a time — the shallow-model scaling
	// technique of §2 ("random edge-based partitioning of the graph is a
	// major technique to combat the scalability challenge"). Default 1.
	Partitions int
}

func (c *TrainConfig) setDefaults() {
	if c.Model == "" {
		c.Model = DistMult
	}
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.Epochs <= 0 {
		c.Epochs = 10
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Negatives <= 0 {
		c.Negatives = 2
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Partitions <= 0 {
		c.Partitions = 1
	}
}

// Train fits a model to the dataset's triples.
func Train(d *Dataset, cfg TrainConfig) (Model, error) {
	cfg.setDefaults()
	if len(d.Triples) == 0 {
		return nil, errors.New("embedding: empty training set")
	}
	model, err := NewModel(cfg.Model, d.NumEntities(), d.NumRelations(), cfg.Dim, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if err := TrainInto(model, d, cfg); err != nil {
		return nil, err
	}
	return model, nil
}

// TrainInto runs the training loop on an existing model (used by the
// disk-partitioned path to continue across buckets).
func TrainInto(model Model, d *Dataset, cfg TrainConfig) error {
	cfg.setDefaults()
	if model.NumEntities() < d.NumEntities() || model.NumRelations() < d.NumRelations() {
		return fmt.Errorf("embedding: model shape (%d ents, %d rels) smaller than dataset (%d, %d)",
			model.NumEntities(), model.NumRelations(), d.NumEntities(), d.NumRelations())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		parts := partitionIndexes(len(d.Triples), cfg.Partitions, rng)
		for _, part := range parts {
			trainBucket(model, d, part, cfg, cfg.Seed+int64(epoch)*7919)
		}
	}
	return nil
}

// trainBucket runs one pass over the triple indexes in part using
// cfg.Workers Hogwild goroutines. Parameter updates are intentionally
// unsynchronized: gradients of shallow models are sparse, so collisions
// are rare and Hogwild converges (this is how the large-scale systems the
// paper cites — PBG, DGL-KE, Marius — parallelize shallow models too).
// To the race detector those colliding updates are nevertheless real data
// races, so race-instrumented builds serialize the workers — `go test
// -race ./...` then checks every lock-based invariant in the repo without
// drowning in reports from the one algorithm whose race is by design.
func trainBucket(model Model, d *Dataset, part []int32, cfg TrainConfig, seed int64) {
	workers := cfg.Workers
	if raceDetectorEnabled {
		workers = 1
	}
	if workers > len(part) {
		workers = len(part)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(part) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(part) {
			hi = len(part)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*104729))
			nEnt := int32(d.NumEntities())
			for _, ti := range part[lo:hi] {
				tr := d.Triples[ti]
				for n := 0; n < cfg.Negatives; n++ {
					nh, nt := corrupt(tr, nEnt, d, rng)
					model.Update(tr[0], tr[1], tr[2], nh, nt, cfg.LearningRate)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
}

// corrupt produces a negative by replacing head or tail with a uniformly
// random entity, resampling (up to a bound) when the corruption collides
// with a known true triple.
func corrupt(tr [3]int32, nEnt int32, d *Dataset, rng *rand.Rand) (nh, nt int32) {
	nh, nt = tr[0], tr[2]
	for attempt := 0; attempt < 8; attempt++ {
		cand := rng.Int31n(nEnt)
		if rng.Intn(2) == 0 {
			if !d.Known(cand, tr[1], tr[2]) {
				return cand, tr[2]
			}
		} else {
			if !d.Known(tr[0], tr[1], cand) {
				return tr[0], cand
			}
		}
	}
	// Fall back to possibly-false negative; harmless at low rates.
	return tr[0], rng.Int31n(nEnt)
}

// partitionIndexes shuffles [0,n) and splits it into parts buckets. This
// is the "random edge-based partitioning" of §2: each epoch re-randomizes
// bucket membership so no edge is permanently separated from any other.
func partitionIndexes(n, parts int, rng *rand.Rand) [][]int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	if parts <= 1 {
		return [][]int32{idx}
	}
	if parts > n {
		parts = n
	}
	out := make([][]int32, 0, parts)
	chunk := (n + parts - 1) / parts
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, idx[lo:hi])
	}
	return out
}
