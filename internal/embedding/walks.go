package embedding

import (
	"math/rand"
	"sort"

	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/vecindex"
)

// Traversal-based related-entity embeddings (§2): "for specialized
// related entity embeddings we use the scalable graph processing
// capabilities of our graph engine to pre-compute graph traversals."
//
// The construction: the graph engine pre-computes random walks from each
// entity; each entity's embedding is the normalized sum of pseudo-random
// feature vectors of its walk co-occurrers, weighted by co-occurrence
// count. Entities whose neighbourhood distributions overlap get high
// cosine similarity (this is a random-projection sketch of the walk
// co-occurrence matrix, so similarity is preserved in expectation).

// WalkEmbedConfig configures TrainWalkEmbeddings.
type WalkEmbedConfig struct {
	// Dim is the output embedding dimensionality; default 64.
	Dim int
	// WalksPerNode is the number of pre-computed walks per source entity;
	// default 20.
	WalksPerNode int
	// WalkLength is the number of hops per walk; default 4.
	WalkLength int
	// Seed makes both walks and feature vectors reproducible.
	Seed int64
}

func (c *WalkEmbedConfig) setDefaults() {
	if c.Dim <= 0 {
		c.Dim = 64
	}
	if c.WalksPerNode <= 0 {
		c.WalksPerNode = 20
	}
	if c.WalkLength <= 0 {
		c.WalkLength = 4
	}
}

// TrainWalkEmbeddings computes related-entity embeddings for the given
// entities over the engine's graph. Entities with no neighbours get a
// zero vector.
func TrainWalkEmbeddings(e *graphengine.Engine, entities []kg.EntityID, cfg WalkEmbedConfig) map[kg.EntityID]vecindex.Vector {
	cfg.setDefaults()
	out := make(map[kg.EntityID]vecindex.Vector, len(entities))
	// Acquire the CSR adjacency snapshot once: all sources walk the same
	// consistent graph state, and the per-source staleness check (a lock
	// acquisition per RandomWalks call) disappears from the training loop.
	snap := e.Snapshot()
	var order []kg.EntityID
	for _, src := range entities {
		rng := rand.New(rand.NewSource(cfg.Seed ^ int64(src)*0x9E3779B9))
		walks := snap.RandomWalks(src, cfg.WalksPerNode, cfg.WalkLength, rng)
		co := graphengine.CoOccurrence(walks)
		// Accumulate co-occurrers in sorted order: float32 addition is
		// order-sensitive, and summing in map-iteration order (randomized
		// per process) would make identically seeded runs drift in the
		// low bits.
		order = order[:0]
		for other := range co {
			order = append(order, other)
		}
		sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
		vec := make(vecindex.Vector, cfg.Dim)
		for _, other := range order {
			feat := featureVector(other, cfg.Dim, cfg.Seed)
			w := float32(co[other])
			for i := range vec {
				vec[i] += w * feat[i]
			}
		}
		out[src] = vecindex.Normalize(vec)
	}
	return out
}

// featureVector returns the deterministic pseudo-random ±1/sqrt(d) sign
// vector for an entity. Sign vectors give an unbiased Johnson-
// Lindenstrauss style sketch of the co-occurrence matrix.
func featureVector(id kg.EntityID, dim int, seed int64) vecindex.Vector {
	rng := rand.New(rand.NewSource(seed ^ (int64(id)+1)*0x517CC1B7))
	v := make(vecindex.Vector, dim)
	scale := float32(1)
	for i := range v {
		if rng.Intn(2) == 0 {
			v[i] = scale
		} else {
			v[i] = -scale
		}
	}
	return v
}
