//go:build race

package embedding

// raceDetectorEnabled reports whether this binary was built with the Go
// race detector. Hogwild training (see trainBucket) performs parameter
// updates that race by design; the detector rightly flags them, so race
// builds serialize the workers instead.
const raceDetectorEnabled = true
