package embedding

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
)

// Disk-based partition training (§2: "for general KG embeddings we use
// disk-based training"). Triples are bucketed into binary partition files;
// each epoch streams one bucket at a time, so resident memory is bounded
// by the largest bucket instead of the full edge set. Experiment E12
// verifies quality parity with in-memory training at bounded memory.

const partitionMagic = uint32(0x53414741) // "SAGA"

// WritePartitions buckets the dataset's triples uniformly at random into
// nParts binary files under dir (created if needed) and returns their
// paths. The assignment is deterministic under seed.
func WritePartitions(d *Dataset, dir string, nParts int, seed int64) ([]string, error) {
	if nParts <= 0 {
		return nil, fmt.Errorf("embedding: nParts must be positive, got %d", nParts)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("embedding: create partition dir: %w", err)
	}
	files := make([]*os.File, nParts)
	writers := make([]*bufio.Writer, nParts)
	paths := make([]string, nParts)
	for i := range files {
		paths[i] = filepath.Join(dir, fmt.Sprintf("part-%04d.bin", i))
		f, err := os.Create(paths[i])
		if err != nil {
			return nil, err
		}
		files[i] = f
		writers[i] = bufio.NewWriter(f)
		if err := binary.Write(writers[i], binary.LittleEndian, partitionMagic); err != nil {
			return nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	var rec [12]byte
	for _, t := range d.Triples {
		p := rng.Intn(nParts)
		binary.LittleEndian.PutUint32(rec[0:4], uint32(t[0]))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(t[1]))
		binary.LittleEndian.PutUint32(rec[8:12], uint32(t[2]))
		if _, err := writers[p].Write(rec[:]); err != nil {
			return nil, err
		}
	}
	for i := range files {
		if err := writers[i].Flush(); err != nil {
			return nil, err
		}
		if err := files[i].Close(); err != nil {
			return nil, err
		}
	}
	return paths, nil
}

// ReadPartition loads one partition file's triples.
func ReadPartition(path string) ([][3]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("embedding: partition %s: %w", path, err)
	}
	if magic != partitionMagic {
		return nil, fmt.Errorf("embedding: partition %s: bad magic %x", path, magic)
	}
	var out [][3]int32
	var rec [12]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, fmt.Errorf("embedding: partition %s truncated: %w", path, err)
		}
		out = append(out, [3]int32{
			int32(binary.LittleEndian.Uint32(rec[0:4])),
			int32(binary.LittleEndian.Uint32(rec[4:8])),
			int32(binary.LittleEndian.Uint32(rec[8:12])),
		})
	}
}

// DiskTrainStats reports resource behaviour of a disk-based run.
type DiskTrainStats struct {
	// MaxResidentTriples is the largest number of triples held in memory
	// at once (the largest single bucket).
	MaxResidentTriples int
	// BucketsStreamed counts bucket loads across all epochs.
	BucketsStreamed int
}

// TrainFromDisk trains a model by streaming partition files bucket by
// bucket for each epoch. Only one bucket's triples are resident at a time.
// The dataset d supplies the vocabulary and the known-triple filter but
// its in-memory Triples slice is not consulted.
func TrainFromDisk(d *Dataset, paths []string, cfg TrainConfig) (Model, DiskTrainStats, error) {
	cfg.setDefaults()
	var stats DiskTrainStats
	if len(paths) == 0 {
		return nil, stats, fmt.Errorf("embedding: no partition files")
	}
	model, err := NewModel(cfg.Model, d.NumEntities(), d.NumRelations(), cfg.Dim, cfg.Seed)
	if err != nil {
		return nil, stats, err
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for pi, path := range paths {
			triples, err := ReadPartition(path)
			if err != nil {
				return nil, stats, err
			}
			stats.BucketsStreamed++
			if len(triples) > stats.MaxResidentTriples {
				stats.MaxResidentTriples = len(triples)
			}
			if len(triples) == 0 {
				continue
			}
			bucket := &Dataset{
				Ents:    d.Ents,
				Rels:    d.Rels,
				entIdx:  d.entIdx,
				relIdx:  d.relIdx,
				known:   d.known,
				Triples: triples,
			}
			part := make([]int32, len(triples))
			for i := range part {
				part[i] = int32(i)
			}
			trainBucket(model, bucket, part, cfg, cfg.Seed+int64(epoch)*7919+int64(pi)*31)
		}
	}
	return model, stats, nil
}
