package embedding

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// Model persistence and the Model Registry of Fig 3: training runs
// register their output ("Model Registry" box), and inference loads a
// named, versioned model. The on-disk format is a small binary file:
// magic, model kind, shape, then the entity and relation matrices.

const modelMagic = uint32(0x53414D44) // "SAMD"

// SaveModel serializes a trained model to path.
func SaveModel(m Model, path string) error {
	b, half, err := baseOf(m)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("embedding: save model: %w", err)
	}
	w := bufio.NewWriter(f)
	kind := []byte(m.Kind())
	hdr := []any{
		modelMagic,
		uint32(len(kind)),
	}
	for _, v := range hdr {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			f.Close()
			return err
		}
	}
	if _, err := w.Write(kind); err != nil {
		f.Close()
		return err
	}
	for _, v := range []uint32{uint32(len(b.ent)), uint32(len(b.rel)), uint32(b.dim), uint32(half)} {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			f.Close()
			return err
		}
	}
	writeMatrix := func(m [][]float32) error {
		for _, row := range m {
			for _, x := range row {
				if err := binary.Write(w, binary.LittleEndian, math.Float32bits(x)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := writeMatrix(b.ent); err != nil {
		f.Close()
		return err
	}
	if err := writeMatrix(b.rel); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel deserializes a model saved by SaveModel.
func LoadModel(path string) (Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("embedding: load model: %w", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	var magic, kindLen uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("embedding: model %s: %w", path, err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("embedding: model %s: bad magic %x", path, magic)
	}
	if err := binary.Read(r, binary.LittleEndian, &kindLen); err != nil {
		return nil, err
	}
	if kindLen > 64 {
		return nil, fmt.Errorf("embedding: model %s: implausible kind length %d", path, kindLen)
	}
	kindBuf := make([]byte, kindLen)
	if _, err := io.ReadFull(r, kindBuf); err != nil {
		return nil, err
	}
	var nEnt, nRel, dim, half uint32
	for _, p := range []*uint32{&nEnt, &nRel, &dim, &half} {
		if err := binary.Read(r, binary.LittleEndian, p); err != nil {
			return nil, err
		}
	}
	readMatrix := func(n, d uint32) ([][]float32, error) {
		m := make([][]float32, n)
		buf := make([]byte, 4*d)
		for i := range m {
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, fmt.Errorf("embedding: model %s truncated: %w", path, err)
			}
			row := make([]float32, d)
			for j := range row {
				row[j] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*j:]))
			}
			m[i] = row
		}
		return m, nil
	}
	ent, err := readMatrix(nEnt, dim)
	if err != nil {
		return nil, err
	}
	rel, err := readMatrix(nRel, dim)
	if err != nil {
		return nil, err
	}
	b := base{ent: ent, rel: rel, dim: int(dim)}
	switch ModelKind(kindBuf) {
	case TransE:
		return &transEModel{base: b}, nil
	case DistMult:
		return &distMultModel{base: b}, nil
	case ComplEx:
		return &complExModel{base: b, half: int(half)}, nil
	default:
		return nil, fmt.Errorf("embedding: model %s: unknown kind %q", path, kindBuf)
	}
}

// baseOf extracts the parameter matrices from a known model kind.
func baseOf(m Model) (*base, int, error) {
	switch mm := m.(type) {
	case *transEModel:
		return &mm.base, 0, nil
	case *distMultModel:
		return &mm.base, 0, nil
	case *complExModel:
		return &mm.base, mm.half, nil
	default:
		return nil, 0, fmt.Errorf("embedding: cannot serialize model kind %q", m.Kind())
	}
}

// Registry is the Fig 3 model registry: a directory of versioned, named
// models with JSON metadata. Version numbers increase per name.
type Registry struct {
	dir string
}

// ModelInfo is one registry entry's metadata.
type ModelInfo struct {
	Name      string    `json:"name"`
	Version   int       `json:"version"`
	Kind      ModelKind `json:"kind"`
	Dim       int       `json:"dim"`
	Entities  int       `json:"entities"`
	Relations int       `json:"relations"`
	CreatedAt time.Time `json:"created_at"`
	// Metrics carries free-form evaluation results (MRR etc.).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// NewRegistry opens (or creates) a registry rooted at dir.
func NewRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("embedding: registry dir: %w", err)
	}
	return &Registry{dir: dir}, nil
}

func (r *Registry) modelPath(name string, version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("%s-v%04d.model", name, version))
}

func (r *Registry) metaPath(name string, version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("%s-v%04d.json", name, version))
}

// Register stores a model under name with the next version number and
// returns its metadata.
func (r *Registry) Register(name string, m Model, metrics map[string]float64) (ModelInfo, error) {
	if name == "" {
		return ModelInfo{}, fmt.Errorf("embedding: registry: empty model name")
	}
	versions, err := r.Versions(name)
	if err != nil {
		return ModelInfo{}, err
	}
	next := 1
	if len(versions) > 0 {
		next = versions[len(versions)-1] + 1
	}
	info := ModelInfo{
		Name: name, Version: next, Kind: m.Kind(), Dim: m.Dim(),
		Entities: m.NumEntities(), Relations: m.NumRelations(),
		CreatedAt: time.Now().UTC(), Metrics: metrics,
	}
	if err := SaveModel(m, r.modelPath(name, next)); err != nil {
		return ModelInfo{}, err
	}
	meta, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return ModelInfo{}, err
	}
	if err := os.WriteFile(r.metaPath(name, next), meta, 0o644); err != nil {
		return ModelInfo{}, err
	}
	return info, nil
}

// Versions lists the registered versions of name, ascending.
func (r *Registry) Versions(name string) ([]int, error) {
	pattern := filepath.Join(r.dir, name+"-v*.model")
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return nil, err
	}
	var out []int
	for _, m := range matches {
		var v int
		base := filepath.Base(m)
		if _, err := fmt.Sscanf(base, name+"-v%d.model", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Ints(out)
	return out, nil
}

// Load retrieves a specific version.
func (r *Registry) Load(name string, version int) (Model, ModelInfo, error) {
	meta, err := os.ReadFile(r.metaPath(name, version))
	if err != nil {
		return nil, ModelInfo{}, fmt.Errorf("embedding: registry: %w", err)
	}
	var info ModelInfo
	if err := json.Unmarshal(meta, &info); err != nil {
		return nil, ModelInfo{}, fmt.Errorf("embedding: registry metadata: %w", err)
	}
	m, err := LoadModel(r.modelPath(name, version))
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return m, info, nil
}

// LoadLatest retrieves the highest registered version of name.
func (r *Registry) LoadLatest(name string) (Model, ModelInfo, error) {
	versions, err := r.Versions(name)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	if len(versions) == 0 {
		return nil, ModelInfo{}, fmt.Errorf("embedding: registry: no versions of %q", name)
	}
	return r.Load(name, versions[len(versions)-1])
}

// List returns metadata for every registered model, sorted by name then
// version.
func (r *Registry) List() ([]ModelInfo, error) {
	matches, err := filepath.Glob(filepath.Join(r.dir, "*.json"))
	if err != nil {
		return nil, err
	}
	var out []ModelInfo
	for _, m := range matches {
		data, err := os.ReadFile(m)
		if err != nil {
			return nil, err
		}
		var info ModelInfo
		if err := json.Unmarshal(data, &info); err != nil {
			continue // skip foreign json files
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out, nil
}
