package embedding

import (
	"os"
	"path/filepath"
	"testing"

	"saga/internal/graphengine"
	"saga/internal/workload"
)

func trainedModelFor(t *testing.T, kind ModelKind) (Model, *Dataset) {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 40, NumClusters: 4, Seed: 151})
	if err != nil {
		t.Fatal(err)
	}
	eng := graphengine.New(w.Graph)
	d := NewDataset(eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true}).Triples())
	m, err := Train(d, TrainConfig{Model: kind, Dim: 16, Epochs: 5, Workers: 1, Seed: 151})
	if err != nil {
		t.Fatal(err)
	}
	return m, d
}

func TestSaveLoadModelRoundTrip(t *testing.T) {
	for _, kind := range []ModelKind{TransE, DistMult, ComplEx} {
		m, d := trainedModelFor(t, kind)
		path := filepath.Join(t.TempDir(), "m.model")
		if err := SaveModel(m, path); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		loaded, err := LoadModel(path)
		if err != nil {
			t.Fatalf("%s: load: %v", kind, err)
		}
		if loaded.Kind() != kind {
			t.Fatalf("kind = %v, want %v", loaded.Kind(), kind)
		}
		if loaded.NumEntities() != m.NumEntities() || loaded.NumRelations() != m.NumRelations() || loaded.Dim() != m.Dim() {
			t.Fatalf("%s: shape mismatch after load", kind)
		}
		// Scores must be bit-identical.
		for _, tr := range d.Triples[:20] {
			if got, want := loaded.Score(tr[0], tr[1], tr[2]), m.Score(tr[0], tr[1], tr[2]); got != want {
				t.Fatalf("%s: score %v != %v after round trip", kind, got, want)
			}
		}
		// Entity vectors identical.
		va, vb := m.EntityVector(0), loaded.EntityVector(0)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("%s: entity vector differs", kind)
			}
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel("/nonexistent/m.model"); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.model")
	if err := os.WriteFile(bad, []byte("not a model file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(bad); err == nil {
		t.Fatal("garbage file accepted")
	}
	// Truncated real model.
	m, _ := trainedModelFor(t, DistMult)
	good := filepath.Join(dir, "good.model")
	if err := SaveModel(m, good); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.model")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(trunc); err == nil {
		t.Fatal("truncated model accepted")
	}
}

func TestRegistryVersioning(t *testing.T) {
	reg, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := trainedModelFor(t, DistMult)
	info1, err := reg.Register("general-kg", m1, map[string]float64{"mrr": 0.42})
	if err != nil {
		t.Fatal(err)
	}
	if info1.Version != 1 || info1.Kind != DistMult {
		t.Fatalf("info1 = %+v", info1)
	}
	m2, _ := trainedModelFor(t, TransE)
	info2, err := reg.Register("general-kg", m2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Version != 2 {
		t.Fatalf("second version = %d", info2.Version)
	}
	// A second model family under its own name.
	if _, err := reg.Register("related-entities", m1, nil); err != nil {
		t.Fatal(err)
	}

	versions, err := reg.Versions("general-kg")
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != 2 || versions[0] != 1 || versions[1] != 2 {
		t.Fatalf("versions = %v", versions)
	}

	// Load a specific version and the latest.
	loaded, info, err := reg.Load("general-kg", 1)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Kind() != DistMult || info.Metrics["mrr"] != 0.42 {
		t.Fatalf("v1 = %v %+v", loaded.Kind(), info)
	}
	latest, latestInfo, err := reg.LoadLatest("general-kg")
	if err != nil {
		t.Fatal(err)
	}
	if latest.Kind() != TransE || latestInfo.Version != 2 {
		t.Fatalf("latest = %v v%d", latest.Kind(), latestInfo.Version)
	}

	// List is sorted and complete.
	all, err := reg.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Fatalf("list = %d entries", len(all))
	}
	if all[0].Name != "general-kg" || all[0].Version != 1 || all[2].Name != "related-entities" {
		t.Fatalf("list order = %+v", all)
	}
}

func TestRegistryErrors(t *testing.T) {
	reg, err := NewRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	m, _ := trainedModelFor(t, DistMult)
	if _, err := reg.Register("", m, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, _, err := reg.LoadLatest("never-registered"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, _, err := reg.Load("never-registered", 1); err == nil {
		t.Fatal("unknown version accepted")
	}
}

func TestRegistryReopen(t *testing.T) {
	dir := t.TempDir()
	reg, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	m, d := trainedModelFor(t, DistMult)
	if _, err := reg.Register("kg", m, nil); err != nil {
		t.Fatal(err)
	}
	// A fresh registry over the same directory sees the model.
	reg2, err := NewRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	loaded, _, err := reg2.LoadLatest("kg")
	if err != nil {
		t.Fatal(err)
	}
	tr := d.Triples[0]
	if loaded.Score(tr[0], tr[1], tr[2]) != m.Score(tr[0], tr[1], tr[2]) {
		t.Fatal("reopened registry served a different model")
	}
}
