package embedding

import (
	"testing"

	"saga/internal/graphengine"
	"saga/internal/workload"
)

// multihopFixture trains all three model kinds on one world and prepares
// 2-hop path queries (person -memberOf-> team is 1-hop; person
// -collaborator-> person -memberOf-> team is a 2-hop chain with
// ground-truth answers inside the cluster).
type multihopFixture struct {
	w      *workload.World
	d      *Dataset
	models map[ModelKind]Model
	collab int32
	member int32
}

func newMultihopFixture(t *testing.T) *multihopFixture {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 60, NumClusters: 6, Seed: 131})
	if err != nil {
		t.Fatal(err)
	}
	eng := graphengine.New(w.Graph)
	view := eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true})
	d := NewDataset(view.Triples())
	f := &multihopFixture{w: w, d: d, models: make(map[ModelKind]Model)}
	var ok bool
	if f.collab, ok = d.RelationIndex(w.Preds["collaborator"]); !ok {
		t.Fatal("collaborator relation missing from dataset")
	}
	if f.member, ok = d.RelationIndex(w.Preds["memberOf"]); !ok {
		t.Fatal("memberOf relation missing")
	}
	for _, kind := range []ModelKind{TransE, DistMult, ComplEx} {
		m, err := Train(d, TrainConfig{
			Model: kind, Dim: 32, Epochs: 40, LearningRate: 0.08,
			Negatives: 4, Workers: 2, Seed: 131,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.models[kind] = m
	}
	return f
}

func TestPathGroundTruth(t *testing.T) {
	f := newMultihopFixture(t)
	// 1-hop: person -memberOf-> their cluster team.
	p := f.w.People[0]
	pIdx, _ := f.d.EntityIndex(p)
	gt := PathGroundTruth(f.d, PathQuery{Start: pIdx, Relations: []int32{f.member}})
	teamIdx, _ := f.d.EntityIndex(f.w.Teams[f.w.Cluster[p]])
	if !gt[teamIdx] {
		t.Fatalf("ground truth misses direct memberOf fact")
	}
	// Unsatisfiable chain: team has no outgoing memberOf.
	gt2 := PathGroundTruth(f.d, PathQuery{Start: teamIdx, Relations: []int32{f.member, f.member}})
	if len(gt2) != 0 {
		t.Fatalf("impossible path has answers: %v", gt2)
	}
}

func TestAnswerPathQueryErrors(t *testing.T) {
	f := newMultihopFixture(t)
	m := f.models[DistMult]
	if _, err := AnswerPathQuery(m, PathQuery{Start: 0}, []int32{0}); err == nil {
		t.Fatal("empty relation chain accepted")
	}
}

// TestPathQueryCompositionQuality: for 2-hop queries
// (person -collaborator-> x -memberOf-> team), the composed embedding
// score must rank a true answer well above a random candidate set —
// Hits@5 over all teams as candidates.
func TestPathQueryCompositionQuality(t *testing.T) {
	f := newMultihopFixture(t)
	// Candidates: all teams.
	var teamIdx []int32
	for _, team := range f.w.Teams {
		if ti, ok := f.d.EntityIndex(team); ok {
			teamIdx = append(teamIdx, ti)
		}
	}
	if len(teamIdx) < 4 {
		t.Skip("too few teams in embedding space")
	}
	for kind, m := range f.models {
		var hits, total int
		for _, p := range f.w.People[:30] {
			pIdx, ok := f.d.EntityIndex(p)
			if !ok {
				continue
			}
			q := PathQuery{Start: pIdx, Relations: []int32{f.collab, f.member}}
			gt := PathGroundTruth(f.d, q)
			if len(gt) == 0 {
				continue
			}
			ranked, err := AnswerPathQuery(m, q, teamIdx)
			if err != nil {
				t.Fatal(err)
			}
			total++
			top := ranked
			if len(top) > 3 {
				top = top[:3]
			}
			for _, st := range top {
				if gt[st.Tail] {
					hits++
					break
				}
			}
		}
		if total == 0 {
			t.Fatal("no evaluable path queries")
		}
		rate := float64(hits) / float64(total)
		// Random guessing over ≥6 teams would land in the top-3 about
		// half the time at best; demand clearly better.
		if rate < 0.6 {
			t.Errorf("%s: 2-hop Hits@3 = %.3f (n=%d), composition not working", kind, rate, total)
		}
	}
}

// TestPathQuerySingleHopMatchesScore: a 1-hop path query must rank tails
// identically to direct triple scoring for every model kind.
func TestPathQuerySingleHopMatchesScore(t *testing.T) {
	f := newMultihopFixture(t)
	pIdx, _ := f.d.EntityIndex(f.w.People[3])
	cands := []int32{0, 1, 2, 3, 4, 5, 6, 7}
	for kind, m := range f.models {
		direct := RankTails(m, pIdx, f.member, cands)
		path, err := AnswerPathQuery(m, PathQuery{Start: pIdx, Relations: []int32{f.member}}, cands)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct {
			if direct[i].Tail != path[i].Tail {
				t.Errorf("%s: 1-hop path order differs from direct scoring at %d: %v vs %v",
					kind, i, direct[i], path[i])
				break
			}
		}
	}
}
