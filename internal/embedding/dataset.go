// Package embedding implements the knowledge-graph embedding pipeline of
// §2 of the paper: shallow embedding models (TransE, DistMult, ComplEx)
// trained with negative sampling and Hogwild-style parallel SGD over
// random edge-based partitions, optionally streamed from disk; link-
// prediction evaluation (MRR, Hits@K); and traversal-based related-entity
// embeddings built from pre-computed random walks.
//
// The paper trains on GPU clusters; this reproduction substitutes
// multi-goroutine CPU training with the same partitioned data-parallel
// structure (see DESIGN.md, substitutions table).
package embedding

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"saga/internal/kg"
)

// Dataset is an embedding training set: entity-valued triples re-indexed
// into dense [0,n) entity and relation indexes.
type Dataset struct {
	// Ents maps dense index -> graph entity ID.
	Ents []kg.EntityID
	// Rels maps dense index -> graph predicate ID.
	Rels []kg.PredicateID
	// Triples are (head, relation, tail) dense index records.
	Triples [][3]int32

	entIdx map[kg.EntityID]int32
	relIdx map[kg.PredicateID]int32
	// known indexes every (h,r,t) for filtered evaluation and
	// false-negative-aware sampling.
	known map[[3]int32]struct{}
}

// NewDataset builds a dataset from triples, keeping only entity-valued
// facts (literals cannot participate in translational embeddings).
//
// The input is ordered by SPO identity before interning, so the dense
// entity/relation index assignment — and therefore every seeded training
// run downstream — is a function of the triple *set*, not of the order
// the caller happened to produce. View.Triples and TriplesSnapshot
// surface triples in map-iteration order, which Go randomizes per
// process; without the sort, identically seeded experiments drift from
// run to run.
func NewDataset(triples []kg.Triple) *Dataset {
	d := &Dataset{
		entIdx: make(map[kg.EntityID]int32),
		relIdx: make(map[kg.PredicateID]int32),
		known:  make(map[[3]int32]struct{}),
	}
	ordered := make([]kg.Triple, 0, len(triples))
	for _, t := range triples {
		if t.Object.IsEntity() {
			ordered = append(ordered, t)
		}
	}
	// Precompute identity keys once instead of rebuilding both inside the
	// comparator O(n log n) times (the AllTriples pattern).
	keys := make([]kg.TripleKey, len(ordered))
	order := make([]int32, len(ordered))
	for i := range ordered {
		keys[i] = ordered[i].IdentityKey()
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		return keys[order[i]].Compare(keys[order[j]]) < 0
	})
	for _, oi := range order {
		t := ordered[oi]
		h := d.internEntity(t.Subject)
		r := d.internRelation(t.Predicate)
		tt := d.internEntity(t.Object.Entity)
		rec := [3]int32{h, r, tt}
		if _, dup := d.known[rec]; dup {
			continue
		}
		d.known[rec] = struct{}{}
		d.Triples = append(d.Triples, rec)
	}
	return d
}

func (d *Dataset) internEntity(id kg.EntityID) int32 {
	if i, ok := d.entIdx[id]; ok {
		return i
	}
	i := int32(len(d.Ents))
	d.Ents = append(d.Ents, id)
	d.entIdx[id] = i
	return i
}

func (d *Dataset) internRelation(id kg.PredicateID) int32 {
	if i, ok := d.relIdx[id]; ok {
		return i
	}
	i := int32(len(d.Rels))
	d.Rels = append(d.Rels, id)
	d.relIdx[id] = i
	return i
}

// EntityIndex returns the dense index of a graph entity.
func (d *Dataset) EntityIndex(id kg.EntityID) (int32, bool) {
	i, ok := d.entIdx[id]
	return i, ok
}

// RelationIndex returns the dense index of a graph predicate.
func (d *Dataset) RelationIndex(id kg.PredicateID) (int32, bool) {
	i, ok := d.relIdx[id]
	return i, ok
}

// NumEntities returns the entity vocabulary size.
func (d *Dataset) NumEntities() int { return len(d.Ents) }

// NumRelations returns the relation vocabulary size.
func (d *Dataset) NumRelations() int { return len(d.Rels) }

// Known reports whether (h,r,t) is an observed triple; used to filter
// false negatives during sampling and evaluation.
func (d *Dataset) Known(h, r, t int32) bool {
	_, ok := d.known[[3]int32{h, r, t}]
	return ok
}

// WithTriples returns a dataset that shares this dataset's vocabulary and
// known-triple filter but holds only the triples accepted by keep. Use it
// to carve training subsets out of a full dataset without losing the
// index space (e.g. excluding held-out test triples from a noisy-view
// training run).
func (d *Dataset) WithTriples(keep func([3]int32) bool) *Dataset {
	sub := &Dataset{
		Ents:   d.Ents,
		Rels:   d.Rels,
		entIdx: d.entIdx,
		relIdx: d.relIdx,
		known:  d.known,
	}
	for _, t := range d.Triples {
		if keep(t) {
			sub.Triples = append(sub.Triples, t)
		}
	}
	return sub
}

// Split partitions the triples into train/test subsets with the given test
// fraction, deterministically under seed. Both returned datasets share the
// full entity/relation vocabulary and the full "known" filter so filtered
// evaluation remains correct.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset, err error) {
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, errors.New("embedding: testFrac must be in (0,1)")
	}
	if len(d.Triples) < 2 {
		return nil, nil, fmt.Errorf("embedding: too few triples to split: %d", len(d.Triples))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(d.Triples))
	nTest := int(float64(len(d.Triples)) * testFrac)
	if nTest < 1 {
		nTest = 1
	}
	mk := func(idx []int) *Dataset {
		sub := &Dataset{
			Ents:   d.Ents,
			Rels:   d.Rels,
			entIdx: d.entIdx,
			relIdx: d.relIdx,
			known:  d.known,
		}
		for _, i := range idx {
			sub.Triples = append(sub.Triples, d.Triples[i])
		}
		return sub
	}
	test = mk(perm[:nTest])
	train = mk(perm[nTest:])
	return train, test, nil
}
