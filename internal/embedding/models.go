package embedding

import (
	"fmt"
	"math"
	"math/rand"

	"saga/internal/vecindex"
)

// ModelKind selects the shallow embedding model family.
type ModelKind string

const (
	// TransE is the translational-distance model of Bordes et al. 2013
	// (paper reference [3]).
	TransE ModelKind = "transe"
	// DistMult is the bilinear-diagonal semantic matching model of Yang
	// et al. 2014 (paper reference [22]).
	DistMult ModelKind = "distmult"
	// ComplEx is the complex-valued bilinear model, the generalization the
	// paper's related-work section points at via [23].
	ComplEx ModelKind = "complex"
)

// Model is a trainable shallow KG embedding model. Score is higher for
// more plausible triples for every model kind (TransE distances are
// negated). Update performs one SGD step on a positive triple and one
// corrupted negative. Models are NOT internally synchronized: the trainer
// runs Hogwild-style lock-free updates, which is the standard approach for
// sparse-gradient shallow models.
type Model interface {
	Kind() ModelKind
	Dim() int
	NumEntities() int
	NumRelations() int
	// Score returns the plausibility of (h, r, t) by dense index.
	Score(h, r, t int32) float64
	// Update applies one SGD step given a positive (h,r,t) and a negative
	// (nh,r,nt) at learning rate lr.
	Update(h, r, t, nh, nt int32, lr float64)
	// EntityVector returns the (possibly concatenated re/im) entity
	// embedding as a vecindex.Vector copy.
	EntityVector(e int32) vecindex.Vector
}

// NewModel constructs a model with Xavier-style random initialization.
func NewModel(kind ModelKind, numEnts, numRels, dim int, seed int64) (Model, error) {
	if numEnts <= 0 || numRels <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embedding: invalid model shape ents=%d rels=%d dim=%d", numEnts, numRels, dim)
	}
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case TransE:
		m := &transEModel{base: newBase(numEnts, numRels, dim, rng)}
		m.normalizeEntities()
		return m, nil
	case DistMult:
		return &distMultModel{base: newBase(numEnts, numRels, dim, rng)}, nil
	case ComplEx:
		// Store re and im halves concatenated: vectors of length 2*dim.
		return &complExModel{base: newBase(numEnts, numRels, 2*dim, rng), half: dim}, nil
	default:
		return nil, fmt.Errorf("embedding: unknown model kind %q", kind)
	}
}

// base holds the embedding matrices shared by all model kinds.
type base struct {
	ent [][]float32
	rel [][]float32
	dim int
}

func newBase(numEnts, numRels, dim int, rng *rand.Rand) base {
	bound := float32(6 / math.Sqrt(float64(dim)))
	mk := func(n int) [][]float32 {
		m := make([][]float32, n)
		for i := range m {
			v := make([]float32, dim)
			for j := range v {
				v[j] = (rng.Float32()*2 - 1) * bound
			}
			m[i] = v
		}
		return m
	}
	return base{ent: mk(numEnts), rel: mk(numRels), dim: dim}
}

func (b *base) NumEntities() int  { return len(b.ent) }
func (b *base) NumRelations() int { return len(b.rel) }
func (b *base) Dim() int          { return b.dim }

func (b *base) EntityVector(e int32) vecindex.Vector {
	return append(vecindex.Vector(nil), b.ent[e]...)
}

// ---------------------------------------------------------------- TransE

type transEModel struct {
	base
}

func (m *transEModel) Kind() ModelKind { return TransE }

// Score returns the negated squared L2 distance ||h + r - t||².
func (m *transEModel) Score(h, r, t int32) float64 {
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	var s float64
	for i := 0; i < m.dim; i++ {
		d := float64(hv[i] + rv[i] - tv[i])
		s += d * d
	}
	return -s
}

const transEMargin = 1.0

// Update applies a margin-ranking step: push the positive distance below
// the negative distance by at least the margin.
func (m *transEModel) Update(h, r, t, nh, nt int32, lr float64) {
	posLoss := -m.Score(h, r, t)
	negLoss := -m.Score(nh, r, nt)
	if posLoss+transEMargin <= negLoss {
		return // margin satisfied, no gradient
	}
	step := float32(lr)
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	nhv, ntv := m.ent[nh], m.ent[nt]
	for i := 0; i < m.dim; i++ {
		dPos := hv[i] + rv[i] - tv[i]
		dNeg := nhv[i] + rv[i] - ntv[i]
		// Positive triple: reduce distance.
		g := 2 * step * dPos
		hv[i] -= g
		tv[i] += g
		// Negative triple: increase distance.
		gn := 2 * step * dNeg
		nhv[i] += gn
		ntv[i] -= gn
		// Relation gets both contributions.
		rv[i] -= g - gn
	}
	normalizeVec(hv)
	normalizeVec(tv)
	normalizeVec(nhv)
	normalizeVec(ntv)
}

func (m *transEModel) normalizeEntities() {
	for _, v := range m.ent {
		normalizeVec(v)
	}
}

// normalizeVec projects v onto the unit sphere (TransE's entity
// constraint), leaving zero vectors alone.
func normalizeVec(v []float32) {
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	if n == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(n))
	for i := range v {
		v[i] *= inv
	}
}

// -------------------------------------------------------------- DistMult

type distMultModel struct {
	base
}

func (m *distMultModel) Kind() ModelKind { return DistMult }

// Score is the trilinear product Σ h·r·t.
func (m *distMultModel) Score(h, r, t int32) float64 {
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	var s float64
	for i := 0; i < m.dim; i++ {
		s += float64(hv[i]) * float64(rv[i]) * float64(tv[i])
	}
	return s
}

const l2Reg = 1e-5

// Update applies one logistic-loss step on the positive and the negative.
func (m *distMultModel) Update(h, r, t, nh, nt int32, lr float64) {
	m.logisticStep(h, r, t, 1, lr)
	m.logisticStep(nh, r, nt, -1, lr)
}

func (m *distMultModel) logisticStep(h, r, t int32, label float64, lr float64) {
	s := m.Score(h, r, t)
	// dLoss/ds for loss = log(1 + exp(-label*s)).
	g := -label * sigmoid(-label*s)
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	step := float32(lr)
	gf := float32(g)
	for i := 0; i < m.dim; i++ {
		gh := gf*rv[i]*tv[i] + l2Reg*hv[i]
		gr := gf*hv[i]*tv[i] + l2Reg*rv[i]
		gt := gf*hv[i]*rv[i] + l2Reg*tv[i]
		hv[i] -= step * gh
		rv[i] -= step * gr
		tv[i] -= step * gt
	}
}

// --------------------------------------------------------------- ComplEx

type complExModel struct {
	base
	half int // real dimensionality; vectors are [re | im]
}

func (m *complExModel) Kind() ModelKind { return ComplEx }
func (m *complExModel) Dim() int        { return m.half }

// Score is Re(<h, r, conj(t)>).
func (m *complExModel) Score(h, r, t int32) float64 {
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	d := m.half
	var s float64
	for i := 0; i < d; i++ {
		hr, hi := float64(hv[i]), float64(hv[d+i])
		rr, ri := float64(rv[i]), float64(rv[d+i])
		tr, ti := float64(tv[i]), float64(tv[d+i])
		s += hr*rr*tr + hi*rr*ti + hr*ri*ti - hi*ri*tr
	}
	return s
}

// Update applies one logistic-loss step on the positive and the negative.
func (m *complExModel) Update(h, r, t, nh, nt int32, lr float64) {
	m.logisticStep(h, r, t, 1, lr)
	m.logisticStep(nh, r, nt, -1, lr)
}

func (m *complExModel) logisticStep(h, r, t int32, label float64, lr float64) {
	s := m.Score(h, r, t)
	g := float32(-label * sigmoid(-label*s))
	hv, rv, tv := m.ent[h], m.rel[r], m.ent[t]
	d := m.half
	step := float32(lr)
	for i := 0; i < d; i++ {
		hr, hi := hv[i], hv[d+i]
		rr, ri := rv[i], rv[d+i]
		tr, ti := tv[i], tv[d+i]
		// Partial derivatives of the ComplEx score.
		dhr := rr*tr + ri*ti
		dhi := rr*ti - ri*tr
		drr := hr*tr + hi*ti
		dri := hr*ti - hi*tr
		dtr := hr*rr - hi*ri
		dti := hi*rr + hr*ri
		hv[i] -= step * (g*dhr + l2Reg*hr)
		hv[d+i] -= step * (g*dhi + l2Reg*hi)
		rv[i] -= step * (g*drr + l2Reg*rr)
		rv[d+i] -= step * (g*dri + l2Reg*ri)
		tv[i] -= step * (g*dtr + l2Reg*tr)
		tv[d+i] -= step * (g*dti + l2Reg*ti)
	}
}

func sigmoid(x float64) float64 {
	return 1 / (1 + math.Exp(-x))
}
