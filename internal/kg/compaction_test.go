package kg

import (
	"fmt"
	"testing"
)

// buildMutating populates g with n single-triple mutations (plus a few
// retracts mixed in) and returns the set of asserted triples still live.
func buildMutating(t *testing.T, g *Graph, n int) {
	t.Helper()
	e := make([]EntityID, 8)
	for i := range e {
		e[i] = mustEntity(t, g, fmt.Sprintf("c%d", i), fmt.Sprintf("ent %d", i))
	}
	p := mustPredicate(t, g, "score")
	for i := 0; i < n; i++ {
		tr := Triple{Subject: e[i%len(e)], Predicate: p, Object: IntValue(int64(i))}
		if err := g.Assert(tr); err != nil {
			t.Fatalf("Assert %d: %v", i, err)
		}
		if i%5 == 4 {
			if !g.Retract(tr) {
				t.Fatalf("Retract %d missed", i)
			}
		}
	}
}

func TestTruncateLogRaisesFloorAndDropsEntries(t *testing.T) {
	g := NewGraphWithShards(4)
	buildMutating(t, g, 100)
	wm := g.LastSeq()
	if g.LogFloor() != 0 {
		t.Fatalf("fresh graph has floor %d", g.LogFloor())
	}
	all := g.MutationsSince(0)
	if uint64(len(all)) != wm {
		t.Fatalf("full log has %d entries, watermark %d", len(all), wm)
	}

	cut := wm / 2
	dropped := g.TruncateLog(cut)
	if uint64(dropped) != cut {
		t.Fatalf("TruncateLog(%d) dropped %d entries", cut, dropped)
	}
	if g.LogFloor() != cut {
		t.Fatalf("LogFloor = %d, want %d", g.LogFloor(), cut)
	}

	// MutationsSince(floor) must still be a complete, gapless feed.
	rest := g.MutationsSince(cut)
	if uint64(len(rest)) != wm-cut {
		t.Fatalf("MutationsSince(%d) has %d entries, want %d", cut, len(rest), wm-cut)
	}
	for i, m := range rest {
		want := cut + uint64(i) + 1
		if m.Seq != want {
			t.Fatalf("entry %d has seq %d, want %d", i, m.Seq, want)
		}
		if m.Seq != all[m.Seq-1].Seq || m.T.IdentityKey() != all[m.Seq-1].T.IdentityKey() {
			t.Fatalf("entry %d diverged from pre-truncation log", i)
		}
	}

	// Truncating again at or below the floor is a no-op.
	if n := g.TruncateLog(cut); n != 0 {
		t.Fatalf("re-truncation dropped %d entries", n)
	}
	if n := g.TruncateLog(cut - 1); n != 0 {
		t.Fatalf("truncation below floor dropped %d entries", n)
	}
}

func TestTruncateLogClampsToWatermark(t *testing.T) {
	g := NewGraphWithShards(2)
	buildMutating(t, g, 30)
	wm := g.LastSeq()
	dropped := g.TruncateLog(wm + 1000)
	if uint64(dropped) != wm {
		t.Fatalf("dropped %d entries, want the full log (%d)", dropped, wm)
	}
	// The floor must be clamped to the watermark, not the requested value:
	// a floor above the watermark would wedge consumers forever.
	if g.LogFloor() != wm {
		t.Fatalf("LogFloor = %d, want watermark %d", g.LogFloor(), wm)
	}
	if rest := g.MutationsSince(wm); len(rest) != 0 {
		t.Fatalf("log still has %d entries past the watermark", len(rest))
	}
	// New mutations land above the floor and feed normally.
	id := mustEntity(t, g, "fresh", "fresh")
	p := mustPredicate(t, g, "after")
	if err := g.Assert(Triple{Subject: id, Predicate: p, Object: BoolValue(true)}); err != nil {
		t.Fatal(err)
	}
	rest := g.MutationsSince(g.LogFloor())
	if len(rest) != 1 || rest[0].Seq != wm+1 {
		t.Fatalf("post-truncation feed = %+v, want single entry at seq %d", rest, wm+1)
	}
}

func TestAdvanceWatermark(t *testing.T) {
	g := NewGraphWithShards(4)
	buildMutating(t, g, 20)
	low := g.LastSeq()

	// Rewinding must fail and change nothing.
	if err := g.AdvanceWatermark(low - 1); err == nil {
		t.Fatal("AdvanceWatermark below current watermark succeeded")
	}
	if g.LastSeq() != low {
		t.Fatalf("failed rewind moved the watermark to %d", g.LastSeq())
	}

	const target = 5000
	if err := g.AdvanceWatermark(target); err != nil {
		t.Fatalf("AdvanceWatermark(%d): %v", target, err)
	}
	if g.LastSeq() != target {
		t.Fatalf("LastSeq = %d, want %d", g.LastSeq(), target)
	}
	if g.LogFloor() != target {
		t.Fatalf("LogFloor = %d, want %d", g.LogFloor(), target)
	}
	if ms := g.MutationsSince(0); len(ms) != 0 {
		t.Fatalf("log retained %d entries across AdvanceWatermark", len(ms))
	}

	// The next mutation draws target+1, as if the process never restarted.
	id := mustEntity(t, g, "resumed", "resumed")
	p := mustPredicate(t, g, "next")
	if err := g.Assert(Triple{Subject: id, Predicate: p, Object: IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if g.LastSeq() != target+1 {
		t.Fatalf("post-advance mutation drew seq %d, want %d", g.LastSeq(), target+1)
	}
	ms := g.MutationsSince(target)
	if len(ms) != 1 || ms[0].Seq != target+1 {
		t.Fatalf("MutationsSince(%d) = %+v", target, ms)
	}

	// Advancing to the current watermark is allowed (idempotent barrier).
	if err := g.AdvanceWatermark(g.LastSeq()); err != nil {
		t.Fatalf("AdvanceWatermark to current watermark: %v", err)
	}
}

func TestAllTriplesSnapshotMatchesAllTriples(t *testing.T) {
	g := NewGraphWithShards(4)
	buildMutating(t, g, 60)
	snap, wm := g.AllTriplesSnapshot()
	if wm != g.LastSeq() {
		t.Fatalf("snapshot watermark %d, graph watermark %d", wm, g.LastSeq())
	}
	plain := g.AllTriples()
	if len(snap) != len(plain) {
		t.Fatalf("snapshot has %d triples, AllTriples %d", len(snap), len(plain))
	}
	for i := range snap {
		if snap[i].IdentityKey() != plain[i].IdentityKey() {
			t.Fatalf("triple %d differs: %v vs %v", i, snap[i], plain[i])
		}
	}
	if g.NumTriples() != len(snap) {
		t.Fatalf("NumTriples %d, snapshot %d", g.NumTriples(), len(snap))
	}
}
