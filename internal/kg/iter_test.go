package kg

import (
	"fmt"
	"testing"
)

// iterFixture builds a small graph with two subjects, two predicates, and
// a shared object entity.
func iterFixture(t *testing.T) (g *Graph, subs []EntityID, p, q PredicateID, obj EntityID) {
	t.Helper()
	g = NewGraphWithShards(4)
	add := func(key string) EntityID {
		id, err := g.AddEntity(Entity{Key: key})
		if err != nil {
			t.Fatal(err)
		}
		return id
	}
	obj = add("obj")
	p, _ = g.AddPredicate(Predicate{Name: "p"})
	q, _ = g.AddPredicate(Predicate{Name: "q"})
	for i := 0; i < 6; i++ {
		subs = append(subs, add(fmt.Sprintf("s%d", i)))
	}
	for i, s := range subs {
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: EntityValue(obj)}); err != nil {
			t.Fatal(err)
		}
		if err := g.Assert(Triple{Subject: s, Predicate: q, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	return g, subs, p, q, obj
}

// Every Seq accessor must stream exactly what its slice/visitor
// counterpart produces, and breaking out of the range must stop the
// enumeration early.
func TestSeqAccessorsMatchSliceAccessors(t *testing.T) {
	g, subs, p, q, obj := iterFixture(t)

	var facts []Triple
	for tr := range g.FactsSeq(subs[0], p) {
		facts = append(facts, tr)
	}
	if want := g.Facts(subs[0], p); len(facts) != len(want) {
		t.Fatalf("FactsSeq = %d triples, Facts = %d", len(facts), len(want))
	}

	var outgoing []Triple
	for tr := range g.OutgoingSeq(subs[0]) {
		outgoing = append(outgoing, tr)
	}
	if want := g.Outgoing(subs[0]); len(outgoing) != len(want) {
		t.Fatalf("OutgoingSeq = %d triples, Outgoing = %d", len(outgoing), len(want))
	}

	var incoming []Triple
	for tr := range g.IncomingSeq(obj) {
		incoming = append(incoming, tr)
	}
	if want := g.Incoming(obj); len(incoming) != len(want) {
		t.Fatalf("IncomingSeq = %d triples, Incoming = %d", len(incoming), len(want))
	}

	var posted []EntityID
	for s := range g.SubjectsWithSeq(p, EntityValue(obj)) {
		posted = append(posted, s)
	}
	want := g.SubjectsWith(p, EntityValue(obj))
	if len(posted) != len(want) {
		t.Fatalf("SubjectsWithSeq = %d subjects, SubjectsWith = %d", len(posted), len(want))
	}
	for i := range posted {
		if posted[i] != want[i] {
			t.Fatalf("SubjectsWithSeq order diverges from SubjectsWith at %d: %v vs %v", i, posted, want)
		}
	}

	entries := 0
	for _, s := range g.PredicateEntriesSeq(q) {
		_ = s
		entries++
	}
	if entries != len(subs) {
		t.Fatalf("PredicateEntriesSeq = %d entries, want %d", entries, len(subs))
	}

	total := 0
	for range g.TriplesSeq() {
		total++
	}
	if total != g.NumTriples() {
		t.Fatalf("TriplesSeq = %d triples, NumTriples = %d", total, g.NumTriples())
	}
}

// Breaking out of a Seq range stops enumeration (posting-list early stop):
// the body must run exactly once per break.
func TestSeqAccessorsEarlyStop(t *testing.T) {
	g, subs, p, _, obj := iterFixture(t)

	n := 0
	for range g.SubjectsWithSeq(p, EntityValue(obj)) {
		n++
		break
	}
	if n != 1 {
		t.Fatalf("SubjectsWithSeq visited %d subjects after break, want 1", n)
	}

	n = 0
	for range g.TriplesSeq() {
		n++
		if n == 3 {
			break
		}
	}
	if n != 3 {
		t.Fatalf("TriplesSeq visited %d triples, want 3", n)
	}

	// After an early break the locks must be released: a write must not
	// deadlock.
	if err := g.Assert(Triple{Subject: subs[0], Predicate: p, Object: StringValue("post-break")}); err != nil {
		t.Fatalf("assert after early break: %v", err)
	}
}
