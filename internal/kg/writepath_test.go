package kg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// The merge-append AssertBatch fast path (identity-sorted input detected
// in O(n), stable-bucketed by shard instead of comparison-sorted) must be
// semantically identical to the general sorted path: same facts, same
// added count, same index contents.
func TestAssertBatchSortedEquivalence(t *testing.T) {
	f := func(ops []uint32, shardBits uint8) bool {
		const nEnts = 12
		const nPreds = 4
		mk := func() (*Graph, []EntityID, []PredicateID, []Value) {
			g := NewGraphWithShards(1 << (shardBits % 4))
			ents := make([]EntityID, nEnts)
			for i := range ents {
				id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
				if err != nil {
					t.Fatal(err)
				}
				ents[i] = id
			}
			preds := make([]PredicateID, nPreds)
			for i := range preds {
				id, err := g.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)})
				if err != nil {
					t.Fatal(err)
				}
				preds[i] = id
			}
			return g, ents, preds, pomTestObjects(ents)
		}
		gSorted, ents, preds, objs := mk()
		gShuffled, _, _, _ := mk()

		batch := make([]Triple, 0, len(ops))
		for _, op := range ops {
			batch = append(batch, Triple{
				Subject:   ents[int(op)%nEnts],
				Predicate: preds[int(op>>4)%nPreds],
				Object:    objs[int(op>>8)%len(objs)],
			})
		}
		sorted := append([]Triple(nil), batch...)
		sortTriplesByIdentity(sorted)
		shuffled := append([]Triple(nil), batch...)
		rand.New(rand.NewSource(int64(len(ops)))).Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})

		addedSorted, err := gSorted.AssertBatch(sorted)
		if err != nil {
			return false
		}
		addedShuffled, err := gShuffled.AssertBatch(shuffled)
		if err != nil {
			return false
		}
		if addedSorted != addedShuffled {
			t.Fatalf("added: sorted path %d vs general path %d", addedSorted, addedShuffled)
		}
		a, b := gSorted.AllTriples(), gShuffled.AllTriples()
		if len(a) != len(b) {
			t.Fatalf("AllTriples: %d vs %d triples", len(a), len(b))
		}
		for i := range a {
			if a[i].IdentityKey() != b[i].IdentityKey() {
				t.Fatalf("AllTriples[%d]: %v vs %v", i, a[i], b[i])
			}
		}
		checkPomAgainstSweep(t, gSorted, preds, objs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func sortTriplesByIdentity(ts []Triple) {
	keys := make([]TripleKey, len(ts))
	for i := range ts {
		keys[i] = ts[i].IdentityKey()
	}
	// Insertion sort on precomputed keys: fine for test-sized batches and
	// stable, so in-batch duplicates keep their input order.
	for i := 1; i < len(ts); i++ {
		tv, kv := ts[i], keys[i]
		j := i - 1
		for j >= 0 && keys[j].Compare(kv) > 0 {
			ts[j+1], keys[j+1] = ts[j], keys[j]
			j--
		}
		ts[j+1], keys[j+1] = tv, kv
	}
}

// On the merge-append path, the first occurrence of an in-batch duplicate
// identity must win (same provenance contract as the sorting path).
func TestAssertBatchSortedFirstWins(t *testing.T) {
	g := NewGraphWithShards(4)
	a, err := g.AddEntity(Entity{Key: "a"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.AddPredicate(Predicate{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	first := Triple{Subject: a, Predicate: p, Object: IntValue(7), Prov: Provenance{Source: "first"}}
	dup := first
	dup.Prov.Source = "second"
	added, err := g.AssertBatch([]Triple{first, dup}) // equal keys: sorted input
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	facts := g.Facts(a, p)
	if len(facts) != 1 || facts[0].Prov.Source != "first" {
		t.Fatalf("facts = %+v, want single fact with Source=first", facts)
	}
}

// Buffered pom deltas must be invisible to readers — count accessors
// answer read-through without draining, posting-list accessors
// flush-on-read — must drain on watermark-bearing reads (rlockAll), and
// must drain eagerly on SyncIndexes.
func TestPomDeltaBufferLifecycle(t *testing.T) {
	g := NewGraphWithShards(8)
	p, _ := g.AddPredicate(Predicate{Name: "p"})
	team, err := g.AddEntity(Entity{Key: "team"})
	if err != nil {
		t.Fatal(err)
	}
	assertOne := func(i int) {
		s, err := g.AddEntity(Entity{Key: fmt.Sprintf("s%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: EntityValue(team)}); err != nil {
			t.Fatal(err)
		}
	}

	assertOne(0)
	if g.pomDirtyShards.Load() == 0 {
		t.Fatal("no dirty shard after a buffered assert")
	}
	// Read-your-writes without a drain: the count accessor answers
	// read-through, merging the buffered delta, and leaves the buffer in
	// place for the next posting-list reader or threshold flush.
	if got := g.SubjectsWithCount(p, EntityValue(team)); got != 1 {
		t.Fatalf("SubjectsWithCount = %d, want 1", got)
	}
	if g.pomDirtyShards.Load() == 0 {
		t.Fatal("count read-through drained the buffers; counts must not pay the drain")
	}
	// Posting-list reads still drain the buffer they need.
	if got := g.SubjectsWith(p, EntityValue(team)); len(got) != 1 {
		t.Fatalf("SubjectsWith = %v, want one subject", got)
	}
	if g.pomDirtyShards.Load() != 0 {
		t.Fatal("buffers still dirty after a posting-list read")
	}

	assertOne(1)
	g.TriplesSnapshot(func(Triple) bool { return true })
	if g.pomDirtyShards.Load() != 0 {
		t.Fatal("buffers still dirty after a watermark-bearing read")
	}
	for i := range g.shards {
		if len(g.shards[i].pomPending) != 0 {
			t.Fatalf("shard %d has %d pending deltas after rlockAll", i, len(g.shards[i].pomPending))
		}
	}

	assertOne(2)
	g.SyncIndexes()
	if g.pomDirtyShards.Load() != 0 {
		t.Fatal("buffers still dirty after SyncIndexes")
	}
	if got := g.PredicateFrequency(p); got != 3 {
		t.Fatalf("PredicateFrequency = %d, want 3", got)
	}
}

// The writer-side threshold flush: once a shard's buffer reaches the
// configured threshold the writer drains it itself, with no reader
// involved.
func TestPomDeltaThresholdFlush(t *testing.T) {
	g := NewGraphWithOptions(GraphOptions{Shards: 1, PomFlushThreshold: 4})
	p, _ := g.AddPredicate(Predicate{Name: "p"})
	s, err := g.AddEntity(Entity{Key: "s"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if g.pomDirtyShards.Load() != 0 {
		t.Fatal("buffer not flushed at threshold")
	}
	// Threshold 1 is the synchronous baseline: never dirty after a write.
	g1 := NewGraphWithOptions(GraphOptions{Shards: 4, PomFlushThreshold: 1})
	p1, _ := g1.AddPredicate(Predicate{Name: "p"})
	s1, err := g1.AddEntity(Entity{Key: "s"})
	if err != nil {
		t.Fatal(err)
	}
	if err := g1.Assert(Triple{Subject: s1, Predicate: p1, Object: IntValue(1)}); err != nil {
		t.Fatal(err)
	}
	if g1.pomDirtyShards.Load() != 0 {
		t.Fatal("threshold-1 graph left a dirty buffer")
	}
}

// Hot postings switch to position-mapped tombstones on their first
// retract and compact once half dead; through all of it the accessors
// must report live subjects only, in assertion order, for both the pom
// posting and the osp incoming posting.
func TestPostingTombstonesAndCompaction(t *testing.T) {
	const n = 200 // well past postingIdxThreshold
	g := NewGraphWithShards(1)
	p, _ := g.AddPredicate(Predicate{Name: "type"})
	person, err := g.AddEntity(Entity{Key: "Person"})
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]EntityID, n)
	batch := make([]Triple, n)
	for i := range subs {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("s%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = id
		batch[i] = Triple{Subject: id, Predicate: p, Object: EntityValue(person)}
	}
	if _, err := g.AssertBatch(batch); err != nil {
		t.Fatal(err)
	}

	obj := EntityValue(person)
	live := append([]EntityID(nil), subs...)
	rng := rand.New(rand.NewSource(1))
	for round := 0; round < 3; round++ {
		// Retract a random half of the live subjects.
		for i := 0; i < len(live)/2; i++ {
			j := rng.Intn(len(live))
			s := live[j]
			live = append(live[:j], live[j+1:]...)
			if !g.Retract(Triple{Subject: s, Predicate: p, Object: obj}) {
				t.Fatalf("retract of live subject %v failed", s)
			}
		}
		got := g.SubjectsWith(p, obj)
		if len(got) != len(live) {
			t.Fatalf("round %d: %d live subjects, want %d", round, len(got), len(live))
		}
		// Assertion order must survive tombstoning and compaction: the
		// returned order is the relative order of the original batch plus
		// re-asserts at the end.
		wantOrder := make(map[EntityID]int, len(live))
		for i, s := range got {
			wantOrder[s] = i
		}
		for i := 1; i < len(got); i++ {
			if wantOrder[got[i-1]] >= wantOrder[got[i]] {
				t.Fatalf("round %d: order not strictly increasing", round)
			}
		}
		if c := g.SubjectsWithCount(p, obj); c != len(live) {
			t.Fatalf("round %d: count %d, want %d", round, c, len(live))
		}
		if inc := g.Incoming(person); len(inc) != len(live) {
			t.Fatalf("round %d: Incoming = %d triples, want %d", round, len(inc), len(live))
		}
		// Re-assert a few retracted subjects; they append at the end.
		for i := 0; i < 10 && len(live) < n; i++ {
			var s EntityID
			for {
				s = subs[rng.Intn(n)]
				if _, ok := wantOrder[s]; !ok {
					break
				}
			}
			if err := g.Assert(Triple{Subject: s, Predicate: p, Object: obj}); err != nil {
				t.Fatal(err)
			}
			live = append(live, s)
			wantOrder[s] = len(wantOrder)
		}
		if c := g.SubjectsWithCount(p, obj); c != len(live) {
			t.Fatalf("round %d after re-assert: count %d, want %d", round, c, len(live))
		}
	}

	// The pom posting must actually be running the tombstone scheme.
	g.SyncIndexes()
	st := g.pomStripe(p)
	post := st.preds[p].objs[obj.MapKey()]
	if post.idx == nil {
		t.Fatal("hot posting never built its position map")
	}
	if post.dead*2 >= len(post.subs)+2 {
		t.Fatalf("posting not compacting: %d dead of %d slots", post.dead, len(post.subs))
	}
	// And so must the osp posting (single shard, so the hub's incoming
	// posting is long enough to index).
	osp := g.shards[0].osp[person]
	if osp.idx == nil {
		t.Fatal("hot osp posting never built its position map")
	}

	// Retract everything: the posting and the osp entry must drain fully.
	for _, s := range g.SubjectsWith(p, obj) {
		if !g.Retract(Triple{Subject: s, Predicate: p, Object: obj}) {
			t.Fatalf("final drain: retract of %v failed", s)
		}
	}
	if c := g.SubjectsWithCount(p, obj); c != 0 {
		t.Fatalf("count after full drain = %d, want 0", c)
	}
	if len(g.Incoming(person)) != 0 {
		t.Fatal("Incoming non-empty after full drain")
	}
	if g.PredicateFrequency(p) != 0 {
		t.Fatalf("PredicateFrequency after drain = %d, want 0", g.PredicateFrequency(p))
	}
}
