// Package kg implements the core knowledge-graph data model used by the
// Saga reproduction: entities, predicates, literals, triples with
// provenance, an ontology type hierarchy, and an in-memory triple store
// with SPO/POS/OSP indexes and a mutation log.
//
// The package corresponds to systems S1 and S2 in DESIGN.md. Everything
// else in the repository (graph engine, embeddings, annotation, ODKE,
// on-device construction) is layered on top of this model.
package kg

import "fmt"

// EntityID is a dense, graph-assigned identifier for an entity. Dense IDs
// let the embedding trainer index parameter matrices directly by ID.
type EntityID uint32

// PredicateID is a dense, graph-assigned identifier for a predicate.
type PredicateID uint32

// TypeID is a dense identifier for an ontology type.
type TypeID uint32

// NoEntity is the zero EntityID and is never assigned to a real entity.
const NoEntity EntityID = 0

// NoPredicate is the zero PredicateID and is never assigned.
const NoPredicate PredicateID = 0

// NoType is the zero TypeID and is never assigned.
const NoType TypeID = 0

func (e EntityID) String() string    { return fmt.Sprintf("E%d", uint32(e)) }
func (p PredicateID) String() string { return fmt.Sprintf("P%d", uint32(p)) }
func (t TypeID) String() string      { return fmt.Sprintf("T%d", uint32(t)) }
