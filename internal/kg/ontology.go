package kg

import (
	"fmt"
	"sort"
	"sync"
)

// Ontology is the type system of the knowledge graph: a forest of types
// connected by subtype-of edges. Entities are assigned one or more types;
// queries like "movies" → ontology_type_movie (paper §1) resolve against
// it, and the annotation service uses it for type-compatibility scoring.
//
// Ontology is safe for concurrent use.
type Ontology struct {
	mu     sync.RWMutex
	names  []string // TypeID -> name (index 0 unused)
	byName map[string]TypeID
	parent []TypeID // TypeID -> parent (NoType for roots)
	// children is derived and maintained incrementally.
	children map[TypeID][]TypeID
}

// NewOntology returns an empty ontology.
func NewOntology() *Ontology {
	return &Ontology{
		names:    []string{""},
		byName:   make(map[string]TypeID),
		parent:   []TypeID{NoType},
		children: make(map[TypeID][]TypeID),
	}
}

// AddType registers a type under the given parent. parent == NoType creates
// a root type. Adding an existing name returns the existing ID (the parent
// must match, otherwise an error is returned).
func (o *Ontology) AddType(name string, parent TypeID) (TypeID, error) {
	if name == "" {
		return NoType, fmt.Errorf("kg: empty type name")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if id, ok := o.byName[name]; ok {
		if o.parent[id] != parent {
			return NoType, fmt.Errorf("kg: type %q already exists with different parent", name)
		}
		return id, nil
	}
	if parent != NoType && int(parent) >= len(o.names) {
		return NoType, fmt.Errorf("kg: unknown parent type %v", parent)
	}
	id := TypeID(len(o.names))
	o.names = append(o.names, name)
	o.parent = append(o.parent, parent)
	o.byName[name] = id
	if parent != NoType {
		o.children[parent] = append(o.children[parent], id)
	}
	return id, nil
}

// TypeID looks up a type by name.
func (o *Ontology) TypeID(name string) (TypeID, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	id, ok := o.byName[name]
	return id, ok
}

// Name returns the name of a type, or "" if unknown.
func (o *Ontology) Name(id TypeID) string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if int(id) >= len(o.names) {
		return ""
	}
	return o.names[id]
}

// Parent returns the parent of a type (NoType for roots or unknown types).
func (o *Ontology) Parent(id TypeID) TypeID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if int(id) >= len(o.parent) {
		return NoType
	}
	return o.parent[id]
}

// IsA reports whether t is equal to, or a descendant of, ancestor.
func (o *Ontology) IsA(t, ancestor TypeID) bool {
	if t == NoType || ancestor == NoType {
		return false
	}
	o.mu.RLock()
	defer o.mu.RUnlock()
	for t != NoType {
		if t == ancestor {
			return true
		}
		if int(t) >= len(o.parent) {
			return false
		}
		t = o.parent[t]
	}
	return false
}

// Ancestors returns the chain from t's parent up to its root, nearest first.
func (o *Ontology) Ancestors(t TypeID) []TypeID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []TypeID
	for int(t) < len(o.parent) {
		p := o.parent[t]
		if p == NoType {
			break
		}
		out = append(out, p)
		t = p
	}
	return out
}

// Children returns the direct subtypes of t in insertion order.
func (o *Ontology) Children(t TypeID) []TypeID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	kids := o.children[t]
	out := make([]TypeID, len(kids))
	copy(out, kids)
	return out
}

// LCA returns the lowest common ancestor of a and b, or NoType when the
// two types live in different trees. It is used by the contextual reranker
// as a crude type-similarity signal.
func (o *Ontology) LCA(a, b TypeID) TypeID {
	o.mu.RLock()
	defer o.mu.RUnlock()
	seen := make(map[TypeID]bool)
	for t := a; t != NoType && int(t) < len(o.parent); t = o.parent[t] {
		seen[t] = true
	}
	for t := b; t != NoType && int(t) < len(o.parent); t = o.parent[t] {
		if seen[t] {
			return t
		}
	}
	return NoType
}

// Len returns the number of registered types.
func (o *Ontology) Len() int {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return len(o.names) - 1
}

// TypeNames returns all registered type names, sorted.
func (o *Ontology) TypeNames() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.byName))
	for name := range o.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
