package kg

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func mustEntity(t *testing.T, g *Graph, key, name string, types ...TypeID) EntityID {
	t.Helper()
	id, err := g.AddEntity(Entity{Key: key, Name: name, Types: types})
	if err != nil {
		t.Fatalf("AddEntity(%q): %v", key, err)
	}
	return id
}

func mustPredicate(t *testing.T, g *Graph, name string) PredicateID {
	t.Helper()
	id, err := g.AddPredicate(Predicate{Name: name})
	if err != nil {
		t.Fatalf("AddPredicate(%q): %v", name, err)
	}
	return id
}

func TestAddEntityDedup(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "LeBron James")
	b := mustEntity(t, g, "Q1", "different name ignored")
	if a != b {
		t.Fatalf("duplicate key produced distinct IDs: %v vs %v", a, b)
	}
	if g.NumEntities() != 1 {
		t.Fatalf("NumEntities = %d, want 1", g.NumEntities())
	}
	if got := g.Entity(a).Name; got != "LeBron James" {
		t.Fatalf("first-writer-wins violated: name = %q", got)
	}
}

func TestAddEntityEmptyKey(t *testing.T) {
	g := NewGraph()
	if _, err := g.AddEntity(Entity{Key: ""}); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestEntityByKey(t *testing.T) {
	g := NewGraph()
	id := mustEntity(t, g, "Q7", "Joe Root")
	e, ok := g.EntityByKey("Q7")
	if !ok || e.ID != id {
		t.Fatalf("EntityByKey(Q7) = %v,%v; want id %v", e, ok, id)
	}
	if _, ok := g.EntityByKey("missing"); ok {
		t.Fatal("EntityByKey returned ok for unknown key")
	}
}

func TestAssertAndFacts(t *testing.T) {
	g := NewGraph()
	lebron := mustEntity(t, g, "Q1", "LeBron James")
	bball := mustEntity(t, g, "Q2", "Basketball Player")
	occ := mustPredicate(t, g, "occupation")

	tr := Triple{Subject: lebron, Predicate: occ, Object: EntityValue(bball)}
	if err := g.Assert(tr); err != nil {
		t.Fatalf("Assert: %v", err)
	}
	facts := g.Facts(lebron, occ)
	if len(facts) != 1 || facts[0].Object.Entity != bball {
		t.Fatalf("Facts = %v, want one occupation fact", facts)
	}
	if !g.HasFact(lebron, occ, EntityValue(bball)) {
		t.Fatal("HasFact = false for asserted fact")
	}
	if g.HasFact(bball, occ, EntityValue(lebron)) {
		t.Fatal("HasFact = true for reversed fact")
	}
}

func TestAssertValidation(t *testing.T) {
	g := NewGraph()
	e := mustEntity(t, g, "Q1", "A")
	p := mustPredicate(t, g, "p")
	cases := []Triple{
		{Subject: 999, Predicate: p, Object: IntValue(1)},
		{Subject: e, Predicate: 999, Object: IntValue(1)},
		{Subject: e, Predicate: p},                                // zero object
		{Subject: e, Predicate: p, Object: EntityValue(777)},      // unknown object entity
		{Subject: NoEntity, Predicate: p, Object: IntValue(1)},    // zero subject
		{Subject: e, Predicate: NoPredicate, Object: IntValue(1)}, // zero predicate
	}
	for i, tr := range cases {
		if err := g.Assert(tr); err == nil {
			t.Errorf("case %d: invalid triple %v accepted", i, tr)
		}
	}
	if g.NumTriples() != 0 {
		t.Fatalf("NumTriples = %d after rejected asserts", g.NumTriples())
	}
}

func TestAssertDedup(t *testing.T) {
	g := NewGraph()
	e := mustEntity(t, g, "Q1", "A")
	p := mustPredicate(t, g, "height")
	tr := Triple{Subject: e, Predicate: p, Object: IntValue(203)}
	for i := 0; i < 3; i++ {
		if err := g.Assert(tr); err != nil {
			t.Fatalf("Assert #%d: %v", i, err)
		}
	}
	if g.NumTriples() != 1 {
		t.Fatalf("NumTriples = %d, want 1 after duplicate asserts", g.NumTriples())
	}
	if len(g.MutationsSince(0)) != 1 {
		t.Fatalf("mutation log has %d entries, want 1", len(g.MutationsSince(0)))
	}
}

func TestRetract(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	b := mustEntity(t, g, "Q2", "B")
	p := mustPredicate(t, g, "knows")
	tr := Triple{Subject: a, Predicate: p, Object: EntityValue(b)}
	if err := g.Assert(tr); err != nil {
		t.Fatal(err)
	}
	if !g.Retract(tr) {
		t.Fatal("Retract returned false for asserted fact")
	}
	if g.Retract(tr) {
		t.Fatal("Retract returned true for already-retracted fact")
	}
	if g.HasFact(a, p, EntityValue(b)) {
		t.Fatal("fact still present after retract")
	}
	if len(g.Facts(a, p)) != 0 {
		t.Fatal("Facts non-empty after retract")
	}
	if len(g.Incoming(b)) != 0 {
		t.Fatal("Incoming non-empty after retract")
	}
	if len(g.SubjectsWith(p, EntityValue(b))) != 0 {
		t.Fatal("SubjectsWith non-empty after retract")
	}
	muts := g.MutationsSince(0)
	if len(muts) != 2 || muts[1].Op != OpRetract {
		t.Fatalf("mutation log = %v, want assert+retract", muts)
	}
}

func TestReassertAfterRetract(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	p := mustPredicate(t, g, "dob")
	old := Triple{Subject: a, Predicate: p, Object: StringValue("1980-09-09")}
	fresh := Triple{Subject: a, Predicate: p, Object: StringValue("1979-07-23")}
	if err := g.Assert(old); err != nil {
		t.Fatal(err)
	}
	g.Retract(old)
	if err := g.Assert(fresh); err != nil {
		t.Fatal(err)
	}
	facts := g.Facts(a, p)
	if len(facts) != 1 || facts[0].Object.Str != "1979-07-23" {
		t.Fatalf("facts after replace = %v", facts)
	}
}

func TestIncomingOutgoing(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	b := mustEntity(t, g, "Q2", "B")
	c := mustEntity(t, g, "Q3", "C")
	p := mustPredicate(t, g, "links")
	for _, s := range []EntityID{a, b} {
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: EntityValue(c)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(g.Incoming(c)); got != 2 {
		t.Fatalf("Incoming(c) = %d, want 2", got)
	}
	if got := len(g.Outgoing(a)); got != 1 {
		t.Fatalf("Outgoing(a) = %d, want 1", got)
	}
	subs := g.SubjectsWith(p, EntityValue(c))
	if len(subs) != 2 {
		t.Fatalf("SubjectsWith = %v, want 2 subjects", subs)
	}
}

func TestAllTriplesDeterministic(t *testing.T) {
	g := NewGraph()
	p := mustPredicate(t, g, "p")
	for i := 0; i < 20; i++ {
		mustEntity(t, g, fmt.Sprintf("Q%d", i), "e")
	}
	for i := 1; i <= 19; i++ {
		if err := g.Assert(Triple{Subject: EntityID(i), Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	a := g.AllTriples()
	b := g.AllTriples()
	if len(a) != 19 || len(b) != 19 {
		t.Fatalf("AllTriples lengths = %d,%d", len(a), len(b))
	}
	for i := range a {
		if a[i].SPO() != b[i].SPO() {
			t.Fatalf("non-deterministic order at %d: %v vs %v", i, a[i], b[i])
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Subject < a[i-1].Subject {
			t.Fatalf("subjects not sorted at %d", i)
		}
	}
}

func TestMutationsSince(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	p := mustPredicate(t, g, "p")
	for i := 0; i < 5; i++ {
		if err := g.Assert(Triple{Subject: a, Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(g.MutationsSince(0)); got != 5 {
		t.Fatalf("MutationsSince(0) = %d, want 5", got)
	}
	if got := len(g.MutationsSince(3)); got != 2 {
		t.Fatalf("MutationsSince(3) = %d, want 2", got)
	}
	if got := len(g.MutationsSince(5)); got != 0 {
		t.Fatalf("MutationsSince(5) = %d, want 0", got)
	}
	if g.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", g.LastSeq())
	}
}

func TestPredicateFrequency(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	p := mustPredicate(t, g, "p")
	q := mustPredicate(t, g, "q")
	for i := 0; i < 4; i++ {
		if err := g.Assert(Triple{Subject: a, Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Assert(Triple{Subject: a, Predicate: q, Object: IntValue(0)}); err != nil {
		t.Fatal(err)
	}
	if g.PredicateFrequency(p) != 4 || g.PredicateFrequency(q) != 1 {
		t.Fatalf("freqs = %d,%d want 4,1", g.PredicateFrequency(p), g.PredicateFrequency(q))
	}
	g.Retract(Triple{Subject: a, Predicate: p, Object: IntValue(0)})
	if g.PredicateFrequency(p) != 3 {
		t.Fatalf("freq after retract = %d, want 3", g.PredicateFrequency(p))
	}
}

func TestConcurrentAssertsAndReads(t *testing.T) {
	g := NewGraph()
	p := mustPredicate(t, g, "p")
	const n = 64
	ids := make([]EntityID, n)
	for i := range ids {
		ids[i] = mustEntity(t, g, fmt.Sprintf("Q%d", i), "e")
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				_ = g.Assert(Triple{Subject: ids[i], Predicate: p, Object: IntValue(int64(w*1000 + i))})
				_ = g.Facts(ids[i], p)
				_ = g.NumTriples()
			}
		}(w)
	}
	wg.Wait()
	if got := g.NumTriples(); got != 8*n {
		t.Fatalf("NumTriples = %d, want %d", got, 8*n)
	}
}

func TestStats(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	b := mustEntity(t, g, "Q2", "B")
	rel := mustPredicate(t, g, "rel")
	height := mustPredicate(t, g, "height")
	if err := g.Assert(Triple{Subject: a, Predicate: rel, Object: EntityValue(b)}); err != nil {
		t.Fatal(err)
	}
	if err := g.Assert(Triple{Subject: a, Predicate: height, Object: IntValue(203)}); err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Triples != 2 || s.EntityTriples != 1 || s.LiteralTriples != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxOutDegree != 2 {
		t.Fatalf("MaxOutDegree = %d, want 2", s.MaxOutDegree)
	}
	rare := s.RarePredicates(2)
	if len(rare) != 2 {
		t.Fatalf("RarePredicates(2) = %v, want both predicates", rare)
	}
	top := s.TopPredicates(1)
	if len(top) != 1 {
		t.Fatalf("TopPredicates(1) = %v", top)
	}
}

func TestValueEqualityAndKeys(t *testing.T) {
	now := time.Date(2023, 6, 18, 0, 0, 0, 0, time.UTC)
	cases := []struct {
		a, b  Value
		equal bool
	}{
		{EntityValue(1), EntityValue(1), true},
		{EntityValue(1), EntityValue(2), false},
		{StringValue("x"), StringValue("x"), true},
		{StringValue("x"), StringValue("y"), false},
		{IntValue(5), IntValue(5), true},
		{IntValue(5), FloatValue(5), false},
		{FloatValue(1.5), FloatValue(1.5), true},
		{TimeValue(now), TimeValue(now.In(time.FixedZone("X", 3600))), true},
		{BoolValue(true), BoolValue(true), true},
		{BoolValue(true), BoolValue(false), false},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.equal {
			t.Errorf("case %d: Equal(%v,%v) = %v, want %v", i, c.a, c.b, got, c.equal)
		}
		if c.equal && c.a.Key() != c.b.Key() {
			t.Errorf("case %d: equal values with different keys %q %q", i, c.a.Key(), c.b.Key())
		}
		if !c.equal && c.a.Kind == c.b.Kind && c.a.Key() == c.b.Key() {
			t.Errorf("case %d: unequal same-kind values share key %q", i, c.a.Key())
		}
	}
}

func TestValuePredicatesAndString(t *testing.T) {
	if !EntityValue(3).IsEntity() || EntityValue(3).IsLiteral() {
		t.Fatal("EntityValue classification wrong")
	}
	if IntValue(1).IsEntity() || !IntValue(1).IsLiteral() {
		t.Fatal("IntValue classification wrong")
	}
	if (Value{}).IsLiteral() {
		t.Fatal("zero Value must not be a literal")
	}
	if !BoolValue(true).Bool() || BoolValue(false).Bool() {
		t.Fatal("Bool() payload wrong")
	}
	for _, v := range []Value{EntityValue(1), StringValue("a"), IntValue(2), FloatValue(2.5), BoolValue(true), TimeValue(time.Now())} {
		if v.String() == "" || v.String() == "<invalid>" {
			t.Errorf("String() for %v kind rendered %q", v.Kind, v.String())
		}
	}
}
