package kg

import (
	"fmt"
	"strconv"
	"time"
)

// ValueKind discriminates the kinds of objects a triple can point at.
// Open-domain KGs mix entity-valued facts (LeBron James -occupation->
// Basketball Player) with literal-valued facts (height, dates, external
// identifiers). The distinction matters downstream: §2 of the paper filters
// literal-valued "non-relevant" facts out of embedding training views.
type ValueKind uint8

const (
	// KindEntity is an object that references another entity in the graph.
	KindEntity ValueKind = iota + 1
	// KindString is a free-text literal.
	KindString
	// KindInt is an integer literal.
	KindInt
	// KindFloat is a floating-point literal.
	KindFloat
	// KindTime is a timestamp literal (dates of birth, release dates...).
	KindTime
	// KindBool is a boolean literal.
	KindBool
)

func (k ValueKind) String() string {
	switch k {
	case KindEntity:
		return "entity"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindTime:
		return "time"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is the object position of a triple: either an entity reference or a
// typed literal. The zero Value is invalid.
type Value struct {
	Kind ValueKind
	// Entity is set when Kind == KindEntity.
	Entity EntityID
	// Str is set when Kind == KindString.
	Str string
	// Num holds KindInt (as int64) and KindBool (0/1).
	Num int64
	// Flt is set when Kind == KindFloat.
	Flt float64
	// TS is set when Kind == KindTime.
	TS time.Time
}

// EntityValue returns a Value referencing an entity.
func EntityValue(id EntityID) Value { return Value{Kind: KindEntity, Entity: id} }

// StringValue returns a string-literal Value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// IntValue returns an integer-literal Value.
func IntValue(n int64) Value { return Value{Kind: KindInt, Num: n} }

// FloatValue returns a float-literal Value.
func FloatValue(f float64) Value { return Value{Kind: KindFloat, Flt: f} }

// TimeValue returns a timestamp-literal Value.
func TimeValue(t time.Time) Value { return Value{Kind: KindTime, TS: t.UTC()} }

// BoolValue returns a boolean-literal Value.
func BoolValue(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.Num = 1
	}
	return v
}

// IsEntity reports whether the value references an entity.
func (v Value) IsEntity() bool { return v.Kind == KindEntity }

// IsLiteral reports whether the value is any literal kind.
func (v Value) IsLiteral() bool { return v.Kind != KindEntity && v.Kind != 0 }

// Bool returns the boolean payload of a KindBool value.
func (v Value) Bool() bool { return v.Kind == KindBool && v.Num != 0 }

// Equal reports deep equality of two values. Time values compare with
// time.Time.Equal so location differences do not break equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindEntity:
		return v.Entity == o.Entity
	case KindString:
		return v.Str == o.Str
	case KindInt, KindBool:
		return v.Num == o.Num
	case KindFloat:
		return v.Flt == o.Flt
	case KindTime:
		return v.TS.Equal(o.TS)
	default:
		return false
	}
}

// Key returns a string that uniquely identifies the value within its kind.
// It is used as a map key by the POS index and by fusion grouping.
func (v Value) Key() string {
	switch v.Kind {
	case KindEntity:
		return "e:" + strconv.FormatUint(uint64(v.Entity), 10)
	case KindString:
		return "s:" + v.Str
	case KindInt:
		return "i:" + strconv.FormatInt(v.Num, 10)
	case KindBool:
		return "b:" + strconv.FormatInt(v.Num, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case KindTime:
		return "t:" + strconv.FormatInt(v.TS.UnixNano(), 10)
	default:
		return "?"
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindEntity:
		return v.Entity.String()
	case KindString:
		return strconv.Quote(v.Str)
	case KindInt:
		return strconv.FormatInt(v.Num, 10)
	case KindBool:
		return strconv.FormatBool(v.Num != 0)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case KindTime:
		return v.TS.Format("2006-01-02")
	default:
		return "<invalid>"
	}
}
