package kg

import (
	"fmt"
	"math"
	"strconv"
	"time"
)

// ValueKind discriminates the kinds of objects a triple can point at.
// Open-domain KGs mix entity-valued facts (LeBron James -occupation->
// Basketball Player) with literal-valued facts (height, dates, external
// identifiers). The distinction matters downstream: §2 of the paper filters
// literal-valued "non-relevant" facts out of embedding training views.
type ValueKind uint8

const (
	// KindEntity is an object that references another entity in the graph.
	KindEntity ValueKind = iota + 1
	// KindString is a free-text literal.
	KindString
	// KindInt is an integer literal.
	KindInt
	// KindFloat is a floating-point literal.
	KindFloat
	// KindTime is a timestamp literal (dates of birth, release dates...).
	KindTime
	// KindBool is a boolean literal.
	KindBool
)

func (k ValueKind) String() string {
	switch k {
	case KindEntity:
		return "entity"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindTime:
		return "time"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Value is the object position of a triple: either an entity reference or a
// typed literal. The zero Value is invalid.
type Value struct {
	Kind ValueKind
	// Entity is set when Kind == KindEntity.
	Entity EntityID
	// Str is set when Kind == KindString.
	Str string
	// Num holds KindInt (as int64) and KindBool (0/1).
	Num int64
	// Flt is set when Kind == KindFloat.
	Flt float64
	// TS is set when Kind == KindTime.
	TS time.Time
}

// EntityValue returns a Value referencing an entity.
func EntityValue(id EntityID) Value { return Value{Kind: KindEntity, Entity: id} }

// StringValue returns a string-literal Value.
func StringValue(s string) Value { return Value{Kind: KindString, Str: s} }

// IntValue returns an integer-literal Value.
func IntValue(n int64) Value { return Value{Kind: KindInt, Num: n} }

// FloatValue returns a float-literal Value.
func FloatValue(f float64) Value { return Value{Kind: KindFloat, Flt: f} }

// TimeValue returns a timestamp-literal Value.
func TimeValue(t time.Time) Value { return Value{Kind: KindTime, TS: t.UTC()} }

// BoolValue returns a boolean-literal Value.
func BoolValue(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.Num = 1
	}
	return v
}

// IsEntity reports whether the value references an entity.
func (v Value) IsEntity() bool { return v.Kind == KindEntity }

// IsLiteral reports whether the value is any literal kind.
func (v Value) IsLiteral() bool { return v.Kind != KindEntity && v.Kind != 0 }

// Bool returns the boolean payload of a KindBool value.
func (v Value) Bool() bool { return v.Kind == KindBool && v.Num != 0 }

// Equal reports deep equality of two values. Time values compare with
// time.Time.Equal so location differences do not break equality.
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind {
		return false
	}
	switch v.Kind {
	case KindEntity:
		return v.Entity == o.Entity
	case KindString:
		return v.Str == o.Str
	case KindInt, KindBool:
		return v.Num == o.Num
	case KindFloat:
		return v.Flt == o.Flt
	case KindTime:
		return v.TS.Equal(o.TS)
	default:
		return false
	}
}

// ValueKey is the comparable identity of a Value: two Values denote the
// same object iff their ValueKeys are equal (with Value.Equal semantics,
// modulo the ±0.0 and NaN-payload caveats float bit patterns imply — the
// same caveats the string Key() encoding has always had). It is a plain
// struct so it can key Go maps with zero allocation, unlike the
// Sprintf-built string keys it replaces on the hot Assert/Retract/HasFact
// paths.
//
// Encoding: Kind discriminates; Num carries the payload for every
// non-string kind (entity ID, int, bool as 0/1, float as IEEE-754 bits,
// time as UnixNano); Str carries string literals. The zero ValueKey is
// the identity of the invalid zero Value.
type ValueKey struct {
	Kind ValueKind
	Num  int64
	Str  string
}

// MapKey returns the comparable identity key of the value.
func (v Value) MapKey() ValueKey {
	switch v.Kind {
	case KindEntity:
		return ValueKey{Kind: KindEntity, Num: int64(v.Entity)}
	case KindString:
		return ValueKey{Kind: KindString, Str: v.Str}
	case KindInt, KindBool:
		return ValueKey{Kind: v.Kind, Num: v.Num}
	case KindFloat:
		return ValueKey{Kind: KindFloat, Num: int64(math.Float64bits(v.Flt))}
	case KindTime:
		return ValueKey{Kind: KindTime, Num: v.TS.UnixNano()}
	default:
		return ValueKey{}
	}
}

// Value reconstructs the Value the key denotes. The round-trip
// v.MapKey().Value() preserves identity (MapKey(v) == MapKey of the
// result) for every kind: float bit patterns (including NaN payloads and
// signed zeros) survive via the IEEE-754 bits, times come back as the
// UTC instant of the stored UnixNano. The predicate-major index uses it
// to enumerate (object, subject) pairs without storing Values twice;
// reconstructed triples carry no provenance.
func (k ValueKey) Value() Value {
	switch k.Kind {
	case KindEntity:
		return Value{Kind: KindEntity, Entity: EntityID(k.Num)}
	case KindString:
		return Value{Kind: KindString, Str: k.Str}
	case KindInt, KindBool:
		return Value{Kind: k.Kind, Num: k.Num}
	case KindFloat:
		return Value{Kind: KindFloat, Flt: math.Float64frombits(uint64(k.Num))}
	case KindTime:
		return Value{Kind: KindTime, TS: time.Unix(0, k.Num).UTC()}
	default:
		return Value{}
	}
}

// Compare totally orders value keys (by kind, then numeric payload, then
// string payload), enabling deterministic sorts without materializing
// string keys. The order is arbitrary but stable.
func (k ValueKey) Compare(o ValueKey) int {
	if k.Kind != o.Kind {
		if k.Kind < o.Kind {
			return -1
		}
		return 1
	}
	if k.Num != o.Num {
		if k.Num < o.Num {
			return -1
		}
		return 1
	}
	if k.Str != o.Str {
		if k.Str < o.Str {
			return -1
		}
		return 1
	}
	return 0
}

// Key returns a string that uniquely identifies the value within its kind.
// It is retained for rendering and for callers that need a printable
// identity; index hot paths use the allocation-free MapKey instead.
func (v Value) Key() string {
	switch v.Kind {
	case KindEntity:
		return "e:" + strconv.FormatUint(uint64(v.Entity), 10)
	case KindString:
		return "s:" + v.Str
	case KindInt:
		return "i:" + strconv.FormatInt(v.Num, 10)
	case KindBool:
		return "b:" + strconv.FormatInt(v.Num, 10)
	case KindFloat:
		return "f:" + strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case KindTime:
		return "t:" + strconv.FormatInt(v.TS.UnixNano(), 10)
	default:
		return "?"
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindEntity:
		return v.Entity.String()
	case KindString:
		return strconv.Quote(v.Str)
	case KindInt:
		return strconv.FormatInt(v.Num, 10)
	case KindBool:
		return strconv.FormatBool(v.Num != 0)
	case KindFloat:
		return strconv.FormatFloat(v.Flt, 'g', -1, 64)
	case KindTime:
		return v.TS.Format("2006-01-02")
	default:
		return "<invalid>"
	}
}
