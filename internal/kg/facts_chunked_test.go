package kg

import (
	"testing"
)

// TestFactsChunkedMatchesFactsFunc: the chunked read delivers the same
// triples in the same order as the streaming read, across chunk sizes
// that do and do not divide the list length.
func TestFactsChunkedMatchesFactsFunc(t *testing.T) {
	g := NewGraph()
	s := mustEntity(t, g, "Q1", "subj")
	p := mustPredicate(t, g, "score")
	const total = 10
	for i := 0; i < total; i++ {
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var want []Triple
	g.FactsFunc(s, p, func(tr Triple) bool {
		want = append(want, tr)
		return true
	})
	for _, chunk := range []int{1, 3, 10, 1000, 0 /* default */, -5} {
		var got []Triple
		g.FactsChunked(s, p, chunk, func(c []Triple, restarted bool) bool {
			if restarted {
				t.Fatalf("chunk=%d: restart on a quiescent graph", chunk)
			}
			got = append(got, c...)
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("chunk=%d: %d triples, want %d", chunk, len(got), len(want))
		}
		for i := range want {
			if got[i].IdentityKey() != want[i].IdentityKey() {
				t.Fatalf("chunk=%d: order diverged at %d", chunk, i)
			}
		}
	}
}

// TestFactsChunkedEarlyStop: returning false stops the enumeration.
func TestFactsChunkedEarlyStop(t *testing.T) {
	g := NewGraph()
	s := mustEntity(t, g, "Q1", "subj")
	p := mustPredicate(t, g, "score")
	for i := 0; i < 9; i++ {
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	calls := 0
	g.FactsChunked(s, p, 2, func(c []Triple, restarted bool) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("callback ran %d times after returning false", calls)
	}
}

// TestFactsChunkedRestartOnRetract: a retract in the subject's shard
// between chunks splices the fact list, so the read must restart from
// offset zero with restarted=true — saved offsets are only valid while
// the shard's splice counter is unchanged.
func TestFactsChunkedRestartOnRetract(t *testing.T) {
	g := NewGraph()
	s := mustEntity(t, g, "Q1", "subj")
	p := mustPredicate(t, g, "score")
	const total = 8
	for i := 0; i < total; i++ {
		if err := g.Assert(Triple{Subject: s, Predicate: p, Object: IntValue(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	var restarts int
	var got []Triple
	first := true
	g.FactsChunked(s, p, 2, func(c []Triple, restarted bool) bool {
		if restarted {
			restarts++
			got = got[:0]
		}
		got = append(got, c...)
		if first {
			first = false
			// Retract the first fact mid-enumeration: splices the list.
			if !g.Retract(Triple{Subject: s, Predicate: p, Object: IntValue(0)}) {
				t.Fatal("retract failed")
			}
		}
		return true
	})
	if restarts == 0 {
		t.Fatal("no restart after a concurrent retract spliced the list")
	}
	if len(got) != total-1 {
		t.Fatalf("post-restart read saw %d facts, want %d", len(got), total-1)
	}
	// Asserts do NOT restart the read: lists only grow in place.
	restarts = 0
	first = true
	g.FactsChunked(s, p, 2, func(c []Triple, restarted bool) bool {
		if restarted {
			restarts++
		}
		if first {
			first = false
			if err := g.Assert(Triple{Subject: s, Predicate: p, Object: IntValue(99)}); err != nil {
				t.Fatal(err)
			}
		}
		return true
	})
	if restarts != 0 {
		t.Fatal("an append-only assert restarted the chunked read")
	}
}
