package kg

import (
	"fmt"
	"strconv"
	"time"
)

// Provenance records where a fact came from and how much we trust it.
// The ODKE corroboration model (§4 of the paper) consumes these fields as
// features: extractor type and confidence, source quality, and recency.
type Provenance struct {
	// Source names the origin: a curated feed, an extractor id, a device
	// source ("contacts", "calendar"), etc.
	Source string
	// Confidence in [0,1] as reported by the producing system.
	Confidence float64
	// ObservedAt is when the fact was ingested or extracted.
	ObservedAt time.Time
	// SourceQuality in [0,1] is a prior on the source (page quality for web
	// extraction, feed trust for curated sources).
	SourceQuality float64
}

// Triple is a single fact: subject, predicate, object, with provenance.
type Triple struct {
	Subject   EntityID
	Predicate PredicateID
	Object    Value
	Prov      Provenance
}

// TripleKey is the comparable (subject, predicate, object) identity of a
// triple, ignoring provenance. Two triples with equal TripleKeys assert
// the same fact. It keys the graph's dedup set and materialized-view
// indexes without the per-operation string build SPO() requires.
type TripleKey struct {
	Subject   EntityID
	Predicate PredicateID
	Object    ValueKey
}

// Compare totally orders triple keys by subject, predicate, then object
// key. The order is arbitrary but stable.
func (k TripleKey) Compare(o TripleKey) int {
	if k.Subject != o.Subject {
		if k.Subject < o.Subject {
			return -1
		}
		return 1
	}
	if k.Predicate != o.Predicate {
		if k.Predicate < o.Predicate {
			return -1
		}
		return 1
	}
	return k.Object.Compare(o.Object)
}

// IdentityKey returns the triple's comparable SPO identity.
func (t Triple) IdentityKey() TripleKey {
	return TripleKey{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object.MapKey()}
}

// SPO returns the (subject, predicate, object-key) identity of the triple
// as a printable string, ignoring provenance. Hot paths use IdentityKey;
// SPO remains for rendering and debugging.
func (t Triple) SPO() string {
	return strconv.FormatUint(uint64(t.Subject), 10) + "|" +
		strconv.FormatUint(uint64(t.Predicate), 10) + "|" + t.Object.Key()
}

func (t Triple) String() string {
	return fmt.Sprintf("(%s, %s, %s)", t.Subject, t.Predicate, t.Object)
}

// MutationOp is the kind of change recorded in the mutation log.
type MutationOp uint8

const (
	// OpAssert adds a fact.
	OpAssert MutationOp = iota + 1
	// OpRetract removes a fact.
	OpRetract
)

func (op MutationOp) String() string {
	switch op {
	case OpAssert:
		return "assert"
	case OpRetract:
		return "retract"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Mutation is one entry in the graph's mutation log. The log gives
// downstream consumers (materialized views, annotation freshness, sync)
// a totally ordered change feed, which is how Saga's streaming
// construction path exposes updates.
type Mutation struct {
	// Seq is the 1-based sequence number of the mutation.
	Seq uint64
	Op  MutationOp
	T   Triple
}
