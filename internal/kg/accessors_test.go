package kg

import (
	"strings"
	"testing"
)

func TestAccessorsAndStringers(t *testing.T) {
	g := NewGraph()
	if g.Ontology() == nil {
		t.Fatal("nil ontology")
	}
	ty, err := g.Ontology().AddType("Person", NoType)
	if err != nil {
		t.Fatal(err)
	}
	a := mustEntity(t, g, "Q1", "A", ty)
	b := mustEntity(t, g, "Q2", "B")
	p := mustPredicate(t, g, "knows")

	// HasType.
	if !g.Entity(a).HasType(ty) {
		t.Fatal("HasType(a, Person) = false")
	}
	if g.Entity(b).HasType(ty) {
		t.Fatal("HasType(b, Person) = true")
	}

	// Ontology accessors.
	if id, ok := g.Ontology().TypeID("Person"); !ok || id != ty {
		t.Fatalf("TypeID = %v,%v", id, ok)
	}
	if name := g.Ontology().Name(ty); name != "Person" {
		t.Fatalf("Name = %q", name)
	}
	if g.Ontology().Name(TypeID(99)) != "" {
		t.Fatal("unknown type has a name")
	}
	if g.Ontology().Parent(ty) != NoType {
		t.Fatal("root type has a parent")
	}
	if g.Ontology().Parent(TypeID(99)) != NoType {
		t.Fatal("unknown type has a parent")
	}

	// SetPopularity.
	g.SetPopularity(a, 0.42)
	if got := g.Entity(a).Popularity; got != 0.42 {
		t.Fatalf("popularity = %v", got)
	}
	g.SetPopularity(EntityID(999), 1) // out of range must not panic

	// Predicate accessors.
	if g.Predicate(p) == nil || g.Predicate(p).Name != "knows" {
		t.Fatal("Predicate lookup failed")
	}
	if g.Predicate(PredicateID(99)) != nil {
		t.Fatal("unknown predicate resolved")
	}
	if pr, ok := g.PredicateByName("knows"); !ok || pr.ID != p {
		t.Fatalf("PredicateByName = %v,%v", pr, ok)
	}
	if _, ok := g.PredicateByName("nope"); ok {
		t.Fatal("unknown predicate name resolved")
	}

	// AssertAll.
	batch := []Triple{
		{Subject: a, Predicate: p, Object: EntityValue(b)},
		{Subject: b, Predicate: p, Object: EntityValue(a)},
	}
	if err := g.AssertAll(batch); err != nil {
		t.Fatal(err)
	}
	if g.NumTriples() != 2 {
		t.Fatalf("NumTriples = %d", g.NumTriples())
	}
	if err := g.AssertAll([]Triple{{Subject: 999, Predicate: p, Object: IntValue(1)}}); err == nil {
		t.Fatal("AssertAll with bad triple accepted")
	}

	// Entities / Predicates iterators with early stop.
	var ents int
	g.Entities(func(*Entity) bool {
		ents++
		return ents < 1
	})
	if ents != 1 {
		t.Fatalf("early-stop Entities visited %d", ents)
	}
	var preds int
	g.Predicates(func(*Predicate) bool {
		preds++
		return true
	})
	if preds != 1 {
		t.Fatalf("Predicates visited %d", preds)
	}

	// Stringers.
	tr := batch[0]
	if s := tr.String(); !strings.Contains(s, "E1") || !strings.Contains(s, "P1") {
		t.Fatalf("Triple.String = %q", s)
	}
	if OpAssert.String() != "assert" || OpRetract.String() != "retract" {
		t.Fatal("MutationOp stringers wrong")
	}
	if MutationOp(9).String() == "" {
		t.Fatal("unknown op stringer empty")
	}
	kinds := []ValueKind{KindEntity, KindString, KindInt, KindFloat, KindTime, KindBool, ValueKind(42)}
	for _, k := range kinds {
		if k.String() == "" {
			t.Fatalf("ValueKind(%d).String empty", k)
		}
	}
	if ty.String() == "" || a.String() == "" || p.String() == "" {
		t.Fatal("ID stringers empty")
	}
}

func TestRemoveHelpersMissingElement(t *testing.T) {
	g := NewGraph()
	a := mustEntity(t, g, "Q1", "A")
	b := mustEntity(t, g, "Q2", "B")
	p := mustPredicate(t, g, "p")
	if err := g.Assert(Triple{Subject: a, Predicate: p, Object: EntityValue(b)}); err != nil {
		t.Fatal(err)
	}
	// Retract a triple with same subject+predicate but different object:
	// exercises the not-found path of removeTriple/removeEntity.
	if g.Retract(Triple{Subject: a, Predicate: p, Object: EntityValue(a)}) {
		t.Fatal("retracted a fact that does not exist")
	}
	if g.NumTriples() != 1 {
		t.Fatal("existing fact damaged")
	}
}
