package kg

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// pomTestObjects builds the object-value pool the pom tests draw from:
// entity references plus literals of every kind, including the
// adversarial float payloads (NaN bit patterns, signed zeros) whose
// string renders are ambiguous.
func pomTestObjects(ents []EntityID) []Value {
	objs := make([]Value, 0, len(ents)+8)
	for _, e := range ents {
		objs = append(objs, EntityValue(e))
	}
	objs = append(objs,
		StringValue(""),
		StringValue("a;y=s:b"),
		IntValue(42),
		FloatValue(math.NaN()),
		FloatValue(math.Float64frombits(0x7ff8000000000002)),
		FloatValue(math.Copysign(0, -1)),
		BoolValue(true),
		TimeValue(time.Date(2020, 3, 1, 12, 0, 0, 0, time.UTC)),
	)
	return objs
}

func sortedIDs(ids []EntityID) []EntityID {
	out := append([]EntityID(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// checkPomAgainstSweep compares, for every (pred, obj) pair in the pools,
// the predicate-major index (SubjectsWith / SubjectsWithCount /
// PredicateFrequency) against the shard-swept per-shard pos reference
// (SubjectsWithSweep), and the counter-driven ComputeStats against a full
// triple scan.
func checkPomAgainstSweep(t *testing.T, g *Graph, preds []PredicateID, objs []Value) {
	t.Helper()
	for _, p := range preds {
		total := 0
		seen := make(map[ValueKey]bool, len(objs))
		for _, o := range objs {
			if k := o.MapKey(); seen[k] {
				continue
			} else {
				seen[k] = true
			}
			pom := sortedIDs(g.SubjectsWith(p, o))
			sweep := sortedIDs(g.SubjectsWithSweep(p, o))
			if len(pom) != len(sweep) {
				t.Fatalf("pred %v obj %v: pom %v vs sweep %v", p, o, pom, sweep)
			}
			for i := range pom {
				if pom[i] != sweep[i] {
					t.Fatalf("pred %v obj %v: pom %v vs sweep %v", p, o, pom, sweep)
				}
			}
			if c := g.SubjectsWithCount(p, o); c != len(sweep) {
				t.Fatalf("pred %v obj %v: count %d vs sweep %d", p, o, c, len(sweep))
			}
			total += len(sweep)
		}
		if f := g.PredicateFrequency(p); f != total {
			t.Fatalf("pred %v: PredicateFrequency %d vs sweep total %d", p, f, total)
		}
	}
	// ComputeStats (counter-driven) must agree with a direct triple scan.
	s := ComputeStats(g)
	wantFreq := make(map[PredicateID]int)
	wantTriples, wantEntity := 0, 0
	outDeg := make(map[EntityID]int)
	g.Triples(func(tr Triple) bool {
		wantTriples++
		if tr.Object.IsEntity() {
			wantEntity++
		}
		wantFreq[tr.Predicate]++
		outDeg[tr.Subject]++
		return true
	})
	if s.Triples != wantTriples || s.EntityTriples != wantEntity || s.LiteralTriples != wantTriples-wantEntity {
		t.Fatalf("stats counts = %d/%d/%d, scan says %d/%d/%d",
			s.Triples, s.EntityTriples, s.LiteralTriples, wantTriples, wantEntity, wantTriples-wantEntity)
	}
	if len(s.PredFreq) != len(wantFreq) {
		t.Fatalf("stats PredFreq = %v, scan says %v", s.PredFreq, wantFreq)
	}
	for p, n := range wantFreq {
		if s.PredFreq[p] != n {
			t.Fatalf("stats PredFreq[%v] = %d, scan says %d", p, s.PredFreq[p], n)
		}
	}
	wantMax := 0
	for _, d := range outDeg {
		if d > wantMax {
			wantMax = d
		}
	}
	if s.MaxOutDegree != wantMax {
		t.Fatalf("stats MaxOutDegree = %d, scan says %d", s.MaxOutDegree, wantMax)
	}
}

// Property: across randomized Assert/Retract/AssertBatch interleavings
// (with entity and adversarial-literal objects), the predicate-major
// index agrees exactly with the shard-swept per-shard pos index, and the
// maintained counters agree with full scans.
func TestPomMatchesSweepRandomized(t *testing.T) {
	f := func(ops []uint32, shardBits uint8) bool {
		g := NewGraphWithShards(1 << (shardBits % 4)) // 1..8 shards
		const nEnts = 12
		const nPreds = 5
		ents := make([]EntityID, nEnts)
		for i := range ents {
			id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				return false
			}
			ents[i] = id
		}
		preds := make([]PredicateID, nPreds)
		for i := range preds {
			id, err := g.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)})
			if err != nil {
				return false
			}
			preds[i] = id
		}
		objs := pomTestObjects(ents)
		var pending []Triple
		for _, op := range ops {
			tr := Triple{
				Subject:   ents[int(op)%nEnts],
				Predicate: preds[int(op>>4)%nPreds],
				Object:    objs[int(op>>8)%len(objs)],
			}
			switch (op >> 16) % 8 {
			case 0, 1, 2:
				if err := g.Assert(tr); err != nil {
					return false
				}
			case 3, 4:
				pending = append(pending, tr)
			case 5:
				if _, err := g.AssertBatch(pending); err != nil {
					return false
				}
				pending = pending[:0]
			default:
				g.Retract(tr)
			}
		}
		if _, err := g.AssertBatch(pending); err != nil {
			return false
		}
		checkPomAgainstSweep(t, g, preds, objs)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Concurrent churn under the race detector: writers interleave
// Assert/Retract/AssertBatch on overlapping subjects and predicates while
// readers hammer the pom accessors; when the writers drain, the index
// must agree with the shard-swept reference.
func TestPomConcurrentChurn(t *testing.T) {
	g := NewGraphWithShards(8)
	const nEnts = 64
	const nPreds = 6
	ents := make([]EntityID, nEnts)
	for i := range ents {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = id
	}
	preds := make([]PredicateID, nPreds)
	for i := range preds {
		id, err := g.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = id
	}
	objs := pomTestObjects(ents[:16])

	var done atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			var batch []Triple
			for i := 0; i < 1500; i++ {
				tr := Triple{
					Subject:   ents[rng.Intn(nEnts)],
					Predicate: preds[rng.Intn(nPreds)],
					Object:    objs[rng.Intn(len(objs))],
				}
				switch rng.Intn(8) {
				case 0, 1, 2, 3:
					if err := g.Assert(tr); err != nil {
						t.Error(err)
						return
					}
				case 4:
					g.Retract(tr)
				case 5, 6:
					batch = append(batch, tr)
				default:
					if _, err := g.AssertBatch(batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if _, err := g.AssertBatch(batch); err != nil {
				t.Error(err)
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for !done.Load() {
				p := preds[rng.Intn(nPreds)]
				o := objs[rng.Intn(len(objs))]
				_ = g.SubjectsWith(p, o)
				_ = g.SubjectsWithCount(p, o)
				_ = g.SubjectsWithSweep(p, o)
				_ = g.PredicateFrequency(p)
				g.SubjectsWithFunc(p, o, func(EntityID) bool { return true })
				if rng.Intn(16) == 0 {
					_ = ComputeStats(g)
				}
			}
		}(r)
	}
	writers.Wait()
	done.Store(true)
	readers.Wait()
	checkPomAgainstSweep(t, g, preds, objs)
}

// ValueKey.Value must round-trip identity for every kind, including NaN
// payloads, signed zeros, and times (as their UTC instant).
func TestValueKeyRoundTrip(t *testing.T) {
	vals := []Value{
		EntityValue(7),
		StringValue(""),
		StringValue("a=b;c"),
		IntValue(-3),
		IntValue(0),
		BoolValue(true),
		BoolValue(false),
		FloatValue(1.5),
		FloatValue(math.NaN()),
		FloatValue(math.Float64frombits(0x7ff8000000000002)),
		FloatValue(math.Copysign(0, -1)),
		FloatValue(0),
		TimeValue(time.Date(1969, 7, 20, 20, 17, 0, 123456789, time.FixedZone("X", -3600))),
	}
	for i, v := range vals {
		k := v.MapKey()
		rt := k.Value()
		if rt.MapKey() != k {
			t.Errorf("case %d: round-trip changed identity: %v -> %v", i, v, rt)
		}
		if v.Kind != KindFloat && !rt.Equal(v) {
			t.Errorf("case %d: round-trip not Equal: %v -> %v", i, v, rt)
		}
	}
	if (ValueKey{}).Value().Kind != 0 {
		t.Error("zero key must reconstruct the invalid zero Value")
	}
}

// Retract-heavy churn on hot postings under the race detector: 4 writers
// interleave Assert/Retract/AssertBatch with a retract-biased mix over a
// deliberately small (pred, obj) space, so posting lists grow past
// postingIdxThreshold, build their position maps, tombstone, and compact
// while readers (including the shard-swept reference) hammer the
// accessors. When the writers drain, the tombstoned predicate-major index
// must agree exactly with SubjectsWithSweep.
func TestPomRetractHeavyConcurrentChurn(t *testing.T) {
	g := NewGraphWithShards(8)
	const nEnts = 512
	const nPreds = 3
	ents := make([]EntityID, nEnts)
	for i := range ents {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = id
	}
	preds := make([]PredicateID, nPreds)
	for i := range preds {
		id, err := g.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = id
	}
	// A handful of hot objects: postings concentrate to hundreds of
	// subjects each, the shape the tombstone path exists for.
	objs := pomTestObjects(ents[:2])

	var done atomic.Bool
	var writers, readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(int64(w) + 31))
			var batch []Triple
			for i := 0; i < 2500; i++ {
				tr := Triple{
					Subject:   ents[rng.Intn(nEnts)],
					Predicate: preds[rng.Intn(nPreds)],
					Object:    objs[rng.Intn(len(objs))],
				}
				switch rng.Intn(10) {
				case 0, 1, 2:
					if err := g.Assert(tr); err != nil {
						t.Error(err)
						return
					}
				case 3, 4, 5, 6: // retract-biased
					g.Retract(tr)
				case 7, 8:
					batch = append(batch, tr)
				default:
					if _, err := g.AssertBatch(batch); err != nil {
						t.Error(err)
						return
					}
					batch = batch[:0]
				}
			}
			if _, err := g.AssertBatch(batch); err != nil {
				t.Error(err)
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for !done.Load() {
				p := preds[rng.Intn(nPreds)]
				o := objs[rng.Intn(len(objs))]
				_ = g.SubjectsWith(p, o)
				_ = g.SubjectsWithCount(p, o)
				_ = g.SubjectsWithSweep(p, o)
				_ = g.PredicateFrequency(p)
				if rng.Intn(8) == 0 {
					_ = g.MutationsSince(g.LastSeq() / 2)
				}
			}
		}(r)
	}
	writers.Wait()
	done.Store(true)
	readers.Wait()
	checkPomAgainstSweep(t, g, preds, objs)
}

// The count accessors must answer read-through while delta buffers are
// dirty: correct values (base plus buffered net, retracts included) with
// the buffers left in place — no drain, verified by pomDirtyShards
// staying nonzero across every count read.
func TestPomCountReadThrough(t *testing.T) {
	g := NewGraphWithShards(8)
	pA, _ := g.AddPredicate(Predicate{Name: "a"})
	pB, _ := g.AddPredicate(Predicate{Name: "b"})
	team, err := g.AddEntity(Entity{Key: "team"})
	if err != nil {
		t.Fatal(err)
	}
	other, err := g.AddEntity(Entity{Key: "other"})
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]EntityID, 32)
	for i := range subs {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("s%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = id
	}
	// Drain the clean slate so every later delta is a buffered one.
	g.SyncIndexes()

	check := func(wantTeamA, wantOtherA, wantFreqA, wantFreqB int) {
		t.Helper()
		if g.pomDirtyShards.Load() == 0 {
			t.Fatal("buffers unexpectedly clean; the read-through path is not being exercised")
		}
		if got := g.SubjectsWithCount(pA, EntityValue(team)); got != wantTeamA {
			t.Fatalf("SubjectsWithCount(a, team) = %d, want %d", got, wantTeamA)
		}
		if got := g.SubjectsWithCount(pA, EntityValue(other)); got != wantOtherA {
			t.Fatalf("SubjectsWithCount(a, other) = %d, want %d", got, wantOtherA)
		}
		if got := g.PredicateFrequency(pA); got != wantFreqA {
			t.Fatalf("PredicateFrequency(a) = %d, want %d", got, wantFreqA)
		}
		if got := g.PredicateFrequency(pB); got != wantFreqB {
			t.Fatalf("PredicateFrequency(b) = %d, want %d", got, wantFreqB)
		}
		if g.pomDirtyShards.Load() == 0 {
			t.Fatal("a count read drained the buffers")
		}
	}

	// Buffered asserts across two predicates and two objects.
	for i, s := range subs {
		obj := EntityValue(team)
		if i%4 == 3 {
			obj = EntityValue(other)
		}
		if err := g.Assert(Triple{Subject: s, Predicate: pA, Object: obj}); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range subs[:10] {
		if err := g.Assert(Triple{Subject: s, Predicate: pB, Object: StringValue("x")}); err != nil {
			t.Fatal(err)
		}
	}
	check(24, 8, 32, 10)

	// Buffered retracts must subtract through the same path.
	for _, s := range subs[:6] {
		// subs[3] carries (a, other), not (a, team), so that retract is a
		// no-op — 5 live facts actually go.
		g.Retract(Triple{Subject: s, Predicate: pA, Object: EntityValue(team)})
	}
	g.Retract(Triple{Subject: subs[3], Predicate: pA, Object: EntityValue(other)})
	check(19, 7, 26, 10)

	// A second wave on top of still-buffered work: mixed base (some
	// shards may have flushed nothing yet) plus fresh deltas. subs[3]
	// joins team for the first time here.
	for _, s := range subs[:6] {
		if err := g.Assert(Triple{Subject: s, Predicate: pA, Object: EntityValue(team)}); err != nil {
			t.Fatal(err)
		}
	}
	check(25, 7, 32, 10)

	// Draining must not change any answer.
	g.SyncIndexes()
	if g.pomDirtyShards.Load() != 0 {
		t.Fatal("buffers dirty after SyncIndexes")
	}
	if got := g.SubjectsWithCount(pA, EntityValue(team)); got != 25 {
		t.Fatalf("post-drain SubjectsWithCount(a, team) = %d, want 25", got)
	}
	if got := g.PredicateFrequency(pA); got != 32 {
		t.Fatalf("post-drain PredicateFrequency(a) = %d, want 32", got)
	}
}

// Property: under randomized assert/retract interleavings the
// read-through counts agree with a model maintained by the test, at
// every probe point, without the probes ever draining the buffers.
func TestPomCountReadThroughRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewGraphWithShards(16)
	const nEnts, nPreds = 48, 4
	ents := make([]EntityID, nEnts)
	for i := range ents {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = id
	}
	preds := make([]PredicateID, nPreds)
	for i := range preds {
		id, err := g.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		preds[i] = id
	}
	objs := pomTestObjects(ents[:8])
	g.SyncIndexes()

	type cell struct {
		pred PredicateID
		obj  ValueKey
	}
	type factKey struct {
		subj EntityID
		cell cell
	}
	counts := make(map[cell]int)
	freq := make(map[PredicateID]int)
	present := make(map[factKey]bool)

	for step := 0; step < 4000; step++ {
		tr := Triple{
			Subject:   ents[rng.Intn(nEnts)],
			Predicate: preds[rng.Intn(nPreds)],
			Object:    objs[rng.Intn(len(objs))],
		}
		ck := cell{tr.Predicate, tr.Object.MapKey()}
		fk := factKey{tr.Subject, ck}
		if rng.Intn(3) == 0 {
			g.Retract(tr)
			if present[fk] {
				present[fk] = false
				counts[ck]--
				freq[tr.Predicate]--
			}
		} else {
			if err := g.Assert(tr); err != nil {
				t.Fatal(err)
			}
			if !present[fk] {
				present[fk] = true
				counts[ck]++
				freq[tr.Predicate]++
			}
		}
		if step%97 == 0 {
			dirtyBefore := g.pomDirtyShards.Load()
			p := preds[rng.Intn(nPreds)]
			o := objs[rng.Intn(len(objs))]
			if got, want := g.SubjectsWithCount(p, o), counts[cell{p, o.MapKey()}]; got != want {
				t.Fatalf("step %d: SubjectsWithCount = %d, model says %d", step, got, want)
			}
			if got, want := g.PredicateFrequency(p), freq[p]; got != want {
				t.Fatalf("step %d: PredicateFrequency = %d, model says %d", step, got, want)
			}
			if dirtyBefore != 0 && g.pomDirtyShards.Load() == 0 {
				t.Fatalf("step %d: count probes drained the buffers", step)
			}
		}
	}
	checkPomAgainstSweep(t, g, preds, objs)
}
