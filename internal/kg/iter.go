package kg

import "iter"

// Iterator twins of the graph's visitor accessors, for Go 1.24 range-over-
// func consumers. Each returns an iter.Seq that streams the same elements
// the corresponding *Func visitor passes to its callback, in the same
// order and under the same locks: the loop body runs while the relevant
// shard or pom-stripe read lock is held, and breaking out of the range
// stops the enumeration and releases the lock immediately (the early-stop
// the slice accessors cannot offer).
//
// Because the body runs under a read lock, it must not mutate the graph,
// and it must not call back into the triple indexes (Facts, Outgoing,
// HasFact, SubjectsWith, ...): a read on a subject hashing to the same
// shard re-enters the shard's RWMutex, which deadlocks when a writer is
// queued between the two acquisitions — and the pom accessors
// (SubjectsWith, PredicateFrequency, ...) may additionally take shard
// *write* locks to drain buffered index deltas, which self-deadlocks
// against any shard read lock the body already holds. Dictionary reads
// (Entity, Predicate, Ontology) are safe — their lock is never held
// together with a shard lock by any writer. Consumers that need to join
// streamed elements against further index reads should buffer a batch
// first (see graphengine's conjunctive solver) or use the slice
// accessors.

// FactsSeq streams the (subj, pred) triples in assertion order. It is the
// iterator twin of Facts/FactsFunc.
func (g *Graph) FactsSeq(subj EntityID, pred PredicateID) iter.Seq[Triple] {
	return func(yield func(Triple) bool) {
		g.FactsFunc(subj, pred, yield)
	}
}

// OutgoingSeq streams every triple whose subject is subj. Iteration order
// across predicates is unspecified (map order); within one predicate it
// is assertion order. It is the iterator twin of Outgoing/OutgoingFunc.
func (g *Graph) OutgoingSeq(subj EntityID) iter.Seq[Triple] {
	return func(yield func(Triple) bool) {
		g.OutgoingFunc(subj, yield)
	}
}

// IncomingSeq streams every triple whose object is the entity obj, one
// shard at a time (each shard's contribution internally consistent, a
// concurrent writer may land between shard visits — see Incoming). It is
// the iterator twin of Incoming/IncomingFunc.
func (g *Graph) IncomingSeq(obj EntityID) iter.Seq[Triple] {
	return func(yield func(Triple) bool) {
		g.IncomingFunc(obj, yield)
	}
}

// SubjectsWithSeq streams the posting list of subjects carrying
// (pred, obj) facts under one pom-stripe read lock — posting-list
// iteration with early stop, where SubjectsWith copies the whole list up
// front. Order is the posting order: per-shard assertion order, with a
// fixed but unspecified interleaving across shards (deterministic for a
// fixed graph state, which is what cursor replays rely on). It is the
// iterator twin of SubjectsWith/SubjectsWithFunc.
func (g *Graph) SubjectsWithSeq(pred PredicateID, obj Value) iter.Seq[EntityID] {
	return func(yield func(EntityID) bool) {
		g.SubjectsWithFunc(pred, obj, yield)
	}
}

// PredicateEntriesSeq streams every (object value, subject) pair indexed
// under pred from the predicate-major index. Object values are
// reconstructed from their identity keys, so provenance is not carried
// and iteration order across objects is unspecified; within one object's
// posting list it is assertion order. It is the iterator twin of
// PredicateEntriesFunc.
func (g *Graph) PredicateEntriesSeq(pred PredicateID) iter.Seq2[Value, EntityID] {
	return func(yield func(Value, EntityID) bool) {
		g.PredicateEntriesFunc(pred, yield)
	}
}

// TriplesSeq streams every asserted triple under the all-shard read lock
// (a single consistent cut, like Triples). Iteration order is unspecified.
func (g *Graph) TriplesSeq() iter.Seq[Triple] {
	return func(yield func(Triple) bool) {
		g.Triples(yield)
	}
}
