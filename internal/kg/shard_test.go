package kg

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// shardFixture registers pool entities and one predicate on a graph with
// the given shard count.
func shardFixture(t testing.TB, shards, pool int) (*Graph, []EntityID, PredicateID) {
	t.Helper()
	g := NewGraphWithShards(shards)
	p, err := g.AddPredicate(Predicate{Name: "p"})
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]EntityID, pool)
	for i := range ids {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	return g, ids, p
}

func TestNewGraphWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {7, 8}, {8, 8}, {300, 256},
	} {
		if got := NewGraphWithShards(tc.in).NumShards(); got != tc.want {
			t.Errorf("NewGraphWithShards(%d).NumShards() = %d, want %d", tc.in, got, tc.want)
		}
	}
	if NewGraph().NumShards() < 1 {
		t.Fatal("default graph has no shards")
	}
}

// TestConcurrentShardHammer drives concurrent Assert/Retract across
// subjects spanning every shard while readers take TriplesSnapshot and
// MutationsSince cuts, then verifies the watermark contract end to end:
// replaying the full merged mutation log into a fresh graph reproduces
// exactly the final triple set, and each observed snapshot count is
// consistent with replaying its watermark prefix.
func TestConcurrentShardHammer(t *testing.T) {
	const (
		writers  = 8
		perW     = 300
		pool     = 64
		snapsPer = 40
	)
	g, ids, p := shardFixture(t, 8, pool)

	type snapObs struct {
		seq   uint64
		count int
	}
	var (
		wg       sync.WaitGroup
		obsMu    sync.Mutex
		observed []snapObs
	)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				tr := Triple{Subject: ids[rng.Intn(pool)], Predicate: p, Object: IntValue(int64(rng.Intn(200)))}
				if rng.Intn(3) == 0 {
					g.Retract(tr)
				} else if err := g.Assert(tr); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < snapsPer; i++ {
				n := 0
				seq := g.TriplesSnapshot(func(Triple) bool { n++; return true })
				obsMu.Lock()
				observed = append(observed, snapObs{seq: seq, count: n})
				obsMu.Unlock()
				_ = g.MutationsSince(seq / 2)
				_ = g.NumTriples()
				g.FactsFunc(ids[i%pool], p, func(Triple) bool { return true })
				_ = g.Incoming(ids[i%pool])
			}
		}(r)
	}
	wg.Wait()

	muts := g.MutationsSince(0)
	if uint64(len(muts)) != g.LastSeq() {
		t.Fatalf("merged log has %d entries, watermark %d", len(muts), g.LastSeq())
	}
	for i, m := range muts {
		if m.Seq != uint64(i+1) {
			t.Fatalf("log entry %d has seq %d; merged feed must be dense and ascending", i, m.Seq)
		}
	}

	// Replay the full log into a single-shard graph: final states must match.
	replay := NewGraphWithShards(1)
	if _, err := replay.AddPredicate(Predicate{Name: "p"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pool; i++ {
		if _, err := replay.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	counts := make(map[uint64]int, len(muts)) // watermark -> triple count, replayed
	live := 0
	for _, m := range muts {
		switch m.Op {
		case OpAssert:
			if err := replay.Assert(m.T); err != nil {
				t.Fatal(err)
			}
			live++
		case OpRetract:
			if !replay.Retract(m.T) {
				t.Fatalf("replay: retract of absent fact at seq %d", m.Seq)
			}
			live--
		}
		counts[m.Seq] = live
	}
	if got, want := replay.NumTriples(), g.NumTriples(); got != want {
		t.Fatalf("replayed graph has %d triples, original %d", got, want)
	}
	gotAll, wantAll := replay.AllTriples(), g.AllTriples()
	if len(gotAll) != len(wantAll) {
		t.Fatalf("replayed AllTriples len %d, original %d", len(gotAll), len(wantAll))
	}
	for i := range gotAll {
		if gotAll[i].IdentityKey() != wantAll[i].IdentityKey() {
			t.Fatalf("replayed triple %d = %v, original %v", i, gotAll[i], wantAll[i])
		}
	}
	// Every snapshot's (watermark, count) must match the replayed prefix.
	for _, o := range observed {
		want := 0
		if o.seq > 0 {
			want = counts[o.seq]
		}
		if o.count != want {
			t.Fatalf("snapshot at seq %d saw %d triples, replay says %d", o.seq, o.count, want)
		}
	}
}

// TestAssertBatchEquivalence checks the batch fast path against
// triple-by-triple assertion over randomized batches with in-batch and
// cross-batch duplicates: same final indexes, same added counts, same
// watermark.
func TestAssertBatchEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 20; round++ {
		pool := 10 + rng.Intn(40)
		gBatch, ids, p := shardFixture(t, 1+rng.Intn(8), pool)
		gSeq, _, _ := shardFixture(t, 4, pool)
		p2b, _ := gBatch.AddPredicate(Predicate{Name: "q"})
		p2s, _ := gSeq.AddPredicate(Predicate{Name: "q"})
		if p2b != p2s {
			t.Fatal("fixture predicate IDs diverged")
		}
		preds := []PredicateID{p, p2b}

		var batch []Triple
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			var obj Value
			switch rng.Intn(3) {
			case 0:
				obj = IntValue(int64(rng.Intn(20)))
			case 1:
				obj = StringValue(fmt.Sprintf("s%d", rng.Intn(10)))
			default:
				obj = EntityValue(ids[rng.Intn(pool)])
			}
			batch = append(batch, Triple{Subject: ids[rng.Intn(pool)], Predicate: preds[rng.Intn(2)], Object: obj})
		}
		// Pre-assert a slice of the batch on both graphs so cross-batch
		// dedup is exercised too.
		for i := 0; i < len(batch)/4; i++ {
			if err := gBatch.Assert(batch[rng.Intn(len(batch))]); err != nil {
				t.Fatal(err)
			}
		}
		for _, m := range gBatch.MutationsSince(0) {
			if err := gSeq.Assert(m.T); err != nil {
				t.Fatal(err)
			}
		}

		addedBatch, err := gBatch.AssertBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		addedSeq := 0
		for _, tr := range batch {
			isNew, err := gSeq.AssertNew(tr)
			if err != nil {
				t.Fatal(err)
			}
			if isNew {
				addedSeq++
			}
		}
		if addedBatch != addedSeq {
			t.Fatalf("round %d: batch added %d, sequential added %d", round, addedBatch, addedSeq)
		}
		if gBatch.LastSeq() != gSeq.LastSeq() {
			t.Fatalf("round %d: watermark %d vs %d", round, gBatch.LastSeq(), gSeq.LastSeq())
		}
		a, b := gBatch.AllTriples(), gSeq.AllTriples()
		if len(a) != len(b) {
			t.Fatalf("round %d: %d vs %d triples", round, len(a), len(b))
		}
		for i := range a {
			if a[i].IdentityKey() != b[i].IdentityKey() {
				t.Fatalf("round %d: triple %d mismatch: %v vs %v", round, i, a[i], b[i])
			}
		}
		for _, pr := range preds {
			if gBatch.PredicateFrequency(pr) != gSeq.PredicateFrequency(pr) {
				t.Fatalf("round %d: predicate %v frequency mismatch", round, pr)
			}
		}
	}
}

func TestAssertBatchValidatesUpFront(t *testing.T) {
	g, ids, p := shardFixture(t, 4, 8)
	batch := []Triple{
		{Subject: ids[0], Predicate: p, Object: IntValue(1)},
		{Subject: EntityID(999), Predicate: p, Object: IntValue(2)}, // invalid
		{Subject: ids[1], Predicate: p, Object: IntValue(3)},
	}
	added, err := g.AssertBatch(batch)
	if err == nil {
		t.Fatal("invalid batch accepted")
	}
	if added != 0 || g.NumTriples() != 0 || g.LastSeq() != 0 {
		t.Fatalf("failed batch partially applied: added=%d triples=%d seq=%d", added, g.NumTriples(), g.LastSeq())
	}
}

func TestAssertBatchFirstOccurrenceWins(t *testing.T) {
	g, ids, p := shardFixture(t, 4, 4)
	first := Triple{Subject: ids[0], Predicate: p, Object: IntValue(7), Prov: Provenance{Source: "first"}}
	second := first
	second.Prov.Source = "second"
	added, err := g.AssertBatch([]Triple{first, second})
	if err != nil {
		t.Fatal(err)
	}
	if added != 1 {
		t.Fatalf("added = %d, want 1", added)
	}
	facts := g.Facts(ids[0], p)
	if len(facts) != 1 || facts[0].Prov.Source != "first" {
		t.Fatalf("stored facts = %+v; first input occurrence must win", facts)
	}
}

// TestEntityRecordCopyOnWrite verifies that SetPopularity and
// UpdateEntity never mutate a record a reader may already hold.
func TestEntityRecordCopyOnWrite(t *testing.T) {
	g := NewGraph()
	id, err := g.AddEntity(Entity{Key: "e", Name: "Old", Aliases: []string{"Old"}, Popularity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	before := g.Entity(id)
	g.SetPopularity(id, 0.9)
	if before.Popularity != 0.1 {
		t.Fatalf("SetPopularity mutated a handed-out record: %v", before.Popularity)
	}
	if g.Entity(id).Popularity != 0.9 {
		t.Fatalf("SetPopularity not visible on re-read: %v", g.Entity(id).Popularity)
	}

	mid := g.Entity(id)
	ok := g.UpdateEntity(id, func(e *Entity) {
		e.Name = "New"
		e.Aliases = append(e.Aliases, "Extra")
		e.Key = "evil-rekey" // must be ignored
		e.ID = 999           // must be ignored
	})
	if !ok {
		t.Fatal("UpdateEntity reported unknown id")
	}
	if mid.Name != "Old" || len(mid.Aliases) != 1 {
		t.Fatalf("UpdateEntity mutated a handed-out record: %+v", mid)
	}
	after := g.Entity(id)
	if after.Name != "New" || len(after.Aliases) != 2 || after.Key != "e" || after.ID != id {
		t.Fatalf("UpdateEntity result wrong: %+v", after)
	}
	if got, ok := g.EntityByKey("e"); !ok || got != after {
		t.Fatal("EntityByKey lost the updated record")
	}
	if g.UpdateEntity(EntityID(4096), func(*Entity) {}) {
		t.Fatal("UpdateEntity accepted unknown id")
	}
	// Concurrent popularity writes against lock-free readers of handed-out
	// records: meaningful under -race.
	var wg sync.WaitGroup
	rec := g.Entity(id)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			g.SetPopularity(id, float64(i)/500)
		}
	}()
	go func() {
		defer wg.Done()
		s := 0.0
		for i := 0; i < 500; i++ {
			s += rec.Popularity + g.Entity(id).Popularity
		}
		_ = s
	}()
	wg.Wait()
}

// TestRetractNaNFloatFact pins index-identity agreement on the one value
// where bit identity and Value.Equal disagree: retracting a NaN-valued
// float fact must remove it from every index, and a re-assert must not
// leave a phantom duplicate in spo.
func TestRetractNaNFloatFact(t *testing.T) {
	g, ids, p := shardFixture(t, 4, 2)
	nan := FloatValue(math.NaN())
	tr := Triple{Subject: ids[0], Predicate: p, Object: nan}
	if err := g.Assert(tr); err != nil {
		t.Fatal(err)
	}
	if !g.Retract(tr) {
		t.Fatal("NaN fact not retracted")
	}
	if got := g.Facts(ids[0], p); len(got) != 0 {
		t.Fatalf("phantom triples in spo after NaN retract: %v", got)
	}
	if g.NumTriples() != 0 {
		t.Fatalf("NumTriples = %d after retract", g.NumTriples())
	}
	if err := g.Assert(tr); err != nil {
		t.Fatal(err)
	}
	if got := g.Facts(ids[0], p); len(got) != 1 {
		t.Fatalf("re-assert after NaN retract yielded %d facts, want 1", len(got))
	}
}

// TestMutationsSinceWatermark checks that MutationsSince delivers the
// exact ordered delta the watermark promises: after base, two more
// applied mutations yield exactly two entries covering (base, base+2].
func TestMutationsSinceWatermark(t *testing.T) {
	g, ids, p := shardFixture(t, 4, 16)
	for i := 0; i < 15; i++ {
		if err := g.Assert(Triple{Subject: ids[i], Predicate: p, Object: EntityValue(ids[i+1])}); err != nil {
			t.Fatal(err)
		}
	}
	base := g.LastSeq()
	if err := g.Assert(Triple{Subject: ids[0], Predicate: p, Object: EntityValue(ids[8])}); err != nil {
		t.Fatal(err)
	}
	g.Retract(Triple{Subject: ids[3], Predicate: p, Object: EntityValue(ids[4])})

	muts := g.MutationsSince(base)
	if len(muts) != 2 {
		t.Fatalf("MutationsSince delivered %d muts, want 2", len(muts))
	}
	if muts[0].Seq != base+1 || muts[1].Seq != base+2 {
		t.Fatalf("delta seqs %d,%d, want %d,%d", muts[0].Seq, muts[1].Seq, base+1, base+2)
	}
	if muts[0].Op != OpAssert || muts[1].Op != OpRetract {
		t.Fatalf("delta ops %v,%v, want assert,retract", muts[0].Op, muts[1].Op)
	}
	if g.LastSeq() != base+2 {
		t.Fatalf("watermark %d, want %d", g.LastSeq(), base+2)
	}
}
