package kg

import (
	"fmt"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Entity is the metadata record for a node in the graph. Facts about the
// entity live in the triple store; this record holds the identity and the
// textual features (name, aliases, description) that the semantic
// annotation service embeds and matches against (paper §3).
type Entity struct {
	ID EntityID
	// Key is the stable external identifier ("Q42"-style).
	Key string
	// Name is the canonical display name.
	Name string
	// Aliases are alternative surface forms, used for mention detection.
	Aliases []string
	// Description is a short textual gloss used by contextual reranking.
	Description string
	// Types are the ontology types of the entity.
	Types []TypeID
	// Popularity is a query-log-derived importance prior in [0,1].
	Popularity float64
}

// HasType reports whether the entity carries the exact type t.
func (e *Entity) HasType(t TypeID) bool {
	for _, et := range e.Types {
		if et == t {
			return true
		}
	}
	return false
}

// Predicate is the metadata record for an edge label.
type Predicate struct {
	ID   PredicateID
	Name string
	// ValueKind constrains objects of this predicate (0 = unconstrained).
	ValueKind ValueKind
	// Functional predicates admit at most one current object per subject
	// (date of birth, capital). ODKE uses this to detect stale facts.
	Functional bool
}

// graphShard holds the triple indexes and mutation sub-log for the
// subjects whose ID hashes to the shard. Everything inside is guarded by
// the shard's own lock, so writers touching different shards never
// contend. The trailing pad keeps two shards' mutexes off one cache line.
type graphShard struct {
	mu sync.RWMutex

	spo map[EntityID]map[PredicateID][]Triple
	// pos counts, per (predicate, object key), how many of this shard's
	// subjects assert the fact. It is the shard-local remnant of the old
	// per-shard posting lists: the predicate-major index (pom.go) carries
	// the actual merged subject postings, so duplicating them here only
	// doubled reverse-index memory. The counts are enough for the
	// shard-swept reference reads (SubjectsWithSweep skips shards with a
	// zero count and stops its spo scan after `count` matches) and keep
	// Retract's shard-local reverse maintenance O(1).
	pos map[PredicateID]map[ValueKey]int
	// osp maps object entity -> posting of triples whose *subject* lives
	// in this shard; incoming-edge reads merge the entry across all
	// shards. Postings tombstone instead of splicing once they grow hot
	// (see ospPosting), so retracting an edge into a million-fan-in hub
	// does not rescan the hub's posting.
	osp map[EntityID]ospPosting

	tripleKeys map[TripleKey]struct{}

	// factSplices counts retracts applied to this shard. Assertion only
	// ever appends to spo fact lists (Assert, assertShardBatch), so a
	// saved list offset stays valid across concurrent asserts; Retract is
	// the one operation that splices a list and shifts offsets. Chunked
	// fact readers (FactsChunked) capture the counter at their first read
	// and restart from the beginning when it moves.
	factSplices uint64

	// log holds this shard's slice of the global mutation feed. Sequence
	// numbers are drawn from Graph.seq while the shard write lock is held,
	// so within one shard the log is strictly ascending in Seq.
	log []Mutation

	// pomPending buffers this shard's not-yet-applied predicate-major
	// index deltas, appended under mu like the indexes above and drained
	// to the pom stripes in batches (see pom.go). pomDirty mirrors
	// len(pomPending) > 0 so readers can skip clean shards without taking
	// the lock.
	pomPending []pomDelta
	pomDirty   atomic.Bool

	_ [16]byte // pad to 128 bytes so neighboring shard mutexes don't share a line
}

func (sh *graphShard) init() {
	sh.spo = make(map[EntityID]map[PredicateID][]Triple)
	sh.pos = make(map[PredicateID]map[ValueKey]int)
	sh.osp = make(map[EntityID]ospPosting)
	sh.tripleKeys = make(map[TripleKey]struct{})
}

// Graph is an in-memory triple store with entity/predicate dictionaries,
// SPO/POS/OSP indexes, and a mutation log. It is safe for concurrent use.
//
// # Sharded write path
//
// The triple indexes are partitioned into S shards (S a power of two,
// default GOMAXPROCS rounded up) by subject ID, each with its own
// RWMutex, so concurrent Assert/Retract on different subjects scale with
// cores instead of serializing on one graph lock. Reads bound to a
// subject (Facts, Outgoing, HasFact) touch exactly one shard. Reads
// bound to a predicate (SubjectsWith, PredicateFrequency) touch exactly
// one pom stripe. Reads that span subjects either visit shards one at a
// time (Incoming, SubjectsWithSweep, NumTriples — each shard internally
// consistent, the union as fresh as the moment its shard was visited)
// or, when they carry watermark
// semantics (TriplesSnapshot, MutationsSince, Triples, AllTriples),
// hold every shard's read lock at once for a single
// consistent cut. Shard locks are always acquired in index order and
// writers hold at most one shard lock, so the two patterns cannot
// deadlock.
//
// The entity/predicate dictionaries live outside the shards behind their
// own lock; assert validation reads only atomically published dictionary
// lengths, keeping dictionary readers off the write hot path.
//
// # Index layout and key encoding
//
//	spo: subject -> predicate -> []Triple          (fact lookup, outgoing)
//	pos: predicate -> ValueKey -> count            (shard-local reverse
//	     fact counts; SubjectsWithSweep uses them to skip shards and
//	     bound its spo scans)
//	osp: object-entity -> ospPosting               (incoming entity edges;
//	     tombstoned + position-mapped once hot, so retracts stay O(1))
//	tripleKeys: set of TripleKey                   (SPO identity, dedup)
//
// Alongside the subject-sharded indexes lives the predicate-major
// secondary index (pom, see pom.go): predicate -> ValueKey -> the
// subjects asserting that (pred, obj) fact, merged across shards and
// partitioned into fixed per-predicate lock stripes, with per-predicate
// triple and entity-triple totals. Cross-subject probes (SubjectsWith,
// SubjectsWithCount, PredicateFrequency, PredicateEntriesFunc,
// ComputeStats) read one stripe instead of sweeping every shard.
//
// The per-shard pos postings that PR 3 kept alongside pom were shrunk to
// bare (pred, objKey) counts: the subject lists existed twice (once per
// shard, once merged in pom), which roughly doubled reverse-index memory
// for zero read benefit — every serving path reads pom. What the counts
// still buy is a pom-independent reference read (SubjectsWithSweep
// recovers the subjects from spo, using the counts to skip shards and
// stop early) and O(1) shard-local reverse maintenance on Retract.
//
// # Write path and lock order
//
// Writers follow a strict shard lock -> delta buffer -> stripe flush
// order. A mutation takes its subject shard's write lock, applies the
// shard-local indexes synchronously, and appends a pom delta record to
// the shard's buffer instead of touching the pom stripe inline; when the
// buffer reaches the flush threshold the writer drains it to the stripes
// (stripe locks strictly leaf-level, taken only while a shard write lock
// is held, one acquisition per run of same-stripe records). Bulk
// same-predicate ingestion therefore touches the hot predicate's stripe
// once per buffer instead of once per triple, which is what lets
// parallel writers on disjoint shards scale instead of serializing on
// one stripe.
//
// Deferred maintenance is invisible to readers: every pom-reading
// accessor first drains all dirty shard buffers (flush-on-read, a single
// atomic check when the graph is clean), and the all-shard read lock
// (rlockAll) re-drains until it observes a fully-applied state, so a
// consistent cut still freezes the pom index at the watermark exactly
// like the sharded indexes. SyncIndexes exposes the drain to batch
// producers that want maintenance paid inside the write phase.
//
// Fact identity is the comparable TripleKey struct (subject ID, predicate
// ID, object ValueKey); see ValueKey for the per-kind payload encoding.
// No strings are built on the Assert/Retract/HasFact paths. Index slices
// and inner maps are deleted as they drain, so a long-lived graph under
// assert/retract churn does not leak map entries.
//
// # Mutation log and watermark semantics
//
// Every successful Assert/Retract draws a sequence number from one global
// atomic counter that increases by exactly 1 per applied mutation; the
// counter is only ever advanced while the mutating shard's write lock is
// held, so holding every shard's read lock freezes it. LastSeq()/
// TriplesSnapshot() expose the counter so derived structures
// (materialized views, adjacency snapshots) can record the watermark they
// were built at and later decide staleness with a single comparison: a
// derived structure at watermark w reflects exactly the first w
// mutations. The log itself is stored as per-shard sub-logs;
// MutationsSince merges them by sequence number under the all-shard read
// lock, so consumers still see one totally ordered change feed.
// Registering entities or predicates does not bump the watermark — a new
// entity is observable in derived edge structures only once a triple
// mentions it, and asserting that triple bumps the watermark.
//
// The in-memory log can be compacted: TruncateLog drops entries at or
// below a sequence number once a durable copy exists elsewhere (a WAL
// segment, a checkpoint), and LogFloor reports the highest dropped
// sequence. MutationsSince(seq) is complete only when seq >= LogFloor().
//
// Consumers do not call MutationsSince directly: the Changefeed (see
// changefeed.go) packages the pull-then-recheck-floor protocol — pull a
// batch, verify LogFloor has not passed the cursor, advance — as a
// cursor-bearing handle with explicit floor/lag semantics and a single
// rematerialization fallback contract. The graphengine adjacency
// snapshot, materialized views, ondevice static assets, the WAL drain,
// and live subscriptions all consume the log through it.
//
// # Durability
//
// The graph itself is volatile. Crash-safe deployments pair it with
// internal/wal: the WAL manager drains this mutation log into an
// append-only CRC-framed log on disk (the watermark is the LSN) and takes
// periodic checkpoints under the all-shard cut. The durability contract
// is defined by the WAL's fsync policy — after a crash, recovery is
// guaranteed to restore a watermark-consistent prefix that includes every
// mutation at or below the WAL's acknowledged-durable watermark
// (wal.Manager.DurableLSN); see the internal/wal package documentation.
// Recovery loads the newest durable checkpoint through the AssertBatch
// merge-append path, fast-forwards the watermark with AdvanceWatermark,
// and replays the log suffix.
type Graph struct {
	ontology *Ontology

	// dictMu guards the entity/predicate dictionaries. entLen/predLen
	// mirror len(entities)/len(predicates) and are published atomically so
	// assert validation never touches the dictionary lock.
	dictMu     sync.RWMutex
	entities   []*Entity // EntityID -> *Entity (index 0 unused)
	entByKey   map[string]EntityID
	predicates []*Predicate // PredicateID -> *Predicate (index 0 unused)
	predByName map[string]PredicateID
	entLen     atomic.Int64
	predLen    atomic.Int64

	// dirtyEnts collects entity IDs whose records were updated in place
	// (SetPopularity / UpdateEntity) since the last TakeDirtyEntities
	// drain. Record updates do not flow through the mutation log — they
	// carry no sequence number — so the WAL drains this set instead to
	// make them durable between checkpoints. Guarded by dictMu; allocated
	// lazily on first update.
	dirtyEnts map[EntityID]struct{}

	// seq is the global mutation watermark; advanced only under a shard
	// write lock.
	seq atomic.Uint64

	// logFloor is the highest sequence number dropped from the per-shard
	// mutation sub-logs (TruncateLog / AdvanceWatermark). Entries at or
	// below it are no longer retrievable via MutationsSince. It is raised
	// BEFORE any entry is dropped, so a consumer that pulls mutations and
	// then observes logFloor <= its watermark is guaranteed a complete
	// feed.
	logFloor atomic.Uint64

	shardMask uint32
	shards    []graphShard

	// pom is the predicate-major secondary index (see pom.go).
	// pomFlushAt is the per-shard delta-buffer length that triggers a
	// flush; pomDirtyShards counts shards with non-empty buffers (only
	// ever changed under that shard's write lock, so it is frozen while
	// every shard's read lock is held).
	pom            [pomStripeCount]pomStripe
	pomFlushAt     int
	pomDirtyShards atomic.Int64
}

// defaultShardCount returns GOMAXPROCS rounded up to a power of two,
// clamped to [1, 256].
func defaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n {
		s <<= 1
	}
	if s > 256 {
		s = 256
	}
	return s
}

// NewGraph returns an empty graph with a fresh ontology and the default
// shard count (GOMAXPROCS rounded up to a power of two).
func NewGraph() *Graph {
	return NewGraphWithShards(defaultShardCount())
}

// NewGraphWithShards returns an empty graph with the given number of
// write shards, rounded up to a power of two and clamped to [1, 256]
// (n <= 0 clamps to 1, the classic single-lock graph; benchmarks use it
// as the scaling baseline — note the contrast with GraphOptions.Shards,
// where 0 selects the GOMAXPROCS default).
func NewGraphWithShards(n int) *Graph {
	if n <= 0 {
		n = 1
	}
	return NewGraphWithOptions(GraphOptions{Shards: n})
}

// GraphOptions configure NewGraphWithOptions. The zero value selects
// every default.
type GraphOptions struct {
	// Shards is the write shard count, rounded up to a power of two and
	// clamped to [1, 256]; 0 selects GOMAXPROCS rounded up.
	Shards int
	// PomFlushThreshold is the per-shard predicate-major delta-buffer
	// length that triggers a flush to the pom stripes (see pom.go);
	// 0 selects the default (256). 1 applies every record under its
	// stripe lock inside the writer's critical section — the
	// pre-buffering write path, kept as the ingestion benchmark baseline
	// and as a tuning escape hatch for read-dominated deployments that
	// would rather never pay a flush on a read.
	PomFlushThreshold int
}

// NewGraphWithOptions returns an empty graph configured by opts.
func NewGraphWithOptions(opts GraphOptions) *Graph {
	n := opts.Shards
	if n <= 0 {
		n = defaultShardCount()
	}
	s := 1
	for s < n {
		s <<= 1
	}
	if s > 256 {
		s = 256
	}
	flushAt := opts.PomFlushThreshold
	if flushAt <= 0 {
		flushAt = pomFlushThresholdDefault
	}
	g := &Graph{
		ontology:   NewOntology(),
		entities:   []*Entity{nil},
		entByKey:   make(map[string]EntityID),
		predicates: []*Predicate{nil},
		predByName: make(map[string]PredicateID),
		shardMask:  uint32(s - 1),
		shards:     make([]graphShard, s),
		pomFlushAt: flushAt,
	}
	g.entLen.Store(1)
	g.predLen.Store(1)
	for i := range g.shards {
		g.shards[i].init()
	}
	for i := range g.pom {
		g.pom[i].preds = make(map[PredicateID]*predPostings)
	}
	return g
}

// NumShards returns the number of write shards.
func (g *Graph) NumShards() int { return len(g.shards) }

func (g *Graph) shardIndex(subj EntityID) uint32 { return uint32(subj) & g.shardMask }

func (g *Graph) shard(subj EntityID) *graphShard { return &g.shards[g.shardIndex(subj)] }

// rlockAll acquires every shard's lock in index order, freezing the
// watermark and the whole triple state for a consistent cut. Buffered pom
// deltas are drained first so the cut freezes the predicate-major index
// at the watermark too; a writer can slip a new delta in between the
// drain and the last lock acquisition, so the drain re-runs until a
// fully-applied state is observed under the locks (pomDirtyShards only
// changes under a shard write lock, so it is stable while every read
// lock is held; writers queued behind our partially acquired read locks
// usually make the second attempt succeed). The optimistic attempts are
// bounded: under sustained writer pressure the final attempt takes every
// shard's WRITE lock and drains under them — strictly stronger (writers
// and readers excluded for the cut's duration) and guaranteed to
// terminate, never a livelock. The returned mode must be passed to
// runlockAll. A side effect of the drained guarantee: code running under
// the all-shard cut can safely read the pom accessors, because their
// flush-on-read check is necessarily clean.
func (g *Graph) rlockAll() (writeMode bool) {
	const optimisticAttempts = 4
	for attempt := 0; attempt < optimisticAttempts; attempt++ {
		if g.pomDirtyShards.Load() != 0 {
			g.pomFlushDirtyShards()
		}
		for i := range g.shards {
			g.shards[i].mu.RLock()
		}
		if g.pomDirtyShards.Load() == 0 {
			return false
		}
		g.runlockAll(false)
	}
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
	for i := range g.shards {
		g.pomFlushShardLocked(&g.shards[i])
	}
	return true
}

func (g *Graph) runlockAll(writeMode bool) {
	for i := range g.shards {
		if writeMode {
			g.shards[i].mu.Unlock()
		} else {
			g.shards[i].mu.RUnlock()
		}
	}
}

// Ontology returns the graph's ontology.
func (g *Graph) Ontology() *Ontology { return g.ontology }

// AddEntity registers an entity. The Key must be unique; re-adding an
// existing key returns the existing ID without modifying the record.
func (g *Graph) AddEntity(e Entity) (EntityID, error) {
	if e.Key == "" {
		return NoEntity, fmt.Errorf("kg: entity key must be non-empty")
	}
	g.dictMu.Lock()
	defer g.dictMu.Unlock()
	if id, ok := g.entByKey[e.Key]; ok {
		return id, nil
	}
	id := EntityID(len(g.entities))
	e.ID = id
	stored := e
	g.entities = append(g.entities, &stored)
	g.entByKey[e.Key] = id
	g.entLen.Store(int64(len(g.entities)))
	return id, nil
}

// Entity returns the entity record for id, or nil if unknown. The
// returned pointer must be treated as read-only and immutable: record
// updates (SetPopularity) replace the stored pointer with a fresh copy
// instead of mutating the record in place, so lock-free readers holding a
// previously returned pointer never observe a torn write — they simply
// keep reading the version they fetched.
func (g *Graph) Entity(id EntityID) *Entity {
	g.dictMu.RLock()
	defer g.dictMu.RUnlock()
	if int(id) >= len(g.entities) {
		return nil
	}
	return g.entities[id]
}

// EntityByKey resolves an external key to an entity record. The returned
// pointer carries the same read-only contract as Entity.
func (g *Graph) EntityByKey(key string) (*Entity, bool) {
	g.dictMu.RLock()
	defer g.dictMu.RUnlock()
	id, ok := g.entByKey[key]
	if !ok {
		return nil, false
	}
	return g.entities[id], true
}

// SetPopularity updates an entity's popularity prior. The stored record
// is replaced copy-on-write: pointers handed out before the update keep
// their old (fully consistent) view, which makes the update safe against
// readers that inspect entity records outside the graph lock.
func (g *Graph) SetPopularity(id EntityID, pop float64) {
	g.dictMu.Lock()
	defer g.dictMu.Unlock()
	if int(id) < len(g.entities) && g.entities[id] != nil {
		cp := *g.entities[id]
		cp.Popularity = pop
		g.entities[id] = &cp
		g.markEntityDirtyLocked(id)
	}
}

// markEntityDirtyLocked records that id's dictionary record changed in
// place. Callers must hold dictMu.
func (g *Graph) markEntityDirtyLocked(id EntityID) {
	if g.dirtyEnts == nil {
		g.dirtyEnts = make(map[EntityID]struct{})
	}
	g.dirtyEnts[id] = struct{}{}
}

// TakeDirtyEntities drains and returns the IDs of entities whose
// records were updated in place (SetPopularity / UpdateEntity) since
// the previous drain, sorted ascending. The WAL commit path calls this
// to persist record updates as log records; anyone else draining it
// would steal the WAL's durability signal, so there is at most one
// consumer per graph.
func (g *Graph) TakeDirtyEntities() []EntityID {
	g.dictMu.Lock()
	defer g.dictMu.Unlock()
	if len(g.dirtyEnts) == 0 {
		return nil
	}
	out := make([]EntityID, 0, len(g.dirtyEnts))
	for id := range g.dirtyEnts {
		out = append(out, id)
	}
	clear(g.dirtyEnts)
	slices.Sort(out)
	return out
}

// ReplaceEntity overwrites the stored record for e.ID with e (copy-on-
// write, like SetPopularity). It exists for WAL replay of record-update
// log records — AddEntity deliberately refuses to modify an existing
// key — and therefore does NOT mark the entity dirty: replaying a
// durable update must not re-enqueue it for the next commit. The ID
// must already be registered and the Key must match the registered one
// (identity is immutable).
func (g *Graph) ReplaceEntity(e Entity) error {
	g.dictMu.Lock()
	defer g.dictMu.Unlock()
	if int(e.ID) <= 0 || int(e.ID) >= len(g.entities) || g.entities[e.ID] == nil {
		return fmt.Errorf("kg: ReplaceEntity: unknown entity ID %d", e.ID)
	}
	if g.entities[e.ID].Key != e.Key {
		return fmt.Errorf("kg: ReplaceEntity: key %q does not match registered key %q for ID %d",
			e.Key, g.entities[e.ID].Key, e.ID)
	}
	stored := e
	g.entities[e.ID] = &stored
	return nil
}

// UpdateEntity applies fn to a private copy of the entity record (with
// Aliases and Types cloned, so fn may rewrite them freely) and replaces
// the stored record with the result — the copy-on-write counterpart of
// mutating the pointer Entity() hands out, which is forbidden because
// lock-free readers may hold it. ID and Key are identity and are restored
// after fn runs; to re-key an entity, add a new one. Returns false if id
// is unknown. fn must not retain the pointer or call back into the graph.
func (g *Graph) UpdateEntity(id EntityID, fn func(*Entity)) bool {
	g.dictMu.Lock()
	defer g.dictMu.Unlock()
	if int(id) >= len(g.entities) || g.entities[id] == nil {
		return false
	}
	cp := *g.entities[id]
	cp.Aliases = slices.Clone(cp.Aliases)
	cp.Types = slices.Clone(cp.Types)
	fn(&cp)
	cp.ID = id
	cp.Key = g.entities[id].Key
	g.entities[id] = &cp
	g.markEntityDirtyLocked(id)
	return true
}

// AddPredicate registers a predicate, returning the existing ID if the name
// is already registered.
func (g *Graph) AddPredicate(p Predicate) (PredicateID, error) {
	if p.Name == "" {
		return NoPredicate, fmt.Errorf("kg: predicate name must be non-empty")
	}
	g.dictMu.Lock()
	defer g.dictMu.Unlock()
	if id, ok := g.predByName[p.Name]; ok {
		return id, nil
	}
	id := PredicateID(len(g.predicates))
	p.ID = id
	stored := p
	g.predicates = append(g.predicates, &stored)
	g.predByName[p.Name] = id
	g.predLen.Store(int64(len(g.predicates)))
	return id, nil
}

// Predicate returns the predicate record for id, or nil if unknown.
func (g *Graph) Predicate(id PredicateID) *Predicate {
	g.dictMu.RLock()
	defer g.dictMu.RUnlock()
	if int(id) >= len(g.predicates) {
		return nil
	}
	return g.predicates[id]
}

// PredicateByName resolves a predicate name.
func (g *Graph) PredicateByName(name string) (*Predicate, bool) {
	g.dictMu.RLock()
	defer g.dictMu.RUnlock()
	id, ok := g.predByName[name]
	if !ok {
		return nil, false
	}
	return g.predicates[id], true
}

// validate checks a triple's references against the atomically published
// dictionary lengths. IDs are assigned densely and only ever grow, so an
// ID below a length observed now is guaranteed registered; the check
// never takes a lock.
func (g *Graph) validate(t Triple) error {
	if int64(t.Subject) >= g.entLen.Load() || t.Subject == NoEntity {
		return fmt.Errorf("kg: assert: unknown subject %v", t.Subject)
	}
	if int64(t.Predicate) >= g.predLen.Load() || t.Predicate == NoPredicate {
		return fmt.Errorf("kg: assert: unknown predicate %v", t.Predicate)
	}
	if t.Object.Kind == 0 {
		return fmt.Errorf("kg: assert: invalid object value")
	}
	if t.Object.IsEntity() && (int64(t.Object.Entity) >= g.entLen.Load() || t.Object.Entity == NoEntity) {
		return fmt.Errorf("kg: assert: unknown object entity %v", t.Object.Entity)
	}
	return nil
}

// Assert adds a triple to the graph and appends an OpAssert mutation.
// Asserting a fact with identical SPO identity is a no-op (provenance of
// the first assertion wins; use Retract+Assert to replace).
func (g *Graph) Assert(t Triple) error {
	_, err := g.AssertNew(t)
	return err
}

// AssertNew is Assert, additionally reporting whether the fact was newly
// added (false means a fact with the same SPO identity already existed).
// It replaces the NumTriples-before/after pattern callers used to detect
// duplicate asserts, which cost two extra lock round-trips per triple.
func (g *Graph) AssertNew(t Triple) (bool, error) {
	if err := g.validate(t); err != nil {
		return false, err
	}
	sh := g.shard(t.Subject)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return g.assertShardLocked(sh, t, t.IdentityKey()), nil
}

// assertShardLocked applies one pre-validated triple under sh's write
// lock, returning whether it was newly added.
func (g *Graph) assertShardLocked(sh *graphShard, t Triple, key TripleKey) bool {
	if _, dup := sh.tripleKeys[key]; dup {
		return false
	}
	sh.tripleKeys[key] = struct{}{}

	bySubj := sh.spo[t.Subject]
	if bySubj == nil {
		bySubj = make(map[PredicateID][]Triple)
		sh.spo[t.Subject] = bySubj
	}
	bySubj[t.Predicate] = append(bySubj[t.Predicate], t)

	byPred := sh.pos[t.Predicate]
	if byPred == nil {
		byPred = make(map[ValueKey]int)
		sh.pos[t.Predicate] = byPred
	}
	byPred[key.Object]++

	if t.Object.IsEntity() {
		sh.osp[t.Object.Entity] = sh.osp[t.Object.Entity].add(t, key)
	}
	g.pomBufferLocked(sh, t.Predicate, t.Subject, key.Object, true)

	sh.log = append(sh.log, Mutation{Seq: g.seq.Add(1), Op: OpAssert, T: t})
	return true
}

// AssertAll adds a batch of triples, taking each touched shard's lock
// exactly once. Unlike looped Assert calls, the whole batch is validated
// up front: if any triple is invalid, an error is returned and nothing is
// applied.
func (g *Graph) AssertAll(ts []Triple) error {
	_, err := g.AssertBatch(ts)
	return err
}

// AssertBatch is the batch ingestion fast path: it validates every triple
// up front (applying nothing on error), groups the batch by shard, sorts
// each group by (subject, predicate, object identity), and applies it
// under a single shard lock acquisition with index slices grown once per
// (subject, predicate) run. It returns the number of facts newly added —
// triples whose SPO identity already existed in the graph, or that repeat
// an identity earlier in the batch (first occurrence in input order
// wins), are skipped.
//
// Input already sorted by SPO identity (the order AllTriples emits, i.e.
// what a disk restore or a sorted bulk load feeds back) is detected in
// O(n) and takes a merge-append path: a stable counting bucket by shard
// replaces the O(n log n) comparison sort, because a subject maps to
// exactly one shard, so a globally identity-sorted batch is already
// identity-sorted within every shard bucket.
func (g *Graph) AssertBatch(ts []Triple) (added int, err error) {
	if len(ts) == 0 {
		return 0, nil
	}
	for i := range ts {
		if err := g.validate(ts[i]); err != nil {
			return 0, err
		}
	}
	keys := make([]TripleKey, len(ts))
	order := make([]int32, len(ts))
	for i := range ts {
		keys[i] = ts[i].IdentityKey()
		order[i] = int32(i)
	}
	sorted := true
	for i := 1; i < len(keys); i++ {
		if keys[i-1].Compare(keys[i]) > 0 {
			sorted = false
			break
		}
	}
	if sorted {
		// Merge-append: stable-bucket the already-ordered input by shard.
		// Within each bucket the input order is preserved, which is both
		// the identity order (the input is globally sorted and a subject
		// never spans shards) and the first-occurrence-wins tie-break for
		// in-batch duplicates (equal keys are adjacent in a sorted input).
		starts := make([]int32, len(g.shards)+1)
		for i := range keys {
			starts[g.shardIndex(keys[i].Subject)+1]++
		}
		for s := 0; s < len(g.shards); s++ {
			starts[s+1] += starts[s]
		}
		cur := append([]int32(nil), starts[:len(g.shards)]...)
		for i := range keys {
			s := g.shardIndex(keys[i].Subject)
			order[cur[s]] = int32(i)
			cur[s]++
		}
		for s := 0; s < len(g.shards); s++ {
			if starts[s] == starts[s+1] {
				continue
			}
			added += g.assertShardBatch(&g.shards[s], ts, keys, order[starts[s]:starts[s+1]])
		}
		return added, nil
	}
	// Sort by (shard, identity key, input index): shard grouping gives one
	// lock acquisition per shard, key ordering makes duplicates adjacent
	// and (subject, predicate) runs contiguous, and the input-index
	// tie-break keeps "first assertion wins" provenance semantics for
	// in-batch duplicates.
	sort.Slice(order, func(a, b int) bool {
		ka, kb := keys[order[a]], keys[order[b]]
		sa, sb := g.shardIndex(ka.Subject), g.shardIndex(kb.Subject)
		if sa != sb {
			return sa < sb
		}
		if c := ka.Compare(kb); c != 0 {
			return c < 0
		}
		return order[a] < order[b]
	})
	for lo := 0; lo < len(order); {
		shIdx := g.shardIndex(keys[order[lo]].Subject)
		hi := lo + 1
		for hi < len(order) && g.shardIndex(keys[order[hi]].Subject) == shIdx {
			hi++
		}
		added += g.assertShardBatch(&g.shards[shIdx], ts, keys, order[lo:hi])
		lo = hi
	}
	return added, nil
}

// assertShardBatch applies one shard's slice of a sorted batch under a
// single lock acquisition.
func (g *Graph) assertShardBatch(sh *graphShard, ts []Triple, keys []TripleKey, order []int32) int {
	sh.mu.Lock()
	defer sh.mu.Unlock()

	// Filter duplicates first — in-batch (adjacent after sorting) and
	// against the existing identity set — so the grow sizes below are
	// exact. Compaction reuses order's backing array.
	kept := order[:0]
	for i, oi := range order {
		k := keys[oi]
		if i > 0 && k == keys[order[i-1]] {
			continue
		}
		if _, dup := sh.tripleKeys[k]; dup {
			continue
		}
		kept = append(kept, oi)
	}
	if len(kept) == 0 {
		return 0
	}
	sh.log = slices.Grow(sh.log, len(kept))
	for i := 0; i < len(kept); {
		t0 := ts[kept[i]]
		j := i + 1
		for j < len(kept) && ts[kept[j]].Subject == t0.Subject && ts[kept[j]].Predicate == t0.Predicate {
			j++
		}
		run := kept[i:j]
		bySubj := sh.spo[t0.Subject]
		if bySubj == nil {
			bySubj = make(map[PredicateID][]Triple)
			sh.spo[t0.Subject] = bySubj
		}
		lst := slices.Grow(bySubj[t0.Predicate], len(run))
		for _, oi := range run {
			t, k := ts[oi], keys[oi]
			sh.tripleKeys[k] = struct{}{}
			lst = append(lst, t)
			byPred := sh.pos[t.Predicate]
			if byPred == nil {
				byPred = make(map[ValueKey]int)
				sh.pos[t.Predicate] = byPred
			}
			byPred[k.Object]++
			if t.Object.IsEntity() {
				sh.osp[t.Object.Entity] = sh.osp[t.Object.Entity].add(t, k)
			}
			g.pomBufferLocked(sh, t.Predicate, t.Subject, k.Object, true)
			sh.log = append(sh.log, Mutation{Seq: g.seq.Add(1), Op: OpAssert, T: t})
		}
		bySubj[t0.Predicate] = lst
		i = j
	}
	return len(kept)
}

// Retract removes the fact with the same SPO identity as t, if present,
// and appends an OpRetract mutation. It reports whether a fact was removed.
func (g *Graph) Retract(t Triple) bool {
	key := t.IdentityKey()
	sh := g.shard(t.Subject)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.tripleKeys[key]; !ok {
		return false
	}
	delete(sh.tripleKeys, key)

	if bySubj := sh.spo[t.Subject]; bySubj != nil {
		bySubj[t.Predicate] = removeTriple(bySubj[t.Predicate], key)
		if len(bySubj[t.Predicate]) == 0 {
			delete(bySubj, t.Predicate)
		}
		if len(bySubj) == 0 {
			delete(sh.spo, t.Subject)
		}
	}
	if byPred := sh.pos[t.Predicate]; byPred != nil {
		if n := byPred[key.Object]; n <= 1 {
			delete(byPred, key.Object)
		} else {
			byPred[key.Object] = n - 1
		}
		if len(byPred) == 0 {
			delete(sh.pos, t.Predicate)
		}
	}
	if t.Object.IsEntity() {
		if p, ok := sh.osp[t.Object.Entity]; ok {
			p = p.remove(key)
			if p.live() == 0 {
				delete(sh.osp, t.Object.Entity)
			} else {
				sh.osp[t.Object.Entity] = p
			}
		}
	}
	g.pomBufferLocked(sh, t.Predicate, t.Subject, key.Object, false)
	sh.factSplices++

	sh.log = append(sh.log, Mutation{Seq: g.seq.Add(1), Op: OpRetract, T: t})
	return true
}

// removeTriple deletes the triple with the given SPO identity from ts.
// Matching goes through IdentityKey — the same identity the dedup set
// uses — not Value.Equal: the two disagree on NaN-valued floats (equal
// bits, unequal under ==), and an index removal that misses while the
// identity set forgets the key would leave a phantom triple in spo.
func removeTriple(ts []Triple, key TripleKey) []Triple {
	for i := range ts {
		if ts[i].IdentityKey() == key {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

func removeEntity(es []EntityID, e EntityID) []EntityID {
	for i := range es {
		if es[i] == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// ospPosting is one object entity's incoming-edge posting within a shard.
// Short postings splice on removal like any small slice. The first
// removal from a posting that has grown past postingIdxThreshold builds a
// position map (identity -> slot) and switches the posting to tombstoning:
// removals zero the slot in O(1) and the posting compacts in place once
// half its slots are dead, so retract cost is amortized O(1) regardless
// of how many edges point at the hub. Write-once bulk loads never pay for
// the map — it exists only after a hot posting's first retract. The zero
// Triple (Subject == NoEntity, an ID never assigned) is the tombstone;
// readers skip it. This is the deliberate monomorphic twin of pom.go's
// posting type (see the note there): invariant changes must be mirrored.
type ospPosting struct {
	triples []Triple
	dead    int
	idx     map[TripleKey]int32
}

func (p ospPosting) live() int { return len(p.triples) - p.dead }

func (p ospPosting) add(t Triple, key TripleKey) ospPosting {
	if p.idx != nil {
		p.idx[key] = int32(len(p.triples))
	}
	p.triples = append(p.triples, t)
	return p
}

func (p ospPosting) remove(key TripleKey) ospPosting {
	if p.idx == nil {
		if len(p.triples) < postingIdxThreshold {
			p.triples = removeTriple(p.triples, key)
			return p
		}
		p.idx = make(map[TripleKey]int32, len(p.triples))
		for i := range p.triples {
			p.idx[p.triples[i].IdentityKey()] = int32(i)
		}
	}
	slot, ok := p.idx[key]
	if !ok {
		return p
	}
	p.triples[slot] = Triple{}
	delete(p.idx, key)
	p.dead++
	if p.dead*2 >= len(p.triples) {
		p = p.compact()
	}
	return p
}

// compact drops tombstones in place and rebuilds the live slots'
// positions. The position map only ever holds live identities, so
// re-pointing them is a full rebuild of the map's values but never leaves
// stale keys behind.
func (p ospPosting) compact() ospPosting {
	live := p.triples[:0]
	for i := range p.triples {
		if p.triples[i].Subject != NoEntity {
			live = append(live, p.triples[i])
		}
	}
	p.triples = live
	p.dead = 0
	for i := range p.triples {
		p.idx[p.triples[i].IdentityKey()] = int32(i)
	}
	return p
}

// Facts returns all triples with the given subject and predicate.
func (g *Graph) Facts(subj EntityID, pred PredicateID) []Triple {
	sh := g.shard(subj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	bySubj := sh.spo[subj]
	if bySubj == nil {
		return nil
	}
	ts := bySubj[pred]
	out := make([]Triple, len(ts))
	copy(out, ts)
	return out
}

// FactsFunc streams the (subj, pred) triples to fn under the subject
// shard's read lock, stopping early if fn returns false. It is the
// copy-free counterpart of Facts for callers that filter or aggregate and
// would discard the slice. fn must not mutate the graph or retain the
// Triple's interior slices.
func (g *Graph) FactsFunc(subj EntityID, pred PredicateID, fn func(Triple) bool) {
	sh := g.shard(subj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	bySubj := sh.spo[subj]
	if bySubj == nil {
		return
	}
	for _, t := range bySubj[pred] {
		if !fn(t) {
			return
		}
	}
}

// FactsChunked streams the (subj, pred) triples to fn in chunks of at
// most chunkSize — the fact-list counterpart of the pom index's
// SubjectsWithChunked. Each chunk is copied out under one shard read-lock
// acquisition and fn runs with no locks held, so fn may read (or mutate)
// the graph and the lock hold time is bounded by chunkSize regardless of
// the fact list's length. fn returning false stops the enumeration.
//
// Resumption between chunks is offset-based and guarded by the shard's
// splice counter: assertion only appends to fact lists, so a saved offset
// survives concurrent asserts, but any retract in the shard splices a
// list and the reader restarts from the beginning, delivering the next
// chunk with restarted=true. A restart can re-deliver triples already
// seen; callers needing exactly-once must dedup (the conjunctive
// executor's streaming dedup absorbs this). The guarantee is one-sided,
// matching SubjectsWithChunked: every triple present for the entire
// enumeration is delivered at least once.
func (g *Graph) FactsChunked(subj EntityID, pred PredicateID, chunkSize int, fn func(chunk []Triple, restarted bool) bool) {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	sh := g.shard(subj)
	var (
		buf       []Triple
		off       int
		ver       uint64
		first     = true
		restarted bool
	)
	for {
		sh.mu.RLock()
		var ts []Triple
		if bySubj := sh.spo[subj]; bySubj != nil {
			ts = bySubj[pred]
		}
		if first {
			ver = sh.factSplices
			first = false
			if n := min(len(ts), chunkSize); n > 0 {
				buf = make([]Triple, 0, n)
			}
		} else if sh.factSplices != ver {
			ver = sh.factSplices
			off = 0
			restarted = true
		}
		end := min(off+chunkSize, len(ts))
		buf = append(buf[:0], ts[off:end]...)
		done := end >= len(ts)
		sh.mu.RUnlock()

		if len(buf) > 0 {
			if !fn(buf, restarted) {
				return
			}
			restarted = false
		}
		if done {
			return
		}
		off = end
	}
}

// HasFacts reports whether at least one (subj, pred, *) fact is asserted,
// without materializing the fact slice.
func (g *Graph) HasFacts(subj EntityID, pred PredicateID) bool {
	return g.FactCount(subj, pred) > 0
}

// FactCount returns the number of (subj, pred, *) facts without
// materializing the fact slice: one shard read lock and two map lookups.
// It is the planner's bound-subject selectivity probe.
func (g *Graph) FactCount(subj EntityID, pred PredicateID) int {
	sh := g.shard(subj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	bySubj := sh.spo[subj]
	if bySubj == nil {
		return 0
	}
	return len(bySubj[pred])
}

// Outgoing returns every triple whose subject is subj.
func (g *Graph) Outgoing(subj EntityID) []Triple {
	sh := g.shard(subj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	var out []Triple
	for _, ts := range sh.spo[subj] {
		out = append(out, ts...)
	}
	return out
}

// OutgoingFunc streams every triple whose subject is subj to fn under the
// subject shard's read lock, stopping early if fn returns false.
// Iteration order across predicates is unspecified. fn must not mutate
// the graph.
func (g *Graph) OutgoingFunc(subj EntityID, fn func(Triple) bool) {
	sh := g.shard(subj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	for _, ts := range sh.spo[subj] {
		for _, t := range ts {
			if !fn(t) {
				return
			}
		}
	}
}

// Incoming returns every triple whose object is the entity obj. The scan
// visits shards one at a time; each shard's contribution is internally
// consistent, but a concurrent writer may land between shard visits.
func (g *Graph) Incoming(obj EntityID) []Triple {
	var out []Triple
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		if p, ok := sh.osp[obj]; ok {
			out = slices.Grow(out, p.live())
			for j := range p.triples {
				if p.triples[j].Subject != NoEntity {
					out = append(out, p.triples[j])
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// IncomingFunc streams every triple whose object is the entity obj to fn,
// stopping early if fn returns false. Shards are visited one at a time
// (see Incoming); fn must not mutate the graph.
func (g *Graph) IncomingFunc(obj EntityID, fn func(Triple) bool) {
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		p := sh.osp[obj]
		for j := range p.triples {
			if p.triples[j].Subject == NoEntity {
				continue
			}
			if !fn(p.triples[j]) {
				sh.mu.RUnlock()
				return
			}
		}
		sh.mu.RUnlock()
	}
}

// HasFact reports whether the exact fact (ignoring provenance) is asserted.
func (g *Graph) HasFact(subj EntityID, pred PredicateID, obj Value) bool {
	sh := g.shard(subj)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.tripleKeys[TripleKey{Subject: subj, Predicate: pred, Object: obj.MapKey()}]
	return ok
}

// NumEntities returns the number of registered entities.
func (g *Graph) NumEntities() int {
	return int(g.entLen.Load()) - 1
}

// NumPredicates returns the number of registered predicates.
func (g *Graph) NumPredicates() int {
	return int(g.predLen.Load()) - 1
}

// NumTriples returns the number of asserted facts, summed shard by shard.
func (g *Graph) NumTriples() int {
	n := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		n += len(sh.tripleKeys)
		sh.mu.RUnlock()
	}
	return n
}

// Triples streams every asserted triple to fn in unspecified order,
// stopping early if fn returns false. Every shard's read lock is held for
// the duration, so the iteration is one consistent cut; fn must not
// mutate the graph.
func (g *Graph) Triples(fn func(Triple) bool) {
	wm := g.rlockAll()
	defer g.runlockAll(wm)
	g.triplesLocked(fn)
}

func (g *Graph) triplesLocked(fn func(Triple) bool) {
	for i := range g.shards {
		for _, bySubj := range g.shards[i].spo {
			for _, ts := range bySubj {
				for _, t := range ts {
					if !fn(t) {
						return
					}
				}
			}
		}
	}
}

// TriplesSnapshot streams every asserted triple to fn like Triples and
// returns the mutation watermark the iteration reflects. Both happen
// under one all-shard read-lock acquisition, so derived structures
// (adjacency snapshots, views) get a consistent (triples, watermark)
// pair: the visited triples are exactly the state after the first `seq`
// mutations.
func (g *Graph) TriplesSnapshot(fn func(Triple) bool) (seq uint64) {
	wm := g.rlockAll()
	defer g.runlockAll(wm)
	g.triplesLocked(fn)
	return g.seq.Load()
}

// AllTriples materializes every asserted triple in a deterministic order
// (by subject, then predicate, then object identity key). Object keys are
// precomputed once per triple instead of being rebuilt O(n log n) times
// inside the sort comparator.
func (g *Graph) AllTriples() []Triple {
	wm := g.rlockAll()
	defer g.runlockAll(wm)
	return g.allTriplesLocked()
}

func (g *Graph) allTriplesLocked() []Triple {
	total := 0
	for i := range g.shards {
		total += len(g.shards[i].tripleKeys)
	}
	out := make([]Triple, 0, total)
	var subjects []EntityID
	for i := range g.shards {
		for s := range g.shards[i].spo {
			subjects = append(subjects, s)
		}
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	type keyed struct {
		t Triple
		k ValueKey
	}
	var scratch []keyed
	for _, s := range subjects {
		bySubj := g.shard(s).spo[s]
		preds := make([]PredicateID, 0, len(bySubj))
		for p := range bySubj {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		for _, p := range preds {
			scratch = scratch[:0]
			for _, t := range bySubj[p] {
				scratch = append(scratch, keyed{t: t, k: t.Object.MapKey()})
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i].k.Compare(scratch[j].k) < 0 })
			for _, kt := range scratch {
				out = append(out, kt.t)
			}
		}
	}
	return out
}

// Entities streams every entity record to fn, stopping early if fn
// returns false.
func (g *Graph) Entities(fn func(*Entity) bool) {
	g.dictMu.RLock()
	defer g.dictMu.RUnlock()
	for _, e := range g.entities[1:] {
		if !fn(e) {
			return
		}
	}
}

// Predicates streams every predicate record to fn.
func (g *Graph) Predicates(fn func(*Predicate) bool) {
	g.dictMu.RLock()
	defer g.dictMu.RUnlock()
	for _, p := range g.predicates[1:] {
		if !fn(p) {
			return
		}
	}
}

// mutationsSinceLocked merges the per-shard logs' entries with sequence
// numbers strictly greater than seq into one ascending feed. Callers must
// hold every shard's read lock.
func (g *Graph) mutationsSinceLocked(seq uint64) []Mutation {
	total := 0
	starts := make([]int, len(g.shards))
	for i := range g.shards {
		log := g.shards[i].log
		starts[i] = sort.Search(len(log), func(j int) bool { return log[j].Seq > seq })
		total += len(log) - starts[i]
	}
	out := make([]Mutation, 0, total)
	for i := range g.shards {
		out = append(out, g.shards[i].log[starts[i]:]...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// MutationsSince returns a copy of the mutation log entries with sequence
// numbers strictly greater than seq, in ascending sequence order, merged
// across the per-shard sub-logs under one consistent all-shard cut.
func (g *Graph) MutationsSince(seq uint64) []Mutation {
	wm := g.rlockAll()
	defer g.runlockAll(wm)
	return g.mutationsSinceLocked(seq)
}

// LastSeq returns the sequence number of the most recent mutation. A bare
// atomic load: the mutation that owns the returned number may still be
// completing on its shard, so treat the value as a staleness hint; use
// TriplesSnapshot or MutationsSince for reads whose watermark must
// exactly match the observed state.
func (g *Graph) LastSeq() uint64 {
	return g.seq.Load()
}

// LogFloor returns the highest mutation sequence number that has been
// dropped from the in-memory log (0 when nothing was ever truncated).
// MutationsSince(seq) is a complete feed only when seq >= LogFloor();
// consumers maintaining derived state should pull, then re-check the
// floor, and rebuild from scratch when the floor has passed their
// watermark (the floor is raised before entries are dropped, so this
// ordering can never miss a truncation).
func (g *Graph) LogFloor() uint64 {
	return g.logFloor.Load()
}

// TruncateLog drops every mutation-log entry with sequence number at or
// below upTo and returns the number of entries dropped. It is the log
// compaction hook for durability: once the WAL has a durable copy of the
// prefix (a checkpoint at watermark upTo), the in-memory copy is dead
// weight in a long-running server. The floor (LogFloor) is raised first,
// then shards are compacted one at a time; concurrent writers are
// unaffected (their entries are strictly above upTo), and concurrent
// MutationsSince callers detect the truncation via the floor check
// described on LogFloor.
func (g *Graph) TruncateLog(upTo uint64) int {
	if upTo == 0 {
		return 0
	}
	// Raise the floor before dropping anything (see LogFloor). The floor
	// never exceeds the watermark: entries above the current seq do not
	// exist, so claiming them dropped would wedge consumers at a floor no
	// pull can ever satisfy.
	if wm := g.seq.Load(); upTo > wm {
		upTo = wm
	}
	for {
		cur := g.logFloor.Load()
		if cur >= upTo {
			break
		}
		if g.logFloor.CompareAndSwap(cur, upTo) {
			break
		}
	}
	dropped := 0
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.Lock()
		cut := sort.Search(len(sh.log), func(j int) bool { return sh.log[j].Seq > upTo })
		if cut > 0 {
			dropped += cut
			// Copy the tail to a fresh slice so the dropped prefix's
			// backing array (and the Triples it pins) becomes collectable.
			tail := make([]Mutation, len(sh.log)-cut)
			copy(tail, sh.log[cut:])
			sh.log = tail
		}
		sh.mu.Unlock()
	}
	return dropped
}

// AdvanceWatermark fast-forwards the mutation watermark to seq without
// applying any mutations, discarding the in-memory mutation log and
// setting the log floor to seq. It exists for recovery: a checkpoint at
// watermark W restores its triples through AssertBatch (which assigns
// fresh low sequence numbers), after which AdvanceWatermark(W) makes the
// graph's watermark agree with the durable LSN space again — subsequent
// mutations draw W+1, W+2, ... exactly as if the process had never
// restarted. Rewinding is not possible: seq below the current watermark
// is an error, and nothing is modified.
func (g *Graph) AdvanceWatermark(seq uint64) error {
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
	defer func() {
		for i := range g.shards {
			g.shards[i].mu.Unlock()
		}
	}()
	cur := g.seq.Load()
	if seq < cur {
		return fmt.Errorf("kg: AdvanceWatermark(%d) below current watermark %d", seq, cur)
	}
	// Floor first, then drop (same ordering contract as TruncateLog) —
	// though with every shard write-locked no reader can interleave.
	for {
		old := g.logFloor.Load()
		if old >= seq || g.logFloor.CompareAndSwap(old, seq) {
			break
		}
	}
	for i := range g.shards {
		g.shards[i].log = nil
	}
	g.seq.Store(seq)
	return nil
}

// AllTriplesSnapshot is AllTriples plus the mutation watermark the
// materialized slice reflects, both taken under one all-shard cut. It is
// the checkpoint read: the returned triples are exactly the state after
// the first seq mutations, in identity order — the order AssertBatch's
// merge-append restore path detects in O(n).
func (g *Graph) AllTriplesSnapshot() (ts []Triple, seq uint64) {
	wm := g.rlockAll()
	defer g.runlockAll(wm)
	return g.allTriplesLocked(), g.seq.Load()
}
