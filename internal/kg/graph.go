package kg

import (
	"fmt"
	"sort"
	"sync"
)

// Entity is the metadata record for a node in the graph. Facts about the
// entity live in the triple store; this record holds the identity and the
// textual features (name, aliases, description) that the semantic
// annotation service embeds and matches against (paper §3).
type Entity struct {
	ID EntityID
	// Key is the stable external identifier ("Q42"-style).
	Key string
	// Name is the canonical display name.
	Name string
	// Aliases are alternative surface forms, used for mention detection.
	Aliases []string
	// Description is a short textual gloss used by contextual reranking.
	Description string
	// Types are the ontology types of the entity.
	Types []TypeID
	// Popularity is a query-log-derived importance prior in [0,1].
	Popularity float64
}

// HasType reports whether the entity carries the exact type t.
func (e *Entity) HasType(t TypeID) bool {
	for _, et := range e.Types {
		if et == t {
			return true
		}
	}
	return false
}

// Predicate is the metadata record for an edge label.
type Predicate struct {
	ID   PredicateID
	Name string
	// ValueKind constrains objects of this predicate (0 = unconstrained).
	ValueKind ValueKind
	// Functional predicates admit at most one current object per subject
	// (date of birth, capital). ODKE uses this to detect stale facts.
	Functional bool
}

// Graph is an in-memory triple store with entity/predicate dictionaries,
// SPO/POS/OSP indexes, and a mutation log. It is safe for concurrent use;
// reads take a shared lock.
//
// # Index layout and key encoding
//
//	spo: subject -> predicate -> []Triple          (fact lookup, outgoing)
//	pos: predicate -> ValueKey -> []EntityID       (reverse fact lookup)
//	osp: object-entity -> []Triple                 (incoming entity edges)
//	tripleKeys: set of TripleKey                   (SPO identity, dedup)
//
// Fact identity is the comparable TripleKey struct (subject ID, predicate
// ID, object ValueKey); see ValueKey for the per-kind payload encoding.
// No strings are built on the Assert/Retract/HasFact paths. Index slices
// and inner maps are deleted as they drain, so a long-lived graph under
// assert/retract churn does not leak map entries.
//
// # Mutation log and watermark semantics
//
// Every successful Assert/Retract appends a Mutation with a sequence
// number that increases by exactly 1; nextSeq is the watermark of the
// latest applied mutation. LastSeq()/TriplesSnapshot() expose it so
// derived structures (materialized views, adjacency snapshots) can record
// the watermark they were built at and later decide staleness with a
// single comparison: a derived structure at watermark w reflects exactly
// the first w mutations. Registering entities or predicates does not bump
// the watermark — a new entity is observable in derived edge structures
// only once a triple mentions it, and asserting that triple bumps the
// watermark.
type Graph struct {
	mu sync.RWMutex

	ontology *Ontology

	entities   []*Entity // EntityID -> *Entity (index 0 unused)
	entByKey   map[string]EntityID
	predicates []*Predicate // PredicateID -> *Predicate (index 0 unused)
	predByName map[string]PredicateID

	spo map[EntityID]map[PredicateID][]Triple
	pos map[PredicateID]map[ValueKey][]EntityID
	osp map[EntityID][]Triple

	predCount map[PredicateID]int // triples per predicate, for frequency filtering

	log        []Mutation
	nextSeq    uint64
	tripleKeys map[TripleKey]struct{} // SPO identity set for dedup
}

// NewGraph returns an empty graph with a fresh ontology.
func NewGraph() *Graph {
	return &Graph{
		ontology:   NewOntology(),
		entities:   []*Entity{nil},
		entByKey:   make(map[string]EntityID),
		predicates: []*Predicate{nil},
		predByName: make(map[string]PredicateID),
		spo:        make(map[EntityID]map[PredicateID][]Triple),
		pos:        make(map[PredicateID]map[ValueKey][]EntityID),
		osp:        make(map[EntityID][]Triple),
		predCount:  make(map[PredicateID]int),
		tripleKeys: make(map[TripleKey]struct{}),
	}
}

// Ontology returns the graph's ontology.
func (g *Graph) Ontology() *Ontology { return g.ontology }

// AddEntity registers an entity. The Key must be unique; re-adding an
// existing key returns the existing ID without modifying the record.
func (g *Graph) AddEntity(e Entity) (EntityID, error) {
	if e.Key == "" {
		return NoEntity, fmt.Errorf("kg: entity key must be non-empty")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.entByKey[e.Key]; ok {
		return id, nil
	}
	id := EntityID(len(g.entities))
	e.ID = id
	stored := e
	g.entities = append(g.entities, &stored)
	g.entByKey[e.Key] = id
	return id, nil
}

// Entity returns the entity record for id, or nil if unknown. The returned
// pointer must be treated as read-only.
func (g *Graph) Entity(id EntityID) *Entity {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.entities) {
		return nil
	}
	return g.entities[id]
}

// EntityByKey resolves an external key to an entity record.
func (g *Graph) EntityByKey(key string) (*Entity, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.entByKey[key]
	if !ok {
		return nil, false
	}
	return g.entities[id], true
}

// SetPopularity updates an entity's popularity prior.
func (g *Graph) SetPopularity(id EntityID, pop float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if int(id) < len(g.entities) && g.entities[id] != nil {
		g.entities[id].Popularity = pop
	}
}

// AddPredicate registers a predicate, returning the existing ID if the name
// is already registered.
func (g *Graph) AddPredicate(p Predicate) (PredicateID, error) {
	if p.Name == "" {
		return NoPredicate, fmt.Errorf("kg: predicate name must be non-empty")
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.predByName[p.Name]; ok {
		return id, nil
	}
	id := PredicateID(len(g.predicates))
	p.ID = id
	stored := p
	g.predicates = append(g.predicates, &stored)
	g.predByName[p.Name] = id
	return id, nil
}

// Predicate returns the predicate record for id, or nil if unknown.
func (g *Graph) Predicate(id PredicateID) *Predicate {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.predicates) {
		return nil
	}
	return g.predicates[id]
}

// PredicateByName resolves a predicate name.
func (g *Graph) PredicateByName(name string) (*Predicate, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.predByName[name]
	if !ok {
		return nil, false
	}
	return g.predicates[id], true
}

// Assert adds a triple to the graph and appends an OpAssert mutation.
// Asserting a fact with identical SPO identity is a no-op (provenance of
// the first assertion wins; use Retract+Assert to replace).
func (g *Graph) Assert(t Triple) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	_, err := g.assertLocked(t)
	return err
}

// AssertNew is Assert, additionally reporting whether the fact was newly
// added (false means a fact with the same SPO identity already existed).
// It replaces the NumTriples-before/after pattern callers used to detect
// duplicate asserts, which cost two extra lock round-trips per triple.
func (g *Graph) AssertNew(t Triple) (bool, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.assertLocked(t)
}

// AssertAll adds a batch of triples under a single lock acquisition.
func (g *Graph) AssertAll(ts []Triple) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, t := range ts {
		if _, err := g.assertLocked(t); err != nil {
			return err
		}
	}
	return nil
}

func (g *Graph) assertLocked(t Triple) (added bool, err error) {
	if int(t.Subject) >= len(g.entities) || t.Subject == NoEntity {
		return false, fmt.Errorf("kg: assert: unknown subject %v", t.Subject)
	}
	if int(t.Predicate) >= len(g.predicates) || t.Predicate == NoPredicate {
		return false, fmt.Errorf("kg: assert: unknown predicate %v", t.Predicate)
	}
	if t.Object.Kind == 0 {
		return false, fmt.Errorf("kg: assert: invalid object value")
	}
	if t.Object.IsEntity() && (int(t.Object.Entity) >= len(g.entities) || t.Object.Entity == NoEntity) {
		return false, fmt.Errorf("kg: assert: unknown object entity %v", t.Object.Entity)
	}
	key := t.IdentityKey()
	if _, dup := g.tripleKeys[key]; dup {
		return false, nil
	}
	g.tripleKeys[key] = struct{}{}

	bySubj := g.spo[t.Subject]
	if bySubj == nil {
		bySubj = make(map[PredicateID][]Triple)
		g.spo[t.Subject] = bySubj
	}
	bySubj[t.Predicate] = append(bySubj[t.Predicate], t)

	byPred := g.pos[t.Predicate]
	if byPred == nil {
		byPred = make(map[ValueKey][]EntityID)
		g.pos[t.Predicate] = byPred
	}
	byPred[key.Object] = append(byPred[key.Object], t.Subject)

	if t.Object.IsEntity() {
		g.osp[t.Object.Entity] = append(g.osp[t.Object.Entity], t)
	}
	g.predCount[t.Predicate]++

	g.nextSeq++
	g.log = append(g.log, Mutation{Seq: g.nextSeq, Op: OpAssert, T: t})
	return true, nil
}

// Retract removes the fact with the same SPO identity as t, if present,
// and appends an OpRetract mutation. It reports whether a fact was removed.
func (g *Graph) Retract(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	key := t.IdentityKey()
	if _, ok := g.tripleKeys[key]; !ok {
		return false
	}
	delete(g.tripleKeys, key)

	if bySubj := g.spo[t.Subject]; bySubj != nil {
		bySubj[t.Predicate] = removeTriple(bySubj[t.Predicate], t)
		if len(bySubj[t.Predicate]) == 0 {
			delete(bySubj, t.Predicate)
		}
		if len(bySubj) == 0 {
			delete(g.spo, t.Subject)
		}
	}
	if byPred := g.pos[t.Predicate]; byPred != nil {
		byPred[key.Object] = removeEntity(byPred[key.Object], t.Subject)
		if len(byPred[key.Object]) == 0 {
			delete(byPred, key.Object)
		}
		if len(byPred) == 0 {
			delete(g.pos, t.Predicate)
		}
	}
	if t.Object.IsEntity() {
		g.osp[t.Object.Entity] = removeTriple(g.osp[t.Object.Entity], t)
		if len(g.osp[t.Object.Entity]) == 0 {
			delete(g.osp, t.Object.Entity)
		}
	}
	g.predCount[t.Predicate]--

	g.nextSeq++
	g.log = append(g.log, Mutation{Seq: g.nextSeq, Op: OpRetract, T: t})
	return true
}

func removeTriple(ts []Triple, t Triple) []Triple {
	for i := range ts {
		if ts[i].Subject == t.Subject && ts[i].Predicate == t.Predicate && ts[i].Object.Equal(t.Object) {
			return append(ts[:i], ts[i+1:]...)
		}
	}
	return ts
}

func removeEntity(es []EntityID, e EntityID) []EntityID {
	for i := range es {
		if es[i] == e {
			return append(es[:i], es[i+1:]...)
		}
	}
	return es
}

// Facts returns all triples with the given subject and predicate.
func (g *Graph) Facts(subj EntityID, pred PredicateID) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	bySubj := g.spo[subj]
	if bySubj == nil {
		return nil
	}
	ts := bySubj[pred]
	out := make([]Triple, len(ts))
	copy(out, ts)
	return out
}

// FactsFunc streams the (subj, pred) triples to fn under the read lock,
// stopping early if fn returns false. It is the copy-free counterpart of
// Facts for callers that filter or aggregate and would discard the slice.
// fn must not mutate the graph or retain the Triple's interior slices.
func (g *Graph) FactsFunc(subj EntityID, pred PredicateID, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	bySubj := g.spo[subj]
	if bySubj == nil {
		return
	}
	for _, t := range bySubj[pred] {
		if !fn(t) {
			return
		}
	}
}

// HasFacts reports whether at least one (subj, pred, *) fact is asserted,
// without materializing the fact slice.
func (g *Graph) HasFacts(subj EntityID, pred PredicateID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	bySubj := g.spo[subj]
	return bySubj != nil && len(bySubj[pred]) > 0
}

// Outgoing returns every triple whose subject is subj.
func (g *Graph) Outgoing(subj EntityID) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Triple
	for _, ts := range g.spo[subj] {
		out = append(out, ts...)
	}
	return out
}

// OutgoingFunc streams every triple whose subject is subj to fn under the
// read lock, stopping early if fn returns false. Iteration order across
// predicates is unspecified. fn must not mutate the graph.
func (g *Graph) OutgoingFunc(subj EntityID, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, ts := range g.spo[subj] {
		for _, t := range ts {
			if !fn(t) {
				return
			}
		}
	}
}

// Incoming returns every triple whose object is the entity obj.
func (g *Graph) Incoming(obj EntityID) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	ts := g.osp[obj]
	out := make([]Triple, len(ts))
	copy(out, ts)
	return out
}

// IncomingFunc streams every triple whose object is the entity obj to fn
// under the read lock, stopping early if fn returns false. fn must not
// mutate the graph.
func (g *Graph) IncomingFunc(obj EntityID, fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, t := range g.osp[obj] {
		if !fn(t) {
			return
		}
	}
}

// SubjectsWith returns the subjects that carry (pred, obj) facts.
func (g *Graph) SubjectsWith(pred PredicateID, obj Value) []EntityID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	byPred := g.pos[pred]
	if byPred == nil {
		return nil
	}
	es := byPred[obj.MapKey()]
	out := make([]EntityID, len(es))
	copy(out, es)
	return out
}

// HasFact reports whether the exact fact (ignoring provenance) is asserted.
func (g *Graph) HasFact(subj EntityID, pred PredicateID, obj Value) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	_, ok := g.tripleKeys[TripleKey{Subject: subj, Predicate: pred, Object: obj.MapKey()}]
	return ok
}

// NumEntities returns the number of registered entities.
func (g *Graph) NumEntities() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.entities) - 1
}

// NumPredicates returns the number of registered predicates.
func (g *Graph) NumPredicates() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.predicates) - 1
}

// NumTriples returns the number of asserted facts.
func (g *Graph) NumTriples() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.tripleKeys)
}

// PredicateFrequency returns the current number of triples using pred.
func (g *Graph) PredicateFrequency(pred PredicateID) int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.predCount[pred]
}

// Triples streams every asserted triple to fn in unspecified order,
// stopping early if fn returns false. The graph lock is held for the
// duration; fn must not mutate the graph.
func (g *Graph) Triples(fn func(Triple) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, bySubj := range g.spo {
		for _, ts := range bySubj {
			for _, t := range ts {
				if !fn(t) {
					return
				}
			}
		}
	}
}

// TriplesSnapshot streams every asserted triple to fn like Triples and
// returns the mutation watermark the iteration reflects. Both happen
// under one read-lock acquisition, so derived structures (adjacency
// snapshots, views) get a consistent (triples, watermark) pair: the
// visited triples are exactly the state after the first `seq` mutations.
func (g *Graph) TriplesSnapshot(fn func(Triple) bool) (seq uint64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, bySubj := range g.spo {
		for _, ts := range bySubj {
			for _, t := range ts {
				if !fn(t) {
					return g.nextSeq
				}
			}
		}
	}
	return g.nextSeq
}

// AllTriples materializes every asserted triple in a deterministic order
// (by subject, then predicate, then object identity key). Object keys are
// precomputed once per triple instead of being rebuilt O(n log n) times
// inside the sort comparator.
func (g *Graph) AllTriples() []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]Triple, 0, len(g.tripleKeys))
	subjects := make([]EntityID, 0, len(g.spo))
	for s := range g.spo {
		subjects = append(subjects, s)
	}
	sort.Slice(subjects, func(i, j int) bool { return subjects[i] < subjects[j] })
	type keyed struct {
		t Triple
		k ValueKey
	}
	var scratch []keyed
	for _, s := range subjects {
		bySubj := g.spo[s]
		preds := make([]PredicateID, 0, len(bySubj))
		for p := range bySubj {
			preds = append(preds, p)
		}
		sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })
		for _, p := range preds {
			scratch = scratch[:0]
			for _, t := range bySubj[p] {
				scratch = append(scratch, keyed{t: t, k: t.Object.MapKey()})
			}
			sort.Slice(scratch, func(i, j int) bool { return scratch[i].k.Compare(scratch[j].k) < 0 })
			for _, kt := range scratch {
				out = append(out, kt.t)
			}
		}
	}
	return out
}

// Entities streams every entity record to fn, stopping early if fn
// returns false.
func (g *Graph) Entities(fn func(*Entity) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, e := range g.entities[1:] {
		if !fn(e) {
			return
		}
	}
}

// Predicates streams every predicate record to fn.
func (g *Graph) Predicates(fn func(*Predicate) bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, p := range g.predicates[1:] {
		if !fn(p) {
			return
		}
	}
}

// MutationsSince returns a copy of the mutation log entries with sequence
// numbers strictly greater than seq.
func (g *Graph) MutationsSince(seq uint64) []Mutation {
	g.mu.RLock()
	defer g.mu.RUnlock()
	i := sort.Search(len(g.log), func(i int) bool { return g.log[i].Seq > seq })
	out := make([]Mutation, len(g.log)-i)
	copy(out, g.log[i:])
	return out
}

// LastSeq returns the sequence number of the most recent mutation.
func (g *Graph) LastSeq() uint64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.nextSeq
}
