package kg

// Changefeed is a cursor-bearing subscriber handle over the graph's
// mutation log: the one implementation of the pull-then-recheck-floor
// consumption contract that every derived structure (adjacency
// snapshots, materialized views, ondevice static assets, the WAL
// drain, live subscriptions) rides instead of hand-rolling it.
//
// The contract:
//
//   - Cursor: the feed has consumed exactly the first Cursor()
//     mutations. A fresh feed starts wherever the consumer's derived
//     state stands — Feed(0) for "from the beginning", Feed(LastSeq())
//     for "from now on".
//   - Pull: returns the mutations strictly after the cursor under one
//     consistent all-shard cut and advances the cursor past them. The
//     second return value reports completeness.
//   - Floor: the in-memory log is compacted (TruncateLog /
//     AdvanceWatermark raise LogFloor before dropping entries), so a
//     feed can fall behind the floor. Pull detects this — floor
//     observed above the cursor after pulling — and returns
//     (nil, false) without advancing: the batch may be missing dropped
//     entries, so applying it would corrupt derived state.
//   - Fallback: on an incomplete Pull the consumer must rematerialize
//     its derived state from a full read (TriplesSnapshot or
//     equivalent) and Reset the feed to the watermark that read
//     reflects. The floor-is-raised-first ordering guarantees an
//     incomplete batch is always detected, never silently applied.
//   - Lag: LastSeq() minus the cursor — how far behind live the
//     consumer is, the staleness metric exported by /health.
//
// A Changefeed is not safe for concurrent use; each consumer owns its
// own feed (they are a cursor plus a graph pointer, free to create).
type Changefeed struct {
	g      *Graph
	cursor uint64
}

// Feed returns a changefeed positioned at cursor: the first Pull
// returns mutations with sequence numbers strictly greater than cursor.
func (g *Graph) Feed(cursor uint64) *Changefeed {
	return &Changefeed{g: g, cursor: cursor}
}

// Pull returns the mutations strictly after the cursor, in ascending
// sequence order under one consistent all-shard cut, and advances the
// cursor past them. complete=false means log compaction has passed the
// cursor (LogFloor > cursor) so the batch may have holes; the cursor is
// left unchanged and the caller must rebuild its derived state and
// Reset. A complete empty batch means the feed is caught up.
func (f *Changefeed) Pull() (muts []Mutation, complete bool) {
	muts = f.g.MutationsSince(f.cursor)
	// Floor check AFTER the pull: the floor is raised before entries
	// drop, so floor <= cursor here proves no entry below the batch was
	// discarded mid-pull.
	if f.g.LogFloor() > f.cursor {
		return nil, false
	}
	if n := len(muts); n > 0 {
		f.cursor = muts[n-1].Seq
	}
	return muts, true
}

// Cursor returns the watermark the feed has consumed through: the feed
// has delivered exactly the mutations with Seq <= Cursor().
func (f *Changefeed) Cursor() uint64 { return f.cursor }

// Reset repositions the feed at seq, discarding its notion of progress.
// Consumers call it after rematerializing derived state at watermark
// seq (the fallback leg of the contract) or when adopting state built
// elsewhere (a loaded checkpoint).
func (f *Changefeed) Reset(seq uint64) { f.cursor = seq }

// Lag returns how many mutations the feed is behind the graph's
// watermark (0 when caught up). The watermark is a bare atomic load, so
// treat the value as a staleness hint, not an exact queue depth.
func (f *Changefeed) Lag() uint64 {
	if wm := f.g.LastSeq(); wm > f.cursor {
		return wm - f.cursor
	}
	return 0
}
