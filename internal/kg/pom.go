package kg

import (
	"sync"
	"sync/atomic"
)

// The predicate-major secondary index ("pom": predicate → object key →
// posting list of subjects). Any cross-subject probe — the bound-object
// clause of a conjunctive query, a selectivity estimate — would otherwise
// have to sweep every subject shard; the pom index holds the postings
// merged across shards, partitioned by predicate into fixed lock stripes,
// so one stripe read-lock answers the whole-graph question. Per-predicate
// totals ride along, making PredicateFrequency and the planner's cost
// estimates O(1) count lookups instead of shard sweeps or slice builds.
//
// # Deferred maintenance (delta buffers)
//
// Writers do not touch the stripes inline. Each mutation appends a
// pomDelta record (pred, objKey, subj, ±1) to its subject shard's buffer
// while holding the shard write lock, and the buffer drains to the
// stripes — in record order, one stripe acquisition per run of
// same-stripe records — when it reaches the graph's flush threshold.
// Same-predicate parallel ingestion therefore takes the hot predicate's
// stripe lock once per buffer instead of once per triple, which removes
// the cross-shard stripe serialization that taxed parallel writers.
//
// Readers never observe the deferral: every pom accessor starts with
// pomSync, which drains all dirty shards' buffers when the graph-level
// dirty count is non-zero (one atomic load when clean — the read-heavy
// fast path costs nothing). A mutation that returned before the read
// began has its record in some buffer by then, so flush-on-read
// preserves read-your-writes; records of concurrent in-flight mutations
// may or may not be seen, exactly as before buffering.
//
// # Locking and watermark contract
//
// Stripe locks are strictly leaf-level: they are only ever taken while
// holding either the flushing shard's write lock (writer-triggered and
// reader-triggered drains both flush under the shard lock) or no shard
// lock at all (plain stripe reads). Readers holding a stripe lock never
// acquire a shard lock inside it. Because every stripe write happens
// under some shard write lock, the all-shard read lock (rlockAll, which
// additionally re-drains until it observes every buffer empty) freezes
// the pom index — a consistent cut at watermark w observes pom postings
// reflecting exactly the first w mutations. A plain pom read is
// internally consistent for its predicate's stripe and as fresh as the
// moment the stripe lock was taken.
//
// # Posting lists and O(1) retract
//
// Postings are append-ordered subject lists. Removal from a short list
// splices; the first removal from a list that has grown past
// postingIdxThreshold builds a subject → slot position map and switches
// the list to tombstoning (slot zeroed in O(1), compaction once half the
// slots are dead), so retracting from a hot posting — millions of
// subjects sharing one (type, Person) pair — costs amortized O(1)
// instead of a linear rescan. Bulk write-once loads never build the map.

// pomStripeCount is the number of predicate lock stripes. Predicates are
// few (hundreds, not millions); 64 stripes keeps writer collisions on
// distinct predicates rare while bounding the fixed per-graph footprint.
const pomStripeCount = 64

// pomFlushThresholdDefault is the per-shard delta-buffer length that
// triggers a writer-side flush. Large enough to amortize a stripe
// acquisition over many same-predicate records, small enough that a
// reader-triggered drain of every shard stays cheap (shards × threshold
// records worst case).
const pomFlushThresholdDefault = 256

// postingIdxThreshold is the posting length at which removal switches
// from linear splice to the position-map + tombstone scheme. Below it a
// splice touches at most a cache line or two; above it the one-time map
// build is amortized over the asserts that grew the list.
const postingIdxThreshold = 64

// pomDelta is one buffered maintenance record: apply (add) or remove
// subj from the (pred, obj) posting.
type pomDelta struct {
	pred PredicateID
	subj EntityID
	obj  ValueKey
	add  bool
}

// posting is one (pred, obj) subject list. Same tombstone scheme as
// ospPosting (see graph.go): idx is nil until the first removal from a
// long list, NoEntity marks dead slots, live() is the true cardinality.
// The two types are deliberately parallel monomorphic implementations —
// a shared generic would put a non-inlinable key-function call on the
// hot add path — so a change to either's invariants (threshold,
// compaction trigger, idx-build condition) must be mirrored in the other.
type posting struct {
	subs []EntityID
	dead int
	idx  map[EntityID]int32
	// ver is the posting's slot-stability epoch: it advances whenever an
	// operation shifts surviving subjects to new slots (a short-list
	// splice or a compaction), and only then. Appends extend the tail and
	// tombstoning zeroes a slot in place, so neither moves a survivor —
	// a chunked reader (SubjectsWithChunked) that resumes at a saved
	// offset under an unchanged ver can never skip or re-read a subject
	// that was present throughout; a ver change tells it to restart.
	ver uint32
}

func (p posting) live() int { return len(p.subs) - p.dead }

func (p posting) add(subj EntityID) posting {
	if p.idx != nil {
		p.idx[subj] = int32(len(p.subs))
	}
	p.subs = append(p.subs, subj)
	return p
}

func (p posting) remove(subj EntityID) posting {
	if p.idx == nil {
		if len(p.subs) < postingIdxThreshold {
			p.subs = removeEntity(p.subs, subj)
			p.ver++
			return p
		}
		p.idx = make(map[EntityID]int32, len(p.subs))
		for i, s := range p.subs {
			p.idx[s] = int32(i)
		}
	}
	slot, ok := p.idx[subj]
	if !ok {
		return p
	}
	p.subs[slot] = NoEntity
	delete(p.idx, subj)
	p.dead++
	if p.dead*2 >= len(p.subs) {
		p = p.compact()
	}
	return p
}

// compact drops tombstones in place (preserving assertion order) and
// re-points the surviving subjects' slots.
func (p posting) compact() posting {
	live := p.subs[:0]
	for _, s := range p.subs {
		if s != NoEntity {
			live = append(live, s)
		}
	}
	p.subs = live
	p.dead = 0
	p.ver++
	for i, s := range p.subs {
		p.idx[s] = int32(i)
	}
	return p
}

// predPostings holds one predicate's postings and counters.
type predPostings struct {
	// objs maps object identity -> the posting of subjects asserting
	// (pred, obj). Subjects are unique within a posting (the graph dedups
	// SPO identity) and appear in per-shard assertion order; across
	// shards the interleaving is the order the shards' delta buffers
	// drained, which is fixed for a fixed graph state but not the global
	// mutation order (it never was observable as such: pre-buffering, the
	// interleaving was the writers' stripe-acquisition order).
	objs map[ValueKey]posting
	// total is the number of (pred, *) triples; entityTotal the subset
	// whose object is an entity.
	total       int
	entityTotal int
}

// pomStripe guards the postings of the predicates hashing to the stripe.
// The trailing pad keeps neighboring stripes' mutexes off one cache line.
type pomStripe struct {
	mu    sync.RWMutex
	preds map[PredicateID]*predPostings
	// applied counts flush runs into this stripe — the validation epoch
	// for the count read-through (see SubjectsWithCount): a reader that
	// observes the same epoch before its base read and after its buffer
	// scan knows no buffered record moved into the stripe in between, so
	// base + buffered cannot double- or under-count.
	applied atomic.Uint64

	_ [88]byte // pad to 128 bytes
}

func (g *Graph) pomStripe(pred PredicateID) *pomStripe {
	return &g.pom[uint32(pred)&(pomStripeCount-1)]
}

// apply plays one delta record into the stripe. The caller holds the
// stripe write lock.
func (st *pomStripe) apply(d *pomDelta) {
	pp := st.preds[d.pred]
	if d.add {
		if pp == nil {
			pp = &predPostings{objs: make(map[ValueKey]posting)}
			st.preds[d.pred] = pp
		}
		pp.objs[d.obj] = pp.objs[d.obj].add(d.subj)
		pp.total++
		if d.obj.Kind == KindEntity {
			pp.entityTotal++
		}
		return
	}
	if pp == nil {
		return
	}
	if p, ok := pp.objs[d.obj]; ok {
		p = p.remove(d.subj)
		if p.live() == 0 {
			delete(pp.objs, d.obj)
		} else {
			pp.objs[d.obj] = p
		}
	}
	pp.total--
	if d.obj.Kind == KindEntity {
		pp.entityTotal--
	}
	if pp.total == 0 {
		delete(st.preds, d.pred)
	}
}

// pomBufferLocked appends one maintenance record to the shard's delta
// buffer, draining it when it reaches the graph's flush threshold. The
// caller holds sh's write lock. Within one shard the buffer preserves
// mutation order, and a (pred, obj, subj) triplet is owned by exactly one
// shard (its subject's), so records affecting the same posting slot can
// never be reordered across buffers.
func (g *Graph) pomBufferLocked(sh *graphShard, pred PredicateID, subj EntityID, obj ValueKey, add bool) {
	if len(sh.pomPending) == 0 {
		sh.pomDirty.Store(true)
		g.pomDirtyShards.Add(1)
	}
	sh.pomPending = append(sh.pomPending, pomDelta{pred: pred, subj: subj, obj: obj, add: add})
	if len(sh.pomPending) >= g.pomFlushAt {
		g.pomFlushShardLocked(sh)
	}
}

// pomFlushShardLocked applies and clears sh's buffered deltas, holding
// each stripe lock across the maximal run of consecutive same-stripe
// records (for bulk same-predicate ingestion that is one acquisition for
// the whole buffer). The caller holds sh's write lock; stripe locks stay
// strictly leaf-level.
func (g *Graph) pomFlushShardLocked(sh *graphShard) {
	if len(sh.pomPending) == 0 {
		return
	}
	var st *pomStripe
	for i := range sh.pomPending {
		d := &sh.pomPending[i]
		next := g.pomStripe(d.pred)
		if next != st {
			if st != nil {
				st.applied.Add(1)
				st.mu.Unlock()
			}
			st = next
			st.mu.Lock()
		}
		st.apply(d)
	}
	if st != nil {
		st.applied.Add(1)
		st.mu.Unlock()
	}
	sh.pomPending = sh.pomPending[:0]
	sh.pomDirty.Store(false)
	g.pomDirtyShards.Add(-1)
}

// pomSync makes the pom index current before a read: a single atomic
// check when no shard has buffered deltas (the read-heavy fast path),
// otherwise a drain of every dirty shard. Callers must hold no stripe or
// shard lock (the drain takes shard write locks).
func (g *Graph) pomSync() {
	if g.pomDirtyShards.Load() == 0 {
		return
	}
	g.pomFlushDirtyShards()
}

// pomFlushDirtyShards drains every shard whose delta buffer is non-empty,
// one shard at a time.
func (g *Graph) pomFlushDirtyShards() {
	for i := range g.shards {
		sh := &g.shards[i]
		if !sh.pomDirty.Load() {
			continue
		}
		sh.mu.Lock()
		g.pomFlushShardLocked(sh)
		sh.mu.Unlock()
	}
}

// SyncIndexes applies every buffered predicate-major index delta. Reads
// never require it — pom accessors drain buffers themselves — but batch
// producers (disk restore, ODKE write-back) can call it to pay the
// maintenance inside the write phase, keeping the first post-ingest read
// on its lock-free fast path.
func (g *Graph) SyncIndexes() { g.pomSync() }

// SubjectsWith returns the subjects that carry (pred, obj) facts, read
// from the predicate-major index under a single stripe lock (one
// consistent point for the whole predicate, where the shard-swept variant
// could interleave with writers between shards). Order is unspecified.
func (g *Graph) SubjectsWith(pred PredicateID, obj Value) []EntityID {
	g.pomSync()
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return nil
	}
	p, ok := pp.objs[obj.MapKey()]
	if !ok || p.live() == 0 {
		return nil
	}
	out := make([]EntityID, 0, p.live())
	for _, s := range p.subs {
		if s != NoEntity {
			out = append(out, s)
		}
	}
	return out
}

// SubjectsWithFunc streams the subjects carrying (pred, obj) facts to fn
// under the stripe read lock, stopping early if fn returns false. It is
// the copy-free counterpart of SubjectsWith; fn must not mutate the graph.
func (g *Graph) SubjectsWithFunc(pred PredicateID, obj Value, fn func(EntityID) bool) {
	g.pomSync()
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return
	}
	for _, s := range pp.objs[obj.MapKey()].subs {
		if s == NoEntity {
			continue
		}
		if !fn(s) {
			return
		}
	}
}

// SubjectsWithChunked streams the subjects carrying (pred, obj) facts to
// fn in chunks of at most chunkSize, copying each chunk out under one
// stripe read-lock acquisition and invoking fn with no locks held — the
// bounded-copy counterpart of SubjectsWith for huge postings, where a
// limit=10 query should not pay a million-entry slab copy before its
// first row. fn may read the graph freely and stops the enumeration by
// returning false; the chunk slice is reused across calls and must not
// be retained.
//
// Because the posting can mutate between chunk reads, resumption is
// guarded by the posting's slot-stability epoch: appends and in-place
// tombstones leave saved offsets valid, but a splice or compaction
// shifts slots, and the reader then restarts from the beginning and
// delivers the next chunk with restarted=true — the caller must
// tolerate re-delivered subjects (the conjunctive executor's streaming
// dedup absorbs them). The guarantee is one-sided, matching a slab
// copy's: every subject present for the whole enumeration is delivered
// at least once, and no subject is delivered that was never present;
// subjects asserted or retracted concurrently may or may not appear.
func (g *Graph) SubjectsWithChunked(pred PredicateID, obj Value, chunkSize int, fn func(chunk []EntityID, restarted bool) bool) {
	if chunkSize <= 0 {
		chunkSize = 1024
	}
	g.pomSync()
	st := g.pomStripe(pred)
	key := obj.MapKey()
	var buf []EntityID
	var (
		off       int
		ver       uint32
		first     = true
		restarted bool
	)
	for {
		st.mu.RLock()
		pp := st.preds[pred]
		var p posting
		if pp != nil {
			p = pp.objs[key]
		}
		if first {
			ver = p.ver
			first = false
			// Size the chunk buffer to the smaller of the chunk and the
			// posting itself: a selective query over an 8-subject posting
			// must not pay a chunkSize-capacity allocation.
			if n := p.live(); n > 0 {
				if n > chunkSize {
					n = chunkSize
				}
				buf = make([]EntityID, 0, n)
			}
		} else if p.ver != ver {
			// Slots shifted under us: restart, flagging the next chunk so
			// the caller knows earlier subjects may be delivered again.
			ver = p.ver
			off = 0
			restarted = true
		}
		buf = buf[:0]
		for off < len(p.subs) && len(buf) < chunkSize {
			if s := p.subs[off]; s != NoEntity {
				buf = append(buf, s)
			}
			off++
		}
		end := off >= len(p.subs)
		st.mu.RUnlock()
		if len(buf) > 0 {
			if !fn(buf, restarted) {
				return
			}
			restarted = false
		}
		if end {
			return
		}
	}
}

// SubjectsWithCount returns the number of subjects carrying (pred, obj)
// facts without materializing the posting list. It is the planner's
// bound-object selectivity probe: one stripe read lock, two map lookups,
// zero allocations. Unlike the posting-list accessors it never drains
// buffered deltas — while writers have buffered work it answers
// read-through, merging the matching buffered records into the applied
// base count (see pomCountReadThrough), so a planner probe during
// sustained ingest does not pay the drain or serialize behind shard
// write locks.
func (g *Graph) SubjectsWithCount(pred PredicateID, obj Value) int {
	key := obj.MapKey()
	if n, ok := g.pomCountReadThrough(pred, key, true); ok {
		return n
	}
	g.pomSync()
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return 0
	}
	return pp.objs[key].live()
}

// pomCountReadThrough answers a count probe for pred — restricted to
// object key when byObj — while delta buffers are dirty, WITHOUT
// draining them: the applied base count from the stripe plus the net of
// matching records still sitting in dirty shards' buffers. Validation
// is optimistic: the stripe's applied epoch must be identical before
// the base read and after the buffer scan, proving no buffered record
// migrated into the stripe in between (a migration would make base +
// buffered double-count it, or — if it moved before the base read but
// after a buffer was scanned empty — under-count). On epoch movement it
// retries, and after a few failed rounds reports !ok so the caller
// falls back to the drain-and-read path. Returns !ok immediately when
// buffers are clean — the plain locked read is strictly cheaper then.
//
// Lock order stays legal: the stripe RLock and each shard RLock are
// taken and released separately, never nested.
func (g *Graph) pomCountReadThrough(pred PredicateID, key ValueKey, byObj bool) (int, bool) {
	st := g.pomStripe(pred)
	for attempt := 0; attempt < 4; attempt++ {
		if g.pomDirtyShards.Load() == 0 {
			return 0, false
		}
		seq := st.applied.Load()
		base := 0
		st.mu.RLock()
		if pp := st.preds[pred]; pp != nil {
			if byObj {
				base = pp.objs[key].live()
			} else {
				base = pp.total
			}
		}
		st.mu.RUnlock()
		delta := 0
		for i := range g.shards {
			sh := &g.shards[i]
			if !sh.pomDirty.Load() {
				continue
			}
			sh.mu.RLock()
			for j := range sh.pomPending {
				d := &sh.pomPending[j]
				if d.pred != pred || (byObj && d.obj != key) {
					continue
				}
				if d.add {
					delta++
				} else {
					delta--
				}
			}
			sh.mu.RUnlock()
		}
		if st.applied.Load() == seq {
			return base + delta, true
		}
	}
	return 0, false
}

// SubjectsWithSweep answers SubjectsWith from the subject-sharded indexes
// alone, never touching the predicate-major index: per shard, the pos
// count for (pred, obj) gates a bounded spo scan that recovers the
// matching subjects (shards with a zero count are skipped; the scan stops
// once the counted matches are found). Shards are visited one at a time
// (each contribution internally consistent, writers may land between
// visits). It is the index-free reference implementation the pom property
// tests compare against and the E13 benchmark baseline; serving paths use
// SubjectsWith. Since the pos shrink it costs a shard spo scan rather
// than a posting read — the price of keeping one reverse index instead of
// two.
func (g *Graph) SubjectsWithSweep(pred PredicateID, obj Value) []EntityID {
	key := obj.MapKey()
	var out []EntityID
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		if want := sh.pos[pred][key]; want > 0 {
			found := 0
			for subj, bySubj := range sh.spo {
				for _, t := range bySubj[pred] {
					if t.Object.MapKey() == key {
						out = append(out, subj)
						found++
						break
					}
				}
				if found == want {
					break
				}
			}
		}
		sh.mu.RUnlock()
	}
	return out
}

// PredicateFrequency returns the current number of triples using pred —
// an O(1) counter read from the predicate-major index, not a shard
// sweep. Like SubjectsWithCount it never drains buffered deltas: under
// sustained ingest the buffered records for pred are merged into the
// applied total read-through (see pomCountReadThrough).
func (g *Graph) PredicateFrequency(pred PredicateID) int {
	if n, ok := g.pomCountReadThrough(pred, ValueKey{}, false); ok {
		return n
	}
	g.pomSync()
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if pp := st.preds[pred]; pp != nil {
		return pp.total
	}
	return 0
}

// PredicateEntriesFunc streams every (object value, subject) pair indexed
// under pred to fn, stopping early if fn returns false. Object values are
// reconstructed from their identity keys, so provenance is not carried
// and iteration order is unspecified. fn runs under the stripe read lock
// and must not mutate the graph.
func (g *Graph) PredicateEntriesFunc(pred PredicateID, fn func(obj Value, subj EntityID) bool) {
	g.pomSync()
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return
	}
	for key, p := range pp.objs {
		obj := key.Value()
		for _, s := range p.subs {
			if s == NoEntity {
				continue
			}
			if !fn(obj, s) {
				return
			}
		}
	}
}
