package kg

import "sync"

// The predicate-major secondary index ("pom": predicate → object key →
// posting list of subjects). The per-shard pos index answers "which of
// MY subjects carry (pred, obj)?", so any cross-subject probe — the
// bound-object clause of a conjunctive query, a selectivity estimate —
// has to sweep every shard. The pom index holds the same postings merged
// across shards, partitioned by predicate into fixed lock stripes, so
// one stripe read-lock answers the whole-graph question. Per-predicate
// totals ride along, making PredicateFrequency and the planner's cost
// estimates O(1) count lookups instead of shard sweeps or slice builds.
//
// # Locking and watermark contract
//
// Stripe locks are strictly leaf-level: writers update a stripe while
// holding the mutating shard's write lock (shard lock first, stripe lock
// second, released before the shard critical section ends); readers take
// only the stripe read lock and never a shard lock inside it. Because
// every pom write happens under some shard write lock, holding every
// shard's read lock (rlockAll) freezes the pom index too — a consistent
// all-shard cut at watermark w observes pom postings reflecting exactly
// the first w mutations. A plain pom read is internally consistent for
// its predicate's stripe and as fresh as the moment the stripe lock was
// taken, the same semantics the shard-swept SubjectsWith offered per
// shard.

// pomStripeCount is the number of predicate lock stripes. Predicates are
// few (hundreds, not millions); 64 stripes keeps writer collisions on
// distinct predicates rare while bounding the fixed per-graph footprint.
const pomStripeCount = 64

// predPostings holds one predicate's postings and counters.
type predPostings struct {
	// objs maps object identity -> subjects asserting (pred, obj).
	// Subjects are unique within a list (the graph dedups SPO identity)
	// and appear in assertion order.
	objs map[ValueKey][]EntityID
	// total is the number of (pred, *) triples; entityTotal the subset
	// whose object is an entity.
	total       int
	entityTotal int
}

// pomStripe guards the postings of the predicates hashing to the stripe.
// The trailing pad keeps neighboring stripes' mutexes off one cache line.
type pomStripe struct {
	mu    sync.RWMutex
	preds map[PredicateID]*predPostings

	_ [96]byte // pad to 128 bytes
}

func (g *Graph) pomStripe(pred PredicateID) *pomStripe {
	return &g.pom[uint32(pred)&(pomStripeCount-1)]
}

// pomAssertLocked records one newly added triple in the pom index. The
// caller holds the subject shard's write lock.
func (g *Graph) pomAssertLocked(subj EntityID, pred PredicateID, obj ValueKey) {
	st := g.pomStripe(pred)
	st.mu.Lock()
	pp := st.preds[pred]
	if pp == nil {
		pp = &predPostings{objs: make(map[ValueKey][]EntityID)}
		st.preds[pred] = pp
	}
	pp.objs[obj] = append(pp.objs[obj], subj)
	pp.total++
	if obj.Kind == KindEntity {
		pp.entityTotal++
	}
	st.mu.Unlock()
}

// pomAssertRunLocked records a sorted same-(subject, predicate) run of
// newly added triples under one stripe lock acquisition. The caller holds
// the subject shard's write lock.
func (g *Graph) pomAssertRunLocked(pred PredicateID, subj EntityID, keys []TripleKey, run []int32) {
	st := g.pomStripe(pred)
	st.mu.Lock()
	pp := st.preds[pred]
	if pp == nil {
		pp = &predPostings{objs: make(map[ValueKey][]EntityID)}
		st.preds[pred] = pp
	}
	for _, oi := range run {
		obj := keys[oi].Object
		pp.objs[obj] = append(pp.objs[obj], subj)
		if obj.Kind == KindEntity {
			pp.entityTotal++
		}
	}
	pp.total += len(run)
	st.mu.Unlock()
}

// pomRetractLocked removes one retracted triple from the pom index. The
// caller holds the subject shard's write lock.
func (g *Graph) pomRetractLocked(subj EntityID, pred PredicateID, obj ValueKey) {
	st := g.pomStripe(pred)
	st.mu.Lock()
	if pp := st.preds[pred]; pp != nil {
		pp.objs[obj] = removeEntity(pp.objs[obj], subj)
		if len(pp.objs[obj]) == 0 {
			delete(pp.objs, obj)
		}
		pp.total--
		if obj.Kind == KindEntity {
			pp.entityTotal--
		}
		if pp.total == 0 {
			delete(st.preds, pred)
		}
	}
	st.mu.Unlock()
}

// SubjectsWith returns the subjects that carry (pred, obj) facts, read
// from the predicate-major index under a single stripe lock (one
// consistent point for the whole predicate, where the shard-swept variant
// could interleave with writers between shards). Order is unspecified.
func (g *Graph) SubjectsWith(pred PredicateID, obj Value) []EntityID {
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return nil
	}
	lst := pp.objs[obj.MapKey()]
	if len(lst) == 0 {
		return nil
	}
	out := make([]EntityID, len(lst))
	copy(out, lst)
	return out
}

// SubjectsWithFunc streams the subjects carrying (pred, obj) facts to fn
// under the stripe read lock, stopping early if fn returns false. It is
// the copy-free counterpart of SubjectsWith; fn must not mutate the graph.
func (g *Graph) SubjectsWithFunc(pred PredicateID, obj Value, fn func(EntityID) bool) {
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return
	}
	for _, s := range pp.objs[obj.MapKey()] {
		if !fn(s) {
			return
		}
	}
}

// SubjectsWithCount returns the number of subjects carrying (pred, obj)
// facts without materializing the posting list. It is the planner's
// bound-object selectivity probe: one stripe read lock, two map lookups,
// zero allocations.
func (g *Graph) SubjectsWithCount(pred PredicateID, obj Value) int {
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return 0
	}
	return len(pp.objs[obj.MapKey()])
}

// SubjectsWithSweep answers SubjectsWith from the per-shard pos indexes,
// visiting shards one at a time (each shard's contribution internally
// consistent, writers may land between visits). It is the index-free
// reference implementation the pom property tests and the E13 benchmark
// baseline compare against; serving paths use SubjectsWith.
func (g *Graph) SubjectsWithSweep(pred PredicateID, obj Value) []EntityID {
	key := obj.MapKey()
	var out []EntityID
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		if byPred := sh.pos[pred]; byPred != nil {
			out = append(out, byPred[key]...)
		}
		sh.mu.RUnlock()
	}
	return out
}

// PredicateFrequency returns the current number of triples using pred —
// an O(1) counter read from the predicate-major index, not a shard sweep.
func (g *Graph) PredicateFrequency(pred PredicateID) int {
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	if pp := st.preds[pred]; pp != nil {
		return pp.total
	}
	return 0
}

// PredicateEntriesFunc streams every (object value, subject) pair indexed
// under pred to fn, stopping early if fn returns false. Object values are
// reconstructed from their identity keys, so provenance is not carried
// and iteration order is unspecified. fn runs under the stripe read lock
// and must not mutate the graph.
func (g *Graph) PredicateEntriesFunc(pred PredicateID, fn func(obj Value, subj EntityID) bool) {
	st := g.pomStripe(pred)
	st.mu.RLock()
	defer st.mu.RUnlock()
	pp := st.preds[pred]
	if pp == nil {
		return
	}
	for key, subjects := range pp.objs {
		obj := key.Value()
		for _, s := range subjects {
			if !fn(obj, s) {
				return
			}
		}
	}
}
