package kg

import "sort"

// Stats summarizes the shape of a graph. The ODKE profiler and the view
// builder both consume these summaries.
type Stats struct {
	Entities   int
	Predicates int
	Triples    int
	// EntityTriples counts entity-valued facts; LiteralTriples the rest.
	EntityTriples  int
	LiteralTriples int
	// PredFreq maps predicate -> triple count.
	PredFreq map[PredicateID]int
	// MaxOutDegree is the largest outgoing fact count of any entity.
	MaxOutDegree int
	// MeanOutDegree is Triples / Entities.
	MeanOutDegree float64
}

// ComputeStats summarizes the graph from its maintained counters instead
// of a full triple scan: predicate frequencies and the entity/literal
// split come from the predicate-major index's per-predicate totals (one
// pass over the pom stripes), and out-degrees from the spo index's list
// lengths (one pass over each shard's subjects, never touching individual
// triples). Stripes and shards are visited one at a time, so under
// concurrent writers each counter is exact as of the moment its stripe or
// shard was read rather than one all-shard cut — the same freshness
// contract as NumTriples.
func ComputeStats(g *Graph) Stats {
	g.pomSync() // drain buffered pom deltas so the stripe counters are current
	s := Stats{
		Entities:   g.NumEntities(),
		Predicates: g.NumPredicates(),
		PredFreq:   make(map[PredicateID]int),
	}
	for i := range g.pom {
		st := &g.pom[i]
		st.mu.RLock()
		for p, pp := range st.preds {
			s.PredFreq[p] = pp.total
			s.Triples += pp.total
			s.EntityTriples += pp.entityTotal
		}
		st.mu.RUnlock()
	}
	s.LiteralTriples = s.Triples - s.EntityTriples
	for i := range g.shards {
		sh := &g.shards[i]
		sh.mu.RLock()
		for _, bySubj := range sh.spo {
			d := 0
			for _, ts := range bySubj {
				d += len(ts)
			}
			if d > s.MaxOutDegree {
				s.MaxOutDegree = d
			}
		}
		sh.mu.RUnlock()
	}
	if s.Entities > 0 {
		s.MeanOutDegree = float64(s.Triples) / float64(s.Entities)
	}
	return s
}

// RarePredicates returns the predicates whose triple frequency is strictly
// below minFreq, sorted by ID. Per §2 of the paper, triples with rare
// predicates "could create noise during the learning process and filtering
// them out can produce a cleaner training set".
func (s Stats) RarePredicates(minFreq int) []PredicateID {
	var out []PredicateID
	for p, n := range s.PredFreq {
		if n < minFreq {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TopPredicates returns the k most frequent predicates, most frequent first.
func (s Stats) TopPredicates(k int) []PredicateID {
	type pf struct {
		p PredicateID
		n int
	}
	all := make([]pf, 0, len(s.PredFreq))
	for p, n := range s.PredFreq {
		all = append(all, pf{p, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].p < all[j].p
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]PredicateID, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].p
	}
	return out
}
