package kg

import (
	"fmt"
	"testing"
	"testing/quick"
)

// Model-based property test: a Graph under random assert/retract
// sequences must agree with a map-backed reference model on membership,
// counts, and index contents.
func TestGraphMatchesMapModel(t *testing.T) {
	f := func(ops []uint16) bool {
		g := NewGraph()
		const nEnts = 8
		const nPreds = 3
		ents := make([]EntityID, nEnts)
		for i := range ents {
			id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
			if err != nil {
				return false
			}
			ents[i] = id
		}
		preds := make([]PredicateID, nPreds)
		for i := range preds {
			id, err := g.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)})
			if err != nil {
				return false
			}
			preds[i] = id
		}
		model := make(map[string]Triple)
		for _, op := range ops {
			s := ents[int(op)%nEnts]
			p := preds[int(op>>3)%nPreds]
			o := ents[int(op>>6)%nEnts]
			tr := Triple{Subject: s, Predicate: p, Object: EntityValue(o)}
			if op>>14 == 3 { // 1/4 of ops are retracts
				removed := g.Retract(tr)
				_, inModel := model[tr.SPO()]
				if removed != inModel {
					return false
				}
				delete(model, tr.SPO())
			} else {
				if err := g.Assert(tr); err != nil {
					return false
				}
				model[tr.SPO()] = tr
			}
		}
		if g.NumTriples() != len(model) {
			return false
		}
		// Membership agrees both ways.
		for _, tr := range model {
			if !g.HasFact(tr.Subject, tr.Predicate, tr.Object) {
				return false
			}
		}
		count := 0
		ok := true
		g.Triples(func(tr Triple) bool {
			count++
			if _, in := model[tr.SPO()]; !in {
				ok = false
				return false
			}
			return true
		})
		if !ok || count != len(model) {
			return false
		}
		// Index consistency: Incoming/SubjectsWith agree with model.
		for _, o := range ents {
			incoming := g.Incoming(o)
			wantIncoming := 0
			for _, tr := range model {
				if tr.Object.Entity == o {
					wantIncoming++
				}
			}
			if len(incoming) != wantIncoming {
				return false
			}
		}
		// Mutation log replay reproduces the graph.
		replay := NewGraph()
		for i := range ents {
			if _, err := replay.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)}); err != nil {
				return false
			}
		}
		for i := range preds {
			if _, err := replay.AddPredicate(Predicate{Name: fmt.Sprintf("p%d", i)}); err != nil {
				return false
			}
		}
		for _, m := range g.MutationsSince(0) {
			switch m.Op {
			case OpAssert:
				if err := replay.Assert(m.T); err != nil {
					return false
				}
			case OpRetract:
				replay.Retract(m.T)
			}
		}
		return replay.NumTriples() == g.NumTriples()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAssert(b *testing.B) {
	g := NewGraph()
	p, _ := g.AddPredicate(Predicate{Name: "p"})
	const pool = 4096
	ids := make([]EntityID, pool)
	for i := range ids {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Assert(Triple{Subject: ids[i%pool], Predicate: p, Object: IntValue(int64(i))})
	}
}

func BenchmarkFactsLookup(b *testing.B) {
	g := NewGraph()
	p, _ := g.AddPredicate(Predicate{Name: "p"})
	const pool = 1024
	ids := make([]EntityID, pool)
	for i := range ids {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("e%d", i)})
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}
	for i := 0; i < pool*8; i++ {
		if err := g.Assert(Triple{Subject: ids[i%pool], Predicate: p, Object: IntValue(int64(i))}); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.Facts(ids[i%pool], p)
	}
}
