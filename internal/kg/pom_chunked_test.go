package kg

import (
	"fmt"
	"testing"
)

// chunkedFixture builds a graph with n subjects all asserting
// (pred, team) plus a decoy posting on the same predicate, and returns
// the pieces the chunked-read tests need.
func chunkedFixture(t testing.TB, n int) (g *Graph, pred PredicateID, team Value, subs []EntityID) {
	t.Helper()
	g = NewGraphWithShards(4)
	p, err := g.AddPredicate(Predicate{Name: "memberOf"})
	if err != nil {
		t.Fatal(err)
	}
	teamID, err := g.AddEntity(Entity{Key: "team"})
	if err != nil {
		t.Fatal(err)
	}
	decoy, err := g.AddEntity(Entity{Key: "decoy"})
	if err != nil {
		t.Fatal(err)
	}
	team = EntityValue(teamID)
	batch := make([]Triple, 0, n+1)
	for i := 0; i < n; i++ {
		id, err := g.AddEntity(Entity{Key: fmt.Sprintf("p%d", i)})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, id)
		batch = append(batch, Triple{Subject: id, Predicate: p, Object: team})
	}
	batch = append(batch, Triple{Subject: subs[0], Predicate: p, Object: EntityValue(decoy)})
	if _, err := g.AssertBatch(batch); err != nil {
		t.Fatal(err)
	}
	return g, p, team, subs
}

// Chunked enumeration over a quiescent graph must reproduce
// SubjectsWith exactly — same subjects, same posting order — in chunks
// no larger than requested, with no restarts.
func TestSubjectsWithChunkedMatchesSlab(t *testing.T) {
	const n = 300
	g, pred, team, _ := chunkedFixture(t, n)
	want := g.SubjectsWith(pred, team)
	if len(want) != n {
		t.Fatalf("slab read = %d subjects, want %d", len(want), n)
	}
	for _, chunkSize := range []int{1, 7, 64, 300, 1000} {
		var got []EntityID
		chunks := 0
		g.SubjectsWithChunked(pred, team, chunkSize, func(chunk []EntityID, restarted bool) bool {
			if restarted {
				t.Fatalf("chunkSize %d: restart on a quiescent graph", chunkSize)
			}
			if len(chunk) > chunkSize {
				t.Fatalf("chunkSize %d: got chunk of %d", chunkSize, len(chunk))
			}
			got = append(got, chunk...)
			chunks++
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("chunkSize %d: %d subjects, want %d", chunkSize, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("chunkSize %d: subject %d = %d, slab read has %d (order diverged)", chunkSize, i, got[i], want[i])
			}
		}
		if wantChunks := (n + chunkSize - 1) / chunkSize; chunks != wantChunks {
			t.Fatalf("chunkSize %d: delivered %d chunks, want %d", chunkSize, chunks, wantChunks)
		}
	}
}

// Early termination stops the enumeration after the first chunk; the
// graph must remain writable afterwards (no lock leaked).
func TestSubjectsWithChunkedEarlyStop(t *testing.T) {
	g, pred, team, subs := chunkedFixture(t, 100)
	calls := 0
	g.SubjectsWithChunked(pred, team, 10, func(chunk []EntityID, restarted bool) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Fatalf("early-stopped enumeration delivered %d chunks, want 1", calls)
	}
	if !g.Retract(Triple{Subject: subs[0], Predicate: pred, Object: team}) {
		t.Fatal("retract after early-stopped enumeration failed")
	}
}

// A splice or compaction between chunk reads must trigger a restart (the
// epoch check), and the union of delivered subjects must still cover
// every subject that stayed in the posting throughout.
func TestSubjectsWithChunkedRestartOnCompaction(t *testing.T) {
	const n = 200
	g, pred, team, subs := chunkedFixture(t, n)

	// Retract from inside the callback (it runs lock-free): removing
	// enough early subjects forces tombstones and then a compaction,
	// which shifts slots and must flip the epoch.
	removed := map[EntityID]bool{}
	sawRestart := false
	delivered := map[EntityID]int{}
	g.SubjectsWithChunked(pred, team, 16, func(chunk []EntityID, restarted bool) bool {
		if restarted {
			sawRestart = true
		}
		for _, s := range chunk {
			delivered[s]++
		}
		if len(removed) == 0 {
			// Retract half the subjects so the posting's dead ratio
			// crosses the compaction threshold, then sync so the pom
			// applies the buffered deltas mid-enumeration.
			for _, s := range subs[n/2:] {
				if !g.Retract(Triple{Subject: s, Predicate: pred, Object: team}) {
					t.Fatalf("retract of %d failed", s)
				}
				removed[s] = true
			}
			g.SyncIndexes()
		}
		return true
	})
	if !sawRestart {
		t.Fatal("compaction mid-enumeration did not trigger a restart")
	}
	for _, s := range subs {
		if removed[s] {
			continue
		}
		if delivered[s] == 0 {
			t.Fatalf("subject %d stayed in the posting but was never delivered", s)
		}
	}
}

// The restart flag exists so callers can dedup re-deliveries; verify a
// restart actually re-delivers (the documented at-least-once semantics)
// rather than silently resuming at a stale offset.
func TestSubjectsWithChunkedRedeliversAfterRestart(t *testing.T) {
	const n = 64
	g, pred, team, subs := chunkedFixture(t, n)
	delivered := map[EntityID]int{}
	spliced := false
	g.SubjectsWithChunked(pred, team, 8, func(chunk []EntityID, restarted bool) bool {
		for _, s := range chunk {
			delivered[s]++
		}
		if !spliced {
			spliced = true
			// Retract half the posting so the tombstone ratio trips
			// compaction (slots shift left past our saved offset), then
			// sync to apply the buffered deltas.
			for _, s := range subs[n/2:] {
				if !g.Retract(Triple{Subject: s, Predicate: pred, Object: team}) {
					t.Fatalf("retract of %d failed", s)
				}
			}
			g.SyncIndexes()
		}
		return true
	})
	dups := 0
	for _, c := range delivered {
		if c > 1 {
			dups++
		}
	}
	if dups == 0 {
		t.Fatal("restart delivered no subject twice — offset was not rewound")
	}
}
