package kg

import (
	"testing"
	"testing/quick"
)

func buildTestOntology(t *testing.T) (*Ontology, map[string]TypeID) {
	t.Helper()
	o := NewOntology()
	ids := make(map[string]TypeID)
	add := func(name string, parent string) {
		var pid TypeID
		if parent != "" {
			pid = ids[parent]
		}
		id, err := o.AddType(name, pid)
		if err != nil {
			t.Fatalf("AddType(%q): %v", name, err)
		}
		ids[name] = id
	}
	add("Thing", "")
	add("Person", "Thing")
	add("Athlete", "Person")
	add("BasketballPlayer", "Athlete")
	add("Academic", "Person")
	add("CreativeWork", "Thing")
	add("Movie", "CreativeWork")
	return o, ids
}

func TestOntologyIsA(t *testing.T) {
	o, ids := buildTestOntology(t)
	cases := []struct {
		t, anc string
		want   bool
	}{
		{"BasketballPlayer", "Athlete", true},
		{"BasketballPlayer", "Person", true},
		{"BasketballPlayer", "Thing", true},
		{"BasketballPlayer", "BasketballPlayer", true},
		{"Athlete", "BasketballPlayer", false},
		{"Movie", "Person", false},
		{"Academic", "Athlete", false},
	}
	for _, c := range cases {
		if got := o.IsA(ids[c.t], ids[c.anc]); got != c.want {
			t.Errorf("IsA(%s,%s) = %v, want %v", c.t, c.anc, got, c.want)
		}
	}
	if o.IsA(NoType, ids["Thing"]) || o.IsA(ids["Thing"], NoType) {
		t.Error("IsA with NoType must be false")
	}
}

func TestOntologyLCA(t *testing.T) {
	o, ids := buildTestOntology(t)
	if got := o.LCA(ids["BasketballPlayer"], ids["Academic"]); got != ids["Person"] {
		t.Fatalf("LCA(BasketballPlayer,Academic) = %v, want Person", o.Name(got))
	}
	if got := o.LCA(ids["Movie"], ids["Athlete"]); got != ids["Thing"] {
		t.Fatalf("LCA(Movie,Athlete) = %v, want Thing", o.Name(got))
	}
	if got := o.LCA(ids["Movie"], ids["Movie"]); got != ids["Movie"] {
		t.Fatalf("LCA(Movie,Movie) = %v, want Movie", o.Name(got))
	}
}

func TestOntologyAncestorsAndChildren(t *testing.T) {
	o, ids := buildTestOntology(t)
	anc := o.Ancestors(ids["BasketballPlayer"])
	want := []TypeID{ids["Athlete"], ids["Person"], ids["Thing"]}
	if len(anc) != len(want) {
		t.Fatalf("Ancestors = %v, want %v", anc, want)
	}
	for i := range want {
		if anc[i] != want[i] {
			t.Fatalf("Ancestors[%d] = %v, want %v", i, anc[i], want[i])
		}
	}
	kids := o.Children(ids["Person"])
	if len(kids) != 2 {
		t.Fatalf("Children(Person) = %v, want 2", kids)
	}
}

func TestOntologyDuplicateAndErrors(t *testing.T) {
	o, ids := buildTestOntology(t)
	again, err := o.AddType("Person", ids["Thing"])
	if err != nil || again != ids["Person"] {
		t.Fatalf("re-adding Person: id=%v err=%v", again, err)
	}
	if _, err := o.AddType("Person", ids["CreativeWork"]); err == nil {
		t.Fatal("conflicting parent accepted")
	}
	if _, err := o.AddType("", NoType); err == nil {
		t.Fatal("empty type name accepted")
	}
	if _, err := o.AddType("Orphan", TypeID(999)); err == nil {
		t.Fatal("unknown parent accepted")
	}
	if o.Len() != 7 {
		t.Fatalf("Len = %d, want 7", o.Len())
	}
	names := o.TypeNames()
	if len(names) != 7 || names[0] > names[len(names)-1] {
		t.Fatalf("TypeNames not sorted or wrong length: %v", names)
	}
}

// Property: for every type in a randomly generated chain ontology,
// IsA(t, root) holds, and LCA(a, b) is an ancestor-or-self of both.
func TestOntologyPropertyLCA(t *testing.T) {
	f := func(depthsRaw []uint8) bool {
		o := NewOntology()
		root, _ := o.AddType("root", NoType)
		// Build a random tree: each new node attaches to a previously
		// created node chosen by the fuzzed byte.
		nodes := []TypeID{root}
		for i, b := range depthsRaw {
			if i >= 40 {
				break
			}
			parent := nodes[int(b)%len(nodes)]
			id, err := o.AddType(nodeName(i), parent)
			if err != nil {
				return false
			}
			nodes = append(nodes, id)
		}
		for i := 0; i < len(nodes); i++ {
			if !o.IsA(nodes[i], root) {
				return false
			}
			j := (i * 7) % len(nodes)
			l := o.LCA(nodes[i], nodes[j])
			if l == NoType {
				return false
			}
			if !o.IsA(nodes[i], l) || !o.IsA(nodes[j], l) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string {
	return "t" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
}
