package textutil

import "strings"

// Levenshtein computes the edit distance between two strings using the
// two-row dynamic program. Runs in O(len(a)*len(b)) time and O(len(b))
// space, over runes.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity maps edit distance to [0,1]: 1 for equal strings,
// 0 when the distance equals the longer length.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	longest := la
	if lb > longest {
		longest = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(longest)
}

// Jaro computes the Jaro similarity of two strings in [0,1].
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	var matches int
	for i := range ra {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > len(rb) {
			hi = len(rb)
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	var transpositions int
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// JaroWinkler boosts Jaro similarity for strings sharing a common prefix
// (up to 4 runes), with the standard scaling factor 0.1.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenJaccard computes the Jaccard similarity of the word-token sets of
// two strings. Used by entity matching for name comparison where word
// order varies ("Tim Smith" vs "Smith, Tim").
func TokenJaccard(a, b string) float64 {
	as := tokenSet(a)
	bs := tokenSet(b)
	if len(as) == 0 && len(bs) == 0 {
		return 1
	}
	var inter int
	for t := range as {
		if bs[t] {
			inter++
		}
	}
	union := len(as) + len(bs) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func tokenSet(s string) map[string]bool {
	out := make(map[string]bool)
	for _, t := range Tokenize(s) {
		out[t.Text] = true
	}
	return out
}

// DigitsOnly strips every non-digit rune; used to canonicalize phone
// numbers before matching ("+1 (123) 555 1234" == "123-555-1234" modulo
// country code handling done by the caller).
func DigitsOnly(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= '0' && r <= '9' {
			b.WriteRune(r)
		}
	}
	return b.String()
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
