// Package textutil provides the text-processing substrate for the semantic
// annotation service: tokenization, string-similarity metrics, and an
// Aho-Corasick multi-pattern matcher used for dictionary-based mention
// detection over large corpora.
package textutil

import (
	"strings"
	"unicode"
)

// Token is a single token with its byte offsets in the original text.
type Token struct {
	Text  string
	Start int // byte offset of first byte
	End   int // byte offset one past last byte
}

// Tokenize splits text into lowercase, diacritic-folded word tokens,
// recording byte offsets. A token is a maximal run of letters, digits,
// apostrophes, or hyphens. Offsets refer to the original text so
// annotations can be mapped back onto documents. Folding (café → cafe,
// Beyoncé → beyonce) makes alias matching accent-insensitive, the
// lightweight multilingual requirement of §3.2.
func Tokenize(text string) []Token {
	var tokens []Token
	start := -1
	emit := func(s, e int) {
		tokens = append(tokens, Token{Text: FoldString(strings.ToLower(text[s:e])), Start: s, End: e})
	}
	for i, r := range text {
		if isWordRune(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			emit(start, i)
			start = -1
		}
	}
	if start >= 0 {
		emit(start, len(text))
	}
	return tokens
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '\'' || r == '-'
}

// NormalizePhrase lowercases a phrase and collapses it to single-space
// separated word tokens, so that "Joe  ROOT " and "joe root" compare equal.
func NormalizePhrase(s string) string {
	toks := Tokenize(s)
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

// Sentences splits text into sentence-sized spans on '.', '!', '?' and
// newline boundaries. It returns byte-offset spans. This is intentionally a
// lightweight splitter: annotation windows only need approximate locality.
type Span struct {
	Start, End int
}

// SplitSentences returns approximate sentence spans of text.
func SplitSentences(text string) []Span {
	var spans []Span
	start := 0
	for i, r := range text {
		if r == '.' || r == '!' || r == '?' || r == '\n' {
			if i > start {
				spans = append(spans, Span{Start: start, End: i + 1})
			}
			start = i + 1
		}
	}
	if start < len(text) {
		spans = append(spans, Span{Start: start, End: len(text)})
	}
	return spans
}
