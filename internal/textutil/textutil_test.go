package textutil

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeOffsets(t *testing.T) {
	text := "Root hits hundred, as England turn!"
	toks := Tokenize(text)
	want := []string{"root", "hits", "hundred", "as", "england", "turn"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, w := range want {
		if toks[i].Text != w {
			t.Errorf("token %d = %q, want %q", i, toks[i].Text, w)
		}
		if got := strings.ToLower(text[toks[i].Start:toks[i].End]); got != w {
			t.Errorf("offsets of token %d recover %q, want %q", i, got, w)
		}
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("   ...   "); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v", got)
	}
	got := Tokenize("O'Brien's co-worker")
	if len(got) != 2 || got[0].Text != "o'brien's" || got[1].Text != "co-worker" {
		t.Fatalf("apostrophe/hyphen tokens = %v", got)
	}
	uni := Tokenize("café au lait")
	if len(uni) != 3 || uni[0].Text != "cafe" {
		t.Fatalf("unicode tokens (folded) = %v", uni)
	}
	// Trailing token without terminator.
	tail := Tokenize("end token")
	if len(tail) != 2 || tail[1].End != len("end token") {
		t.Fatalf("trailing token = %v", tail)
	}
}

func TestNormalizePhrase(t *testing.T) {
	if got := NormalizePhrase("  Joe   ROOT "); got != "joe root" {
		t.Fatalf("NormalizePhrase = %q", got)
	}
	if got := NormalizePhrase("Smith, Tim"); got != "smith tim" {
		t.Fatalf("NormalizePhrase = %q", got)
	}
}

func TestSplitSentences(t *testing.T) {
	spans := SplitSentences("One. Two! Three?\nFour")
	if len(spans) != 4 {
		t.Fatalf("spans = %v", spans)
	}
	text := "One. Two! Three?\nFour"
	if got := text[spans[0].Start:spans[0].End]; got != "One." {
		t.Fatalf("first sentence = %q", got)
	}
	if got := text[spans[3].Start:spans[3].End]; got != "Four" {
		t.Fatalf("last sentence = %q", got)
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		d    int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
		{"résumé", "resume", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.d {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.d)
		}
	}
}

func TestLevenshteinSimilarity(t *testing.T) {
	if got := LevenshteinSimilarity("", ""); got != 1 {
		t.Fatalf("empty similarity = %v", got)
	}
	if got := LevenshteinSimilarity("abc", "abc"); got != 1 {
		t.Fatalf("equal similarity = %v", got)
	}
	if got := LevenshteinSimilarity("abc", "xyz"); got != 0 {
		t.Fatalf("disjoint similarity = %v", got)
	}
}

func TestJaroWinkler(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); math.Abs(got-0.9611) > 0.001 {
		t.Fatalf("JW(martha,marhta) = %v, want ~0.9611", got)
	}
	if got := JaroWinkler("dixon", "dicksonx"); math.Abs(got-0.8133) > 0.005 {
		t.Fatalf("JW(dixon,dicksonx) = %v, want ~0.813", got)
	}
	if got := JaroWinkler("", ""); got != 1 {
		t.Fatalf("JW empty = %v", got)
	}
	if got := JaroWinkler("a", ""); got != 0 {
		t.Fatalf("JW one-empty = %v", got)
	}
	if JaroWinkler("michelle", "michelle") != 1 {
		t.Fatal("JW identical != 1")
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("Tim Smith", "Smith, Tim"); got != 1 {
		t.Fatalf("reordered names Jaccard = %v, want 1", got)
	}
	if got := TokenJaccard("Tim Smith", "Tim Jones"); math.Abs(got-1.0/3.0) > 1e-9 {
		t.Fatalf("Jaccard = %v, want 1/3", got)
	}
	if got := TokenJaccard("", ""); got != 1 {
		t.Fatalf("empty Jaccard = %v", got)
	}
}

func TestDigitsOnly(t *testing.T) {
	if got := DigitsOnly("+1 (123) 555-1234"); got != "11235551234" {
		t.Fatalf("DigitsOnly = %q", got)
	}
	if got := DigitsOnly("no digits"); got != "" {
		t.Fatalf("DigitsOnly = %q", got)
	}
}

func TestMatcherBasic(t *testing.T) {
	b := NewMatcherBuilder()
	jordan := b.AddPhrase("Michael Jordan")
	michael := b.AddPhrase("Michael")
	bulls := b.AddPhrase("Chicago Bulls")
	m := b.Build()

	toks := tokensOf("Michael Jordan played for the Chicago Bulls.")
	matches := m.Match(toks)
	found := map[int][2]int{}
	for _, mt := range matches {
		found[mt.Pattern] = [2]int{mt.Start, mt.End}
	}
	if got, ok := found[jordan]; !ok || got != [2]int{0, 2} {
		t.Fatalf("Michael Jordan match = %v, %v", got, ok)
	}
	if got, ok := found[michael]; !ok || got != [2]int{0, 1} {
		t.Fatalf("overlapping prefix match = %v, %v", got, ok)
	}
	if got, ok := found[bulls]; !ok || got != [2]int{5, 7} {
		t.Fatalf("Chicago Bulls match = %v, %v", got, ok)
	}
}

func TestMatcherSuffixViaFailureLinks(t *testing.T) {
	b := NewMatcherBuilder()
	ab := b.Add([]string{"a", "b"})
	bc := b.Add([]string{"b", "c"})
	c := b.Add([]string{"c"})
	m := b.Build()
	matches := m.Match([]string{"a", "b", "c"})
	seen := map[int]bool{}
	for _, mt := range matches {
		seen[mt.Pattern] = true
	}
	for name, id := range map[string]int{"ab": ab, "bc": bc, "c": c} {
		if !seen[id] {
			t.Errorf("pattern %s not matched; matches = %v", name, matches)
		}
	}
}

func TestMatcherNoFalsePositives(t *testing.T) {
	b := NewMatcherBuilder()
	b.AddPhrase("new york city")
	m := b.Build()
	if got := m.Match(tokensOf("new york state of mind")); len(got) != 0 {
		t.Fatalf("false positive: %v", got)
	}
	if got := m.Match(nil); len(got) != 0 {
		t.Fatalf("match on empty input: %v", got)
	}
}

func TestMatcherDuplicatePatterns(t *testing.T) {
	b := NewMatcherBuilder()
	p1 := b.AddPhrase("michael jordan")
	p2 := b.AddPhrase("michael jordan") // same alias, second entity
	m := b.Build()
	if p1 == p2 {
		t.Fatal("duplicate patterns must get distinct IDs")
	}
	matches := m.Match(tokensOf("michael jordan"))
	if len(matches) != 2 {
		t.Fatalf("want both duplicate patterns reported, got %v", matches)
	}
}

func TestMatcherEmptyPattern(t *testing.T) {
	b := NewMatcherBuilder()
	if id := b.Add(nil); id != -1 {
		t.Fatalf("empty pattern id = %d, want -1", id)
	}
	if id := b.AddPhrase("  !!  "); id != -1 {
		t.Fatalf("punctuation-only phrase id = %d, want -1", id)
	}
	m := b.Build()
	if m.NumPatterns() != 0 {
		t.Fatalf("NumPatterns = %d", m.NumPatterns())
	}
	if m.PatternLen(0) != 0 || m.PatternLen(-1) != 0 {
		t.Fatal("PatternLen out-of-range must be 0")
	}
}

// Property: every match reported by the automaton is a real occurrence,
// and a naive scan finds exactly the same match set.
func TestMatcherAgainstNaive(t *testing.T) {
	vocab := []string{"a", "b", "c", "d"}
	f := func(patRaw []uint8, textRaw []uint8) bool {
		if len(patRaw) == 0 {
			return true
		}
		// Derive up to 6 patterns of lengths 1..3 from fuzz bytes.
		b := NewMatcherBuilder()
		var patterns [][]string
		for i := 0; i+2 < len(patRaw) && len(patterns) < 6; i += 3 {
			plen := int(patRaw[i])%3 + 1
			var pat []string
			for j := 0; j < plen; j++ {
				pat = append(pat, vocab[int(patRaw[(i+j+1)%len(patRaw)])%len(vocab)])
			}
			b.Add(pat)
			patterns = append(patterns, pat)
		}
		text := make([]string, 0, len(textRaw))
		for _, x := range textRaw {
			text = append(text, vocab[int(x)%len(vocab)])
		}
		m := b.Build()
		got := map[TokenMatch]bool{}
		for _, mt := range m.Match(text) {
			got[mt] = true
		}
		want := map[TokenMatch]bool{}
		for pid, pat := range patterns {
			for i := 0; i+len(pat) <= len(text); i++ {
				ok := true
				for j := range pat {
					if text[i+j] != pat[j] {
						ok = false
						break
					}
				}
				if ok {
					want[TokenMatch{Pattern: pid, Start: i, End: i + len(pat)}] = true
				}
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Levenshtein is a metric (symmetry, identity, triangle
// inequality on short random strings).
func TestLevenshteinMetricProperties(t *testing.T) {
	clamp := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		return s
	}
	f := func(a, b, c string) bool {
		a, b, c = clamp(a), clamp(b), clamp(c)
		dab := Levenshtein(a, b)
		dba := Levenshtein(b, a)
		if dab != dba {
			return false
		}
		if Levenshtein(a, a) != 0 {
			return false
		}
		dac := Levenshtein(a, c)
		dcb := Levenshtein(c, b)
		return dab <= dac+dcb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func tokensOf(s string) []string {
	toks := Tokenize(s)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Text
	}
	return out
}

func TestFoldString(t *testing.T) {
	cases := []struct{ in, want string }{
		{"beyoncé", "beyonce"},
		{"josé", "jose"},
		{"straße", "strasse"},
		{"œuvre", "oeuvre"},
		{"ærø", "aero"},
		{"plain ascii", "plain ascii"},
		{"日本語", "日本語"}, // non-Latin passes through
	}
	for _, c := range cases {
		if got := FoldString(c.in); got != c.want {
			t.Errorf("FoldString(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenizeAccentInsensitiveMatching(t *testing.T) {
	// An accented alias and an unaccented mention produce identical token
	// text (and vice versa), so the Aho-Corasick dictionary matches both.
	a := Tokenize("Beyoncé Knowles")
	b := Tokenize("Beyonce Knowles")
	if len(a) != 2 || len(b) != 2 {
		t.Fatalf("tokens = %v / %v", a, b)
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("token %d differs: %q vs %q", i, a[i].Text, b[i].Text)
		}
	}
	// Offsets still index the original accented bytes.
	if a[0].End-a[0].Start != len("Beyoncé") {
		t.Fatalf("offsets broken for accented token: %v", a[0])
	}
}
