package textutil

// Matcher is an Aho-Corasick automaton over word tokens (not characters):
// patterns are token sequences, and matching runs in time linear in the
// number of document tokens plus the number of matches. Token-level
// matching keeps the automaton small for entity-alias dictionaries with
// millions of multi-word names and guarantees matches align to word
// boundaries, which character-level matching would not.
//
// Build the automaton once with NewMatcher, then call Match concurrently:
// a built Matcher is immutable and safe for concurrent use.
type Matcher struct {
	nodes []acNode
	// patterns[i] is the token length of pattern i (for offset recovery).
	patternLens []int
}

type acNode struct {
	next map[string]int32
	fail int32
	// output lists pattern IDs ending at this node.
	output []int32
}

// MatcherBuilder accumulates patterns before building the automaton.
type MatcherBuilder struct {
	nodes       []acNode
	patternLens []int
}

// NewMatcherBuilder returns an empty builder.
func NewMatcherBuilder() *MatcherBuilder {
	return &MatcherBuilder{nodes: []acNode{{next: make(map[string]int32)}}}
}

// Add inserts a pattern given as its normalized token sequence and returns
// the pattern ID. Empty patterns are ignored and return -1. Duplicate
// pattern token sequences get distinct IDs (both are reported on match),
// which lets callers register the same alias for multiple entities.
func (b *MatcherBuilder) Add(tokens []string) int {
	if len(tokens) == 0 {
		return -1
	}
	cur := int32(0)
	for _, tok := range tokens {
		next, ok := b.nodes[cur].next[tok]
		if !ok {
			next = int32(len(b.nodes))
			b.nodes = append(b.nodes, acNode{next: make(map[string]int32)})
			b.nodes[cur].next[tok] = next
		}
		cur = next
	}
	id := int32(len(b.patternLens))
	b.patternLens = append(b.patternLens, len(tokens))
	b.nodes[cur].output = append(b.nodes[cur].output, id)
	return int(id)
}

// AddPhrase tokenizes and adds a surface-form phrase.
func (b *MatcherBuilder) AddPhrase(phrase string) int {
	toks := Tokenize(phrase)
	if len(toks) == 0 {
		return -1
	}
	words := make([]string, len(toks))
	for i, t := range toks {
		words[i] = t.Text
	}
	return b.Add(words)
}

// Build computes failure links breadth-first and returns the immutable
// matcher. The builder must not be used afterwards.
func (b *MatcherBuilder) Build() *Matcher {
	m := &Matcher{nodes: b.nodes, patternLens: b.patternLens}
	queue := make([]int32, 0, len(m.nodes))
	for _, child := range m.nodes[0].next {
		m.nodes[child].fail = 0
		queue = append(queue, child)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for tok, child := range m.nodes[cur].next {
			queue = append(queue, child)
			// Follow failure links of cur to find the longest proper
			// suffix state that has a tok transition.
			f := m.nodes[cur].fail
			for {
				if nxt, ok := m.nodes[f].next[tok]; ok && nxt != child {
					m.nodes[child].fail = nxt
					break
				}
				if f == 0 {
					m.nodes[child].fail = 0
					break
				}
				f = m.nodes[f].fail
			}
			// Merge output of the failure target so matches ending at
			// suffix states are reported too.
			ft := m.nodes[child].fail
			if len(m.nodes[ft].output) > 0 {
				m.nodes[child].output = append(m.nodes[child].output, m.nodes[ft].output...)
			}
		}
	}
	return m
}

// TokenMatch reports one pattern occurrence over a token sequence.
type TokenMatch struct {
	Pattern int // pattern ID as returned by Add
	// Start and End are token indexes: tokens[Start:End] is the match.
	Start, End int
}

// Match runs the automaton over the token texts and returns all pattern
// occurrences, including overlapping ones.
func (m *Matcher) Match(tokens []string) []TokenMatch {
	var out []TokenMatch
	cur := int32(0)
	for i, tok := range tokens {
		for {
			if next, ok := m.nodes[cur].next[tok]; ok {
				cur = next
				break
			}
			if cur == 0 {
				break
			}
			cur = m.nodes[cur].fail
		}
		for _, pid := range m.nodes[cur].output {
			plen := m.patternLens[pid]
			out = append(out, TokenMatch{Pattern: int(pid), Start: i - plen + 1, End: i + 1})
		}
	}
	return out
}

// NumPatterns returns the number of registered patterns.
func (m *Matcher) NumPatterns() int { return len(m.patternLens) }

// PatternLen returns the token length of pattern id.
func (m *Matcher) PatternLen(id int) int {
	if id < 0 || id >= len(m.patternLens) {
		return 0
	}
	return m.patternLens[id]
}
