package textutil

// Diacritic folding for cross-language surface matching (§3.2: the
// annotation service "needs to be multilingual"). Mentions written
// without accents ("Beyonce", "Jose") must match aliases stored with
// them ("Beyoncé", "José") and vice versa. FoldRune maps the common
// Latin-1 Supplement and Latin Extended-A letters onto their base ASCII
// letters; Tokenize applies it so both the alias dictionary and the
// document tokens are folded consistently.

// foldTable maps accented runes to ASCII replacements. Multi-rune
// expansions (æ→ae, ß→ss) are handled separately in FoldString.
var foldTable = map[rune]rune{
	'à': 'a', 'á': 'a', 'â': 'a', 'ã': 'a', 'ä': 'a', 'å': 'a', 'ā': 'a', 'ă': 'a', 'ą': 'a',
	'ç': 'c', 'ć': 'c', 'ĉ': 'c', 'ċ': 'c', 'č': 'c',
	'ď': 'd', 'đ': 'd', 'ð': 'd',
	'è': 'e', 'é': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e', 'ĕ': 'e', 'ė': 'e', 'ę': 'e', 'ě': 'e',
	'ĝ': 'g', 'ğ': 'g', 'ġ': 'g', 'ģ': 'g',
	'ĥ': 'h', 'ħ': 'h',
	'ì': 'i', 'í': 'i', 'î': 'i', 'ï': 'i', 'ĩ': 'i', 'ī': 'i', 'ĭ': 'i', 'į': 'i', 'ı': 'i',
	'ĵ': 'j',
	'ķ': 'k',
	'ĺ': 'l', 'ļ': 'l', 'ľ': 'l', 'ŀ': 'l', 'ł': 'l',
	'ñ': 'n', 'ń': 'n', 'ņ': 'n', 'ň': 'n',
	'ò': 'o', 'ó': 'o', 'ô': 'o', 'õ': 'o', 'ö': 'o', 'ø': 'o', 'ō': 'o', 'ŏ': 'o', 'ő': 'o',
	'ŕ': 'r', 'ŗ': 'r', 'ř': 'r',
	'ś': 's', 'ŝ': 's', 'ş': 's', 'š': 's',
	'ţ': 't', 'ť': 't', 'ŧ': 't',
	'ù': 'u', 'ú': 'u', 'û': 'u', 'ü': 'u', 'ũ': 'u', 'ū': 'u', 'ŭ': 'u', 'ů': 'u', 'ű': 'u', 'ų': 'u',
	'ŵ': 'w',
	'ý': 'y', 'ÿ': 'y', 'ŷ': 'y',
	'ź': 'z', 'ż': 'z', 'ž': 'z',
	'þ': 't',
}

// FoldRune maps an accented lowercase Latin rune to its ASCII base, or
// returns the rune unchanged. Callers lowercase first.
func FoldRune(r rune) rune {
	if f, ok := foldTable[r]; ok {
		return f
	}
	return r
}

// FoldString lowercase-folds a string: each rune is folded, and the
// ligatures æ/œ/ß expand to two letters. Non-Latin scripts pass through
// unchanged.
func FoldString(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case 'æ':
			out = append(out, 'a', 'e')
		case 'œ':
			out = append(out, 'o', 'e')
		case 'ß':
			out = append(out, 's', 's')
		default:
			out = append(out, FoldRune(r))
		}
	}
	return string(out)
}
