package workload

// Open-loop load generation for the HTTP serving tier. Closed-loop
// clients (each worker waiting for its response before issuing the next
// request) self-throttle under saturation and hide the very overload
// they are meant to measure; the generator here is open-loop — arrivals
// fire at a constant configured rate regardless of completions, the way
// independent users do — so offered load can genuinely exceed capacity
// and the report separates goodput (completed 2xx) from shed load (429
// and 503, the admission tier working as designed) and real failures
// (other 5xx, transport errors). The package deliberately speaks plain
// HTTP against a base URL: it has no dependency on the server package,
// so the same generator drives an in-process httptest server (CI load
// smoke, BenchmarkE20Load), cmd/kgload against a live kgserve, or any
// other deployment of the API.

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"saga/internal/kg"
	"saga/internal/metrics"
)

// LoadOp is one operation in the mix. Do issues a single request and
// returns the HTTP status (0 when the request never completed). seq is
// the arrival's global sequence number — ops derive their parameters
// from it deterministically, so a fixed config yields a fixed request
// stream regardless of scheduling.
type LoadOp struct {
	Name   string
	Weight int
	Do     func(ctx context.Context, client *http.Client, baseURL string, seq int) (status int, err error)
}

// LoadConfig configures one open-loop run.
type LoadConfig struct {
	// BaseURL roots every request, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests; nil builds one with a generous
	// connection pool (open-loop bursts need far more than the default
	// two idle conns per host).
	Client *http.Client
	// Rate is the arrival rate in requests per second.
	Rate float64
	// Duration is how long arrivals keep firing.
	Duration time.Duration
	// Ops is the weighted mix; at least one entry.
	Ops []LoadOp
	// Seed drives op selection (deterministic for a fixed config).
	Seed int64
	// MaxInFlight bounds concurrently outstanding requests as a harness
	// safety valve; arrivals beyond it are dropped and counted as
	// Overflow rather than spawning unbounded goroutines. 0 means 4096.
	MaxInFlight int
}

// LoadReport aggregates one run. Latency percentiles cover admitted
// (2xx) requests only — shed requests return fast by design and would
// flatter the numbers.
type LoadReport struct {
	Duration time.Duration `json:"duration"`
	// Offered counts arrivals (including Overflow drops); Completed the
	// 2xx responses; Shed the 429s and 503s; ClientErrors other 4xx;
	// ServerErrors other 5xx; TransportErrors requests that died without
	// a status; Overflow arrivals dropped by the harness's own
	// in-flight bound.
	Offered         int `json:"offered"`
	Completed       int `json:"completed"`
	Shed            int `json:"shed"`
	ClientErrors    int `json:"client_errors"`
	ServerErrors    int `json:"server_errors"`
	TransportErrors int `json:"transport_errors"`
	Overflow        int `json:"overflow"`
	// StatusCounts breaks responses down by exact status code.
	StatusCounts map[int]int `json:"status_counts"`
	// PerOp counts completed requests by op name.
	PerOp map[string]int `json:"per_op"`
	// P50/P99/P999 are latency percentiles over completed requests.
	P50  time.Duration `json:"p50"`
	P99  time.Duration `json:"p99"`
	P999 time.Duration `json:"p999"`
	// OfferedPerSec and GoodputPerSec are arrival and completion rates;
	// ShedRate is Shed / (all responses with a status).
	OfferedPerSec float64 `json:"offered_per_sec"`
	GoodputPerSec float64 `json:"goodput_per_sec"`
	ShedRate      float64 `json:"shed_rate"`
}

// NewLoadClient returns an http.Client sized for open-loop bursts: a
// large idle pool (connection reuse instead of per-request dials) and a
// per-request timeout as the harness's own safety deadline.
func NewLoadClient(timeout time.Duration) *http.Client {
	t := &http.Transport{
		MaxIdleConns:        4096,
		MaxIdleConnsPerHost: 4096,
		MaxConnsPerHost:     0,
		IdleConnTimeout:     30 * time.Second,
	}
	return &http.Client{Transport: t, Timeout: timeout}
}

// RunOpenLoop fires cfg.Rate arrivals per second for cfg.Duration, each
// arrival running one weighted-random op in its own goroutine, and
// waits for every outstanding request before reporting. Arrival times
// are fixed at run start (constant spacing from a monotonic anchor), so
// a slow server cannot slow the arrival process down — that is the
// open-loop property. ctx cancels the run early.
func RunOpenLoop(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if cfg.Rate <= 0 || cfg.Duration <= 0 {
		return nil, errors.New("workload: open loop needs Rate > 0 and Duration > 0")
	}
	if len(cfg.Ops) == 0 {
		return nil, errors.New("workload: open loop needs at least one op")
	}
	client := cfg.Client
	if client == nil {
		client = NewLoadClient(30 * time.Second)
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = 4096
	}
	totalWeight := 0
	for _, op := range cfg.Ops {
		if op.Weight <= 0 {
			return nil, fmt.Errorf("workload: op %q needs Weight > 0", op.Name)
		}
		totalWeight += op.Weight
	}
	pick := func(rng *rand.Rand) LoadOp {
		n := rng.Intn(totalWeight)
		for _, op := range cfg.Ops {
			if n -= op.Weight; n < 0 {
				return op
			}
		}
		return cfg.Ops[len(cfg.Ops)-1]
	}

	type sample struct {
		op      string
		status  int
		latency time.Duration
		err     error
	}
	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	inFlight := make(chan struct{}, maxInFlight)
	// The launcher goroutine owns the rng: op choice stays deterministic
	// without a lock on the hot path.
	rng := rand.New(rand.NewSource(cfg.Seed))
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	start := time.Now()
	offered, overflow := 0, 0
arrivals:
	for i := 0; ; i++ {
		at := start.Add(time.Duration(i) * interval)
		if at.Sub(start) >= cfg.Duration {
			break
		}
		if d := time.Until(at); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				break arrivals
			}
		}
		offered++
		op := pick(rng)
		seq := i
		select {
		case inFlight <- struct{}{}:
		default:
			overflow++
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inFlight }()
			t0 := time.Now()
			status, err := op.Do(ctx, client, cfg.BaseURL, seq)
			s := sample{op: op.Name, status: status, latency: time.Since(t0), err: err}
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &LoadReport{
		Duration:     elapsed,
		Offered:      offered,
		Overflow:     overflow,
		StatusCounts: make(map[int]int),
		PerOp:        make(map[string]int),
	}
	var lats []float64
	responded := 0
	for _, s := range samples {
		if s.status == 0 {
			rep.TransportErrors++
			continue
		}
		responded++
		rep.StatusCounts[s.status]++
		switch {
		case s.status >= 200 && s.status < 300:
			rep.Completed++
			rep.PerOp[s.op]++
			lats = append(lats, float64(s.latency))
		case s.status == http.StatusTooManyRequests || s.status == http.StatusServiceUnavailable:
			rep.Shed++
		case s.status >= 500:
			rep.ServerErrors++
		default:
			rep.ClientErrors++
		}
		_ = s.err
	}
	if len(lats) > 0 {
		rep.P50 = time.Duration(metrics.Percentile(lats, 50))
		rep.P99 = time.Duration(metrics.Percentile(lats, 99))
		rep.P999 = time.Duration(metrics.Percentile(lats, 99.9))
	}
	secs := elapsed.Seconds()
	if secs > 0 {
		rep.OfferedPerSec = float64(offered) / secs
		rep.GoodputPerSec = float64(rep.Completed) / secs
	}
	if responded > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(responded)
	}
	return rep, nil
}

// String renders the report for logs.
func (r *LoadReport) String() string {
	codes := make([]int, 0, len(r.StatusCounts))
	for c := range r.StatusCounts {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	var sb strings.Builder
	fmt.Fprintf(&sb, "offered %d (%.0f/s) over %v: %d ok (%.0f/s goodput), %d shed (%.1f%%), %d client-err, %d server-err, %d transport-err, %d overflow; p50 %v p99 %v p999 %v; statuses",
		r.Offered, r.OfferedPerSec, r.Duration.Round(time.Millisecond),
		r.Completed, r.GoodputPerSec, r.Shed, 100*r.ShedRate,
		r.ClientErrors, r.ServerErrors, r.TransportErrors, r.Overflow,
		r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond), r.P999.Round(time.Microsecond))
	for _, c := range codes {
		fmt.Fprintf(&sb, " %d:%d", c, r.StatusCounts[c])
	}
	return sb.String()
}

// MeasureClosedLoop estimates serving capacity for op: workers issue
// it back-to-back (closed loop — each waits for its response) for dur
// and the completed-2xx rate is returned in requests per second. This
// is the calibration step before an overload run: offered = 2× the
// returned capacity is genuine saturation whatever the machine.
func MeasureClosedLoop(ctx context.Context, client *http.Client, baseURL string, op LoadOp, workers int, dur time.Duration) float64 {
	if workers <= 0 {
		workers = 8
	}
	var completed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	stop := start.Add(dur)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			n := int64(0)
			for seq := w; time.Now().Before(stop); seq += workers {
				if ctx.Err() != nil {
					break
				}
				status, err := op.Do(ctx, client, baseURL, seq)
				if err == nil && status >= 200 && status < 300 {
					n++
				}
			}
			mu.Lock()
			completed += n
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(completed) / elapsed
}

// SaturationQueryOp returns a deliberately expensive read — an
// unselective two-clause collaborator self-join — for capacity probes
// and overload runs. The point is a per-request cost high enough
// (milliseconds, not microseconds) that the server saturates at a rate
// the open-loop launcher can comfortably double; cheap point lookups
// would put true capacity above what any single-process harness can
// offer, and the overload run would never shed.
func SaturationQueryOp() LoadOp {
	const body = `{"clauses":[` +
		`{"subject":{"var":"a"},"predicate":"collaborator","object":{"var":"b"}},` +
		`{"subject":{"var":"b"},"predicate":"collaborator","object":{"var":"c"}}` +
		`],"limit":100000}`
	return LoadOp{Name: "join2", Weight: 1, Do: func(ctx context.Context, c *http.Client, base string, seq int) (int, error) {
		return doJSON(ctx, c, http.MethodPost, base+"/query", body)
	}}
}

// doJSON posts body (or GETs when body is empty) and drains the
// response, returning the status.
func doJSON(ctx context.Context, client *http.Client, method, url, body string) (int, error) {
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rdr)
	if err != nil {
		return 0, err
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// StandardLoadOps builds the mixed serving scenario over w's keys:
// paginated conjunctive queries, entity lookups, a sustained
// assert/retract ingest stream over a bounded pair set, subscribe
// churn (open, read the snapshot, disconnect), and occasional /derive
// analytics. Parameters derive from each arrival's sequence number, so
// the stream is deterministic for a fixed world.
func StandardLoadOps(w *World) []LoadOp {
	g := w.Graph
	key := func(id kg.EntityID) string { return g.Entity(id).Key }
	teamKeys := make([]string, len(w.Teams))
	for i, id := range w.Teams {
		teamKeys[i] = key(id)
	}
	personKeys := make([]string, len(w.People))
	for i, id := range w.People {
		personKeys[i] = key(id)
	}
	queryBody := func(seq int) string {
		return fmt.Sprintf(`{"clauses":[{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":%q}}],"limit":50}`,
			teamKeys[seq%len(teamKeys)])
	}
	// Ingest alternates assert/retract over a bounded set of
	// collaborator pairs so sustained load cannot grow the graph without
	// bound: pair k is asserted on one arrival and retracted on a later
	// one.
	ingestBody := func(seq int) string {
		pair := seq / 2
		a := personKeys[pair%len(personKeys)]
		b := personKeys[(pair*7+1)%len(personKeys)]
		verb := "asserts"
		if seq%2 == 1 {
			verb = "retracts"
		}
		return fmt.Sprintf(`{%q:[{"subject":%q,"predicate":"collaborator","object":{"key":%q}}]}`, verb, a, b)
	}
	return []LoadOp{
		{Name: "query", Weight: 4, Do: func(ctx context.Context, c *http.Client, base string, seq int) (int, error) {
			return doJSON(ctx, c, http.MethodPost, base+"/query", queryBody(seq))
		}},
		{Name: "entity", Weight: 3, Do: func(ctx context.Context, c *http.Client, base string, seq int) (int, error) {
			return doJSON(ctx, c, http.MethodGet, base+"/entity?key="+personKeys[seq%len(personKeys)], "")
		}},
		{Name: "ingest", Weight: 2, Do: func(ctx context.Context, c *http.Client, base string, seq int) (int, error) {
			return doJSON(ctx, c, http.MethodPost, base+"/ingest", ingestBody(seq))
		}},
		{Name: "subscribe", Weight: 1, Do: func(ctx context.Context, c *http.Client, base string, seq int) (int, error) {
			return subscribeChurn(ctx, c, base, queryBody(seq))
		}},
		{Name: "derive", Weight: 1, Do: func(ctx context.Context, c *http.Client, base string, seq int) (int, error) {
			body := fmt.Sprintf(`{"kind":"khop","out":"loadhop","source_keys":[%q],"k":2}`,
				personKeys[seq%len(personKeys)])
			return doJSON(ctx, c, http.MethodPost, base+"/derive", body)
		}},
	}
}

// subscribeChurn opens a subscription, reads the snapshot line, and
// disconnects — the connect/teardown cost of subscription churn without
// holding slots for the rest of the run.
func subscribeChurn(ctx context.Context, client *http.Client, base, body string) (int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/subscribe", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	// One snapshot line proves the stream works; cancel tears it down.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}
