package workload

// Misbehaving-client fault modes for the serving tier: clients that
// stall mid-stream, disconnect mid-response, or ship oversized bodies.
// Each helper drives the fault through real HTTP (a TCP connection with
// genuine socket backpressure, not httptest.ResponseRecorder) so the
// server-side defenses it exercises — slow-subscriber eviction,
// context-cancelled solves, MaxBytesReader — face the same conditions
// production clients create. The load tests assert the server survives
// these without leaking goroutines or wedging.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// SlowSubscribeResult reports one slow-subscriber run.
type SlowSubscribeResult struct {
	// Status is the HTTP status of the subscribe itself.
	Status int
	// Lines counts NDJSON lines read (including the final error line).
	Lines int
	// ErrorLine is the final {"error": ...} payload when the server
	// evicted the subscriber, empty otherwise.
	ErrorLine string
}

// SlowSubscribe opens a subscription with a tiny eviction bound, reads
// the snapshot, then stalls — not reading the socket for stall — while
// the caller mutates the graph. Once the server's coalescer overruns
// MaxPending it must evict the subscriber and write a final
// {"error": ...} line; SlowSubscribe resumes reading after the stall
// and returns that line. The caller is responsible for generating
// enough mutations during the stall to overrun maxPending.
func SlowSubscribe(ctx context.Context, client *http.Client, base, clausesBody string, maxPending int, stall time.Duration) (*SlowSubscribeResult, error) {
	body := fmt.Sprintf(`{"clauses":%s,"coalesce_ms":1,"buffer":1,"max_pending":%d}`, clausesBody, maxPending)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/subscribe", strings.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	res := &SlowSubscribeResult{Status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return res, nil
	}
	rd := bufio.NewReader(resp.Body)
	// Read the snapshot line, then go quiet: the kernel receive buffer
	// fills, the server's event writes block, and its hub accumulates
	// undelivered deltas past max_pending.
	if _, err := rd.ReadString('\n'); err != nil {
		return res, err
	}
	res.Lines++
	select {
	case <-time.After(stall):
	case <-ctx.Done():
		return res, ctx.Err()
	}
	// Drain whatever the server managed to send, watching for the final
	// error line that pins the eviction.
	for {
		line, err := rd.ReadString('\n')
		if len(line) > 0 {
			res.Lines++
			var ev struct {
				Error string `json:"error"`
			}
			if jerr := json.Unmarshal([]byte(line), &ev); jerr == nil && ev.Error != "" {
				res.ErrorLine = ev.Error
			}
		}
		if err != nil {
			return res, nil // EOF (server closed after evicting) is the expected exit
		}
	}
}

// MidStreamDisconnect starts a streaming request (POST body to path)
// and severs the connection after firstByteOrDeadline — after the first
// response byte when one arrives in time, unconditionally otherwise.
// The status (0 when the cut beat the headers) lets tests confirm the
// request was admitted before the disconnect.
func MidStreamDisconnect(ctx context.Context, client *http.Client, base, path, body string, firstByteOrDeadline time.Duration) (int, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		one := make([]byte, 1)
		_, _ = resp.Body.Read(one)
	}()
	select {
	case <-done:
	case <-time.After(firstByteOrDeadline):
	}
	cancel() // sever mid-stream; the server's context must abort the work
	return resp.StatusCode, nil
}

// OversizedBody posts a body just past limit bytes to path and returns
// the status — the server must answer 413 without reading the whole
// payload into memory.
func OversizedBody(ctx context.Context, client *http.Client, base, path string, limit int) (int, error) {
	// Valid JSON prefix with a huge padding field: the handler's decoder
	// hits MaxBytesReader before the document completes.
	var sb strings.Builder
	sb.WriteString(`{"clauses":[],"pad":"`)
	sb.WriteString(strings.Repeat("x", limit))
	sb.WriteString(`"}`)
	return doJSON(ctx, client, http.MethodPost, base+path, sb.String())
}
