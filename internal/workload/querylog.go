package workload

import (
	"fmt"
	"math/rand"

	"saga/internal/kg"
)

// QueryLogEntry is one virtual-assistant query against the KG, with the
// outcome observed by the serving layer. ODKE's reactive gap detection
// (§4: "analyzing query logs and finding user queries that are not
// answered correctly due to missing or stale facts") consumes these.
type QueryLogEntry struct {
	// Subject and Predicate identify the asked fact slot.
	Subject   kg.EntityID
	Predicate kg.PredicateID
	// Answered reports whether the KG had a fact in the slot at query
	// time.
	Answered bool
	// Text is the natural-language surface form (for annotation tests).
	Text string
}

// QueryLogConfig sizes GenerateQueryLog.
type QueryLogConfig struct {
	// NumQueries defaults to 500.
	NumQueries int
	// Seed drives sampling.
	Seed int64
}

// GenerateQueryLog samples queries over the world's people with Zipfian
// popularity bias (popular entities are asked about more often), asking
// for a random predicate slot each time, and records whether the KG
// currently answers it.
func GenerateQueryLog(w *World, cfg QueryLogConfig) []QueryLogEntry {
	if cfg.NumQueries <= 0 {
		cfg.NumQueries = 500
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	preds := []string{"occupation", "dateOfBirth", "memberOf", "bornIn", "award", "spouse"}
	out := make([]QueryLogEntry, 0, cfg.NumQueries)
	for i := 0; i < cfg.NumQueries; i++ {
		p := w.People[zipfIndex(rng, len(w.People))]
		predName := preds[rng.Intn(len(preds))]
		pred := w.Preds[predName]
		facts := w.Graph.Facts(p, pred)
		out = append(out, QueryLogEntry{
			Subject:   p,
			Predicate: pred,
			Answered:  len(facts) > 0,
			Text:      fmt.Sprintf("what is the %s of %s", predName, w.Graph.Entity(p).Name),
		})
	}
	return out
}

// zipfIndex samples an index in [0,n) with probability ∝ 1/(i+1).
func zipfIndex(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF over harmonic weights, computed incrementally.
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / float64(i+1)
	}
	r := rng.Float64() * total
	var acc float64
	for i := 0; i < n; i++ {
		acc += 1 / float64(i+1)
		if acc >= r {
			return i
		}
	}
	return n - 1
}
