package workload

import (
	"testing"

	"saga/internal/kg"
)

func TestGenerateKGDeterministic(t *testing.T) {
	w1, err := GenerateKG(KGConfig{NumPeople: 50, NumClusters: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := GenerateKG(KGConfig{NumPeople: 50, NumClusters: 5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if w1.Graph.NumTriples() != w2.Graph.NumTriples() {
		t.Fatalf("non-deterministic triple counts: %d vs %d", w1.Graph.NumTriples(), w2.Graph.NumTriples())
	}
	if w1.Graph.NumEntities() != w2.Graph.NumEntities() {
		t.Fatal("non-deterministic entity counts")
	}
	a := w1.Graph.AllTriples()
	b := w2.Graph.AllTriples()
	for i := range a {
		if a[i].SPO() != b[i].SPO() {
			t.Fatalf("triple %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateKGShape(t *testing.T) {
	w, err := GenerateKG(KGConfig{NumPeople: 100, NumClusters: 10, OccupationsPerPerson: 3, AmbiguousNamePairs: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.People) != 100 {
		t.Fatalf("people = %d", len(w.People))
	}
	if len(w.Teams) != 10 || len(w.Awards) != 10 {
		t.Fatalf("teams/awards = %d/%d", len(w.Teams), len(w.Awards))
	}
	// Each person has cluster assignment and gold occupations.
	for _, p := range w.People {
		if _, ok := w.Cluster[p]; !ok {
			t.Fatalf("person %v missing cluster", p)
		}
		gold := w.OccupationGold[p]
		if len(gold) != 3 {
			t.Fatalf("person %v gold occupations = %d", p, len(gold))
		}
		// Every gold occupation must be asserted as a fact.
		facts := w.Graph.Facts(p, w.Preds["occupation"])
		if len(facts) != 3 {
			t.Fatalf("person %v occupation facts = %d", p, len(facts))
		}
		// Gold[0] is the cluster theme occupation.
		theme := w.ThemeOccs[w.Cluster[p]]
		if gold[0] != theme {
			t.Fatalf("gold[0] = %v, want cluster theme %v", gold[0], theme)
		}
	}
	// Ambiguous pairs: same name, different clusters.
	if len(w.AmbiguousNames) == 0 {
		t.Fatal("no ambiguous names planted")
	}
	for name, ids := range w.AmbiguousNames {
		if len(ids) != 2 {
			t.Fatalf("ambiguous %q has %d bearers", name, len(ids))
		}
		if w.Graph.Entity(ids[0]).Name != name || w.Graph.Entity(ids[1]).Name != name {
			t.Fatalf("ambiguous pair names mismatch for %q", name)
		}
		if w.Cluster[ids[0]] == w.Cluster[ids[1]] {
			t.Fatalf("ambiguous pair %q in same cluster", name)
		}
	}
}

func TestGenerateKGLiteralNoise(t *testing.T) {
	w, err := GenerateKG(KGConfig{NumPeople: 30, NumClusters: 3, LiteralNoiseFacts: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	stats := kg.ComputeStats(w.Graph)
	if stats.LiteralTriples == 0 {
		t.Fatal("no literal facts generated")
	}
	if stats.EntityTriples == 0 {
		t.Fatal("no entity facts generated")
	}
	// DOB plus 3 noise literals per person = 4.
	if stats.LiteralTriples != 30*4 {
		t.Fatalf("literal triples = %d, want %d", stats.LiteralTriples, 30*4)
	}
}

func TestGenerateKGPopularityZipf(t *testing.T) {
	w, err := GenerateKG(KGConfig{NumPeople: 50, NumClusters: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	first := w.Graph.Entity(w.People[0]).Popularity
	last := w.Graph.Entity(w.People[49]).Popularity
	if first <= last {
		t.Fatalf("popularity not decreasing: first=%v last=%v", first, last)
	}
}

func TestClusterMembersPartitionPeople(t *testing.T) {
	w, err := GenerateKG(KGConfig{NumPeople: 40, NumClusters: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var total int
	seen := make(map[kg.EntityID]bool)
	for c, members := range w.ClusterMembers {
		for _, m := range members {
			if seen[m] {
				t.Fatalf("person %v in multiple clusters", m)
			}
			seen[m] = true
			if w.Cluster[m] != c {
				t.Fatalf("cluster map inconsistent for %v", m)
			}
			total++
		}
	}
	if total != 40 {
		t.Fatalf("cluster members total = %d", total)
	}
}

func TestGenerateQueryLog(t *testing.T) {
	w, err := GenerateKG(KGConfig{NumPeople: 60, NumClusters: 6, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	log := GenerateQueryLog(w, QueryLogConfig{NumQueries: 300, Seed: 5})
	if len(log) != 300 {
		t.Fatalf("log size = %d", len(log))
	}
	var answered int
	counts := make(map[kg.EntityID]int)
	for _, q := range log {
		if q.Text == "" {
			t.Fatal("empty query text")
		}
		counts[q.Subject]++
		if q.Answered {
			answered++
		}
		// Answered flag must reflect actual graph state.
		has := len(w.Graph.Facts(q.Subject, q.Predicate)) > 0
		if has != q.Answered {
			t.Fatalf("answered flag wrong for %v", q)
		}
	}
	if answered == 0 {
		t.Fatal("no query answered; generator broken")
	}
	// Zipf bias: the most popular person should be asked about more often
	// than the median person.
	top := counts[w.People[0]]
	mid := counts[w.People[30]]
	if top <= mid {
		t.Fatalf("no popularity bias: top=%d mid=%d", top, mid)
	}
}

func TestGenerateKGDegenerateConfigs(t *testing.T) {
	// Defaults fill in.
	w, err := GenerateKG(KGConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.People) == 0 {
		t.Fatal("default config generated no people")
	}
	// More clusters than people clamps.
	w2, err := GenerateKG(KGConfig{NumPeople: 3, NumClusters: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.People) != 3 {
		t.Fatalf("people = %d", len(w2.People))
	}
}
