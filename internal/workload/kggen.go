// Package workload generates the synthetic datasets that substitute for
// the paper's production resources (see DESIGN.md substitution table): an
// open-domain knowledge graph with a typed ontology, Zipfian popularity,
// planted community structure, multi-valued facts with hidden gold
// importance order, ambiguous entity names, literal/noise facts, and a
// query log. Every generator is deterministic under its seed so
// experiments are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"saga/internal/kg"
)

// KGConfig sizes the synthetic knowledge graph.
type KGConfig struct {
	// NumPeople is the number of person entities; default 200.
	NumPeople int
	// NumClusters is the number of communities (teams/domains) people are
	// grouped into; related-entity ground truth is cluster co-membership.
	// Default 10.
	NumClusters int
	// OccupationsPerPerson in [1,4]; default 3. The first occupation (the
	// cluster's theme) is the gold most-important one.
	OccupationsPerPerson int
	// AmbiguousNamePairs is the number of name collisions to plant (two
	// entities in different clusters sharing a name); default 5.
	AmbiguousNamePairs int
	// LiteralNoiseFacts adds this many literal facts per person (heights,
	// follower counts, library IDs) that embedding views should filter;
	// default 2.
	LiteralNoiseFacts int
	// Seed drives all randomness.
	Seed int64
}

func (c *KGConfig) setDefaults() {
	if c.NumPeople <= 0 {
		c.NumPeople = 200
	}
	if c.NumClusters <= 0 {
		c.NumClusters = 10
	}
	if c.NumClusters > c.NumPeople {
		c.NumClusters = c.NumPeople
	}
	if c.OccupationsPerPerson <= 0 {
		c.OccupationsPerPerson = 3
	}
	if c.OccupationsPerPerson > 4 {
		c.OccupationsPerPerson = 4
	}
	if c.AmbiguousNamePairs < 0 {
		c.AmbiguousNamePairs = 0
	}
	if c.LiteralNoiseFacts < 0 {
		c.LiteralNoiseFacts = 0
	}
}

// World is a generated knowledge graph plus the hidden gold structure the
// experiments evaluate against.
type World struct {
	Graph *kg.Graph

	// Types by name: Thing, Person, Athlete, Occupation, Team, City,
	// Award, CreativeWork.
	Types map[string]kg.TypeID
	// Preds by name: occupation, memberOf, bornIn, award, spouse,
	// collaborator, dateOfBirth, height, followers, libraryID.
	Preds map[string]kg.PredicateID

	People      []kg.EntityID
	Occupations []kg.EntityID
	Teams       []kg.EntityID
	Cities      []kg.EntityID
	Awards      []kg.EntityID

	// Cluster maps each person to its community; people sharing a cluster
	// are ground-truth "related".
	Cluster map[kg.EntityID]int
	// ClusterMembers lists people per cluster.
	ClusterMembers [][]kg.EntityID
	// ThemeOccs maps each cluster to its theme occupation — the
	// ground-truth most-important occupation of every member. Themes are
	// deliberately drawn from the UNPOPULAR end of the occupation list
	// while secondary occupations skew popular, so a popularity-only
	// fact-ranking baseline systematically errs (experiment E1).
	ThemeOccs []kg.EntityID
	// OccupationGold maps each person to its occupations in true
	// importance order (index 0 = most important).
	OccupationGold map[kg.EntityID][]kg.EntityID
	// AmbiguousNames maps a shared surface name to the entities bearing
	// it (always in different clusters).
	AmbiguousNames map[string][]kg.EntityID
}

// firstNames / lastNames give readable synthetic names.
var firstNames = []string{
	"James", "Mary", "Michael", "Linda", "David", "Sarah", "Carlos", "Aisha",
	"Wei", "Yuki", "Omar", "Elena", "Noah", "Priya", "Lucas", "Amara",
}

var lastNames = []string{
	"Smith", "Johnson", "Garcia", "Chen", "Patel", "Okafor", "Mueller",
	"Rossi", "Tanaka", "Jordan", "Williams", "Brown", "Silva", "Kim",
}

var occupationNames = []string{
	"Basketball Player", "Television Actor", "Screenwriter", "Musician",
	"University Professor", "Chef", "Architect", "Journalist",
	"Cricket Player", "Film Director", "Novelist", "Photographer",
}

var cityNames = []string{
	"Akron", "Toronto", "Seattle", "Mumbai", "Lagos", "Berlin", "Kyoto",
	"Lima", "Cairo", "Sydney", "Oslo", "Nairobi",
}

// GenerateKG builds a synthetic world.
func GenerateKG(cfg KGConfig) (*World, error) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := kg.NewGraph()
	w := &World{
		Graph:          g,
		Types:          make(map[string]kg.TypeID),
		Preds:          make(map[string]kg.PredicateID),
		Cluster:        make(map[kg.EntityID]int),
		OccupationGold: make(map[kg.EntityID][]kg.EntityID),
		AmbiguousNames: make(map[string][]kg.EntityID),
		ClusterMembers: make([][]kg.EntityID, cfg.NumClusters),
	}

	o := g.Ontology()
	addType := func(name string, parent string) kg.TypeID {
		var pid kg.TypeID
		if parent != "" {
			pid = w.Types[parent]
		}
		id, err := o.AddType(name, pid)
		if err != nil {
			panic(err) // static names, cannot conflict
		}
		w.Types[name] = id
		return id
	}
	addType("Thing", "")
	addType("Person", "Thing")
	addType("Athlete", "Person")
	addType("Occupation", "Thing")
	addType("Organization", "Thing")
	addType("Team", "Organization")
	addType("Place", "Thing")
	addType("City", "Place")
	addType("Award", "Thing")
	addType("CreativeWork", "Thing")

	addPred := func(name string, vk kg.ValueKind, functional bool) kg.PredicateID {
		id, err := g.AddPredicate(kg.Predicate{Name: name, ValueKind: vk, Functional: functional})
		if err != nil {
			panic(err)
		}
		w.Preds[name] = id
		return id
	}
	pOcc := addPred("occupation", kg.KindEntity, false)
	pMember := addPred("memberOf", kg.KindEntity, false)
	pBorn := addPred("bornIn", kg.KindEntity, true)
	pAward := addPred("award", kg.KindEntity, false)
	pSpouse := addPred("spouse", kg.KindEntity, false)
	pCollab := addPred("collaborator", kg.KindEntity, false)
	pDOB := addPred("dateOfBirth", kg.KindTime, true)
	pHeight := addPred("height", kg.KindInt, true)
	pFollowers := addPred("followers", kg.KindInt, true)
	pLibID := addPred("libraryID", kg.KindString, true)

	prov := kg.Provenance{Source: "curated", Confidence: 0.95, SourceQuality: 0.9, ObservedAt: time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)}
	// Facts are accumulated and flushed through the graph's batch
	// ingestion fast path (one lock acquisition per shard, indexes grown
	// once) instead of locking per triple. Validation happens at flush;
	// every referenced entity/predicate is registered before then.
	var batch []kg.Triple
	assert := func(s kg.EntityID, p kg.PredicateID, obj kg.Value) {
		batch = append(batch, kg.Triple{Subject: s, Predicate: p, Object: obj, Prov: prov})
	}

	// Occupation entities. The first one is made globally "popular" so the
	// popularity baseline for fact ranking has something plausible (and
	// sometimes wrong) to say.
	for i, name := range occupationNames {
		id, err := g.AddEntity(kg.Entity{
			Key: fmt.Sprintf("occ%d", i), Name: name,
			Aliases:     []string{name},
			Description: "occupation " + name,
			Types:       []kg.TypeID{w.Types["Occupation"]},
			Popularity:  zipf(i, len(occupationNames)),
		})
		if err != nil {
			return nil, err
		}
		w.Occupations = append(w.Occupations, id)
	}
	// Cluster theme occupations: take them from the tail (least popular)
	// end of the occupation list.
	for c := 0; c < cfg.NumClusters; c++ {
		w.ThemeOccs = append(w.ThemeOccs, w.Occupations[(len(w.Occupations)-1-c%len(w.Occupations))%len(w.Occupations)])
	}
	// Cities.
	for i, name := range cityNames {
		id, err := g.AddEntity(kg.Entity{
			Key: fmt.Sprintf("city%d", i), Name: name,
			Aliases:     []string{name},
			Description: "city of " + name,
			Types:       []kg.TypeID{w.Types["City"]},
			Popularity:  zipf(i, len(cityNames)),
		})
		if err != nil {
			return nil, err
		}
		w.Cities = append(w.Cities, id)
	}
	// One team and one award per cluster.
	for c := 0; c < cfg.NumClusters; c++ {
		team, err := g.AddEntity(kg.Entity{
			Key: fmt.Sprintf("team%d", c), Name: fmt.Sprintf("%s %ss", cityNames[c%len(cityNames)], occWord(c)),
			Aliases:     []string{fmt.Sprintf("%s %ss", cityNames[c%len(cityNames)], occWord(c))},
			Description: "team in cluster " + fmt.Sprint(c),
			Types:       []kg.TypeID{w.Types["Team"]},
			Popularity:  zipf(c, cfg.NumClusters),
		})
		if err != nil {
			return nil, err
		}
		w.Teams = append(w.Teams, team)
		award, err := g.AddEntity(kg.Entity{
			Key: fmt.Sprintf("award%d", c), Name: fmt.Sprintf("%s Award", occupationNames[c%len(occupationNames)]),
			Aliases:     []string{fmt.Sprintf("%s Award", occupationNames[c%len(occupationNames)])},
			Description: "award for cluster " + fmt.Sprint(c),
			Types:       []kg.TypeID{w.Types["Award"]},
			Popularity:  zipf(c, cfg.NumClusters),
		})
		if err != nil {
			return nil, err
		}
		w.Awards = append(w.Awards, award)
	}

	// People, clustered.
	usedNames := make(map[string]int)
	for i := 0; i < cfg.NumPeople; i++ {
		cluster := i % cfg.NumClusters
		name := fmt.Sprintf("%s %s", firstNames[rng.Intn(len(firstNames))], lastNames[rng.Intn(len(lastNames))])
		usedNames[name]++
		if usedNames[name] > 1 {
			// Keep organic collisions distinct unless we plant them below.
			name = fmt.Sprintf("%s %s", name, romanNumeral(usedNames[name]))
		}
		themeOcc := w.ThemeOccs[cluster]
		city := w.Cities[cluster%len(w.Cities)]
		desc := fmt.Sprintf("%s, a %s from %s, member of %s",
			name,
			g.Entity(themeOcc).Name,
			g.Entity(city).Name,
			g.Entity(w.Teams[cluster]).Name)
		// Alias list: full name + last name alone (creates natural
		// ambiguity among same-surname people).
		id, err := g.AddEntity(kg.Entity{
			Key: fmt.Sprintf("person%d", i), Name: name,
			Aliases:     []string{name, lastNameOf(name)},
			Description: desc,
			Types:       []kg.TypeID{w.Types["Athlete"]},
			Popularity:  zipf(i, cfg.NumPeople),
		})
		if err != nil {
			return nil, err
		}
		w.People = append(w.People, id)
		w.Cluster[id] = cluster
		w.ClusterMembers[cluster] = append(w.ClusterMembers[cluster], id)
	}

	// Facts per person.
	for _, p := range w.People {
		cluster := w.Cluster[p]
		themeOcc := w.ThemeOccs[cluster]
		// Occupations: theme first (gold most important), then secondary
		// occupations sampled with popularity bias (popular generic
		// occupations show up as side gigs). The theme is structurally
		// supported — every cluster member shares it — while popularity
		// alone points the wrong way.
		gold := []kg.EntityID{themeOcc}
		for len(gold) < cfg.OccupationsPerPerson {
			cand := w.Occupations[popularityBiasedIndex(rng, len(w.Occupations))]
			dup := false
			for _, gpo := range gold {
				if gpo == cand {
					dup = true
					break
				}
			}
			if !dup {
				gold = append(gold, cand)
			}
		}
		w.OccupationGold[p] = gold
		for _, occ := range gold {
			assert(p, pOcc, kg.EntityValue(occ))
		}
		// Cluster-structural facts.
		assert(p, pMember, kg.EntityValue(w.Teams[cluster]))
		assert(p, pBorn, kg.EntityValue(w.Cities[cluster%len(w.Cities)]))
		if rng.Float64() < 0.7 {
			assert(p, pAward, kg.EntityValue(w.Awards[cluster]))
		}
		// Intra-cluster collaborators (2 random co-members).
		members := w.ClusterMembers[cluster]
		for k := 0; k < 2 && len(members) > 1; k++ {
			other := members[rng.Intn(len(members))]
			if other != p {
				assert(p, pCollab, kg.EntityValue(other))
			}
		}
		// Sparse inter-cluster noise edge.
		if rng.Float64() < 0.1 {
			other := w.People[rng.Intn(len(w.People))]
			if other != p {
				assert(p, pCollab, kg.EntityValue(other))
			}
		}
		// Occasional spouse inside cluster.
		if rng.Float64() < 0.2 && len(members) > 1 {
			other := members[rng.Intn(len(members))]
			if other != p {
				assert(p, pSpouse, kg.EntityValue(other))
			}
		}
		// Literal facts (the §2 "non-relevant" noise for embeddings).
		dob := time.Date(1950+rng.Intn(55), time.Month(1+rng.Intn(12)), 1+rng.Intn(28), 0, 0, 0, 0, time.UTC)
		assert(p, pDOB, kg.TimeValue(dob))
		for k := 0; k < cfg.LiteralNoiseFacts; k++ {
			switch k % 3 {
			case 0:
				assert(p, pHeight, kg.IntValue(int64(150+rng.Intn(70))))
			case 1:
				assert(p, pFollowers, kg.IntValue(int64(rng.Intn(5_000_000))))
			default:
				assert(p, pLibID, kg.StringValue(fmt.Sprintf("LIB-%06d", rng.Intn(999999))))
			}
		}
	}
	if _, err := g.AssertBatch(batch); err != nil {
		return nil, err
	}

	// Plant ambiguous name pairs across clusters (the "Michael Jordan"
	// scenario of Fig 2): rename person A in cluster i and person B in
	// cluster j != i to the same name.
	renamed := make(map[kg.EntityID]bool)
	for k := 0; k < cfg.AmbiguousNamePairs && cfg.NumClusters >= 2; k++ {
		c1 := k % cfg.NumClusters
		c2 := (k + 1 + cfg.NumClusters/2) % cfg.NumClusters
		if c1 == c2 {
			continue
		}
		a, okA := firstUnrenamed(w.ClusterMembers[c1], renamed)
		b, okB := firstUnrenamed(w.ClusterMembers[c2], renamed)
		if !okA || !okB {
			continue
		}
		renamed[a] = true
		renamed[b] = true
		shared := fmt.Sprintf("%s %s", firstNames[k%len(firstNames)], lastNames[(k*3+9)%len(lastNames)])
		for _, id := range []kg.EntityID{a, b} {
			// Rebuild name, aliases, and description to reflect the new
			// name. UpdateEntity replaces the stored record copy-on-write;
			// mutating the pointer Entity() returns is forbidden.
			cl := w.Cluster[id]
			desc := fmt.Sprintf("%s, a %s from %s, member of %s",
				shared,
				g.Entity(w.ThemeOccs[cl]).Name,
				g.Entity(w.Cities[cl%len(w.Cities)]).Name,
				g.Entity(w.Teams[cl]).Name)
			g.UpdateEntity(id, func(e *kg.Entity) {
				e.Name = shared
				e.Aliases = []string{shared, lastNameOf(shared)}
				e.Description = desc
			})
		}
		w.AmbiguousNames[shared] = []kg.EntityID{a, b}
	}

	return w, nil
}

// popularityBiasedIndex samples an index in [0,n) with probability
// proportional to popularity squared, heavily favouring the head.
func popularityBiasedIndex(rng *rand.Rand, n int) int {
	var total float64
	for i := 0; i < n; i++ {
		p := zipf(i, n)
		total += p * p
	}
	r := rng.Float64() * total
	var acc float64
	for i := 0; i < n; i++ {
		p := zipf(i, n)
		acc += p * p
		if acc >= r {
			return i
		}
	}
	return n - 1
}

// zipf maps rank i of n to a Zipfian popularity in (0,1].
func zipf(i, n int) float64 {
	return 1 / math.Sqrt(float64(i+1))
}

// firstUnrenamed returns the first cluster member not yet used by an
// ambiguous-name pair.
func firstUnrenamed(members []kg.EntityID, renamed map[kg.EntityID]bool) (kg.EntityID, bool) {
	for _, m := range members {
		if !renamed[m] {
			return m, true
		}
	}
	return kg.NoEntity, false
}

func occWord(c int) string {
	words := []string{"Raptor", "Eagle", "Shark", "Wolve", "Tiger", "Falcon", "Bear", "Lion", "Hawk", "Panther"}
	return words[c%len(words)]
}

func lastNameOf(full string) string {
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == ' ' {
			return full[i+1:]
		}
	}
	return full
}

func romanNumeral(n int) string {
	switch n {
	case 2:
		return "II"
	case 3:
		return "III"
	case 4:
		return "IV"
	default:
		return fmt.Sprintf("#%d", n)
	}
}
