package rules

import (
	"fmt"
	"math"
	"testing"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// --- helpers ------------------------------------------------------------

func mustEnt(t testing.TB, g *kg.Graph, key string) kg.EntityID {
	t.Helper()
	if e, ok := g.EntityByKey(key); ok {
		return e.ID
	}
	id, err := g.AddEntity(kg.Entity{Key: key, Name: key})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustPred(t testing.TB, g *kg.Graph, name string) kg.PredicateID {
	t.Helper()
	if p, ok := g.PredicateByName(name); ok {
		return p.ID
	}
	id, err := g.AddPredicate(kg.Predicate{Name: name})
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func mustAssert(t testing.TB, g *kg.Graph, s kg.EntityID, p kg.PredicateID, o kg.Value) {
	t.Helper()
	if err := g.Assert(kg.Triple{Subject: s, Predicate: p, Object: o}); err != nil {
		t.Fatal(err)
	}
}

// newTestEngine builds a rules engine without the background maintainer
// so staleness is fully test-controlled, and closes it on cleanup.
func newTestEngine(t testing.TB, geng *graphengine.Engine, rs *RuleSet) *Engine {
	t.Helper()
	e, err := New(geng, rs, Options{NoMaintainer: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(e.Close)
	return e
}

// derivedKeys snapshots the engine's rule-derived fact keys (analytics
// predicates excluded).
func derivedKeys(e *Engine) map[kg.TripleKey]bool {
	out := make(map[kg.TripleKey]bool)
	for _, k := range e.st.keys() {
		if e.rs.IsHead(k.Predicate) {
			out[k] = true
		}
	}
	return out
}

// --- naive reference evaluator ------------------------------------------
//
// An independent bottom-up fixpoint with no planner, no indexes, no
// delta machinery: solve every rule body by brute force over the full
// fact list (base triples plus facts derived so far) until nothing new
// appears. Matching semantics mirror the executor exactly: constant
// terms match under SPO identity (MapKey), variable joins under Equal —
// the asymmetry NaN exposes.

func naiveEval(g *kg.Graph, rs *RuleSet) map[kg.TripleKey]kg.Triple {
	var base []kg.Triple
	g.TriplesSnapshot(func(t kg.Triple) bool {
		base = append(base, t)
		return true
	})
	derived := make(map[kg.TripleKey]kg.Triple)
	for changed := true; changed; {
		changed = false
		facts := append([]kg.Triple(nil), base...)
		for _, t := range derived {
			facts = append(facts, t)
		}
		for _, r := range rs.Rules() {
			var rows []graphengine.Binding
			naiveMatch(facts, r.Body, graphengine.Binding{}, &rows)
			for _, row := range rows {
				h, ok := groundClause(r.Head, row)
				if !ok {
					continue
				}
				k := h.IdentityKey()
				if _, dup := derived[k]; !dup {
					derived[k] = h
					changed = true
				}
			}
		}
	}
	return derived
}

func naiveMatch(facts []kg.Triple, clauses []graphengine.Clause, b graphengine.Binding, out *[]graphengine.Binding) {
	if len(clauses) == 0 {
		row := make(graphengine.Binding, len(b))
		for k, v := range b {
			row[k] = v
		}
		*out = append(*out, row)
		return
	}
	c := clauses[0]
	for _, t := range facts {
		if t.Predicate != c.Predicate {
			continue
		}
		nb, ok := naiveUnify(c, t, b)
		if !ok {
			continue
		}
		naiveMatch(facts, clauses[1:], nb, out)
	}
}

func naiveUnify(c graphengine.Clause, t kg.Triple, b graphengine.Binding) (graphengine.Binding, bool) {
	nb := make(graphengine.Binding, len(b)+2)
	for k, val := range b {
		nb[k] = val
	}
	bind := func(name string, v kg.Value) bool {
		if cur, has := nb[name]; has {
			return cur.Equal(v)
		}
		nb[name] = v
		return true
	}
	if c.Subject.Var == "" {
		if c.Subject.Const.Entity != t.Subject {
			return nil, false
		}
	} else if !bind(c.Subject.Var, kg.EntityValue(t.Subject)) {
		return nil, false
	}
	if c.Object.Var == "" {
		if c.Object.Const.MapKey() != t.Object.MapKey() {
			return nil, false
		}
	} else if !bind(c.Object.Var, t.Object) {
		return nil, false
	}
	return nb, true
}

// requireFixpoint fails unless the engine's rule-derived store equals
// the naive reference closure over the current graph.
func requireFixpoint(t *testing.T, e *Engine, g *kg.Graph) {
	t.Helper()
	want := naiveEval(g, e.rs)
	got := derivedKeys(e)
	for k := range want {
		if !got[k] {
			t.Errorf("missing derived fact %+v", k)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("spurious derived fact %+v", k)
		}
	}
	if t.Failed() {
		t.Fatalf("store/%d reference/%d diverged", len(got), len(want))
	}
}

// --- validation and stratification --------------------------------------

func TestRuleSetValidation(t *testing.T) {
	g := kg.NewGraph()
	p := mustPred(t, g, "p")
	q := mustPred(t, g, "q")
	v := graphengine.V
	cases := []struct {
		name string
		rule Rule
	}{
		{"empty body", Rule{Head: graphengine.Clause{Subject: v("X"), Predicate: p, Object: v("X")}}},
		{"no head predicate", Rule{
			Head: graphengine.Clause{Subject: v("X"), Object: v("X")},
			Body: []graphengine.Clause{{Subject: v("X"), Predicate: q, Object: v("Y")}},
		}},
		{"range restriction", Rule{
			Head: graphengine.Clause{Subject: v("X"), Predicate: p, Object: v("Z")},
			Body: []graphengine.Clause{{Subject: v("X"), Predicate: q, Object: v("Y")}},
		}},
		{"literal head subject", Rule{
			Head: graphengine.Clause{Subject: graphengine.Term{Const: kg.IntValue(3)}, Predicate: p, Object: v("Y")},
			Body: []graphengine.Clause{{Subject: v("X"), Predicate: q, Object: v("Y")}},
		}},
		{"literal body subject", Rule{
			Head: graphengine.Clause{Subject: v("X"), Predicate: p, Object: v("X")},
			Body: []graphengine.Clause{{Subject: graphengine.Term{Const: kg.StringValue("s")}, Predicate: q, Object: v("X")}},
		}},
		{"body clause without predicate", Rule{
			Head: graphengine.Clause{Subject: v("X"), Predicate: p, Object: v("X")},
			Body: []graphengine.Clause{{Subject: v("X"), Object: v("X")}},
		}},
	}
	for _, tc := range cases {
		if _, err := NewRuleSet([]Rule{tc.rule}); err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
	if _, err := NewRuleSet(nil); err != nil {
		t.Fatalf("empty rule set rejected: %v", err)
	}
}

func TestStratification(t *testing.T) {
	g := kg.NewGraph()
	base := mustPred(t, g, "base")
	a := mustPred(t, g, "a")
	b := mustPred(t, g, "b")
	cp := mustPred(t, g, "c")
	v := graphengine.V
	clause := func(p kg.PredicateID) graphengine.Clause {
		return graphengine.Clause{Subject: v("X"), Predicate: p, Object: v("Y")}
	}
	rs, err := NewRuleSet([]Rule{
		{Head: clause(cp), Body: []graphengine.Clause{clause(b), {Subject: v("X"), Predicate: cp, Object: v("Y")}}}, // c :- b, c
		{Head: clause(b), Body: []graphengine.Clause{clause(a)}},                                                    // b :- a
		{Head: clause(a), Body: []graphengine.Clause{clause(base)}},                                                 // a :- base
	})
	if err != nil {
		t.Fatal(err)
	}
	strata := rs.Strata()
	if len(strata) != 3 {
		t.Fatalf("strata = %v, want 3", strata)
	}
	// Dependencies first: a (rule 2), then b (rule 1), then c (rule 0).
	if strata[0][0] != 2 || strata[1][0] != 1 || strata[2][0] != 0 {
		t.Fatalf("strata order = %v, want [[2] [1] [0]]", strata)
	}

	// Mutual recursion shares a stratum.
	p1 := mustPred(t, g, "p1")
	p2 := mustPred(t, g, "p2")
	rs2, err := NewRuleSet([]Rule{
		{Head: clause(p1), Body: []graphengine.Clause{clause(p2)}},
		{Head: clause(p2), Body: []graphengine.Clause{clause(p1)}},
		{Head: clause(p2), Body: []graphengine.Clause{clause(base)}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := rs2.Strata(); len(got) != 1 || len(got[0]) != 3 {
		t.Fatalf("mutually recursive strata = %v, want one stratum of 3 rules", got)
	}
}

// --- parser -------------------------------------------------------------

func TestParseRules(t *testing.T) {
	g := kg.NewGraph()
	mustPred(t, g, "reportsTo")
	mustPred(t, g, "hasOp")
	alice := mustEnt(t, g, "alice")

	rs, err := ParseRules(g, `
		# transitive closure, with a comment
		chain(X, Y) :- reportsTo(X, Y).   % trailing comment too
		chain(X, Z) :- reportsTo(X, Y), chain(Y, Z).
		flagged(X, "=") :- hasOp(X, '='). # '='-literal constants round-trip
		weird(?who, 3.5) :- hasOp(?who, nan), reportsTo(@alice, ?who).
	`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 4 {
		t.Fatalf("parsed %d rules, want 4", rs.Len())
	}
	if rs.Source() == "" {
		t.Fatal("source not recorded")
	}
	// Head predicates were created on demand.
	for _, name := range []string{"chain", "flagged", "weird"} {
		if _, ok := g.PredicateByName(name); !ok {
			t.Fatalf("head predicate %q not created", name)
		}
	}
	rules := rs.Rules()
	if rules[2].Head.Object.Const.Str != "=" || rules[2].Body[0].Object.Const.Str != "=" {
		t.Fatalf("'=' literal mangled: %+v", rules[2])
	}
	if !math.IsNaN(rules[3].Body[0].Object.Const.Flt) {
		t.Fatalf("nan literal mangled: %+v", rules[3].Body[0])
	}
	if rules[3].Body[1].Subject.Const.Entity != alice {
		t.Fatalf("@alice did not resolve: %+v", rules[3].Body[1])
	}
	if rules[3].Head.Subject.Var != "?who" {
		t.Fatalf("?who variable mangled: %+v", rules[3].Head)
	}

	for _, bad := range []string{
		`p(X, Y) :- nosuchpred(X, Y).`,     // unknown body predicate
		`p(X, Y) :- reportsTo(@ghost, Y).`, // unknown entity key
		`p(X, Y) :- reportsTo(x, Y).`,      // bare lowercase term
		`p(X, Y) :- reportsTo(X, "open.`,   // unterminated string
		`p(X, Y) reportsTo(X, Y).`,         // missing :-
		`p(X, Z) :- reportsTo(X, Y).`,      // range restriction
	} {
		if _, err := ParseRules(g, bad); err == nil {
			t.Errorf("parse %q succeeded, want error", bad)
		}
	}
}

// --- derivation ---------------------------------------------------------

// chainWorld builds a line graph a0 -reportsTo-> a1 -> ... -> a{n-1}
// with the two-rule transitive closure program.
func chainWorld(t testing.TB, n int) (*kg.Graph, *graphengine.Engine, *RuleSet, []kg.EntityID, kg.PredicateID, kg.PredicateID) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	ents := make([]kg.EntityID, n)
	for i := range ents {
		ents[i] = mustEnt(t, g, fmt.Sprintf("a%d", i))
	}
	rt := mustPred(t, g, "reportsTo")
	for i := 0; i+1 < n; i++ {
		mustAssert(t, g, ents[i], rt, kg.EntityValue(ents[i+1]))
	}
	rs, err := ParseRules(g, `
		chain(X, Y) :- reportsTo(X, Y).
		chain(X, Z) :- reportsTo(X, Y), chain(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	chain, _ := g.PredicateByName("chain")
	return g, geng, rs, ents, rt, chain.ID
}

func TestFullDerivationClosure(t *testing.T) {
	const n = 8
	g, geng, rs, ents, _, chain := chainWorld(t, n)
	e := newTestEngine(t, geng, rs)
	want := n * (n - 1) / 2
	if got := e.st.size(); got != want {
		t.Fatalf("closure size = %d, want %d", got, want)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !e.HasDerivedFact(ents[i], chain, kg.EntityValue(ents[j])) {
				t.Fatalf("chain(a%d, a%d) missing", i, j)
			}
		}
	}
	requireFixpoint(t, e, g)
	if s := e.Stats(); s.FullRuns != 1 || s.Rules != 2 || s.Facts != want {
		t.Fatalf("stats = %+v", s)
	}
}

func TestIncrementalAssertExtendsClosure(t *testing.T) {
	const n = 6
	g, geng, rs, ents, rt, chain := chainWorld(t, n)
	e := newTestEngine(t, geng, rs)
	// Append a new tail entity: closure gains n new pairs.
	tail := mustEnt(t, g, "tail")
	mustAssert(t, g, ents[n-1], rt, kg.EntityValue(tail))
	e.Sync()
	if !e.HasDerivedFact(ents[0], chain, kg.EntityValue(tail)) {
		t.Fatal("chain(a0, tail) missing after incremental assert")
	}
	requireFixpoint(t, e, g)
	if s := e.Stats(); s.FullRuns != 1 {
		t.Fatalf("incremental assert triggered a full run: %+v", s)
	}
}

func TestIncrementalRetractSplitsClosure(t *testing.T) {
	const n = 7
	g, geng, rs, ents, rt, chain := chainWorld(t, n)
	e := newTestEngine(t, geng, rs)
	// Cut the chain in the middle: no pair may span the cut.
	cut := n / 2
	if !g.Retract(kg.Triple{Subject: ents[cut], Predicate: rt, Object: kg.EntityValue(ents[cut+1])}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	if e.HasDerivedFact(ents[0], chain, kg.EntityValue(ents[n-1])) {
		t.Fatal("chain(a0, a6) survived the cut")
	}
	if !e.HasDerivedFact(ents[0], chain, kg.EntityValue(ents[cut])) {
		t.Fatal("chain(a0, a_cut) lost below the cut")
	}
	requireFixpoint(t, e, g)
	if s := e.Stats(); s.FullRuns != 1 {
		t.Fatalf("incremental retract triggered a full run: %+v", s)
	}
}

// TestRetractKillsSelfSupportGhost is the well-foundedness fixture: in a
// two-node cycle the closure facts can all justify each other, so a
// cascade that trusted surviving supports (or skipped the store copy of
// a base-retracted fact) would leave a ghost closure behind after the
// cycle is cut.
func TestRetractKillsSelfSupportGhost(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	rt := mustPred(t, g, "reportsTo")
	mustAssert(t, g, a, rt, kg.EntityValue(b))
	mustAssert(t, g, b, rt, kg.EntityValue(a))
	rs, err := ParseRules(g, `
		chain(X, Y) :- reportsTo(X, Y).
		chain(X, Z) :- reportsTo(X, Y), chain(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, geng, rs)
	// Cycle closure: chain(a,b), chain(b,a), chain(a,a), chain(b,b).
	if e.st.size() != 4 {
		t.Fatalf("cycle closure size = %d, want 4", e.st.size())
	}
	if !g.Retract(kg.Triple{Subject: a, Predicate: rt, Object: kg.EntityValue(b)}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	chain, _ := g.PredicateByName("chain")
	if e.HasDerivedFact(a, chain.ID, kg.EntityValue(a)) || e.HasDerivedFact(b, chain.ID, kg.EntityValue(b)) {
		t.Fatal("self-loop closure facts survived as self-supporting ghosts")
	}
	if !e.HasDerivedFact(b, chain.ID, kg.EntityValue(a)) {
		t.Fatal("chain(b, a) lost; its base edge is intact")
	}
	requireFixpoint(t, e, g)
}

// TestBaseOverlapRetract: a head-predicate fact asserted in the base
// graph too. Retracting the base copy must keep the fact visible when
// it is still derivable, and re-derivation must not resurrect it
// through its own (retracted) base copy.
func TestBaseOverlapRetract(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	rt := mustPred(t, g, "reportsTo")
	mustAssert(t, g, a, rt, kg.EntityValue(b))
	rs, err := ParseRules(g, `chain(X, Y) :- reportsTo(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	chainPred, _ := g.PredicateByName("chain")
	chain := chainPred.ID
	// Base-assert the same fact the rule derives.
	mustAssert(t, g, a, chain, kg.EntityValue(b))
	e := newTestEngine(t, geng, rs)
	view := e.View()
	if !view.HasFact(a, chain, kg.EntityValue(b)) {
		t.Fatal("fact invisible while doubly asserted")
	}
	// Retract the base copy: still derivable from reportsTo.
	if !g.Retract(kg.Triple{Subject: a, Predicate: chain, Object: kg.EntityValue(b)}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	if !view.HasFact(a, chain, kg.EntityValue(b)) {
		t.Fatal("derivable fact lost with its base copy")
	}
	// Now retract the supporting edge: the fact must disappear entirely.
	if !g.Retract(kg.Triple{Subject: a, Predicate: rt, Object: kg.EntityValue(b)}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	if view.HasFact(a, chain, kg.EntityValue(b)) {
		t.Fatal("underivable fact survived")
	}
	requireFixpoint(t, e, g)
}

func TestFloorPassTriggersFullRederive(t *testing.T) {
	const n = 5
	g, geng, rs, ents, rt, _ := chainWorld(t, n)
	e := newTestEngine(t, geng, rs)
	runs := e.Stats().FullRuns
	// Mutate, then truncate the log past the engine's cursor before it
	// pumps: the pull comes back incomplete and the engine must rebuild.
	tail := mustEnt(t, g, "tail")
	mustAssert(t, g, ents[n-1], rt, kg.EntityValue(tail))
	g.TruncateLog(g.LastSeq())
	e.Sync()
	if got := e.Stats().FullRuns; got != runs+1 {
		t.Fatalf("full runs = %d, want %d after floor pass", got, runs+1)
	}
	requireFixpoint(t, e, g)
}

// --- adversarial value fixtures -----------------------------------------

// TestNaNRuleSemantics: NaN-valued facts flow into single-occurrence
// head variables but never join (Equal semantics), and incremental
// maintenance must agree with from-scratch evaluation on both counts —
// delta substitution is where a careless implementation turns a NaN
// join variable into an identity-matching constant.
func TestNaNRuleSemantics(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	score := mustPred(t, g, "score")
	alsoScore := mustPred(t, g, "alsoScore")
	rs, err := ParseRules(g, `
		copied(X, V) :- score(X, V).
		agreed(X, Y) :- score(X, V), alsoScore(Y, V).
	`)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, geng, rs)
	copied, _ := g.PredicateByName("copied")
	agreed, _ := g.PredicateByName("agreed")

	nan := kg.FloatValue(math.NaN())
	mustAssert(t, g, a, score, nan)
	mustAssert(t, g, b, alsoScore, nan)
	e.Sync()
	// Single occurrence: the NaN propagates into the head.
	if !e.HasDerivedFact(a, copied.ID, nan) {
		t.Fatal("copied(a, NaN) missing")
	}
	// Join on NaN: Equal(NaN, NaN) is false, so no agreement.
	if e.HasDerivedFact(a, agreed.ID, kg.EntityValue(b)) {
		t.Fatal("agreed(a, b) derived through a NaN join")
	}
	requireFixpoint(t, e, g)

	// Retract the NaN fact: the copied fact must go too.
	if !g.Retract(kg.Triple{Subject: a, Predicate: score, Object: nan}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	if e.HasDerivedFact(a, copied.ID, nan) {
		t.Fatal("copied(a, NaN) survived its source")
	}
	requireFixpoint(t, e, g)
}

// TestOperatorLiteralConstants: values that look like query/rule syntax
// ('=', ':-', commas) are plain data end to end.
func TestOperatorLiteralConstants(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	hasOp := mustPred(t, g, "hasOp")
	mustAssert(t, g, a, hasOp, kg.StringValue("="))
	mustAssert(t, g, b, hasOp, kg.StringValue(":- , \"quoted\""))
	rs, err := ParseRules(g, `
		eqOp(X, "matched") :- hasOp(X, "=").
		weirdOp(X, V) :- hasOp(X, V).
	`)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, geng, rs)
	eqOp, _ := g.PredicateByName("eqOp")
	weirdOp, _ := g.PredicateByName("weirdOp")
	if !e.HasDerivedFact(a, eqOp.ID, kg.StringValue("matched")) {
		t.Fatal(`eqOp(a, "matched") missing`)
	}
	if e.HasDerivedFact(b, eqOp.ID, kg.StringValue("matched")) {
		t.Fatal(`eqOp(b, ...) derived; ':- ,' literal matched "="`)
	}
	if !e.HasDerivedFact(b, weirdOp.ID, kg.StringValue(":- , \"quoted\"")) {
		t.Fatal("operator-soup literal mangled in flight")
	}
	requireFixpoint(t, e, g)
}
