package rules

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// TestDerivedQueryTransparency: with the rules engine attached, derived
// predicates answer through the normal conjunctive surface, join with
// base predicates, and keep the deterministic stream order cursors rely
// on.
func TestDerivedQueryTransparency(t *testing.T) {
	const n = 6
	g, geng, rs, ents, _, chain := chainWorld(t, n)
	e := newTestEngine(t, geng, rs)
	geng.AttachDerived(e)
	dept := mustPred(t, g, "dept")
	mustAssert(t, g, ents[n-1], dept, kg.StringValue("infra"))

	// Join a derived predicate with a base one: everyone transitively
	// under the infra head.
	clauses := []graphengine.Clause{
		{Subject: graphengine.V("X"), Predicate: chain, Object: graphengine.V("Boss")},
		{Subject: graphengine.V("Boss"), Predicate: dept, Object: graphengine.Term{Const: kg.StringValue("infra")}},
	}
	var rows []graphengine.Binding
	for b, err := range geng.StreamConjunctive(clauses, graphengine.QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, b)
	}
	if len(rows) != n-1 {
		t.Fatalf("join rows = %d, want %d", len(rows), n-1)
	}

	// Determinism: two full enumerations stream identically.
	var again []graphengine.Binding
	for b, err := range geng.StreamConjunctive(clauses, graphengine.QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		again = append(again, b)
	}
	if len(again) != len(rows) {
		t.Fatalf("re-enumeration size %d != %d", len(again), len(rows))
	}
	for i := range rows {
		if fmt.Sprint(graphengine.BindingKey(rows[i])) != fmt.Sprint(graphengine.BindingKey(again[i])) {
			t.Fatalf("row %d order unstable", i)
		}
	}
}

// TestHostileCursorWalkOverDerived pages through a derived predicate one
// row at a time, then resumes from a cursor whose row has since been
// un-derived — the stream must stay duplicate-free and terminate, and
// the vanished-cursor resume must not crash or re-deliver.
func TestHostileCursorWalkOverDerived(t *testing.T) {
	const n = 7
	g, geng, rs, ents, rt, chain := chainWorld(t, n)
	e := newTestEngine(t, geng, rs)
	geng.AttachDerived(e)
	clauses := []graphengine.Clause{
		{Subject: graphengine.V("X"), Predicate: chain, Object: graphengine.V("Y")},
	}

	// Full enumeration as ground truth.
	var full []string
	for b, err := range geng.StreamConjunctive(clauses, graphengine.QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		full = append(full, fmt.Sprint(graphengine.BindingKey(b)))
	}
	if want := n * (n - 1) / 2; len(full) != want {
		t.Fatalf("full walk = %d rows, want %d", len(full), want)
	}

	// Cursor walk, limit 1 per page.
	var walked []string
	var cursor []kg.ValueKey
	for {
		got := 0
		for b, err := range geng.StreamConjunctive(clauses, graphengine.QueryOptions{Limit: 1, Cursor: cursor}) {
			if err != nil {
				t.Fatal(err)
			}
			walked = append(walked, fmt.Sprint(graphengine.BindingKey(b)))
			cursor = graphengine.BindingKey(b)
			got++
		}
		if got == 0 {
			break
		}
	}
	if len(walked) != len(full) {
		t.Fatalf("cursor walk = %d rows, full = %d", len(walked), len(full))
	}
	for i := range full {
		if walked[i] != full[i] {
			t.Fatalf("cursor walk diverged at row %d: %s != %s", i, walked[i], full[i])
		}
	}
	seen := make(map[string]bool, len(walked))
	for _, k := range walked {
		if seen[k] {
			t.Fatalf("cursor walk re-delivered %s", k)
		}
		seen[k] = true
	}

	// Hostile resume: take a cursor mid-stream, then cut the chain so
	// the cursor row (and much of the stream) is un-derived.
	var mid []kg.ValueKey
	count := 0
	for b, err := range geng.StreamConjunctive(clauses, graphengine.QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		count++
		if count == len(full)/2 {
			mid = graphengine.BindingKey(b)
			break
		}
	}
	if !g.Retract(kg.Triple{Subject: ents[0], Predicate: rt, Object: kg.EntityValue(ents[1])}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	resumed := 0
	for _, err := range geng.StreamConjunctive(clauses, graphengine.QueryOptions{Cursor: mid}) {
		if err != nil {
			t.Fatal(err)
		}
		resumed++
	}
	// The remainder must be bounded by the new answer-set size (a
	// vanished cursor may legally yield an empty or shifted remainder —
	// never duplicates beyond the live set, never a hang).
	if live := (n - 1) * (n - 2) / 2; resumed > live {
		t.Fatalf("hostile resume yielded %d rows, live set only %d", resumed, live)
	}
}

// TestSubscriptionOverDerivedPredicate: a standing query over a rule
// head updates live — adds when new facts derive, retracts when their
// support is retracted — through the OnDelta -> ApplyDerivedDeltas
// bridge.
func TestSubscriptionOverDerivedPredicate(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	c := mustEnt(t, g, "c")
	rt := mustPred(t, g, "reportsTo")
	mustAssert(t, g, a, rt, kg.EntityValue(b))
	rs, err := ParseRules(g, `
		chain(X, Y) :- reportsTo(X, Y).
		chain(X, Z) :- reportsTo(X, Y), chain(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(geng, rs, Options{NoMaintainer: true, OnDelta: geng.ApplyDerivedDeltas})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	geng.AttachDerived(e)
	chain, _ := g.PredicateByName("chain")

	sub, err := geng.Subscribe([]graphengine.Clause{
		{Subject: graphengine.Term{Const: kg.EntityValue(a)}, Predicate: chain.ID, Object: graphengine.V("Y")},
	}, graphengine.SubscribeOptions{Coalesce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	recv := func() graphengine.SubscriptionEvent {
		t.Helper()
		select {
		case ev, ok := <-sub.C:
			if !ok {
				t.Fatalf("subscription closed: %v", sub.Err())
			}
			return ev
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for subscription event")
		}
		panic("unreachable")
	}

	ev := recv()
	if !ev.Reset || len(ev.Adds) != 1 {
		t.Fatalf("snapshot event = %+v, want Reset with chain(a,b)", ev)
	}

	// Extend the chain: chain(a,c) should arrive as an add.
	mustAssert(t, g, b, rt, kg.EntityValue(c))
	e.Sync()
	deadline := time.Now().Add(5 * time.Second)
	got := make(map[string]bool)
	for len(got) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no add event for chain(a,c)")
		}
		ev = recv()
		for _, add := range ev.Adds {
			got[fmt.Sprint(graphengine.BindingKey(add))] = true
		}
	}

	// Cut a -> b: both chain(a,b) and chain(a,c) retract.
	if !g.Retract(kg.Triple{Subject: a, Predicate: rt, Object: kg.EntityValue(b)}) {
		t.Fatal("retract failed")
	}
	e.Sync()
	rets := 0
	for rets < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("retract events incomplete: %d of 2", rets)
		}
		ev = recv()
		rets += len(ev.Retracts)
	}
}

// TestIncrementalEqualsFromScratchUnderChurn is the acceptance property
// test: randomized concurrent assert/retract churn against a maintained
// engine, with concurrent readers, must land — at quiescence — on
// exactly the fixpoint a from-scratch derivation (the naive reference
// evaluator) computes over the final graph. Run under -race this also
// exercises the store/view locking.
func TestIncrementalEqualsFromScratchUnderChurn(t *testing.T) {
	const (
		entities = 24
		writers  = 4
		opsEach  = 150
	)
	g := kg.NewGraph()
	geng := graphengine.New(g)
	ents := make([]kg.EntityID, entities)
	for i := range ents {
		ents[i] = mustEnt(t, g, fmt.Sprintf("n%d", i))
	}
	rt := mustPred(t, g, "reportsTo")
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < entities; i++ {
		mustAssert(t, g, ents[rng.Intn(entities)], rt, kg.EntityValue(ents[rng.Intn(entities)]))
	}
	rs, err := ParseRules(g, `
		chain(X, Y) :- reportsTo(X, Y).
		chain(X, Z) :- reportsTo(X, Y), chain(Y, Z).
	`)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(geng, rs, Options{Poll: time.Millisecond, OnDelta: geng.ApplyDerivedDeltas})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	geng.AttachDerived(e)
	chain, _ := g.PredicateByName("chain")

	var wg sync.WaitGroup
	stopRead := make(chan struct{})
	// Concurrent readers over the derived predicate, racing the
	// maintainer's store writes.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stopRead:
					return
				default:
				}
				for _, err := range geng.StreamConjunctive([]graphengine.Clause{
					{Subject: graphengine.V("X"), Predicate: chain.ID, Object: graphengine.V("Y")},
				}, graphengine.QueryOptions{Limit: 50}) {
					if err != nil {
						return
					}
				}
			}
		}()
	}
	var writeWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(seed int64) {
			defer writeWG.Done()
			wr := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				tr := kg.Triple{
					Subject:   ents[wr.Intn(entities)],
					Predicate: rt,
					Object:    kg.EntityValue(ents[wr.Intn(entities)]),
				}
				if wr.Intn(3) == 0 {
					g.Retract(tr)
				} else {
					_ = g.Assert(tr)
				}
			}
		}(int64(100 + w))
	}
	writeWG.Wait()
	close(stopRead)
	wg.Wait()

	e.Sync()
	requireFixpoint(t, e, g)
	if s := e.Stats(); s.Lag != 0 {
		t.Fatalf("lag = %d after Sync on a quiescent graph", s.Lag)
	}
}
