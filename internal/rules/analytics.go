package rules

import (
	"fmt"
	"sort"

	"saga/internal/kg"
)

// In-graph analytics: whole-graph algorithms that run over the engine's
// CSR adjacency snapshot (or the predicate index, for sameAs closure)
// and materialize their result as facts of a derived predicate. The
// output predicate behaves exactly like a rule head for readers —
// queryable through every surface, usable in rule bodies (propagation
// and cascades treat analytics facts like base facts) — but its
// contents are replaced wholesale by each Derive* call and go stale in
// between: DeriveReport.Watermark records the graph sequence the result
// reflects.

// DeriveReport describes one analytics materialization.
type DeriveReport struct {
	// Facts is the number of facts the output predicate now holds.
	Facts int
	// Watermark is the graph mutation sequence the derivation reflects.
	Watermark uint64
}

// DeriveComponents materializes connected components of the engine's
// adjacency snapshot (undirected, all entity-to-entity edges) under the
// out predicate: one fact (member, out, representative) per entity with
// at least one edge, where the representative is the smallest entity ID
// in the component. Facts are emitted in ascending member order.
func (e *Engine) DeriveComponents(out kg.PredicateID) (DeriveReport, error) {
	if err := e.registerExternal(out); err != nil {
		return DeriveReport{}, err
	}
	snap := e.geng.Snapshot()
	n := e.g.NumEntities()
	label := make([]kg.EntityID, n+1)
	var stack []kg.EntityID
	facts := make([]kg.Triple, 0, n)
	// Ascending seed order makes the first unvisited node of each
	// component its minimum ID, so the seed is the representative.
	for id := kg.EntityID(1); int(id) <= n; id++ {
		if label[id] != 0 || snap.Degree(id) == 0 {
			continue
		}
		rep := id
		label[id] = rep
		stack = append(stack[:0], id)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range snap.Neighbors(v) {
				if int(w) > n || label[w] != 0 {
					continue
				}
				label[w] = rep
				stack = append(stack, w)
			}
		}
	}
	for id := kg.EntityID(1); int(id) <= n; id++ {
		if label[id] == 0 {
			continue
		}
		facts = append(facts, kg.Triple{Subject: id, Predicate: out, Object: kg.EntityValue(label[id])})
	}
	e.replaceExternal(out, facts)
	return DeriveReport{Facts: len(facts), Watermark: snap.Seq()}, nil
}

// DeriveSameAsClosure materializes the equivalence closure of the src
// predicate's base entity-to-entity facts under out: every entity that
// occurs in a src edge gets one fact (entity, out, canonical) where
// canonical is the smallest entity ID of its equivalence class (the
// class representative maps to itself). Facts are emitted in ascending
// entity order.
func (e *Engine) DeriveSameAsClosure(src, out kg.PredicateID) (DeriveReport, error) {
	if src == kg.NoPredicate {
		return DeriveReport{}, fmt.Errorf("rules: sameas closure: source predicate required")
	}
	if err := e.registerExternal(out); err != nil {
		return DeriveReport{}, err
	}
	wm := e.g.LastSeq()
	parent := make(map[kg.EntityID]kg.EntityID)
	var find func(kg.EntityID) kg.EntityID
	find = func(x kg.EntityID) kg.EntityID {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	e.g.PredicateEntriesFunc(src, func(obj kg.Value, subj kg.EntityID) bool {
		if !obj.IsEntity() {
			return true
		}
		ra, rb := find(subj), find(obj.Entity)
		if ra != rb {
			// Union by ID: the smaller root wins, so every root is its
			// class minimum without a second pass.
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
		return true
	})
	members := make([]kg.EntityID, 0, len(parent))
	for m := range parent {
		members = append(members, m)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	facts := make([]kg.Triple, 0, len(members))
	for _, m := range members {
		facts = append(facts, kg.Triple{Subject: m, Predicate: out, Object: kg.EntityValue(find(m))})
	}
	e.replaceExternal(out, facts)
	return DeriveReport{Facts: len(facts), Watermark: wm}, nil
}

// DeriveKHop materializes k-hop reachability over the adjacency
// snapshot under out: one fact (source, out, node) for every node
// within 1..k hops of a source (sources themselves are excluded unless
// reachable through a cycle). Facts are emitted in ascending (source,
// node) order.
func (e *Engine) DeriveKHop(out kg.PredicateID, sources []kg.EntityID, k int) (DeriveReport, error) {
	if k <= 0 {
		return DeriveReport{}, fmt.Errorf("rules: khop: k must be positive")
	}
	if len(sources) == 0 {
		return DeriveReport{}, fmt.Errorf("rules: khop: at least one source required")
	}
	if err := e.registerExternal(out); err != nil {
		return DeriveReport{}, err
	}
	snap := e.geng.Snapshot()
	srcs := append([]kg.EntityID(nil), sources...)
	sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
	var facts []kg.Triple
	for i, src := range srcs {
		if i > 0 && srcs[i-1] == src {
			continue
		}
		dist := map[kg.EntityID]int{src: 0}
		frontier := []kg.EntityID{src}
		var reached []kg.EntityID
		for d := 1; d <= k && len(frontier) > 0; d++ {
			var next []kg.EntityID
			for _, v := range frontier {
				for _, w := range snap.Neighbors(v) {
					if _, seen := dist[w]; seen {
						continue
					}
					dist[w] = d
					next = append(next, w)
					reached = append(reached, w)
				}
			}
			frontier = next
		}
		sort.Slice(reached, func(a, b int) bool { return reached[a] < reached[b] })
		for _, w := range reached {
			facts = append(facts, kg.Triple{Subject: src, Predicate: out, Object: kg.EntityValue(w)})
		}
	}
	e.replaceExternal(out, facts)
	return DeriveReport{Facts: len(facts), Watermark: snap.Seq()}, nil
}

// registerExternal validates and registers an analytics output
// predicate. A rule head cannot double as an analytics output — the two
// maintenance regimes (fixpoint vs wholesale replacement) would fight
// over the same facts.
func (e *Engine) registerExternal(out kg.PredicateID) error {
	if out == kg.NoPredicate {
		return fmt.Errorf("rules: analytics: output predicate required")
	}
	if e.rs.IsHead(out) {
		return fmt.Errorf("rules: analytics: predicate %d is a rule head", out)
	}
	e.extMu.Lock()
	e.external[out] = struct{}{}
	e.extMu.Unlock()
	return nil
}

// replaceExternal swaps the out predicate's stored facts for the given
// set, diffing against the previous materialization: removed facts run
// through the same cascade + rederive machinery as base retracts (rules
// may consume analytics predicates in their bodies), added facts seed
// the propagation worklist, and the net visibility deltas reach the
// subscription hub.
func (e *Engine) replaceExternal(out kg.PredicateID, facts []kg.Triple) {
	e.mu.Lock()
	defer e.mu.Unlock()
	oldKeys := make(map[kg.TripleKey]kg.Triple)
	for _, t := range e.st.predFacts(out) {
		oldKeys[t.IdentityKey()] = t
	}
	var adds, rets []kg.Triple
	var work []kg.Triple
	for _, t := range facts {
		k := t.IdentityKey()
		if _, had := oldKeys[k]; had {
			delete(oldKeys, k)
			continue
		}
		if e.st.insert(t, support{rule: externalRule}) {
			e.derivations.Add(1)
			if !e.g.HasFact(t.Subject, t.Predicate, t.Object) {
				adds = append(adds, t)
			}
			work = append(work, t)
		}
	}
	adds = e.propagateLocked(work, adds)
	// Removed facts run the base-retract flow: remove the stored copy,
	// cascade dependents, one repair pass over the union of the damage.
	// No rule has this head predicate, so the removed facts themselves
	// are never reinstated.
	pending := make(map[kg.TripleKey]kg.Triple)
	for k := range oldKeys {
		e.cascadeLocked(k, pending)
	}
	adds, rets = e.rederivePendingLocked(pending, adds, rets)
	e.notifyLocked(adds, rets)
}
