package rules

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// ParseRules parses a rule program and resolves its names against g,
// returning a validated RuleSet. The concrete syntax is the usual
// Datalog surface, one rule per '.':
//
//	chain(X, Y) :- reportsTo(X, Y).
//	chain(X, Z) :- reportsTo(X, Y), chain(Y, Z).
//	# comments run to end of line ('%' works too)
//
// Atoms are binary — pred(Subject, Object) — matching the triple model.
// Terms are variables (initial uppercase letter, '_', or a '?' prefix:
// X, _n, ?who) or constants: @key references the entity with that kg
// key, "..." and '...' are string literals (so "=" and other operator
// spellings are plain data), integers and floats are numeric literals,
// nan is the float NaN, and true/false are booleans.
//
// Resolution is two-phase so a body may reference a head defined later
// in the program: head predicate names are resolved first — created in
// g when missing, since rules introduce new predicates — then body
// predicate names must resolve to an existing predicate or one of the
// heads. Entity keys must already exist; rules cannot invent entities.
func ParseRules(g *kg.Graph, text string) (*RuleSet, error) {
	raw, err := parseProgram(text)
	if err != nil {
		return nil, err
	}
	// Phase one: head predicate names, created on demand.
	headIDs := make(map[string]kg.PredicateID)
	for _, r := range raw {
		if _, done := headIDs[r.head.pred]; done {
			continue
		}
		if p, ok := g.PredicateByName(r.head.pred); ok {
			headIDs[r.head.pred] = p.ID
			continue
		}
		id, err := g.AddPredicate(kg.Predicate{Name: r.head.pred})
		if err != nil {
			return nil, fmt.Errorf("rules: head predicate %q: %w", r.head.pred, err)
		}
		headIDs[r.head.pred] = id
	}
	// Phase two: full resolution.
	rules := make([]Rule, 0, len(raw))
	for _, r := range raw {
		head, err := resolveAtom(g, headIDs, r.head)
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %w", r.line, err)
		}
		body := make([]graphengine.Clause, 0, len(r.body))
		for _, a := range r.body {
			c, err := resolveAtom(g, headIDs, a)
			if err != nil {
				return nil, fmt.Errorf("rules: line %d: %w", r.line, err)
			}
			body = append(body, c)
		}
		rules = append(rules, Rule{Head: head, Body: body})
	}
	rs, err := NewRuleSet(rules)
	if err != nil {
		return nil, err
	}
	rs.source = text
	return rs, nil
}

// rawAtom and rawRule are the name-level AST between parse and resolve.
type rawAtom struct {
	pred string
	subj rawTerm
	obj  rawTerm
}

type rawTerm struct {
	variable string // non-empty for variables
	entity   string // non-empty for @key references
	lit      kg.Value
	isLit    bool
}

type rawRule struct {
	line int
	head rawAtom
	body []rawAtom
}

func resolveAtom(g *kg.Graph, headIDs map[string]kg.PredicateID, a rawAtom) (graphengine.Clause, error) {
	var c graphengine.Clause
	if id, ok := headIDs[a.pred]; ok {
		c.Predicate = id
	} else if p, ok := g.PredicateByName(a.pred); ok {
		c.Predicate = p.ID
	} else {
		return c, fmt.Errorf("unknown predicate %q", a.pred)
	}
	var err error
	if c.Subject, err = resolveTerm(g, a.subj); err != nil {
		return c, err
	}
	if c.Object, err = resolveTerm(g, a.obj); err != nil {
		return c, err
	}
	return c, nil
}

func resolveTerm(g *kg.Graph, t rawTerm) (graphengine.Term, error) {
	switch {
	case t.variable != "":
		return graphengine.Term{Var: t.variable}, nil
	case t.entity != "":
		ent, ok := g.EntityByKey(t.entity)
		if !ok {
			return graphengine.Term{}, fmt.Errorf("unknown entity key %q", t.entity)
		}
		return graphengine.Term{Const: kg.EntityValue(ent.ID)}, nil
	case t.isLit:
		return graphengine.Term{Const: t.lit}, nil
	default:
		return graphengine.Term{}, fmt.Errorf("empty term")
	}
}

// parseProgram tokenizes and parses the program into raw rules.
func parseProgram(text string) ([]rawRule, error) {
	p := &parser{src: text, line: 1}
	var rules []rawRule
	for {
		p.skipSpace()
		if p.eof() {
			return rules, nil
		}
		start := p.line
		head, err := p.atom()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":-"); err != nil {
			return nil, err
		}
		var body []rawAtom
		for {
			a, err := p.atom()
			if err != nil {
				return nil, err
			}
			body = append(body, a)
			p.skipSpace()
			if p.consume(",") {
				continue
			}
			break
		}
		if err := p.expect("."); err != nil {
			return nil, err
		}
		rules = append(rules, rawRule{line: start, head: head, body: body})
	}
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("rules: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

// skipSpace advances past whitespace and comments ('#' and '%' to end
// of line).
func (p *parser) skipSpace() {
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		switch {
		case ch == '\n':
			p.line++
			p.pos++
		case ch == ' ' || ch == '\t' || ch == '\r':
			p.pos++
		case ch == '#' || ch == '%':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *parser) consume(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *parser) expect(tok string) error {
	if !p.consume(tok) {
		return p.errf("expected %q", tok)
	}
	return nil
}

// ident reads an identifier: letters, digits, '_', '-', ':' after an
// initial letter or '_' (':' admits namespaced predicate names).
func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		ch := rune(p.src[p.pos])
		if unicode.IsLetter(ch) || ch == '_' || (p.pos > start && (unicode.IsDigit(ch) || ch == '-' || ch == ':')) {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) atom() (rawAtom, error) {
	var a rawAtom
	name, err := p.ident()
	if err != nil {
		return a, err
	}
	a.pred = name
	if err := p.expect("("); err != nil {
		return a, err
	}
	if a.subj, err = p.term(); err != nil {
		return a, err
	}
	if err := p.expect(","); err != nil {
		return a, err
	}
	if a.obj, err = p.term(); err != nil {
		return a, err
	}
	if err := p.expect(")"); err != nil {
		return a, err
	}
	return a, nil
}

func (p *parser) term() (rawTerm, error) {
	p.skipSpace()
	if p.eof() {
		return rawTerm{}, p.errf("expected term")
	}
	ch := p.src[p.pos]
	switch {
	case ch == '?':
		p.pos++
		name, err := p.ident()
		if err != nil {
			return rawTerm{}, err
		}
		return rawTerm{variable: "?" + name}, nil
	case ch == '@':
		p.pos++
		key, err := p.ident()
		if err != nil {
			return rawTerm{}, err
		}
		return rawTerm{entity: key}, nil
	case ch == '"' || ch == '\'':
		s, err := p.quoted(ch)
		if err != nil {
			return rawTerm{}, err
		}
		return rawTerm{isLit: true, lit: kg.StringValue(s)}, nil
	case ch == '-' || (ch >= '0' && ch <= '9'):
		return p.number()
	default:
		name, err := p.ident()
		if err != nil {
			return rawTerm{}, err
		}
		switch name {
		case "true":
			return rawTerm{isLit: true, lit: kg.BoolValue(true)}, nil
		case "false":
			return rawTerm{isLit: true, lit: kg.BoolValue(false)}, nil
		case "nan":
			return rawTerm{isLit: true, lit: kg.FloatValue(math.NaN())}, nil
		}
		first := rune(name[0])
		if unicode.IsUpper(first) || first == '_' {
			return rawTerm{variable: name}, nil
		}
		return rawTerm{}, p.errf("bare term %q: variables start uppercase (or use ?name); constants are @entityKey, quoted strings, numbers, true/false, nan", name)
	}
}

// quoted reads a string delimited by quote, with backslash escapes for
// the quote character and backslash itself.
func (p *parser) quoted(quote byte) (string, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		switch ch {
		case quote:
			p.pos++
			return sb.String(), nil
		case '\\':
			if p.pos+1 >= len(p.src) {
				return "", p.errf("unterminated escape")
			}
			sb.WriteByte(p.src[p.pos+1])
			p.pos += 2
		case '\n':
			return "", p.errf("unterminated string")
		default:
			sb.WriteByte(ch)
			p.pos++
		}
	}
	return "", p.errf("unterminated string")
}

func (p *parser) number() (rawTerm, error) {
	start := p.pos
	if p.src[p.pos] == '-' {
		p.pos++
	}
	isFloat := false
	for p.pos < len(p.src) {
		ch := p.src[p.pos]
		if ch >= '0' && ch <= '9' {
			p.pos++
			continue
		}
		if (ch == '.' || ch == 'e' || ch == 'E' || ch == '+' || ch == '-') && p.pos > start {
			// '.' terminates a rule, so only treat it as a decimal point
			// when a digit follows.
			if ch == '.' && (p.pos+1 >= len(p.src) || p.src[p.pos+1] < '0' || p.src[p.pos+1] > '9') {
				break
			}
			if ch == '+' || ch == '-' {
				prev := p.src[p.pos-1]
				if prev != 'e' && prev != 'E' {
					break
				}
			}
			isFloat = true
			p.pos++
			continue
		}
		break
	}
	lit := p.src[start:p.pos]
	if isFloat {
		f, err := strconv.ParseFloat(lit, 64)
		if err != nil {
			return rawTerm{}, p.errf("bad number %q", lit)
		}
		return rawTerm{isLit: true, lit: kg.FloatValue(f)}, nil
	}
	n, err := strconv.ParseInt(lit, 10, 64)
	if err != nil {
		return rawTerm{}, p.errf("bad number %q", lit)
	}
	return rawTerm{isLit: true, lit: kg.IntValue(n)}, nil
}
