package rules

import (
	"fmt"
	"testing"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

func TestDeriveComponents(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	link := mustPred(t, g, "link")
	// Two components {a,b,c} and {d,e}; f isolated.
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	c := mustEnt(t, g, "c")
	d := mustEnt(t, g, "d")
	ee := mustEnt(t, g, "e")
	f := mustEnt(t, g, "f")
	mustAssert(t, g, a, link, kg.EntityValue(b))
	mustAssert(t, g, b, link, kg.EntityValue(c))
	mustAssert(t, g, d, link, kg.EntityValue(ee))

	rs, err := NewRuleSet(nil)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, geng, rs)
	comp := mustPred(t, g, "component")
	rep, err := e.DeriveComponents(comp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Facts != 5 {
		t.Fatalf("component facts = %d, want 5 (f is isolated)", rep.Facts)
	}
	for _, m := range []kg.EntityID{a, b, c} {
		if !e.HasDerivedFact(m, comp, kg.EntityValue(a)) {
			t.Fatalf("component(%d) != a", m)
		}
	}
	for _, m := range []kg.EntityID{d, ee} {
		if !e.HasDerivedFact(m, comp, kg.EntityValue(d)) {
			t.Fatalf("component(%d) != d", m)
		}
	}
	if e.DerivedFactCount(f, comp) != 0 {
		t.Fatal("isolated entity got a component fact")
	}

	// Merge the components and re-derive: the old labels are replaced.
	mustAssert(t, g, c, link, kg.EntityValue(d))
	rep, err = e.DeriveComponents(comp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Facts != 5 {
		t.Fatalf("merged component facts = %d, want 5", rep.Facts)
	}
	for _, m := range []kg.EntityID{a, b, c, d, ee} {
		if !e.HasDerivedFact(m, comp, kg.EntityValue(a)) {
			t.Fatalf("merged component(%d) != a", m)
		}
	}
	if e.HasDerivedFact(d, comp, kg.EntityValue(d)) {
		t.Fatal("stale component(d)=d fact survived the re-derivation")
	}
}

func TestDeriveSameAsClosure(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	sameAs := mustPred(t, g, "sameAs")
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	c := mustEnt(t, g, "c")
	d := mustEnt(t, g, "d")
	ee := mustEnt(t, g, "e")
	// a=b, c=b (so {a,b,c}), d=e. Directions are irrelevant.
	mustAssert(t, g, a, sameAs, kg.EntityValue(b))
	mustAssert(t, g, c, sameAs, kg.EntityValue(b))
	mustAssert(t, g, ee, sameAs, kg.EntityValue(d))

	rs, _ := NewRuleSet(nil)
	e := newTestEngine(t, geng, rs)
	canon := mustPred(t, g, "canonical")
	rep, err := e.DeriveSameAsClosure(sameAs, canon)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Facts != 5 {
		t.Fatalf("closure facts = %d, want 5", rep.Facts)
	}
	for _, m := range []kg.EntityID{a, b, c} {
		if !e.HasDerivedFact(m, canon, kg.EntityValue(a)) {
			t.Fatalf("canonical(%d) != a", m)
		}
	}
	for _, m := range []kg.EntityID{d, ee} {
		if !e.HasDerivedFact(m, canon, kg.EntityValue(d)) {
			t.Fatalf("canonical(%d) != d", m)
		}
	}
}

func TestDeriveKHop(t *testing.T) {
	const n = 6
	g, geng, _, ents, _, _ := chainWorld(t, n)
	rs, _ := NewRuleSet(nil)
	e := newTestEngine(t, geng, rs)
	near := mustPred(t, g, "near")
	rep, err := e.DeriveKHop(near, []kg.EntityID{ents[0], ents[0], ents[3]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Edges are undirected in the snapshot: from a0 within 2 hops ->
	// a1, a2; from a3 -> a1, a2, a4, a5.
	if rep.Facts != 6 {
		t.Fatalf("khop facts = %d, want 6", rep.Facts)
	}
	for _, want := range []struct {
		src, dst int
	}{{0, 1}, {0, 2}, {3, 1}, {3, 2}, {3, 4}, {3, 5}} {
		if !e.HasDerivedFact(ents[want.src], near, kg.EntityValue(ents[want.dst])) {
			t.Fatalf("near(a%d, a%d) missing", want.src, want.dst)
		}
	}
	if e.HasDerivedFact(ents[0], near, kg.EntityValue(ents[0])) {
		t.Fatal("source reached itself")
	}

	if _, err := e.DeriveKHop(near, nil, 2); err == nil {
		t.Fatal("khop without sources succeeded")
	}
	if _, err := e.DeriveKHop(near, []kg.EntityID{ents[0]}, 0); err == nil {
		t.Fatal("khop with k=0 succeeded")
	}
}

// TestRuleOverAnalyticsPredicate: analytics facts seed rule bodies, and
// replacing the materialization cascades through the derived facts that
// consumed the removed labels.
func TestRuleOverAnalyticsPredicate(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	link := mustPred(t, g, "link")
	a := mustEnt(t, g, "a")
	b := mustEnt(t, g, "b")
	c := mustEnt(t, g, "c")
	d := mustEnt(t, g, "d")
	mustAssert(t, g, a, link, kg.EntityValue(b))
	mustAssert(t, g, c, link, kg.EntityValue(d))

	mustPred(t, g, "component")
	rs, err := ParseRules(g, `groupedWith(X, R) :- component(X, R).`)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, geng, rs)
	comp, _ := g.PredicateByName("component")
	grouped, _ := g.PredicateByName("groupedWith")

	if _, err := e.DeriveComponents(comp.ID); err != nil {
		t.Fatal(err)
	}
	if !e.HasDerivedFact(c, grouped.ID, kg.EntityValue(c)) {
		t.Fatal("rule did not fire over analytics facts")
	}

	// Merge the components: c's label flips to a; the grouped fact for
	// the old label must cascade away and the new one appear.
	mustAssert(t, g, b, link, kg.EntityValue(c))
	if _, err := e.DeriveComponents(comp.ID); err != nil {
		t.Fatal(err)
	}
	if e.HasDerivedFact(c, grouped.ID, kg.EntityValue(c)) {
		t.Fatal("grouped fact over removed analytics label survived")
	}
	if !e.HasDerivedFact(c, grouped.ID, kg.EntityValue(a)) {
		t.Fatal("grouped fact over new analytics label missing")
	}
}

func TestAnalyticsRejectsRuleHead(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	mustPred(t, g, "link")
	rs, err := ParseRules(g, `mirror(X, Y) :- link(X, Y).`)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, geng, rs)
	mirror, _ := g.PredicateByName("mirror")
	if _, err := e.DeriveComponents(mirror.ID); err == nil {
		t.Fatal("analytics over a rule head succeeded")
	}
	if _, err := e.DeriveComponents(kg.NoPredicate); err == nil {
		t.Fatal("analytics without an output predicate succeeded")
	}
}

// TestAnalyticsVisibleThroughQueries: a derived analytics predicate is
// a first-class citizen of the attached engine's query surface.
func TestAnalyticsVisibleThroughQueries(t *testing.T) {
	g := kg.NewGraph()
	geng := graphengine.New(g)
	link := mustPred(t, g, "link")
	ents := make([]kg.EntityID, 4)
	for i := range ents {
		ents[i] = mustEnt(t, g, fmt.Sprintf("n%d", i))
	}
	mustAssert(t, g, ents[0], link, kg.EntityValue(ents[1]))
	mustAssert(t, g, ents[2], link, kg.EntityValue(ents[3]))
	rs, _ := NewRuleSet(nil)
	e := newTestEngine(t, geng, rs)
	geng.AttachDerived(e)
	comp := mustPred(t, g, "component")
	if _, err := e.DeriveComponents(comp); err != nil {
		t.Fatal(err)
	}
	var rows int
	for _, err := range geng.StreamConjunctive([]graphengine.Clause{
		{Subject: graphengine.V("X"), Predicate: comp, Object: graphengine.Term{Const: kg.EntityValue(ents[0])}},
	}, graphengine.QueryOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		rows++
	}
	if rows != 2 {
		t.Fatalf("component members of n0 = %d rows, want 2", rows)
	}
}
