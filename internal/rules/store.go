package rules

import (
	"sync"

	"saga/internal/kg"
)

// store is the derived-fact overlay: every fact the rule engine (or an
// analytics pass) has materialized, indexed the same three ways the base
// graph indexes postings — by identity key, by (subject, predicate), and
// by (predicate, object key) — so the DerivedReader surface can answer
// the executor's access paths without scanning.
//
// Incremental maintenance state lives here too. Each derived fact
// records ONE support: the rule and the grounded body facts of one
// derivation that produced it. A single support is enough because
// retraction never trusts supports alone — the cascade removes every
// fact whose recorded support lost a member, then a bottom-up rederive
// fixpoint reinstates anything still derivable through other
// derivations. (Counting all supports — classic DRed bookkeeping — is
// unsound against a live graph anyway: derivations observed mid-churn
// can double- or under-count.) The dependents index inverts supports:
// body fact key -> head fact keys it currently supports, which is what
// makes the cascade a key-chase instead of a store scan.
//
// Analytics predicates are marked external: their facts have no rule
// support (sup.rule == externalRule) and are replaced wholesale by
// Derive* calls, but they participate in the dependents index like any
// base fact, so a rule body over an analytics predicate stays
// incremental.
//
// Locking: store.mu is a leaf lock — nothing is called while holding it
// — and every read method copies results out before returning, so
// callers (the executor, deep in a recursive DerivedView solve) never
// run user code inside it.
type store struct {
	mu sync.RWMutex

	present map[kg.TripleKey]kg.Triple // identity -> stored fact
	facts   map[spKey][]kg.Triple      // (subject, predicate) -> facts, insertion order
	posts   map[poKey][]kg.EntityID    // (predicate, object key) -> subjects, insertion order

	// byPred keeps the per-predicate fact list in insertion order with
	// O(1) removal: a cascade can remove a large fraction of a
	// predicate's facts in one batch, so the splice-scan the other lists
	// use would make retraction quadratic in the derived set. Removal
	// tombstones the slot through byPredPos and compaction rebuilds the
	// list once tombstones outnumber live entries (amortized O(1)).
	byPred    map[kg.PredicateID]*predList
	byPredPos map[kg.TripleKey]int // identity -> index into its predList

	supports   map[kg.TripleKey]support
	dependents map[kg.TripleKey]map[kg.TripleKey]struct{} // body key -> head keys

	subjects map[kg.EntityID]int // subject -> derived fact count (for DerivedSubjectCount)
}

type spKey struct {
	S kg.EntityID
	P kg.PredicateID
}

type poKey struct {
	P kg.PredicateID
	O kg.ValueKey
}

// predList is one predicate's facts in insertion order, with tombstoned
// slots (dead == true at the matching index) awaiting compaction.
type predList struct {
	list []kg.Triple
	dead []bool
	gone int // count of tombstones in list
}

// live returns the fact count net of tombstones.
func (pl *predList) live() int { return len(pl.list) - pl.gone }

// externalRule marks facts materialized by analytics passes rather than
// rule derivations; they are never cascaded away by retracts (only
// replaced by the next Derive* call).
const externalRule = -1

// support records one derivation of a fact: the rule index and the
// identity keys of the grounded body facts it matched. For external
// facts rule == externalRule and body is nil.
type support struct {
	rule int
	body []kg.TripleKey
}

func newStore() *store {
	return &store{
		present:    make(map[kg.TripleKey]kg.Triple),
		facts:      make(map[spKey][]kg.Triple),
		posts:      make(map[poKey][]kg.EntityID),
		byPred:     make(map[kg.PredicateID]*predList),
		byPredPos:  make(map[kg.TripleKey]int),
		supports:   make(map[kg.TripleKey]support),
		dependents: make(map[kg.TripleKey]map[kg.TripleKey]struct{}),
		subjects:   make(map[kg.EntityID]int),
	}
}

// insert adds t with the given support, reporting whether it was new.
// An already-present fact keeps its existing support (first derivation
// wins; any valid support serves the cascade equally).
func (st *store) insert(t kg.Triple, sup support) bool {
	k := t.IdentityKey()
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.present[k]; dup {
		return false
	}
	st.present[k] = t
	sk := spKey{S: t.Subject, P: t.Predicate}
	st.facts[sk] = append(st.facts[sk], t)
	pk := poKey{P: t.Predicate, O: k.Object}
	st.posts[pk] = append(st.posts[pk], t.Subject)
	pl := st.byPred[t.Predicate]
	if pl == nil {
		pl = &predList{}
		st.byPred[t.Predicate] = pl
	}
	st.byPredPos[k] = len(pl.list)
	pl.list = append(pl.list, t)
	pl.dead = append(pl.dead, false)
	st.supports[k] = sup
	for _, bk := range sup.body {
		deps := st.dependents[bk]
		if deps == nil {
			deps = make(map[kg.TripleKey]struct{})
			st.dependents[bk] = deps
		}
		deps[k] = struct{}{}
	}
	st.subjects[t.Subject]++
	return true
}

// remove deletes the fact with identity key k, reporting whether it was
// present. Index lists are spliced order-preservingly. The fact's own
// support is unindexed from dependents, but dependents[k] — the facts k
// supports — is preserved: the caller's cascade consumes it.
func (st *store) remove(k kg.TripleKey) (kg.Triple, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t, ok := st.present[k]
	if !ok {
		return kg.Triple{}, false
	}
	delete(st.present, k)
	sk := spKey{S: t.Subject, P: t.Predicate}
	st.facts[sk] = spliceTriples(st.facts[sk], k)
	if len(st.facts[sk]) == 0 {
		delete(st.facts, sk)
	}
	pk := poKey{P: t.Predicate, O: k.Object}
	st.posts[pk] = spliceSubjects(st.posts[pk], t.Subject)
	if len(st.posts[pk]) == 0 {
		delete(st.posts, pk)
	}
	if pl := st.byPred[t.Predicate]; pl != nil {
		pl.dead[st.byPredPos[k]] = true
		pl.gone++
		delete(st.byPredPos, k)
		switch {
		case pl.live() == 0:
			delete(st.byPred, t.Predicate)
		case pl.gone > pl.live():
			st.compactLocked(t.Predicate, pl)
		}
	}
	sup := st.supports[k]
	delete(st.supports, k)
	for _, bk := range sup.body {
		if deps := st.dependents[bk]; deps != nil {
			delete(deps, k)
			if len(deps) == 0 {
				delete(st.dependents, bk)
			}
		}
	}
	if st.subjects[t.Subject]--; st.subjects[t.Subject] == 0 {
		delete(st.subjects, t.Subject)
	}
	return t, true
}

// compactLocked rebuilds pred's list without tombstones, preserving
// insertion order and reindexing positions. Called under st.mu.
func (st *store) compactLocked(pred kg.PredicateID, pl *predList) {
	live := make([]kg.Triple, 0, pl.live())
	for i, t := range pl.list {
		if pl.dead[i] {
			continue
		}
		st.byPredPos[t.IdentityKey()] = len(live)
		live = append(live, t)
	}
	pl.list = live
	pl.dead = make([]bool, len(live))
	pl.gone = 0
}

// spliceTriples removes the first triple with identity key k from list,
// preserving order.
func spliceTriples(list []kg.Triple, k kg.TripleKey) []kg.Triple {
	for i, t := range list {
		if t.IdentityKey() == k {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// spliceSubjects removes the first occurrence of s from list, preserving
// order. Duplicate subjects cannot occur within one (predicate, object)
// posting — insert dedups on full identity — so first-match is exact.
func spliceSubjects(list []kg.EntityID, s kg.EntityID) []kg.EntityID {
	for i, e := range list {
		if e == s {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

// has reports whether the fact with identity key k is stored.
func (st *store) has(k kg.TripleKey) bool {
	st.mu.RLock()
	_, ok := st.present[k]
	st.mu.RUnlock()
	return ok
}

// dependentsOf returns a copy of the head-fact keys whose recorded
// support includes k.
func (st *store) dependentsOf(k kg.TripleKey) []kg.TripleKey {
	st.mu.RLock()
	defer st.mu.RUnlock()
	deps := st.dependents[k]
	if len(deps) == 0 {
		return nil
	}
	out := make([]kg.TripleKey, 0, len(deps))
	for hk := range deps {
		out = append(out, hk)
	}
	return out
}

// supportOf returns the recorded support of the fact with key k.
func (st *store) supportOf(k kg.TripleKey) (support, bool) {
	st.mu.RLock()
	sup, ok := st.supports[k]
	st.mu.RUnlock()
	return sup, ok
}

// get returns the stored fact with identity key k.
func (st *store) get(k kg.TripleKey) (kg.Triple, bool) {
	st.mu.RLock()
	t, ok := st.present[k]
	st.mu.RUnlock()
	return t, ok
}

// factCount returns the stored (subject, predicate) fact count.
func (st *store) factCount(s kg.EntityID, p kg.PredicateID) int {
	st.mu.RLock()
	n := len(st.facts[spKey{S: s, P: p}])
	st.mu.RUnlock()
	return n
}

// subjectCount returns the stored (predicate, object) subject count.
func (st *store) subjectCount(p kg.PredicateID, o kg.ValueKey) int {
	st.mu.RLock()
	n := len(st.posts[poKey{P: p, O: o}])
	st.mu.RUnlock()
	return n
}

// frequency returns the stored fact count under p.
func (st *store) frequency(p kg.PredicateID) int {
	st.mu.RLock()
	n := 0
	if pl := st.byPred[p]; pl != nil {
		n = pl.live()
	}
	st.mu.RUnlock()
	return n
}

// factsCopy returns a copy of the stored (subject, predicate) facts in
// insertion order.
func (st *store) factsCopy(s kg.EntityID, p kg.PredicateID) []kg.Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	list := st.facts[spKey{S: s, P: p}]
	if len(list) == 0 {
		return nil
	}
	return append([]kg.Triple(nil), list...)
}

// subjectsCopy returns a copy of the stored (predicate, object) subjects
// in insertion order.
func (st *store) subjectsCopy(p kg.PredicateID, o kg.ValueKey) []kg.EntityID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	list := st.posts[poKey{P: p, O: o}]
	if len(list) == 0 {
		return nil
	}
	return append([]kg.EntityID(nil), list...)
}

// keys returns a copy of every stored identity key.
func (st *store) keys() []kg.TripleKey {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]kg.TripleKey, 0, len(st.present))
	for k := range st.present {
		out = append(out, k)
	}
	return out
}

// predFacts returns a copy of the stored facts for pred, insertion order.
func (st *store) predFacts(pred kg.PredicateID) []kg.Triple {
	st.mu.RLock()
	defer st.mu.RUnlock()
	pl := st.byPred[pred]
	if pl == nil || pl.live() == 0 {
		return nil
	}
	out := make([]kg.Triple, 0, pl.live())
	for i, t := range pl.list {
		if !pl.dead[i] {
			out = append(out, t)
		}
	}
	return out
}

// size returns the stored fact count.
func (st *store) size() int {
	st.mu.RLock()
	n := len(st.present)
	st.mu.RUnlock()
	return n
}
