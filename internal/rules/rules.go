// Package rules adds a Datalog-style rule layer on top of the
// conjunctive query stack: derived predicates defined by Horn rules over
// the same Clause/Binding vocabulary the executor already speaks, kept
// fresh under graph mutations by a changefeed consumer, plus in-graph
// analytics (connected components, sameAs closure, k-hop reachability)
// materialized as derived predicates over CSR snapshots.
//
// # Rule language
//
// A rule is
//
//	head(S, O) :- body1(S1, O1), body2(S2, O2), ...
//
// where head and every body atom are graphengine.Clauses: a predicate
// plus subject/object terms that are either variables or constants.
// Rules must be range-restricted — every head variable appears somewhere
// in the body — and body subjects follow the executor's contract
// (constant subjects must be entities). Recursion is allowed, including
// self-recursion (transitive closure); negation is not. The rule set is
// stratified anyway — strongly connected components of the head-
// predicate dependency graph, dependencies first — which fixes a
// deterministic evaluation order and is the seam where negation across
// strata would slot in later.
//
// Head predicates are ordinary kg predicates (so the HTTP layer resolves
// them by name), but derived facts are never written into kg.Graph: they
// live in the rule engine's overlay store and reach queries through
// graphengine's DerivedView. A head predicate may also carry base facts;
// the union view presents both.
//
// # Consistency contract
//
// Derived predicates are eventually consistent with the base graph. The
// engine consumes the graph's changefeed: after Engine.Sync returns (or
// at quiescence, once the background maintainer drains the feed) the
// derived store equals a from-scratch derivation over the current graph.
// Between mutation batches, reads may observe the previous fixpoint or a
// mid-batch state; cursors over a derived predicate are exact while the
// derived store is unchanged, like base cursors are exact while the
// graph is unchanged. Analytics predicates are staler still: they
// reflect the CSR snapshot watermark of their last Derive* call and
// refresh only when re-derived.
package rules

import (
	"fmt"
	"sort"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// Rule is one Datalog-style rule: Head holds whenever Body does. Head
// and body atoms reuse the conjunctive query's Clause type; the body is
// solved by the same planner/executor stack as any query.
type Rule struct {
	Head graphengine.Clause
	Body []graphengine.Clause
}

// bodyRef locates one body atom: clause index `clause` of rule `rule`.
// The byBody index maps a predicate to every body atom mentioning it —
// the rule-side twin of the subscription hub's predicate-keyed dispatch.
type bodyRef struct {
	rule   int
	clause int
}

// RuleSet is a validated, stratified set of rules, immutable after
// NewRuleSet.
type RuleSet struct {
	rules  []Rule
	heads  map[kg.PredicateID]struct{}
	byBody map[kg.PredicateID][]bodyRef
	strata [][]int // rule indices per stratum, dependencies first
	source string  // original text when built by ParseRules, else ""
}

// NewRuleSet validates and stratifies the rules. An empty rule set is
// valid (an analytics-only engine has no rules). Validation enforces:
// non-empty bodies, named predicates everywhere, range restriction
// (every head variable appears in the body), entity constants in subject
// slots, and a head subject that is a variable or an entity constant.
func NewRuleSet(rules []Rule) (*RuleSet, error) {
	rs := &RuleSet{
		rules:  make([]Rule, len(rules)),
		heads:  make(map[kg.PredicateID]struct{}),
		byBody: make(map[kg.PredicateID][]bodyRef),
	}
	copy(rs.rules, rules)
	for ri, r := range rs.rules {
		if err := validateRule(r); err != nil {
			return nil, fmt.Errorf("rules: rule %d: %w", ri, err)
		}
		rs.heads[r.Head.Predicate] = struct{}{}
	}
	for ri, r := range rs.rules {
		for ci, c := range r.Body {
			rs.byBody[c.Predicate] = append(rs.byBody[c.Predicate], bodyRef{rule: ri, clause: ci})
		}
	}
	rs.strata = stratify(rs.rules, rs.heads)
	return rs, nil
}

// validateRule checks one rule's structural invariants.
func validateRule(r Rule) error {
	if r.Head.Predicate == kg.NoPredicate {
		return fmt.Errorf("head predicate required")
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("empty body")
	}
	bodyVars := make(map[string]struct{})
	for ci, c := range r.Body {
		if c.Predicate == kg.NoPredicate {
			return fmt.Errorf("body clause %d: predicate required", ci)
		}
		if c.Subject.Var == "" && !c.Subject.Const.IsEntity() {
			return fmt.Errorf("body clause %d: constant subject must be an entity", ci)
		}
		if c.Subject.Var != "" {
			bodyVars[c.Subject.Var] = struct{}{}
		}
		if c.Object.Var != "" {
			bodyVars[c.Object.Var] = struct{}{}
		}
	}
	if r.Head.Subject.Var == "" && !r.Head.Subject.Const.IsEntity() {
		return fmt.Errorf("head subject must be a variable or an entity constant")
	}
	// Range restriction: a head variable not bound by the body would
	// derive facts with free positions.
	for _, t := range [2]graphengine.Term{r.Head.Subject, r.Head.Object} {
		if t.Var == "" {
			continue
		}
		if _, ok := bodyVars[t.Var]; !ok {
			return fmt.Errorf("head variable %q does not appear in the body (range restriction)", t.Var)
		}
	}
	return nil
}

// Rules returns a copy of the rule list in definition order.
func (rs *RuleSet) Rules() []Rule {
	out := make([]Rule, len(rs.rules))
	copy(out, rs.rules)
	return out
}

// Len returns the number of rules.
func (rs *RuleSet) Len() int { return len(rs.rules) }

// Source returns the rule text the set was parsed from, or "" when it
// was built from Rule values directly.
func (rs *RuleSet) Source() string { return rs.source }

// IsHead reports whether pred is derived by some rule.
func (rs *RuleSet) IsHead(pred kg.PredicateID) bool {
	_, ok := rs.heads[pred]
	return ok
}

// Heads returns the sorted derived (head) predicates.
func (rs *RuleSet) Heads() []kg.PredicateID {
	out := make([]kg.PredicateID, 0, len(rs.heads))
	for p := range rs.heads {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Strata returns the stratification: rule indices grouped by stratum,
// in evaluation order (a stratum's dependencies precede it; mutually
// recursive head predicates share a stratum).
func (rs *RuleSet) Strata() [][]int {
	out := make([][]int, len(rs.strata))
	for i, s := range rs.strata {
		out[i] = append([]int(nil), s...)
	}
	return out
}

// stratify computes the strata: Tarjan's SCC over the head-predicate
// dependency graph (head H depends on head B when a rule deriving H
// mentions B in its body), with SCCs emitted dependencies-first. Roots
// are visited in ascending predicate order, so the stratification is
// deterministic. Negation-free recursion makes strata an evaluation-
// order choice, not a correctness requirement — any order reaches the
// same fixpoint — but a fixed order keeps derivation-store insertion
// order reproducible.
func stratify(rules []Rule, heads map[kg.PredicateID]struct{}) [][]int {
	preds := make([]kg.PredicateID, 0, len(heads))
	for p := range heads {
		preds = append(preds, p)
	}
	sort.Slice(preds, func(i, j int) bool { return preds[i] < preds[j] })

	deps := make(map[kg.PredicateID][]kg.PredicateID, len(preds))
	for _, r := range rules {
		for _, c := range r.Body {
			if _, isHead := heads[c.Predicate]; isHead && c.Predicate != r.Head.Predicate {
				deps[r.Head.Predicate] = append(deps[r.Head.Predicate], c.Predicate)
			}
		}
	}
	for p := range deps {
		d := deps[p]
		sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
		deps[p] = d
	}

	// Tarjan. Successors are dependencies, so an SCC is emitted only
	// after every SCC it depends on — emission order is stratum order.
	var (
		index   = make(map[kg.PredicateID]int, len(preds))
		lowlink = make(map[kg.PredicateID]int, len(preds))
		onStack = make(map[kg.PredicateID]bool, len(preds))
		stack   []kg.PredicateID
		next    int
		sccs    [][]kg.PredicateID
	)
	var strongconnect func(p kg.PredicateID)
	strongconnect = func(p kg.PredicateID) {
		index[p] = next
		lowlink[p] = next
		next++
		stack = append(stack, p)
		onStack[p] = true
		for _, q := range deps[p] {
			if _, seen := index[q]; !seen {
				strongconnect(q)
				if lowlink[q] < lowlink[p] {
					lowlink[p] = lowlink[q]
				}
			} else if onStack[q] && index[q] < lowlink[p] {
				lowlink[p] = index[q]
			}
		}
		if lowlink[p] == index[p] {
			var scc []kg.PredicateID
			for {
				q := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[q] = false
				scc = append(scc, q)
				if q == p {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
			sccs = append(sccs, scc)
		}
	}
	for _, p := range preds {
		if _, seen := index[p]; !seen {
			strongconnect(p)
		}
	}

	strata := make([][]int, 0, len(sccs))
	for _, scc := range sccs {
		in := make(map[kg.PredicateID]struct{}, len(scc))
		for _, p := range scc {
			in[p] = struct{}{}
		}
		var stratum []int
		for ri, r := range rules {
			if _, ok := in[r.Head.Predicate]; ok {
				stratum = append(stratum, ri)
			}
		}
		strata = append(strata, stratum)
	}
	return strata
}
