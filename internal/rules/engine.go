package rules

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"saga/internal/graphengine"
	"saga/internal/kg"
)

// defaultPoll is the background maintainer's changefeed polling cadence.
const defaultPoll = 5 * time.Millisecond

// Options configures an Engine.
type Options struct {
	// OnDelta, when set, is called after each maintenance step with the
	// facts whose visibility changed because of the derived store: adds
	// became visible (stored and not base-asserted), rets became
	// invisible. Wire it to graphengine.Engine.ApplyDerivedDeltas so
	// standing subscriptions over derived predicates stay live. Called
	// with the engine's maintenance lock held; the callback must not call
	// back into the rules engine.
	OnDelta func(adds, rets []kg.Triple)

	// Poll is the background maintainer's changefeed polling interval
	// (default 5ms).
	Poll time.Duration

	// NoMaintainer disables the background goroutine; the owner drives
	// maintenance explicitly through Sync. Tests and benchmarks use this
	// to make staleness deterministic.
	NoMaintainer bool
}

// Stats is a point-in-time snapshot of the engine's derived state and
// maintenance counters.
type Stats struct {
	Facts       int    // derived facts currently stored (rules + analytics)
	Rules       int    // rules in the set
	Strata      int    // strata in the stratification
	Batches     uint64 // delta batches applied
	FullRuns    uint64 // full re-derivations (initial + floor-passed)
	Derivations uint64 // facts inserted over the engine's lifetime
	Retractions uint64 // facts removed over the engine's lifetime
	Cursor      uint64 // changefeed position
	Lag         uint64 // mutations behind the graph watermark (staleness hint)
}

// Engine owns the derived-fact store for one rule set over one graph:
// it runs the initial full derivation, then consumes the graph's
// changefeed to keep the store at the fixpoint incrementally
// (semi-naive: each mutation is delta-substituted into the body atoms
// that mention its predicate and the residual is solved by the regular
// executor). It implements graphengine.DerivedReader, so attaching it
// to a graphengine.Engine makes the derived predicates queryable
// through every existing surface.
type Engine struct {
	g    *kg.Graph
	geng *graphengine.Engine
	rs   *RuleSet
	st   *store
	view *graphengine.DerivedView

	// mu serializes maintenance: changefeed pumping, full re-derivation,
	// and analytics replacement. Reads (DerivedReader) go straight to the
	// store's own lock and never take mu. Lock order: mu -> st.mu; the
	// OnDelta callback (hub locks) runs under mu but never under st.mu.
	mu      sync.Mutex
	feed    *kg.Changefeed
	onDelta func(adds, rets []kg.Triple)

	// external is the analytics predicates: derived predicates whose
	// facts come from Derive* passes, not rules. Guarded by extMu (the
	// read side is on the executor's hot path).
	extMu    sync.RWMutex
	external map[kg.PredicateID]struct{}

	stop     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once

	batches     atomic.Uint64
	fullRuns    atomic.Uint64
	derivations atomic.Uint64
	retractions atomic.Uint64
}

// New builds the engine, runs the initial full derivation synchronously
// (the store is at the fixpoint when New returns), and starts the
// background maintainer unless opts.NoMaintainer. The caller attaches
// the engine to the graphengine.Engine (AttachDerived) to make derived
// predicates queryable; Close stops the maintainer.
func New(geng *graphengine.Engine, rs *RuleSet, opts Options) (*Engine, error) {
	g := geng.Graph()
	e := &Engine{
		g:        g,
		geng:     geng,
		rs:       rs,
		st:       newStore(),
		onDelta:  opts.OnDelta,
		external: make(map[kg.PredicateID]struct{}),
		feed:     g.Feed(0),
		stop:     make(chan struct{}),
	}
	e.view = graphengine.NewDerivedView(g, e)
	e.mu.Lock()
	e.rederiveFullLocked()
	e.mu.Unlock()
	if !opts.NoMaintainer {
		poll := opts.Poll
		if poll <= 0 {
			poll = defaultPoll
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			t := time.NewTicker(poll)
			defer t.Stop()
			for {
				select {
				case <-e.stop:
					return
				case <-t.C:
					e.Sync()
				}
			}
		}()
	}
	return e, nil
}

// Close stops the background maintainer. The store stays readable (a
// detached engine serves its last fixpoint, going stale).
func (e *Engine) Close() {
	e.stopOnce.Do(func() { close(e.stop) })
	e.wg.Wait()
}

// RuleSet returns the engine's rule set.
func (e *Engine) RuleSet() *RuleSet { return e.rs }

// View returns the union read surface (base graph + this engine's
// derived store) — the same view rule bodies are solved against.
func (e *Engine) View() *graphengine.DerivedView { return e.view }

// Stats snapshots the maintenance counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Facts:       e.st.size(),
		Rules:       e.rs.Len(),
		Strata:      len(e.rs.strata),
		Batches:     e.batches.Load(),
		FullRuns:    e.fullRuns.Load(),
		Derivations: e.derivations.Load(),
		Retractions: e.retractions.Load(),
		Cursor:      e.feedCursor(),
		Lag:         e.feedLag(),
	}
}

func (e *Engine) feedCursor() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feed.Cursor()
}

func (e *Engine) feedLag() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.feed.Lag()
}

// Sync drains the changefeed: when it returns, the derived store is the
// fixpoint over every mutation the graph had applied when the final
// (empty) pull happened. Concurrent writers can of course keep the feed
// non-empty; quiescent graphs reach quiescent stores.
func (e *Engine) Sync() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.pumpLocked() {
	}
}

// pumpLocked applies one changefeed batch, reporting whether it made
// progress (false = caught up). A floor-passed feed (incomplete pull)
// falls back to full re-derivation, per the changefeed contract.
func (e *Engine) pumpLocked() bool {
	muts, complete := e.feed.Pull()
	if !complete {
		e.rederiveFullLocked()
		return true
	}
	if len(muts) == 0 {
		return false
	}
	e.batches.Add(1)
	// Two-phase batch application. Retracts only overdelete (cascade the
	// support graph into pending); asserts propagate set-at-a-time. The
	// single rederive pass at the end repairs whatever overdeletion was
	// not already healed by assert propagation — deferring the repair
	// means a retract+re-assert of the same fact (the dominant churn
	// shape) is healed by the cheap delta-join propagation instead of
	// per-fact support searches, and overlapping damage from several
	// retracts is repaired once, not once per retract.
	var adds, rets []kg.Triple
	pending := make(map[kg.TripleKey]kg.Triple)
	for _, mu := range muts {
		switch mu.Op {
		case kg.OpAssert:
			adds = e.propagateLocked([]kg.Triple{mu.T}, adds)
		case kg.OpRetract:
			e.cascadeLocked(mu.T.IdentityKey(), pending)
		}
	}
	adds, rets = e.rederivePendingLocked(pending, adds, rets)
	e.notifyLocked(adds, rets)
	return true
}

// notifyLocked reports visibility deltas to the OnDelta hook.
func (e *Engine) notifyLocked(adds, rets []kg.Triple) {
	if e.onDelta != nil && (len(adds) > 0 || len(rets) > 0) {
		e.onDelta(adds, rets)
	}
}

// propagateLocked drains a worklist of newly visible facts through the
// byBody index. Every insert that is not base-asserted is appended to
// adds (the hub needs to hear about store-caused visibility even when
// the hub's own feed already carries the triggering base mutation — the
// two consumers race, and the add notification is what makes either
// order converge).
func (e *Engine) propagateLocked(work []kg.Triple, adds []kg.Triple) []kg.Triple {
	for len(work) > 0 {
		w := work[0]
		work = work[1:]
		for _, ref := range e.rs.byBody[w.Predicate] {
			r := e.rs.rules[ref.rule]
			theta, ok := graphengine.UnifyClause(r.Body[ref.clause], w)
			if !ok {
				continue
			}
			rest := restClauses(r.Body, ref.clause)
			// Split θ into Equal-safe values and the rest (NaN floats:
			// v.Equal(v) false). Substituting a NaN into a residual clause
			// would match it under SPO identity, but a from-scratch solve
			// keeps it a join variable with Equal semantics — which never
			// matches NaN — so a dropped variable still occurring in the
			// residual makes the derivation impossible; take the same
			// branch here or incremental and full evaluation diverge.
			safe, dropped := splitEqualSafe(theta)
			if anyVarOccurs(rest, dropped) {
				continue
			}
			sub, ok := graphengine.SubstituteClauses(rest, safe)
			if !ok {
				continue
			}
			matched := w.IdentityKey()
			e.solveBody(sub, func(row graphengine.Binding) {
				full := mergeBindings(theta, row)
				head, ok := groundClause(r.Head, full)
				if !ok {
					return
				}
				sup := support{rule: ref.rule, body: make([]kg.TripleKey, 0, len(r.Body))}
				for ci, c := range r.Body {
					if ci == ref.clause {
						sup.body = append(sup.body, matched)
						continue
					}
					b, ok := groundClause(c, full)
					if !ok {
						return
					}
					sup.body = append(sup.body, b.IdentityKey())
				}
				if e.st.insert(head, sup) {
					e.derivations.Add(1)
					if !e.g.HasFact(head.Subject, head.Predicate, head.Object) {
						adds = append(adds, head)
					}
					work = append(work, head)
				}
			})
		}
	}
	return adds
}

// cascadeLocked overdeletes for one retracted base key: the store copy
// of the same key (if any) and every derived fact transitively supported
// by it are removed into pending. Removing the store copy of the
// retracted key itself is what makes the eventual repair well-founded: a
// fact whose only justification was itself (possible when it was
// base-visible at derivation time) does not survive as a
// self-supporting ghost. pending is shared across a batch's retracts; a
// fact removed, reinstated by a later assert's propagation, and hit by
// another retract cascades again because the store removal (not pending
// membership) gates the chase.
func (e *Engine) cascadeLocked(bk kg.TripleKey, pending map[kg.TripleKey]kg.Triple) {
	queue := []kg.TripleKey{bk}
	if rt, ok := e.st.remove(bk); ok {
		pending[bk] = rt
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, hk := range e.st.dependentsOf(k) {
			if ht, ok := e.st.remove(hk); ok {
				pending[hk] = ht
				queue = append(queue, hk)
			}
		}
	}
}

// rederivePendingLocked repairs a batch's overdeletion: one pass over
// the removed facts in sorted key order, searching each still-absent one
// for a surviving derivation. Every reinstated fact is pushed through
// the propagation worklist immediately, so facts whose only remaining
// derivations go through other reinstated facts are healed by cheap
// delta-joins rather than their own support search — one pass suffices:
// a derivable pending fact either has base-visible support (its own
// check finds it) or depends on a reinstated fact (that fact's
// propagation derives it, whichever order the keys come up in). Rules
// are monotone and the base only shrank under retracts, so nothing
// outside pending can newly appear. Facts that stay underivable are the
// batch's retract notifications.
func (e *Engine) rederivePendingLocked(pending map[kg.TripleKey]kg.Triple, adds, rets []kg.Triple) ([]kg.Triple, []kg.Triple) {
	if len(pending) == 0 {
		return adds, rets
	}
	keys := make([]kg.TripleKey, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sortTripleKeys(keys)
	for _, k := range keys {
		if e.st.has(k) {
			// Reinstated by an assert's or an earlier repair's propagation
			// (which reported the visibility add already).
			delete(pending, k)
			continue
		}
		ht := pending[k]
		sup, ok := e.deriveSupport(ht)
		if !ok {
			continue
		}
		e.st.insert(ht, sup)
		e.derivations.Add(1)
		delete(pending, k)
		if !e.g.HasFact(ht.Subject, ht.Predicate, ht.Object) {
			// Reinstated: the subscription hub may have observed the
			// removed mid-state, so report the add even though the net
			// effect within this engine is "no change".
			adds = append(adds, ht)
		}
		adds = e.propagateLocked([]kg.Triple{ht}, adds)
	}
	for _, k := range keys {
		ht, waiting := pending[k]
		if !waiting || e.st.has(k) {
			continue
		}
		e.retractions.Add(1)
		if !e.g.HasFact(ht.Subject, ht.Predicate, ht.Object) {
			rets = append(rets, ht)
		}
	}
	return adds, rets
}

// deriveSupport searches for one currently valid derivation of h:
// a rule whose head unifies with h and a body solve (through the union
// view, i.e. against facts visible right now) whose grounding reproduces
// h's identity key. Non-Equal-safe head bindings (NaN) are left as free
// body variables and checked by the key comparison instead — the
// executor would otherwise prune them at substituted clauses in a way a
// from-scratch derivation would not.
func (e *Engine) deriveSupport(h kg.Triple) (support, bool) {
	hk := h.IdentityKey()
	var found support
	ok := false
	for ri := range e.rs.rules {
		if ok {
			break
		}
		r := e.rs.rules[ri]
		if r.Head.Predicate != h.Predicate {
			continue
		}
		theta, unified := graphengine.UnifyClause(r.Head, h)
		if !unified {
			continue
		}
		safe, _ := splitEqualSafe(theta)
		sub, valid := graphengine.SubstituteClauses(r.Body, safe)
		if !valid {
			continue
		}
		e.solveBody(sub, func(row graphengine.Binding) {
			if ok {
				return
			}
			full := mergeBindings(safe, row)
			head, grounded := groundClause(r.Head, full)
			if !grounded || head.IdentityKey() != hk {
				return
			}
			sup := support{rule: ri, body: make([]kg.TripleKey, 0, len(r.Body))}
			for _, c := range r.Body {
				b, g := groundClause(c, full)
				if !g {
					return
				}
				sup.body = append(sup.body, b.IdentityKey())
			}
			found, ok = sup, true
		})
	}
	return found, ok
}

// rederiveFullLocked rebuilds the rule-derived half of the store from
// scratch: the watermark is captured first, the store's rule facts are
// cleared (analytics facts are untouched — they are snapshot-stale by
// contract), each stratum is seeded by solving its rules' full bodies
// through the union view and drained through the propagation worklist,
// and finally the feed is reset to the pre-derivation watermark so
// mutations that landed mid-derivation are replayed (replay is
// idempotent: inserts dedup, cascades of unknown keys are no-ops).
func (e *Engine) rederiveFullLocked() {
	wm := e.g.LastSeq()
	e.fullRuns.Add(1)

	old := make(map[kg.TripleKey]kg.Triple)
	for _, k := range e.st.keys() {
		if !e.rs.IsHead(k.Predicate) {
			continue
		}
		if t, ok := e.st.remove(k); ok {
			old[k] = t
		}
	}

	for _, stratum := range e.rs.strata {
		var work []kg.Triple
		for _, ri := range stratum {
			r := e.rs.rules[ri]
			e.solveBody(r.Body, func(row graphengine.Binding) {
				head, ok := groundClause(r.Head, row)
				if !ok {
					return
				}
				sup := support{rule: ri, body: make([]kg.TripleKey, 0, len(r.Body))}
				for _, c := range r.Body {
					b, ok := groundClause(c, row)
					if !ok {
						return
					}
					sup.body = append(sup.body, b.IdentityKey())
				}
				if e.st.insert(head, sup) {
					e.derivations.Add(1)
					work = append(work, head)
				}
			})
		}
		// Drain recursion within (and, harmlessly, ahead into later)
		// strata. Visibility notifications are computed from the final
		// old/new diff below, not during propagation.
		e.propagateDiscard(work)
	}

	e.feed.Reset(wm)

	// Diff against the pre-rebuild contents for the hub: visibility only
	// changed for facts on exactly one side that the base does not also
	// assert.
	var adds, rets []kg.Triple
	for _, k := range e.st.keys() {
		if !e.rs.IsHead(k.Predicate) {
			continue
		}
		if _, had := old[k]; had {
			delete(old, k)
			continue
		}
		if t, ok := e.st.get(k); ok && !e.g.HasFact(t.Subject, t.Predicate, t.Object) {
			adds = append(adds, t)
		}
	}
	for _, t := range old {
		e.retractions.Add(1)
		if !e.g.HasFact(t.Subject, t.Predicate, t.Object) {
			rets = append(rets, t)
		}
	}
	e.notifyLocked(adds, rets)
}

// propagateDiscard runs the propagation worklist ignoring visibility
// deltas (full rebuild computes them from the final diff).
func (e *Engine) propagateDiscard(work []kg.Triple) {
	_ = e.propagateLocked(work, nil)
}

// solveBody streams the rows of a (possibly empty) conjunction through
// the union view. An empty body — every clause grounded by θ — has
// exactly one row, the empty binding. Row errors (clause validation)
// abort the enumeration; structurally invalid residuals derive nothing,
// matching the executor's treatment of the same query.
func (e *Engine) solveBody(clauses []graphengine.Clause, fn func(graphengine.Binding)) {
	if len(clauses) == 0 {
		fn(graphengine.Binding{})
		return
	}
	for row, err := range e.view.StreamConjunctive(clauses, graphengine.QueryOptions{}) {
		if err != nil {
			return
		}
		fn(row)
	}
}

// --- small helpers ------------------------------------------------------

// restClauses returns body without clause skip (a fresh slice).
func restClauses(body []graphengine.Clause, skip int) []graphengine.Clause {
	rest := make([]graphengine.Clause, 0, len(body)-1)
	for ci, c := range body {
		if ci != skip {
			rest = append(rest, c)
		}
	}
	return rest
}

// splitEqualSafe partitions a binding into the values that are safe to
// substitute as constants (v.Equal(v), i.e. everything but NaN floats)
// and the names of the rest.
func splitEqualSafe(theta graphengine.Binding) (safe graphengine.Binding, dropped []string) {
	safe = make(graphengine.Binding, len(theta))
	for name, v := range theta {
		if v.Equal(v) {
			safe[name] = v
		} else {
			dropped = append(dropped, name)
		}
	}
	return safe, dropped
}

// anyVarOccurs reports whether any of the named variables occurs in the
// clauses.
func anyVarOccurs(clauses []graphengine.Clause, names []string) bool {
	if len(names) == 0 {
		return false
	}
	for _, c := range clauses {
		for _, n := range names {
			if c.Subject.Var == n || c.Object.Var == n {
				return true
			}
		}
	}
	return false
}

// mergeBindings overlays row onto theta (theta wins on conflicts, which
// cannot disagree: shared names were substituted as constants).
func mergeBindings(theta, row graphengine.Binding) graphengine.Binding {
	full := make(graphengine.Binding, len(theta)+len(row))
	for n, v := range row {
		full[n] = v
	}
	for n, v := range theta {
		full[n] = v
	}
	return full
}

// groundClause instantiates a clause under a full binding. ok is false
// when a variable is unbound or the subject does not ground to an
// entity (a head subject bound to a literal derives nothing; body
// clauses are only grounded for support keys, where the solve already
// guaranteed entity subjects).
func groundClause(c graphengine.Clause, b graphengine.Binding) (kg.Triple, bool) {
	var t kg.Triple
	sv := c.Subject.Const
	if c.Subject.Var != "" {
		v, ok := b[c.Subject.Var]
		if !ok {
			return t, false
		}
		sv = v
	}
	if !sv.IsEntity() {
		return t, false
	}
	ov := c.Object.Const
	if c.Object.Var != "" {
		v, ok := b[c.Object.Var]
		if !ok {
			return t, false
		}
		ov = v
	}
	t = kg.Triple{Subject: sv.Entity, Predicate: c.Predicate, Object: ov}
	return t, true
}

// sortTripleKeys orders keys by (subject, predicate, object key) — the
// deterministic processing order of the rederive fixpoint.
func sortTripleKeys(keys []kg.TripleKey) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		if a.Predicate != b.Predicate {
			return a.Predicate < b.Predicate
		}
		return a.Object.Compare(b.Object) < 0
	})
}

// --- graphengine.DerivedReader ------------------------------------------

// IsDerived reports whether pred is a rule head or a registered
// analytics predicate.
func (e *Engine) IsDerived(pred kg.PredicateID) bool {
	if e.rs.IsHead(pred) {
		return true
	}
	e.extMu.RLock()
	_, ok := e.external[pred]
	e.extMu.RUnlock()
	return ok
}

// DerivedFactCount returns the stored (subj, pred) fact count.
func (e *Engine) DerivedFactCount(subj kg.EntityID, pred kg.PredicateID) int {
	return e.st.factCount(subj, pred)
}

// DerivedSubjectCount returns the stored (pred, obj) subject count.
func (e *Engine) DerivedSubjectCount(pred kg.PredicateID, obj kg.Value) int {
	return e.st.subjectCount(pred, obj.MapKey())
}

// DerivedFrequency returns the stored fact count under pred.
func (e *Engine) DerivedFrequency(pred kg.PredicateID) int {
	return e.st.frequency(pred)
}

// HasDerivedFact reports membership under SPO identity.
func (e *Engine) HasDerivedFact(subj kg.EntityID, pred kg.PredicateID, obj kg.Value) bool {
	return e.st.has(kg.TripleKey{Subject: subj, Predicate: pred, Object: obj.MapKey()})
}

// DerivedFacts returns a copy of the stored (subj, pred) facts in
// insertion order.
func (e *Engine) DerivedFacts(subj kg.EntityID, pred kg.PredicateID) []kg.Triple {
	return e.st.factsCopy(subj, pred)
}

// DerivedSubjects returns a copy of the stored (pred, obj) subjects in
// insertion order.
func (e *Engine) DerivedSubjects(pred kg.PredicateID, obj kg.Value) []kg.EntityID {
	return e.st.subjectsCopy(pred, obj.MapKey())
}

// DerivedEntries returns a copy of every stored fact under pred in
// insertion order.
func (e *Engine) DerivedEntries(pred kg.PredicateID) []kg.Triple {
	return e.st.predFacts(pred)
}
