package embedserve

import (
	"fmt"
	"testing"

	"saga/internal/embedding"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/storage"
	"saga/internal/vecindex"
	"saga/internal/workload"
)

type harness struct {
	w       *workload.World
	dataset *embedding.Dataset
	model   embedding.Model
	svc     *Service
}

func newHarness(t *testing.T) *harness {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 60, NumClusters: 6, OccupationsPerPerson: 2, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	eng := graphengine.New(w.Graph)
	view := eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true})
	d := embedding.NewDataset(view.Triples())
	m, err := embedding.Train(d, embedding.TrainConfig{
		Model: embedding.DistMult, Dim: 32, Epochs: 40, LearningRate: 0.08,
		Negatives: 4, Workers: 2, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(w.Graph, m, d)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{w: w, dataset: d, model: m, svc: svc}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil); err == nil {
		t.Fatal("nil args accepted")
	}
}

func TestEntityEmbeddingAndSimilarity(t *testing.T) {
	h := newHarness(t)
	p := h.w.People[0]
	v, ok := h.svc.EntityEmbedding(p)
	if !ok || len(v) == 0 {
		t.Fatal("missing embedding for person")
	}
	if s := h.svc.Similarity(p, p); s < 0.999 {
		t.Fatalf("self similarity = %v", s)
	}
	if s := h.svc.Similarity(p, kg.EntityID(1<<30)); s != 0 {
		t.Fatalf("unknown-entity similarity = %v", s)
	}
}

func TestRankFactsOrdering(t *testing.T) {
	h := newHarness(t)
	occ := h.w.Preds["occupation"]
	p := h.w.People[0]
	ranked, err := h.svc.RankFacts(p, occ)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 2 {
		t.Fatalf("ranked facts = %d, want 2 occupations", len(ranked))
	}
	if ranked[0].Score < ranked[1].Score {
		t.Fatal("RankFacts not sorted descending")
	}
	// Unknown subject errors.
	if _, err := h.svc.RankFacts(kg.EntityID(1<<30), occ); err == nil {
		t.Fatal("unknown subject accepted")
	}
	// Literal-only predicate yields empty ranking (dateOfBirth filtered
	// from embedding space).
	if _, err := h.svc.RankFacts(p, h.w.Preds["dateOfBirth"]); err == nil {
		t.Fatal("predicate outside embedding space accepted")
	}
}

func TestRankFactsQualityOverPeople(t *testing.T) {
	// The gold most-important occupation (cluster theme) should rank
	// first much more often than a popularity baseline manages: the theme
	// is structurally supported by every cluster co-member while being
	// deliberately unpopular (see workload.World.ThemeOccs).
	h := newHarness(t)
	occ := h.w.Preds["occupation"]
	var correct, popCorrect, total int
	for _, p := range h.w.People {
		ranked, err := h.svc.RankFacts(p, occ)
		if err != nil || len(ranked) == 0 {
			continue
		}
		total++
		gold := h.w.OccupationGold[p][0]
		if ranked[0].Triple.Object.Entity == gold {
			correct++
		}
		// Popularity baseline over the same fact set.
		best := ranked[0].Triple.Object.Entity
		bestPop := -1.0
		for _, rf := range ranked {
			if pop := h.w.Graph.Entity(rf.Triple.Object.Entity).Popularity; pop > bestPop {
				bestPop = pop
				best = rf.Triple.Object.Entity
			}
		}
		if best == gold {
			popCorrect++
		}
	}
	if total == 0 {
		t.Fatal("no people ranked")
	}
	frac := float64(correct) / float64(total)
	popFrac := float64(popCorrect) / float64(total)
	// Small slack absorbs Hogwild run-to-run noise; the experiment-level
	// comparison lives in TestE1FactRankingQuality at the repo root.
	if frac+0.02 <= popFrac {
		t.Fatalf("embedding gold-top-1 %v must beat popularity baseline %v", frac, popFrac)
	}
	if frac < 0.4 {
		t.Fatalf("gold-top-1 fraction = %v, too low", frac)
	}
}

func TestVerifyFact(t *testing.T) {
	h := newHarness(t)
	occ := h.w.Preds["occupation"]
	// Calibrate on known positives and corrupted negatives.
	var pos, neg [][3]int32
	for _, p := range h.w.People[:30] {
		hIdx, _ := h.dataset.EntityIndex(p)
		rIdx, _ := h.dataset.RelationIndex(occ)
		for _, f := range h.w.Graph.Facts(p, occ) {
			tIdx, ok := h.dataset.EntityIndex(f.Object.Entity)
			if !ok {
				continue
			}
			pos = append(pos, [3]int32{hIdx, rIdx, tIdx})
		}
		// Random person as "occupation" = implausible.
		other := h.w.People[(int(p)+7)%len(h.w.People)]
		oIdx, ok := h.dataset.EntityIndex(other)
		if ok {
			neg = append(neg, [3]int32{hIdx, rIdx, oIdx})
		}
	}
	thr := embedding.CalibrateThreshold(h.model, pos, neg)
	h.svc.SetVerifyThreshold(thr)

	// Hogwild training makes individual scores slightly noisy, so assert
	// aggregate verification quality over many people rather than one
	// specific fact.
	var trueAccepted, trueTotal, absurdRejected, absurdTotal int
	for i, p := range h.w.People[30:] { // held out from calibration
		trueOcc := h.w.OccupationGold[p][0]
		v, err := h.svc.VerifyFact(p, occ, trueOcc)
		if err != nil {
			t.Fatal(err)
		}
		trueTotal++
		if v.Plausible {
			trueAccepted++
		}
		// Clearly wrong fact: occupation = another person.
		bad, err := h.svc.VerifyFact(p, occ, h.w.People[(i*7+3)%len(h.w.People)])
		if err != nil {
			t.Fatal(err)
		}
		absurdTotal++
		if !bad.Plausible {
			absurdRejected++
		}
	}
	if frac := float64(trueAccepted) / float64(trueTotal); frac < 0.75 {
		t.Fatalf("only %.2f of true facts verified plausible", frac)
	}
	if frac := float64(absurdRejected) / float64(absurdTotal); frac < 0.75 {
		t.Fatalf("only %.2f of absurd facts rejected", frac)
	}
}

func TestVerifyFactUncalibrated(t *testing.T) {
	h := newHarness(t)
	if _, err := h.svc.VerifyFact(h.w.People[0], h.w.Preds["occupation"], h.w.Occupations[0]); err == nil {
		t.Fatal("uncalibrated verification accepted")
	}
}

func TestRelatedEntitiesModelSpace(t *testing.T) {
	h := newHarness(t)
	p := h.w.People[0]
	rel, err := h.svc.RelatedEntities(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel) != 5 {
		t.Fatalf("related = %d", len(rel))
	}
	for _, r := range rel {
		if r.ID == p {
			t.Fatal("self in related list")
		}
	}
	for i := 1; i < len(rel); i++ {
		if rel[i].Score > rel[i-1].Score {
			t.Fatal("related list not sorted")
		}
	}
}

func TestRelatedEntitiesWalkSpace(t *testing.T) {
	h := newHarness(t)
	eng := graphengine.New(h.w.Graph)
	walk := embedding.TrainWalkEmbeddings(eng, h.w.People, embedding.WalkEmbedConfig{Dim: 48, WalksPerNode: 25, WalkLength: 3, Seed: 5})
	if err := h.svc.SetWalkEmbeddings(walk); err != nil {
		t.Fatal(err)
	}
	p := h.w.People[0]
	rel, err := h.svc.RelatedEntities(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Majority of top-8 should share p's cluster.
	var sameCluster int
	for _, r := range rel {
		if h.w.Cluster[r.ID] == h.w.Cluster[p] {
			sameCluster++
		}
	}
	if sameCluster < 5 {
		t.Fatalf("only %d/8 related entities share the cluster", sameCluster)
	}
	// Entity without walk embedding errors.
	if _, err := h.svc.RelatedEntities(h.w.Occupations[0], 3); err == nil {
		t.Fatal("entity without walk embedding accepted")
	}
}

func TestNearestByVector(t *testing.T) {
	h := newHarness(t)
	p := h.w.People[3]
	v, _ := h.svc.EntityEmbedding(p)
	res := h.svc.NearestByVector(v, 3)
	if len(res) != 3 {
		t.Fatalf("results = %v", res)
	}
	if res[0].ID != p {
		t.Fatalf("nearest to own vector = %v, want %v", res[0].ID, p)
	}
}

func TestVectorCacheRoundTrip(t *testing.T) {
	h := newHarness(t)
	store, err := storage.Open(t.TempDir(), storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	n, err := h.svc.PrecomputeCache(store)
	if err != nil {
		t.Fatal(err)
	}
	if n != h.dataset.NumEntities() {
		t.Fatalf("cached %d vectors, want %d", n, h.dataset.NumEntities())
	}
	// Single-vector load matches the live embedding.
	p := h.w.People[0]
	cached, err := LoadCachedVector(store, p)
	if err != nil {
		t.Fatal(err)
	}
	live, _ := h.svc.EntityEmbedding(p)
	if len(cached) != len(live) {
		t.Fatalf("cached len %d != live %d", len(cached), len(live))
	}
	for i := range live {
		if cached[i] != live[i] {
			t.Fatal("cached vector differs from live")
		}
	}
	// Full index restore.
	idx, loaded, err := NewFromCache(store)
	if err != nil {
		t.Fatal(err)
	}
	if loaded != n {
		t.Fatalf("restored %d vectors, want %d", loaded, n)
	}
	got, ok := idx.Get(uint64(p))
	if !ok || got[0] != live[0] {
		t.Fatal("restored index missing entity vector")
	}
}

func TestDecodeVectorErrors(t *testing.T) {
	if _, err := decodeVector(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	if _, err := decodeVector([]byte{1, 0, 0, 0}); err == nil {
		t.Fatal("truncated payload accepted")
	}
	// Valid round trip.
	v := vecindex.Vector{1.5, -2.25, 0}
	got, err := decodeVector(encodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if got[i] != v[i] {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestBatchScore(t *testing.T) {
	h := newHarness(t)
	occ := h.w.Preds["occupation"]
	var cands []CandidateTriple
	for _, p := range h.w.People[:20] {
		for _, o := range h.w.OccupationGold[p] {
			cands = append(cands, CandidateTriple{Subject: p, Predicate: occ, Object: o})
		}
	}
	// One unmappable candidate (literal-only predicate).
	cands = append(cands, CandidateTriple{Subject: h.w.People[0], Predicate: h.w.Preds["dateOfBirth"], Object: h.w.Occupations[0]})

	for _, workers := range []int{0, 1, 4} {
		res, err := h.svc.BatchScore(cands, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(cands) {
			t.Fatalf("results = %d, want %d", len(res), len(cands))
		}
		for i, r := range res[:len(res)-1] {
			if !r.Mapped {
				t.Fatalf("candidate %d not mapped", i)
			}
			if r.Candidate != cands[i] {
				t.Fatal("result order not preserved")
			}
			// Must equal direct scoring.
			hIdx, _ := h.dataset.EntityIndex(r.Candidate.Subject)
			rIdx, _ := h.dataset.RelationIndex(r.Candidate.Predicate)
			tIdx, _ := h.dataset.EntityIndex(r.Candidate.Object)
			if want := h.model.Score(hIdx, rIdx, tIdx); r.Score != want {
				t.Fatalf("batch score %v != direct %v", r.Score, want)
			}
		}
		if res[len(res)-1].Mapped {
			t.Fatal("unmappable candidate reported mapped")
		}
	}
	// Empty input.
	empty, err := h.svc.BatchScore(nil, 4)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch = %v,%v", empty, err)
	}
}

func BenchmarkBatchScore(b *testing.B) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 100, NumClusters: 8, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	eng := graphengine.New(w.Graph)
	view := eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true})
	d := embedding.NewDataset(view.Triples())
	m, err := embedding.Train(d, embedding.TrainConfig{Model: embedding.DistMult, Dim: 32, Epochs: 5, Seed: 17})
	if err != nil {
		b.Fatal(err)
	}
	svc, err := New(w.Graph, m, d)
	if err != nil {
		b.Fatal(err)
	}
	occ := w.Preds["occupation"]
	var cands []CandidateTriple
	for _, p := range w.People {
		for _, o := range w.Occupations {
			cands = append(cands, CandidateTriple{Subject: p, Predicate: occ, Object: o})
		}
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := svc.BatchScore(cands, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(cands)*b.N)/b.Elapsed().Seconds(), "triples/s")
		})
	}
}
