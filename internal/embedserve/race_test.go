package embedserve

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"saga/internal/embedding"
	"saga/internal/graphengine"
	"saga/internal/kg"
	"saga/internal/vecindex"
)

// TestConcurrentConfigurationAndQueries hammers the serving reads
// (RelatedEntities, VerifyFact) while configuration writers re-install
// walk embeddings and re-calibrate the verification threshold. Before the
// atomic config snapshots this raced: walkVecs/walkIndex could be
// observed half-installed and verifyThreshold was written unlocked.
// Meaningful under -race.
func TestConcurrentConfigurationAndQueries(t *testing.T) {
	h := newHarness(t)
	eng := graphengine.New(h.w.Graph)
	view := eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true})
	entities := view.EntityIDs()

	makeWalks := func(seed int64) map[kg.EntityID]vecindex.Vector {
		return embedding.TrainWalkEmbeddings(eng, entities, embedding.WalkEmbedConfig{
			Dim: 16, WalksPerNode: 4, WalkLength: 3, Seed: seed,
		})
	}
	// Pre-train two installations outside the hammer loop so the writers
	// just swap them.
	walksA, walksB := makeWalks(1), makeWalks(2)
	if err := h.svc.SetWalkEmbeddings(walksA); err != nil {
		t.Fatal(err)
	}
	h.svc.SetVerifyThreshold(0.5)

	var writer, readers sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() { // config writer
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w := walksA
			if i%2 == 1 {
				w = walksB
			}
			if err := h.svc.SetWalkEmbeddings(w); err != nil {
				t.Error(err)
				return
			}
			h.svc.SetVerifyThreshold(float64(i%10) / 10)
		}
	}()
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			people := h.w.People
			occ := h.w.Preds["occupation"]
			for i := 0; i < 300; i++ {
				p := people[rng.Intn(len(people))]
				if _, err := h.svc.RelatedEntities(p, 5); err != nil {
					t.Error(err)
					return
				}
				v, err := h.svc.VerifyFact(p, occ, h.w.Occupations[rng.Intn(len(h.w.Occupations))])
				if err != nil {
					t.Error(err)
					return
				}
				if v.Plausible != (v.Score >= v.Threshold) {
					t.Errorf("torn verification: score %v threshold %v plausible %v", v.Score, v.Threshold, v.Plausible)
					return
				}
			}
		}(r)
	}
	// Readers are bounded; the writer reconfigures until they finish.
	readers.Wait()
	close(stop)
	writer.Wait()
}

// TestVerifyFactUnsetThresholdConcurrent checks the uncalibrated error
// path stays intact when the threshold is installed concurrently.
func TestVerifyFactUnsetThresholdConcurrent(t *testing.T) {
	h := newHarness(t)
	occ := h.w.Preds["occupation"]
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h.svc.SetVerifyThreshold(0.25)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			v, err := h.svc.VerifyFact(h.w.People[0], occ, h.w.Occupations[0])
			if err == nil && v.Threshold != 0.25 {
				t.Errorf("verification used threshold %v before calibration", v.Threshold)
				return
			}
		}
	}()
	wg.Wait()
}

func TestDecodeVectorCorruption(t *testing.T) {
	good := encodeVector(vecindex.Vector{1, 2, 3})
	if v, err := decodeVector(good); err != nil || len(v) != 3 {
		t.Fatalf("round-trip failed: %v %v", v, err)
	}

	// Header count that makes 4+4*n wrap to a small number in uint32:
	// n = 1<<30 gives 4+4n ≡ 4 (mod 2^32), and the payload is 0 bytes, so
	// a wrapping check would accept the entry and then try to allocate a
	// 4 GiB vector.
	wrap := make([]byte, 4)
	binary.LittleEndian.PutUint32(wrap, 1<<30)
	if _, err := decodeVector(wrap); err == nil {
		t.Fatal("wrapping header accepted")
	}
	// Same wrap point with a plausible payload.
	wrapPay := make([]byte, 4+8)
	binary.LittleEndian.PutUint32(wrapPay, 1<<30+2)
	if _, err := decodeVector(wrapPay); err == nil {
		t.Fatal("wrapping header with payload accepted")
	}
	// Truncated and oversized payloads.
	if _, err := decodeVector(good[:len(good)-2]); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if _, err := decodeVector(append(good, 0)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if _, err := decodeVector(nil); err == nil {
		t.Fatal("nil payload accepted")
	}
	// Zero-length vector is legal.
	if v, err := decodeVector(encodeVector(nil)); err != nil || len(v) != 0 {
		t.Fatalf("empty vector round-trip: %v %v", v, err)
	}
}

// TestRelatedEntitiesCachePopulates pins the memoization behavior on
// both serving paths: the first request must install the cache epoch
// (including from the virgin state on the generation-0 fallback), and a
// repeat request must be served from it.
func TestRelatedEntitiesCachePopulates(t *testing.T) {
	h := newHarness(t)
	p := h.w.People[1]
	check := func(label string) {
		t.Helper()
		if _, err := h.svc.RelatedEntities(p, 4); err != nil {
			t.Fatal(err)
		}
		h.svc.relMu.RLock()
		defer h.svc.relMu.RUnlock()
		if len(h.svc.relCache) == 0 || h.svc.relIdx == nil {
			t.Fatalf("%s: cache not populated after a miss", label)
		}
		if _, ok := h.svc.relCache[relCacheKey{id: p, k: 4}]; !ok {
			t.Fatalf("%s: result not cached under its key", label)
		}
	}
	check("fallback (gen 0)")

	eng := graphengine.New(h.w.Graph)
	view := eng.Materialize(graphengine.ViewDef{DropLiteralFacts: true})
	walks := embedding.TrainWalkEmbeddings(eng, view.EntityIDs(), embedding.WalkEmbedConfig{
		Dim: 16, WalksPerNode: 4, WalkLength: 3, Seed: 9,
	})
	if err := h.svc.SetWalkEmbeddings(walks); err != nil {
		t.Fatal(err)
	}
	check("walk installation (gen 1)")
}

// TestRelatedEntitiesFallbackMatchesSimilarity pins the satellite fix:
// fallback (model-space) related-entity scores must agree with the
// pairwise Similarity (cosine), not an inner product against
// unnormalized stored vectors.
func TestRelatedEntitiesFallbackMatchesSimilarity(t *testing.T) {
	h := newHarness(t)
	p := h.w.People[0]
	res, err := h.svc.RelatedEntities(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no related entities")
	}
	for _, r := range res {
		want := h.svc.Similarity(p, r.ID)
		if diff := r.Score - want; diff > 1e-5 || diff < -1e-5 {
			t.Fatalf("entity %v scored %v, Similarity says %v", r.ID, r.Score, want)
		}
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatalf("results not sorted by cosine: %v", res)
		}
	}
}
