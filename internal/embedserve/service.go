// Package embedserve implements the Embedding Service of Fig 1: it serves
// trained KG embeddings for the four §2 applications — fact ranking, fact
// verification, related entities, and entity-linking support — and
// provides k-nearest-neighbour retrieval over entity vectors. Entity
// embeddings can be precomputed into a low-latency key-value store
// (paper §3.2: "we precompute entity embeddings ... and cache the results
// in a low-latency key-value store") so that serving only computes query
// embeddings.
package embedserve

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"saga/internal/embedding"
	"saga/internal/kg"
	"saga/internal/storage"
	"saga/internal/vecindex"
)

// walkEmbeddings bundles the traversal-based related-entity vectors with
// their kNN index so both are installed and read as one unit: a reader
// that loads the pointer can never observe vectors from one installation
// paired with the index of another. gen totally orders installations
// (the model-embedding fallback is generation 0), letting the result
// cache tell a laggard request on a superseded installation apart from
// the first request on a fresh one.
type walkEmbeddings struct {
	vecs map[kg.EntityID]vecindex.Vector
	idx  *vecindex.FlatIndex
	gen  uint64
}

// Service serves one trained embedding model plus optional related-entity
// walk embeddings over a graph. Configuration installed after
// construction (walk embeddings, verification threshold) is published
// through atomic pointers, so SetWalkEmbeddings/SetVerifyThreshold are
// safe to call while RelatedEntities/VerifyFact serve traffic.
type Service struct {
	graph   *kg.Graph
	dataset *embedding.Dataset
	model   embedding.Model

	// entIndex holds model entity vectors keyed by graph entity ID.
	entIndex *vecindex.FlatIndex

	// walk holds the optional traversal-based related-entity embeddings,
	// installed atomically (nil until SetWalkEmbeddings); walkMu orders
	// installations so the generation a reader observes always matches
	// the latest published pointer. Readers never take the mutex.
	walk    atomic.Pointer[walkEmbeddings]
	walkMu  sync.Mutex
	walkGen uint64

	// verifyThreshold classifies triples in VerifyFact; nil until
	// calibrated via SetVerifyThreshold.
	verifyThreshold atomic.Pointer[float64]

	// relCache memoizes RelatedEntities results per (entity, k). Related-
	// entity queries are repetitive under production traffic (hot entities
	// dominate), and the answer is a pure function of the backing vector
	// index, so entries are valid exactly as long as the index the result
	// was computed from is unchanged: relGen/relIdx/relVersion record that
	// epoch (walk installation generation, index pointer, index version)
	// and a mismatch drops the whole cache (paper §3.2: "precompute ...
	// and cache the results in a low-latency key-value store").
	relMu      sync.RWMutex
	relCache   map[relCacheKey][]ScoredEntity
	relGen     uint64
	relIdx     *vecindex.FlatIndex
	relVersion uint64
}

// relCacheKey identifies one cached RelatedEntities result.
type relCacheKey struct {
	id kg.EntityID
	k  int
}

// relCacheMax bounds relCache. A full cache is dropped wholesale and
// rebuilt from live traffic — hot entities repopulate immediately, and
// the simple flush avoids per-entry LRU bookkeeping on the serving path.
const relCacheMax = 1 << 14

// New builds a service from a trained model and the dataset that defines
// its index space.
func New(g *kg.Graph, model embedding.Model, dataset *embedding.Dataset) (*Service, error) {
	if g == nil || model == nil || dataset == nil {
		return nil, errors.New("embedserve: nil graph, model, or dataset")
	}
	s := &Service{graph: g, dataset: dataset, model: model, entIndex: vecindex.NewFlat()}
	for i, gid := range dataset.Ents {
		if err := s.entIndex.Add(uint64(gid), model.EntityVector(int32(i))); err != nil {
			return nil, fmt.Errorf("embedserve: index entity %v: %w", gid, err)
		}
	}
	return s, nil
}

// SetWalkEmbeddings installs traversal-based related-entity vectors. The
// index is built first and the (vectors, index) pair is published with a
// single atomic store, so concurrent RelatedEntities callers see either
// the previous installation or the complete new one. The caller must not
// mutate vecs after handing it over.
func (s *Service) SetWalkEmbeddings(vecs map[kg.EntityID]vecindex.Vector) error {
	idx := vecindex.NewFlat()
	for id, v := range vecs {
		if err := idx.Add(uint64(id), v); err != nil {
			return err
		}
	}
	// Draw the generation and publish under one lock: two concurrent
	// installers must publish in generation order, or the later-drawn
	// generation could be overwritten by the earlier one and silently
	// lost.
	s.walkMu.Lock()
	s.walkGen++
	s.walk.Store(&walkEmbeddings{vecs: vecs, idx: idx, gen: s.walkGen})
	s.walkMu.Unlock()
	return nil
}

// SetVerifyThreshold installs a calibrated fact-verification threshold.
// Safe to call while VerifyFact serves traffic.
func (s *Service) SetVerifyThreshold(thr float64) {
	s.verifyThreshold.Store(&thr)
}

// EntityEmbedding returns the model embedding of a graph entity.
func (s *Service) EntityEmbedding(id kg.EntityID) (vecindex.Vector, bool) {
	v, ok := s.entIndex.Get(uint64(id))
	return v, ok
}

// Similarity returns the cosine similarity of two entities' model
// embeddings (0 when either is unknown).
func (s *Service) Similarity(a, b kg.EntityID) float64 {
	va, ok1 := s.entIndex.Get(uint64(a))
	vb, ok2 := s.entIndex.Get(uint64(b))
	if !ok1 || !ok2 {
		return 0
	}
	return float64(vecindex.Cosine(va, vb))
}

// RankedFact is a fact with its model plausibility score.
type RankedFact struct {
	Triple kg.Triple
	Score  float64
}

// RankFacts ranks the existing facts (subject, predicate, *) by model
// score, most plausible first — the Fig 2 fact-ranking application ("LeBron
// James, Occupation, ?" → Basketball Player before Screenwriter).
func (s *Service) RankFacts(subject kg.EntityID, predicate kg.PredicateID) ([]RankedFact, error) {
	return s.RankFactsContext(context.Background(), subject, predicate)
}

// RankFactsContext is RankFacts with cancellation: the scoring loop
// checks ctx periodically so a disconnected serving client stops burning
// model inference. Candidate facts stream off the graph's index (only
// entity-valued facts in the embedding space are kept) instead of copying
// the whole fact slice first; scoring runs after the index lock is
// released.
func (s *Service) RankFactsContext(ctx context.Context, subject kg.EntityID, predicate kg.PredicateID) ([]RankedFact, error) {
	h, ok := s.dataset.EntityIndex(subject)
	if !ok {
		return nil, fmt.Errorf("embedserve: subject %v not in embedding space", subject)
	}
	r, ok := s.dataset.RelationIndex(predicate)
	if !ok {
		return nil, fmt.Errorf("embedserve: predicate %v not in embedding space", predicate)
	}
	type candidate struct {
		t    kg.Triple
		tIdx int32
	}
	// The count is a capacity hint only (a writer may land between the two
	// lock acquisitions); the streamed read below is the enumeration.
	cands := make([]candidate, 0, s.graph.FactCount(subject, predicate))
	for f := range s.graph.FactsSeq(subject, predicate) {
		if !f.Object.IsEntity() {
			continue
		}
		tIdx, ok := s.dataset.EntityIndex(f.Object.Entity)
		if !ok {
			continue
		}
		cands = append(cands, candidate{t: f, tIdx: tIdx})
	}
	cancellable := ctx.Done() != nil
	out := make([]RankedFact, 0, len(cands))
	for i, c := range cands {
		if cancellable && i&255 == 255 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		out = append(out, RankedFact{Triple: c.t, Score: s.model.Score(h, r, c.tIdx)})
	}
	if cancellable {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Triple.Object.MapKey().Compare(out[j].Triple.Object.MapKey()) < 0
	})
	return out, nil
}

// Verification is the result of VerifyFact.
type Verification struct {
	Plausible bool
	Score     float64
	Threshold float64
}

// VerifyFact scores a candidate triple and classifies it against the
// calibrated threshold — the Fig 2 fact-verification application.
func (s *Service) VerifyFact(subject kg.EntityID, predicate kg.PredicateID, object kg.EntityID) (Verification, error) {
	thr := s.verifyThreshold.Load()
	if thr == nil {
		return Verification{}, errors.New("embedserve: verification threshold not calibrated; call SetVerifyThreshold")
	}
	h, ok := s.dataset.EntityIndex(subject)
	if !ok {
		return Verification{}, fmt.Errorf("embedserve: subject %v not in embedding space", subject)
	}
	r, ok := s.dataset.RelationIndex(predicate)
	if !ok {
		return Verification{}, fmt.Errorf("embedserve: predicate %v not in embedding space", predicate)
	}
	t, ok := s.dataset.EntityIndex(object)
	if !ok {
		return Verification{}, fmt.Errorf("embedserve: object %v not in embedding space", object)
	}
	score := s.model.Score(h, r, t)
	return Verification{Plausible: score >= *thr, Score: score, Threshold: *thr}, nil
}

// ScoredEntity pairs a graph entity with a similarity score.
type ScoredEntity struct {
	ID    kg.EntityID
	Score float64
}

// RelatedEntities returns the k entities most related to id — the Fig 2
// related-entities application. It prefers the traversal-based walk
// embeddings when installed (the paper's specialized related-entity path)
// and falls back to model-embedding kNN ranked by cosine similarity, so
// the fallback's scores agree with Similarity instead of mixing a
// normalized query with unnormalized stored vectors.
func (s *Service) RelatedEntities(id kg.EntityID, k int) ([]ScoredEntity, error) {
	return s.RelatedEntitiesContext(context.Background(), id, k)
}

// RelatedEntitiesContext is RelatedEntities with cancellation: the kNN
// scan's candidate filter checks ctx periodically, so a disconnected
// client's scan degenerates to cheap row skips instead of dot products,
// and a result computed under a cancelled context is discarded rather
// than cached.
func (s *Service) RelatedEntitiesContext(ctx context.Context, id kg.EntityID, k int) ([]ScoredEntity, error) {
	// Load the walk installation once and use it consistently below: a
	// concurrent SetWalkEmbeddings must not swap the index out from under
	// the vector lookup.
	walk := s.walk.Load()
	idx := s.entIndex
	var gen uint64 // model-embedding fallback = generation 0
	if walk != nil {
		idx = walk.idx
		gen = walk.gen
	}
	ver := idx.Version()
	key := relCacheKey{id: id, k: k}
	s.relMu.RLock()
	if s.relGen == gen && s.relIdx == idx && s.relVersion == ver {
		if res, ok := s.relCache[key]; ok {
			s.relMu.RUnlock()
			return append([]ScoredEntity(nil), res...), nil
		}
	}
	s.relMu.RUnlock()

	keep := cancellableKeep(ctx, func(cand uint64) bool { return cand != uint64(id) })
	var out []ScoredEntity
	if walk != nil {
		v, ok := walk.vecs[id]
		if !ok {
			return nil, fmt.Errorf("embedserve: entity %v has no walk embedding", id)
		}
		// Walk vectors are unit-normalized at training time, so inner
		// product already equals cosine here.
		res := walk.idx.SearchFiltered(v, k+1, keep)
		out = toScored(res, k)
	} else {
		v, ok := s.entIndex.Get(uint64(id))
		if !ok {
			return nil, fmt.Errorf("embedserve: entity %v not in embedding space", id)
		}
		res := s.entIndex.SearchCosineFiltered(v, k+1, keep)
		out = toScored(res, k)
	}
	if err := ctx.Err(); err != nil {
		// A cancelled scan skipped candidates; its result is partial and
		// must be neither cached nor returned.
		return nil, err
	}

	s.relMu.Lock()
	switch {
	case s.relGen == gen && s.relIdx == idx && s.relVersion == ver:
		if len(s.relCache) >= relCacheMax {
			s.relCache = make(map[relCacheKey][]ScoredEntity)
		}
		s.relCache[key] = out
	case s.relIdx == nil || s.relGen < gen || (s.relGen == gen && s.relIdx == idx && s.relVersion < ver):
		// Virgin cache, or our epoch is strictly newer than the resident
		// one (a later walk installation, or a later version of the same
		// index): install/replace.
		s.relCache = map[relCacheKey][]ScoredEntity{key: out}
		s.relGen = gen
		s.relIdx = idx
		s.relVersion = ver
	default:
		// The resident cache is from a newer epoch — a laggard request
		// computed against a superseded installation or index version
		// must not wipe fresh entries no future reader would match.
		// Drop our result.
	}
	s.relMu.Unlock()
	// Return a copy: callers may re-sort or truncate their result.
	return append([]ScoredEntity(nil), out...), nil
}

// NearestByVector returns the k entities nearest to an arbitrary query
// vector in the model embedding space — the entity-linking support
// primitive (query embedding vs cached entity embeddings, §3.2).
func (s *Service) NearestByVector(q vecindex.Vector, k int) []ScoredEntity {
	return toScored(s.entIndex.Search(q, k), k)
}

// cancellableKeep wraps a kNN candidate filter so that once ctx is
// cancelled every remaining row is rejected before its similarity is
// computed: the scan still walks the row index to completion but does no
// further floating-point work. ctx is polled every 512 candidates to keep
// the filter's own cost off the scan kernel. A never-cancelled context
// (Background) keeps the filter unwrapped.
func cancellableKeep(ctx context.Context, keep func(uint64) bool) func(uint64) bool {
	if ctx.Done() == nil {
		return keep
	}
	n := 0
	cancelled := false
	return func(cand uint64) bool {
		if cancelled {
			return false
		}
		if n++; n&511 == 0 && ctx.Err() != nil {
			cancelled = true
			return false
		}
		return keep(cand)
	}
}

func toScored(res []vecindex.Result, k int) []ScoredEntity {
	out := make([]ScoredEntity, 0, min(k, len(res)))
	for _, r := range res {
		if len(out) == k {
			break
		}
		out = append(out, ScoredEntity{ID: kg.EntityID(r.ID), Score: float64(r.Score)})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// --- Precomputed vector cache ------------------------------------------

// cacheKey formats the store key for an entity's cached vector.
func cacheKey(id kg.EntityID) string { return fmt.Sprintf("emb/%d", uint32(id)) }

// PrecomputeCache writes every entity's model embedding into the KV store.
func (s *Service) PrecomputeCache(store *storage.Store) (int, error) {
	n := 0
	for i, gid := range s.dataset.Ents {
		v := s.model.EntityVector(int32(i))
		if err := store.Put(cacheKey(gid), encodeVector(v)); err != nil {
			return n, err
		}
		n++
	}
	if err := store.Flush(); err != nil {
		return n, err
	}
	return n, nil
}

// LoadCachedVector reads one entity vector from the KV store.
func LoadCachedVector(store *storage.Store, id kg.EntityID) (vecindex.Vector, error) {
	data, err := store.Get(cacheKey(id))
	if err != nil {
		return nil, err
	}
	return decodeVector(data)
}

// NewFromCache rebuilds a service's entity index from cached vectors
// (model scoring APIs are unavailable; kNN and similarity work). It
// returns the restored index.
func NewFromCache(store *storage.Store) (*vecindex.FlatIndex, int, error) {
	idx := vecindex.NewFlat()
	n := 0
	err := store.Scan("emb/", func(key string, value []byte) bool {
		var id uint64
		if _, serr := fmt.Sscanf(key, "emb/%d", &id); serr != nil {
			return true
		}
		v, derr := decodeVector(value)
		if derr != nil {
			return true
		}
		if idx.Add(id, v) == nil {
			n++
		}
		return true
	})
	if err != nil {
		return nil, 0, err
	}
	return idx, n, nil
}

func encodeVector(v vecindex.Vector) []byte {
	buf := make([]byte, 4+4*len(v))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(v)))
	for i, x := range v {
		binary.LittleEndian.PutUint32(buf[4+4*i:], math.Float32bits(x))
	}
	return buf
}

func decodeVector(data []byte) (vecindex.Vector, error) {
	if len(data) < 4 {
		return nil, errors.New("embedserve: cached vector too short")
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	// Compare in uint64: 4+4*n overflows uint32 for a corrupt header
	// (n ≥ 2^30), which could otherwise wrap to a small value, pass an
	// int-width check on 32-bit platforms, or drive a huge allocation.
	if uint64(len(data)-4) != 4*uint64(n) {
		return nil, fmt.Errorf("embedserve: cached vector length mismatch: header %d, payload %d bytes", n, len(data)-4)
	}
	v := make(vecindex.Vector, n)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[4+4*i:]))
	}
	return v, nil
}
