package embedserve

import (
	"errors"
	"runtime"
	"sync"

	"saga/internal/kg"
)

// Batch inference (Fig 3, right side): "once we materialize the
// candidates, we use a batch inference setting to retrieve embeddings
// from the learned model and obtain scores for each candidate". The
// graph engine materializes candidate triples; BatchScore fans them out
// across workers, standing in for the paper's multi-GPU batch inference.

// CandidateTriple is one candidate fact to score, in graph-ID space.
type CandidateTriple struct {
	Subject   kg.EntityID
	Predicate kg.PredicateID
	Object    kg.EntityID
}

// BatchResult pairs a candidate with its plausibility score. Mapped
// reports whether all three components existed in the embedding space;
// unmapped candidates carry a zero score.
type BatchResult struct {
	Candidate CandidateTriple
	Score     float64
	Mapped    bool
}

// BatchScore scores all candidates in parallel with the given worker
// count (0 = GOMAXPROCS). Results preserve input order.
func (s *Service) BatchScore(cands []CandidateTriple, workers int) ([]BatchResult, error) {
	if s.model == nil {
		return nil, errors.New("embedserve: no model loaded")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cands) {
		workers = len(cands)
	}
	out := make([]BatchResult, len(cands))
	if len(cands) == 0 {
		return out, nil
	}
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				c := cands[i]
				out[i].Candidate = c
				h, ok1 := s.dataset.EntityIndex(c.Subject)
				r, ok2 := s.dataset.RelationIndex(c.Predicate)
				t, ok3 := s.dataset.EntityIndex(c.Object)
				if !ok1 || !ok2 || !ok3 {
					continue
				}
				out[i].Score = s.model.Score(h, r, t)
				out[i].Mapped = true
			}
		}(lo, hi)
	}
	wg.Wait()
	return out, nil
}
