package annotate

import (
	"math/rand"
	"strings"
	"testing"

	"saga/internal/kg"
	"saga/internal/webcorpus"
	"saga/internal/workload"
)

func annWorld(t *testing.T) *workload.World {
	t.Helper()
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 60, NumClusters: 6, AmbiguousNamePairs: 5, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewRequiresEntities(t *testing.T) {
	if _, err := New(kg.NewGraph(), Config{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestAnnotateFindsKnownEntity(t *testing.T) {
	w := annWorld(t)
	a, err := New(w.Graph, Config{Mode: ModeContextual, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := w.People[0]
	name := w.Graph.Entity(p).Name
	team := w.Graph.Entity(w.Teams[w.Cluster[p]]).Name
	text := name + " scored twice for the " + team + " last night."
	anns := a.Annotate(text)
	if len(anns) == 0 {
		t.Fatalf("no annotations for %q", text)
	}
	// The person mention must be present with correct offsets.
	var found bool
	for _, ann := range anns {
		if text[ann.Start:ann.End] != ann.Surface {
			t.Fatalf("offset mismatch: %q vs %q", text[ann.Start:ann.End], ann.Surface)
		}
		if ann.Surface == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("person %q not detected in %v", name, anns)
	}
}

func TestAnnotateEmptyText(t *testing.T) {
	w := annWorld(t)
	a, err := New(w.Graph, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Annotate(""); got != nil {
		t.Fatalf("empty text = %v", got)
	}
	if got := a.Annotate("nothing matches here at all zzz"); len(got) != 0 {
		t.Fatalf("no-entity text = %v", got)
	}
}

func TestLongestMatchWins(t *testing.T) {
	g := kg.NewGraph()
	ny, _ := g.AddEntity(kg.Entity{Key: "ny", Name: "New York", Aliases: []string{"New York"}})
	nyc, _ := g.AddEntity(kg.Entity{Key: "nyc", Name: "New York City", Aliases: []string{"New York City"}})
	a, err := New(g, Config{Mode: ModeLexical, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	anns := a.Annotate("I moved to New York City last year.")
	if len(anns) != 1 {
		t.Fatalf("annotations = %v, want single longest match", anns)
	}
	if anns[0].Entity != nyc {
		t.Fatalf("linked %v, want NYC over NY (%v)", anns[0].Entity, ny)
	}
	if anns[0].Surface != "New York City" {
		t.Fatalf("surface = %q", anns[0].Surface)
	}
}

func TestContextualDisambiguation(t *testing.T) {
	// Two "Michael Jordan"s with different descriptions; context decides.
	g := kg.NewGraph()
	baller, _ := g.AddEntity(kg.Entity{
		Key: "mj1", Name: "Michael Jordan",
		Aliases:     []string{"Michael Jordan"},
		Description: "Michael Jordan, basketball player for the Chicago Bulls, NBA champion",
		Popularity:  0.9,
	})
	prof, _ := g.AddEntity(kg.Entity{
		Key: "mj2", Name: "Michael Jordan",
		Aliases:     []string{"Michael Jordan"},
		Description: "Michael Jordan, university professor of machine learning at Berkeley",
		Popularity:  0.3,
	})
	a, err := New(g, Config{Mode: ModeContextual, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	sports := a.Annotate("Michael Jordan dominated the basketball game with the Bulls in the NBA finals.")
	if len(sports) == 0 || sports[0].Entity != baller {
		t.Fatalf("sports context linked %v, want basketball player", sports)
	}
	academia := a.Annotate("Michael Jordan published machine learning research with his university students at Berkeley.")
	if len(academia) == 0 || academia[0].Entity != prof {
		t.Fatalf("academic context linked %v, want professor (candidates: %v)", academia[0].Entity, academia[0].Candidates)
	}
	// Popularity-only mode always picks the popular one, demonstrating
	// why contextual reranking matters (the paper's §3 example).
	pop, err := New(g, Config{Mode: ModePopularity, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	popAcademia := pop.Annotate("Michael Jordan published machine learning research with his university students at Berkeley.")
	if len(popAcademia) == 0 || popAcademia[0].Entity != baller {
		t.Fatalf("popularity mode should pick the popular entity; got %v", popAcademia)
	}
}

func TestCandidateListSortedAndComplete(t *testing.T) {
	w := annWorld(t)
	a, err := New(w.Graph, Config{Mode: ModeContextual, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Find an ambiguous name and annotate a neutral sentence.
	for name, bearers := range w.AmbiguousNames {
		anns := a.Annotate("Yesterday " + name + " was seen downtown.")
		if len(anns) == 0 {
			t.Fatalf("ambiguous name %q not detected", name)
		}
		ann := anns[0]
		if len(ann.Candidates) < len(bearers) {
			t.Fatalf("candidates = %d, want >= %d bearers", len(ann.Candidates), len(bearers))
		}
		for i := 1; i < len(ann.Candidates); i++ {
			if ann.Candidates[i].Score > ann.Candidates[i-1].Score {
				t.Fatal("candidates not sorted")
			}
		}
		break
	}
}

// measureAccuracy runs the annotator over generated docs and returns the
// fraction of gold mentions that were linked to the correct entity, plus
// the fraction over ambiguous mentions only.
func measureAccuracy(t *testing.T, w *workload.World, mode Mode) (overall, ambiguous float64) {
	t.Helper()
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 250, Seed: 43})
	a, err := New(w.Graph, Config{Mode: mode, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var correct, total, ambCorrect, ambTotal int
	for _, d := range docs {
		anns := a.Annotate(d.Text)
		byStart := make(map[int]Annotation)
		for _, ann := range anns {
			byStart[ann.Start] = ann
		}
		for _, gm := range d.Gold {
			total++
			ann, ok := byStart[gm.Start]
			hit := ok && ann.Entity == gm.Entity
			if hit {
				correct++
			}
			if gm.Ambiguous {
				ambTotal++
				if hit {
					ambCorrect++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no gold mentions")
	}
	overall = float64(correct) / float64(total)
	if ambTotal > 0 {
		ambiguous = float64(ambCorrect) / float64(ambTotal)
	} else {
		ambiguous = -1
	}
	return overall, ambiguous
}

func TestLinkingQualityContextualBeatsLexical(t *testing.T) {
	w := annWorld(t)
	ctxAcc, ctxAmb := measureAccuracy(t, w, ModeContextual)
	lexAcc, _ := measureAccuracy(t, w, ModeLexical)
	if ctxAcc < 0.7 {
		t.Fatalf("contextual accuracy = %v, too low", ctxAcc)
	}
	if ctxAcc <= lexAcc-0.01 {
		t.Fatalf("contextual (%v) should not lose to lexical (%v)", ctxAcc, lexAcc)
	}
	if ctxAmb >= 0 && ctxAmb < 0.5 {
		t.Fatalf("ambiguous-mention accuracy = %v, contextual reranker not working", ctxAmb)
	}
}

func TestPipelineIncremental(t *testing.T) {
	w := annWorld(t)
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 120, Seed: 47})
	a, err := New(w.Graph, Config{Mode: ModePopularity, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(a, 4)
	first := p.Run(docs)
	if first.Processed != 120 || first.Skipped != 0 {
		t.Fatalf("first pass = %+v", first)
	}
	if p.NumCached() != 120 {
		t.Fatalf("cached = %d", p.NumCached())
	}
	// No changes: everything skipped.
	second := p.Run(docs)
	if second.Processed != 0 || second.Skipped != 120 {
		t.Fatalf("idle pass = %+v", second)
	}
	// Mutate ~20% and re-run: only changed docs processed.
	rng := rand.New(rand.NewSource(47))
	changed := webcorpus.Mutate(docs, 0.2, rng)
	third := p.Run(docs)
	if third.Processed != len(changed) {
		t.Fatalf("incremental pass processed %d, want %d changed", third.Processed, len(changed))
	}
	if third.Skipped != 120-len(changed) {
		t.Fatalf("incremental pass skipped %d", third.Skipped)
	}
	// Cached results carry the new version.
	for _, id := range changed {
		r, ok := p.Result(id)
		if !ok || r.Version != 2 {
			t.Fatalf("changed doc %s cached version = %v", id, r)
		}
	}
}

func TestLinkToGraph(t *testing.T) {
	w := annWorld(t)
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 60, Seed: 53})
	a, err := New(w.Graph, Config{Mode: ModeContextual, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPipeline(a, 4)
	stats := p.Run(docs)
	if stats.Mentions == 0 {
		t.Fatal("no mentions annotated")
	}
	before := w.Graph.NumTriples()
	added, err := p.LinkToGraph(w.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if added == 0 {
		t.Fatal("no web edges added")
	}
	if w.Graph.NumTriples() != before+added {
		t.Fatalf("triple count %d != before %d + added %d", w.Graph.NumTriples(), before, added)
	}
	// Doc entities exist with WebDocument type.
	pred, ok := w.Graph.PredicateByName("mentionedIn")
	if !ok {
		t.Fatal("mentionedIn predicate missing")
	}
	// The total mentionedIn edge count (people, teams, cities, ...) must
	// equal what LinkToGraph reported, and at least one person must be
	// linked.
	var linked, personLinked int
	w.Graph.Triples(func(tr kg.Triple) bool {
		if tr.Predicate == pred.ID {
			linked++
		}
		return true
	})
	for _, person := range w.People {
		personLinked += len(w.Graph.Facts(person, pred.ID))
	}
	if linked != added {
		t.Fatalf("entity->doc links = %d, want %d", linked, added)
	}
	if personLinked == 0 {
		t.Fatal("no person linked to any document")
	}
}

func TestAnnotationOffsetsRecoverable(t *testing.T) {
	w := annWorld(t)
	a, err := New(w.Graph, Config{Mode: ModeContextual, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 40, Seed: 59})
	for _, d := range docs {
		for _, ann := range a.Annotate(d.Text) {
			if got := d.Text[ann.Start:ann.End]; !strings.EqualFold(got, ann.Surface) {
				t.Fatalf("offsets broken: %q vs %q", got, ann.Surface)
			}
		}
	}
}

func TestAccentInsensitiveLinking(t *testing.T) {
	g := kg.NewGraph()
	beyonce, _ := g.AddEntity(kg.Entity{
		Key: "beyonce", Name: "Beyoncé",
		Aliases:     []string{"Beyoncé", "Beyoncé Knowles"},
		Description: "Beyoncé, American singer",
		Popularity:  0.95,
	})
	a, err := New(g, Config{Mode: ModePopularity, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Unaccented mention matches the accented alias.
	anns := a.Annotate("Fans cheered when Beyonce arrived.")
	if len(anns) != 1 || anns[0].Entity != beyonce {
		t.Fatalf("unaccented mention not linked: %v", anns)
	}
	// Accented mention also matches, with correct byte offsets.
	anns2 := a.Annotate("Beyoncé released a new album.")
	if len(anns2) != 1 || anns2[0].Entity != beyonce {
		t.Fatalf("accented mention not linked: %v", anns2)
	}
	if anns2[0].Surface != "Beyoncé" {
		t.Fatalf("surface = %q", anns2[0].Surface)
	}
}

func BenchmarkAnnotateDoc(b *testing.B) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 100, NumClusters: 8, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(w.Graph, Config{Mode: ModeContextual, Seed: 71})
	if err != nil {
		b.Fatal(err)
	}
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 50, Seed: 71})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Annotate(docs[i%len(docs)].Text)
	}
}
