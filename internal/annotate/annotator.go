// Package annotate implements the extensible Semantic Annotation service
// of §3: dictionary-based mention detection over entity aliases
// (Aho-Corasick), candidate generation, and entity linking with three
// interchangeable ranking modes — lexical, popularity, and contextual
// reranking — reflecting the paper's "modular, allowing custom deployments
// for different use-cases" design. The contextual mode follows §3's
// recipe: precomputed embeddings of the textual features of KG entities
// (name, description, popularity) compared against an embedding of the
// mention's surrounding context.
package annotate

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"

	"saga/internal/kg"
	"saga/internal/textutil"
	"saga/internal/vecindex"
)

// Mode selects the candidate-ranking component, per the paper's modular
// deployments trading quality for cost.
type Mode string

const (
	// ModeLexical ranks candidates by surface-form similarity only: the
	// cheapest deployment, no KG signals.
	ModeLexical Mode = "lexical"
	// ModePopularity adds the entity popularity prior.
	ModePopularity Mode = "popularity"
	// ModeContextual adds contextual reranking with cached text-feature
	// embeddings: the highest-quality deployment.
	ModeContextual Mode = "contextual"
)

// Config configures an Annotator.
type Config struct {
	// Mode selects the ranking component; default ModeContextual.
	Mode Mode
	// ContextWindow is the number of bytes of document text on each side
	// of a mention embedded as linking context; default 200.
	ContextWindow int
	// MinScore suppresses annotations whose best candidate scores below
	// it; default 0 (emit everything).
	MinScore float64
	// EmbedDim is the dimensionality of the hashed text-feature
	// embeddings; default 64.
	EmbedDim int
	// Seed drives embedding hashing.
	Seed int64
}

func (c *Config) setDefaults() {
	if c.Mode == "" {
		c.Mode = ModeContextual
	}
	if c.ContextWindow <= 0 {
		c.ContextWindow = 200
	}
	if c.EmbedDim <= 0 {
		c.EmbedDim = 64
	}
}

// Candidate is one entity hypothesis for a mention.
type Candidate struct {
	Entity kg.EntityID
	Score  float64
}

// Annotation is one linked mention in a document.
type Annotation struct {
	// Start/End are byte offsets into the annotated text.
	Start, End int
	Surface    string
	// Entity is the chosen link target.
	Entity kg.EntityID
	// Score of the winning candidate.
	Score float64
	// Candidates holds the full ranked candidate list (best first).
	Candidates []Candidate
}

// Annotator links text to KG entities. Build once with New; Annotate is
// safe for concurrent use.
type Annotator struct {
	g   *kg.Graph
	cfg Config

	matcher *textutil.Matcher
	// patEnts maps automaton pattern ID -> candidate entities sharing that
	// alias.
	patEnts [][]kg.EntityID

	// entVecs caches the text-feature embedding of every entity — the
	// precomputed, cached entity embeddings of §3.2.
	entVecs map[kg.EntityID]vecindex.Vector
	// featCache memoizes token feature vectors.
	featMu    sync.RWMutex
	featCache map[string]vecindex.Vector
}

// New builds an annotator over the graph's entity alias dictionary.
func New(g *kg.Graph, cfg Config) (*Annotator, error) {
	cfg.setDefaults()
	a := &Annotator{
		g:         g,
		cfg:       cfg,
		entVecs:   make(map[kg.EntityID]vecindex.Vector),
		featCache: make(map[string]vecindex.Vector),
	}
	builder := textutil.NewMatcherBuilder()
	// alias -> pattern id dedup: multiple entities share one pattern.
	patByAlias := make(map[string]int)
	var patEnts [][]kg.EntityID
	count := 0
	g.Entities(func(e *kg.Entity) bool {
		aliases := e.Aliases
		if len(aliases) == 0 {
			aliases = []string{e.Name}
		}
		for _, al := range aliases {
			norm := textutil.NormalizePhrase(al)
			if norm == "" {
				continue
			}
			pid, ok := patByAlias[norm]
			if !ok {
				pid = builder.AddPhrase(norm)
				if pid < 0 {
					continue
				}
				patByAlias[norm] = pid
				patEnts = append(patEnts, nil)
			}
			patEnts[pid] = append(patEnts[pid], e.ID)
		}
		if cfg.Mode == ModeContextual {
			a.entVecs[e.ID] = a.textEmbedding(e.Name + " " + e.Description)
		}
		count++
		return true
	})
	if count == 0 {
		return nil, fmt.Errorf("annotate: graph has no entities")
	}
	a.matcher = builder.Build()
	a.patEnts = patEnts
	return a, nil
}

// Annotate links all detected mentions in text.
func (a *Annotator) Annotate(text string) []Annotation {
	tokens := textutil.Tokenize(text)
	if len(tokens) == 0 {
		return nil
	}
	words := make([]string, len(tokens))
	for i, t := range tokens {
		words[i] = t.Text
	}
	matches := a.matcher.Match(words)
	spans := resolveOverlaps(matches)

	var out []Annotation
	for _, m := range spans {
		startByte := tokens[m.Start].Start
		endByte := tokens[m.End-1].End
		surface := text[startByte:endByte]
		cands := a.rankCandidates(surface, a.patEnts[m.Pattern], text, startByte, endByte)
		if len(cands) == 0 {
			continue
		}
		best := cands[0]
		if best.Score < a.cfg.MinScore {
			continue
		}
		out = append(out, Annotation{
			Start:      startByte,
			End:        endByte,
			Surface:    surface,
			Entity:     best.Entity,
			Score:      best.Score,
			Candidates: cands,
		})
	}
	return out
}

// resolveOverlaps keeps a non-overlapping subset of matches, preferring
// longer spans, then earlier ones (standard longest-match annotation
// policy: "New York City" beats "New York" beats "York").
func resolveOverlaps(matches []textutil.TokenMatch) []textutil.TokenMatch {
	sorted := append([]textutil.TokenMatch(nil), matches...)
	sort.Slice(sorted, func(i, j int) bool {
		li := sorted[i].End - sorted[i].Start
		lj := sorted[j].End - sorted[j].Start
		if li != lj {
			return li > lj
		}
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].Pattern < sorted[j].Pattern
	})
	var kept []textutil.TokenMatch
	used := make(map[int]bool)
	for _, m := range sorted {
		free := true
		for t := m.Start; t < m.End; t++ {
			if used[t] {
				free = false
				break
			}
		}
		if !free {
			continue
		}
		for t := m.Start; t < m.End; t++ {
			used[t] = true
		}
		kept = append(kept, m)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Start < kept[j].Start })
	return kept
}

// rankCandidates scores each candidate entity for a mention according to
// the configured mode.
func (a *Annotator) rankCandidates(surface string, ents []kg.EntityID, text string, startByte, endByte int) []Candidate {
	if len(ents) == 0 {
		return nil
	}
	var ctxVec vecindex.Vector
	if a.cfg.Mode == ModeContextual {
		lo := startByte - a.cfg.ContextWindow
		if lo < 0 {
			lo = 0
		}
		hi := endByte + a.cfg.ContextWindow
		if hi > len(text) {
			hi = len(text)
		}
		// Exclude the mention itself so ambiguous candidates are not all
		// boosted equally by their shared surface form.
		ctxVec = a.textEmbedding(text[lo:startByte] + " " + text[endByte:hi])
	}
	out := make([]Candidate, 0, len(ents))
	for _, id := range ents {
		e := a.g.Entity(id)
		if e == nil {
			continue
		}
		score := textutil.JaroWinkler(textutil.NormalizePhrase(surface), textutil.NormalizePhrase(e.Name))
		switch a.cfg.Mode {
		case ModeLexical:
			// surface similarity only
		case ModePopularity:
			score = 0.5*score + 0.5*e.Popularity
		case ModeContextual:
			ctx := float64(vecindex.Cosine(ctxVec, a.entVecs[id]))
			score = 0.25*score + 0.15*e.Popularity + 0.6*ctx
		}
		out = append(out, Candidate{Entity: id, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Entity < out[j].Entity
	})
	return out
}

// textEmbedding builds the hashed bag-of-words embedding of a text: the
// sum of deterministic pseudo-random token vectors, L2-normalized. These
// play the role of the paper's textual-feature embeddings; they are
// training-free and cheap enough to precompute for every entity.
func (a *Annotator) textEmbedding(text string) vecindex.Vector {
	vec := make(vecindex.Vector, a.cfg.EmbedDim)
	for _, tok := range textutil.Tokenize(text) {
		f := a.tokenFeature(tok.Text)
		for i := range vec {
			vec[i] += f[i]
		}
	}
	return vecindex.Normalize(vec)
}

func (a *Annotator) tokenFeature(token string) vecindex.Vector {
	a.featMu.RLock()
	v, ok := a.featCache[token]
	a.featMu.RUnlock()
	if ok {
		return v
	}
	h := fnv.New64a()
	h.Write([]byte(token))
	rng := rand.New(rand.NewSource(int64(h.Sum64()) ^ a.cfg.Seed))
	v = make(vecindex.Vector, a.cfg.EmbedDim)
	for i := range v {
		if rng.Intn(2) == 0 {
			v[i] = 1
		} else {
			v[i] = -1
		}
	}
	a.featMu.Lock()
	a.featCache[token] = v
	a.featMu.Unlock()
	return v
}

// Mode returns the annotator's configured mode.
func (a *Annotator) Mode() Mode { return a.cfg.Mode }
