package annotate

import (
	"fmt"
	"sync"

	"saga/internal/kg"
	"saga/internal/webcorpus"
)

// Pipeline runs the annotator over a document corpus at scale (Fig 4
// "linking the Web"): documents fan out across workers, results are
// cached by (docID, version), and re-runs skip unchanged documents — the
// paper's incremental processing requirement ("able to efficiently
// process only the changed webpages at a given frequency", §3.2).
type Pipeline struct {
	annotator *Annotator
	workers   int

	mu sync.Mutex
	// results caches annotations by document ID.
	results map[string]*DocAnnotations
}

// DocAnnotations holds one document's annotation output.
type DocAnnotations struct {
	DocID   string
	Version int
	Items   []Annotation
}

// RunStats reports one corpus pass.
type RunStats struct {
	// Processed documents were (re-)annotated this pass.
	Processed int
	// Skipped documents were served from cache (version unchanged).
	Skipped int
	// Mentions is the total annotation count across processed docs.
	Mentions int
}

// NewPipeline wraps an annotator with corpus-level orchestration.
func NewPipeline(a *Annotator, workers int) *Pipeline {
	if workers <= 0 {
		workers = 4
	}
	return &Pipeline{annotator: a, workers: workers, results: make(map[string]*DocAnnotations)}
}

// Run annotates the corpus, skipping documents whose version is already
// cached. It is the incremental entry point: call it again after corpus
// mutation and only changed documents are processed.
func (p *Pipeline) Run(docs []*webcorpus.Document) RunStats {
	var stats RunStats
	type job struct {
		doc *webcorpus.Document
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	var statMu sync.Mutex

	for w := 0; w < p.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				items := p.annotator.Annotate(j.doc.Text)
				res := &DocAnnotations{DocID: j.doc.ID, Version: j.doc.Version, Items: items}
				p.mu.Lock()
				p.results[j.doc.ID] = res
				p.mu.Unlock()
				statMu.Lock()
				stats.Processed++
				stats.Mentions += len(items)
				statMu.Unlock()
			}
		}()
	}
	for _, d := range docs {
		p.mu.Lock()
		cached, ok := p.results[d.ID]
		p.mu.Unlock()
		if ok && cached.Version == d.Version {
			stats.Skipped++
			continue
		}
		jobs <- job{doc: d}
	}
	close(jobs)
	wg.Wait()
	return stats
}

// Result returns the cached annotations for a document.
func (p *Pipeline) Result(docID string) (*DocAnnotations, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	r, ok := p.results[docID]
	return r, ok
}

// NumCached returns the number of cached document results.
func (p *Pipeline) NumCached() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.results)
}

// LinkToGraph materializes annotations as KG edges, extending the graph
// with links from entities to Web documents (Fig 4: "extending our KG
// with edges linking KG entities to unstructured Web documents"). Each
// document becomes a WebDocument entity; each annotation becomes a
// (person)-[mentionedIn]->(doc) fact. Returns the number of edges added.
func (p *Pipeline) LinkToGraph(g *kg.Graph) (int, error) {
	docType, err := g.Ontology().AddType("WebDocument", kg.NoType)
	if err != nil {
		// Type may exist under a parent already; resolve by name.
		if id, ok := g.Ontology().TypeID("WebDocument"); ok {
			docType = id
		} else {
			return 0, err
		}
	}
	pred, err := g.AddPredicate(kg.Predicate{Name: "mentionedIn", ValueKind: kg.KindEntity})
	if err != nil {
		return 0, err
	}
	p.mu.Lock()
	results := make([]*DocAnnotations, 0, len(p.results))
	for _, r := range p.results {
		results = append(results, r)
	}
	p.mu.Unlock()

	// Register all document entities first, then assert every mention
	// edge in one batch: the graph's batch path takes each shard lock
	// once and grows index slices per (subject, predicate) run, instead
	// of a lock round-trip per annotation. AssertBatch also reports the
	// number of newly added facts, which is exactly this function's
	// return value (duplicate mention edges from re-linked documents are
	// skipped, as before).
	batch := make([]kg.Triple, 0, len(results))
	for _, r := range results {
		docEnt, err := g.AddEntity(kg.Entity{
			Key:   "webdoc:" + r.DocID,
			Name:  r.DocID,
			Types: []kg.TypeID{docType},
		})
		if err != nil {
			return 0, fmt.Errorf("annotate: add doc entity %s: %w", r.DocID, err)
		}
		for _, ann := range r.Items {
			batch = append(batch, kg.Triple{
				Subject:   ann.Entity,
				Predicate: pred,
				Object:    kg.EntityValue(docEnt),
				Prov:      kg.Provenance{Source: "semantic-annotation", Confidence: ann.Score},
			})
		}
	}
	return g.AssertBatch(batch)
}
