// Package websearch implements a BM25 inverted-index search engine over
// the synthetic web corpus. It substitutes for the production Web search
// engine the ODKE pipeline calls ("leverage Web search to find relevant
// documents", Fig 5): the query synthesizer issues queries here and gets
// relevance-ranked documents back.
package websearch

import (
	"context"
	"math"
	"sort"
	"sync"

	"saga/internal/textutil"
	"saga/internal/webcorpus"
)

// BM25 parameters (standard defaults).
const (
	k1 = 1.2
	b  = 0.75
)

// Index is an inverted index with BM25 scoring. Build with NewIndex;
// Search is safe for concurrent use. Documents can be re-indexed after
// mutation with Update.
type Index struct {
	mu sync.RWMutex

	docs map[string]*webcorpus.Document
	// postings: term -> docID -> term frequency.
	postings map[string]map[string]int
	// docTerms snapshots each document's indexed term counts so Update can
	// remove stale postings even if the caller mutated the document text
	// in place before calling Update.
	docTerms map[string]map[string]int
	docLen   map[string]int
	totalLen int
}

// NewIndex builds an index over the documents (title + text).
func NewIndex(docs []*webcorpus.Document) *Index {
	ix := &Index{
		docs:     make(map[string]*webcorpus.Document),
		postings: make(map[string]map[string]int),
		docTerms: make(map[string]map[string]int),
		docLen:   make(map[string]int),
	}
	for _, d := range docs {
		ix.addLocked(d)
	}
	return ix
}

func (ix *Index) addLocked(d *webcorpus.Document) {
	toks := textutil.Tokenize(d.Title + " " + d.Text)
	ix.docs[d.ID] = d
	ix.docLen[d.ID] = len(toks)
	ix.totalLen += len(toks)
	terms := make(map[string]int, len(toks))
	for _, t := range toks {
		m := ix.postings[t.Text]
		if m == nil {
			m = make(map[string]int)
			ix.postings[t.Text] = m
		}
		m[d.ID]++
		terms[t.Text]++
	}
	ix.docTerms[d.ID] = terms
}

// Update re-indexes a changed document (removing its old postings).
func (ix *Index) Update(d *webcorpus.Document) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if oldTerms, ok := ix.docTerms[d.ID]; ok {
		for term, n := range oldTerms {
			if m := ix.postings[term]; m != nil {
				m[d.ID] -= n
				if m[d.ID] <= 0 {
					delete(m, d.ID)
				}
				if len(m) == 0 {
					delete(ix.postings, term)
				}
			}
		}
		ix.totalLen -= ix.docLen[d.ID]
	}
	ix.addLocked(d)
}

// NumDocs returns the indexed document count.
func (ix *Index) NumDocs() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Doc returns an indexed document by ID.
func (ix *Index) Doc(id string) (*webcorpus.Document, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d, ok := ix.docs[id]
	return d, ok
}

// Hit is one search result.
type Hit struct {
	Doc   *webcorpus.Document
	Score float64
}

// Search runs a BM25 query and returns the top-k hits, highest score
// first. Ties break by document ID for determinism.
func (ix *Index) Search(query string, k int) []Hit {
	hits, _ := ix.SearchContext(context.Background(), query, k)
	return hits
}

// SearchContext is Search with cancellation: the posting accumulation
// loop polls ctx every few thousand entries, so a disconnected serving
// client stops a broad query's scoring pass instead of burning CPU to
// completion. A cancelled search returns ctx's error and no hits.
func (ix *Index) SearchContext(ctx context.Context, query string, k int) ([]Hit, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if k <= 0 || len(ix.docs) == 0 {
		return nil, nil
	}
	qToks := textutil.Tokenize(query)
	if len(qToks) == 0 {
		return nil, nil
	}
	n := float64(len(ix.docs))
	avgLen := float64(ix.totalLen) / n
	scores := make(map[string]float64)
	visited := 0
	for _, qt := range qToks {
		post := ix.postings[qt.Text]
		if len(post) == 0 {
			continue
		}
		idf := math.Log(1 + (n-float64(len(post))+0.5)/(float64(len(post))+0.5))
		for docID, tf := range post {
			if visited++; visited&4095 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			dl := float64(ix.docLen[docID])
			denom := float64(tf) + k1*(1-b+b*dl/avgLen)
			scores[docID] += idf * float64(tf) * (k1 + 1) / denom
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hits := make([]Hit, 0, len(scores))
	for docID, s := range scores {
		hits = append(hits, Hit{Doc: ix.docs[docID], Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc.ID < hits[j].Doc.ID
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits, nil
}
