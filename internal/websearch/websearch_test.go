package websearch

import (
	"fmt"
	"testing"

	"saga/internal/webcorpus"
	"saga/internal/workload"
)

func mkDoc(id, title, text string) *webcorpus.Document {
	return &webcorpus.Document{ID: id, Title: title, Text: text, Version: 1}
}

func TestSearchBasicRelevance(t *testing.T) {
	ix := NewIndex([]*webcorpus.Document{
		mkDoc("d1", "Basketball news", "The basketball team won again. Basketball is popular."),
		mkDoc("d2", "Cooking", "A recipe for bread and soup."),
		mkDoc("d3", "Mixed", "The team cooked bread after basketball."),
	})
	hits := ix.Search("basketball", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	if hits[0].Doc.ID != "d1" {
		t.Fatalf("top hit = %s, want d1 (highest tf)", hits[0].Doc.ID)
	}
	if hits[0].Score <= hits[1].Score {
		t.Fatal("scores not descending")
	}
}

func TestSearchMultiTerm(t *testing.T) {
	ix := NewIndex([]*webcorpus.Document{
		mkDoc("d1", "", "alpha beta gamma"),
		mkDoc("d2", "", "alpha alpha alpha"),
		mkDoc("d3", "", "beta gamma delta"),
	})
	hits := ix.Search("alpha beta", 10)
	if len(hits) != 3 {
		t.Fatalf("hits = %d", len(hits))
	}
	// d1 matches both terms and should beat single-term docs.
	if hits[0].Doc.ID != "d1" {
		t.Fatalf("top = %s, want d1", hits[0].Doc.ID)
	}
}

func TestSearchEdgeCases(t *testing.T) {
	ix := NewIndex(nil)
	if got := ix.Search("anything", 5); got != nil {
		t.Fatalf("empty index search = %v", got)
	}
	ix2 := NewIndex([]*webcorpus.Document{mkDoc("d1", "t", "text")})
	if got := ix2.Search("", 5); got != nil {
		t.Fatalf("empty query = %v", got)
	}
	if got := ix2.Search("text", 0); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
	if got := ix2.Search("zzz-unknown-term", 5); len(got) != 0 {
		t.Fatalf("unknown term = %v", got)
	}
}

func TestSearchTopKTruncation(t *testing.T) {
	var docs []*webcorpus.Document
	for i := 0; i < 30; i++ {
		docs = append(docs, mkDoc(fmt.Sprintf("d%02d", i), "", "common term here"))
	}
	ix := NewIndex(docs)
	hits := ix.Search("common", 7)
	if len(hits) != 7 {
		t.Fatalf("hits = %d, want 7", len(hits))
	}
}

func TestIDFRareTermWins(t *testing.T) {
	var docs []*webcorpus.Document
	for i := 0; i < 20; i++ {
		docs = append(docs, mkDoc(fmt.Sprintf("c%02d", i), "", "common filler content"))
	}
	docs = append(docs, mkDoc("rare", "", "common filler content plus uniqueword"))
	ix := NewIndex(docs)
	hits := ix.Search("uniqueword common", 3)
	if hits[0].Doc.ID != "rare" {
		t.Fatalf("top = %s, want rare-term doc", hits[0].Doc.ID)
	}
}

func TestUpdateReindexes(t *testing.T) {
	d := mkDoc("d1", "", "original content about cats")
	ix := NewIndex([]*webcorpus.Document{d, mkDoc("d2", "", "dogs only")})
	if hits := ix.Search("cats", 5); len(hits) != 1 {
		t.Fatalf("pre-update hits = %v", hits)
	}
	d.Text = "now about birds"
	d.Version++
	ix.Update(d)
	if hits := ix.Search("cats", 5); len(hits) != 0 {
		t.Fatalf("stale postings after update: %v", hits)
	}
	if hits := ix.Search("birds", 5); len(hits) != 1 {
		t.Fatalf("new postings missing: %v", hits)
	}
	if ix.NumDocs() != 2 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
}

func TestDocLookup(t *testing.T) {
	ix := NewIndex([]*webcorpus.Document{mkDoc("d1", "t", "x")})
	if _, ok := ix.Doc("d1"); !ok {
		t.Fatal("Doc(d1) missing")
	}
	if _, ok := ix.Doc("nope"); ok {
		t.Fatal("Doc(nope) found")
	}
}

func TestSearchOverGeneratedCorpus(t *testing.T) {
	w, err := workload.GenerateKG(workload.KGConfig{NumPeople: 40, NumClusters: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	docs := webcorpus.Generate(w, webcorpus.Config{NumDocs: 150, Seed: 31})
	ix := NewIndex(docs)
	// Search for a person by name: docs mentioning that person should
	// surface.
	var person string
	for _, d := range docs {
		if len(d.Gold) > 0 {
			person = d.Gold[0].Surface
			break
		}
	}
	if person == "" {
		t.Skip("no entity docs generated")
	}
	hits := ix.Search(person, 10)
	if len(hits) == 0 {
		t.Fatalf("no hits for known person %q", person)
	}
	// At least one of the top hits must actually mention the person.
	found := false
	for _, h := range hits[:minInt(3, len(hits))] {
		for _, gm := range h.Doc.Gold {
			if gm.Surface == person {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("top hits for %q do not mention them", person)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
