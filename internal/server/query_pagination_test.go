package server

import (
	"fmt"
	"net/http"
	"strings"
	"testing"

	"saga/internal/kg"
	"saga/saga"
)

// paginationServer stands up /query over a graph with one team of
// nMembers members — no embeddings or search index needed.
func paginationServer(t *testing.T, nMembers int) (*Server, []string) {
	t.Helper()
	g := kg.NewGraphWithShards(8)
	member, _ := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	team, err := g.AddEntity(kg.Entity{Key: "team", Name: "Team"})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 0, nMembers)
	batch := make([]kg.Triple, 0, nMembers)
	for i := 0; i < nMembers; i++ {
		key := fmt.Sprintf("p%03d", i)
		id, err := g.AddEntity(kg.Entity{Key: key, Name: key})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		batch = append(batch, kg.Triple{Subject: id, Predicate: member, Object: kg.EntityValue(team)})
	}
	if _, err := g.AssertBatch(batch); err != nil {
		t.Fatal(err)
	}
	srv, err := New(saga.New(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv, keys
}

// Walking /query cursors to exhaustion must visit every binding exactly
// once, in pages of the requested size, with no next_cursor on the final
// page.
func TestQueryEndpointCursorPagination(t *testing.T) {
	const nMembers = 57
	const pageSize = 10
	srv, keys := paginationServer(t, nMembers)
	h := srv.Handler()

	clause := `{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"team"}}`
	seen := make(map[string]bool, nMembers)
	cursor := ""
	pages := 0
	for {
		body := fmt.Sprintf(`{"clauses":[%s],"limit":%d`, clause, pageSize)
		if cursor != "" {
			body += fmt.Sprintf(`,"cursor":%q`, cursor)
		}
		body += "}"
		rec, resp := do(t, h, "POST", "/query", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("page %d: status = %d body %v", pages, rec.Code, resp)
		}
		if limit := int(resp["limit"].(float64)); limit != pageSize {
			t.Fatalf("page %d: applied limit = %d, want %d", pages, limit, pageSize)
		}
		bindings := resp["bindings"].([]any)
		for _, b := range bindings {
			key := b.(map[string]any)["p"].(map[string]any)["key"].(string)
			if seen[key] {
				t.Fatalf("page %d: binding %q already returned by an earlier page", pages, key)
			}
			seen[key] = true
		}
		pages++
		next, more := resp["next_cursor"].(string)
		remaining := nMembers - len(seen)
		if more {
			if len(bindings) != pageSize {
				t.Fatalf("page %d: %d bindings with next_cursor set, want full page of %d", pages, len(bindings), pageSize)
			}
			if remaining == 0 {
				t.Fatalf("page %d: next_cursor set but all %d bindings already seen", pages, nMembers)
			}
			cursor = next
			continue
		}
		if len(bindings) != nMembers%pageSize {
			t.Fatalf("final page has %d bindings, want %d", len(bindings), nMembers%pageSize)
		}
		break
	}
	if len(seen) != nMembers {
		t.Fatalf("cursor walk visited %d distinct bindings, want %d", len(seen), nMembers)
	}
	if want := nMembers/pageSize + 1; pages != want {
		t.Fatalf("cursor walk took %d pages, want %d", pages, want)
	}
	for _, key := range keys {
		if !seen[key] {
			t.Fatalf("binding %q missing from the paged walk", key)
		}
	}
}

// Serving-path guards: clause cap, body cap, default and maximum limit,
// and cursor validation.
func TestQueryEndpointGuards(t *testing.T) {
	srv, _ := paginationServer(t, 5)
	h := srv.Handler()
	clause := `{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"team"}}`

	// 33 clauses: rejected before any planning.
	clauses := make([]string, maxQueryClauses+1)
	for i := range clauses {
		clauses[i] = clause
	}
	rec, _ := do(t, h, "POST", "/query", `{"clauses":[`+strings.Join(clauses, ",")+`]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("%d clauses: status = %d, want 400", len(clauses), rec.Code)
	}

	// Body over 1 MiB: rejected with 413.
	big := `{"clauses":[` + clause + `],"cursor":"` + strings.Repeat("A", maxQueryBodyBytes) + `"}`
	rec, _ = do(t, h, "POST", "/query", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status = %d, want 413", rec.Code)
	}

	// Omitted limit: the default is applied and echoed.
	rec, resp := do(t, h, "POST", "/query", `{"clauses":[`+clause+`]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("default limit: status = %d body %v", rec.Code, resp)
	}
	if limit := int(resp["limit"].(float64)); limit != defaultQueryLimit {
		t.Fatalf("default limit = %d, want %d", limit, defaultQueryLimit)
	}
	if _, more := resp["next_cursor"]; more {
		t.Fatal("next_cursor set on an exhausted result")
	}

	// Explicit limit above the cap: clamped, not rejected.
	rec, resp = do(t, h, "POST", "/query", `{"clauses":[`+clause+`],"limit":999999}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("huge limit: status = %d", rec.Code)
	}
	if limit := int(resp["limit"].(float64)); limit != maxQueryLimit {
		t.Fatalf("clamped limit = %d, want %d", limit, maxQueryLimit)
	}

	// Non-positive limit: rejected.
	for _, bad := range []string{"0", "-3"} {
		rec, _ = do(t, h, "POST", "/query", `{"clauses":[`+clause+`],"limit":`+bad+`}`)
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("limit %s: status = %d, want 400", bad, rec.Code)
		}
	}

	// Garbage cursor: rejected.
	rec, _ = do(t, h, "POST", "/query", `{"clauses":[`+clause+`],"cursor":"!!!"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage cursor: status = %d, want 400", rec.Code)
	}
}
