package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"saga/saga"
)

// Live subscription endpoint: POST /subscribe with a /query-style body
//
//	{"clauses": [...], "coalesce_ms": 25, "buffer": 16, "max_pending": 4096}
//
// streams the standing query's answer set as newline-delimited JSON:
// first a reset event carrying the full answer set, then one event per
// coalescing window with the incremental adds and retracts:
//
//	{"adds": [...], "retracts": [...], "watermark": 412, "reset": true}
//	{"adds": [{"p": {"key": "e7", "name": "..."}}], "retracts": [], "watermark": 430}
//
// Bindings render exactly as /query bindings. The stream runs until the
// client disconnects or the subscriber is evicted for not draining fast
// enough (saga.ErrSlowSubscriber), in which case a final
// {"error": ...} line is written. Each event write carries its own
// deadline (subscribeWriteTimeout), which also overrides the server's
// global write timeout for this connection — long-lived streams are
// expected here.
//
// Overload semantics: /subscribe is Subscribe-class traffic, the lowest
// admission priority, and its admission slot is held for the stream's
// whole life — the class's in-flight limit is therefore a concurrent-
// subscriber cap (kgserve -max-subscriptions). The class has no wait
// queue: a subscriber beyond the cap is shed immediately with 429 +
// Retry-After, and a draining server answers 503 + Retry-After. No
// request budget applies (streams are meant to outlive any deadline);
// the slow-client eviction above is what bounds a stream's cost.
const (
	// subscribeWriteTimeout bounds one event write to a slow client.
	subscribeWriteTimeout = 10 * time.Second
	// maxSubscribeCoalesceMS caps the requested coalescing window.
	maxSubscribeCoalesceMS = 10_000
)

type subscribeRequest struct {
	Clauses []queryClauseJSON `json:"clauses"`
	// CoalesceMS is the delta-batching window in milliseconds
	// (default 10, max 10000).
	CoalesceMS int `json:"coalesce_ms"`
	// Buffer is the event channel capacity (default 16).
	Buffer int `json:"buffer"`
	// MaxPending is the undelivered-delta bound beyond which the
	// subscriber is evicted (default 4096).
	MaxPending int `json:"max_pending"`
}

// subscribeEventJSON is the NDJSON shape of one subscription event.
type subscribeEventJSON struct {
	Adds      []map[string]any `json:"adds"`
	Retracts  []map[string]any `json:"retracts"`
	Watermark uint64           `json:"watermark"`
	Reset     bool             `json:"reset,omitempty"`
}

func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBodyBytes)
	var req subscribeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Clauses) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no clauses"))
		return
	}
	if len(req.Clauses) > maxQueryClauses {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d clauses exceeds the maximum of %d", len(req.Clauses), maxQueryClauses))
		return
	}
	if req.CoalesceMS < 0 || req.CoalesceMS > maxSubscribeCoalesceMS {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad coalesce_ms %d", req.CoalesceMS))
		return
	}
	clauses, status, err := s.parseClauses(req.Clauses)
	if err != nil {
		writeError(w, status, err)
		return
	}
	sub, err := s.Platform.Subscribe(clauses, saga.SubscribeOptions{
		Buffer:     req.Buffer,
		Coalesce:   time.Duration(req.CoalesceMS) * time.Millisecond,
		MaxPending: req.MaxPending,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	defer sub.Close()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	g := s.Platform.Graph()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				// Evicted by the hub: tell the client why before closing.
				if err := sub.Err(); err != nil {
					_ = rc.SetWriteDeadline(time.Now().Add(subscribeWriteTimeout))
					_ = enc.Encode(map[string]string{"error": err.Error()})
					_ = rc.Flush()
				}
				return
			}
			line := subscribeEventJSON{
				Adds:      make([]map[string]any, 0, len(ev.Adds)),
				Retracts:  make([]map[string]any, 0, len(ev.Retracts)),
				Watermark: ev.Watermark,
				Reset:     ev.Reset,
			}
			for _, b := range ev.Adds {
				line.Adds = append(line.Adds, renderBinding(g, b))
			}
			for _, b := range ev.Retracts {
				line.Retracts = append(line.Retracts, renderBinding(g, b))
			}
			if err := rc.SetWriteDeadline(time.Now().Add(subscribeWriteTimeout)); err != nil {
				return
			}
			if err := enc.Encode(line); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		}
	}
}
