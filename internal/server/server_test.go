package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"saga/internal/kg"
	"saga/saga"
)

func testServer(t *testing.T) (*Server, *saga.World) {
	t.Helper()
	w, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: 40, NumClusters: 4, OccupationsPerPerson: 2, Seed: 211})
	if err != nil {
		t.Fatal(err)
	}
	p := saga.New(w.Graph)
	if err := p.TrainEmbeddings(saga.EmbeddingOptions{
		Train: saga.TrainConfig{Model: saga.DistMult, Dim: 16, Epochs: 15, Workers: 2, Seed: 1},
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.BuildAnnotator(saga.AnnotateConfig{Mode: saga.ModeContextual, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	// Calibrate verifier roughly.
	occ := w.Preds["occupation"]
	var pos, neg [][3]uint32
	for _, person := range w.People[:15] {
		for _, f := range w.Graph.Facts(person, occ) {
			pos = append(pos, [3]uint32{uint32(person), uint32(occ), uint32(f.Object.Entity)})
		}
		neg = append(neg, [3]uint32{uint32(person), uint32(occ), uint32(w.People[(int(person)+3)%len(w.People)])})
	}
	if err := p.CalibrateVerifier(pos, neg); err != nil {
		t.Fatal(err)
	}
	docs := saga.GenerateCorpus(w, saga.CorpusConfig{NumDocs: 80, Seed: 211})
	srv, err := New(p, saga.NewSearchIndex(docs))
	if err != nil {
		t.Fatal(err)
	}
	return srv, w
}

func do(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var req *http.Request
	if body == "" {
		req = httptest.NewRequest(method, path, nil)
	} else {
		req = httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, path, rec.Body.String(), err)
		}
	}
	return rec, decoded
}

func TestNewRequiresPlatform(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Fatal("nil platform accepted")
	}
}

func TestHealth(t *testing.T) {
	srv, _ := testServer(t)
	rec, body := do(t, srv.Handler(), "GET", "/health", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if body["status"] != "ok" || body["triples"].(float64) == 0 {
		t.Fatalf("health = %v", body)
	}
}

func TestEntityEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	key := w.Graph.Entity(w.People[0]).Key
	rec, body := do(t, h, "GET", "/entity?key="+key, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, body)
	}
	if body["key"] != key || body["name"] == "" {
		t.Fatalf("entity = %v", body)
	}
	if facts, ok := body["facts"].([]any); !ok || len(facts) == 0 {
		t.Fatalf("entity facts = %v", body["facts"])
	}
	// By numeric ID.
	rec, _ = do(t, h, "GET", "/entity?id=1", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("by-id status = %d", rec.Code)
	}
	// Errors.
	for _, path := range []string{"/entity", "/entity?key=nope", "/entity?id=abc", "/entity?id=999999"} {
		rec, _ := do(t, h, "GET", path, "")
		if rec.Code == http.StatusOK {
			t.Fatalf("%s unexpectedly OK", path)
		}
	}
}

func TestAnnotateEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	name := w.Graph.Entity(w.People[0]).Name
	rec, body := do(t, h, "POST", "/annotate", `{"text":"`+name+` played well last night."}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, body)
	}
	anns := body["annotations"].([]any)
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
	first := anns[0].(map[string]any)
	if first["surface"] == "" || first["key"] == "" {
		t.Fatalf("annotation shape = %v", first)
	}
	// Bad requests.
	rec, _ = do(t, h, "POST", "/annotate", `{"text":""}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty text status = %d", rec.Code)
	}
	rec, _ = do(t, h, "POST", "/annotate", `{bad json`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad json status = %d", rec.Code)
	}
}

func TestRankEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	key := w.Graph.Entity(w.People[0]).Key
	rec, body := do(t, h, "GET", "/rank?subject="+key+"&predicate=occupation", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, body)
	}
	rows := body["ranked"].([]any)
	if len(rows) != 2 {
		t.Fatalf("ranked rows = %v", rows)
	}
	r0 := rows[0].(map[string]any)
	r1 := rows[1].(map[string]any)
	if r0["score"].(float64) < r1["score"].(float64) {
		t.Fatal("rank order wrong")
	}
	rec, _ = do(t, h, "GET", "/rank?subject=nope&predicate=occupation", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown subject status = %d", rec.Code)
	}
}

func TestVerifyEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	g := w.Graph
	subjKey := g.Entity(w.People[0]).Key
	goldKey := g.Entity(w.OccupationGold[w.People[0]][0]).Key
	rec, body := do(t, h, "GET", "/verify?subject="+subjKey+"&predicate=occupation&object="+goldKey, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, body)
	}
	if body["Plausible"] != true {
		t.Fatalf("gold fact verification = %v", body)
	}
}

func TestRelatedEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	key := w.Graph.Entity(w.People[0]).Key
	rec, body := do(t, h, "GET", "/related?key="+key+"&k=5", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, body)
	}
	rows := body["related"].([]any)
	if len(rows) != 5 {
		t.Fatalf("related rows = %d", len(rows))
	}
	rec, _ = do(t, h, "GET", "/related?key="+key+"&k=0", "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("k=0 status = %d", rec.Code)
	}
}

func TestSearchEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	name := w.Graph.Entity(w.People[0]).Name
	rec, body := do(t, h, "GET", "/search?q="+strings.ReplaceAll(name, " ", "+"), "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, body)
	}
	if _, ok := body["hits"].([]any); !ok {
		t.Fatalf("hits shape = %v", body)
	}
	rec, _ = do(t, h, "GET", "/search?q=", "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("empty query status = %d", rec.Code)
	}
	// No index configured.
	srv2 := &Server{Platform: srv.Platform}
	rec2, _ := do(t, srv2.Handler(), "GET", "/search?q=x", "")
	if rec2.Code != http.StatusServiceUnavailable {
		t.Fatalf("missing index status = %d", rec2.Code)
	}
}

// End-to-end adversarial-literal coverage for /query: string objects
// containing the old binding-render separators ('=', ';', "s:" prefixes,
// empty strings) must each produce a distinct binding — 2×2 literal
// combinations means count 4, where the rendered-string dedup collapsed
// one pair.
func TestQueryEndpointAdversarialLiterals(t *testing.T) {
	g := kg.NewGraph()
	subj, err := g.AddEntity(kg.Entity{Key: "s", Name: "S"})
	if err != nil {
		t.Fatal(err)
	}
	pPred, _ := g.AddPredicate(kg.Predicate{Name: "p"})
	qPred, _ := g.AddPredicate(kg.Predicate{Name: "q"})
	for _, v := range []string{"a;y=s:b", "a"} {
		if err := g.Assert(kg.Triple{Subject: subj, Predicate: pPred, Object: kg.StringValue(v)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []string{"", "b;y=s:"} {
		if err := g.Assert(kg.Triple{Subject: subj, Predicate: qPred, Object: kg.StringValue(v)}); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(saga.New(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	body := `{"clauses":[
		{"subject":{"key":"s"},"predicate":"p","object":{"var":"x"}},
		{"subject":{"key":"s"},"predicate":"q","object":{"var":"y"}}]}`
	rec, resp := do(t, srv.Handler(), "POST", "/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, resp)
	}
	if count := int(resp["count"].(float64)); count != 4 {
		t.Fatalf("adversarial-literal bindings = %d, want 4 (distinct literal pairs)", count)
	}
}

func TestQueryEndpoint(t *testing.T) {
	srv, w := testServer(t)
	h := srv.Handler()
	g := w.Graph
	teamKey := g.Entity(w.Teams[0]).Key
	body := `{"clauses":[{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"` + teamKey + `"}}]}`
	rec, resp := do(t, h, "POST", "/query", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, resp)
	}
	count := int(resp["count"].(float64))
	if count != len(w.ClusterMembers[0]) {
		t.Fatalf("bindings = %d, want %d team members", count, len(w.ClusterMembers[0]))
	}
	bindings := resp["bindings"].([]any)
	first := bindings[0].(map[string]any)
	p, ok := first["p"].(map[string]any)
	if !ok || p["key"] == "" || p["name"] == "" {
		t.Fatalf("entity binding shape = %v", first)
	}

	// Join: team members who also hold the cluster award.
	awardKey := g.Entity(w.Awards[0]).Key
	joinBody := `{"clauses":[
		{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"` + teamKey + `"}},
		{"subject":{"var":"p"},"predicate":"award","object":{"key":"` + awardKey + `"}}]}`
	rec, resp = do(t, h, "POST", "/query", joinBody)
	if rec.Code != http.StatusOK {
		t.Fatalf("join status = %d", rec.Code)
	}
	if int(resp["count"].(float64)) > count {
		t.Fatal("join produced more results than single clause")
	}

	// Errors.
	for _, bad := range []string{
		`{"clauses":[]}`,
		`{"clauses":[{"subject":{"var":"p"},"predicate":"nope","object":{"key":"` + teamKey + `"}}]}`,
		`{"clauses":[{"subject":{},"predicate":"memberOf","object":{"key":"` + teamKey + `"}}]}`,
		`{"clauses":[{"subject":{"var":"p","key":"x"},"predicate":"memberOf","object":{"key":"` + teamKey + `"}}]}`,
		`{"clauses":[{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"no-such-key"}}]}`,
		`{bad`,
	} {
		rec, _ := do(t, h, "POST", "/query", bad)
		if rec.Code == http.StatusOK {
			t.Fatalf("bad query %q unexpectedly OK", bad)
		}
	}
}
