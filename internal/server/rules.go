package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"saga/saga"
)

// Rule-layer endpoints. POST /rules installs a Datalog-style rule
// program (see internal/rules for the language); its head predicates
// then answer through POST /query like any base predicate, paginated
// cursors included, because the rules engine attaches to the same query
// engine /query solves against. GET /rules reports the installed
// program and the engine's maintenance counters. POST /derive runs one
// in-graph analytics pass (connected components, sameAs closure, k-hop
// reachability) and materializes it as a derived predicate.

// maxRulesBody bounds the POST /rules and POST /derive bodies, like the
// query endpoint's cap.
const maxRulesBody = 1 << 20

// rulesRequest is the POST /rules body.
type rulesRequest struct {
	// Text is the rule program.
	Text string `json:"text"`
}

// handleRulesDefine serves POST /rules.
func (s *Server) handleRulesDefine(w http.ResponseWriter, r *http.Request) {
	var req rulesRequest
	body := http.MaxBytesReader(w, r.Body, maxRulesBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if err := s.Platform.DefineRulesText(req.Text); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	eng := s.Platform.Rules()
	writeJSON(w, http.StatusOK, map[string]any{
		"rules": eng.RuleSet().Len(),
		"facts": eng.Stats().Facts,
	})
}

// handleRulesGet serves GET /rules.
func (s *Server) handleRulesGet(w http.ResponseWriter, r *http.Request) {
	eng := s.Platform.Rules()
	if eng == nil {
		writeError(w, http.StatusNotFound, errors.New("no rules installed"))
		return
	}
	g := s.Platform.Graph()
	heads := make([]string, 0)
	for _, p := range eng.RuleSet().Heads() {
		if pr := g.Predicate(p); pr != nil {
			heads = append(heads, pr.Name)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"source": eng.RuleSet().Source(),
		"rules":  eng.RuleSet().Len(),
		"heads":  heads,
		"stats":  eng.Stats(),
	})
}

// deriveRequest is the POST /derive body (saga.DeriveRequest's JSON
// shape).
type deriveRequest struct {
	Kind       string   `json:"kind"`
	Out        string   `json:"out"`
	Source     string   `json:"source,omitempty"`
	SourceKeys []string `json:"source_keys,omitempty"`
	K          int      `json:"k,omitempty"`
}

// handleDerive serves POST /derive.
func (s *Server) handleDerive(w http.ResponseWriter, r *http.Request) {
	var req deriveRequest
	body := http.MaxBytesReader(w, r.Body, maxRulesBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	rep, err := s.Platform.DeriveStats(saga.DeriveRequest{
		Kind:       req.Kind,
		Out:        req.Out,
		Source:     req.Source,
		SourceKeys: req.SourceKeys,
		K:          req.K,
	})
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"facts":     rep.Facts,
		"watermark": rep.Watermark,
	})
}
