// Package server exposes the knowledge platform over HTTP: entity lookup,
// semantic annotation, fact ranking, fact verification, related entities,
// web search, paginated conjunctive queries (with point-in-time "as_of"
// reads), and live standing-query subscriptions (POST /subscribe,
// NDJSON). It is the serving layer of Fig 1, used by cmd/kgserve.
//
// The potentially-slow handlers are bounded-work by construction:
// POST /query streams its solve with an enforced page limit and opaque
// resume cursors (see query.go), /subscribe coalesces deltas and evicts
// clients that stop draining (see subscribe.go), and /query, /rank,
// /related, /search, /subscribe all thread the request context into
// their compute so a disconnected client aborts the work instead of
// burning CPU to completion.
//
// # Admission control
//
// Every route passes through a per-class admission gate
// (internal/admission) before its handler runs: /health is exempt,
// GETs and /query and /annotate are Read class, /ingest and the rule
// endpoints are Write class, and /subscribe holds a Subscribe-class
// slot for the stream's whole life. At capacity a request waits in a
// bounded FIFO queue with a queue deadline; overflow and deadline
// expiry shed with 429 + Retry-After, and a draining server (StartDrain)
// sheds everything non-exempt with 503 + Retry-After. Admission also
// installs the class's request budget as a context deadline, so a solve
// that outlives its usefulness is cancelled mid-join and answered with
// 503 (the budget expired; the client is still there) rather than
// silently dropped (the client disconnected). Per-class gauges and shed
// counters are surfaced under /health "admission".
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"saga/internal/admission"
	"saga/internal/kg"
	"saga/internal/websearch"
	"saga/saga"
)

// Server holds the serving dependencies. Search is optional (nil disables
// /search). QueryWorkers sets the parallelism of every POST /query solve
// (0 or 1 runs sequentially); responses are byte-identical at any worker
// count, so it is purely a throughput knob. Admission is the overload
// gate every route passes through; New installs the stock limits
// (admission.DefaultLimits), and callers may replace the controller
// before Handler is first used.
type Server struct {
	Platform     *saga.Platform
	Search       *websearch.Index
	QueryWorkers int
	Admission    *admission.Controller
}

// New builds a Server over an initialized platform.
func New(p *saga.Platform, search *websearch.Index) (*Server, error) {
	if p == nil {
		return nil, errors.New("server: nil platform")
	}
	return &Server{Platform: p, Search: search, Admission: admission.NewController(admission.DefaultLimits())}, nil
}

// StartDrain flips the server into drain mode: every non-exempt route
// sheds with 503 + Retry-After while already-admitted requests run to
// completion. Call it when a shutdown signal arrives, before
// http.Server.Shutdown, so load balancers see the drain instead of
// connection resets.
func (s *Server) StartDrain() { s.Admission.StartDrain() }

// Handler returns the HTTP routing table with each route behind its
// admission class.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /health", s.admit(admission.Exempt, s.handleHealth))
	mux.HandleFunc("GET /entity", s.admit(admission.Read, s.handleEntity))
	mux.HandleFunc("POST /annotate", s.admit(admission.Read, s.handleAnnotate))
	mux.HandleFunc("GET /rank", s.admit(admission.Read, s.handleRank))
	mux.HandleFunc("GET /verify", s.admit(admission.Read, s.handleVerify))
	mux.HandleFunc("GET /related", s.admit(admission.Read, s.handleRelated))
	mux.HandleFunc("GET /search", s.admit(admission.Read, s.handleSearch))
	mux.HandleFunc("POST /query", s.admit(admission.Read, s.handleQuery))
	mux.HandleFunc("POST /subscribe", s.admit(admission.Subscribe, s.handleSubscribe))
	mux.HandleFunc("POST /ingest", s.admit(admission.Write, s.handleIngest))
	mux.HandleFunc("POST /rules", s.admit(admission.Write, s.handleRulesDefine))
	mux.HandleFunc("GET /rules", s.admit(admission.Read, s.handleRulesGet))
	mux.HandleFunc("POST /derive", s.admit(admission.Write, s.handleDerive))
	return mux
}

// admit gates h behind the class's admission limiter and installs the
// class budget on the request context. Sheds are answered here — 429
// with Retry-After for queue overflow/timeout and degradation, 503 for
// drain — so handlers only ever see admitted requests.
func (s *Server) admit(class admission.Class, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Admission == nil {
			// Zero-value Server (built without New): serve ungated.
			h(w, r)
			return
		}
		release, err := s.Admission.Acquire(r.Context(), class)
		if err != nil {
			writeShed(w, err)
			return
		}
		defer release()
		ctx, cancel := s.Admission.WithBudget(r.Context(), class)
		defer cancel()
		h(w, r.WithContext(ctx))
	}
}

// writeShed answers a request the admission gate rejected.
func writeShed(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, admission.ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, admission.ErrQueueFull),
		errors.Is(err, admission.ErrQueueTimeout),
		errors.Is(err, admission.ErrDegraded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	default:
		// The request context ended while queued: the client is gone,
		// nothing useful to write.
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; nothing useful to do.
		_ = err
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// isClientGone reports whether an error means the request context ended —
// the potentially-slow handlers (/query, /rank, /related, /search) thread
// r.Context() into their compute so a disconnected client stops burning
// CPU; when that happens there is no one left to write a response to.
func isClientGone(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// contextEnded handles a compute error caused by the request context
// ending, distinguishing why: when the admission budget expired the
// client is still listening, so it gets 503 + Retry-After (back off,
// the server could not finish in time); when the client disconnected
// there is no one to write to. Returns false for every other error so
// the caller falls through to its normal error path.
func contextEnded(w http.ResponseWriter, r *http.Request, err error) bool {
	if !isClientGone(err) {
		return false
	}
	if errors.Is(context.Cause(r.Context()), admission.ErrBudget) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, admission.ErrBudget)
	}
	return true
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	g := s.Platform.Graph()
	resp := map[string]any{
		"status":     "ok",
		"entities":   g.NumEntities(),
		"predicates": g.NumPredicates(),
		"triples":    g.NumTriples(),
		"plan_cache": s.Platform.QueryPlanCacheStats(),
		"changefeed": s.Platform.ChangefeedStats(),
	}
	if s.Admission != nil {
		resp["admission"] = s.Admission.Stats()
	}
	if s.Platform.Rules() != nil {
		resp["rules"] = s.Platform.RuleStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// entityResponse is the public JSON shape of an entity.
type entityResponse struct {
	ID          uint32   `json:"id"`
	Key         string   `json:"key"`
	Name        string   `json:"name"`
	Aliases     []string `json:"aliases,omitempty"`
	Description string   `json:"description,omitempty"`
	Popularity  float64  `json:"popularity"`
	Types       []string `json:"types,omitempty"`
	Facts       []string `json:"facts,omitempty"`
}

func (s *Server) entityJSON(e *kg.Entity) entityResponse {
	g := s.Platform.Graph()
	resp := entityResponse{
		ID: uint32(e.ID), Key: e.Key, Name: e.Name,
		Aliases: e.Aliases, Description: e.Description, Popularity: e.Popularity,
	}
	for _, t := range e.Types {
		resp.Types = append(resp.Types, g.Ontology().Name(t))
	}
	// Collect (predicate, object) pairs under one read-lock pass, then
	// resolve names after the visitor returns so the render lookups don't
	// run while the graph lock is held.
	type predValue struct {
		pred kg.PredicateID
		obj  kg.Value
	}
	var pvs []predValue
	g.OutgoingFunc(e.ID, func(tr kg.Triple) bool {
		pvs = append(pvs, predValue{pred: tr.Predicate, obj: tr.Object})
		return true
	})
	for _, pv := range pvs {
		p := g.Predicate(pv.pred)
		if p == nil {
			continue
		}
		obj := pv.obj.String()
		if pv.obj.IsEntity() {
			if oe := g.Entity(pv.obj.Entity); oe != nil {
				obj = oe.Name
			}
		}
		resp.Facts = append(resp.Facts, p.Name+" = "+obj)
	}
	return resp
}

// handleEntity serves GET /entity?key=... or ?id=...
func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	g := s.Platform.Graph()
	var e *kg.Entity
	if key := r.URL.Query().Get("key"); key != "" {
		ent, ok := g.EntityByKey(key)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("entity key %q not found", key))
			return
		}
		e = ent
	} else if idStr := r.URL.Query().Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad id %q", idStr))
			return
		}
		e = g.Entity(kg.EntityID(id))
		if e == nil {
			writeError(w, http.StatusNotFound, fmt.Errorf("entity id %s not found", idStr))
			return
		}
	} else {
		writeError(w, http.StatusBadRequest, errors.New("need key or id parameter"))
		return
	}
	writeJSON(w, http.StatusOK, s.entityJSON(e))
}

// annotateRequest is the POST /annotate body.
type annotateRequest struct {
	Text string `json:"text"`
}

type annotationJSON struct {
	Start   int     `json:"start"`
	End     int     `json:"end"`
	Surface string  `json:"surface"`
	Entity  uint32  `json:"entity"`
	Key     string  `json:"key"`
	Name    string  `json:"name"`
	Score   float64 `json:"score"`
}

func (s *Server) handleAnnotate(w http.ResponseWriter, r *http.Request) {
	var req annotateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if req.Text == "" {
		writeError(w, http.StatusBadRequest, errors.New("empty text"))
		return
	}
	anns, err := s.Platform.Annotate(req.Text)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	g := s.Platform.Graph()
	out := make([]annotationJSON, 0, len(anns))
	for _, a := range anns {
		aj := annotationJSON{Start: a.Start, End: a.End, Surface: a.Surface, Entity: uint32(a.Entity), Score: a.Score}
		if e := g.Entity(a.Entity); e != nil {
			aj.Key = e.Key
			aj.Name = e.Name
		}
		out = append(out, aj)
	}
	writeJSON(w, http.StatusOK, map[string]any{"annotations": out})
}

// handleRank serves GET /rank?subject=<key>&predicate=<name>.
func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	g := s.Platform.Graph()
	subj, ok := g.EntityByKey(r.URL.Query().Get("subject"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown subject"))
		return
	}
	pred, ok := g.PredicateByName(r.URL.Query().Get("predicate"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown predicate"))
		return
	}
	ranked, err := s.Platform.RankFactsContext(r.Context(), subj.ID, pred.ID)
	if err != nil {
		if contextEnded(w, r, err) {
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	type row struct {
		Object string  `json:"object"`
		Score  float64 `json:"score"`
	}
	out := make([]row, 0, len(ranked))
	for _, rf := range ranked {
		obj := rf.Triple.Object.String()
		if rf.Triple.Object.IsEntity() {
			if oe := g.Entity(rf.Triple.Object.Entity); oe != nil {
				obj = oe.Name
			}
		}
		out = append(out, row{Object: obj, Score: rf.Score})
	}
	writeJSON(w, http.StatusOK, map[string]any{"ranked": out})
}

// handleVerify serves GET /verify?subject=<key>&predicate=<name>&object=<key>.
func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	g := s.Platform.Graph()
	subj, ok := g.EntityByKey(r.URL.Query().Get("subject"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown subject"))
		return
	}
	pred, ok := g.PredicateByName(r.URL.Query().Get("predicate"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown predicate"))
		return
	}
	obj, ok := g.EntityByKey(r.URL.Query().Get("object"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown object"))
		return
	}
	v, err := s.Platform.VerifyFact(subj.ID, pred.ID, obj.ID)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// handleRelated serves GET /related?key=<key>&k=<n>.
func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	g := s.Platform.Graph()
	e, ok := g.EntityByKey(r.URL.Query().Get("key"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("unknown entity"))
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n <= 0 || n > 1000 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad k %q", ks))
			return
		}
		k = n
	}
	rel, err := s.Platform.RelatedEntitiesContext(r.Context(), e.ID, k)
	if err != nil {
		if contextEnded(w, r, err) {
			return
		}
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	type row struct {
		Key   string  `json:"key"`
		Name  string  `json:"name"`
		Score float64 `json:"score"`
	}
	out := make([]row, 0, len(rel))
	for _, se := range rel {
		rr := row{Score: se.Score}
		if re := g.Entity(se.ID); re != nil {
			rr.Key = re.Key
			rr.Name = re.Name
		}
		out = append(out, rr)
	}
	writeJSON(w, http.StatusOK, map[string]any{"related": out})
}

// handleSearch serves GET /search?q=...&k=10 over the web corpus.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if s.Search == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("search index not configured"))
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, errors.New("empty query"))
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		if n, err := strconv.Atoi(ks); err == nil && n > 0 && n <= 100 {
			k = n
		}
	}
	hits, err := s.Search.SearchContext(r.Context(), q, k)
	if err != nil {
		// Only the request context can produce an error here: either the
		// admission budget expired (503) or the client disconnected
		// (nothing to write).
		contextEnded(w, r, err)
		return
	}
	type row struct {
		ID    string  `json:"id"`
		URL   string  `json:"url"`
		Title string  `json:"title"`
		Score float64 `json:"score"`
	}
	out := make([]row, 0, len(hits))
	for _, h := range hits {
		out = append(out, row{ID: h.Doc.ID, URL: h.Doc.URL, Title: h.Doc.Title, Score: h.Score})
	}
	writeJSON(w, http.StatusOK, map[string]any{"hits": out})
}
