package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"saga/internal/kg"
	"saga/saga"
)

// seedMembershipWorld registers a small member-of world directly on the
// graph: nPeople person entities, two teams, and the memberOf predicate.
func seedMembershipWorld(t *testing.T, g *saga.Graph, nPeople int) ([]kg.EntityID, []kg.EntityID, kg.PredicateID) {
	t.Helper()
	people := make([]kg.EntityID, nPeople)
	for i := range people {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("person%d", i), Name: fmt.Sprintf("Person %d", i)})
		if err != nil {
			t.Fatal(err)
		}
		people[i] = id
	}
	teams := make([]kg.EntityID, 2)
	for i := range teams {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("team%d", i), Name: fmt.Sprintf("Team %d", i)})
		if err != nil {
			t.Fatal(err)
		}
		teams[i] = id
	}
	member, err := g.AddPredicate(kg.Predicate{Name: "memberOf"})
	if err != nil {
		t.Fatal(err)
	}
	return people, teams, member
}

const memberQueryBody = `{"clauses": [{"subject": {"var": "p"}, "predicate": "memberOf", "object": {"key": "team0"}}], "limit": 4}`

// TestQueryEndpointAsOfByteIdentity is the as-of acceptance pin: a
// /query response captured live at watermark W must be byte-identical
// to the same query issued later with "as_of": W — across further
// writes, a checkpoint, and a full close/recover cycle of the durable
// platform, and across cursored pages.
func TestQueryEndpointAsOfByteIdentity(t *testing.T) {
	dir := t.TempDir()
	opts := saga.DurableOptions{Sync: saga.SyncEachCommit, RetainCheckpoints: 4}
	p, _, err := saga.OpenDurablePlatform(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	people, teams, member := seedMembershipWorld(t, g, 10)
	for _, pe := range people[:6] {
		if err := g.Assert(kg.Triple{Subject: pe, Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p.CheckpointDurable(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint history the overlay must replay: one retract, two
	// more adds.
	if !g.Retract(kg.Triple{Subject: people[2], Predicate: member, Object: kg.EntityValue(teams[0])}) {
		t.Fatal("retract failed")
	}
	for _, pe := range people[6:8] {
		if err := g.Assert(kg.Triple{Subject: pe, Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
			t.Fatal(err)
		}
	}
	asOf := g.LastSeq()

	srv1, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	h1 := srv1.Handler()
	recLive, liveBody := do(t, h1, "POST", "/query", memberQueryBody)
	if recLive.Code != http.StatusOK {
		t.Fatalf("live query: %d %v", recLive.Code, liveBody)
	}
	cursor, _ := liveBody["next_cursor"].(string)
	if cursor == "" {
		t.Fatalf("live page 1 has no next_cursor: %v", liveBody)
	}
	page2Body := strings.Replace(memberQueryBody, `"limit": 4`, fmt.Sprintf(`"limit": 4, "cursor": %q`, cursor), 1)
	recLive2, _ := do(t, h1, "POST", "/query", page2Body)
	if recLive2.Code != http.StatusOK {
		t.Fatalf("live page 2: %d", recLive2.Code)
	}
	livePage1, livePage2 := recLive.Body.Bytes(), recLive2.Body.Bytes()

	// Crash boundary: close and recover the platform, then move the live
	// graph past asOf.
	if err := p.CloseDurable(); err != nil {
		t.Fatal(err)
	}
	p2, info, err := saga.OpenDurablePlatform(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer p2.CloseDurable()
	if info.RecoveredLSN != asOf {
		t.Fatalf("recovered LSN %d, want %d", info.RecoveredLSN, asOf)
	}
	g2 := p2.Graph()
	if !g2.Retract(kg.Triple{Subject: people[0], Predicate: member, Object: kg.EntityValue(teams[0])}) {
		t.Fatal("post-recovery retract failed")
	}
	if err := g2.Assert(kg.Triple{Subject: people[9], Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.CheckpointDurable(); err != nil { // newer checkpoint; asOf must still resolve to the older one
		t.Fatal(err)
	}

	srv2, err := New(p2, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2 := srv2.Handler()

	// The live answer moved, so equality below is not vacuous.
	recNow, _ := do(t, h2, "POST", "/query", memberQueryBody)
	if bytes.Equal(recNow.Body.Bytes(), livePage1) {
		t.Fatal("live answer set did not change; as-of equality would be vacuous")
	}

	asOfBody := strings.Replace(memberQueryBody, `"limit": 4`, fmt.Sprintf(`"limit": 4, "as_of": %d`, asOf), 1)
	recAsOf, asOfJSON := do(t, h2, "POST", "/query", asOfBody)
	if recAsOf.Code != http.StatusOK {
		t.Fatalf("as-of query: %d %v", recAsOf.Code, asOfJSON)
	}
	if !bytes.Equal(recAsOf.Body.Bytes(), livePage1) {
		t.Fatalf("as-of page 1 diverged from live capture\nlive:  %s\nas-of: %s", livePage1, recAsOf.Body.Bytes())
	}
	asOfPage2 := strings.Replace(page2Body, `"cursor"`, fmt.Sprintf(`"as_of": %d, "cursor"`, asOf), 1)
	recAsOf2, _ := do(t, h2, "POST", "/query", asOfPage2)
	if !bytes.Equal(recAsOf2.Body.Bytes(), livePage2) {
		t.Fatalf("as-of page 2 diverged from live capture\nlive:  %s\nas-of: %s", livePage2, recAsOf2.Body.Bytes())
	}
}

// TestQueryEndpointAsOfErrors pins the error contract: 410 Gone for
// watermarks behind the retention window, 400 on memory-only platforms.
func TestQueryEndpointAsOfErrors(t *testing.T) {
	dir := t.TempDir()
	p, _, err := saga.OpenDurablePlatform(dir, saga.DurableOptions{Sync: saga.SyncEachCommit}) // newest-only retention
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDurable()
	g := p.Graph()
	people, teams, member := seedMembershipWorld(t, g, 4)
	if err := g.Assert(kg.Triple{Subject: people[0], Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
		t.Fatal(err)
	}
	oldWM, err := p.CheckpointDurable()
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Assert(kg.Triple{Subject: people[1], Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CheckpointDurable(); err != nil { // drops the oldWM checkpoint
		t.Fatal(err)
	}
	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	gone := strings.Replace(memberQueryBody, `"limit": 4`, fmt.Sprintf(`"limit": 4, "as_of": %d`, oldWM-1), 1)
	rec, body := do(t, srv.Handler(), "POST", "/query", gone)
	if rec.Code != http.StatusGone {
		t.Fatalf("behind-retention as_of: %d %v, want 410", rec.Code, body)
	}

	// Memory-only platform: as_of is a 400, not a crash.
	mem := saga.New(kg.NewGraph())
	mg := mem.Graph()
	mp, mt, mm := seedMembershipWorld(t, mg, 2)
	if err := mg.Assert(kg.Triple{Subject: mp[0], Predicate: mm, Object: kg.EntityValue(mt[0])}); err != nil {
		t.Fatal(err)
	}
	msrv, err := New(mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	memReq := strings.Replace(memberQueryBody, `"limit": 4`, `"limit": 4, "as_of": 1`, 1)
	rec, body = do(t, msrv.Handler(), "POST", "/query", memReq)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("memory-platform as_of: %d %v, want 400", rec.Code, body)
	}
}

// TestSubscribeEndpointStreams drives the NDJSON /subscribe stream over
// a real HTTP server: snapshot line first, then coalesced add and
// retract lines as the graph mutates.
func TestSubscribeEndpointStreams(t *testing.T) {
	p := saga.New(kg.NewGraph())
	g := p.Graph()
	people, teams, member := seedMembershipWorld(t, g, 4)
	if err := g.Assert(kg.Triple{Subject: people[0], Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
		t.Fatal(err)
	}
	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := `{"clauses": [{"subject": {"var": "p"}, "predicate": "memberOf", "object": {"key": "team0"}}], "coalesce_ms": 1}`
	resp, err := http.Post(ts.URL+"/subscribe", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)

	readEvent := func() map[string]any {
		t.Helper()
		if !sc.Scan() {
			t.Fatalf("stream ended early: %v", sc.Err())
		}
		var ev map[string]any
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		return ev
	}

	ev := readEvent()
	if ev["reset"] != true {
		t.Fatalf("first event not a reset: %v", ev)
	}
	adds := ev["adds"].([]any)
	if len(adds) != 1 {
		t.Fatalf("snapshot adds: %v", ev)
	}
	if b := adds[0].(map[string]any)["p"].(map[string]any); b["key"] != "person0" {
		t.Fatalf("snapshot binding: %v", adds[0])
	}

	if err := g.Assert(kg.Triple{Subject: people[1], Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
		t.Fatal(err)
	}
	ev = readEvent()
	adds = ev["adds"].([]any)
	if len(adds) != 1 || len(ev["retracts"].([]any)) != 0 {
		t.Fatalf("add event: %v", ev)
	}
	if b := adds[0].(map[string]any)["p"].(map[string]any); b["key"] != "person1" {
		t.Fatalf("add binding: %v", adds[0])
	}

	if !g.Retract(kg.Triple{Subject: people[0], Predicate: member, Object: kg.EntityValue(teams[0])}) {
		t.Fatal("retract failed")
	}
	ev = readEvent()
	rets := ev["retracts"].([]any)
	if len(rets) != 1 {
		t.Fatalf("retract event: %v", ev)
	}
	if b := rets[0].(map[string]any)["p"].(map[string]any); b["key"] != "person0" {
		t.Fatalf("retract binding: %v", rets[0])
	}
}

// TestSubscribeEndpointRejectsBadRequests covers the request guards.
func TestSubscribeEndpointRejectsBadRequests(t *testing.T) {
	p := saga.New(kg.NewGraph())
	seedMembershipWorld(t, p.Graph(), 2)
	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"clauses": []}`, http.StatusBadRequest},
		{`{"clauses": [{"subject": {"var": "p"}, "predicate": "nope", "object": {"key": "team0"}}]}`, http.StatusNotFound},
		{`{"clauses": [{"subject": {"var": "p"}, "predicate": "memberOf", "object": {"key": "team0"}}], "coalesce_ms": 999999}`, http.StatusBadRequest},
	} {
		rec, body := do(t, h, "POST", "/subscribe", tc.body)
		if rec.Code != tc.code {
			t.Fatalf("%s: %d %v, want %d", tc.body, rec.Code, body, tc.code)
		}
	}
}

// TestHealthChangefeed checks the /health changefeed block: watermark,
// durability progress, retention, and subscriber gauges.
func TestHealthChangefeed(t *testing.T) {
	dir := t.TempDir()
	p, _, err := saga.OpenDurablePlatform(dir, saga.DurableOptions{Sync: saga.SyncEachCommit, RetainCheckpoints: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDurable()
	g := p.Graph()
	people, teams, member := seedMembershipWorld(t, g, 3)
	if err := g.Assert(kg.Triple{Subject: people[0], Predicate: member, Object: kg.EntityValue(teams[0])}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.CheckpointDurable(); err != nil {
		t.Fatal(err)
	}
	sub, err := p.Subscribe([]saga.QueryClause{{
		Subject:   saga.QVar("p"),
		Predicate: member,
		Object:    saga.QEntity(teams[0]),
	}}, saga.SubscribeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, body := do(t, srv.Handler(), "GET", "/health", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("health: %d", rec.Code)
	}
	cf, ok := body["changefeed"].(map[string]any)
	if !ok {
		t.Fatalf("health has no changefeed block: %v", body)
	}
	if cf["watermark"].(float64) != float64(g.LastSeq()) {
		t.Fatalf("changefeed watermark: %v, want %d", cf["watermark"], g.LastSeq())
	}
	if cf["durable_lsn"].(float64) != float64(g.LastSeq()) {
		t.Fatalf("changefeed durable_lsn: %v, want %d", cf["durable_lsn"], g.LastSeq())
	}
	if cf["retained_checkpoints"].(float64) != 1 {
		t.Fatalf("changefeed retained_checkpoints: %v", cf["retained_checkpoints"])
	}
	if cf["subscribers"].(float64) != 1 {
		t.Fatalf("changefeed subscribers: %v", cf["subscribers"])
	}
	for _, key := range []string{"slowest_subscriber_lag", "subscriber_evictions"} {
		if _, ok := cf[key]; !ok {
			t.Fatalf("changefeed missing %s: %v", key, cf)
		}
	}
}
