package server

import (
	"fmt"
	"net/http"
	"testing"
)

// explain:true returns the plan — clause order, access paths, estimates
// — and no bindings, without solving the query.
func TestQueryEndpointExplain(t *testing.T) {
	srv, _ := paginationServer(t, 12)
	h := srv.Handler()

	clause := `{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"team"}}`
	rec, resp := do(t, h, "POST", "/query", fmt.Sprintf(`{"clauses":[%s],"explain":true}`, clause))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, resp)
	}
	if _, ok := resp["bindings"]; ok {
		t.Fatal("explain response carries bindings")
	}
	plan := resp["plan"].([]any)
	if len(plan) != 1 {
		t.Fatalf("plan has %d steps, want 1", len(plan))
	}
	step := plan[0].(map[string]any)
	if got := step["path"].(string); got != "posting" {
		t.Fatalf("step path = %q, want posting (bound-object clause)", got)
	}
	if got := int(step["clause"].(float64)); got != 0 {
		t.Fatalf("step clause = %d, want 0", got)
	}
	if got := int(step["estimate"].(float64)); got <= 0 {
		t.Fatalf("step estimate = %d, want positive", got)
	}
	vars := resp["variables"].([]any)
	if len(vars) != 1 || vars[0].(string) != "p" {
		t.Fatalf("variables = %v, want [p]", vars)
	}

	// Explaining a query still validates it.
	rec, _ = do(t, h, "POST", "/query",
		`{"clauses":[{"subject":{"var":"p"},"predicate":"nope","object":{"var":"o"}}],"explain":true}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown predicate under explain: status = %d, want 404", rec.Code)
	}

	// The explain went through the shared plan cache; /health reports it.
	rec, health := do(t, h, "GET", "/health", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("health status = %d", rec.Code)
	}
	pc, ok := health["plan_cache"].(map[string]any)
	if !ok {
		t.Fatalf("health has no plan_cache object: %v", health)
	}
	if got := int(pc["misses"].(float64)); got < 1 {
		t.Fatalf("plan_cache misses = %d, want >= 1 after an explain", got)
	}
}

// A server configured with QueryWorkers > 1 returns byte-identical pages
// and cursors to the sequential server, including a full cursor walk.
func TestQueryEndpointParallelMatchesSequential(t *testing.T) {
	const nMembers = 57
	const pageSize = 10
	seqSrv, _ := paginationServer(t, nMembers)
	parSrv, _ := paginationServer(t, nMembers)
	parSrv.QueryWorkers = 4

	clause := `{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"team"}}`
	walk := func(srv *Server) []string {
		h := srv.Handler()
		var out []string
		cursor := ""
		for {
			body := fmt.Sprintf(`{"clauses":[%s],"limit":%d`, clause, pageSize)
			if cursor != "" {
				body += fmt.Sprintf(`,"cursor":%q`, cursor)
			}
			body += "}"
			rec, resp := do(t, h, "POST", "/query", body)
			if rec.Code != http.StatusOK {
				t.Fatalf("status = %d body %v", rec.Code, resp)
			}
			for _, b := range resp["bindings"].([]any) {
				out = append(out, b.(map[string]any)["p"].(map[string]any)["key"].(string))
			}
			next, more := resp["next_cursor"].(string)
			if !more {
				return out
			}
			cursor = next
		}
	}

	want := walk(seqSrv)
	got := walk(parSrv)
	if len(want) != nMembers || len(got) != len(want) {
		t.Fatalf("walks returned %d sequential / %d parallel rows, want %d", len(want), len(got), nMembers)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("row %d: parallel walk returned %q, sequential %q", i, got[i], want[i])
		}
	}
}
