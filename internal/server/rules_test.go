package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"saga/internal/kg"
	"saga/saga"
)

// jsonBody marshals a request body for do().
func jsonBody(v any) (string, error) {
	b, err := json.Marshal(v)
	return string(b), err
}

// rulesServer builds a small management-chain graph — two disjoint
// reporting lines over one platform — without the embedding/annotator
// machinery the full testServer trains.
func rulesServer(t *testing.T) (*Server, *kg.Graph) {
	t.Helper()
	g := saga.NewGraph()
	p := saga.New(g)
	pred, err := g.AddPredicate(kg.Predicate{Name: "reportsTo"})
	if err != nil {
		t.Fatal(err)
	}
	// Line one: a0 -> a1 -> a2 -> a3. Line two: b0 -> b1.
	mkLine := func(prefix string, n int) []kg.EntityID {
		ids := make([]kg.EntityID, n)
		for i := range ids {
			id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("%s%d", prefix, i), Name: fmt.Sprintf("%s%d", prefix, i)})
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		for i := 0; i+1 < n; i++ {
			if err := g.Assert(kg.Triple{Subject: ids[i], Predicate: pred, Object: kg.EntityValue(ids[i+1])}); err != nil {
				t.Fatal(err)
			}
		}
		return ids
	}
	mkLine("a", 4)
	mkLine("b", 2)
	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv, g
}

const chainProgram = `
# transitive closure of the reporting chain
chain(X, Y) :- reportsTo(X, Y).
chain(X, Z) :- chain(X, Y), reportsTo(Y, Z).
`

// TestRulesEndpointLifecycle: define a program over HTTP, read it back,
// and see its counters surface in /health.
func TestRulesEndpointLifecycle(t *testing.T) {
	srv, _ := rulesServer(t)
	h := srv.Handler()

	// No rules yet: GET /rules is a 404 and /health has no rules block.
	rec, _ := do(t, h, "GET", "/rules", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET /rules before define: status = %d", rec.Code)
	}
	_, health := do(t, h, "GET", "/health", "")
	if _, ok := health["rules"]; ok {
		t.Fatalf("health advertises rules before any are defined: %v", health)
	}

	body, err := jsonBody(map[string]string{"text": chainProgram})
	if err != nil {
		t.Fatal(err)
	}
	rec, resp := do(t, h, "POST", "/rules", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("POST /rules: status = %d body %v", rec.Code, resp)
	}
	// Closure of a 4-line is 3+2+1 = 6 facts, plus 1 from the 2-line.
	if resp["rules"].(float64) != 2 || resp["facts"].(float64) != 7 {
		t.Fatalf("define response = %v, want 2 rules / 7 facts", resp)
	}

	rec, resp = do(t, h, "GET", "/rules", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /rules: status = %d", rec.Code)
	}
	if resp["source"] == "" || resp["rules"].(float64) != 2 {
		t.Fatalf("GET /rules = %v", resp)
	}
	heads, ok := resp["heads"].([]any)
	if !ok || len(heads) != 1 || heads[0] != "chain" {
		t.Fatalf("heads = %v, want [chain]", resp["heads"])
	}

	_, health = do(t, h, "GET", "/health", "")
	stats, ok := health["rules"].(map[string]any)
	if !ok || stats["Facts"].(float64) != 7 {
		t.Fatalf("health rules block = %v", health["rules"])
	}

	// A bad program is a 400 and leaves the installed one in place.
	body, err = jsonBody(map[string]string{"text": "chain(X, Y) :- nosuchpred(X, Y)."})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ = do(t, h, "POST", "/rules", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad program: status = %d", rec.Code)
	}
	_, resp = do(t, h, "GET", "/rules", "")
	if resp["rules"].(float64) != 2 {
		t.Fatalf("failed define clobbered the program: %v", resp)
	}
}

// TestDerivedPredicateOverQueryEndpoint: a derived predicate answers
// through POST /query like a base one, and a limit-1 cursor walk
// re-enumerates the same rows in the same order with no repeats.
func TestDerivedPredicateOverQueryEndpoint(t *testing.T) {
	srv, _ := rulesServer(t)
	h := srv.Handler()
	body, err := jsonBody(map[string]string{"text": chainProgram})
	if err != nil {
		t.Fatal(err)
	}
	if rec, resp := do(t, h, "POST", "/rules", body); rec.Code != http.StatusOK {
		t.Fatalf("define: %d %v", rec.Code, resp)
	}

	queryBody := func(cursor string, limit int) string {
		req := map[string]any{
			"clauses": []map[string]any{{
				"subject":   map[string]any{"key": "a0"},
				"predicate": "chain",
				"object":    map[string]any{"var": "who"},
			}},
			"limit": limit,
		}
		if cursor != "" {
			req["cursor"] = cursor
		}
		b, err := jsonBody(req)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	names := func(resp map[string]any) []string {
		var out []string
		for _, b := range resp["bindings"].([]any) {
			who := b.(map[string]any)["who"].(map[string]any)
			out = append(out, who["name"].(string))
		}
		return out
	}

	// One page holds everyone above a0: a1, a2, a3.
	rec, resp := do(t, h, "POST", "/query", queryBody("", 100))
	if rec.Code != http.StatusOK {
		t.Fatalf("query: %d %v", rec.Code, resp)
	}
	full := names(resp)
	if len(full) != 3 {
		t.Fatalf("chain(a0, who) = %v, want 3 answers", full)
	}
	if _, ok := resp["next_cursor"]; ok {
		t.Fatalf("spurious next_cursor on a complete page: %v", resp)
	}

	// Limit-1 cursor walk matches the full enumeration exactly.
	var walked []string
	cursor := ""
	for range len(full) + 1 {
		rec, resp := do(t, h, "POST", "/query", queryBody(cursor, 1))
		if rec.Code != http.StatusOK {
			t.Fatalf("cursored query: %d %v", rec.Code, resp)
		}
		walked = append(walked, names(resp)...)
		next, ok := resp["next_cursor"].(string)
		if !ok {
			break
		}
		cursor = next
	}
	if fmt.Sprint(walked) != fmt.Sprint(full) {
		t.Fatalf("cursor walk = %v, full page = %v", walked, full)
	}
}

// TestDeriveEndpoint: POST /derive materializes connected components and
// the output predicate answers through /query.
func TestDeriveEndpoint(t *testing.T) {
	srv, _ := rulesServer(t)
	h := srv.Handler()
	// Analytics need an engine; an empty program is enough.
	body, err := jsonBody(map[string]string{"text": ""})
	if err != nil {
		t.Fatal(err)
	}
	if rec, resp := do(t, h, "POST", "/rules", body); rec.Code != http.StatusOK {
		t.Fatalf("define: %d %v", rec.Code, resp)
	}

	body, err = jsonBody(map[string]any{"kind": "components", "out": "component"})
	if err != nil {
		t.Fatal(err)
	}
	rec, resp := do(t, h, "POST", "/derive", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("derive: %d %v", rec.Code, resp)
	}
	// Six connected entities across the two lines.
	if resp["facts"].(float64) != 6 {
		t.Fatalf("derive report = %v, want 6 facts", resp)
	}

	// component(X, rep) for the b-line: both members, representative b0.
	qb, err := jsonBody(map[string]any{
		"clauses": []map[string]any{{
			"subject":   map[string]any{"var": "X"},
			"predicate": "component",
			"object":    map[string]any{"key": "b0"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, resp = do(t, h, "POST", "/query", qb)
	if rec.Code != http.StatusOK {
		t.Fatalf("component query: %d %v", rec.Code, resp)
	}
	if resp["count"].(float64) != 2 {
		t.Fatalf("b-component = %v, want 2 members", resp)
	}

	// Unknown kinds and k-hop without k are 400s.
	for _, bad := range []map[string]any{
		{"kind": "nope", "out": "x"},
		{"kind": "khop", "out": "near", "source_keys": []string{"a0"}},
		{"kind": "khop", "out": "near", "k": 2},
	} {
		b, err := jsonBody(bad)
		if err != nil {
			t.Fatal(err)
		}
		if rec, _ := do(t, h, "POST", "/derive", b); rec.Code != http.StatusBadRequest {
			t.Fatalf("derive %v: status = %d, want 400", bad, rec.Code)
		}
	}
}
