package server

import (
	"net/http"
	"strings"
	"testing"

	"saga/saga"
)

// ingestServer builds a server over an untrained platform: /ingest,
// /query, and /health need no embeddings.
func ingestServer(t *testing.T) (*Server, *saga.World) {
	t.Helper()
	w, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: 30, NumClusters: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(saga.New(w.Graph), nil)
	if err != nil {
		t.Fatal(err)
	}
	return srv, w
}

func TestIngestEndpoint(t *testing.T) {
	srv, w := ingestServer(t)
	h := srv.Handler()
	g := w.Graph
	a := g.Entity(w.People[0]).Key
	b := g.Entity(w.People[1]).Key
	before := g.NumTriples()

	body := `{"asserts":[{"subject":"` + a + `","predicate":"collaborator","object":{"key":"` + b + `"}}]}`
	rec, resp := do(t, h, "POST", "/ingest", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, resp)
	}
	if resp["added"].(float64) != 1 || resp["watermark"].(float64) == 0 {
		t.Fatalf("ingest response = %v", resp)
	}
	if g.NumTriples() != before+1 {
		t.Fatalf("triples = %d, want %d", g.NumTriples(), before+1)
	}
	// Re-asserting dedups.
	rec, resp = do(t, h, "POST", "/ingest", body)
	if rec.Code != http.StatusOK || resp["added"].(float64) != 0 {
		t.Fatalf("re-assert = %d %v", rec.Code, resp)
	}
	// The new fact answers through /query.
	qbody := `{"clauses":[{"subject":{"key":"` + a + `"},"predicate":"collaborator","object":{"var":"x"}}]}`
	rec, resp = do(t, h, "POST", "/query", qbody)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status = %d", rec.Code)
	}
	if resp["count"].(float64) < 1 {
		t.Fatalf("asserted fact not queryable: %v", resp)
	}
	// Retract removes it; retracting again is a no-op.
	rbody := `{"retracts":[{"subject":"` + a + `","predicate":"collaborator","object":{"key":"` + b + `"}}]}`
	rec, resp = do(t, h, "POST", "/ingest", rbody)
	if rec.Code != http.StatusOK || resp["retracted"].(float64) != 1 {
		t.Fatalf("retract = %d %v", rec.Code, resp)
	}
	rec, resp = do(t, h, "POST", "/ingest", rbody)
	if rec.Code != http.StatusOK || resp["retracted"].(float64) != 0 {
		t.Fatalf("re-retract = %d %v", rec.Code, resp)
	}
	if g.NumTriples() != before {
		t.Fatalf("triples after retract = %d, want %d", g.NumTriples(), before)
	}

	// Literal objects work too.
	lit := `{"asserts":[{"subject":"` + a + `","predicate":"followers","object":{"int":42}}]}`
	rec, resp = do(t, h, "POST", "/ingest", lit)
	if rec.Code != http.StatusOK || resp["added"].(float64) != 1 {
		t.Fatalf("literal assert = %d %v", rec.Code, resp)
	}

	// Errors: empty batch, unknown subject/predicate, variable object,
	// malformed JSON, partial-batch rejection (bad triple second).
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{}`, http.StatusBadRequest},
		{`{"asserts":[{"subject":"nope","predicate":"collaborator","object":{"key":"` + b + `"}}]}`, http.StatusNotFound},
		{`{"asserts":[{"subject":"` + a + `","predicate":"nope","object":{"key":"` + b + `"}}]}`, http.StatusNotFound},
		{`{"asserts":[{"subject":"` + a + `","predicate":"collaborator","object":{"var":"x"}}]}`, http.StatusBadRequest},
		{`{bad`, http.StatusBadRequest},
	} {
		rec, _ := do(t, h, "POST", "/ingest", tc.body)
		if rec.Code != tc.code {
			t.Fatalf("ingest %q status = %d, want %d", tc.body, rec.Code, tc.code)
		}
	}
	// A bad triple anywhere rejects the whole batch: nothing applied.
	mid := g.NumTriples()
	mixed := `{"asserts":[
		{"subject":"` + a + `","predicate":"collaborator","object":{"key":"` + b + `"}},
		{"subject":"nope","predicate":"collaborator","object":{"key":"` + b + `"}}]}`
	rec, _ = do(t, h, "POST", "/ingest", mixed)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("mixed batch status = %d", rec.Code)
	}
	if g.NumTriples() != mid {
		t.Fatalf("partial batch applied: triples %d -> %d", mid, g.NumTriples())
	}
	// Oversized body answers 413.
	big := `{"asserts":[{"subject":"` + strings.Repeat("x", maxQueryBodyBytes) + `"}]}`
	rec, _ = do(t, h, "POST", "/ingest", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status = %d", rec.Code)
	}
	// Batches past the op cap answer 400.
	var sb strings.Builder
	sb.WriteString(`{"retracts":[`)
	for i := 0; i <= maxIngestOps; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"subject":"` + a + `","predicate":"collaborator","object":{"key":"` + b + `"}}`)
	}
	sb.WriteString(`]}`)
	rec, _ = do(t, h, "POST", "/ingest", sb.String())
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d", rec.Code)
	}
}

// TestIngestDurableWatermark pins the durable contract: the response
// watermark is the fsync-acknowledged LSN covering the batch.
func TestIngestDurableWatermark(t *testing.T) {
	w, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: 10, NumClusters: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := saga.OpenDurablePlatform(t.TempDir(), saga.DurableOptions{Sync: saga.SyncEachCommit})
	if err != nil {
		t.Fatal(err)
	}
	defer p.CloseDurable()
	if err := saga.ImportGraph(p.Graph(), w.Graph); err != nil {
		t.Fatal(err)
	}
	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	a := g.Entity(w.People[0]).Key
	b := g.Entity(w.People[1]).Key
	body := `{"asserts":[{"subject":"` + a + `","predicate":"collaborator","object":{"key":"` + b + `"}}]}`
	rec, resp := do(t, srv.Handler(), "POST", "/ingest", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %v", rec.Code, resp)
	}
	wm := uint64(resp["watermark"].(float64))
	if wm != g.LastSeq() {
		t.Fatalf("watermark = %d, graph at %d", wm, g.LastSeq())
	}
	if durable := p.Durability().DurableLSN(); durable < wm {
		t.Fatalf("durable LSN %d behind response watermark %d", durable, wm)
	}
}
