package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"saga/internal/kg"
	"saga/saga"
)

// Conjunctive query endpoint: POST /query with a JSON body like
//
//	{"clauses": [
//	  {"subject": {"var": "p"}, "predicate": "memberOf", "object": {"key": "team0"}},
//	  {"subject": {"var": "p"}, "predicate": "award",    "object": {"key": "award0"}}
//	], "limit": 100, "cursor": "..."}
//
// Each term is exactly one of: {"var": name}, {"key": entityKey},
// {"string": s}, {"int": n}. The response lists one binding object per
// answer, with entity values rendered as {key, name}, plus the applied
// "limit", the result "count", and — when more answers remain — a
// "next_cursor" token that resumes enumeration after the last returned
// binding:
//
//	{"bindings": [...], "count": 100, "limit": 100, "next_cursor": "..."}
//
// Setting "as_of": <watermark> evaluates the query against the graph as
// it was at that mutation watermark, reconstructed from the durable
// checkpoint retention — results match what the query returned live at
// that watermark, byte for byte. Watermarks behind the retention window
// return 410 Gone; memory-only platforms return 400.
//
// Setting "explain": true returns the execution plan instead of any
// bindings — one entry per clause in execution order with its access
// path ("posting", "facts", "has_fact", "scan") and estimated
// cardinality — without running the query:
//
//	{"plan": [{"clause": 0, "path": "posting", "estimate": 12}, ...],
//	 "variables": ["p"]}
//
// The solve streams (saga.Platform.QueryStream): it stops probing the
// graph as soon as the page is full, and the request context aborts it
// mid-join when the client disconnects (in parallel mode the context
// cancels every worker). When the server is configured with
// QueryWorkers > 1 (kgserve -query-workers), the first clause's
// candidates are partitioned across workers and merged back into the
// exact sequential order, so responses and cursors are byte-identical
// at any worker count. Serving-path guards bound what
// one request can cost: bodies over 1 MiB are rejected with 413,
// conjunctions over 32 clauses with 400, a request without a limit gets
// the default page size, and limits above the maximum are clamped.
// Cursor pagination is deterministic while the graph is unchanged;
// concurrent mutations may shift page boundaries (the token names the
// last binding seen, not a snapshot). Streaming dedup is always on for
// HTTP queries (QueryOptions.NoDedup is never set here): every request
// solves with a limit, so the solver's seen-set is bounded by the rows
// enumerated for that one request — limit+1 for a first page, plus the
// replayed prior-page rows for a cursored request (page N re-derives
// ~N*limit rows; the documented O(pages-before-it) cursor cost) — never
// the unbounded answer-set growth NoDedup exists for.
//
// Overload semantics: /query is Read-class traffic behind the admission
// gate (see server.go). When the read tier is saturated the request
// waits in a bounded FIFO queue up to the queue deadline; overflow or
// deadline expiry answers 429 with a Retry-After header, and a draining
// server answers 503 with Retry-After. Admitted requests carry the read
// budget as a context deadline: a solve that exceeds it is cancelled
// mid-join and answered 503 + Retry-After (the budget expired, back
// off), distinct from a client disconnect (no response at all). Budgets
// and limits are operator knobs (kgserve -read-budget and friends).
const (
	// maxQueryBodyBytes caps the request body size.
	maxQueryBodyBytes = 1 << 20
	// maxQueryClauses caps the conjunction width; beyond it the planner's
	// per-depth re-estimation alone is a DoS surface.
	maxQueryClauses = 32
	// defaultQueryLimit is the page size applied when the request omits
	// "limit" — an unbounded conjunctive query materializing every answer
	// was the serving path's unbounded-DoS hole.
	defaultQueryLimit = 1000
	// maxQueryLimit caps an explicit "limit".
	maxQueryLimit = 10000
)

type queryTermJSON struct {
	Var    *string `json:"var,omitempty"`
	Key    *string `json:"key,omitempty"`
	String *string `json:"string,omitempty"`
	Int    *int64  `json:"int,omitempty"`
}

type queryClauseJSON struct {
	Subject   queryTermJSON `json:"subject"`
	Predicate string        `json:"predicate"`
	Object    queryTermJSON `json:"object"`
}

type queryRequest struct {
	Clauses []queryClauseJSON `json:"clauses"`
	Limit   *int              `json:"limit"`
	Cursor  string            `json:"cursor"`
	Explain bool              `json:"explain"`
	// AsOf runs the query against the graph as it was at this mutation
	// watermark, reconstructed from the durable checkpoint retention
	// (saga.Platform.QueryStreamAt). Results are identical to what the
	// same query returned live at that watermark. Requires a durable
	// platform; watermarks older than the retention window return 410.
	// Explain ignores as_of (plans describe the live graph).
	AsOf *uint64 `json:"as_of"`
}

func (s *Server) parseTerm(t queryTermJSON) (saga.QueryTerm, error) {
	set := 0
	if t.Var != nil {
		set++
	}
	if t.Key != nil {
		set++
	}
	if t.String != nil {
		set++
	}
	if t.Int != nil {
		set++
	}
	if set != 1 {
		return saga.QueryTerm{}, errors.New("term must set exactly one of var/key/string/int")
	}
	switch {
	case t.Var != nil:
		if *t.Var == "" {
			return saga.QueryTerm{}, errors.New("empty variable name")
		}
		return saga.QVar(*t.Var), nil
	case t.Key != nil:
		e, ok := s.Platform.Graph().EntityByKey(*t.Key)
		if !ok {
			return saga.QueryTerm{}, fmt.Errorf("unknown entity key %q", *t.Key)
		}
		return saga.QEntity(e.ID), nil
	case t.String != nil:
		return saga.QConst(kg.StringValue(*t.String)), nil
	default:
		return saga.QConst(kg.IntValue(*t.Int)), nil
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", int64(maxQueryBodyBytes)))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Clauses) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no clauses"))
		return
	}
	if len(req.Clauses) > maxQueryClauses {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d clauses exceeds the maximum of %d", len(req.Clauses), maxQueryClauses))
		return
	}
	limit := defaultQueryLimit
	if req.Limit != nil {
		switch {
		case *req.Limit <= 0:
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad limit %d", *req.Limit))
			return
		case *req.Limit > maxQueryLimit:
			limit = maxQueryLimit
		default:
			limit = *req.Limit
		}
	}
	var cursor saga.QueryCursor
	if req.Cursor != "" {
		c, err := saga.DecodeQueryCursor(req.Cursor)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad cursor: %w", err))
			return
		}
		cursor = c
	}
	g := s.Platform.Graph()
	clauses, status, err := s.parseClauses(req.Clauses)
	if err != nil {
		writeError(w, status, err)
		return
	}

	// explain:true returns the execution plan instead of running the
	// query: clause order, access paths, and build-time cardinality
	// estimates, straight from the engine's plan cache.
	if req.Explain {
		plan, err := s.Platform.PlanQuery(clauses)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"plan":      plan.Describe(),
			"variables": plan.Vars(),
		})
		return
	}

	// Stream one row past the page size: the extra row proves more answers
	// remain without solving for them, and the page's last binding becomes
	// the next_cursor token. QueryWorkers > 1 partitions the first clause
	// across that many workers; the merged stream (and so every page and
	// cursor) is byte-identical to the sequential one.
	opts := saga.QueryOptions{
		Limit:       limit + 1,
		Cursor:      cursor,
		Context:     r.Context(),
		Parallelism: s.QueryWorkers,
	}
	stream := s.Platform.QueryStream(clauses, opts)
	if req.AsOf != nil {
		// Point-in-time read: same solve, same options, but over the
		// as-of overlay instead of the live graph.
		st, err := s.Platform.QueryStreamAt(clauses, *req.AsOf, opts)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, saga.ErrOutsideRetention) {
				status = http.StatusGone
			}
			writeError(w, status, err)
			return
		}
		stream = st
	}
	bindings := make([]saga.QueryBinding, 0, min(limit, 64))
	more := false
	for b, err := range stream {
		if err != nil {
			if contextEnded(w, r, err) {
				return
			}
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(bindings) == limit {
			more = true
			break
		}
		bindings = append(bindings, b)
	}

	out := make([]map[string]any, 0, len(bindings))
	for _, b := range bindings {
		out = append(out, renderBinding(g, b))
	}
	resp := map[string]any{"bindings": out, "count": len(out), "limit": limit}
	if more {
		resp["next_cursor"] = saga.EncodeQueryCursor(saga.QueryBindingKey(bindings[len(bindings)-1]))
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseClauses converts the request's clause JSON into engine clauses,
// returning the HTTP status to use on error. Shared by /query and
// /subscribe.
func (s *Server) parseClauses(cjs []queryClauseJSON) ([]saga.QueryClause, int, error) {
	g := s.Platform.Graph()
	clauses := make([]saga.QueryClause, 0, len(cjs))
	for i, cj := range cjs {
		pred, ok := g.PredicateByName(cj.Predicate)
		if !ok {
			return nil, http.StatusNotFound, fmt.Errorf("clause %d: unknown predicate %q", i, cj.Predicate)
		}
		subj, err := s.parseTerm(cj.Subject)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("clause %d subject: %w", i, err)
		}
		obj, err := s.parseTerm(cj.Object)
		if err != nil {
			return nil, http.StatusBadRequest, fmt.Errorf("clause %d object: %w", i, err)
		}
		clauses = append(clauses, saga.QueryClause{Subject: subj, Predicate: pred.ID, Object: obj})
	}
	return clauses, 0, nil
}

// renderBinding renders one query answer: entity values become
// {key, name} objects, literals their string form. Shared by /query
// and /subscribe.
func renderBinding(g *saga.Graph, b saga.QueryBinding) map[string]any {
	rowJSON := make(map[string]any, len(b))
	for name, v := range b {
		if v.IsEntity() {
			if e := g.Entity(v.Entity); e != nil {
				rowJSON[name] = map[string]string{"key": e.Key, "name": e.Name}
				continue
			}
		}
		rowJSON[name] = v.String()
	}
	return rowJSON
}
