package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"saga/internal/kg"
	"saga/saga"
)

// Conjunctive query endpoint: POST /query with a JSON body like
//
//	{"clauses": [
//	  {"subject": {"var": "p"}, "predicate": "memberOf", "object": {"key": "team0"}},
//	  {"subject": {"var": "p"}, "predicate": "award",    "object": {"key": "award0"}}
//	]}
//
// Each term is exactly one of: {"var": name}, {"key": entityKey},
// {"string": s}, {"int": n}. The response lists one binding object per
// answer, with entity values rendered as {key, name}.

type queryTermJSON struct {
	Var    *string `json:"var,omitempty"`
	Key    *string `json:"key,omitempty"`
	String *string `json:"string,omitempty"`
	Int    *int64  `json:"int,omitempty"`
}

type queryClauseJSON struct {
	Subject   queryTermJSON `json:"subject"`
	Predicate string        `json:"predicate"`
	Object    queryTermJSON `json:"object"`
}

type queryRequest struct {
	Clauses []queryClauseJSON `json:"clauses"`
}

func (s *Server) parseTerm(t queryTermJSON) (saga.QueryTerm, error) {
	set := 0
	if t.Var != nil {
		set++
	}
	if t.Key != nil {
		set++
	}
	if t.String != nil {
		set++
	}
	if t.Int != nil {
		set++
	}
	if set != 1 {
		return saga.QueryTerm{}, errors.New("term must set exactly one of var/key/string/int")
	}
	switch {
	case t.Var != nil:
		if *t.Var == "" {
			return saga.QueryTerm{}, errors.New("empty variable name")
		}
		return saga.QVar(*t.Var), nil
	case t.Key != nil:
		e, ok := s.Platform.Graph().EntityByKey(*t.Key)
		if !ok {
			return saga.QueryTerm{}, fmt.Errorf("unknown entity key %q", *t.Key)
		}
		return saga.QEntity(e.ID), nil
	case t.String != nil:
		return saga.QConst(kg.StringValue(*t.String)), nil
	default:
		return saga.QConst(kg.IntValue(*t.Int)), nil
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Clauses) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no clauses"))
		return
	}
	g := s.Platform.Graph()
	clauses := make([]saga.QueryClause, 0, len(req.Clauses))
	for i, cj := range req.Clauses {
		pred, ok := g.PredicateByName(cj.Predicate)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("clause %d: unknown predicate %q", i, cj.Predicate))
			return
		}
		subj, err := s.parseTerm(cj.Subject)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("clause %d subject: %w", i, err))
			return
		}
		obj, err := s.parseTerm(cj.Object)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("clause %d object: %w", i, err))
			return
		}
		clauses = append(clauses, saga.QueryClause{Subject: subj, Predicate: pred.ID, Object: obj})
	}
	bindings, err := s.Platform.QueryConjunctive(clauses)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	out := make([]map[string]any, 0, len(bindings))
	for _, b := range bindings {
		rowJSON := make(map[string]any, len(b))
		for name, v := range b {
			if v.IsEntity() {
				e := g.Entity(v.Entity)
				if e != nil {
					rowJSON[name] = map[string]string{"key": e.Key, "name": e.Name}
					continue
				}
			}
			rowJSON[name] = v.String()
		}
		out = append(out, rowJSON)
	}
	writeJSON(w, http.StatusOK, map[string]any{"bindings": out, "count": len(out)})
}
