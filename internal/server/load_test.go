package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"saga/internal/admission"
	"saga/internal/kg"
	"saga/internal/workload"
	"saga/saga"
)

// loadServer stands up a real-TCP server over an untrained platform
// (the load mix touches no embedding routes) with the given admission
// limits, returning the test server, the *Server for stats access, and
// the world whose keys the workload ops use.
func loadServer(t *testing.T, read, write, subscribe admission.Limits) (*httptest.Server, *Server, *saga.World) {
	return loadServerSized(t, 120, read, write, subscribe)
}

// loadServerSized is loadServer with a chosen world size: the overload
// test uses a bigger world so the saturation query costs real
// milliseconds, the eviction test so distinct collaborator pairs
// outlast the kernel's socket buffering.
func loadServerSized(t *testing.T, people int, read, write, subscribe admission.Limits) (*httptest.Server, *Server, *saga.World) {
	t.Helper()
	w, err := saga.GenerateWorld(saga.WorldConfig{NumPeople: people, NumClusters: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	p := saga.New(w.Graph)
	// An empty rule program stands up the analytics engine so the mix's
	// /derive op works.
	if err := p.DefineRulesText(""); err != nil {
		t.Fatal(err)
	}
	srv, err := New(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.Admission = admission.NewController(read, write, subscribe)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, srv, w
}

// waitGoroutines fails the test if the goroutine count does not settle
// back to at most max within the deadline — the leak assertion behind
// every fault scenario.
func waitGoroutines(t *testing.T, max int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= max {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d live, want <= %d\n%s", n, max, buf[:runtime.Stack(buf, true)])
		}
		runtime.Gosched()
		time.Sleep(20 * time.Millisecond)
	}
}

// getJSON fetches url and decodes the JSON body.
func getJSON(t *testing.T, client *http.Client, url string) map[string]any {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return v
}

// TestLoadSmoke runs the mixed open-loop scenario at a modest rate
// against stock limits: every response is a 2xx or an admission shed —
// never a 5xx — p99 stays within the read budget, and the admission
// counters show up in /health. scripts/ci.sh runs the same gate via
// kgload -smoke; keeping it here too means `go test -race ./...`
// exercises the whole path under the race detector.
func TestLoadSmoke(t *testing.T) {
	read, write, subscribe := admission.DefaultLimits()
	ts, _, w := loadServer(t, read, write, subscribe)
	client := workload.NewLoadClient(10 * time.Second)
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	rep, err := workload.RunOpenLoop(context.Background(), workload.LoadConfig{
		BaseURL:  ts.URL,
		Client:   client,
		Rate:     300,
		Duration: 700 * time.Millisecond,
		Ops:      workload.StandardLoadOps(w),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("smoke: %s", rep)
	if rep.ServerErrors != 0 || rep.TransportErrors != 0 || rep.Overflow != 0 {
		t.Fatalf("smoke run not clean: %s", rep)
	}
	if rep.ClientErrors != 0 {
		t.Fatalf("client errors in a well-formed mix: %s", rep)
	}
	if rep.Completed == 0 {
		t.Fatalf("no completed requests: %s", rep)
	}
	if bound := read.Budget + read.QueueWait; rep.P99 > bound {
		t.Fatalf("p99 %v exceeds read budget bound %v", rep.P99, bound)
	}

	// Admission counters are visible in /health.
	health := getJSON(t, client, ts.URL+"/health")
	adm, ok := health["admission"].(map[string]any)
	if !ok {
		t.Fatalf("no admission block in /health: %v", health)
	}
	readStats, ok := adm["classes"].(map[string]any)["read"].(map[string]any)
	if !ok || readStats["admitted"].(float64) == 0 {
		t.Fatalf("read admissions not counted in /health: %v", adm)
	}
	// Idle keep-alive connections hold goroutines on both sides of the
	// socket by design; close them so the settle check sees real leaks
	// only.
	client.CloseIdleConnections()
	waitGoroutines(t, baseline+3)
}

// TestLoadOverloadSheds is the 2x-capacity acceptance run: measure
// capacity closed-loop, then offer twice that in open loop against a
// deliberately tight read tier. Overflow must shed as 429 (zero 5xx,
// zero transport errors), goodput must stay within 20% of measured
// capacity, p99 of admitted requests must respect the route deadline,
// and the server must end the run with no leaked goroutines.
func TestLoadOverloadSheds(t *testing.T) {
	read := admission.Limits{MaxInFlight: 4, MaxQueue: 8, QueueWait: 40 * time.Millisecond, Budget: 2 * time.Second}
	write := admission.Limits{MaxInFlight: 4, MaxQueue: 8, QueueWait: 40 * time.Millisecond, Budget: 2 * time.Second}
	// 600 people make the saturation join cost real milliseconds, so
	// capacity lands at a rate the launcher can double on any machine.
	ts, srv, _ := loadServerSized(t, 600, read, write, admission.Limits{MaxInFlight: 64})
	client := workload.NewLoadClient(10 * time.Second)
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	// Homogeneous op for clean capacity math; workers exceed the
	// in-flight + queue bound so the probe measures the server, not the
	// client.
	queryOp := workload.SaturationQueryOp()
	capacity := workload.MeasureClosedLoop(context.Background(), client, ts.URL, queryOp, 16, 800*time.Millisecond)
	if capacity <= 0 {
		t.Fatal("capacity probe measured zero")
	}

	rep, err := workload.RunOpenLoop(context.Background(), workload.LoadConfig{
		BaseURL:     ts.URL,
		Client:      client,
		Rate:        2 * capacity,
		Duration:    2 * time.Second,
		Ops:         []workload.LoadOp{queryOp},
		Seed:        2,
		MaxInFlight: 8192,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("overload at 2x capacity (capacity %.0f/s): %s", capacity, rep)

	if rep.ServerErrors != 0 {
		t.Fatalf("5xx under overload: %s", rep)
	}
	if rep.TransportErrors != 0 || rep.Overflow != 0 {
		t.Fatalf("harness-visible failures under overload: %s", rep)
	}
	if rep.Shed == 0 {
		t.Fatalf("2x capacity produced no sheds — admission not engaging: %s", rep)
	}
	// Overflow sheds as 429; 503s appear only if a budget expires
	// mid-solve, which the 2s budget makes rare.
	if got := rep.StatusCounts[http.StatusTooManyRequests]; got == 0 {
		t.Fatalf("no 429s among %d sheds: %s", rep.Shed, rep)
	}
	// Goodput within 20% of capacity: overload must not collapse the
	// throughput of admitted work.
	if rep.GoodputPerSec < 0.8*capacity {
		t.Fatalf("goodput %.0f/s under saturation fell below 80%% of capacity %.0f/s", rep.GoodputPerSec, capacity)
	}
	// p99 of admitted requests bounded by the route deadline (queue wait
	// + budget); slack only for the response write itself.
	if bound := read.QueueWait + read.Budget + 500*time.Millisecond; rep.P99 > bound {
		t.Fatalf("admitted p99 %v exceeds route deadline bound %v", rep.P99, bound)
	}

	// The shed counters surfaced through /health agree that shedding
	// happened on the read route.
	rs := srv.Admission.Stats().Classes["read"]
	if rs.ShedQueueFull+rs.ShedQueueTimeout == 0 {
		t.Fatalf("health-side shed counters empty: %+v", rs)
	}
	// Idle keep-alive connections hold goroutines on both sides of the
	// socket by design; close them so the settle check sees real leaks
	// only.
	client.CloseIdleConnections()
	waitGoroutines(t, baseline+3)
}

// TestLoadDrain: a draining server sheds every non-exempt route with
// 503 + Retry-After while /health keeps answering and reports the
// drain latency once in-flight work finishes.
func TestLoadDrain(t *testing.T) {
	read, write, subscribe := admission.DefaultLimits()
	ts, srv, w := loadServer(t, read, write, subscribe)
	client := workload.NewLoadClient(5 * time.Second)
	defer client.CloseIdleConnections()

	srv.StartDrain()
	for _, path := range []string{"/query", "/ingest"} {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(`{}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s during drain = %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s drain response missing Retry-After", path)
		}
	}
	resp, err := client.Get(ts.URL + "/entity?key=" + w.Graph.Entity(w.People[0]).Key)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("read during drain = %d, want 503", resp.StatusCode)
	}
	// Health stays exempt and reports the drain, latching drain latency
	// on the now-idle server.
	health := getJSON(t, client, ts.URL+"/health")
	adm := health["admission"].(map[string]any)
	if adm["draining"] != true {
		t.Fatalf("health does not report draining: %v", adm)
	}
	if ms, _ := adm["drained_in_ms"].(float64); ms <= 0 {
		t.Fatalf("drain latency not latched on idle server: %v", adm)
	}
}

// TestBudgetExpiry503: when the admission budget expires mid-solve the
// client is still connected, so the server must answer 503 +
// Retry-After instead of silently dropping the response.
func TestBudgetExpiry503(t *testing.T) {
	read := admission.Limits{MaxInFlight: 16, MaxQueue: 16, QueueWait: 100 * time.Millisecond, Budget: time.Nanosecond}
	ts, _, w := loadServer(t, read, admission.Limits{}, admission.Limits{})
	client := workload.NewLoadClient(5 * time.Second)
	defer client.CloseIdleConnections()

	team := w.Graph.Entity(w.Teams[0]).Key
	body := `{"clauses":[{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"` + team + `"}}]}`
	resp, err := client.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("budget-expired query = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("budget-expired response missing Retry-After")
	}
}

// TestLoadFaultOversizedBody: bodies past the 1 MiB cap answer 413 on
// both /query and /ingest, through real HTTP.
func TestLoadFaultOversizedBody(t *testing.T) {
	read, write, subscribe := admission.DefaultLimits()
	ts, _, _ := loadServer(t, read, write, subscribe)
	client := workload.NewLoadClient(5 * time.Second)
	defer client.CloseIdleConnections()
	for _, path := range []string{"/query", "/ingest"} {
		status, err := workload.OversizedBody(context.Background(), client, ts.URL, path, maxQueryBodyBytes)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if status != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body = %d, want 413", path, status)
		}
	}
}

// TestLoadFaultMidStreamDisconnect: clients that vanish mid-response
// must not leak handler goroutines or wedge the server.
func TestLoadFaultMidStreamDisconnect(t *testing.T) {
	read, write, subscribe := admission.DefaultLimits()
	ts, srv, w := loadServer(t, read, write, subscribe)
	client := workload.NewLoadClient(5 * time.Second)
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	team := w.Graph.Entity(w.Teams[0]).Key
	qbody := `{"clauses":[{"subject":{"var":"p"},"predicate":"memberOf","object":{"key":"` + team + `"}}]}`
	sbody := `{"clauses":[{"subject":{"var":"a"},"predicate":"collaborator","object":{"var":"b"}}],"coalesce_ms":1}`
	for i := 0; i < 8; i++ {
		if _, err := workload.MidStreamDisconnect(context.Background(), client, ts.URL, "/query", qbody, 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
		if _, err := workload.MidStreamDisconnect(context.Background(), client, ts.URL, "/subscribe", sbody, 200*time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	// Idle keep-alive connections hold goroutines on both sides of the
	// socket by design; close them so the settle check sees real leaks
	// only.
	client.CloseIdleConnections()
	waitGoroutines(t, baseline+3)

	// The server still answers after the abuse, and every subscribe slot
	// was released.
	resp, err := client.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health after disconnect churn = %d", resp.StatusCode)
	}
	if st := srv.Admission.Stats().Classes["subscribe"]; st.InFlight != 0 {
		t.Fatalf("subscribe slots leaked: %+v", st)
	}
}

// TestSubscribeSlowClientEviction drives the slow-subscriber fault
// through a real TCP connection: the client reads the snapshot then
// stalls while writers churn the graph; the hub must evict the
// subscriber (ErrSlowSubscriber), the handler must deliver the final
// {"error": ...} line when the client resumes, and no goroutine may
// outlive the stream.
func TestSubscribeSlowClientEviction(t *testing.T) {
	read, write, subscribe := admission.DefaultLimits()
	// 400 people give ~160k distinct collaborator pairs — far more event
	// volume than the kernel can buffer for a non-reading client.
	ts, srv, w := loadServerSized(t, 400, read, write, subscribe)
	client := workload.NewLoadClient(20 * time.Second)
	defer client.CloseIdleConnections()
	baseline := runtime.NumGoroutine()

	g := w.Graph
	collab := w.Preds["collaborator"]
	clauses := `[{"subject":{"var":"a"},"predicate":"collaborator","object":{"var":"b"}}]`

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	type outcome struct {
		res *workload.SlowSubscribeResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := workload.SlowSubscribe(ctx, client, ts.URL, clauses, 1, 1500*time.Millisecond)
		done <- outcome{res, err}
	}()

	// Assert distinct collaborator pairs until the subscriber run
	// completes: every coalescing window ships a fat delta event, filling
	// the stalled connection's socket buffers until the hub's pending
	// bound trips. Distinct pairs matter — an assert/retract of the SAME
	// binding cancels in the hub's pending set and would never grow it.
	people := w.People
	n := len(people)
	var res outcome
	churn := 0
loop:
	for {
		select {
		case res = <-done:
			break loop
		default:
		}
		if churn >= n*(n-1) {
			t.Fatal("eviction never happened despite exhausting all distinct pairs")
		}
		for i := 0; i < 128 && churn < n*(n-1); i++ {
			a := people[churn%n]
			b := people[(churn/n+1+churn%n)%n]
			tr := kg.Triple{Subject: a, Predicate: collab, Object: kg.EntityValue(b)}
			_, _ = g.AssertNew(tr)
			churn++
		}
		time.Sleep(time.Millisecond) // let coalescing windows close
	}
	if res.err != nil {
		t.Fatalf("slow subscribe: %v (result %+v)", res.err, res.res)
	}
	if res.res.Status != http.StatusOK {
		t.Fatalf("subscribe status = %d", res.res.Status)
	}
	if !strings.Contains(res.res.ErrorLine, "evicted") {
		t.Fatalf("final error line = %q, want ErrSlowSubscriber delivery", res.res.ErrorLine)
	}
	// The platform's eviction counter agrees, and nothing leaked.
	if st := srv.Platform.ChangefeedStats(); st.SubscriberEvictions == 0 {
		t.Fatalf("changefeed stats after eviction = %+v", st)
	}
	// Idle keep-alive connections hold goroutines on both sides of the
	// socket by design; close them so the settle check sees real leaks
	// only.
	client.CloseIdleConnections()
	waitGoroutines(t, baseline+3)
	if st := srv.Admission.Stats().Classes["subscribe"]; st.InFlight != 0 {
		t.Fatalf("subscribe slot leaked after eviction: %+v", st)
	}
}
