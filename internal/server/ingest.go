package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"saga/internal/kg"
)

// Mutation endpoint: POST /ingest with a JSON body like
//
//	{"asserts": [
//	   {"subject": "person1", "predicate": "collaborator", "object": {"key": "person2"}}
//	 ],
//	 "retracts": [
//	   {"subject": "person3", "predicate": "followers", "object": {"int": 10}}
//	 ]}
//
// Subjects are entity keys; objects are /query-style constant terms
// (exactly one of {"key"}, {"string"}, {"int"} — variables are
// rejected). Asserts dedup against the graph (re-asserting an existing
// triple is a no-op) and retracts of absent triples are no-ops, so the
// response counts the mutations actually applied:
//
//	{"added": 1, "retracted": 0, "watermark": 512}
//
// On a durable platform the response watermark is the fsync-
// acknowledged LSN — the batch is durable when the response arrives.
// Memory-only platforms report the graph's mutation watermark.
//
// Overload semantics: /ingest is Write-class traffic, admitted behind
// reads — when readers are already queueing, writes shed immediately
// with 429 + Retry-After (reads keep serving while ingest sheds first),
// and the write tier's own queue overflow/deadline sheds the same way.
// Bodies over 1 MiB answer 413; batches over maxIngestOps answer 400.
const maxIngestOps = 1000

type ingestTripleJSON struct {
	Subject   string        `json:"subject"`
	Predicate string        `json:"predicate"`
	Object    queryTermJSON `json:"object"`
}

type ingestRequest struct {
	Asserts  []ingestTripleJSON `json:"asserts"`
	Retracts []ingestTripleJSON `json:"retracts"`
}

// resolveIngestTriple maps one wire triple onto graph IDs. Unknown
// subjects/predicates report http.StatusNotFound; malformed terms 400.
func (s *Server) resolveIngestTriple(i int, tj ingestTripleJSON) (kg.Triple, int, error) {
	g := s.Platform.Graph()
	subj, ok := g.EntityByKey(tj.Subject)
	if !ok {
		return kg.Triple{}, http.StatusNotFound, fmt.Errorf("triple %d: unknown subject key %q", i, tj.Subject)
	}
	pred, ok := g.PredicateByName(tj.Predicate)
	if !ok {
		return kg.Triple{}, http.StatusNotFound, fmt.Errorf("triple %d: unknown predicate %q", i, tj.Predicate)
	}
	if tj.Object.Var != nil {
		return kg.Triple{}, http.StatusBadRequest, fmt.Errorf("triple %d: object must be a constant term", i)
	}
	term, err := s.parseTerm(tj.Object)
	if err != nil {
		return kg.Triple{}, http.StatusBadRequest, fmt.Errorf("triple %d object: %w", i, err)
	}
	return kg.Triple{Subject: subj.ID, Predicate: pred.ID, Object: term.Const}, 0, nil
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, maxQueryBodyBytes)
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", int64(maxQueryBodyBytes)))
			return
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Asserts)+len(req.Retracts) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no mutations"))
		return
	}
	if n := len(req.Asserts) + len(req.Retracts); n > maxIngestOps {
		writeError(w, http.StatusBadRequest, fmt.Errorf("%d mutations exceeds the maximum of %d", n, maxIngestOps))
		return
	}
	// Resolve the whole batch before applying anything, so a bad triple
	// rejects the request without a partial write.
	asserts := make([]kg.Triple, 0, len(req.Asserts))
	for i, tj := range req.Asserts {
		t, status, err := s.resolveIngestTriple(i, tj)
		if err != nil {
			writeError(w, status, err)
			return
		}
		asserts = append(asserts, t)
	}
	retracts := make([]kg.Triple, 0, len(req.Retracts))
	for i, tj := range req.Retracts {
		t, status, err := s.resolveIngestTriple(len(req.Asserts)+i, tj)
		if err != nil {
			writeError(w, status, err)
			return
		}
		retracts = append(retracts, t)
	}

	g := s.Platform.Graph()
	added := 0
	for _, t := range asserts {
		ok, err := g.AssertNew(t)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if ok {
			added++
		}
	}
	retracted := 0
	for _, t := range retracts {
		if g.Retract(t) {
			retracted++
		}
	}

	watermark := g.LastSeq()
	if s.Platform.Durability() != nil {
		wm, err := s.Platform.SyncDurable()
		if err != nil {
			writeError(w, http.StatusInternalServerError, fmt.Errorf("durability: %w", err))
			return
		}
		watermark = wm
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"added":     added,
		"retracted": retracted,
		"watermark": watermark,
	})
}
