package wal

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"saga/internal/kg"
)

const testDir = "/w"

func mustOpen(t testing.TB, fs FS, opts Options) (*kg.Graph, *Manager, *RecoveryInfo) {
	t.Helper()
	opts.FS = fs
	g := kg.NewGraphWithShards(4)
	m, info, err := Open(testDir, g, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return g, m, info
}

// scripted drives a deterministic mixed workload (dictionary growth,
// asserts across every value kind including NaN floats and zero
// observation times, retracts) so a seed fully determines the mutation
// history. Graph-level errors are fatal: the script only references IDs
// it registered.
type scripted struct {
	t     testing.TB
	g     *kg.Graph
	rng   *rand.Rand
	ents  []kg.EntityID
	preds []kg.PredicateID
	types []kg.TypeID
	live  []kg.Triple
	// pop shadows every entity's current popularity. Updates are strictly
	// monotone per entity, so a crash-recovered record can be bounded:
	// at least the value at the last acknowledged commit, at most the
	// final value written.
	pop map[kg.EntityID]float64
	n   int
}

func newScripted(t testing.TB, g *kg.Graph, seed int64) *scripted {
	return &scripted{t: t, g: g, rng: rand.New(rand.NewSource(seed)), pop: make(map[kg.EntityID]float64)}
}

// snapshotPops copies the per-entity popularity shadow, for capturing
// the acknowledged state at a durability boundary.
func (s *scripted) snapshotPops() map[kg.EntityID]float64 {
	out := make(map[kg.EntityID]float64, len(s.pop))
	for id, p := range s.pop {
		out[id] = p
	}
	return out
}

var scriptEpoch = time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)

func (s *scripted) addEntity() {
	e := kg.Entity{
		Key:        fmt.Sprintf("e%04d", len(s.ents)),
		Name:       fmt.Sprintf("Entity %d", len(s.ents)),
		Popularity: float64(len(s.ents)%7) / 7,
	}
	if len(s.ents)%3 == 0 {
		e.Aliases = []string{fmt.Sprintf("alias-%d", len(s.ents)), ""}
		e.Description = "a scripted entity"
	}
	if len(s.types) > 0 {
		e.Types = []kg.TypeID{s.types[s.rng.Intn(len(s.types))]}
	}
	id, err := s.g.AddEntity(e)
	if err != nil {
		s.t.Fatalf("AddEntity: %v", err)
	}
	s.ents = append(s.ents, id)
	s.pop[id] = e.Popularity
}

func (s *scripted) addPredicate() {
	p := kg.Predicate{
		Name:       fmt.Sprintf("p%03d", len(s.preds)),
		Functional: len(s.preds)%2 == 0,
	}
	id, err := s.g.AddPredicate(p)
	if err != nil {
		s.t.Fatalf("AddPredicate: %v", err)
	}
	s.preds = append(s.preds, id)
}

func (s *scripted) addType() {
	parent := kg.NoType
	if len(s.types) > 0 && s.rng.Intn(2) == 0 {
		parent = s.types[s.rng.Intn(len(s.types))]
	}
	id, err := s.g.Ontology().AddType(fmt.Sprintf("t%03d", len(s.types)), parent)
	if err != nil {
		s.t.Fatalf("AddType: %v", err)
	}
	s.types = append(s.types, id)
}

func (s *scripted) object() kg.Value {
	switch s.rng.Intn(6) {
	case 0:
		return kg.EntityValue(s.ents[s.rng.Intn(len(s.ents))])
	case 1:
		if s.rng.Intn(8) == 0 {
			return kg.StringValue("")
		}
		return kg.StringValue(fmt.Sprintf("str-%d", s.rng.Intn(1000)))
	case 2:
		return kg.IntValue(s.rng.Int63() - (1 << 62))
	case 3:
		if s.rng.Intn(8) == 0 {
			return kg.FloatValue(math.NaN())
		}
		return kg.FloatValue(s.rng.NormFloat64())
	case 4:
		return kg.TimeValue(scriptEpoch.Add(time.Duration(s.rng.Intn(1<<20)) * time.Second))
	default:
		return kg.BoolValue(s.rng.Intn(2) == 0)
	}
}

// step advances the workload by one operation.
func (s *scripted) step() {
	s.n++
	switch {
	case len(s.ents) < 4 || s.rng.Intn(12) == 0:
		s.addEntity()
	case len(s.preds) < 2 || s.rng.Intn(25) == 0:
		s.addPredicate()
	case s.rng.Intn(30) == 0:
		s.addType()
	case s.rng.Intn(10) == 0:
		// In-place record update, monotone so recovery can be bounded.
		id := s.ents[s.rng.Intn(len(s.ents))]
		next := s.pop[id] + float64(1+s.rng.Intn(3))
		if !s.g.UpdateEntity(id, func(e *kg.Entity) { e.Popularity = next }) {
			s.t.Fatalf("UpdateEntity(%d) failed", id)
		}
		s.pop[id] = next
	case len(s.live) > 4 && s.rng.Intn(6) == 0:
		i := s.rng.Intn(len(s.live))
		tr := s.live[i]
		if !s.g.Retract(tr) {
			s.t.Fatalf("scripted retract of live triple failed: %v", tr)
		}
		s.live[i] = s.live[len(s.live)-1]
		s.live = s.live[:len(s.live)-1]
	default:
		tr := kg.Triple{
			Subject:   s.ents[s.rng.Intn(len(s.ents))],
			Predicate: s.preds[s.rng.Intn(len(s.preds))],
			Object:    s.object(),
			Prov: kg.Provenance{
				Source:        fmt.Sprintf("src-%d", s.rng.Intn(4)),
				Confidence:    float64(s.rng.Intn(100)) / 100,
				SourceQuality: float64(s.rng.Intn(100)) / 100,
			},
		}
		if s.rng.Intn(4) != 0 { // leave ~25% with a zero ObservedAt
			tr.Prov.ObservedAt = scriptEpoch.Add(time.Duration(s.n) * time.Minute)
		}
		added, err := s.g.AssertNew(tr)
		if err != nil {
			s.t.Fatalf("scripted assert: %v", err)
		}
		if added {
			s.live = append(s.live, tr)
		}
	}
}

// sameTriples requires got to hold exactly want's triples, provenance
// included.
func sameTriples(t testing.TB, want, got *kg.Graph) {
	t.Helper()
	a, b := want.AllTriples(), got.AllTriples()
	if len(a) != len(b) {
		t.Fatalf("triple count: want %d, got %d", len(a), len(b))
	}
	for i := range a {
		if a[i].IdentityKey() != b[i].IdentityKey() {
			t.Fatalf("triple %d identity: want %v, got %v", i, a[i], b[i])
		}
		pa, pb := a[i].Prov, b[i].Prov
		if pa.Source != pb.Source || pa.Confidence != pb.Confidence ||
			pa.SourceQuality != pb.SourceQuality || !pa.ObservedAt.Equal(pb.ObservedAt) {
			t.Fatalf("triple %d provenance: want %+v, got %+v", i, pa, pb)
		}
	}
}

// sameDicts requires got's dictionaries and ontology to exactly match
// want's, record for record.
func sameDicts(t testing.TB, want, got *kg.Graph) {
	t.Helper()
	if want.NumEntities() != got.NumEntities() {
		t.Fatalf("entity count: want %d, got %d", want.NumEntities(), got.NumEntities())
	}
	if want.NumPredicates() != got.NumPredicates() {
		t.Fatalf("predicate count: want %d, got %d", want.NumPredicates(), got.NumPredicates())
	}
	if want.Ontology().Len() != got.Ontology().Len() {
		t.Fatalf("ontology size: want %d, got %d", want.Ontology().Len(), got.Ontology().Len())
	}
	for i := 1; i <= want.NumEntities(); i++ {
		a, b := want.Entity(kg.EntityID(i)), got.Entity(kg.EntityID(i))
		if a.Key != b.Key || a.Name != b.Name || a.Description != b.Description ||
			a.Popularity != b.Popularity || len(a.Aliases) != len(b.Aliases) || len(a.Types) != len(b.Types) {
			t.Fatalf("entity %d: want %+v, got %+v", i, a, b)
		}
	}
	for i := 1; i <= want.NumPredicates(); i++ {
		a, b := want.Predicate(kg.PredicateID(i)), got.Predicate(kg.PredicateID(i))
		if *a != *b {
			t.Fatalf("predicate %d: want %+v, got %+v", i, a, b)
		}
	}
	for i := 1; i <= want.Ontology().Len(); i++ {
		id := kg.TypeID(i)
		if want.Ontology().Name(id) != got.Ontology().Name(id) || want.Ontology().Parent(id) != got.Ontology().Parent(id) {
			t.Fatalf("ontology type %d differs", i)
		}
	}
}

// copyDicts registers src's ontology and dictionaries into dst in ID
// order (ImportGraph without the triples) for reference-prefix replay.
func copyDicts(t testing.TB, dst, src *kg.Graph) {
	t.Helper()
	for id := kg.TypeID(1); int(id) <= src.Ontology().Len(); id++ {
		if _, err := dst.Ontology().AddType(src.Ontology().Name(id), src.Ontology().Parent(id)); err != nil {
			t.Fatalf("copy ontology: %v", err)
		}
	}
	for i := 1; i <= src.NumEntities(); i++ {
		if _, err := dst.AddEntity(*src.Entity(kg.EntityID(i))); err != nil {
			t.Fatalf("copy entity: %v", err)
		}
	}
	for i := 1; i <= src.NumPredicates(); i++ {
		if _, err := dst.AddPredicate(*src.Predicate(kg.PredicateID(i))); err != nil {
			t.Fatalf("copy predicate: %v", err)
		}
	}
}

// replayPrefix rebuilds the state after the first wm mutations of src's
// full history (src must have been run with KeepGraphLog).
func replayPrefix(t testing.TB, src *kg.Graph, wm uint64) *kg.Graph {
	t.Helper()
	if src.LogFloor() != 0 {
		t.Fatalf("reference graph log was truncated (floor %d); scenario must keep it", src.LogFloor())
	}
	ref := kg.NewGraphWithShards(2)
	copyDicts(t, ref, src)
	muts, complete := src.Feed(0).Pull()
	if !complete {
		t.Fatal("reference graph feed incomplete despite zero floor")
	}
	for _, mu := range muts {
		if mu.Seq > wm {
			break
		}
		switch mu.Op {
		case kg.OpAssert:
			if added, err := ref.AssertNew(mu.T); err != nil || !added {
				t.Fatalf("reference replay LSN %d: added=%v err=%v", mu.Seq, added, err)
			}
		case kg.OpRetract:
			if !ref.Retract(mu.T) {
				t.Fatalf("reference replay LSN %d: retract failed", mu.Seq)
			}
		}
	}
	return ref
}

// --- tests --------------------------------------------------------------

func TestOpenEmptyDir(t *testing.T) {
	fs := NewFaultFS(1)
	g, m, info := mustOpen(t, fs, Options{})
	if info.RecoveredLSN != 0 || info.CheckpointLSN != 0 || len(info.Diagnostics) != 0 {
		t.Fatalf("empty recovery reported %+v", info)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if g.LastSeq() != 0 {
		t.Fatalf("graph watermark %d after empty open", g.LastSeq())
	}
}

func TestOpenRequiresEmptyGraph(t *testing.T) {
	g := kg.NewGraph()
	if _, err := g.AddEntity(kg.Entity{Key: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(testDir, g, Options{FS: NewFaultFS(1)}); err == nil {
		t.Fatal("Open accepted a non-empty graph")
	}
}

func TestRoundTripCleanClose(t *testing.T) {
	fs := NewFaultFS(7)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit, KeepGraphLog: true})
	s := newScripted(t, g, 7)
	for i := 0; i < 300; i++ {
		s.step()
		if i%11 == 0 {
			if _, err := m.Commit(); err != nil {
				t.Fatalf("Commit: %v", err)
			}
		}
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if d := m.DurableLSN(); d != g.LastSeq() {
		t.Fatalf("durable %d != watermark %d after Close", d, g.LastSeq())
	}

	g2, m2, info := mustOpen(t, fs, Options{Sync: SyncEachCommit, KeepGraphLog: true})
	if info.RecoveredLSN != g.LastSeq() {
		t.Fatalf("recovered LSN %d, want %d (diagnostics: %v)", info.RecoveredLSN, g.LastSeq(), info.Diagnostics)
	}
	sameTriples(t, g, g2)
	sameDicts(t, g, g2)

	// LSNs continue where the first incarnation stopped.
	before := g2.LastSeq()
	if err := g2.Assert(kg.Triple{Subject: 1, Predicate: 1, Object: kg.StringValue("after-recovery")}); err != nil {
		t.Fatal(err)
	}
	if got := g2.LastSeq(); got != before+1 {
		t.Fatalf("watermark did not continue after recovery: %d -> %d", before, got)
	}
	if _, err := m2.Commit(); err != nil {
		t.Fatalf("post-recovery Commit: %v", err)
	}
	if err := m2.Close(); err != nil {
		t.Fatalf("post-recovery Close: %v", err)
	}

	g3, m3, info3 := mustOpen(t, fs, Options{})
	if info3.RecoveredLSN != g2.LastSeq() {
		t.Fatalf("second recovery LSN %d, want %d", info3.RecoveredLSN, g2.LastSeq())
	}
	sameTriples(t, g2, g3)
	_ = m3.Close()
}

func TestCheckpointRotatesAndCompacts(t *testing.T) {
	fs := NewFaultFS(3)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit})
	s := newScripted(t, g, 3)
	for i := 0; i < 150; i++ {
		s.step()
		if i%13 == 0 {
			if _, err := m.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	wm, err := m.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if wm != g.LastSeq() {
		t.Fatalf("checkpoint watermark %d, want %d", wm, g.LastSeq())
	}
	if floor := g.LogFloor(); floor != wm {
		t.Fatalf("graph log floor %d after checkpoint, want %d", floor, wm)
	}
	names, err := fs.ReadDir(testDir)
	if err != nil {
		t.Fatal(err)
	}
	var segs, ckpts, others int
	for _, n := range names {
		switch {
		case strings.HasPrefix(n, segPrefix):
			segs++
		case strings.HasPrefix(n, ckptPrefix):
			ckpts++
		default:
			others++
		}
	}
	if segs != 1 || ckpts != 1 || others != 0 {
		t.Fatalf("after checkpoint dir holds %v (want 1 segment, 1 checkpoint)", names)
	}

	// Post-checkpoint mutations land in the fresh segment and replay on
	// top of the checkpoint.
	for i := 0; i < 40; i++ {
		s.step()
	}
	if _, err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	g2, m2, info := mustOpen(t, fs, Options{})
	if info.CheckpointLSN != wm {
		t.Fatalf("recovery used checkpoint %d, want %d", info.CheckpointLSN, wm)
	}
	if info.RecoveredLSN != g.LastSeq() {
		t.Fatalf("recovered LSN %d, want %d", info.RecoveredLSN, g.LastSeq())
	}
	if info.MutationsReplayed == 0 {
		t.Fatal("expected a non-empty log suffix replay")
	}
	sameTriples(t, g, g2)
	sameDicts(t, g, g2)
	_ = m2.Close()
}

func TestAutoCheckpoint(t *testing.T) {
	fs := NewFaultFS(5)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit, CheckpointEvery: 50})
	s := newScripted(t, g, 5)
	for i := 0; i < 200; i++ {
		s.step()
		if i%9 == 0 {
			if _, err := m.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if m.CheckpointLSN() == 0 {
		t.Fatal("CheckpointEvery=50 never took an automatic checkpoint")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	g2, m2, _ := mustOpen(t, fs, Options{})
	sameTriples(t, g, g2)
	_ = m2.Close()
}

func TestSyncToWatermarkBarrier(t *testing.T) {
	fs := NewFaultFS(11)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncNever})
	s := newScripted(t, g, 11)
	for i := 0; i < 60; i++ {
		s.step()
	}
	wm := g.LastSeq()
	if d := m.DurableLSN(); d != 0 {
		t.Fatalf("SyncNever acknowledged %d before any barrier", d)
	}
	if err := m.SyncToWatermark(wm); err != nil {
		t.Fatalf("SyncToWatermark: %v", err)
	}
	if d := m.DurableLSN(); d < wm {
		t.Fatalf("durable %d after barrier to %d", d, wm)
	}
	if err := m.SyncToWatermark(wm + 100); err == nil {
		t.Fatal("barrier beyond the graph watermark must fail")
	}
	_ = m.Close()
}

// TestTornTailTruncated hand-corrupts the live segment's tail and checks
// recovery lands on the longest valid prefix with a diagnostic.
func TestTornTailTruncated(t *testing.T) {
	fs := NewFaultFS(13)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit, KeepGraphLog: true})
	s := newScripted(t, g, 13)
	var ackedMid uint64
	for i := 0; i < 120; i++ {
		s.step()
		if i%10 == 0 {
			lsn, err := m.Commit()
			if err != nil {
				t.Fatal(err)
			}
			if i == 60 {
				ackedMid = lsn
			}
		}
	}
	// Make sure the log ends in a mutation record, so chopping the tail
	// provably costs at least one LSN.
	if _, err := g.AssertNew(kg.Triple{Subject: s.ents[0], Predicate: s.preds[0], Object: kg.IntValue(-1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop bytes off the (only) segment's tail, landing mid-frame.
	names, _ := fs.ReadDir(testDir)
	var seg string
	for _, n := range names {
		if strings.HasPrefix(n, segPrefix) {
			seg = filepath.Join(testDir, n)
		}
	}
	r, err := fs.OpenRead(seg)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	r.Close()
	if err := fs.Truncate(seg, int64(len(data)-3)); err != nil {
		t.Fatal(err)
	}

	g2, m2, info := mustOpen(t, fs, Options{})
	if len(info.Diagnostics) == 0 || info.TruncatedBytes == 0 {
		t.Fatalf("torn tail recovered silently: %+v", info)
	}
	wm := info.RecoveredLSN
	if wm >= g.LastSeq() || wm < ackedMid {
		t.Fatalf("recovered LSN %d outside (%d, %d)", wm, ackedMid, g.LastSeq())
	}
	sameTriples(t, replayPrefix(t, g, wm), g2)
	_ = m2.Close()

	// A second recovery after the truncation repair is clean.
	g3, m3, info3 := mustOpen(t, fs, Options{})
	for _, d := range info3.Diagnostics {
		if strings.Contains(d, "truncated") || strings.Contains(d, "corrupt") {
			t.Fatalf("repair did not stick: %v", info3.Diagnostics)
		}
	}
	if g3.LastSeq() != wm {
		t.Fatalf("second recovery LSN %d, want %d", g3.LastSeq(), wm)
	}
	_ = m3.Close()
}

// TestCorruptCheckpointIsFatal: a checkpoint is published only after a
// full fsync, so a CRC failure inside one is real data corruption (the
// covering log segments are gone) and must surface as an error rather
// than an emptier graph.
func TestCorruptCheckpointIsFatal(t *testing.T) {
	fs := NewFaultFS(17)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit})
	s := newScripted(t, g, 17)
	for i := 0; i < 80; i++ {
		s.step()
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	names, _ := fs.ReadDir(testDir)
	for _, n := range names {
		if !strings.HasPrefix(n, ckptPrefix) {
			continue
		}
		p := filepath.Join(testDir, n)
		r, _ := fs.OpenRead(p)
		data, _ := io.ReadAll(r)
		r.Close()
		data[len(data)/2] ^= 0xff
		f, err := fs.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	g2 := kg.NewGraph()
	if _, _, err := Open(testDir, g2, Options{FS: fs}); err == nil {
		t.Fatal("Open recovered from a corrupt checkpoint without error")
	}
}

func TestImportGraph(t *testing.T) {
	src := kg.NewGraphWithShards(4)
	s := newScripted(t, src, 23)
	for i := 0; i < 200; i++ {
		s.step()
	}
	dst := kg.NewGraphWithShards(8)
	if err := ImportGraph(dst, src); err != nil {
		t.Fatalf("ImportGraph: %v", err)
	}
	sameTriples(t, src, dst)
	sameDicts(t, src, dst)
	if err := ImportGraph(dst, src); err == nil {
		t.Fatal("ImportGraph accepted a non-empty destination")
	}
}

// TestCheckpointRestart64K is the acceptance scenario: a checkpointed
// 64K-triple graph restarts through the merge-append fast path plus an
// empty replay, without re-running ingestion.
func TestCheckpointRestart64K(t *testing.T) {
	if testing.Short() {
		t.Skip("64K restore skipped in -short")
	}
	const nTriples = 64 << 10
	src := kg.NewGraphWithShards(16)
	pred, err := src.AddPredicate(kg.Predicate{Name: "links"})
	if err != nil {
		t.Fatal(err)
	}
	const pool = 4096
	ids := make([]kg.EntityID, pool)
	for i := range ids {
		id, err := src.AddEntity(kg.Entity{Key: fmt.Sprintf("n%05d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	rng := rand.New(rand.NewSource(64))
	batch := make([]kg.Triple, 0, nTriples)
	for len(batch) < nTriples {
		batch = append(batch, kg.Triple{
			Subject:   ids[rng.Intn(pool)],
			Predicate: pred,
			Object:    kg.IntValue(int64(len(batch))),
		})
	}
	if _, err := src.AssertBatch(batch); err != nil {
		t.Fatal(err)
	}

	fs := NewFaultFS(64)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncNever})
	if err := ImportGraph(g, src); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	g2, m2, info := mustOpen(t, fs, Options{})
	if g2.NumTriples() != nTriples {
		t.Fatalf("restored %d triples, want %d", g2.NumTriples(), nTriples)
	}
	if info.MutationsReplayed != 0 {
		t.Fatalf("restart replayed %d mutations; the checkpoint should cover everything", info.MutationsReplayed)
	}
	if info.CheckpointLSN != g.LastSeq() || g2.LastSeq() != g.LastSeq() {
		t.Fatalf("watermarks diverged: checkpoint %d, recovered %d, source %d",
			info.CheckpointLSN, g2.LastSeq(), g.LastSeq())
	}
	_ = m2.Close()
}

func TestSyncIntervalFlushes(t *testing.T) {
	fs := NewFaultFS(31)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncInterval, SyncEvery: time.Millisecond})
	s := newScripted(t, g, 31)
	for i := 0; i < 40; i++ {
		s.step()
	}
	wm := g.LastSeq()
	deadline := time.Now().Add(5 * time.Second)
	for m.DurableLSN() < wm {
		if time.Now().After(deadline) {
			t.Fatalf("background flusher never caught up: durable %d, want %d", m.DurableLSN(), wm)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	g2, m2, _ := mustOpen(t, fs, Options{})
	sameTriples(t, g, g2)
	_ = m2.Close()
}
