package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// ErrInjected is the error every FaultFS operation returns once the
// configured fault has tripped. The WAL manager latches into a failed
// state on it like on any other I/O error.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS is a deterministic in-memory filesystem with a POSIX-shaped
// durability model, built for crash-matrix tests. It distinguishes three
// layers of state exactly the way a kernel page cache does:
//
//   - bytes written but not fsynced (lost or torn on crash),
//   - file contents made durable by File.Sync,
//   - directory entries (creations, renames, removals) made durable only
//     by SyncDir of the parent — a synced file whose entry was never
//     dir-synced can vanish wholesale.
//
// Faults are armed with SetWriteBudget (trip after N accepted bytes,
// modeling a kill at an arbitrary byte offset — the final Write is SHORT,
// leaving a torn frame) and SetSyncBudget (trip on the Nth sync,
// modeling fsync failure). After tripping, every mutating operation
// returns ErrInjected; reads keep working. Crash() then collapses the
// state to what a machine reset would leave behind: synced bytes plus a
// seeded-random prefix of each file's unsynced tail, with each
// non-dir-synced directory operation independently kept or reverted. The
// result is a fresh, fault-free FaultFS to recover against.
//
// All randomness comes from the seed passed to NewFaultFS, so a failing
// kill-point is reproducible by seed.
type FaultFS struct {
	mu  sync.Mutex
	rng *rand.Rand

	writeBudget int64 // bytes still accepted; <0 = unlimited
	syncBudget  int   // syncs still accepted; <0 = unlimited
	accepted    int64 // total bytes accepted across all writes
	tripped     bool

	dirs  map[string]bool
	files map[string]*faultFile
	// undo holds, per path whose directory entry changed since the last
	// SyncDir of its parent, the durable pre-state of that entry (captured
	// at the first change). Crash() flips a coin per entry: either the
	// current entry state survived or the pre-state did.
	undo map[string]entryUndo
}

type entryUndo struct {
	existed bool   // a durable entry existed before the un-synced change
	data    []byte // its synced content at capture time
}

type faultFile struct {
	data      []byte
	syncedLen int
}

// NewFaultFS returns an in-memory FS with no faults armed (budgets
// unlimited). It is usable as a plain memory-backed FS.
func NewFaultFS(seed int64) *FaultFS {
	return &FaultFS{
		rng:         rand.New(rand.NewSource(seed)),
		writeBudget: -1,
		syncBudget:  -1,
		dirs:        map[string]bool{"/": true, ".": true},
		files:       make(map[string]*faultFile),
		undo:        make(map[string]entryUndo),
	}
}

// SetWriteBudget arms the write fault: after n more accepted bytes, the
// write in progress is cut short and the FS trips. n < 0 disarms.
func (fs *FaultFS) SetWriteBudget(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.writeBudget = n
}

// SetSyncBudget arms the sync fault: the next n File.Sync/SyncDir calls
// succeed, the one after fails and trips the FS. n < 0 disarms.
func (fs *FaultFS) SetSyncBudget(n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.syncBudget = n
}

// Tripped reports whether a fault has fired.
func (fs *FaultFS) Tripped() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tripped
}

// BytesAccepted reports the total bytes accepted across all writes. The
// crash matrix runs an unlimited probe first and uses its total to
// enumerate kill offsets.
func (fs *FaultFS) BytesAccepted() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.accepted
}

// capture records the durable pre-state of path's directory entry if no
// change since the last parent SyncDir has been recorded yet.
func (fs *FaultFS) capture(path string) {
	if _, ok := fs.undo[path]; ok {
		return
	}
	if f, ok := fs.files[path]; ok {
		fs.undo[path] = entryUndo{existed: true, data: append([]byte(nil), f.data[:f.syncedLen]...)}
	} else {
		fs.undo[path] = entryUndo{}
	}
}

func (fs *FaultFS) checkMutable() error {
	if fs.tripped {
		return ErrInjected
	}
	return nil
}

func (fs *FaultFS) MkdirAll(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutable(); err != nil {
		return err
	}
	d := filepath.Clean(dir)
	for d != "/" && d != "." && d != "" {
		fs.dirs[d] = true
		d = filepath.Dir(d)
	}
	return nil
}

func (fs *FaultFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutable(); err != nil {
		return nil, err
	}
	p := filepath.Clean(name)
	fs.capture(p)
	f := &faultFile{}
	fs.files[p] = f
	return &faultHandle{fs: fs, path: p, f: f}, nil
}

func (fs *FaultFS) OpenAppend(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	p := filepath.Clean(name)
	f, ok := fs.files[p]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &faultHandle{fs: fs, path: p, f: f}, nil
}

func (fs *FaultFS) OpenRead(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

func (fs *FaultFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutable(); err != nil {
		return err
	}
	op, np := filepath.Clean(oldName), filepath.Clean(newName)
	f, ok := fs.files[op]
	if !ok {
		return &os.PathError{Op: "rename", Path: oldName, Err: os.ErrNotExist}
	}
	fs.capture(op)
	fs.capture(np)
	delete(fs.files, op)
	fs.files[np] = f
	return nil
}

func (fs *FaultFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutable(); err != nil {
		return err
	}
	p := filepath.Clean(name)
	if _, ok := fs.files[p]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	fs.capture(p)
	delete(fs.files, p)
	return nil
}

func (fs *FaultFS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.checkMutable(); err != nil {
		return err
	}
	f, ok := fs.files[filepath.Clean(name)]
	if !ok {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("wal: faultfs truncate %s to %d (size %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.syncedLen > int(size) {
		f.syncedLen = int(size)
	}
	return nil
}

func (fs *FaultFS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d := filepath.Clean(dir)
	if !fs.dirs[d] {
		return nil, &os.PathError{Op: "readdir", Path: dir, Err: os.ErrNotExist}
	}
	var names []string
	for p := range fs.files {
		if filepath.Dir(p) == d {
			names = append(names, filepath.Base(p))
		}
	}
	for p := range fs.dirs {
		if p != d && filepath.Dir(p) == d {
			names = append(names, filepath.Base(p))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *FaultFS) SyncDir(dir string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.spendSync(); err != nil {
		return err
	}
	d := filepath.Clean(dir)
	for p := range fs.undo {
		if filepath.Dir(p) == d {
			delete(fs.undo, p)
		}
	}
	return nil
}

// spendSync charges one sync against the budget; caller holds fs.mu.
func (fs *FaultFS) spendSync() error {
	if fs.tripped {
		return ErrInjected
	}
	if fs.syncBudget == 0 {
		fs.tripped = true
		return ErrInjected
	}
	if fs.syncBudget > 0 {
		fs.syncBudget--
	}
	return nil
}

// Crash collapses the filesystem to its post-reset durable image and
// returns a fresh fault-free FaultFS over it (sharing the seed stream, so
// a scenario's randomness stays a deterministic function of the seed):
//
//   - each surviving file keeps its synced bytes plus a random prefix of
//     its unsynced tail (the torn-tail model);
//   - each directory entry changed since its parent's last SyncDir
//     independently keeps either its new state or its durable pre-state.
func (fs *FaultFS) Crash() *FaultFS {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	img := make(map[string]*faultFile, len(fs.files))
	for p, f := range fs.files {
		n := f.syncedLen
		if len(f.data) > n {
			n += fs.rng.Intn(len(f.data) - n + 1)
		}
		img[p] = &faultFile{data: append([]byte(nil), f.data[:n]...), syncedLen: n}
	}
	for p, u := range fs.undo {
		if fs.rng.Intn(2) == 1 {
			continue // the un-synced directory change made it to disk
		}
		if u.existed {
			img[p] = &faultFile{data: append([]byte(nil), u.data...), syncedLen: len(u.data)}
		} else {
			delete(img, p)
		}
	}
	out := &FaultFS{
		rng:         fs.rng,
		writeBudget: -1,
		syncBudget:  -1,
		dirs:        make(map[string]bool, len(fs.dirs)),
		files:       img,
		undo:        make(map[string]entryUndo),
	}
	for d := range fs.dirs {
		out.dirs[d] = true
	}
	return out
}

// DumpPaths lists every live path (diagnostic helper for tests).
func (fs *FaultFS) DumpPaths() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var out []string
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

type faultHandle struct {
	fs   *FaultFS
	path string
	f    *faultFile
}

func (h *faultHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.fs.tripped {
		return 0, ErrInjected
	}
	n := len(p)
	if h.fs.writeBudget >= 0 {
		if int64(n) > h.fs.writeBudget {
			n = int(h.fs.writeBudget)
			h.fs.tripped = true
		}
		h.fs.writeBudget -= int64(n)
	}
	h.f.data = append(h.f.data, p[:n]...)
	h.fs.accepted += int64(n)
	if n < len(p) {
		return n, ErrInjected
	}
	return n, nil
}

func (h *faultHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.spendSync(); err != nil {
		return err
	}
	h.f.syncedLen = len(h.f.data)
	return nil
}

func (h *faultHandle) Close() error {
	// Closing never fails in this model; close-time errors are covered by
	// the sync budget (a Sync immediately before Close).
	return nil
}

var _ FS = (*FaultFS)(nil)
