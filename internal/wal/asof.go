package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"saga/internal/kg"
)

// ErrOutsideRetention is returned by SnapshotAt for watermarks below the
// oldest retained checkpoint: the files needed to reconstruct that
// state have been deleted. Raise Options.RetainCheckpoints to keep more
// history.
var ErrOutsideRetention = errors.New("wal: watermark outside checkpoint retention")

// asofBaseCacheSize bounds how many checkpoint base graphs SnapshotAt
// keeps loaded. As-of reads cluster on recent watermarks, which share
// the newest one or two checkpoints.
const asofBaseCacheSize = 4

// SnapshotAt reconstructs the ingredients of a point-in-time read at
// watermark asOf: an immutable base graph restored from the newest
// retained checkpoint at or below asOf, plus the ordered mutation
// suffix (checkpoint watermark, asOf] collected from the retained log
// segments. The pair is what a graphengine read overlay joins against —
// the suffix is never applied to the base, so bases are shared across
// calls through an internal cache and must not be mutated.
//
// Pending graph mutations are committed first so the log covers asOf.
// asOf above the graph's watermark is an error; asOf below the oldest
// retained checkpoint returns ErrOutsideRetention.
func (m *Manager) SnapshotAt(asOf uint64) (base *kg.Graph, suffix []kg.Mutation, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(); err != nil {
		return nil, nil, err
	}
	if m.feed.Cursor() < asOf {
		if err := m.commitLocked(); err != nil {
			return nil, nil, err
		}
	}
	if m.feed.Cursor() < asOf {
		return nil, nil, fmt.Errorf("wal: as-of watermark %d beyond graph watermark %d", asOf, m.feed.Cursor())
	}

	// Newest retained checkpoint at or below asOf. With no checkpoint at
	// all the full log is still on disk and the base is the empty graph;
	// with checkpoints but none <= asOf, the segments below the oldest
	// one are gone.
	baseWM, haveCkpt := uint64(0), false
	for _, w := range m.ckpts {
		if w > asOf {
			break
		}
		baseWM, haveCkpt = w, true
	}
	if !haveCkpt && len(m.ckpts) > 0 {
		return nil, nil, fmt.Errorf("%w: as-of %d predates oldest retained checkpoint %d", ErrOutsideRetention, asOf, m.ckpts[0])
	}

	base, err = m.loadBaseLocked(baseWM, haveCkpt)
	if err != nil {
		return nil, nil, err
	}
	suffix, err = m.collectSuffixLocked(baseWM, asOf)
	if err != nil {
		return nil, nil, err
	}
	return base, suffix, nil
}

// loadBaseLocked returns the (cached) immutable base graph for the
// checkpoint at watermark wm — the empty graph when haveCkpt is false.
func (m *Manager) loadBaseLocked(wm uint64, haveCkpt bool) (*kg.Graph, error) {
	if g, ok := m.asofBases[wm]; ok {
		return g, nil
	}
	g := kg.NewGraph()
	if haveCkpt {
		if err := loadCheckpoint(m.fs, m.dir, ckptName(wm), wm, g); err != nil {
			return nil, fmt.Errorf("wal: load as-of base %s: %w", ckptName(wm), err)
		}
	}
	if m.asofBases == nil {
		m.asofBases = make(map[uint64]*kg.Graph)
	}
	for k := range m.asofBases {
		if len(m.asofBases) < asofBaseCacheSize {
			break
		}
		if k != wm {
			delete(m.asofBases, k)
		}
	}
	m.asofBases[wm] = g
	return g, nil
}

// errStopScan aborts a segment scan early once the collector has
// everything it needs; it is success, not corruption.
var errStopScan = errors.New("wal: stop scan")

// collectSuffixLocked reads the mutation records with sequence numbers
// in (from, to] from the on-disk segments, in LSN order. Segments
// re-ship overlapping prefixes after recovery, so duplicates are
// skipped; a gap means the history is not reconstructible and is an
// error (retention should have prevented the read).
func (m *Manager) collectSuffixLocked(from, to uint64) ([]kg.Mutation, error) {
	if from >= to {
		return nil, nil
	}
	gens := make([]uint64, 0, len(m.segFirst))
	for g := range m.segFirst {
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })

	muts := make([]kg.Mutation, 0, to-from)
	last := from
	for i, gen := range gens {
		// A segment's content spans (firstLSN, successor firstLSN]; skip
		// those entirely at or below the collection start.
		if i+1 < len(gens) && m.segFirst[gens[i+1]] <= from {
			continue
		}
		if m.segFirst[gen] >= to {
			break
		}
		done, err := m.scanSegmentMutations(gen, &muts, &last, to)
		if err != nil {
			return nil, err
		}
		if done {
			break
		}
	}
	if last != to {
		return nil, fmt.Errorf("wal: as-of suffix (%d, %d] incomplete: log continues at %d", from, to, last+1)
	}
	return muts, nil
}

// scanSegmentMutations appends segment gen's mutation records in
// (*last, to] to *muts, advancing *last. done reports that to was
// reached. Non-mutation records (dictionary deltas, entity updates) are
// skipped: as-of queries resolve IDs against the live dictionaries,
// which are append-only, and render records from live state.
func (m *Manager) scanSegmentMutations(gen uint64, muts *[]kg.Mutation, last *uint64, to uint64) (done bool, err error) {
	name := segName(gen)
	rc, err := m.fs.OpenRead(filepath.Join(m.dir, name))
	if err != nil {
		return false, fmt.Errorf("wal: open segment %s for as-of read: %w", name, err)
	}
	defer rc.Close()
	_, serr := scanFrames(name, rc, func(p []byte) error {
		if len(p) == 0 || p[0] != recMutation {
			return nil
		}
		mu, err := decMutation(p)
		if err != nil {
			return fmt.Errorf("wal: as-of read %s: %w", name, err)
		}
		switch {
		case mu.Seq <= *last:
			return nil // overlap with a previous segment's re-shipped prefix
		case mu.Seq > to:
			return errStopScan
		case mu.Seq != *last+1:
			return fmt.Errorf("wal: as-of read %s: LSN gap %d -> %d", name, *last, mu.Seq)
		}
		*muts = append(*muts, mu)
		*last = mu.Seq
		return nil
	})
	switch {
	case serr == nil:
		return false, nil
	case errors.Is(serr, errStopScan):
		return true, nil
	default:
		var corrupt *CorruptError
		if errors.As(serr, &corrupt) {
			// A torn active-segment tail past `to` is benign; one before
			// it would leave the suffix short, which the caller detects.
			return false, nil
		}
		return false, serr
	}
}

// readSegFirstLSN reads a segment's header firstLSN without replaying
// it, for rebuilding the segment index on Open.
func readSegFirstLSN(fs FS, path string) (uint64, error) {
	rc, err := fs.OpenRead(path)
	if err != nil {
		return 0, err
	}
	defer rc.Close()
	var first uint64
	_, serr := scanFrames(path, io.LimitReader(rc, 1<<16), func(p []byte) error {
		if len(p) == 0 || p[0] != recSegmentHeader {
			return fmt.Errorf("wal: %s: first record is not a segment header", path)
		}
		h, err := decSegHeader(p)
		if err != nil {
			return err
		}
		first = h.firstLSN
		return errStopScan
	})
	if errors.Is(serr, errStopScan) {
		return first, nil
	}
	if serr != nil {
		return 0, serr
	}
	return 0, fmt.Errorf("wal: %s: empty segment", path)
}
