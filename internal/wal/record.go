package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"saga/internal/kg"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// On-disk framing: every record is
//
//	[4B LE payload length][4B LE CRC32C(payload)][payload]
//
// with CRC32C the Castagnoli polynomial (hardware-accelerated on amd64
// and arm64). The payload's first byte is the record type; all integers
// are fixed-width little-endian, strings are u32-length-prefixed UTF-8.
// A reader that hits a short header, short payload, or CRC mismatch has
// found a torn tail (or corruption): everything before the offending
// frame is valid, everything from its start offset on is discarded.
const (
	frameHeaderSize = 8
	// maxRecordSize bounds a single payload; a length prefix above it is
	// treated as corruption rather than trusted for allocation.
	maxRecordSize = 1 << 28

	walVersion = 1
)

// Record types (payload byte 0).
const (
	recSegmentHeader    = 1 // version, generation, firstLSN
	recEntity           = 2 // entity-dictionary delta
	recPredicate        = 3 // predicate-dictionary delta
	recOntType          = 4 // ontology-type delta
	recMutation         = 5 // one graph mutation (LSN, op, triple)
	recCheckpointHeader = 6 // watermark + expected record counts
	recTriple           = 7 // one checkpointed triple (no LSN)
	recCheckpointFooter = 8 // watermark + triple count; validity marker
	recTripleBlock      = 9 // many checkpointed triples in one CRC frame
	// recEntityUpdate is an in-place entity record update (SetPopularity/
	// UpdateEntity): same payload as recEntity, but replay overwrites the
	// existing record (ReplaceEntity) where recEntity verifies-or-
	// registers and never modifies an existing ID.
	recEntityUpdate = 10
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CorruptError reports a frame-level integrity failure: the byte offset
// where the valid prefix of the file ends and why the next frame was
// rejected. Recovery truncates at Offset and reports the error as a
// diagnostic rather than failing.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt frame in %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// appendFrame frames payload onto dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
	return append(dst, payload...)
}

// scanFrames reads consecutive frames from r, invoking fn with each
// payload (valid only for the duration of the call). It returns the byte
// offset of the end of the last frame that was both intact and accepted
// by fn. A clean EOF at a frame boundary returns a nil error; a torn or
// corrupt frame returns a *CorruptError; an error from fn aborts the scan
// and is returned as-is. In both failure cases good is the start offset
// of the offending frame — truncating there discards it.
func scanFrames(path string, r io.Reader, fn func(payload []byte) error) (good int64, err error) {
	var header [frameHeaderSize]byte
	var buf []byte
	for {
		n, rerr := io.ReadFull(r, header[:])
		if rerr == io.EOF {
			return good, nil
		}
		if rerr != nil {
			return good, &CorruptError{Path: path, Offset: good, Reason: fmt.Sprintf("short frame header (%d bytes)", n)}
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length == 0 || length > maxRecordSize {
			return good, &CorruptError{Path: path, Offset: good, Reason: fmt.Sprintf("implausible payload length %d", length)}
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if n, rerr := io.ReadFull(r, buf); rerr != nil {
			return good, &CorruptError{Path: path, Offset: good, Reason: fmt.Sprintf("short payload (%d of %d bytes)", n, length)}
		}
		if crc32.Checksum(buf, crcTable) != sum {
			return good, &CorruptError{Path: path, Offset: good, Reason: "CRC mismatch"}
		}
		if ferr := fn(buf); ferr != nil {
			return good, ferr
		}
		good += frameHeaderSize + int64(length)
	}
}

// --- primitive encoders -------------------------------------------------

func appendStr(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendF64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, floatBits(f))
}

// --- primitive decoder --------------------------------------------------

// dec is a cursor over one payload; the first decoding failure latches
// into err and every later read returns zero values, so record decoders
// can read field-by-field and check err once.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("truncated %s at byte %d", what, d.off)
	}
}

func (d *dec) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail("u8")
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) f64() float64 { return floatFromBits(d.u64()) }

func (d *dec) str() string {
	n := d.u32()
	if d.err != nil || d.off+int(n) > len(d.b) || int(n) < 0 {
		d.fail("string")
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// done returns the latched error, or an error if trailing bytes remain —
// a record that decodes cleanly must consume its whole payload.
func (d *dec) done(what string) error {
	if d.err != nil {
		return fmt.Errorf("wal: decode %s: %w", what, d.err)
	}
	if d.off != len(d.b) {
		return fmt.Errorf("wal: decode %s: %d trailing bytes", what, len(d.b)-d.off)
	}
	return nil
}

// --- record codecs ------------------------------------------------------

type segHeader struct {
	version  uint32
	gen      uint64
	firstLSN uint64
}

func encSegHeader(dst []byte, h segHeader) []byte {
	dst = append(dst, recSegmentHeader)
	dst = binary.LittleEndian.AppendUint32(dst, h.version)
	dst = binary.LittleEndian.AppendUint64(dst, h.gen)
	return binary.LittleEndian.AppendUint64(dst, h.firstLSN)
}

func decSegHeader(p []byte) (segHeader, error) {
	d := &dec{b: p, off: 1}
	h := segHeader{version: d.u32(), gen: d.u64(), firstLSN: d.u64()}
	return h, d.done("segment header")
}

func encEntity(dst []byte, e *kg.Entity) []byte {
	dst = append(dst, recEntity)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(e.ID))
	dst = appendStr(dst, e.Key)
	dst = appendStr(dst, e.Name)
	dst = appendStr(dst, e.Description)
	dst = appendF64(dst, e.Popularity)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Aliases)))
	for _, a := range e.Aliases {
		dst = appendStr(dst, a)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(e.Types)))
	for _, t := range e.Types {
		dst = binary.LittleEndian.AppendUint32(dst, uint32(t))
	}
	return dst
}

func decEntity(p []byte) (kg.Entity, error) {
	d := &dec{b: p, off: 1}
	e := kg.Entity{
		ID:          kg.EntityID(d.u32()),
		Key:         d.str(),
		Name:        d.str(),
		Description: d.str(),
		Popularity:  d.f64(),
	}
	if n := d.u32(); n > 0 && d.err == nil {
		e.Aliases = make([]string, 0, min(int(n), 1024))
		for i := uint32(0); i < n && d.err == nil; i++ {
			e.Aliases = append(e.Aliases, d.str())
		}
	}
	if n := d.u32(); n > 0 && d.err == nil {
		e.Types = make([]kg.TypeID, 0, min(int(n), 1024))
		for i := uint32(0); i < n && d.err == nil; i++ {
			e.Types = append(e.Types, kg.TypeID(d.u32()))
		}
	}
	return e, d.done("entity")
}

// encEntityUpdate frames an entity record update: the recEntity payload
// under the recEntityUpdate type byte.
func encEntityUpdate(dst []byte, e *kg.Entity) []byte {
	start := len(dst)
	dst = encEntity(dst, e)
	dst[start] = recEntityUpdate
	return dst
}

func decEntityUpdate(p []byte) (kg.Entity, error) {
	return decEntity(p)
}

func encPredicate(dst []byte, p *kg.Predicate) []byte {
	dst = append(dst, recPredicate)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(p.ID))
	dst = appendStr(dst, p.Name)
	dst = append(dst, byte(p.ValueKind))
	if p.Functional {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func decPredicate(p []byte) (kg.Predicate, error) {
	d := &dec{b: p, off: 1}
	pr := kg.Predicate{
		ID:        kg.PredicateID(d.u32()),
		Name:      d.str(),
		ValueKind: kg.ValueKind(d.u8()),
	}
	pr.Functional = d.u8() != 0
	return pr, d.done("predicate")
}

type ontRec struct {
	id     kg.TypeID
	name   string
	parent kg.TypeID
}

func encOntType(dst []byte, r ontRec) []byte {
	dst = append(dst, recOntType)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(r.id))
	dst = appendStr(dst, r.name)
	return binary.LittleEndian.AppendUint32(dst, uint32(r.parent))
}

func decOntType(p []byte) (ontRec, error) {
	d := &dec{b: p, off: 1}
	r := ontRec{id: kg.TypeID(d.u32()), name: d.str(), parent: kg.TypeID(d.u32())}
	return r, d.done("ontology type")
}

// appendTripleBody encodes subject, predicate, object identity, and
// provenance — the shared tail of mutation and checkpoint-triple records.
// The object is stored as its ValueKey, whose Value() round-trip preserves
// identity for every kind (float bit patterns including NaN payloads,
// times as UTC UnixNano — sub-year-1678 / post-2262 instants are outside
// the representable range, like everywhere else UnixNano is used).
func appendTripleBody(dst []byte, t kg.Triple) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Subject))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(t.Predicate))
	k := t.Object.MapKey()
	dst = append(dst, byte(k.Kind))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(k.Num))
	dst = appendStr(dst, k.Str)
	dst = appendStr(dst, t.Prov.Source)
	dst = appendF64(dst, t.Prov.Confidence)
	dst = appendF64(dst, t.Prov.SourceQuality)
	if t.Prov.ObservedAt.IsZero() {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return binary.LittleEndian.AppendUint64(dst, uint64(t.Prov.ObservedAt.UnixNano()))
}

func (d *dec) tripleBody() kg.Triple {
	t := kg.Triple{
		Subject:   kg.EntityID(d.u32()),
		Predicate: kg.PredicateID(d.u32()),
	}
	k := kg.ValueKey{Kind: kg.ValueKind(d.u8())}
	k.Num = d.i64()
	k.Str = d.str()
	t.Object = k.Value()
	t.Prov.Source = d.str()
	t.Prov.Confidence = d.f64()
	t.Prov.SourceQuality = d.f64()
	if d.u8() != 0 {
		t.Prov.ObservedAt = time.Unix(0, d.i64()).UTC()
	}
	return t
}

func encMutation(dst []byte, m kg.Mutation) []byte {
	dst = append(dst, recMutation)
	dst = binary.LittleEndian.AppendUint64(dst, m.Seq)
	dst = append(dst, byte(m.Op))
	return appendTripleBody(dst, m.T)
}

func decMutation(p []byte) (kg.Mutation, error) {
	d := &dec{b: p, off: 1}
	m := kg.Mutation{Seq: d.u64(), Op: kg.MutationOp(d.u8())}
	m.T = d.tripleBody()
	if err := d.done("mutation"); err != nil {
		return kg.Mutation{}, err
	}
	if m.Op != kg.OpAssert && m.Op != kg.OpRetract {
		return kg.Mutation{}, fmt.Errorf("wal: decode mutation: unknown op %d", m.Op)
	}
	return m, nil
}

func encTriple(dst []byte, t kg.Triple) []byte {
	dst = append(dst, recTriple)
	return appendTripleBody(dst, t)
}

func decTriple(p []byte) (kg.Triple, error) {
	d := &dec{b: p, off: 1}
	t := d.tripleBody()
	return t, d.done("triple")
}

// encTripleBlock encodes a batch of checkpointed triples into one
// payload: type byte, u32 count, then the triple bodies back to back.
// Blocks amortize the per-frame cost (8-byte header, one CRC pass, one
// scanFrames round, one type dispatch) over many triples; per-frame
// decode dominated checkpoint recovery when every triple paid it alone.
func encTripleBlock(dst []byte, ts []kg.Triple) []byte {
	dst = append(dst, recTripleBlock)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ts)))
	for _, t := range ts {
		dst = appendTripleBody(dst, t)
	}
	return dst
}

// decTripleBlock decodes a triple-block payload, invoking fn per triple.
// A decode failure mid-block aborts before delivering the partially
// decoded triple; an error from fn aborts the block as-is.
func decTripleBlock(p []byte, fn func(kg.Triple) error) error {
	d := &dec{b: p, off: 1}
	n := d.u32()
	for i := uint32(0); i < n; i++ {
		t := d.tripleBody()
		if d.err != nil {
			break
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	return d.done("triple block")
}

type ckptHeader struct {
	watermark uint64
	nEntities uint64
	nPreds    uint64
	nOntTypes uint64
	nTriples  uint64
}

func encCkptHeader(dst []byte, h ckptHeader) []byte {
	dst = append(dst, recCheckpointHeader)
	dst = binary.LittleEndian.AppendUint64(dst, h.watermark)
	dst = binary.LittleEndian.AppendUint64(dst, h.nEntities)
	dst = binary.LittleEndian.AppendUint64(dst, h.nPreds)
	dst = binary.LittleEndian.AppendUint64(dst, h.nOntTypes)
	return binary.LittleEndian.AppendUint64(dst, h.nTriples)
}

func decCkptHeader(p []byte) (ckptHeader, error) {
	d := &dec{b: p, off: 1}
	h := ckptHeader{
		watermark: d.u64(),
		nEntities: d.u64(),
		nPreds:    d.u64(),
		nOntTypes: d.u64(),
		nTriples:  d.u64(),
	}
	return h, d.done("checkpoint header")
}

type ckptFooter struct {
	watermark uint64
	nTriples  uint64
}

func encCkptFooter(dst []byte, f ckptFooter) []byte {
	dst = append(dst, recCheckpointFooter)
	dst = binary.LittleEndian.AppendUint64(dst, f.watermark)
	return binary.LittleEndian.AppendUint64(dst, f.nTriples)
}

func decCkptFooter(p []byte) (ckptFooter, error) {
	d := &dec{b: p, off: 1}
	f := ckptFooter{watermark: d.u64(), nTriples: d.u64()}
	return f, d.done("checkpoint footer")
}
