package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of filesystem behavior the durability layer depends
// on, factored out so the crash-matrix tests can interpose a
// fault-injecting implementation (FaultFS) under the exact code paths
// production runs. Paths are absolute or process-relative; the WAL joins
// its directory itself.
//
// Durability semantics the implementations must honor:
//   - File.Sync makes previously written bytes of that file durable.
//   - SyncDir makes directory entries (creations, renames, removals in
//     that directory) durable. A create or rename alone is NOT durable —
//     the classic tmp-write+rename pattern still needs the directory
//     fsync to survive power loss.
type FS interface {
	MkdirAll(dir string) error
	// Create truncates/creates the file for writing.
	Create(name string) (File, error)
	// OpenAppend opens an existing file for appending.
	OpenAppend(name string) (File, error)
	// OpenRead opens the file for sequential reading.
	OpenRead(name string) (io.ReadCloser, error)
	Rename(oldName, newName string) error
	Remove(name string) error
	// Truncate cuts the file to size bytes (used to discard torn tails).
	Truncate(name string, size int64) error
	// ReadDir returns the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	SyncDir(dir string) error
}

// File is a writable log or checkpoint file.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
}

func (OSFS) OpenRead(name string) (io.ReadCloser, error) { return os.Open(name) }

func (OSFS) Rename(oldName, newName string) error { return os.Rename(oldName, newName) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
