package wal

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"saga/internal/kg"
)

// Block payloads round-trip adversarial triple content exactly: NaN
// floats, empty strings, zero and non-zero observation times, every
// value kind the tripleBody codec covers.
func TestTripleBlockRoundTrip(t *testing.T) {
	ts := []kg.Triple{
		{Subject: 1, Predicate: 2, Object: kg.EntityValue(3)},
		{Subject: 4, Predicate: 5, Object: kg.FloatValue(math.NaN())},
		{Subject: 6, Predicate: 7, Object: kg.StringValue("")},
		{Subject: 8, Predicate: 9, Object: kg.StringValue("héllo\x00world")},
		{Subject: 10, Predicate: 11, Object: kg.IntValue(-1), Prov: kg.Provenance{
			Source: "src", Confidence: 0.25, SourceQuality: 0.5,
			ObservedAt: time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC),
		}},
	}
	p := encTripleBlock(nil, ts)
	if p[0] != recTripleBlock {
		t.Fatalf("payload type = %d, want %d", p[0], recTripleBlock)
	}
	var got []kg.Triple
	if err := decTripleBlock(p, func(tr kg.Triple) error {
		got = append(got, tr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("decoded %d triples, want %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i].IdentityKey() != ts[i].IdentityKey() {
			t.Fatalf("triple %d: key %v, want %v", i, got[i].IdentityKey(), ts[i].IdentityKey())
		}
		if got[i].Prov != ts[i].Prov {
			t.Fatalf("triple %d: prov %+v, want %+v", i, got[i].Prov, ts[i].Prov)
		}
	}
	// An empty block is legal (and decodes to nothing).
	if err := decTripleBlock(encTripleBlock(nil, nil), func(kg.Triple) error {
		t.Fatal("empty block delivered a triple")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// A truncated block payload errors without delivering the partially
// decoded triple.
func TestTripleBlockTruncation(t *testing.T) {
	ts := []kg.Triple{
		{Subject: 1, Predicate: 2, Object: kg.EntityValue(3)},
		{Subject: 4, Predicate: 5, Object: kg.StringValue("tail")},
	}
	p := encTripleBlock(nil, ts)
	for cut := len(p) - 1; cut > 5; cut -= 7 {
		delivered := 0
		err := decTripleBlock(p[:cut], func(kg.Triple) error {
			delivered++
			return nil
		})
		if err == nil {
			t.Fatalf("cut at %d decoded cleanly", cut)
		}
		if delivered > 1 {
			t.Fatalf("cut at %d delivered %d triples from a torn two-triple block", cut, delivered)
		}
	}
}

// Checkpoints written before block framing carried one triple per frame
// (recTriple). Rewrite a current checkpoint into that format on disk and
// recover from it: the restored graph must be identical.
func TestOldSingleTripleCheckpointRestores(t *testing.T) {
	fs := NewFaultFS(23)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit})
	s := newScripted(t, g, 23)
	for i := 0; i < 200; i++ {
		s.step()
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	wantTriples, wantWM := g.AllTriplesSnapshot()

	names, _ := fs.ReadDir(testDir)
	rewrote := false
	for _, n := range names {
		if !strings.HasPrefix(n, ckptPrefix) {
			continue
		}
		p := filepath.Join(testDir, n)
		r, err := fs.OpenRead(p)
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(r)
		r.Close()
		var old []byte
		blocks := 0
		if _, err := scanFrames(n, bytes.NewReader(data), func(payload []byte) error {
			if payload[0] != recTripleBlock {
				old = appendFrame(old, payload)
				return nil
			}
			blocks++
			return decTripleBlock(payload, func(tr kg.Triple) error {
				old = appendFrame(old, encTriple(nil, tr))
				return nil
			})
		}); err != nil {
			t.Fatal(err)
		}
		if blocks == 0 {
			t.Fatal("checkpoint contains no triple blocks — writer no longer block-frames")
		}
		f, err := fs.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(old); err != nil {
			t.Fatal(err)
		}
		f.Close()
		rewrote = true
	}
	if !rewrote {
		t.Fatal("no checkpoint file found")
	}

	g2, m2, info := mustOpen(t, fs, Options{})
	defer m2.Close()
	if info.CheckpointLSN != wantWM {
		t.Fatalf("recovered checkpoint LSN %d, want %d", info.CheckpointLSN, wantWM)
	}
	gotTriples, _ := g2.AllTriplesSnapshot()
	if len(gotTriples) != len(wantTriples) {
		t.Fatalf("restored %d triples, want %d", len(gotTriples), len(wantTriples))
	}
	for i := range wantTriples {
		if gotTriples[i].IdentityKey() != wantTriples[i].IdentityKey() {
			t.Fatalf("triple %d: %v, want %v", i, gotTriples[i].IdentityKey(), wantTriples[i].IdentityKey())
		}
	}
}

// A checkpoint of a graph larger than one block must still restore
// exactly (multiple full blocks plus a remainder).
func TestBlockCheckpointMultiBlockRestore(t *testing.T) {
	fs := NewFaultFS(29)
	g, m, _ := mustOpen(t, fs, Options{Sync: SyncEachCommit})
	ent := make([]kg.EntityID, 0, 40)
	for i := 0; i < 40; i++ {
		id, err := g.AddEntity(kg.Entity{Key: fmt.Sprintf("b%03d", i)})
		if err != nil {
			t.Fatal(err)
		}
		ent = append(ent, id)
	}
	pred, err := g.AddPredicate(kg.Predicate{Name: "links"})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]kg.Triple, 0, ckptTripleBlockSize*2+37)
	for i := 0; i < cap(batch); i++ {
		batch = append(batch, kg.Triple{
			Subject:   ent[i%len(ent)],
			Predicate: pred,
			Object:    kg.IntValue(int64(i)),
		})
	}
	if _, err := g.AssertBatch(batch); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	g2, m2, _ := mustOpen(t, fs, Options{})
	defer m2.Close()
	if got, want := g2.NumTriples(), g.NumTriples(); got != want {
		t.Fatalf("restored %d triples, want %d", got, want)
	}
}
